#include "server/line_server.h"

#include <sys/socket.h>

#include <chrono>
#include <thread>
#include <utility>

#include "util/logging.h"
#include "util/parallel.h"

namespace pis {

namespace {

JsonValue ErrorReply(const Status& status) {
  JsonValue reply = JsonValue::Object();
  reply.Set("ok", false);
  reply.Set("code", StatusCodeName(status.code()));
  reply.Set("error", status.ToString());
  return reply;
}

}  // namespace

LineServer::LineServer(Handler handler, const LineServerOptions& options)
    : handler_(std::move(handler)), options_(options) {
  PIS_CHECK(handler_ != nullptr);
  if (options_.num_workers < 1) options_.num_workers = 1;
}

LineServer::~LineServer() {
  Shutdown();
  Wait();
}

Status LineServer::Start() {
  MutexLock lock(&serve_mu_);
  if (serve_thread_.joinable()) {
    return Status::AlreadyExists("server already started");
  }
  PIS_ASSIGN_OR_RETURN(
      listener_,
      TcpListener::Listen(options_.port, options_.loopback_only,
                          /*backlog=*/options_.num_workers * 4));
  // ParallelFor is the worker pool: N long-lived accept-and-serve loops.
  // serving_ flips true before the pool exists and false only when the
  // whole pool has exited, so running() brackets the serving lifetime
  // without ever touching the (serve_mu_-guarded) thread object.
  const int workers = options_.num_workers;
  serving_.store(true, std::memory_order_release);
  serve_thread_ = std::thread([this, workers] {
    ParallelFor(static_cast<size_t>(workers), workers,
                [this](size_t) { WorkerLoop(); });
    serving_.store(false, std::memory_order_release);
  });
  return Status::OK();
}

void LineServer::Wait() {
  MutexLock lock(&serve_mu_);
  if (serve_thread_.joinable()) {
    serve_thread_.join();
    serve_thread_ = std::thread();
  }
}

void LineServer::Shutdown() {
  stopping_.store(true);
  listener_.Shutdown();
  MutexLock lock(&live_mu_);
  for (int fd : live_fds_) {
    // Severing the stream unblocks a worker parked in RecvLine; the worker
    // owns (and closes) the descriptor itself.
    ::shutdown(fd, SHUT_RDWR);
  }
}

void LineServer::WorkerLoop() {
  while (!stopping_.load()) {
    bool fatal = false;
    Result<TcpSocket> conn = listener_.Accept(&fatal);
    if (!conn.ok()) {
      if (stopping_.load()) return;  // listener shut down: normal exit
      if (fatal) {
        // The listener itself is broken — every retry would fail the same
        // way, so a backoff loop here would just spin forever. Leave with
        // the reason on record instead of burning a core.
        PIS_LOG(Error) << "worker exiting, listener is unusable: "
                       << conn.status().ToString();
        return;
      }
      // Transient pressure (e.g. fd exhaustion): back off and keep the
      // worker alive rather than silently shrinking the pool to zero.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      continue;
    }
    ++connections_served_;
    ServeConnection(conn.MoveValue());
  }
}

void LineServer::ServeConnection(TcpSocket conn) {
  {
    MutexLock lock(&live_mu_);
    live_fds_.insert(conn.fd());
  }
  // A Shutdown() racing with the insert above may have severed the live set
  // before this fd joined it; stopping_ is always set first, so re-checking
  // here closes the window (otherwise RecvLine could park forever).
  if (stopping_.load()) {
    MutexLock lock(&live_mu_);
    live_fds_.erase(conn.fd());
    return;
  }
  const int fd = conn.fd();
  while (!stopping_.load()) {
    Result<std::string> line = conn.RecvLine(options_.max_request_bytes);
    if (!line.ok()) {
      if (line.status().code() == StatusCode::kInvalidArgument) {
        // Oversized frame: tell the peer, then drop the connection (the
        // stream position is unrecoverable mid-frame).
        (void)conn.SendLine(ErrorReply(line.status()).Serialize());
      }
      break;
    }
    if (line.value().empty()) continue;  // blank keep-alive line
    bool shutdown = false;
    JsonValue reply = handler_(line.value(), &shutdown);
    ++requests_served_;
    Status sent = conn.SendLine(reply.Serialize());
    if (shutdown) {
      Shutdown();
      break;
    }
    if (!sent.ok()) break;
  }
  MutexLock lock(&live_mu_);
  live_fds_.erase(fd);
}

}  // namespace pis
