// Write-ahead log for the serving layer's durable write path.
//
// EngineHost's writes are applied in memory and published as snapshots;
// without a log, everything since the last explicit Save dies with the
// process — an acknowledged add could vanish, which is a data-loss bug for
// a server. The WAL closes that window: every committed batch of mutations
// is appended here and fsync(2)ed BEFORE the callers are acknowledged, so
// "the server said ok" implies "a restart replays it".
//
// On-disk format (`wal.log` inside the log directory, little-endian):
//
//   header : u32 magic 'PWAL'  u32 version (currently 2)
//   record : u32 payload_size  u64 fnv1a64(payload)  payload bytes
//   payload: u8 op (1=add 2=remove)  u64 epoch  i32 gid  i32 shard
//            str graph_text
//
// `graph_text` is the graph's native text encoding (graph/io.h, exact
// double round-trip) for adds and empty for removes; `epoch` is the host
// epoch the batch published, which is what checkpoint truncation keys on.
// `shard` (v2) records which shard the add landed in: replay places the
// graph in exactly that shard (AddGraphAt), which is what lets a replica
// that owns a shard subset — whose log legitimately skips foreign gids —
// recover. Version-1 logs (no shard field) still load; they are upgraded
// to v2 in place at Open, with shard -1 meaning "derive by least-loaded
// routing" as before. Removes carry shard -1 (the routing table knows).
//
// Recovery semantics, chosen so every crash point is survivable:
//   - A torn tail (the file ends before a record's declared payload
//     completes — the footprint of a crash mid-append) is silently
//     truncated: everything before it was durable and is recovered.
//   - A corrupt record (all bytes present but the checksum disagrees, or a
//     nonsensical size) is InvalidArgument — never a crash, and never a
//     silent skip that would resurrect a stale suffix.
//   - Replay is idempotent over the snapshot it lands on: an add whose gid
//     the snapshot already holds is skipped (the footprint of a crash
//     between checkpoint-save and log-truncate), as is a remove of an
//     already-dead gid. The db and index are reconciled independently, so
//     a crash between the checkpoint's two file swaps also recovers.
#ifndef PIS_SERVER_WAL_H_
#define PIS_SERVER_WAL_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "index/sharded_index.h"
#include "obs/metrics.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace pis {

/// One logged mutation.
struct WalRecord {
  enum class Op : uint8_t { kAdd = 1, kRemove = 2 };

  Op op = Op::kAdd;
  /// Host epoch the containing batch published (monotone across restarts —
  /// the host seeds its epoch from max_recovered_epoch()).
  uint64_t epoch = 0;
  /// Global graph id the op assigned (add) or tombstoned (remove).
  int32_t gid = -1;
  /// Shard the add was placed in (>= 0: replay uses AddGraphAt, filling
  /// any foreign-gid gap below `gid` with absent slots). -1 — removes and
  /// records recovered from v1 logs — replays through the least-loaded
  /// AddGraph routing, which requires a gap-free log.
  int32_t shard = -1;
  /// Native text encoding of the added graph; empty for removes.
  std::string graph_text;
};

/// \brief Append-only, checksummed, fsync-on-commit mutation log.
///
/// Concurrency contract (audited for the thread-annotation pass): the log
/// is not internally synchronized — EngineHost owns it as a field guarded
/// by its writer mutex (`wal_ PIS_GUARDED_BY(writer_mu_)`), which is what
/// makes the discipline compiler-checked even though this class carries no
/// lock of its own. Exactly two members are readable off the writer lock:
/// bytes() and records(), both std::atomic, published to stats threads
/// through EngineHost's wal_view_ pointer. Everything else (fd_, path_,
/// recovered_, max_recovered_epoch_) is either const-after-Open or touched
/// only under the external lock; the object must not be moved once any
/// other thread can see it.
class WriteAheadLog {
 public:
  /// Opens (creating the directory and an empty log as needed) and
  /// validates `dir`/wal.log. A torn tail is physically truncated away; a
  /// corrupt record or bad header is InvalidArgument. The valid records are
  /// retained for recovered()/Replay().
  static Result<WriteAheadLog> Open(const std::string& dir);

  WriteAheadLog(WriteAheadLog&& other) noexcept;
  WriteAheadLog& operator=(WriteAheadLog&& other) noexcept;
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;
  ~WriteAheadLog();

  /// The records recovered from disk at Open, in append order.
  const std::vector<WalRecord>& recovered() const { return recovered_; }
  /// Largest epoch among recovered records (0 when the log was empty).
  uint64_t max_recovered_epoch() const { return max_recovered_epoch_; }

  /// Applies recovered() over a loaded snapshot pair, idempotently (see
  /// file comment): already-applied adds/removes are skipped; a record that
  /// cannot be reconciled (a gid gap in a shard-less v1 record, a parse
  /// failure) is InvalidArgument. Shard-stamped adds tolerate gaps — the
  /// missing ids are materialized as absent slots (empty placeholder graphs
  /// in `db`), which is how a shard-subset replica recovers. Leaves `db`
  /// and `index` id-aligned on success.
  Status Replay(GraphDatabase* db, ShardedFragmentIndex* index) const;

  /// Appends `batch` and fsyncs once — the group-commit durability point.
  /// On any error nothing may be considered durable (the caller must not
  /// ack the batch).
  Status Append(std::span<const WalRecord> batch);

  /// Registers WAL metric families (append latency histogram, appended
  /// records/fsyncs/truncations counters, log-size gauge) and starts
  /// recording. Same setup contract as EngineHost::EnableMetrics: call
  /// under the external lock before concurrent appends; the cached
  /// pointers are then poked atomics-only.
  void EnableMetrics(MetricsRegistry* registry);

  /// Drops every record with epoch <= `through_epoch` (they are covered by
  /// a snapshot saved at that epoch) by atomically rewriting the log.
  /// Callers must exclude concurrent Append.
  Status TruncateThrough(uint64_t through_epoch);

  /// Current log file bytes / record count (safe to read concurrently).
  uint64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  uint64_t records() const {
    return records_.load(std::memory_order_relaxed);
  }

  const std::string& path() const { return path_; }

 private:
  WriteAheadLog() = default;

  Status OpenForAppend();
  void CloseFd();

  std::string path_;
  int fd_ = -1;
  std::vector<WalRecord> recovered_;
  uint64_t max_recovered_epoch_ = 0;
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> records_{0};

  /// Metric family pointers (null until EnableMetrics; not moved with the
  /// object — EnableMetrics is only valid on the final resting instance).
  struct Metrics {
    Histogram* append_seconds = nullptr;
    Counter* appended_records = nullptr;
    Counter* fsyncs = nullptr;
    Counter* truncations = nullptr;
    Gauge* log_bytes = nullptr;
  };
  Metrics metrics_;
};

}  // namespace pis

#endif  // PIS_SERVER_WAL_H_
