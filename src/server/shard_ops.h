// Shard-level request handlers of the distributed serving fabric, shared by
// pis_server (which executes them over a pinned EngineHost snapshot) and
// the router's backends (LocalShardBackend executes them in-process;
// RemoteShardBackend decodes their wire form).
//
// The distributed query protocol merges at the PER-FRAGMENT RANGE-QUERY
// level, not the candidate level: the PIS filter's selectivity denominator
// is the GLOBAL live count, the ε-filter keeps fragments globally, and the
// partition is chosen once over the merged selectivities — running the full
// filter per shard and unioning candidates would answer a different
// (wrong) algorithm. So a shard server's job is exactly what
// ShardedPisEngine's per-shard fan-out does in-process:
//
//   shard_query : enumerate the query's fragments against the (identical,
//                 frozen) class catalog, run each fragment's range query
//                 over the requested owned shards, and return the
//                 per-fragment {global gid -> min distance} maps — plus the
//                 superimposed-sketch probe outcome when asked. The router
//                 unions the maps across its shard cover (disjoint gid
//                 spaces) and runs RunPisFilterCore globally.
//   shard_verify: verify a set of global candidate ids the router already
//                 filtered (each resident in a shard this replica owns) and
//                 return the ids within sigma.
//   meta        : the replica's routing/tombstone/epoch state, which is how
//                 a router bootstraps its global view of the cluster.
//
// JSON numbers round-trip doubles exactly (util/json.h emits
// shortest-round-trip forms), so the merged distances — and therefore
// selectivities, partition choice, and every pass-2 bound — are
// bit-identical to the single-process engine's.
#ifndef PIS_SERVER_SHARD_OPS_H_
#define PIS_SERVER_SHARD_OPS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/options.h"
#include "core/query_fragments.h"
#include "graph/graph.h"
#include "obs/trace.h"
#include "server/engine_host.h"
#include "util/json.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace pis {

/// One replica's view of the cluster-relevant index state (`meta` op).
struct ShardMeta {
  uint64_t epoch = 0;
  /// Graph-id slots ever assigned (monotone; dead and absent included).
  int db_slots = 0;
  int num_shards = 0;
  /// Shards this replica serves (sorted; empty = all of them).
  std::vector<int> shards_owned;
  /// gid -> owning shard, -1 for compacted-away slots.
  std::vector<int> routing;
  /// Every dead gid (sorted) — includes slots absent on this replica.
  std::vector<int> tombstones;
};

/// Outcome of one `shard_query` round over a subset of owned shards.
struct ShardQueryResult {
  uint64_t epoch = 0;
  /// The query's enumerated fragments (class id + covered query vertices),
  /// in enumeration order. Deterministic given the frozen catalog, so every
  /// replica reports the identical list and the per-fragment maps align
  /// positionally across endpoints.
  std::vector<QueryFragment> fragments;
  /// fragments.size() maps: global gid -> min distance over the requested
  /// shards (Eq. 3 aggregation, already translated to global ids).
  std::vector<std::unordered_map<int, double>> dists;
  /// Sketch-probe section (zero/empty unless the request asked for it):
  /// live graphs probed in the requested shards, and the probed gids whose
  /// blocks were missing an enumerated class's bits.
  uint64_t sketch_checks = 0;
  std::vector<int> sketch_pruned;
  /// Shard-side stage spans (empty unless the request set "trace": true).
  /// Offsets are relative to the replica's own handler start — the remote
  /// clock domain (obs/trace.h) — so the router grafts them under its
  /// round-trip span instead of interleaving them with local siblings.
  std::vector<TraceSpan> spans;
};

/// InvalidArgument unless every requested shard is within range and owned
/// (`owned` sorted; empty = the replica owns every shard).
Status CheckShardsOwned(const std::vector<int>& requested,
                        const std::vector<int>& owned, int num_shards);

/// Executes `shard_query` over a pinned snapshot: fragment enumeration plus
/// one range query per (fragment, requested shard), merged to global ids.
/// `options` supplies the engine knobs that must match the cluster config
/// (max_query_fragments); `sigma`/`sketch`/`trace` are per-request. With
/// `trace`, the result carries spans for the enumeration, each requested
/// shard's range-query sweep, and the sketch probe.
Result<ShardQueryResult> RunShardQuery(const EngineHost::Snapshot& snap,
                                       const std::vector<int>& shards,
                                       const Graph& query, double sigma,
                                       bool sketch, const PisOptions& options,
                                       bool trace = false);

/// Executes `shard_verify`: verifies candidate ids (each live and resident
/// in one of this replica's shards — InvalidArgument otherwise) and returns
/// the ids within `sigma`, ascending. With `trace` and a non-null
/// `spans_out`, appends a span covering the verification (remote clock
/// domain, like ShardQueryResult::spans).
Result<std::vector<int>> RunShardVerify(const EngineHost::Snapshot& snap,
                                        const std::vector<int>& ids,
                                        const Graph& query, double sigma,
                                        const PisOptions& options,
                                        bool trace = false,
                                        std::vector<TraceSpan>* spans_out =
                                            nullptr);

/// Executes `meta` over a pinned snapshot.
ShardMeta CollectShardMeta(const EngineHost::Snapshot& snap,
                           const std::vector<int>& shards_owned);

/// Wire codecs (newline-delimited JSON protocol payloads). Encoders fill
/// the payload fields of a reply object; decoders validate shape and
/// return InvalidArgument on structural problems.
void ShardMetaToJson(const ShardMeta& meta, JsonValue* reply);
Result<ShardMeta> ShardMetaFromJson(const JsonValue& reply);
void ShardQueryResultToJson(const ShardQueryResult& result, JsonValue* reply);
Result<ShardQueryResult> ShardQueryResultFromJson(const JsonValue& reply);

}  // namespace pis

#endif  // PIS_SERVER_SHARD_OPS_H_
