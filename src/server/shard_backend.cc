#include "server/shard_backend.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "graph/io.h"
#include "util/timer.h"

namespace pis {

namespace {

Result<uint64_t> ReplyEpoch(const JsonValue& reply) {
  const JsonValue* v = reply.Find("epoch");
  if (v == nullptr || !v->is_number() || v->AsNumber() < 0) {
    return Status::InvalidArgument("reply is missing \"epoch\"");
  }
  return static_cast<uint64_t>(v->AsNumber());
}

}  // namespace

bool IsTransportError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kIOError:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

// ---------------------------------------------------------------------------
// ShardBackend RPC instrumentation

void ShardBackend::EnableMetrics(MetricsRegistry* registry) {
  auto hist = [&](const char* op) {
    return registry->GetHistogram(
        "pis_cluster_rpc_seconds",
        "Per-endpoint round-trip latency of shard-fabric calls.",
        Histogram::DefaultLatencyBounds(),
        {{"endpoint", name()}, {"op", op}});
  };
  rpc_metrics_.health = hist("health");
  rpc_metrics_.meta = hist("meta");
  rpc_metrics_.shard_query = hist("shard_query");
  rpc_metrics_.shard_verify = hist("shard_verify");
  rpc_metrics_.shard_add = hist("shard_add");
  rpc_metrics_.shard_remove = hist("shard_remove");
  rpc_metrics_.transport_errors = registry->GetCounter(
      "pis_cluster_rpc_transport_errors_total",
      "Transport-classified shard-fabric call failures (the ones that trip "
      "the breaker).",
      {{"endpoint", name()}});
}

void ShardBackend::RecordRpc(const char* op, double seconds,
                             bool transport_error) {
  Histogram* h = nullptr;
  if (std::strcmp(op, "health") == 0) {
    h = rpc_metrics_.health;
  } else if (std::strcmp(op, "meta") == 0) {
    h = rpc_metrics_.meta;
  } else if (std::strcmp(op, "shard_query") == 0) {
    h = rpc_metrics_.shard_query;
  } else if (std::strcmp(op, "shard_verify") == 0) {
    h = rpc_metrics_.shard_verify;
  } else if (std::strcmp(op, "shard_add") == 0) {
    h = rpc_metrics_.shard_add;
  } else if (std::strcmp(op, "shard_remove") == 0) {
    h = rpc_metrics_.shard_remove;
  }
  if (h != nullptr) h->Observe(seconds);
  if (transport_error && rpc_metrics_.transport_errors != nullptr) {
    rpc_metrics_.transport_errors->Inc();
  }
}

// ---------------------------------------------------------------------------
// LocalShardBackend

LocalShardBackend::LocalShardBackend(EngineHost* host,
                                     std::vector<int> shards_owned,
                                     std::string name)
    : host_(host), shards_owned_(std::move(shards_owned)),
      name_(std::move(name)) {
  std::sort(shards_owned_.begin(), shards_owned_.end());
  shards_owned_.erase(
      std::unique(shards_owned_.begin(), shards_owned_.end()),
      shards_owned_.end());
}

Result<uint64_t> LocalShardBackend::Health() {
  Timer timer;
  const uint64_t epoch = host_->Stats().epoch;
  RecordRpc("health", timer.Seconds(), false);
  return epoch;
}

Result<ShardMeta> LocalShardBackend::Meta() {
  Timer timer;
  std::shared_ptr<const EngineHost::Snapshot> snap = host_->snapshot();
  Result<ShardMeta> meta = CollectShardMeta(*snap, shards_owned_);
  RecordRpc("meta", timer.Seconds(), false);
  return meta;
}

Result<ShardQueryResult> LocalShardBackend::ShardQuery(
    const Graph& query, const std::vector<int>& shards, double sigma,
    bool sketch, bool trace) {
  Timer timer;
  std::shared_ptr<const EngineHost::Snapshot> snap = host_->snapshot();
  PIS_RETURN_NOT_OK(
      CheckShardsOwned(shards, shards_owned_, snap->index->num_shards()));
  Result<ShardQueryResult> result = RunShardQuery(
      *snap, shards, query, sigma, sketch, host_->options(), trace);
  RecordRpc("shard_query", timer.Seconds(), false);
  return result;
}

Result<std::vector<int>> LocalShardBackend::ShardVerify(
    const Graph& query, const std::vector<int>& ids, double sigma, bool trace,
    std::vector<TraceSpan>* spans_out) {
  Timer timer;
  std::shared_ptr<const EngineHost::Snapshot> snap = host_->snapshot();
  if (!shards_owned_.empty()) {
    for (int gid : ids) {
      const int s = gid >= 0 && gid < snap->index->db_size()
                        ? snap->index->shard_of(gid)
                        : -1;
      if (!std::binary_search(shards_owned_.begin(), shards_owned_.end(),
                              s)) {
        return Status::InvalidArgument(
            "graph " + std::to_string(gid) +
            " is not resident in a shard owned by this replica");
      }
    }
  }
  Result<std::vector<int>> answers = RunShardVerify(
      *snap, ids, query, sigma, host_->options(), trace, spans_out);
  RecordRpc("shard_verify", timer.Seconds(), false);
  return answers;
}

Result<uint64_t> LocalShardBackend::ShardAdd(int gid, int shard,
                                             const Graph& g) {
  if (!shards_owned_.empty() &&
      !std::binary_search(shards_owned_.begin(), shards_owned_.end(),
                          shard)) {
    return Status::InvalidArgument("shard " + std::to_string(shard) +
                                   " is not owned by this replica");
  }
  Timer timer;
  uint64_t epoch = 0;
  Status added = host_->AddGraphAt(gid, shard, g, &epoch);
  RecordRpc("shard_add", timer.Seconds(), false);
  PIS_RETURN_NOT_OK(added);
  return epoch;
}

Result<ShardBackend::RemoveOutcome> LocalShardBackend::ShardRemove(int gid) {
  Timer timer;
  uint64_t epoch = 0;
  Status removed = host_->RemoveGraph(gid, &epoch);
  RecordRpc("shard_remove", timer.Seconds(), false);
  if (removed.ok()) return RemoveOutcome{epoch, true};
  // Mirror pis_server's idempotent shard_remove: already-dead is success.
  std::shared_ptr<const EngineHost::Snapshot> snap = host_->snapshot();
  const bool already_dead = removed.code() == StatusCode::kNotFound &&
                            gid >= 0 && gid < snap->index->db_size() &&
                            !snap->index->IsLive(gid);
  if (!already_dead) return removed;
  return RemoveOutcome{snap->epoch, false};
}

// ---------------------------------------------------------------------------
// RemoteShardBackend

RemoteShardBackend::RemoteShardBackend(std::string host, int port,
                                       int timeout_ms)
    : host_(std::move(host)), port_(port), timeout_ms_(timeout_ms),
      name_(host_ + ":" + std::to_string(port_)) {}

Result<JsonValue> RemoteShardBackend::RoundTrip(const JsonValue& request) {
  Timer timer;
  Result<JsonValue> reply = RoundTripInner(request);
  RecordRpc(request.GetStringOr("op", "raw").c_str(), timer.Seconds(),
            !reply.ok() && IsTransportError(reply.status()));
  return reply;
}

Result<JsonValue> RemoteShardBackend::RoundTripInner(
    const JsonValue& request) {
  MutexLock lock(&mu_);
  if (!conn_.valid()) {
    Result<TcpSocket> conn = TcpSocket::Connect(host_, port_, timeout_ms_);
    if (!conn.ok()) return conn.status();
    conn_ = conn.MoveValue();
  }
  Status sent = conn_.SendLine(request.Serialize());
  if (!sent.ok()) {
    conn_ = TcpSocket();  // poisoned stream: force a fresh connect next call
    return sent;
  }
  Result<std::string> line = conn_.RecvLine();
  if (!line.ok()) {
    conn_ = TcpSocket();
    return line.status();
  }
  Result<JsonValue> reply = JsonValue::Parse(line.value());
  if (!reply.ok() || !reply.value().is_object()) {
    // The server never emits an unparsable frame, so the stream position
    // is untrustworthy — drop it. Report as transport, not application.
    conn_ = TcpSocket();
    return Status::IOError("malformed reply from " + name_ + ": " +
                           (reply.ok() ? "not an object"
                                       : reply.status().ToString()));
  }
  if (!reply.value().GetBoolOr("ok", false)) {
    // A typed application error from a healthy replica. The connection
    // stays pooled — the server keeps it open after an error reply.
    const StatusCode code =
        StatusCodeFromName(reply.value().GetStringOr("code", "Internal"));
    return Status(code == StatusCode::kOk ? StatusCode::kInternal : code,
                  reply.value().GetStringOr("error", "unknown error") +
                      " (from " + name_ + ")");
  }
  return reply;
}

Result<uint64_t> RemoteShardBackend::Health() {
  JsonValue request = JsonValue::Object();
  request.Set("op", "health");
  PIS_ASSIGN_OR_RETURN(JsonValue reply, RoundTrip(request));
  return ReplyEpoch(reply);
}

Result<ShardMeta> RemoteShardBackend::Meta() {
  JsonValue request = JsonValue::Object();
  request.Set("op", "meta");
  PIS_ASSIGN_OR_RETURN(JsonValue reply, RoundTrip(request));
  return ShardMetaFromJson(reply);
}

Result<ShardQueryResult> RemoteShardBackend::ShardQuery(
    const Graph& query, const std::vector<int>& shards, double sigma,
    bool sketch, bool trace) {
  JsonValue request = JsonValue::Object();
  request.Set("op", "shard_query");
  request.Set("graph", FormatGraph(query, 0));
  JsonValue shard_list = JsonValue::Array();
  for (int s : shards) shard_list.Push(s);
  request.Set("shards", std::move(shard_list));
  request.Set("sigma", sigma);
  request.Set("sketch", sketch);
  if (trace) request.Set("trace", true);
  PIS_ASSIGN_OR_RETURN(JsonValue reply, RoundTrip(request));
  return ShardQueryResultFromJson(reply);
}

Result<std::vector<int>> RemoteShardBackend::ShardVerify(
    const Graph& query, const std::vector<int>& ids, double sigma, bool trace,
    std::vector<TraceSpan>* spans_out) {
  JsonValue request = JsonValue::Object();
  request.Set("op", "shard_verify");
  request.Set("graph", FormatGraph(query, 0));
  JsonValue id_list = JsonValue::Array();
  for (int gid : ids) id_list.Push(gid);
  request.Set("ids", std::move(id_list));
  request.Set("sigma", sigma);
  if (trace) request.Set("trace", true);
  PIS_ASSIGN_OR_RETURN(JsonValue reply, RoundTrip(request));
  if (trace && spans_out != nullptr) {
    if (const JsonValue* spans = reply.Find("spans"); spans != nullptr) {
      PIS_ASSIGN_OR_RETURN(std::vector<TraceSpan> decoded,
                           TraceSpan::ListFromJson(*spans));
      spans_out->insert(spans_out->end(),
                        std::make_move_iterator(decoded.begin()),
                        std::make_move_iterator(decoded.end()));
    }
  }
  const JsonValue* answers = reply.Find("answers");
  if (answers == nullptr || !answers->is_array()) {
    return Status::InvalidArgument("shard_verify reply has no \"answers\"");
  }
  std::vector<int> out;
  out.reserve(answers->size());
  for (const JsonValue& item : answers->items()) {
    if (!item.is_number()) {
      return Status::InvalidArgument("shard_verify answer is not a number");
    }
    out.push_back(static_cast<int>(item.AsNumber()));
  }
  return out;
}

Result<uint64_t> RemoteShardBackend::ShardAdd(int gid, int shard,
                                              const Graph& g) {
  JsonValue request = JsonValue::Object();
  request.Set("op", "shard_add");
  request.Set("gid", gid);
  request.Set("shard", shard);
  request.Set("graph", FormatGraph(g, gid));
  PIS_ASSIGN_OR_RETURN(JsonValue reply, RoundTrip(request));
  return ReplyEpoch(reply);
}

Result<ShardBackend::RemoveOutcome> RemoteShardBackend::ShardRemove(int gid) {
  JsonValue request = JsonValue::Object();
  request.Set("op", "shard_remove");
  request.Set("id", gid);
  PIS_ASSIGN_OR_RETURN(JsonValue reply, RoundTrip(request));
  PIS_ASSIGN_OR_RETURN(uint64_t epoch, ReplyEpoch(reply));
  return RemoveOutcome{epoch, reply.GetBoolOr("applied", true)};
}

}  // namespace pis
