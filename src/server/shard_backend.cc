#include "server/shard_backend.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "graph/io.h"

namespace pis {

namespace {

Result<uint64_t> ReplyEpoch(const JsonValue& reply) {
  const JsonValue* v = reply.Find("epoch");
  if (v == nullptr || !v->is_number() || v->AsNumber() < 0) {
    return Status::InvalidArgument("reply is missing \"epoch\"");
  }
  return static_cast<uint64_t>(v->AsNumber());
}

}  // namespace

bool IsTransportError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kIOError:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

// ---------------------------------------------------------------------------
// LocalShardBackend

LocalShardBackend::LocalShardBackend(EngineHost* host,
                                     std::vector<int> shards_owned,
                                     std::string name)
    : host_(host), shards_owned_(std::move(shards_owned)),
      name_(std::move(name)) {
  std::sort(shards_owned_.begin(), shards_owned_.end());
  shards_owned_.erase(
      std::unique(shards_owned_.begin(), shards_owned_.end()),
      shards_owned_.end());
}

Result<uint64_t> LocalShardBackend::Health() { return host_->Stats().epoch; }

Result<ShardMeta> LocalShardBackend::Meta() {
  std::shared_ptr<const EngineHost::Snapshot> snap = host_->snapshot();
  return CollectShardMeta(*snap, shards_owned_);
}

Result<ShardQueryResult> LocalShardBackend::ShardQuery(
    const Graph& query, const std::vector<int>& shards, double sigma,
    bool sketch) {
  std::shared_ptr<const EngineHost::Snapshot> snap = host_->snapshot();
  PIS_RETURN_NOT_OK(
      CheckShardsOwned(shards, shards_owned_, snap->index->num_shards()));
  return RunShardQuery(*snap, shards, query, sigma, sketch, host_->options());
}

Result<std::vector<int>> LocalShardBackend::ShardVerify(
    const Graph& query, const std::vector<int>& ids, double sigma) {
  std::shared_ptr<const EngineHost::Snapshot> snap = host_->snapshot();
  if (!shards_owned_.empty()) {
    for (int gid : ids) {
      const int s = gid >= 0 && gid < snap->index->db_size()
                        ? snap->index->shard_of(gid)
                        : -1;
      if (!std::binary_search(shards_owned_.begin(), shards_owned_.end(),
                              s)) {
        return Status::InvalidArgument(
            "graph " + std::to_string(gid) +
            " is not resident in a shard owned by this replica");
      }
    }
  }
  return RunShardVerify(*snap, ids, query, sigma, host_->options());
}

Result<uint64_t> LocalShardBackend::ShardAdd(int gid, int shard,
                                             const Graph& g) {
  if (!shards_owned_.empty() &&
      !std::binary_search(shards_owned_.begin(), shards_owned_.end(),
                          shard)) {
    return Status::InvalidArgument("shard " + std::to_string(shard) +
                                   " is not owned by this replica");
  }
  uint64_t epoch = 0;
  PIS_RETURN_NOT_OK(host_->AddGraphAt(gid, shard, g, &epoch));
  return epoch;
}

Result<ShardBackend::RemoveOutcome> LocalShardBackend::ShardRemove(int gid) {
  uint64_t epoch = 0;
  Status removed = host_->RemoveGraph(gid, &epoch);
  if (removed.ok()) return RemoveOutcome{epoch, true};
  // Mirror pis_server's idempotent shard_remove: already-dead is success.
  std::shared_ptr<const EngineHost::Snapshot> snap = host_->snapshot();
  const bool already_dead = removed.code() == StatusCode::kNotFound &&
                            gid >= 0 && gid < snap->index->db_size() &&
                            !snap->index->IsLive(gid);
  if (!already_dead) return removed;
  return RemoveOutcome{snap->epoch, false};
}

// ---------------------------------------------------------------------------
// RemoteShardBackend

RemoteShardBackend::RemoteShardBackend(std::string host, int port,
                                       int timeout_ms)
    : host_(std::move(host)), port_(port), timeout_ms_(timeout_ms),
      name_(host_ + ":" + std::to_string(port_)) {}

Result<JsonValue> RemoteShardBackend::RoundTrip(const JsonValue& request) {
  MutexLock lock(&mu_);
  if (!conn_.valid()) {
    Result<TcpSocket> conn = TcpSocket::Connect(host_, port_, timeout_ms_);
    if (!conn.ok()) return conn.status();
    conn_ = conn.MoveValue();
  }
  Status sent = conn_.SendLine(request.Serialize());
  if (!sent.ok()) {
    conn_ = TcpSocket();  // poisoned stream: force a fresh connect next call
    return sent;
  }
  Result<std::string> line = conn_.RecvLine();
  if (!line.ok()) {
    conn_ = TcpSocket();
    return line.status();
  }
  Result<JsonValue> reply = JsonValue::Parse(line.value());
  if (!reply.ok() || !reply.value().is_object()) {
    // The server never emits an unparsable frame, so the stream position
    // is untrustworthy — drop it. Report as transport, not application.
    conn_ = TcpSocket();
    return Status::IOError("malformed reply from " + name_ + ": " +
                           (reply.ok() ? "not an object"
                                       : reply.status().ToString()));
  }
  if (!reply.value().GetBoolOr("ok", false)) {
    // A typed application error from a healthy replica. The connection
    // stays pooled — the server keeps it open after an error reply.
    const StatusCode code =
        StatusCodeFromName(reply.value().GetStringOr("code", "Internal"));
    return Status(code == StatusCode::kOk ? StatusCode::kInternal : code,
                  reply.value().GetStringOr("error", "unknown error") +
                      " (from " + name_ + ")");
  }
  return reply;
}

Result<uint64_t> RemoteShardBackend::Health() {
  JsonValue request = JsonValue::Object();
  request.Set("op", "health");
  PIS_ASSIGN_OR_RETURN(JsonValue reply, RoundTrip(request));
  return ReplyEpoch(reply);
}

Result<ShardMeta> RemoteShardBackend::Meta() {
  JsonValue request = JsonValue::Object();
  request.Set("op", "meta");
  PIS_ASSIGN_OR_RETURN(JsonValue reply, RoundTrip(request));
  return ShardMetaFromJson(reply);
}

Result<ShardQueryResult> RemoteShardBackend::ShardQuery(
    const Graph& query, const std::vector<int>& shards, double sigma,
    bool sketch) {
  JsonValue request = JsonValue::Object();
  request.Set("op", "shard_query");
  request.Set("graph", FormatGraph(query, 0));
  JsonValue shard_list = JsonValue::Array();
  for (int s : shards) shard_list.Push(s);
  request.Set("shards", std::move(shard_list));
  request.Set("sigma", sigma);
  request.Set("sketch", sketch);
  PIS_ASSIGN_OR_RETURN(JsonValue reply, RoundTrip(request));
  return ShardQueryResultFromJson(reply);
}

Result<std::vector<int>> RemoteShardBackend::ShardVerify(
    const Graph& query, const std::vector<int>& ids, double sigma) {
  JsonValue request = JsonValue::Object();
  request.Set("op", "shard_verify");
  request.Set("graph", FormatGraph(query, 0));
  JsonValue id_list = JsonValue::Array();
  for (int gid : ids) id_list.Push(gid);
  request.Set("ids", std::move(id_list));
  request.Set("sigma", sigma);
  PIS_ASSIGN_OR_RETURN(JsonValue reply, RoundTrip(request));
  const JsonValue* answers = reply.Find("answers");
  if (answers == nullptr || !answers->is_array()) {
    return Status::InvalidArgument("shard_verify reply has no \"answers\"");
  }
  std::vector<int> out;
  out.reserve(answers->size());
  for (const JsonValue& item : answers->items()) {
    if (!item.is_number()) {
      return Status::InvalidArgument("shard_verify answer is not a number");
    }
    out.push_back(static_cast<int>(item.AsNumber()));
  }
  return out;
}

Result<uint64_t> RemoteShardBackend::ShardAdd(int gid, int shard,
                                              const Graph& g) {
  JsonValue request = JsonValue::Object();
  request.Set("op", "shard_add");
  request.Set("gid", gid);
  request.Set("shard", shard);
  request.Set("graph", FormatGraph(g, gid));
  PIS_ASSIGN_OR_RETURN(JsonValue reply, RoundTrip(request));
  return ReplyEpoch(reply);
}

Result<ShardBackend::RemoveOutcome> RemoteShardBackend::ShardRemove(int gid) {
  JsonValue request = JsonValue::Object();
  request.Set("op", "shard_remove");
  request.Set("id", gid);
  PIS_ASSIGN_OR_RETURN(JsonValue reply, RoundTrip(request));
  PIS_ASSIGN_OR_RETURN(uint64_t epoch, ReplyEpoch(reply));
  return RemoveOutcome{epoch, reply.GetBoolOr("applied", true)};
}

}  // namespace pis
