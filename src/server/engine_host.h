// The concurrent serving core: an EngineHost owns a sharded PIS index (plus
// its id-aligned database) behind immutable published snapshots, giving
//
//   - non-blocking concurrent readers: Search / SearchBatch / Filter pin
//     the current snapshot (one shared_ptr copy under a mutex held for
//     just that copy — never across query work), run entirely against
//     immutable state, and never wait on — or get waited on by — a
//     mutation in flight;
//   - linearizable results: mutators run under one writer mutex and publish
//     a complete new snapshot as their single atomic commit point, so every
//     query observes exactly the state left by some prefix of the applied
//     mutations (never a partial one), and a mutation that returned is
//     visible to every snapshot taken afterwards;
//   - durable writes: with a WriteAheadLog attached, every AddGraph /
//     RemoveGraph batch is appended and fsynced BEFORE any caller gets its
//     result, so an acknowledged write survives kill -9 — restart replays
//     the log over the last checkpoint (see server/wal.h);
//   - zero-downtime maintenance: CompactShard / Compact / Rebalance rewrite
//     shards on detached copies (the copy-on-write layer of
//     ShardedFragmentIndex) and land via shard-handle swap, so the
//     PR 4 dead-ratio policy — and now periodic checkpointing — run on the
//     background maintenance thread while queries keep answering.
//
// Cost model: publishing shares everything a mutation didn't touch, and
// AddGraph/RemoveGraph group-commit: concurrent callers enqueue onto a
// commit queue, one leader drains the whole batch under the writer mutex
// and pays ONE database copy, ONE WAL fsync, and ONE snapshot publish for
// the N queued ops — collapsing the former N O(db) copies + N publishes.
// RemoveGraph tombstones and compaction never move global ids. Readers pay
// one mutex-guarded shared_ptr copy (std::atomic<std::shared_ptr> would
// make the pin lock-free, but libstdc++'s implementation trips TSan — the
// explicit mutex keeps the CI race-checking meaningful and costs
// nanoseconds).
//
// Locking: every mutex here is a capability-annotated pis::Mutex and every
// guarded field carries PIS_GUARDED_BY, so clang's -Wthread-safety proves
// the discipline at compile time. The acquisition hierarchy (a thread may
// only take locks left-to-right) is documented in docs/locking.md:
//
//   checkpoint_mu_ -> writer_mu_ -> snapshot_mu_
//   commit_mu_ (never held across writer_mu_ — released before CommitBatch)
//   compactor_lifecycle_mu_ -> compactor_mu_
#ifndef PIS_SERVER_ENGINE_HOST_H_
#define PIS_SERVER_ENGINE_HOST_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/options.h"
#include "core/sharded_pis.h"
#include "graph/graph.h"
#include "index/sharded_index.h"
#include "obs/metrics.h"
#include "server/wal.h"
#include "util/json.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace pis {

/// \brief Snapshot-isolated serving host over a sharded PIS index.
class EngineHost {
 public:
  /// One immutable published state. Readers that want a consistent view
  /// across several calls (or the epoch they answered at) pin one of these
  /// and use `engine` directly; the shared_ptr keeps db and index alive.
  struct Snapshot {
    std::shared_ptr<const GraphDatabase> db;
    std::shared_ptr<const ShardedFragmentIndex> index;
    ShardedPisEngine engine;  // views into *db / *index
    /// Number of commits applied before this snapshot; bumps by exactly one
    /// per published commit — a group-committed batch of N writer calls
    /// shares one epoch (background compactor passes that compacted at
    /// least one shard also count one).
    uint64_t epoch = 0;

    Snapshot(std::shared_ptr<const GraphDatabase> db_in,
             std::shared_ptr<const ShardedFragmentIndex> index_in,
             const PisOptions& options, uint64_t epoch_in)
        : db(std::move(db_in)),
          index(std::move(index_in)),
          engine(db.get(), index.get(), options),
          epoch(epoch_in) {}
  };

  /// Per-shard serving stats (machine-readable via HostStats::ToJson).
  struct ShardInfo {
    int resident = 0;
    int live = 0;
    int dead = 0;
    double dead_ratio = 0;
  };
  struct HostStats {
    uint64_t epoch = 0;
    int db_slots = 0;
    int live = 0;
    int removed = 0;
    int num_shards = 0;
    int compaction_epoch = 0;
    double compact_dead_ratio = 0;
    uint64_t background_compactions = 0;
    /// Durability counters — all zero when no WAL is attached.
    uint64_t wal_bytes = 0;
    uint64_t wal_records = 0;
    uint64_t checkpoints = 0;
    /// Group-commit counters: published batches, writer ops they carried,
    /// and the largest single batch observed (>1 proves writes coalesced).
    uint64_t group_commit_batches = 0;
    uint64_t group_commit_ops = 0;
    uint64_t group_commit_max_batch = 0;
    /// Superimposed-sketch prefilter counters accumulated over every query
    /// served by this host (zero while PisOptions::sketch_enabled is off).
    /// false_drops counts probes that passed the sketch but died in pass-1
    /// — the live false-drop rate is false_drops / (checks - pruned).
    uint64_t sketch_checks = 0;
    uint64_t sketch_pruned = 0;
    uint64_t sketch_false_drops = 0;
    std::vector<ShardInfo> shards;

    /// JSON shape ({"epoch":..,"shards":[{..},..],..}) — the payload of
    /// the server's `stats` reply and `pis_cli stats --json`.
    JsonValue ToJsonValue() const;
    /// Compact one-line rendering of ToJsonValue().
    std::string ToJson() const { return ToJsonValue().Serialize(); }
  };

  /// Where Checkpoint() persists a snapshot. The pair is written to temp
  /// names, fsynced, and swapped in atomically (`<index_dir>.stale` briefly
  /// holds the previous index during the swap — loaders fall back to it if
  /// a crash lands mid-swap), after which the WAL is truncated through the
  /// checkpointed epoch.
  struct CheckpointConfig {
    std::string index_dir;
    std::string db_path;
    /// Periodic checkpoint cadence on the maintenance thread; zero means
    /// manual Checkpoint() calls only.
    std::chrono::milliseconds interval{0};
  };

  /// Takes ownership of an id-aligned database/index pair (the same
  /// alignment contract as ShardedPisEngine). The auto-compaction policy is
  /// `options.compact_dead_ratio` when set, else the ratio persisted in the
  /// index (manifest v4); either way it runs only on the background
  /// maintenance thread here — RemoveGraph never compacts inline.
  EngineHost(GraphDatabase db, ShardedFragmentIndex index,
             const PisOptions& options = {});
  ~EngineHost();
  EngineHost(const EngineHost&) = delete;
  EngineHost& operator=(const EngineHost&) = delete;

  /// Per-op write-path timings, filled by the group-commit leader for the
  /// batch that carried the op (trace spans "group_commit_wait",
  /// "wal_append", "snapshot_publish"). wal/publish are batch-level costs
  /// — every op of a batch reports the same values.
  struct WriteTiming {
    double queue_wait_ms = 0;  ///< enqueue -> committed (caller-observed)
    double wal_append_ms = 0;  ///< batch WAL append + fsync (0 = no WAL)
    double publish_ms = 0;     ///< batch snapshot publish
    uint64_t batch_ops = 0;    ///< ops the carrying batch committed
  };

  /// Registers this host's metric families in `registry` and starts
  /// recording (query stage latencies, sketch counters, group-commit and
  /// WAL timings). Call once, BEFORE the host serves concurrent traffic —
  /// the cached family pointers are written unsynchronized. Recording
  /// itself is atomics-only; an un-enabled host skips it on a null check.
  void EnableMetrics(MetricsRegistry* registry) PIS_EXCLUDES(writer_mu_);

  /// Makes writes durable: every subsequent AddGraph/RemoveGraph batch is
  /// appended to `wal` and fsynced before the callers return. The caller
  /// is expected to have already applied wal->Replay() to the state this
  /// host was constructed from; the host seeds its epoch from
  /// wal->max_recovered_epoch() so epochs stay monotone across restarts.
  /// AlreadyExists when a WAL is already attached.
  Status AttachWal(std::unique_ptr<WriteAheadLog> wal)
      PIS_EXCLUDES(writer_mu_);
  bool wal_attached() const;

  /// Configures checkpointing (requires an attached WAL — a checkpoint is
  /// what lets the log be truncated). With a nonzero interval the
  /// maintenance thread (StartAutoCompaction) checkpoints periodically;
  /// Checkpoint() is always available for manual/exit-path saves.
  Status EnableCheckpoints(CheckpointConfig config)
      PIS_EXCLUDES(checkpoint_mu_, compactor_lifecycle_mu_);

  /// Persists the current snapshot to the configured paths and truncates
  /// the WAL through its epoch. Runs off a pinned immutable snapshot, so
  /// writers and readers proceed concurrently; only the final WAL truncate
  /// briefly takes the writer mutex.
  Status Checkpoint() PIS_EXCLUDES(checkpoint_mu_, writer_mu_);
  uint64_t checkpoints() const { return checkpoints_.load(); }

  /// The current published snapshot (a pointer copy; never null). The
  /// returned snapshot stays valid and frozen for as long as the caller
  /// holds it, regardless of concurrent mutations.
  std::shared_ptr<const Snapshot> snapshot() const
      PIS_EXCLUDES(snapshot_mu_);

  /// Reader API: each call pins one snapshot for its whole duration, so a
  /// batch sees a single consistent state.
  Result<SearchResult> Search(const Graph& query) const;
  Result<FilterResult> Filter(const Graph& query) const;
  BatchSearchResult SearchBatch(std::span<const Graph> queries,
                                int num_threads = 0) const;

  /// Folds one query's stats into the host's sketch counters and metric
  /// families — what Search() does internally. Callers that pin their own
  /// snapshot and run its engine directly (the servers do, to report the
  /// queried epoch) must account explicitly or their queries are invisible
  /// to stats/metrics. Atomics only — safe on the query path.
  void AccountQuery(const QueryStats& stats) const;

  /// Group-committed writers. Concurrent callers coalesce into one batch:
  /// a leader applies every queued op, appends + fsyncs one WAL batch (when
  /// attached), and publishes ONE snapshot covering them all — each caller
  /// still gets its own gid/status, and a successful return still means
  /// "durable and visible to every later snapshot". `epoch_out` (nullable)
  /// receives the epoch of the publish that carried THIS mutation — reading
  /// snapshot()->epoch afterwards could observe a later commit.
  /// `timing_out` (nullable) receives the op's write-path span timings.
  Result<int> AddGraph(const Graph& g, uint64_t* epoch_out = nullptr,
                       WriteTiming* timing_out = nullptr)
      PIS_EXCLUDES(commit_mu_, writer_mu_);
  /// Explicit-placement writer for replicated serving: a cluster router
  /// preassigns the global id and owning shard, and every replica of that
  /// shard applies the identical placement (bypassing least-loaded
  /// routing). Gids below `gid` this host never received are materialized
  /// as absent slots (see ShardedFragmentIndex::AddGraphAt). Idempotent:
  /// re-submitting an already-applied placement — the footprint of a
  /// catch-up replay after a lost ack — succeeds without a new epoch.
  /// Group-commits, WAL-logs, and publishes exactly like AddGraph.
  Status AddGraphAt(int gid, int shard, const Graph& g,
                    uint64_t* epoch_out = nullptr,
                    WriteTiming* timing_out = nullptr)
      PIS_EXCLUDES(commit_mu_, writer_mu_);
  Status RemoveGraph(int gid, uint64_t* epoch_out = nullptr,
                     WriteTiming* timing_out = nullptr)
      PIS_EXCLUDES(commit_mu_, writer_mu_);

  /// Maintenance writers (not WAL-logged: they reorganize storage without
  /// changing the live membership replay reconstructs). Each successful
  /// call publishes exactly one new snapshot before returning.
  Status CompactShard(int s, uint64_t* epoch_out = nullptr)
      PIS_EXCLUDES(writer_mu_);
  Result<int> Compact(double min_dead_ratio = 0.0,
                      uint64_t* epoch_out = nullptr)
      PIS_EXCLUDES(writer_mu_);
  Result<int> Rebalance(uint64_t* epoch_out = nullptr)
      PIS_EXCLUDES(writer_mu_);

  /// Background maintenance thread: every `interval`, compact shards whose
  /// dead ratio is at/above the policy ratio (see constructor), and — when
  /// EnableCheckpoints configured a nonzero cadence — checkpoint on that
  /// cadence. InvalidArgument when there is nothing to do (policy ratio and
  /// `dead_ratio_override` both zero AND no periodic checkpointing), or
  /// when already running. The first compaction scan runs immediately on
  /// start; the first checkpoint waits one full checkpoint interval.
  Status StartAutoCompaction(std::chrono::milliseconds interval,
                             double dead_ratio_override = 0.0)
      PIS_EXCLUDES(compactor_lifecycle_mu_, compactor_mu_, checkpoint_mu_);
  void StopAutoCompaction()
      PIS_EXCLUDES(compactor_lifecycle_mu_, compactor_mu_);
  bool auto_compaction_running() const
      PIS_EXCLUDES(compactor_lifecycle_mu_);
  /// Background passes that compacted at least one shard.
  uint64_t background_compactions() const { return background_compactions_; }

  HostStats Stats() const PIS_EXCLUDES(snapshot_mu_);

  /// Persists the index under `dir` (manifest v4 records the policy ratio)
  /// and the database to `db_path` (native text format) from one snapshot,
  /// so the pair on disk is always mutually consistent. Plain save — no
  /// fsync, no WAL truncation; prefer Checkpoint() when a WAL is attached.
  Status Save(const std::string& dir, const std::string& db_path) const
      PIS_EXCLUDES(writer_mu_);

  const PisOptions& options() const { return options_; }
  double compact_dead_ratio() const { return compact_dead_ratio_; }

 private:
  /// One queued writer call, stack-allocated in AddGraph/RemoveGraph and
  /// filled in by whichever thread ends up leading its batch. `done` is
  /// guarded by the host's commit_mu_ (not annotatable from a nested
  /// struct); the result fields are written by the leader before it flips
  /// `done` under that mutex, so the owner's read after observing done ==
  /// true is ordered by the mutex.
  struct PendingWrite {
    enum class Kind { kAdd, kAddAt, kRemove };
    Kind kind;
    const Graph* graph = nullptr;  // kAdd/kAddAt input
    int gid = -1;                  // kRemove/kAddAt input; kAdd output
    int shard = -1;                // kAddAt input
    uint64_t epoch = 0;            // output: publish epoch of the batch
    /// Output: batch-level write-path timings (same ordering contract as
    /// the result fields above). queue_wait_ms is filled by the owner.
    WriteTiming timing;
    Status status = Status::OK();  // output
    bool done = false;             // guarded by commit_mu_
  };

  /// Enqueues `op` and blocks until a batch leader (possibly this thread)
  /// has committed it; on return op->status/gid/epoch are final.
  void Submit(PendingWrite* op) PIS_EXCLUDES(commit_mu_, writer_mu_);
  /// Stamps the caller-observed queue wait, copies the op's timing to
  /// `timing_out`, and records the group-commit-wait histogram.
  void FinishWrite(PendingWrite* op, double queue_wait_ms,
                   WriteTiming* timing_out) const;
  /// Applies a drained batch: every op in order, one db copy, one WAL
  /// append+fsync, one publish — all under writer_mu_, with commit_mu_
  /// released (that concurrency is where batching comes from). Does NOT
  /// touch done flags — the leader marks those under commit_mu_ afterwards.
  void CommitBatch(const std::vector<PendingWrite*>& batch)
      PIS_EXCLUDES(writer_mu_, commit_mu_);

  /// Publishes master state as the next snapshot.
  void Publish() PIS_REQUIRES(writer_mu_) PIS_EXCLUDES(snapshot_mu_);
  void MaintenanceLoop(std::chrono::milliseconds interval, double dead_ratio)
      PIS_EXCLUDES(writer_mu_, compactor_mu_, checkpoint_mu_);

  PisOptions options_;
  /// The background policy ratio (options override, else persisted value).
  /// Written once in the constructor, read-only afterwards — that is what
  /// lets Stats()/Save()/Checkpoint() read it without a capability.
  double compact_dead_ratio_ = 0;

  /// Writer state: mutators copy-on-write from here and publish. master_db_
  /// is never mutated in place once shared with a snapshot — a committing
  /// batch replaces it with one appended copy.
  mutable Mutex writer_mu_;
  std::shared_ptr<const GraphDatabase> master_db_ PIS_GUARDED_BY(writer_mu_);
  ShardedFragmentIndex master_ PIS_GUARDED_BY(writer_mu_);
  uint64_t epoch_ PIS_GUARDED_BY(writer_mu_) = 0;
  /// Durability sink; Append/TruncateThrough run under writer_mu_ (the WAL
  /// itself is not internally synchronized — see server/wal.h).
  std::unique_ptr<WriteAheadLog> wal_ PIS_GUARDED_BY(writer_mu_);
  /// Set once by AttachWal so Stats() can read the WAL's atomic counters
  /// without touching writer_mu_ (which a committing batch can hold for a
  /// while). Only bytes()/records() may be called through this pointer.
  std::atomic<const WriteAheadLog*> wal_view_{nullptr};

  /// Group-commit queue. commit_mu_ orders enqueue/leader-election/wakeup
  /// only — the actual commit work runs under writer_mu_ with commit_mu_
  /// released, so new writers keep enqueueing while a batch commits (that
  /// is where batching comes from).
  Mutex commit_mu_;
  CondVar commit_cv_;
  std::vector<PendingWrite*> commit_queue_ PIS_GUARDED_BY(commit_mu_);
  bool commit_leader_active_ PIS_GUARDED_BY(commit_mu_) = false;

  /// Guards only the pointer swap/copy of current_ — held for nanoseconds,
  /// never across query execution or mutation work.
  mutable Mutex snapshot_mu_;
  std::shared_ptr<const Snapshot> current_ PIS_GUARDED_BY(snapshot_mu_);

  /// Checkpoint destination. checkpoint_mu_ serializes whole Checkpoint()
  /// calls (manual vs periodic) without blocking writers, and guards the
  /// config fields against a concurrent EnableCheckpoints.
  Mutex checkpoint_mu_;
  CheckpointConfig checkpoint_ PIS_GUARDED_BY(checkpoint_mu_);
  bool checkpoints_enabled_ PIS_GUARDED_BY(checkpoint_mu_) = false;

  /// Background maintenance plumbing. compactor_lifecycle_mu_ guards the
  /// thread object itself (Start/Stop/running racing each other);
  /// compactor_mu_ guards only the stop flag the loop's condition variable
  /// waits on — the loop must be able to take it while Stop holds
  /// compactor_lifecycle_mu_ across join().
  mutable Mutex compactor_lifecycle_mu_;
  std::thread compactor_ PIS_GUARDED_BY(compactor_lifecycle_mu_);
  Mutex compactor_mu_;
  CondVar compactor_cv_;
  bool compactor_stop_ PIS_GUARDED_BY(compactor_mu_) = false;
  std::atomic<uint64_t> background_compactions_{0};
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<uint64_t> group_commit_batches_{0};
  std::atomic<uint64_t> group_commit_ops_{0};
  std::atomic<uint64_t> group_commit_max_batch_{0};
  /// Per-query sketch counters folded in by the reader API (mutable: reads
  /// are const but still account their prefilter work).
  mutable std::atomic<uint64_t> sketch_checks_{0};
  mutable std::atomic<uint64_t> sketch_pruned_{0};
  mutable std::atomic<uint64_t> sketch_false_drops_{0};

  /// Accumulates one served query's stats into the cached metric families
  /// (no-op until EnableMetrics). Atomics only — safe on the query path.
  void RecordQueryMetrics(const QueryStats& stats) const;

  /// Metric family pointers, cached once by EnableMetrics (before
  /// concurrent serving — see its comment) and poked lock-free afterwards.
  struct Metrics {
    MetricsRegistry* registry = nullptr;
    Counter* queries_total = nullptr;
    Counter* answers_total = nullptr;
    Counter* candidates_total = nullptr;
    Counter* sketch_checks = nullptr;
    Counter* sketch_pruned = nullptr;
    Counter* sketch_false_drops = nullptr;
    Histogram* stage_sketch = nullptr;
    Histogram* stage_pass1 = nullptr;
    Histogram* stage_selectivity = nullptr;
    Histogram* stage_partition = nullptr;
    Histogram* stage_pass2 = nullptr;
    Histogram* stage_filter = nullptr;
    Histogram* stage_verify = nullptr;
    Histogram* group_commit_wait = nullptr;
    Histogram* group_commit_ops = nullptr;
    Histogram* snapshot_publish = nullptr;
    Gauge* snapshot_epoch = nullptr;
  };
  Metrics metrics_;
};

}  // namespace pis

#endif  // PIS_SERVER_ENGINE_HOST_H_
