// The concurrent serving core: an EngineHost owns a sharded PIS index (plus
// its id-aligned database) behind immutable published snapshots, giving
//
//   - non-blocking concurrent readers: Search / SearchBatch / Filter pin
//     the current snapshot (one shared_ptr copy under a mutex held for
//     just that copy — never across query work), run entirely against
//     immutable state, and never wait on — or get waited on by — a
//     mutation in flight;
//   - linearizable results: mutators run under one writer mutex and publish
//     a complete new snapshot as their single atomic commit point, so every
//     query observes exactly the state left by some prefix of the applied
//     mutations (never a partial one), and a mutation that returned is
//     visible to every snapshot taken afterwards;
//   - zero-downtime maintenance: CompactShard / Compact / Rebalance rewrite
//     shards on detached copies (the copy-on-write layer of
//     ShardedFragmentIndex) and land via shard-handle swap, so the
//     PR 4 dead-ratio policy can run on the background compactor thread
//     while queries keep answering.
//
// Cost model: publishing shares everything a mutation didn't touch. A
// mutation detaches (deep-copies) only the shard it mutates, and only
// AddGraph copies the database (append-only; RemoveGraph tombstones and
// compaction never move global ids). Readers pay one mutex-guarded
// shared_ptr copy (std::atomic<std::shared_ptr> would make the pin
// lock-free, but libstdc++'s implementation trips TSan — the explicit
// mutex keeps the CI race-checking meaningful and costs nanoseconds).
#ifndef PIS_SERVER_ENGINE_HOST_H_
#define PIS_SERVER_ENGINE_HOST_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/options.h"
#include "core/sharded_pis.h"
#include "graph/graph.h"
#include "index/sharded_index.h"
#include "util/json.h"
#include "util/status.h"

namespace pis {

/// \brief Snapshot-isolated serving host over a sharded PIS index.
class EngineHost {
 public:
  /// One immutable published state. Readers that want a consistent view
  /// across several calls (or the epoch they answered at) pin one of these
  /// and use `engine` directly; the shared_ptr keeps db and index alive.
  struct Snapshot {
    std::shared_ptr<const GraphDatabase> db;
    std::shared_ptr<const ShardedFragmentIndex> index;
    ShardedPisEngine engine;  // views into *db / *index
    /// Number of mutations applied before this snapshot; bumps by exactly
    /// one per writer call (including background compactor passes that
    /// compacted at least one shard).
    uint64_t epoch = 0;

    Snapshot(std::shared_ptr<const GraphDatabase> db_in,
             std::shared_ptr<const ShardedFragmentIndex> index_in,
             const PisOptions& options, uint64_t epoch_in)
        : db(std::move(db_in)),
          index(std::move(index_in)),
          engine(db.get(), index.get(), options),
          epoch(epoch_in) {}
  };

  /// Per-shard serving stats (machine-readable via HostStats::ToJson).
  struct ShardInfo {
    int resident = 0;
    int live = 0;
    int dead = 0;
    double dead_ratio = 0;
  };
  struct HostStats {
    uint64_t epoch = 0;
    int db_slots = 0;
    int live = 0;
    int removed = 0;
    int num_shards = 0;
    int compaction_epoch = 0;
    double compact_dead_ratio = 0;
    uint64_t background_compactions = 0;
    std::vector<ShardInfo> shards;

    /// JSON shape ({"epoch":..,"shards":[{..},..],..}) — the payload of
    /// the server's `stats` reply and `pis_cli stats --json`.
    JsonValue ToJsonValue() const;
    /// Compact one-line rendering of ToJsonValue().
    std::string ToJson() const { return ToJsonValue().Serialize(); }
  };

  /// Takes ownership of an id-aligned database/index pair (the same
  /// alignment contract as ShardedPisEngine). The auto-compaction policy is
  /// `options.compact_dead_ratio` when set, else the ratio persisted in the
  /// index (manifest v4); either way it runs only on the background
  /// compactor here — RemoveGraph never compacts inline on the host.
  EngineHost(GraphDatabase db, ShardedFragmentIndex index,
             const PisOptions& options = {});
  ~EngineHost();
  EngineHost(const EngineHost&) = delete;
  EngineHost& operator=(const EngineHost&) = delete;

  /// The current published snapshot (a pointer copy; never null). The
  /// returned snapshot stays valid and frozen for as long as the caller
  /// holds it, regardless of concurrent mutations.
  std::shared_ptr<const Snapshot> snapshot() const;

  /// Reader API: each call pins one snapshot for its whole duration, so a
  /// batch sees a single consistent state.
  Result<SearchResult> Search(const Graph& query) const;
  Result<FilterResult> Filter(const Graph& query) const;
  BatchSearchResult SearchBatch(std::span<const Graph> queries,
                                int num_threads = 0) const;

  /// Serialized writers. Each successful call publishes exactly one new
  /// snapshot before returning; concurrent readers are never blocked.
  /// `epoch_out` (nullable) receives the epoch THIS mutation published —
  /// reading snapshot()->epoch afterwards could observe a later concurrent
  /// mutation's epoch, so callers that report their commit point (the
  /// server's add/remove/compact replies) must use the out-param.
  Result<int> AddGraph(const Graph& g, uint64_t* epoch_out = nullptr);
  Status RemoveGraph(int gid, uint64_t* epoch_out = nullptr);
  Status CompactShard(int s, uint64_t* epoch_out = nullptr);
  Result<int> Compact(double min_dead_ratio = 0.0,
                      uint64_t* epoch_out = nullptr);
  Result<int> Rebalance(uint64_t* epoch_out = nullptr);

  /// Background compactor: every `interval`, compact shards whose dead
  /// ratio is at/above the policy ratio (see constructor). InvalidArgument
  /// when the policy ratio is 0 and `dead_ratio_override` is too, or when
  /// already running. The first scan runs immediately on start.
  Status StartAutoCompaction(std::chrono::milliseconds interval,
                             double dead_ratio_override = 0.0);
  void StopAutoCompaction();
  bool auto_compaction_running() const;
  /// Background passes that compacted at least one shard.
  uint64_t background_compactions() const { return background_compactions_; }

  HostStats Stats() const;

  /// Persists the index under `dir` (manifest v4 records the policy ratio)
  /// and the database to `db_path` (native text format) from one snapshot,
  /// so the pair on disk is always mutually consistent.
  Status Save(const std::string& dir, const std::string& db_path) const;

  const PisOptions& options() const { return options_; }
  double compact_dead_ratio() const { return compact_dead_ratio_; }

 private:
  /// Publishes master state as the next snapshot. Callers hold writer_mu_.
  void Publish();
  void CompactorLoop(std::chrono::milliseconds interval, double dead_ratio);

  PisOptions options_;
  /// The background policy ratio (options override, else persisted value).
  double compact_dead_ratio_ = 0;

  /// Writer state: mutators copy-on-write from here and publish. master_db_
  /// is never mutated in place once shared with a snapshot — AddGraph
  /// replaces it with an appended copy.
  mutable std::mutex writer_mu_;
  std::shared_ptr<const GraphDatabase> master_db_;
  ShardedFragmentIndex master_;
  uint64_t epoch_ = 0;

  /// Guards only the pointer swap/copy of current_ — held for nanoseconds,
  /// never across query execution or mutation work.
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const Snapshot> current_;

  /// Background compactor plumbing. lifecycle_mu_ guards the thread object
  /// itself (Start/Stop/running racing each other); compactor_mu_ guards
  /// only the stop flag the loop's condition variable waits on — the loop
  /// must be able to take it while Stop holds lifecycle_mu_ across join().
  mutable std::mutex compactor_lifecycle_mu_;
  std::thread compactor_;
  std::mutex compactor_mu_;
  std::condition_variable compactor_cv_;
  bool compactor_stop_ = false;
  std::atomic<uint64_t> background_compactions_{0};
};

}  // namespace pis

#endif  // PIS_SERVER_ENGINE_HOST_H_
