#include "server/engine_host.h"

#include <utility>

#include "graph/io.h"
#include "util/json.h"
#include "util/logging.h"

namespace pis {

JsonValue EngineHost::HostStats::ToJsonValue() const {
  JsonValue obj = JsonValue::Object();
  obj.Set("epoch", static_cast<uint64_t>(epoch));
  obj.Set("db_slots", db_slots);
  obj.Set("live", live);
  obj.Set("removed", removed);
  obj.Set("num_shards", num_shards);
  obj.Set("compaction_epoch", compaction_epoch);
  obj.Set("compact_dead_ratio", compact_dead_ratio);
  obj.Set("background_compactions",
          static_cast<uint64_t>(background_compactions));
  JsonValue shard_list = JsonValue::Array();
  for (const ShardInfo& s : shards) {
    JsonValue entry = JsonValue::Object();
    entry.Set("resident", s.resident);
    entry.Set("live", s.live);
    entry.Set("dead", s.dead);
    entry.Set("dead_ratio", s.dead_ratio);
    shard_list.Push(std::move(entry));
  }
  obj.Set("shards", std::move(shard_list));
  return obj;
}

EngineHost::EngineHost(GraphDatabase db, ShardedFragmentIndex index,
                       const PisOptions& options)
    : options_(options),
      master_db_(std::make_shared<const GraphDatabase>(std::move(db))),
      master_(std::move(index)) {
  PIS_CHECK(master_.db_size() == master_db_->size())
      << "sharded index was built over a different database";
  compact_dead_ratio_ = options_.compact_dead_ratio > 0
                            ? options_.compact_dead_ratio
                            : master_.compact_dead_ratio();
  // The dead-ratio policy belongs to the background compactor here; inline
  // compaction inside RemoveGraph would re-serialize it into the write
  // path. (Save() restores the ratio so the manifest keeps the policy.)
  master_.set_compact_dead_ratio(0);
  std::lock_guard<std::mutex> lock(writer_mu_);
  Publish();
}

EngineHost::~EngineHost() { StopAutoCompaction(); }

void EngineHost::Publish() {
  // The index copy shares every shard handle with master_; the next
  // mutation of a shard detaches it first (COW), so published snapshots
  // are frozen for their whole lifetime.
  auto frozen = std::make_shared<const ShardedFragmentIndex>(master_);
  auto next = std::make_shared<const Snapshot>(master_db_, std::move(frozen),
                                               options_, epoch_);
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  current_ = std::move(next);
}

std::shared_ptr<const EngineHost::Snapshot> EngineHost::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return current_;
}

Result<SearchResult> EngineHost::Search(const Graph& query) const {
  std::shared_ptr<const Snapshot> snap = snapshot();
  return snap->engine.Search(query);
}

Result<FilterResult> EngineHost::Filter(const Graph& query) const {
  std::shared_ptr<const Snapshot> snap = snapshot();
  return snap->engine.Filter(query);
}

BatchSearchResult EngineHost::SearchBatch(std::span<const Graph> queries,
                                          int num_threads) const {
  std::shared_ptr<const Snapshot> snap = snapshot();
  return snap->engine.SearchBatch(queries, num_threads);
}

Result<int> EngineHost::AddGraph(const Graph& g, uint64_t* epoch_out) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  PIS_ASSIGN_OR_RETURN(int gid, master_.AddGraph(g));
  // Copy-on-add keeps ids aligned without mutating the database published
  // snapshots still reference. O(db) per add; batch adds through the
  // protocol amortize by arriving as one connection-serialized stream.
  auto appended = std::make_shared<GraphDatabase>(*master_db_);
  const int db_gid = appended->Add(g);
  PIS_CHECK(db_gid == gid) << "index and database ids diverged";
  master_db_ = std::move(appended);
  ++epoch_;
  Publish();
  if (epoch_out != nullptr) *epoch_out = epoch_;
  return gid;
}

Status EngineHost::RemoveGraph(int gid, uint64_t* epoch_out) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  PIS_RETURN_NOT_OK(master_.RemoveGraph(gid));
  ++epoch_;
  Publish();
  if (epoch_out != nullptr) *epoch_out = epoch_;
  return Status::OK();
}

Status EngineHost::CompactShard(int s, uint64_t* epoch_out) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  PIS_RETURN_NOT_OK(master_.CompactShard(s));
  ++epoch_;
  Publish();
  if (epoch_out != nullptr) *epoch_out = epoch_;
  return Status::OK();
}

Result<int> EngineHost::Compact(double min_dead_ratio, uint64_t* epoch_out) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  PIS_ASSIGN_OR_RETURN(int compacted, master_.Compact(min_dead_ratio));
  ++epoch_;
  Publish();
  if (epoch_out != nullptr) *epoch_out = epoch_;
  return compacted;
}

Result<int> EngineHost::Rebalance(uint64_t* epoch_out) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  PIS_ASSIGN_OR_RETURN(int migrated, master_.Rebalance(*master_db_));
  ++epoch_;
  Publish();
  if (epoch_out != nullptr) *epoch_out = epoch_;
  return migrated;
}

Status EngineHost::StartAutoCompaction(std::chrono::milliseconds interval,
                                       double dead_ratio_override) {
  const double ratio =
      dead_ratio_override > 0 ? dead_ratio_override : compact_dead_ratio_;
  if (ratio <= 0 || ratio > 1) {
    return Status::InvalidArgument(
        "auto-compaction needs a dead ratio in (0, 1]; configure "
        "PisOptions::compact_dead_ratio or pass an override");
  }
  if (interval.count() <= 0) {
    return Status::InvalidArgument("auto-compaction interval must be > 0");
  }
  std::lock_guard<std::mutex> lifecycle(compactor_lifecycle_mu_);
  if (compactor_.joinable()) {
    return Status::AlreadyExists("auto-compaction is already running");
  }
  {
    std::lock_guard<std::mutex> lock(compactor_mu_);
    compactor_stop_ = false;
  }
  compactor_ = std::thread(
      [this, interval, ratio] { CompactorLoop(interval, ratio); });
  return Status::OK();
}

void EngineHost::StopAutoCompaction() {
  std::lock_guard<std::mutex> lifecycle(compactor_lifecycle_mu_);
  if (!compactor_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(compactor_mu_);
    compactor_stop_ = true;
  }
  compactor_cv_.notify_all();
  compactor_.join();
  compactor_ = std::thread();
}

bool EngineHost::auto_compaction_running() const {
  std::lock_guard<std::mutex> lifecycle(compactor_lifecycle_mu_);
  return compactor_.joinable();
}

void EngineHost::CompactorLoop(std::chrono::milliseconds interval,
                               double dead_ratio) {
  while (true) {
    {
      // One pass. Readers never notice: the rewrite happens on detached
      // shard copies and lands with the snapshot publish.
      std::lock_guard<std::mutex> lock(writer_mu_);
      Result<int> compacted = master_.Compact(dead_ratio);
      // Compact on a healthy index cannot fail; a zero result just means no
      // shard crossed the threshold — skip the publish so the epoch only
      // moves when the state does.
      if (compacted.ok() && compacted.value() > 0) {
        ++epoch_;
        Publish();
        ++background_compactions_;
      }
    }
    std::unique_lock<std::mutex> lock(compactor_mu_);
    if (compactor_cv_.wait_for(lock, interval,
                               [this] { return compactor_stop_; })) {
      return;
    }
  }
}

EngineHost::HostStats EngineHost::Stats() const {
  std::shared_ptr<const Snapshot> snap = snapshot();
  const ShardedFragmentIndex& index = *snap->index;
  HostStats stats;
  stats.epoch = snap->epoch;
  stats.db_slots = index.db_size();
  stats.live = index.num_live();
  stats.removed = static_cast<int>(index.tombstones().size());
  stats.num_shards = index.num_shards();
  stats.compaction_epoch = index.compaction_epoch();
  stats.compact_dead_ratio = compact_dead_ratio_;
  stats.background_compactions = background_compactions_.load();
  stats.shards.reserve(index.num_shards());
  for (int s = 0; s < index.num_shards(); ++s) {
    ShardInfo info;
    info.resident = index.shard_size(s);
    info.live = index.shard(s).num_live();
    info.dead = static_cast<int>(index.shard(s).tombstones().size());
    info.dead_ratio = index.shard(s).dead_ratio();
    stats.shards.push_back(info);
  }
  return stats;
}

Status EngineHost::Save(const std::string& dir,
                        const std::string& db_path) const {
  // Serialize against writers so the saved pair is one published state, and
  // restore the policy ratio into the manifest (the host zeroes it on the
  // live index to keep RemoveGraph from compacting inline).
  std::lock_guard<std::mutex> lock(writer_mu_);
  ShardedFragmentIndex to_save = master_;
  to_save.set_compact_dead_ratio(compact_dead_ratio_);
  PIS_RETURN_NOT_OK(to_save.SaveDir(dir));
  return WriteGraphDatabaseFile(*master_db_, db_path);
}

}  // namespace pis
