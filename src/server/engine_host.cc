#include "server/engine_host.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "graph/io.h"
#include "util/fs_util.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/timer.h"

namespace pis {

namespace {

/// Parent directory of `path` for SyncDir — "." when the path is a bare
/// relative filename.
std::string ParentDirOf(const std::string& path) {
  const std::string parent =
      std::filesystem::path(path).parent_path().string();
  return parent.empty() ? std::string(".") : parent;
}

}  // namespace

JsonValue EngineHost::HostStats::ToJsonValue() const {
  JsonValue obj = JsonValue::Object();
  obj.Set("epoch", static_cast<uint64_t>(epoch));
  obj.Set("db_slots", db_slots);
  obj.Set("live", live);
  obj.Set("removed", removed);
  obj.Set("num_shards", num_shards);
  obj.Set("compaction_epoch", compaction_epoch);
  obj.Set("compact_dead_ratio", compact_dead_ratio);
  obj.Set("background_compactions",
          static_cast<uint64_t>(background_compactions));
  obj.Set("wal_bytes", static_cast<uint64_t>(wal_bytes));
  obj.Set("wal_records", static_cast<uint64_t>(wal_records));
  obj.Set("checkpoints", static_cast<uint64_t>(checkpoints));
  obj.Set("group_commit_batches", static_cast<uint64_t>(group_commit_batches));
  obj.Set("group_commit_ops", static_cast<uint64_t>(group_commit_ops));
  obj.Set("group_commit_batch_size",
          static_cast<uint64_t>(group_commit_max_batch));
  obj.Set("sketch_checks", static_cast<uint64_t>(sketch_checks));
  obj.Set("sketch_pruned", static_cast<uint64_t>(sketch_pruned));
  obj.Set("sketch_false_drops", static_cast<uint64_t>(sketch_false_drops));
  JsonValue shard_list = JsonValue::Array();
  for (const ShardInfo& s : shards) {
    JsonValue entry = JsonValue::Object();
    entry.Set("resident", s.resident);
    entry.Set("live", s.live);
    entry.Set("dead", s.dead);
    entry.Set("dead_ratio", s.dead_ratio);
    shard_list.Push(std::move(entry));
  }
  obj.Set("shards", std::move(shard_list));
  return obj;
}

EngineHost::EngineHost(GraphDatabase db, ShardedFragmentIndex index,
                       const PisOptions& options)
    : options_(options),
      master_db_(std::make_shared<const GraphDatabase>(std::move(db))),
      master_(std::move(index)) {
  // No other thread can see this host yet; the lock still scopes the whole
  // body so the guarded-member accesses below are provably disciplined.
  MutexLock lock(&writer_mu_);
  PIS_CHECK(master_.db_size() == master_db_->size())
      << "sharded index was built over a different database";
  compact_dead_ratio_ = options_.compact_dead_ratio > 0
                            ? options_.compact_dead_ratio
                            : master_.compact_dead_ratio();
  // The dead-ratio policy belongs to the background compactor here; inline
  // compaction inside RemoveGraph would re-serialize it into the write
  // path. (Save() restores the ratio so the manifest keeps the policy.)
  master_.set_compact_dead_ratio(0);
  Publish();
}

EngineHost::~EngineHost() { StopAutoCompaction(); }

void EngineHost::EnableMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  metrics_.registry = registry;
  metrics_.queries_total = registry->GetCounter(
      "pis_queries_total", "Queries served by this host");
  metrics_.answers_total = registry->GetCounter(
      "pis_query_answers_total", "Verified answers returned");
  metrics_.candidates_total = registry->GetCounter(
      "pis_query_candidates_total", "Candidates surviving the PIS filter");
  metrics_.sketch_checks = registry->GetCounter(
      "pis_sketch_checks_total", "Graphs probed against the sketch");
  metrics_.sketch_pruned = registry->GetCounter(
      "pis_sketch_pruned_total", "Probed graphs pruned by the sketch");
  metrics_.sketch_false_drops = registry->GetCounter(
      "pis_sketch_false_drops_total",
      "Probes that passed the sketch but died in pass-1");
  const std::string stage_help = "Per-stage query pipeline latency";
  auto stage = [&](const char* name) {
    return registry->GetHistogram("pis_query_stage_seconds", stage_help, {},
                                  {{"stage", name}});
  };
  metrics_.stage_sketch = stage("sketch");
  metrics_.stage_pass1 = stage("pass1");
  metrics_.stage_selectivity = stage("selectivity");
  metrics_.stage_partition = stage("partition");
  metrics_.stage_pass2 = stage("pass2");
  metrics_.stage_filter = stage("filter");
  metrics_.stage_verify = stage("verify");
  metrics_.group_commit_wait = registry->GetHistogram(
      "pis_group_commit_wait_seconds",
      "Writer-observed enqueue-to-commit latency");
  metrics_.group_commit_ops = registry->GetHistogram(
      "pis_group_commit_batch_ops", "Writer ops coalesced per commit batch",
      {1, 2, 4, 8, 16, 32, 64, 128});
  metrics_.snapshot_publish = registry->GetHistogram(
      "pis_snapshot_publish_seconds", "Snapshot publish latency per commit");
  metrics_.snapshot_epoch = registry->GetGauge(
      "pis_snapshot_epoch", "Epoch of the currently published snapshot");
  metrics_.snapshot_epoch->Set(static_cast<int64_t>(snapshot()->epoch));
  MutexLock lock(&writer_mu_);
  if (wal_ != nullptr) wal_->EnableMetrics(registry);
}

void EngineHost::RecordQueryMetrics(const QueryStats& stats) const {
  if (metrics_.queries_total == nullptr) return;
  metrics_.queries_total->Inc();
  metrics_.answers_total->Inc(stats.answers);
  metrics_.candidates_total->Inc(stats.candidates_final);
  metrics_.sketch_checks->Inc(stats.sketch_checks);
  metrics_.sketch_pruned->Inc(stats.sketch_pruned);
  metrics_.sketch_false_drops->Inc(stats.sketch_false_drops);
  metrics_.stage_sketch->Observe(stats.sketch_seconds);
  metrics_.stage_pass1->Observe(stats.pass1_seconds);
  metrics_.stage_selectivity->Observe(stats.selectivity_seconds);
  metrics_.stage_partition->Observe(stats.partition_seconds);
  metrics_.stage_pass2->Observe(stats.pass2_seconds);
  metrics_.stage_filter->Observe(stats.filter_seconds);
  metrics_.stage_verify->Observe(stats.verify_seconds);
}

Status EngineHost::AttachWal(std::unique_ptr<WriteAheadLog> wal) {
  if (wal == nullptr) {
    return Status::InvalidArgument("cannot attach a null WAL");
  }
  MutexLock lock(&writer_mu_);
  if (wal_ != nullptr) {
    return Status::AlreadyExists("a WAL is already attached");
  }
  wal_ = std::move(wal);
  if (metrics_.registry != nullptr) wal_->EnableMetrics(metrics_.registry);
  wal_view_.store(wal_.get(), std::memory_order_release);
  // Epochs in the log must keep growing across restarts, or a later
  // checkpoint's TruncateThrough would drop records it does not cover.
  if (wal_->max_recovered_epoch() > epoch_) {
    epoch_ = wal_->max_recovered_epoch();
    Publish();
  }
  return Status::OK();
}

bool EngineHost::wal_attached() const {
  return wal_view_.load(std::memory_order_acquire) != nullptr;
}

Status EngineHost::EnableCheckpoints(CheckpointConfig config) {
  if (config.index_dir.empty() || config.db_path.empty()) {
    return Status::InvalidArgument(
        "checkpointing needs an index directory and a database path");
  }
  if (!wal_attached()) {
    return Status::InvalidArgument(
        "checkpointing requires an attached WAL — without one there is "
        "nothing to truncate and Save() already covers plain persistence");
  }
  {
    MutexLock lifecycle(&compactor_lifecycle_mu_);
    if (compactor_.joinable()) {
      return Status::AlreadyExists(
          "configure checkpoints before starting the maintenance thread");
    }
  }
  MutexLock lock(&checkpoint_mu_);
  checkpoint_ = std::move(config);
  checkpoints_enabled_ = true;
  return Status::OK();
}

Status EngineHost::Checkpoint() {
  // Serializes whole checkpoints against each other (manual vs periodic)
  // but never against writers: everything below works off one pinned
  // immutable snapshot until the final WAL truncate.
  MutexLock ckpt_lock(&checkpoint_mu_);
  if (!checkpoints_enabled_) {
    return Status::InvalidArgument(
        "checkpointing is not configured (call EnableCheckpoints)");
  }
  std::shared_ptr<const Snapshot> snap = snapshot();

  // 1. Write both components under temp names, fully fsynced, so the swaps
  // below move only durable bytes.
  const std::string tmp_dir = checkpoint_.index_dir + ".ckpt";
  std::error_code ec;
  std::filesystem::remove_all(tmp_dir, ec);  // leftover of a crashed attempt
  ShardedFragmentIndex to_save = *snap->index;
  to_save.set_compact_dead_ratio(compact_dead_ratio_);
  PIS_RETURN_NOT_OK(to_save.SaveDir(tmp_dir));
  PIS_RETURN_NOT_OK(SyncTree(tmp_dir));
  const std::string tmp_db = checkpoint_.db_path + ".ckpt";
  PIS_RETURN_NOT_OK(WriteGraphDatabaseFile(*snap->db, tmp_db));
  PIS_RETURN_NOT_OK(SyncFile(tmp_db));

  // 2. Swap in the database (rename over a file is atomic)...
  std::filesystem::rename(tmp_db, checkpoint_.db_path, ec);
  if (ec) {
    return Status::IOError("cannot swap checkpointed db into " +
                           checkpoint_.db_path + ": " + ec.message());
  }
  PIS_RETURN_NOT_OK(SyncDir(ParentDirOf(checkpoint_.db_path)));

  // 3. ...then the index, via the `.stale` dance (rename cannot clobber a
  // non-empty directory). A crash inside this window leaves either the old
  // dir, or `.stale` + `.ckpt` — loaders fall back to `.stale`, and WAL
  // replay reconciles whichever generation they got.
  const std::string stale = checkpoint_.index_dir + ".stale";
  std::filesystem::remove_all(stale, ec);
  if (std::filesystem::exists(checkpoint_.index_dir)) {
    std::filesystem::rename(checkpoint_.index_dir, stale, ec);
    if (ec) {
      return Status::IOError("cannot set aside previous index " +
                             checkpoint_.index_dir + ": " + ec.message());
    }
  }
  std::filesystem::rename(tmp_dir, checkpoint_.index_dir, ec);
  if (ec) {
    return Status::IOError("cannot swap checkpointed index into " +
                           checkpoint_.index_dir + ": " + ec.message());
  }
  std::filesystem::remove_all(stale, ec);
  PIS_RETURN_NOT_OK(SyncDir(ParentDirOf(checkpoint_.index_dir)));

  // 4. The pair on disk now covers everything through snap->epoch; records
  // at or below it are dead weight. Writer lock excludes a concurrent
  // batch's Append during the log rewrite.
  {
    MutexLock lock(&writer_mu_);
    if (wal_ != nullptr) {
      PIS_RETURN_NOT_OK(wal_->TruncateThrough(snap->epoch));
    }
  }
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void EngineHost::Publish() {
  // The index copy shares every shard handle with master_; the next
  // mutation of a shard detaches it first (COW), so published snapshots
  // are frozen for their whole lifetime.
  auto frozen = std::make_shared<const ShardedFragmentIndex>(master_);
  auto next = std::make_shared<const Snapshot>(master_db_, std::move(frozen),
                                               options_, epoch_);
  MutexLock lock(&snapshot_mu_);
  current_ = std::move(next);
}

std::shared_ptr<const EngineHost::Snapshot> EngineHost::snapshot() const {
  MutexLock lock(&snapshot_mu_);
  return current_;
}

void EngineHost::AccountQuery(const QueryStats& stats) const {
  sketch_checks_.fetch_add(stats.sketch_checks, std::memory_order_relaxed);
  sketch_pruned_.fetch_add(stats.sketch_pruned, std::memory_order_relaxed);
  sketch_false_drops_.fetch_add(stats.sketch_false_drops,
                                std::memory_order_relaxed);
  RecordQueryMetrics(stats);
}

Result<SearchResult> EngineHost::Search(const Graph& query) const {
  std::shared_ptr<const Snapshot> snap = snapshot();
  Result<SearchResult> result = snap->engine.Search(query);
  if (result.ok()) AccountQuery(result.value().stats);
  return result;
}

Result<FilterResult> EngineHost::Filter(const Graph& query) const {
  std::shared_ptr<const Snapshot> snap = snapshot();
  Result<FilterResult> result = snap->engine.Filter(query);
  if (result.ok()) AccountQuery(result.value().stats);
  return result;
}

BatchSearchResult EngineHost::SearchBatch(std::span<const Graph> queries,
                                          int num_threads) const {
  std::shared_ptr<const Snapshot> snap = snapshot();
  BatchSearchResult batch = snap->engine.SearchBatch(queries, num_threads);
  sketch_checks_.fetch_add(batch.total_stats.sketch_checks,
                           std::memory_order_relaxed);
  sketch_pruned_.fetch_add(batch.total_stats.sketch_pruned,
                           std::memory_order_relaxed);
  sketch_false_drops_.fetch_add(batch.total_stats.sketch_false_drops,
                                std::memory_order_relaxed);
  // Not AccountQuery: the sketch counters fold once from total_stats, only
  // the per-query metric families want per-result granularity.
  for (const Result<SearchResult>& r : batch.results) {
    if (r.ok()) RecordQueryMetrics(r.value().stats);
  }
  return batch;
}

void EngineHost::Submit(PendingWrite* op) {
  std::vector<PendingWrite*> batch;
  {
    MutexLock lock(&commit_mu_);
    commit_queue_.push_back(op);
    // While a leader is committing, just wait: either it drains us into
    // its batch (done flips true) or it finishes and we take over
    // leadership. Writers arriving here during a commit are exactly how
    // batches form.
    while (!op->done && commit_leader_active_) {
      commit_cv_.Wait(&commit_mu_);
    }
    if (op->done) return;
    commit_leader_active_ = true;
    batch.swap(commit_queue_);
  }
  CommitBatch(batch);  // takes writer_mu_; commit_mu_ stays free
  {
    MutexLock lock(&commit_mu_);
    // Results were written before re-taking commit_mu_, so waiters that
    // observe done==true under the lock see their gid/epoch/status too.
    for (PendingWrite* b : batch) b->done = true;
    commit_leader_active_ = false;
  }
  commit_cv_.NotifyAll();
}

void EngineHost::CommitBatch(const std::vector<PendingWrite*>& batch) {
  MutexLock lock(&writer_mu_);
  const uint64_t next_epoch = epoch_ + 1;
  std::shared_ptr<GraphDatabase> appended;  // one copy for the whole batch
  std::vector<WalRecord> wal_batch;
  std::vector<PendingWrite*> applied;
  for (PendingWrite* op : batch) {
    if (op->kind == PendingWrite::Kind::kAdd) {
      const int db_size =
          appended != nullptr ? appended->size() : master_db_->size();
      if (master_.db_size() != db_size) {
        // A previous divergent write left the pair misaligned; refuse new
        // adds instead of compounding (or crashing on) the damage.
        op->status = Status::Internal(
            "index covers " + std::to_string(master_.db_size()) +
            " graphs but the database holds " + std::to_string(db_size) +
            "; rejecting writes until the pair is rebuilt");
        continue;
      }
      Result<int> gid = master_.AddGraph(*op->graph);
      if (!gid.ok()) {
        op->status = gid.status();
        continue;
      }
      if (appended == nullptr) {
        appended = std::make_shared<GraphDatabase>(*master_db_);
      }
      const int db_gid = appended->Add(*op->graph);
      if (db_gid != gid.value()) {
        // Divergence here means a broken invariant, but one write must not
        // kill the serving process: tombstone the index slot and fail the
        // op with Internal — the alignment pre-check above quarantines
        // later adds.
        Status rollback = master_.RemoveGraph(gid.value());
        if (!rollback.ok()) {
          PIS_LOG(Error) << "could not roll back divergent add of gid "
                         << gid.value() << ": " << rollback.ToString();
        }
        op->status = Status::Internal(
            "index assigned gid " + std::to_string(gid.value()) +
            " but the database assigned " + std::to_string(db_gid) +
            "; the add was rolled back");
        continue;
      }
      op->gid = gid.value();
      op->status = Status::OK();
      if (wal_ != nullptr) {
        WalRecord rec;
        rec.op = WalRecord::Op::kAdd;
        rec.epoch = next_epoch;
        rec.gid = op->gid;
        // Stamp the realized placement so a shard-subset replica's replay
        // can reproduce it without the full gid sequence (wal.h, v2).
        rec.shard = master_.shard_of(op->gid);
        rec.graph_text = FormatGraph(*op->graph, op->gid);
        wal_batch.push_back(std::move(rec));
      }
      applied.push_back(op);
    } else if (op->kind == PendingWrite::Kind::kAddAt) {
      const int db_size =
          appended != nullptr ? appended->size() : master_db_->size();
      if (master_.db_size() != db_size) {
        op->status = Status::Internal(
            "index covers " + std::to_string(master_.db_size()) +
            " graphs but the database holds " + std::to_string(db_size) +
            "; rejecting writes until the pair is rebuilt");
        continue;
      }
      if (op->gid < db_size) {
        // Already-applied placement (a catch-up replay after a lost ack):
        // succeed iff the slot really carries this placement — resident in
        // the named shard, or added there and since removed/compacted.
        const bool applied_before = master_.shard_of(op->gid) == op->shard ||
                                    !master_.IsLive(op->gid);
        op->status = applied_before
                         ? Status::OK()
                         : Status::AlreadyExists(
                               "gid " + std::to_string(op->gid) +
                               " is resident in shard " +
                               std::to_string(master_.shard_of(op->gid)) +
                               ", not " + std::to_string(op->shard));
        continue;  // no state change, no WAL record, no epoch
      }
      Status placed = master_.AddGraphAt(op->gid, op->shard, *op->graph);
      if (!placed.ok()) {
        op->status = placed;
        continue;
      }
      if (appended == nullptr) {
        appended = std::make_shared<GraphDatabase>(*master_db_);
      }
      // Foreign-gid holes below the placement get empty placeholder graphs
      // (the index tombstoned the same slots).
      while (appended->size() < op->gid) appended->Add(Graph());
      const int db_gid = appended->Add(*op->graph);
      PIS_CHECK(db_gid == op->gid);
      op->status = Status::OK();
      if (wal_ != nullptr) {
        WalRecord rec;
        rec.op = WalRecord::Op::kAdd;
        rec.epoch = next_epoch;
        rec.gid = op->gid;
        rec.shard = op->shard;
        rec.graph_text = FormatGraph(*op->graph, op->gid);
        wal_batch.push_back(std::move(rec));
      }
      applied.push_back(op);
    } else {
      Status removed = master_.RemoveGraph(op->gid);
      op->status = removed;
      if (!removed.ok()) continue;
      if (wal_ != nullptr) {
        WalRecord rec;
        rec.op = WalRecord::Op::kRemove;
        rec.epoch = next_epoch;
        rec.gid = op->gid;
        wal_batch.push_back(std::move(rec));
      }
      applied.push_back(op);
    }
  }
  if (applied.empty()) return;  // every op failed: no state change, no epoch

  double wal_append_ms = 0;
  if (wal_ != nullptr && !wal_batch.empty()) {
    Timer wal_timer;
    Status logged = wal_->Append(wal_batch);
    wal_append_ms = wal_timer.Millis();
    if (!logged.ok()) {
      // The batch already mutated in-memory state and cannot be unapplied;
      // publish it for internal consistency but acknowledge NOTHING — every
      // caller sees the WAL failure, so the durability contract ("ok means
      // recoverable") holds. The ops' outcome after a restart is
      // indeterminate, exactly like any unacknowledged write.
      PIS_LOG(Error) << "WAL append failed; refusing to acknowledge "
                     << applied.size()
                     << " applied op(s): " << logged.ToString();
      for (PendingWrite* op : applied) op->status = logged;
    }
  }

  if (appended != nullptr) master_db_ = std::move(appended);
  epoch_ = next_epoch;
  Timer publish_timer;
  Publish();
  const double publish_ms = publish_timer.Millis();
  for (PendingWrite* op : applied) {
    op->epoch = epoch_;
    op->timing.wal_append_ms = wal_append_ms;
    op->timing.publish_ms = publish_ms;
    op->timing.batch_ops = applied.size();
  }

  group_commit_batches_.fetch_add(1, std::memory_order_relaxed);
  group_commit_ops_.fetch_add(batch.size(), std::memory_order_relaxed);
  uint64_t prev = group_commit_max_batch_.load(std::memory_order_relaxed);
  while (prev < batch.size() &&
         !group_commit_max_batch_.compare_exchange_weak(
             prev, batch.size(), std::memory_order_relaxed)) {
  }
  if (metrics_.group_commit_ops != nullptr) {
    metrics_.group_commit_ops->Observe(static_cast<double>(applied.size()));
    metrics_.snapshot_publish->Observe(publish_ms / 1e3);
    metrics_.snapshot_epoch->Set(static_cast<int64_t>(epoch_));
  }
}

Result<int> EngineHost::AddGraph(const Graph& g, uint64_t* epoch_out,
                                 WriteTiming* timing_out) {
  PendingWrite op;
  op.kind = PendingWrite::Kind::kAdd;
  op.graph = &g;
  Timer wait_timer;
  Submit(&op);
  FinishWrite(&op, wait_timer.Millis(), timing_out);
  PIS_RETURN_NOT_OK(op.status);
  if (epoch_out != nullptr) *epoch_out = op.epoch;
  return op.gid;
}

Status EngineHost::AddGraphAt(int gid, int shard, const Graph& g,
                              uint64_t* epoch_out, WriteTiming* timing_out) {
  PendingWrite op;
  op.kind = PendingWrite::Kind::kAddAt;
  op.graph = &g;
  op.gid = gid;
  op.shard = shard;
  Timer wait_timer;
  Submit(&op);
  FinishWrite(&op, wait_timer.Millis(), timing_out);
  PIS_RETURN_NOT_OK(op.status);
  if (epoch_out != nullptr) *epoch_out = op.epoch;
  return Status::OK();
}

Status EngineHost::RemoveGraph(int gid, uint64_t* epoch_out,
                               WriteTiming* timing_out) {
  PendingWrite op;
  op.kind = PendingWrite::Kind::kRemove;
  op.gid = gid;
  Timer wait_timer;
  Submit(&op);
  FinishWrite(&op, wait_timer.Millis(), timing_out);
  PIS_RETURN_NOT_OK(op.status);
  if (epoch_out != nullptr) *epoch_out = op.epoch;
  return Status::OK();
}

void EngineHost::FinishWrite(PendingWrite* op, double queue_wait_ms,
                             WriteTiming* timing_out) const {
  op->timing.queue_wait_ms = queue_wait_ms;
  if (timing_out != nullptr) *timing_out = op->timing;
  if (metrics_.group_commit_wait != nullptr) {
    metrics_.group_commit_wait->Observe(queue_wait_ms / 1e3);
  }
}

Status EngineHost::CompactShard(int s, uint64_t* epoch_out) {
  MutexLock lock(&writer_mu_);
  PIS_RETURN_NOT_OK(master_.CompactShard(s));
  ++epoch_;
  Publish();
  if (epoch_out != nullptr) *epoch_out = epoch_;
  return Status::OK();
}

Result<int> EngineHost::Compact(double min_dead_ratio, uint64_t* epoch_out) {
  MutexLock lock(&writer_mu_);
  PIS_ASSIGN_OR_RETURN(int compacted, master_.Compact(min_dead_ratio));
  ++epoch_;
  Publish();
  if (epoch_out != nullptr) *epoch_out = epoch_;
  return compacted;
}

Result<int> EngineHost::Rebalance(uint64_t* epoch_out) {
  MutexLock lock(&writer_mu_);
  PIS_ASSIGN_OR_RETURN(int migrated, master_.Rebalance(*master_db_));
  ++epoch_;
  Publish();
  if (epoch_out != nullptr) *epoch_out = epoch_;
  return migrated;
}

Status EngineHost::StartAutoCompaction(std::chrono::milliseconds interval,
                                       double dead_ratio_override) {
  const double ratio =
      dead_ratio_override > 0 ? dead_ratio_override : compact_dead_ratio_;
  if (ratio > 1) {
    return Status::InvalidArgument("compaction dead ratio must be <= 1");
  }
  bool periodic_checkpoints = false;
  {
    MutexLock lock(&checkpoint_mu_);
    periodic_checkpoints =
        checkpoints_enabled_ && checkpoint_.interval.count() > 0;
  }
  if (ratio <= 0 && !periodic_checkpoints) {
    return Status::InvalidArgument(
        "the maintenance thread needs work: a dead ratio in (0, 1] "
        "(PisOptions::compact_dead_ratio or the override) and/or a periodic "
        "checkpoint interval (EnableCheckpoints)");
  }
  if (interval.count() <= 0) {
    return Status::InvalidArgument("auto-compaction interval must be > 0");
  }
  MutexLock lifecycle(&compactor_lifecycle_mu_);
  if (compactor_.joinable()) {
    return Status::AlreadyExists("auto-compaction is already running");
  }
  {
    MutexLock lock(&compactor_mu_);
    compactor_stop_ = false;
  }
  const double compact_ratio = ratio > 0 ? ratio : 0;
  compactor_ = std::thread([this, interval, compact_ratio] {
    MaintenanceLoop(interval, compact_ratio);
  });
  return Status::OK();
}

void EngineHost::StopAutoCompaction() {
  MutexLock lifecycle(&compactor_lifecycle_mu_);
  if (!compactor_.joinable()) return;
  {
    MutexLock lock(&compactor_mu_);
    compactor_stop_ = true;
  }
  compactor_cv_.NotifyAll();
  compactor_.join();
  compactor_ = std::thread();
}

bool EngineHost::auto_compaction_running() const {
  MutexLock lifecycle(&compactor_lifecycle_mu_);
  return compactor_.joinable();
}

void EngineHost::MaintenanceLoop(std::chrono::milliseconds interval,
                                 double dead_ratio) {
  using Clock = std::chrono::steady_clock;
  std::chrono::milliseconds ckpt_interval{0};
  {
    MutexLock lock(&checkpoint_mu_);
    if (checkpoints_enabled_) ckpt_interval = checkpoint_.interval;
  }
  const bool compaction = dead_ratio > 0;
  const bool checkpointing = ckpt_interval.count() > 0;
  // First compaction scan runs immediately (the PR 5 contract); the first
  // checkpoint waits one full interval — there is nothing to persist yet.
  Clock::time_point next_compact = Clock::now();
  Clock::time_point next_checkpoint = Clock::now() + ckpt_interval;
  while (true) {
    const Clock::time_point now = Clock::now();
    if (compaction && now >= next_compact) {
      // One pass. Readers never notice: the rewrite happens on detached
      // shard copies and lands with the snapshot publish.
      MutexLock lock(&writer_mu_);
      Result<int> compacted = master_.Compact(dead_ratio);
      // Compact on a healthy index cannot fail; a zero result just means no
      // shard crossed the threshold — skip the publish so the epoch only
      // moves when the state does.
      if (compacted.ok() && compacted.value() > 0) {
        ++epoch_;
        Publish();
        ++background_compactions_;
      }
      next_compact = Clock::now() + interval;
    }
    if (checkpointing && now >= next_checkpoint) {
      Status checkpointed = Checkpoint();
      if (!checkpointed.ok()) {
        // Keep serving — the WAL still covers everything; retry next tick.
        PIS_LOG(Error) << "periodic checkpoint failed: "
                       << checkpointed.ToString();
      }
      next_checkpoint = Clock::now() + ckpt_interval;
    }
    Clock::time_point deadline = Clock::time_point::max();
    if (compaction) deadline = next_compact;
    if (checkpointing) deadline = std::min(deadline, next_checkpoint);
    // Condition loop lives here (not behind a predicate lambda) so the
    // guarded read of compactor_stop_ stays visible to the thread-safety
    // analysis.
    MutexLock lock(&compactor_mu_);
    while (!compactor_stop_) {
      if (compactor_cv_.WaitUntil(&compactor_mu_, deadline)) break;
    }
    if (compactor_stop_) return;
  }
}

EngineHost::HostStats EngineHost::Stats() const {
  std::shared_ptr<const Snapshot> snap = snapshot();
  const ShardedFragmentIndex& index = *snap->index;
  HostStats stats;
  stats.epoch = snap->epoch;
  stats.db_slots = index.db_size();
  stats.live = index.num_live();
  stats.removed = static_cast<int>(index.tombstones().size());
  stats.num_shards = index.num_shards();
  stats.compaction_epoch = index.compaction_epoch();
  stats.compact_dead_ratio = compact_dead_ratio_;
  stats.background_compactions = background_compactions_.load();
  if (const WriteAheadLog* wal =
          wal_view_.load(std::memory_order_acquire)) {
    stats.wal_bytes = wal->bytes();
    stats.wal_records = wal->records();
  }
  stats.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  stats.group_commit_batches =
      group_commit_batches_.load(std::memory_order_relaxed);
  stats.group_commit_ops = group_commit_ops_.load(std::memory_order_relaxed);
  stats.group_commit_max_batch =
      group_commit_max_batch_.load(std::memory_order_relaxed);
  stats.sketch_checks = sketch_checks_.load(std::memory_order_relaxed);
  stats.sketch_pruned = sketch_pruned_.load(std::memory_order_relaxed);
  stats.sketch_false_drops =
      sketch_false_drops_.load(std::memory_order_relaxed);
  stats.shards.reserve(index.num_shards());
  for (int s = 0; s < index.num_shards(); ++s) {
    ShardInfo info;
    info.resident = index.shard_size(s);
    info.live = index.shard(s).num_live();
    info.dead = static_cast<int>(index.shard(s).tombstones().size());
    info.dead_ratio = index.shard(s).dead_ratio();
    stats.shards.push_back(info);
  }
  return stats;
}

Status EngineHost::Save(const std::string& dir,
                        const std::string& db_path) const {
  // Serialize against writers so the saved pair is one published state, and
  // restore the policy ratio into the manifest (the host zeroes it on the
  // live index to keep RemoveGraph from compacting inline).
  MutexLock lock(&writer_mu_);
  ShardedFragmentIndex to_save = master_;
  to_save.set_compact_dead_ratio(compact_dead_ratio_);
  PIS_RETURN_NOT_OK(to_save.SaveDir(dir));
  return WriteGraphDatabaseFile(*master_db_, db_path);
}

}  // namespace pis
