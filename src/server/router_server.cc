#include "server/router_server.h"

#include <cmath>
#include <utility>
#include <vector>

#include "graph/io.h"
#include "util/timer.h"

namespace pis {

namespace {

JsonValue ErrorReply(const Status& status) {
  JsonValue reply = JsonValue::Object();
  reply.Set("ok", false);
  reply.Set("code", StatusCodeName(status.code()));
  reply.Set("error", status.ToString());
  return reply;
}

JsonValue ErrorReply(const std::string& message) {
  return ErrorReply(Status::InvalidArgument(message));
}

}  // namespace

RouterServer::RouterServer(ClusterEngine* cluster,
                           const RouterServerOptions& options)
    : cluster_(cluster),
      metrics_registry_(options.metrics),
      slow_log_(options.slow_query_log),
      shell_(
          [this](const std::string& line, bool* shutdown) {
            return HandleLine(line, shutdown);
          },
          LineServerOptions{options.port, options.loopback_only,
                            options.num_workers, options.max_request_bytes}) {
  if (metrics_registry_ != nullptr) {
    // The whole op vocabulary registers up front ("other" absorbs unknown
    // and missing ops), so HandleRequest reads a const map and pokes
    // atomics — never the registry mutex.
    static constexpr const char* kOps[] = {"health", "stats",    "probe",
                                           "metrics", "query",   "add",
                                           "remove",  "shutdown", "other"};
    for (const char* op : kOps) {
      OpMetrics m;
      m.requests = metrics_registry_->GetCounter(
          "pis_router_requests_total", "Protocol requests handled, per op.",
          {{"op", op}});
      m.latency = metrics_registry_->GetHistogram(
          "pis_router_request_seconds",
          "Wall time spent handling one protocol request, per op.",
          Histogram::DefaultLatencyBounds(), {{"op", op}});
      op_metrics_.emplace(op, m);
    }
  }
}

JsonValue RouterServer::HandleLine(const std::string& line, bool* shutdown) {
  Result<JsonValue> request = JsonValue::Parse(line);
  if (!request.ok()) return ErrorReply(request.status());
  if (!request.value().is_object()) {
    return ErrorReply("request must be a JSON object");
  }
  return HandleRequest(request.value(), shutdown);
}

JsonValue RouterServer::HandleRequest(const JsonValue& request,
                                      bool* shutdown) {
  const std::string op = request.GetStringOr("op", "");
  Timer timer;
  JsonValue reply = Dispatch(request, op, shutdown);
  if (!op_metrics_.empty()) {
    auto it = op_metrics_.find(op);
    if (it == op_metrics_.end()) it = op_metrics_.find("other");
    it->second.requests->Inc();
    it->second.latency->Observe(timer.Seconds());
  }
  return reply;
}

JsonValue RouterServer::Dispatch(const JsonValue& request,
                                 const std::string& op, bool* shutdown) {
  JsonValue reply = JsonValue::Object();

  if (op == "health") {
    const ClusterEngine::ClusterStats stats = cluster_->Stats();
    reply.Set("ok", true);
    reply.Set("status", "serving");
    reply.Set("epoch", stats.epoch);
    reply.Set("live", stats.live);
    return reply;
  }

  if (op == "stats") {
    reply.Set("ok", true);
    reply.Set("stats", cluster_->StatsJson());
    if (metrics_registry_ != nullptr) {
      reply.Set("metrics", metrics_registry_->ToJsonValue());
    }
    return reply;
  }

  if (op == "metrics") {
    if (metrics_registry_ == nullptr) {
      return ErrorReply(
          Status::Unavailable("metrics are not enabled on this router"));
    }
    reply.Set("ok", true);
    reply.Set("content_type", "text/plain; version=0.0.4");
    reply.Set("text", metrics_registry_->RenderPrometheus());
    return reply;
  }

  if (op == "probe") {
    cluster_->ProbeOnce();
    reply.Set("ok", true);
    return reply;
  }

  if (op == "query") return HandleQuery(request);

  if (op == "add") {
    const JsonValue* graph_text = request.Find("graph");
    if (graph_text == nullptr || !graph_text->is_string()) {
      return ErrorReply("add needs a string \"graph\" field");
    }
    Result<Graph> graph = ParseGraph(graph_text->AsString());
    if (!graph.ok()) return ErrorReply(graph.status());
    Result<int> gid = cluster_->AddGraph(graph.value());
    if (!gid.ok()) return ErrorReply(gid.status());
    reply.Set("ok", true);
    reply.Set("id", gid.value());
    return reply;
  }

  if (op == "remove") {
    const JsonValue* id = request.Find("id");
    if (id == nullptr || !id->is_number() ||
        id->AsNumber() != std::floor(id->AsNumber()) || id->AsNumber() < 0 ||
        id->AsNumber() > 2147483647.0) {
      return ErrorReply("\"id\" must be a non-negative integer graph id");
    }
    Status removed = cluster_->RemoveGraph(static_cast<int>(id->AsNumber()));
    if (!removed.ok()) return ErrorReply(removed);
    reply.Set("ok", true);
    return reply;
  }

  if (op == "shutdown") {
    *shutdown = true;
    reply.Set("ok", true);
    reply.Set("status", "stopping");
    return reply;
  }

  return ErrorReply(op.empty() ? "request is missing \"op\""
                               : "unknown op \"" + op + "\"");
}

JsonValue RouterServer::HandleQuery(const JsonValue& request) {
  const JsonValue* graph_text = request.Find("graph");
  if (graph_text == nullptr || !graph_text->is_string()) {
    return ErrorReply("query needs a string \"graph\" field");
  }
  Result<Graph> query = ParseGraph(graph_text->AsString());
  if (!query.ok()) return ErrorReply(query.status());
  double sigma = -1;
  if (request.Has("sigma")) {
    const JsonValue* s = request.Find("sigma");
    if (!s->is_number()) return ErrorReply("sigma must be a number");
    if (s->AsNumber() < 0) return ErrorReply("sigma must be >= 0");
    sigma = s->AsNumber();
  }
  const bool trace_requested = request.GetBoolOr("trace", false);
  // The context also runs for untraced requests when a slow-query log is
  // configured: a breach must be able to dump the span tree it never knew
  // it would need.
  const bool tracing =
      trace_requested || (slow_log_ != nullptr && slow_log_->enabled());
  TraceContext ctx(TraceContext::NextId("rq"));
  TraceContext* trace = tracing ? &ctx : nullptr;
  Result<SearchResult> result =
      sigma >= 0 ? cluster_->Search(query.value(), sigma, trace)
                 : cluster_->Search(query.value(), cluster_->sigma(), trace);
  if (!result.ok()) return ErrorReply(result.status());
  JsonValue reply = JsonValue::Object();
  reply.Set("ok", true);
  JsonValue answers = JsonValue::Array();
  for (int gid : result.value().answers) answers.Push(gid);
  reply.Set("answers", std::move(answers));
  reply.Set("candidates", result.value().stats.candidates_final);
  JsonValue stats = JsonValue::Object();
  stats.Set("fragments", result.value().stats.fragments_enumerated);
  stats.Set("range_queries", result.value().stats.range_queries);
  stats.Set("filter_ms", result.value().stats.filter_seconds * 1e3);
  stats.Set("verify_ms", result.value().stats.verify_seconds * 1e3);
  reply.Set("stats", std::move(stats));
  if (tracing) {
    // One root span wraps the router-level pipeline so the span tree reads
    // as: query -> {shard_query:* round trips, merge, filter, shard_verify:*}.
    TraceSpan root;
    root.name = "query";
    root.start_ms = 0;
    root.dur_ms = ctx.ElapsedMs();
    root.children = ctx.TakeSpans();
    ctx.Record(std::move(root));
    JsonValue trace_json = ctx.ToJsonValue();
    trace_json.Set("op", "query");
    trace_json.Set("answers", static_cast<int>(result.value().answers.size()));
    if (slow_log_ != nullptr &&
        slow_log_->ShouldLog(trace_json.GetNumberOr("total_ms", 0))) {
      slow_log_->Log(trace_json);
    }
    if (trace_requested) reply.Set("trace", std::move(trace_json));
  }
  return reply;
}

}  // namespace pis
