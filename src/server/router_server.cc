#include "server/router_server.h"

#include <cmath>
#include <utility>

#include "graph/io.h"

namespace pis {

namespace {

JsonValue ErrorReply(const Status& status) {
  JsonValue reply = JsonValue::Object();
  reply.Set("ok", false);
  reply.Set("code", StatusCodeName(status.code()));
  reply.Set("error", status.ToString());
  return reply;
}

JsonValue ErrorReply(const std::string& message) {
  return ErrorReply(Status::InvalidArgument(message));
}

}  // namespace

RouterServer::RouterServer(ClusterEngine* cluster,
                           const RouterServerOptions& options)
    : cluster_(cluster),
      shell_(
          [this](const std::string& line, bool* shutdown) {
            return HandleLine(line, shutdown);
          },
          LineServerOptions{options.port, options.loopback_only,
                            options.num_workers, options.max_request_bytes}) {}

JsonValue RouterServer::HandleLine(const std::string& line, bool* shutdown) {
  Result<JsonValue> request = JsonValue::Parse(line);
  if (!request.ok()) return ErrorReply(request.status());
  if (!request.value().is_object()) {
    return ErrorReply("request must be a JSON object");
  }
  return HandleRequest(request.value(), shutdown);
}

JsonValue RouterServer::HandleRequest(const JsonValue& request,
                                      bool* shutdown) {
  const std::string op = request.GetStringOr("op", "");
  JsonValue reply = JsonValue::Object();

  if (op == "health") {
    const ClusterEngine::ClusterStats stats = cluster_->Stats();
    reply.Set("ok", true);
    reply.Set("status", "serving");
    reply.Set("epoch", stats.epoch);
    reply.Set("live", stats.live);
    return reply;
  }

  if (op == "stats") {
    reply.Set("ok", true);
    reply.Set("stats", cluster_->StatsJson());
    return reply;
  }

  if (op == "probe") {
    cluster_->ProbeOnce();
    reply.Set("ok", true);
    return reply;
  }

  if (op == "query") {
    const JsonValue* graph_text = request.Find("graph");
    if (graph_text == nullptr || !graph_text->is_string()) {
      return ErrorReply("query needs a string \"graph\" field");
    }
    Result<Graph> query = ParseGraph(graph_text->AsString());
    if (!query.ok()) return ErrorReply(query.status());
    Result<SearchResult> result = Status::Internal("not run");
    if (request.Has("sigma")) {
      const JsonValue* sigma = request.Find("sigma");
      if (!sigma->is_number()) return ErrorReply("sigma must be a number");
      if (sigma->AsNumber() < 0) return ErrorReply("sigma must be >= 0");
      result = cluster_->Search(query.value(), sigma->AsNumber());
    } else {
      result = cluster_->Search(query.value());
    }
    if (!result.ok()) return ErrorReply(result.status());
    reply.Set("ok", true);
    JsonValue answers = JsonValue::Array();
    for (int gid : result.value().answers) answers.Push(gid);
    reply.Set("answers", std::move(answers));
    reply.Set("candidates", result.value().stats.candidates_final);
    JsonValue stats = JsonValue::Object();
    stats.Set("fragments", result.value().stats.fragments_enumerated);
    stats.Set("range_queries", result.value().stats.range_queries);
    stats.Set("filter_ms", result.value().stats.filter_seconds * 1e3);
    stats.Set("verify_ms", result.value().stats.verify_seconds * 1e3);
    reply.Set("stats", std::move(stats));
    return reply;
  }

  if (op == "add") {
    const JsonValue* graph_text = request.Find("graph");
    if (graph_text == nullptr || !graph_text->is_string()) {
      return ErrorReply("add needs a string \"graph\" field");
    }
    Result<Graph> graph = ParseGraph(graph_text->AsString());
    if (!graph.ok()) return ErrorReply(graph.status());
    Result<int> gid = cluster_->AddGraph(graph.value());
    if (!gid.ok()) return ErrorReply(gid.status());
    reply.Set("ok", true);
    reply.Set("id", gid.value());
    return reply;
  }

  if (op == "remove") {
    const JsonValue* id = request.Find("id");
    if (id == nullptr || !id->is_number() ||
        id->AsNumber() != std::floor(id->AsNumber()) || id->AsNumber() < 0 ||
        id->AsNumber() > 2147483647.0) {
      return ErrorReply("\"id\" must be a non-negative integer graph id");
    }
    Status removed = cluster_->RemoveGraph(static_cast<int>(id->AsNumber()));
    if (!removed.ok()) return ErrorReply(removed);
    reply.Set("ok", true);
    return reply;
  }

  if (op == "shutdown") {
    *shutdown = true;
    reply.Set("ok", true);
    reply.Set("status", "stopping");
    return reply;
  }

  return ErrorReply(op.empty() ? "request is missing \"op\""
                               : "unknown op \"" + op + "\"");
}

}  // namespace pis
