// The transport shell shared by every newline-delimited JSON server in the
// repo (pis_server's shard/replica front end, pis_router's cluster front
// end): a TCP listener, a fixed accept-and-serve worker pool, per-frame
// size caps, and the shutdown dance that severs live connections so workers
// parked in RecvLine unblock. Protocol semantics stay with the owner — the
// shell only moves request lines in and reply lines out through a handler
// callback, so the two binaries cannot drift in their connection lifecycle
// behavior (the part that is painful to get right twice).
#ifndef PIS_SERVER_LINE_SERVER_H_
#define PIS_SERVER_LINE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <unordered_set>

#include "util/json.h"
#include "util/mutex.h"
#include "util/socket.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace pis {

struct LineServerOptions {
  /// 0 binds a kernel-assigned ephemeral port (read back via port()).
  int port = 0;
  bool loopback_only = true;
  /// Concurrent connections served; excess connections queue in the accept
  /// backlog.
  int num_workers = 4;
  /// Per-request frame cap (a graph record arrives as one line).
  size_t max_request_bytes = 16u << 20;
};

/// \brief Listener + worker pool serving one JSON reply line per request
/// line.
///
/// ParallelFor is the pool — each worker accepts and serves one connection
/// at a time, so per-connection requests are processed in order while
/// distinct connections run concurrently. The handler must be thread-safe:
/// up to num_workers invocations run at once.
class LineServer {
 public:
  /// Returns the reply for one request line; sets `*shutdown` to stop the
  /// server after the reply is sent. Never sees blank lines (keep-alives)
  /// or oversized frames — the shell handles those.
  using Handler = std::function<JsonValue(const std::string& line,
                                          bool* shutdown)>;

  LineServer(Handler handler, const LineServerOptions& options);
  ~LineServer();
  LineServer(const LineServer&) = delete;
  LineServer& operator=(const LineServer&) = delete;

  /// Binds the listener and spawns the worker pool. Call once.
  Status Start() PIS_EXCLUDES(serve_mu_);
  /// The bound port (valid after Start).
  int port() const { return listener_.port(); }

  /// Blocks until the server stopped (a shutdown request or Shutdown()).
  void Wait() PIS_EXCLUDES(serve_mu_);
  /// Stops accepting, severs live connections, and wakes Wait(). Idempotent
  /// and callable from any thread (including a protocol handler's).
  void Shutdown() PIS_EXCLUDES(live_mu_);

  /// True from a successful Start() until the worker pool has exited.
  bool running() const { return serving_.load(std::memory_order_acquire); }
  uint64_t connections_served() const { return connections_served_; }
  uint64_t requests_served() const { return requests_served_; }

 private:
  void WorkerLoop() PIS_EXCLUDES(live_mu_);
  void ServeConnection(TcpSocket conn) PIS_EXCLUDES(live_mu_);

  Handler handler_;
  LineServerOptions options_;
  TcpListener listener_;
  /// serve_mu_ guards the pool thread object: Start() writes it while a
  /// concurrent Wait() (e.g. a destructor racing a protocol-triggered
  /// shutdown's waiter) joins it — unguarded, that pair is a data race on
  /// the std::thread itself. running() deliberately reads the serving_ flag
  /// instead of the thread so it never blocks behind a join in progress.
  mutable Mutex serve_mu_;
  std::thread serve_thread_ PIS_GUARDED_BY(serve_mu_);
  std::atomic<bool> serving_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> connections_served_{0};
  std::atomic<uint64_t> requests_served_{0};
  /// Raw fds of live connections, severed on Shutdown so workers blocked in
  /// RecvLine unblock.
  Mutex live_mu_;
  std::unordered_set<int> live_fds_ PIS_GUARDED_BY(live_mu_);
};

}  // namespace pis

#endif  // PIS_SERVER_LINE_SERVER_H_
