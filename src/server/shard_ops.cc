#include "server/shard_ops.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "core/filter_impl.h"
#include "core/verifier.h"
#include "index/graph_sketch.h"

namespace pis {

namespace {

/// Strict int decode: the protocol ships graph ids as JSON numbers, and a
/// truncated 3.9 or an out-of-int32 value must fail loudly, not be cast.
Result<int> AsStrictInt(const JsonValue& v, const char* what) {
  if (!v.is_number()) {
    return Status::InvalidArgument(std::string(what) + " must be a number");
  }
  const double raw = v.AsNumber();
  if (raw != std::floor(raw) || raw < -2147483648.0 || raw > 2147483647.0) {
    return Status::InvalidArgument(std::string(what) +
                                   " must be an exact 32-bit integer");
  }
  return static_cast<int>(raw);
}

Result<std::vector<int>> ReadIntArray(const JsonValue& reply, const char* key) {
  const JsonValue* array = reply.Find(key);
  if (array == nullptr || !array->is_array()) {
    return Status::InvalidArgument(std::string("reply is missing array \"") +
                                   key + "\"");
  }
  std::vector<int> out;
  out.reserve(array->size());
  for (const JsonValue& item : array->items()) {
    PIS_ASSIGN_OR_RETURN(int value, AsStrictInt(item, key));
    out.push_back(value);
  }
  return out;
}

JsonValue IntArrayToJson(const std::vector<int>& values) {
  JsonValue array = JsonValue::Array();
  for (int v : values) array.Push(v);
  return array;
}

}  // namespace

Status CheckShardsOwned(const std::vector<int>& requested,
                        const std::vector<int>& owned, int num_shards) {
  for (int s : requested) {
    if (s < 0 || s >= num_shards) {
      return Status::InvalidArgument("shard " + std::to_string(s) +
                                     " is out of range (cluster has " +
                                     std::to_string(num_shards) + ")");
    }
    if (!owned.empty() &&
        !std::binary_search(owned.begin(), owned.end(), s)) {
      return Status::InvalidArgument("shard " + std::to_string(s) +
                                     " is not owned by this replica");
    }
  }
  return Status::OK();
}

Result<ShardQueryResult> RunShardQuery(const EngineHost::Snapshot& snap,
                                       const std::vector<int>& shards,
                                       const Graph& query, double sigma,
                                       bool sketch, const PisOptions& options,
                                       bool trace) {
  if (query.Empty()) {
    // The same rejection RunPisFilter issues, so a router fanning this out
    // propagates an error identical to the single-process engine's.
    return Status::InvalidArgument("query graph is empty");
  }
  const ShardedFragmentIndex& index = *snap.index;
  ShardQueryResult result;
  result.epoch = snap.epoch;
  // Tracing is request-scoped: the id never leaves this function (the wire
  // carries only the spans), so a fixed placeholder id is fine.
  TraceContext ctx("shard_query");
  TraceContext* tp = trace ? &ctx : nullptr;
  // Any shard serves as the enumeration catalog (classes are
  // feature-derived and identical across shards AND replicas — the frozen-
  // catalog contract), so every replica enumerates the identical fragment
  // list and per-fragment maps align positionally across endpoints.
  {
    ScopedSpan span(tp, "enumerate");
    PIS_ASSIGN_OR_RETURN(result.fragments,
                         EnumerateIndexedQueryFragments(
                             index.shard(0), query,
                             options.max_query_fragments));
  }
  result.dists.resize(result.fragments.size());
  std::unordered_map<int, double> local;
  // Shard-outer so each requested shard's sweep is one contiguous trace
  // span; the per-fragment maps come out identical either way (shards own
  // disjoint gid spaces, so the merge is a plain union).
  for (int s : shards) {
    ScopedSpan span(tp, "range_queries:shard" + std::to_string(s));
    for (size_t fi = 0; fi < result.fragments.size(); ++fi) {
      PIS_RETURN_NOT_OK(internal::MinDistancePerGraph(
          index.shard(s), result.fragments[fi].prepared, sigma, &local));
      for (const auto& [local_gid, d] : local) {
        result.dists[fi].emplace(index.global_id(s, local_gid), d);
      }
    }
  }
  if (sketch && !result.fragments.empty()) {
    ScopedSpan span(tp, "sketch_probe");
    std::vector<int> class_ids;
    class_ids.reserve(result.fragments.size());
    for (const QueryFragment& qf : result.fragments) {
      class_ids.push_back(qf.prepared.class_id);
    }
    std::sort(class_ids.begin(), class_ids.end());
    class_ids.erase(std::unique(class_ids.begin(), class_ids.end()),
                    class_ids.end());
    // Probe every live graph resident in the requested shards. A shard
    // cover is a partition of the live gid space, so summing the checks
    // across a cover reproduces the single-process probe count exactly.
    for (int s : shards) {
      const GraphSketch& shard_sketch = index.shard(s).sketch();
      const std::vector<uint64_t> mask = shard_sketch.MakeMask(class_ids);
      const int resident = index.shard_size(s);
      for (int local_gid = 0; local_gid < resident; ++local_gid) {
        const int gid = index.global_id(s, local_gid);
        if (!index.IsLive(gid)) continue;
        ++result.sketch_checks;
        if (!shard_sketch.MightContainAll(local_gid, mask)) {
          result.sketch_pruned.push_back(gid);
        }
      }
    }
    std::sort(result.sketch_pruned.begin(), result.sketch_pruned.end());
  }
  if (tp != nullptr) result.spans = tp->TakeSpans();
  return result;
}

Result<std::vector<int>> RunShardVerify(const EngineHost::Snapshot& snap,
                                        const std::vector<int>& ids,
                                        const Graph& query, double sigma,
                                        const PisOptions& options, bool trace,
                                        std::vector<TraceSpan>* spans_out) {
  std::vector<int> candidates = ids;
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  for (int gid : candidates) {
    // A dead or absent slot holds no graph here (absent foreign-write slots
    // are materialized as empty placeholders) — verifying it would silently
    // compare against the wrong bytes. A replica that is merely behind on
    // this gid reports NotFound and the router fails over.
    if (!snap.index->IsLive(gid)) {
      return Status::NotFound("graph " + std::to_string(gid) +
                              " is not live on this replica");
    }
  }
  TraceContext ctx("shard_verify");
  TraceContext* tp = trace && spans_out != nullptr ? &ctx : nullptr;
  VerifyResult verified;
  {
    ScopedSpan span(tp, "verify:" + std::to_string(candidates.size()) +
                            "_candidates");
    verified = VerifyCandidates(*snap.db, query, candidates,
                                snap.index->options().spec, sigma,
                                options.verify_threads);
  }
  if (tp != nullptr) {
    std::vector<TraceSpan> spans = tp->TakeSpans();
    spans_out->insert(spans_out->end(),
                      std::make_move_iterator(spans.begin()),
                      std::make_move_iterator(spans.end()));
  }
  return std::move(verified.answers);
}

ShardMeta CollectShardMeta(const EngineHost::Snapshot& snap,
                           const std::vector<int>& shards_owned) {
  const ShardedFragmentIndex& index = *snap.index;
  ShardMeta meta;
  meta.epoch = snap.epoch;
  meta.db_slots = index.db_size();
  meta.num_shards = index.num_shards();
  meta.shards_owned = shards_owned;
  if (meta.shards_owned.empty()) {
    for (int s = 0; s < meta.num_shards; ++s) meta.shards_owned.push_back(s);
  }
  meta.routing.reserve(meta.db_slots);
  for (int gid = 0; gid < meta.db_slots; ++gid) {
    meta.routing.push_back(index.shard_of(gid));
  }
  meta.tombstones.assign(index.tombstones().begin(),
                         index.tombstones().end());
  std::sort(meta.tombstones.begin(), meta.tombstones.end());
  return meta;
}

void ShardMetaToJson(const ShardMeta& meta, JsonValue* reply) {
  reply->Set("epoch", meta.epoch);
  reply->Set("db_slots", meta.db_slots);
  reply->Set("num_shards", meta.num_shards);
  reply->Set("shards_owned", IntArrayToJson(meta.shards_owned));
  reply->Set("routing", IntArrayToJson(meta.routing));
  reply->Set("tombstones", IntArrayToJson(meta.tombstones));
}

Result<ShardMeta> ShardMetaFromJson(const JsonValue& reply) {
  ShardMeta meta;
  meta.epoch = static_cast<uint64_t>(reply.GetNumberOr("epoch", 0));
  PIS_ASSIGN_OR_RETURN(int db_slots,
                       AsStrictInt(reply.Find("db_slots") != nullptr
                                       ? *reply.Find("db_slots")
                                       : JsonValue(),
                                   "db_slots"));
  PIS_ASSIGN_OR_RETURN(int num_shards,
                       AsStrictInt(reply.Find("num_shards") != nullptr
                                       ? *reply.Find("num_shards")
                                       : JsonValue(),
                                   "num_shards"));
  meta.db_slots = db_slots;
  meta.num_shards = num_shards;
  PIS_ASSIGN_OR_RETURN(meta.shards_owned,
                       ReadIntArray(reply, "shards_owned"));
  PIS_ASSIGN_OR_RETURN(meta.routing, ReadIntArray(reply, "routing"));
  PIS_ASSIGN_OR_RETURN(meta.tombstones, ReadIntArray(reply, "tombstones"));
  if (meta.db_slots < 0 || meta.num_shards < 1 ||
      static_cast<int>(meta.routing.size()) != meta.db_slots) {
    return Status::InvalidArgument("meta reply is structurally inconsistent");
  }
  for (int s : meta.routing) {
    if (s < -1 || s >= meta.num_shards) {
      return Status::InvalidArgument("meta routing entry out of range");
    }
  }
  return meta;
}

void ShardQueryResultToJson(const ShardQueryResult& result, JsonValue* reply) {
  reply->Set("epoch", result.epoch);
  JsonValue fragments = JsonValue::Array();
  for (const QueryFragment& qf : result.fragments) {
    JsonValue fragment = JsonValue::Object();
    fragment.Set("class_id", qf.prepared.class_id);
    JsonValue vertices = JsonValue::Array();
    for (VertexId v : qf.vertices) vertices.Push(v);
    fragment.Set("vertices", std::move(vertices));
    fragments.Push(std::move(fragment));
  }
  reply->Set("fragments", std::move(fragments));
  JsonValue dists = JsonValue::Array();
  for (const std::unordered_map<int, double>& map : result.dists) {
    // Sorted pairs so the reply bytes are deterministic (map iteration
    // order is not); the router re-keys into a map either way.
    std::vector<std::pair<int, double>> pairs(map.begin(), map.end());
    std::sort(pairs.begin(), pairs.end());
    JsonValue entries = JsonValue::Array();
    for (const auto& [gid, d] : pairs) {
      JsonValue pair = JsonValue::Array();
      pair.Push(gid);
      pair.Push(d);
      entries.Push(std::move(pair));
    }
    dists.Push(std::move(entries));
  }
  reply->Set("dists", std::move(dists));
  reply->Set("sketch_checks", result.sketch_checks);
  reply->Set("sketch_pruned", IntArrayToJson(result.sketch_pruned));
  // Omitted entirely when untraced, keeping untraced reply bytes identical
  // to the pre-tracing protocol.
  if (!result.spans.empty()) {
    reply->Set("spans", TraceSpan::ListToJson(result.spans));
  }
}

Result<ShardQueryResult> ShardQueryResultFromJson(const JsonValue& reply) {
  ShardQueryResult result;
  result.epoch = static_cast<uint64_t>(reply.GetNumberOr("epoch", 0));
  const JsonValue* fragments = reply.Find("fragments");
  const JsonValue* dists = reply.Find("dists");
  if (fragments == nullptr || !fragments->is_array() || dists == nullptr ||
      !dists->is_array() || fragments->size() != dists->size()) {
    return Status::InvalidArgument(
        "shard_query reply is missing aligned fragments/dists arrays");
  }
  result.fragments.reserve(fragments->size());
  for (const JsonValue& item : fragments->items()) {
    if (!item.is_object()) {
      return Status::InvalidArgument("fragment entry must be an object");
    }
    QueryFragment qf;
    PIS_ASSIGN_OR_RETURN(qf.prepared.class_id,
                         AsStrictInt(item.Find("class_id") != nullptr
                                         ? *item.Find("class_id")
                                         : JsonValue(),
                                     "class_id"));
    PIS_ASSIGN_OR_RETURN(std::vector<int> vertices,
                         ReadIntArray(item, "vertices"));
    qf.vertices.assign(vertices.begin(), vertices.end());
    result.fragments.push_back(std::move(qf));
  }
  result.dists.resize(result.fragments.size());
  for (size_t fi = 0; fi < dists->size(); ++fi) {
    const JsonValue& entries = dists->at(fi);
    if (!entries.is_array()) {
      return Status::InvalidArgument("dists entry must be an array");
    }
    for (const JsonValue& pair : entries.items()) {
      if (!pair.is_array() || pair.size() != 2 || !pair.at(1).is_number()) {
        return Status::InvalidArgument("dist pair must be [gid, distance]");
      }
      PIS_ASSIGN_OR_RETURN(int gid, AsStrictInt(pair.at(0), "dist gid"));
      result.dists[fi].emplace(gid, pair.at(1).AsNumber());
    }
  }
  result.sketch_checks =
      static_cast<uint64_t>(reply.GetNumberOr("sketch_checks", 0));
  PIS_ASSIGN_OR_RETURN(result.sketch_pruned,
                       ReadIntArray(reply, "sketch_pruned"));
  if (const JsonValue* spans = reply.Find("spans"); spans != nullptr) {
    PIS_ASSIGN_OR_RETURN(result.spans, TraceSpan::ListFromJson(*spans));
  }
  return result;
}

}  // namespace pis
