#include "server/pis_server.h"

#include <sys/socket.h>

#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "graph/io.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace pis {

namespace {

JsonValue ErrorReply(const std::string& message) {
  JsonValue reply = JsonValue::Object();
  reply.Set("ok", false);
  reply.Set("error", message);
  return reply;
}

JsonValue ErrorReply(const Status& status) {
  return ErrorReply(status.ToString());
}

}  // namespace

PisServer::PisServer(EngineHost* host, const PisServerOptions& options)
    : host_(host), options_(options) {
  if (options_.num_workers < 1) options_.num_workers = 1;
}

PisServer::~PisServer() {
  Shutdown();
  Wait();
}

Status PisServer::Start() {
  MutexLock lock(&serve_mu_);
  if (serve_thread_.joinable()) {
    return Status::AlreadyExists("server already started");
  }
  PIS_ASSIGN_OR_RETURN(
      listener_,
      TcpListener::Listen(options_.port, options_.loopback_only,
                          /*backlog=*/options_.num_workers * 4));
  // ParallelFor is the worker pool: N long-lived accept-and-serve loops.
  // serving_ flips true before the pool exists and false only when the
  // whole pool has exited, so running() brackets the serving lifetime
  // without ever touching the (serve_mu_-guarded) thread object.
  const int workers = options_.num_workers;
  serving_.store(true, std::memory_order_release);
  serve_thread_ = std::thread([this, workers] {
    ParallelFor(static_cast<size_t>(workers), workers,
                [this](size_t) { WorkerLoop(); });
    serving_.store(false, std::memory_order_release);
  });
  return Status::OK();
}

void PisServer::Wait() {
  MutexLock lock(&serve_mu_);
  if (serve_thread_.joinable()) {
    serve_thread_.join();
    serve_thread_ = std::thread();
  }
}

void PisServer::Shutdown() {
  stopping_.store(true);
  listener_.Shutdown();
  MutexLock lock(&live_mu_);
  for (int fd : live_fds_) {
    // Severing the stream unblocks a worker parked in RecvLine; the worker
    // owns (and closes) the descriptor itself.
    ::shutdown(fd, SHUT_RDWR);
  }
}

void PisServer::WorkerLoop() {
  while (!stopping_.load()) {
    bool fatal = false;
    Result<TcpSocket> conn = listener_.Accept(&fatal);
    if (!conn.ok()) {
      if (stopping_.load()) return;  // listener shut down: normal exit
      if (fatal) {
        // The listener itself is broken — every retry would fail the same
        // way, so a backoff loop here would just spin forever. Leave with
        // the reason on record instead of burning a core.
        PIS_LOG(Error) << "worker exiting, listener is unusable: "
                       << conn.status().ToString();
        return;
      }
      // Transient pressure (e.g. fd exhaustion): back off and keep the
      // worker alive rather than silently shrinking the pool to zero.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      continue;
    }
    ++connections_served_;
    ServeConnection(conn.MoveValue());
  }
}

void PisServer::ServeConnection(TcpSocket conn) {
  {
    MutexLock lock(&live_mu_);
    live_fds_.insert(conn.fd());
  }
  // A Shutdown() racing with the insert above may have severed the live set
  // before this fd joined it; stopping_ is always set first, so re-checking
  // here closes the window (otherwise RecvLine could park forever).
  if (stopping_.load()) {
    MutexLock lock(&live_mu_);
    live_fds_.erase(conn.fd());
    return;
  }
  const int fd = conn.fd();
  while (!stopping_.load()) {
    Result<std::string> line = conn.RecvLine(options_.max_request_bytes);
    if (!line.ok()) {
      if (line.status().code() == StatusCode::kInvalidArgument) {
        // Oversized frame: tell the peer, then drop the connection (the
        // stream position is unrecoverable mid-frame).
        (void)conn.SendLine(ErrorReply(line.status()).Serialize());
      }
      break;
    }
    if (line.value().empty()) continue;  // blank keep-alive line
    bool shutdown = false;
    JsonValue reply = HandleLine(line.value(), &shutdown);
    ++requests_served_;
    Status sent = conn.SendLine(reply.Serialize());
    if (shutdown) {
      Shutdown();
      break;
    }
    if (!sent.ok()) break;
  }
  MutexLock lock(&live_mu_);
  live_fds_.erase(fd);
}

JsonValue PisServer::HandleLine(const std::string& line, bool* shutdown) {
  Result<JsonValue> request = JsonValue::Parse(line);
  if (!request.ok()) return ErrorReply(request.status());
  if (!request.value().is_object()) {
    return ErrorReply("request must be a JSON object");
  }
  return HandleRequest(request.value(), shutdown);
}

JsonValue PisServer::HandleRequest(const JsonValue& request, bool* shutdown) {
  const std::string op = request.GetStringOr("op", "");
  JsonValue reply = JsonValue::Object();

  if (op == "health") {
    EngineHost::HostStats stats = host_->Stats();
    reply.Set("ok", true);
    reply.Set("status", "serving");
    reply.Set("epoch", stats.epoch);
    reply.Set("live", stats.live);
    return reply;
  }

  if (op == "stats") {
    reply.Set("ok", true);
    reply.Set("stats", host_->Stats().ToJsonValue());
    return reply;
  }

  if (op == "query") {
    const JsonValue* graph_text = request.Find("graph");
    if (graph_text == nullptr || !graph_text->is_string()) {
      return ErrorReply("query needs a string \"graph\" field");
    }
    Result<Graph> query = ParseGraph(graph_text->AsString());
    if (!query.ok()) return ErrorReply(query.status());
    // Pin one snapshot: the engine (and any per-request sigma variant of
    // it) runs against exactly one published state.
    std::shared_ptr<const EngineHost::Snapshot> snap = host_->snapshot();
    Result<SearchResult> result = Status::Internal("not run");
    if (request.Has("sigma")) {
      const JsonValue* sigma = request.Find("sigma");
      // A wrong-typed sigma must fail loudly, not silently fall back to
      // the server default (the client asked for a specific threshold).
      if (!sigma->is_number()) return ErrorReply("sigma must be a number");
      PisOptions per_request = host_->options();
      per_request.sigma = sigma->AsNumber();
      if (per_request.sigma < 0) return ErrorReply("sigma must be >= 0");
      ShardedPisEngine engine(snap->db.get(), snap->index.get(), per_request);
      result = engine.Search(query.value());
    } else {
      result = snap->engine.Search(query.value());
    }
    if (!result.ok()) return ErrorReply(result.status());
    reply.Set("ok", true);
    reply.Set("epoch", snap->epoch);
    JsonValue answers = JsonValue::Array();
    for (int gid : result.value().answers) answers.Push(gid);
    reply.Set("answers", std::move(answers));
    reply.Set("candidates", result.value().stats.candidates_final);
    JsonValue stats = JsonValue::Object();
    stats.Set("fragments", result.value().stats.fragments_enumerated);
    stats.Set("range_queries", result.value().stats.range_queries);
    stats.Set("filter_ms", result.value().stats.filter_seconds * 1e3);
    stats.Set("verify_ms", result.value().stats.verify_seconds * 1e3);
    reply.Set("stats", std::move(stats));
    return reply;
  }

  if (op == "add") {
    const JsonValue* graph_text = request.Find("graph");
    if (graph_text == nullptr || !graph_text->is_string()) {
      return ErrorReply("add needs a string \"graph\" field");
    }
    Result<Graph> graph = ParseGraph(graph_text->AsString());
    if (!graph.ok()) return ErrorReply(graph.status());
    // The out-param epoch is the one THIS mutation published; reading
    // snapshot()->epoch here could pick up a concurrent later mutation.
    uint64_t epoch = 0;
    Result<int> gid = host_->AddGraph(graph.value(), &epoch);
    if (!gid.ok()) return ErrorReply(gid.status());
    reply.Set("ok", true);
    reply.Set("id", gid.value());
    reply.Set("epoch", epoch);
    return reply;
  }

  if (op == "remove") {
    const JsonValue* id = request.Find("id");
    if (id == nullptr || !id->is_number()) {
      return ErrorReply("remove needs a numeric \"id\" field");
    }
    // Exact int32 or bust: truncating 3.9 would remove a different graph
    // than requested, and casting 1e300 to int is undefined behavior.
    const double raw = id->AsNumber();
    if (raw != std::floor(raw) || raw < 0 || raw > 2147483647.0) {
      return ErrorReply("\"id\" must be a non-negative integer graph id");
    }
    uint64_t epoch = 0;
    Status removed = host_->RemoveGraph(static_cast<int>(raw), &epoch);
    if (!removed.ok()) return ErrorReply(removed);
    reply.Set("ok", true);
    reply.Set("epoch", epoch);
    return reply;
  }

  if (op == "compact") {
    const double min_dead_ratio = request.GetNumberOr("min_dead_ratio", 0.0);
    if (min_dead_ratio < 0 || min_dead_ratio > 1) {
      return ErrorReply("min_dead_ratio must be in [0, 1]");
    }
    uint64_t epoch = 0;
    Result<int> compacted = host_->Compact(min_dead_ratio, &epoch);
    if (!compacted.ok()) return ErrorReply(compacted.status());
    reply.Set("ok", true);
    reply.Set("compacted", compacted.value());
    reply.Set("epoch", epoch);
    return reply;
  }

  if (op == "shutdown") {
    *shutdown = true;
    reply.Set("ok", true);
    reply.Set("status", "stopping");
    return reply;
  }

  return ErrorReply(op.empty() ? "request is missing \"op\""
                               : "unknown op \"" + op + "\"");
}

}  // namespace pis
