#include "server/pis_server.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "graph/io.h"
#include "server/shard_ops.h"
#include "util/timer.h"

namespace pis {

namespace {

JsonValue ErrorReply(const Status& status) {
  JsonValue reply = JsonValue::Object();
  reply.Set("ok", false);
  // The code travels separately from the rendered message so a remote
  // caller (pis_router, pis_client) can reconstruct a typed Status —
  // distinguishing e.g. a NotFound it can fail over from an
  // InvalidArgument it must surface.
  reply.Set("code", StatusCodeName(status.code()));
  reply.Set("error", status.ToString());
  return reply;
}

JsonValue ErrorReply(const std::string& message) {
  return ErrorReply(Status::InvalidArgument(message));
}

/// Strict int32 or bust: truncating 3.9 would address a different graph
/// than requested, and casting 1e300 to int is undefined behavior.
bool StrictInt(const JsonValue* v, int* out) {
  if (v == nullptr || !v->is_number()) return false;
  const double raw = v->AsNumber();
  if (raw != std::floor(raw) || raw < -2147483648.0 || raw > 2147483647.0) {
    return false;
  }
  *out = static_cast<int>(raw);
  return true;
}

bool StrictIntArray(const JsonValue* v, std::vector<int>* out) {
  if (v == nullptr || !v->is_array()) return false;
  out->clear();
  out->reserve(v->size());
  for (const JsonValue& item : v->items()) {
    int value = 0;
    if (!StrictInt(&item, &value)) return false;
    out->push_back(value);
  }
  return true;
}

}  // namespace

PisServer::PisServer(EngineHost* host, const PisServerOptions& options)
    : host_(host),
      shards_owned_(options.shards_owned),
      metrics_registry_(options.metrics),
      slow_log_(options.slow_query_log),
      shell_(
          [this](const std::string& line, bool* shutdown) {
            return HandleLine(line, shutdown);
          },
          LineServerOptions{options.port, options.loopback_only,
                            options.num_workers, options.max_request_bytes}) {
  std::sort(shards_owned_.begin(), shards_owned_.end());
  shards_owned_.erase(
      std::unique(shards_owned_.begin(), shards_owned_.end()),
      shards_owned_.end());
  if (metrics_registry_ != nullptr) {
    // The whole op vocabulary registers up front ("other" absorbs unknown
    // and missing ops), so HandleRequest reads a const map and pokes
    // atomics — never the registry mutex.
    static constexpr const char* kOps[] = {
        "health",      "stats",     "meta",      "metrics",      "query",
        "add",         "remove",    "compact",   "shutdown",     "shard_query",
        "shard_verify", "shard_add", "shard_remove", "other"};
    for (const char* op : kOps) {
      OpMetrics m;
      m.requests = metrics_registry_->GetCounter(
          "pis_server_requests_total", "Protocol requests handled, per op.",
          {{"op", op}});
      m.latency = metrics_registry_->GetHistogram(
          "pis_server_request_seconds",
          "Wall time spent handling one protocol request, per op.",
          Histogram::DefaultLatencyBounds(), {{"op", op}});
      op_metrics_.emplace(op, m);
    }
  }
}

JsonValue PisServer::HandleLine(const std::string& line, bool* shutdown) {
  Result<JsonValue> request = JsonValue::Parse(line);
  if (!request.ok()) return ErrorReply(request.status());
  if (!request.value().is_object()) {
    return ErrorReply("request must be a JSON object");
  }
  return HandleRequest(request.value(), shutdown);
}

JsonValue PisServer::HandleRequest(const JsonValue& request, bool* shutdown) {
  const std::string op = request.GetStringOr("op", "");
  Timer timer;
  JsonValue reply = Dispatch(request, op, shutdown);
  if (!op_metrics_.empty()) {
    auto it = op_metrics_.find(op);
    if (it == op_metrics_.end()) it = op_metrics_.find("other");
    it->second.requests->Inc();
    it->second.latency->Observe(timer.Seconds());
  }
  return reply;
}

JsonValue PisServer::Dispatch(const JsonValue& request, const std::string& op,
                              bool* shutdown) {
  JsonValue reply = JsonValue::Object();

  if (op == "health") {
    EngineHost::HostStats stats = host_->Stats();
    reply.Set("ok", true);
    reply.Set("status", "serving");
    reply.Set("epoch", stats.epoch);
    reply.Set("live", stats.live);
    return reply;
  }

  if (op == "stats") {
    reply.Set("ok", true);
    reply.Set("stats", host_->Stats().ToJsonValue());
    if (metrics_registry_ != nullptr) {
      reply.Set("metrics", metrics_registry_->ToJsonValue());
    }
    return reply;
  }

  if (op == "metrics") {
    if (metrics_registry_ == nullptr) {
      return ErrorReply(
          Status::Unavailable("metrics are not enabled on this server"));
    }
    reply.Set("ok", true);
    reply.Set("content_type", "text/plain; version=0.0.4");
    reply.Set("text", metrics_registry_->RenderPrometheus());
    return reply;
  }

  if (op == "meta") {
    std::shared_ptr<const EngineHost::Snapshot> snap = host_->snapshot();
    reply.Set("ok", true);
    ShardMetaToJson(CollectShardMeta(*snap, shards_owned_), &reply);
    return reply;
  }

  if (op == "shard_query") return HandleShardQuery(request);
  if (op == "shard_verify") return HandleShardVerify(request);
  if (op == "shard_add") return HandleShardAdd(request);
  if (op == "shard_remove") return HandleShardRemove(request);

  if (op == "query") return HandleQuery(request);

  if (op == "add") {
    const JsonValue* graph_text = request.Find("graph");
    if (graph_text == nullptr || !graph_text->is_string()) {
      return ErrorReply("add needs a string \"graph\" field");
    }
    Result<Graph> graph = ParseGraph(graph_text->AsString());
    if (!graph.ok()) return ErrorReply(graph.status());
    // The out-param epoch is the one THIS mutation published; reading
    // snapshot()->epoch here could pick up a concurrent later mutation.
    uint64_t epoch = 0;
    Result<int> gid = host_->AddGraph(graph.value(), &epoch);
    if (!gid.ok()) return ErrorReply(gid.status());
    reply.Set("ok", true);
    reply.Set("id", gid.value());
    reply.Set("epoch", epoch);
    return reply;
  }

  if (op == "remove") {
    int gid = 0;
    if (!StrictInt(request.Find("id"), &gid) || gid < 0) {
      return ErrorReply("\"id\" must be a non-negative integer graph id");
    }
    uint64_t epoch = 0;
    Status removed = host_->RemoveGraph(gid, &epoch);
    if (!removed.ok()) return ErrorReply(removed);
    reply.Set("ok", true);
    reply.Set("epoch", epoch);
    return reply;
  }

  if (op == "compact") {
    const double min_dead_ratio = request.GetNumberOr("min_dead_ratio", 0.0);
    if (min_dead_ratio < 0 || min_dead_ratio > 1) {
      return ErrorReply("min_dead_ratio must be in [0, 1]");
    }
    uint64_t epoch = 0;
    Result<int> compacted = host_->Compact(min_dead_ratio, &epoch);
    if (!compacted.ok()) return ErrorReply(compacted.status());
    reply.Set("ok", true);
    reply.Set("compacted", compacted.value());
    reply.Set("epoch", epoch);
    return reply;
  }

  if (op == "shutdown") {
    *shutdown = true;
    reply.Set("ok", true);
    reply.Set("status", "stopping");
    return reply;
  }

  return ErrorReply(op.empty() ? "request is missing \"op\""
                               : "unknown op \"" + op + "\"");
}

JsonValue PisServer::HandleQuery(const JsonValue& request) {
  const JsonValue* graph_text = request.Find("graph");
  if (graph_text == nullptr || !graph_text->is_string()) {
    return ErrorReply("query needs a string \"graph\" field");
  }
  Result<Graph> query = ParseGraph(graph_text->AsString());
  if (!query.ok()) return ErrorReply(query.status());
  const bool trace_requested = request.GetBoolOr("trace", false);
  // The context also runs for untraced requests when a slow-query log is
  // configured: a breach must be able to dump the span tree it never knew
  // it would need.
  const bool tracing =
      trace_requested || (slow_log_ != nullptr && slow_log_->enabled());
  TraceContext ctx(TraceContext::NextId("q"));
  // Pin one snapshot: the engine (and any per-request sigma variant of
  // it) runs against exactly one published state.
  std::shared_ptr<const EngineHost::Snapshot> snap = host_->snapshot();
  const double search_start_ms = ctx.ElapsedMs();
  Result<SearchResult> result = Status::Internal("not run");
  if (request.Has("sigma")) {
    const JsonValue* sigma = request.Find("sigma");
    // A wrong-typed sigma must fail loudly, not silently fall back to
    // the server default (the client asked for a specific threshold).
    if (!sigma->is_number()) return ErrorReply("sigma must be a number");
    PisOptions per_request = host_->options();
    per_request.sigma = sigma->AsNumber();
    if (per_request.sigma < 0) return ErrorReply("sigma must be >= 0");
    ShardedPisEngine engine(snap->db.get(), snap->index.get(), per_request);
    result = engine.Search(query.value());
  } else {
    result = snap->engine.Search(query.value());
  }
  if (!result.ok()) return ErrorReply(result.status());
  const QueryStats& qs = result.value().stats;
  host_->AccountQuery(qs);
  JsonValue reply = JsonValue::Object();
  reply.Set("ok", true);
  reply.Set("epoch", snap->epoch);
  JsonValue answers = JsonValue::Array();
  for (int gid : result.value().answers) answers.Push(gid);
  reply.Set("answers", std::move(answers));
  reply.Set("candidates", qs.candidates_final);
  JsonValue stats = JsonValue::Object();
  stats.Set("fragments", qs.fragments_enumerated);
  stats.Set("range_queries", qs.range_queries);
  stats.Set("filter_ms", qs.filter_seconds * 1e3);
  stats.Set("verify_ms", qs.verify_seconds * 1e3);
  reply.Set("stats", std::move(stats));
  if (tracing) {
    // The span layout is reconstructed from the engine's stage timers:
    // the filter subtree starts where the search call started, verify
    // follows it back to back.
    const double filter_ms = qs.filter_seconds * 1e3;
    ctx.Record(BuildFilterSpan(qs, search_start_ms, filter_ms));
    TraceSpan verify;
    verify.name = "verify";
    verify.start_ms = search_start_ms + filter_ms;
    verify.dur_ms = qs.verify_seconds * 1e3;
    ctx.Record(std::move(verify));
    JsonValue trace_json = ctx.ToJsonValue();
    trace_json.Set("op", "query");
    trace_json.Set("answers", static_cast<int>(result.value().answers.size()));
    if (slow_log_ != nullptr &&
        slow_log_->ShouldLog(trace_json.GetNumberOr("total_ms", 0))) {
      slow_log_->Log(trace_json);
    }
    if (trace_requested) reply.Set("trace", std::move(trace_json));
  }
  return reply;
}

JsonValue PisServer::HandleShardQuery(const JsonValue& request) {
  const JsonValue* graph_text = request.Find("graph");
  if (graph_text == nullptr || !graph_text->is_string()) {
    return ErrorReply("shard_query needs a string \"graph\" field");
  }
  Result<Graph> query = ParseGraph(graph_text->AsString());
  if (!query.ok()) return ErrorReply(query.status());
  std::vector<int> shards;
  if (!StrictIntArray(request.Find("shards"), &shards) || shards.empty()) {
    return ErrorReply("shard_query needs a non-empty integer \"shards\"");
  }
  double sigma = host_->options().sigma;
  if (request.Has("sigma")) {
    const JsonValue* s = request.Find("sigma");
    if (!s->is_number() || s->AsNumber() < 0) {
      return ErrorReply("sigma must be a number >= 0");
    }
    sigma = s->AsNumber();
  }
  const bool sketch = request.GetBoolOr("sketch", false);
  std::shared_ptr<const EngineHost::Snapshot> snap = host_->snapshot();
  Status owned = CheckShardsOwned(shards, shards_owned_,
                                  snap->index->num_shards());
  if (!owned.ok()) return ErrorReply(owned);
  Result<ShardQueryResult> result =
      RunShardQuery(*snap, shards, query.value(), sigma, sketch,
                    host_->options(), request.GetBoolOr("trace", false));
  if (!result.ok()) return ErrorReply(result.status());
  JsonValue reply = JsonValue::Object();
  reply.Set("ok", true);
  ShardQueryResultToJson(result.value(), &reply);
  return reply;
}

JsonValue PisServer::HandleShardVerify(const JsonValue& request) {
  const JsonValue* graph_text = request.Find("graph");
  if (graph_text == nullptr || !graph_text->is_string()) {
    return ErrorReply("shard_verify needs a string \"graph\" field");
  }
  Result<Graph> query = ParseGraph(graph_text->AsString());
  if (!query.ok()) return ErrorReply(query.status());
  std::vector<int> ids;
  if (!StrictIntArray(request.Find("ids"), &ids)) {
    return ErrorReply("shard_verify needs an integer \"ids\" array");
  }
  const JsonValue* sigma = request.Find("sigma");
  if (sigma == nullptr || !sigma->is_number() || sigma->AsNumber() < 0) {
    return ErrorReply("shard_verify needs a number \"sigma\" >= 0");
  }
  std::shared_ptr<const EngineHost::Snapshot> snap = host_->snapshot();
  if (!shards_owned_.empty()) {
    for (int gid : ids) {
      const int s = gid >= 0 && gid < snap->index->db_size()
                        ? snap->index->shard_of(gid)
                        : -1;
      if (!std::binary_search(shards_owned_.begin(), shards_owned_.end(),
                              s)) {
        return ErrorReply(Status::InvalidArgument(
            "graph " + std::to_string(gid) +
            " is not resident in a shard owned by this replica"));
      }
    }
  }
  std::vector<TraceSpan> spans;
  Result<std::vector<int>> answers =
      RunShardVerify(*snap, ids, query.value(), sigma->AsNumber(),
                     host_->options(), request.GetBoolOr("trace", false),
                     &spans);
  if (!answers.ok()) return ErrorReply(answers.status());
  JsonValue reply = JsonValue::Object();
  reply.Set("ok", true);
  reply.Set("epoch", snap->epoch);
  JsonValue out = JsonValue::Array();
  for (int gid : answers.value()) out.Push(gid);
  reply.Set("answers", std::move(out));
  if (!spans.empty()) reply.Set("spans", TraceSpan::ListToJson(spans));
  return reply;
}

JsonValue PisServer::HandleShardAdd(const JsonValue& request) {
  int gid = 0;
  int shard = 0;
  if (!StrictInt(request.Find("gid"), &gid) || gid < 0) {
    return ErrorReply("shard_add needs a non-negative integer \"gid\"");
  }
  if (!StrictInt(request.Find("shard"), &shard) || shard < 0) {
    return ErrorReply("shard_add needs a non-negative integer \"shard\"");
  }
  if (!shards_owned_.empty() &&
      !std::binary_search(shards_owned_.begin(), shards_owned_.end(),
                          shard)) {
    return ErrorReply(Status::InvalidArgument(
        "shard " + std::to_string(shard) +
        " is not owned by this replica"));
  }
  const JsonValue* graph_text = request.Find("graph");
  if (graph_text == nullptr || !graph_text->is_string()) {
    return ErrorReply("shard_add needs a string \"graph\" field");
  }
  Result<Graph> graph = ParseGraph(graph_text->AsString());
  if (!graph.ok()) return ErrorReply(graph.status());
  uint64_t epoch = 0;
  Status added = host_->AddGraphAt(gid, shard, graph.value(), &epoch);
  if (!added.ok()) return ErrorReply(added);
  JsonValue reply = JsonValue::Object();
  reply.Set("ok", true);
  reply.Set("epoch", epoch);
  return reply;
}

JsonValue PisServer::HandleShardRemove(const JsonValue& request) {
  int gid = 0;
  if (!StrictInt(request.Find("id"), &gid) || gid < 0) {
    return ErrorReply("shard_remove needs a non-negative integer \"id\"");
  }
  uint64_t epoch = 0;
  Status removed = host_->RemoveGraph(gid, &epoch);
  JsonValue reply = JsonValue::Object();
  if (removed.ok()) {
    reply.Set("ok", true);
    reply.Set("epoch", epoch);
    reply.Set("applied", true);
    return reply;
  }
  // Idempotent replication semantics: a catch-up replay may re-deliver a
  // remove this replica already applied. Already-dead is success; a gid
  // this replica has never heard of is a real error (the router replays
  // per-endpoint ops in order, so the add always lands first).
  std::shared_ptr<const EngineHost::Snapshot> snap = host_->snapshot();
  const bool already_dead = removed.code() == StatusCode::kNotFound &&
                            gid < snap->index->db_size() &&
                            !snap->index->IsLive(gid);
  if (!already_dead) return ErrorReply(removed);
  reply.Set("ok", true);
  reply.Set("epoch", snap->epoch);
  reply.Set("applied", false);
  return reply;
}

}  // namespace pis
