// TCP front end over a ClusterEngine: the same newline-delimited JSON
// protocol pis_server speaks for clients, so pis_client talks to a router
// exactly as it talks to a single server.
//
//   {"op":"health"}                    -> {"ok":true,"status":"serving",...}
//   {"op":"stats"}                     -> {"ok":true,"stats":{...cluster...}}
//   {"op":"query","graph":"<record>",  -> {"ok":true,"answers":[ids],
//     "sigma":2.0?}                        "candidates":N,...}
//   {"op":"add","graph":"<record>"}    -> {"ok":true,"id":gid}
//   {"op":"remove","id":17}            -> {"ok":true}
//   {"op":"metrics"}                   -> {"ok":true,"content_type":..,
//                                         "text":"<prometheus exposition>"}
//   {"op":"probe"}                     -> {"ok":true} (one synchronous
//                                         health/catch-up pass; test hook)
//   {"op":"shutdown"}                  -> {"ok":true} (stops the router
//                                         only, never the shard servers)
//
// `query` additionally accepts "trace":true, which adds a "trace" object to
// the reply: {"trace_id":..,"op":"query","total_ms":F,"spans":[root]} where
// the single root span "query" contains the router-level pipeline — the
// per-shard-group "shard_query:*" round trips (each carrying the replica's
// own child spans), "merge", the global "filter" stage tree, and the
// per-shard "shard_verify:*" round trips. The same document is what a
// configured slow-query log records when total_ms breaches the threshold.
#ifndef PIS_SERVER_ROUTER_SERVER_H_
#define PIS_SERVER_ROUTER_SERVER_H_

#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/cluster_engine.h"
#include "server/line_server.h"
#include "util/json.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace pis {

struct RouterServerOptions {
  int port = 0;  // 0 = ephemeral
  bool loopback_only = true;
  int num_workers = 4;
  size_t max_request_bytes = 16u << 20;
  /// When non-null: per-op request counters/latency histograms register
  /// here, the `metrics` op renders its Prometheus exposition, and the
  /// `stats` reply gains a "metrics" JSON section. Must outlive the server.
  /// (Wiring the ClusterEngine's fabric metrics into the same registry is
  /// the caller's job — ClusterEngineOptions::metrics.)
  MetricsRegistry* metrics = nullptr;
  /// When non-null, any query whose wall time breaches the log's threshold
  /// has its span tree appended as one JSON line. Must outlive the server.
  SlowQueryLog* slow_query_log = nullptr;
};

/// \brief Client-protocol server over a ClusterEngine.
class RouterServer {
 public:
  /// `cluster` must outlive the server.
  RouterServer(ClusterEngine* cluster, const RouterServerOptions& options = {});

  Status Start() { return shell_.Start(); }
  int port() const { return shell_.port(); }
  void Wait() { shell_.Wait(); }
  void Shutdown() { shell_.Shutdown(); }
  bool running() const { return shell_.running(); }
  uint64_t connections_served() const { return shell_.connections_served(); }
  uint64_t requests_served() const { return shell_.requests_served(); }

 private:
  /// Per-op request instrumentation, registered once at construction for
  /// the fixed op vocabulary so the request path never takes the registry
  /// mutex.
  struct OpMetrics {
    Counter* requests = nullptr;
    Histogram* latency = nullptr;
  };

  JsonValue HandleLine(const std::string& line, bool* shutdown);
  /// Times and counts the request, then dispatches.
  JsonValue HandleRequest(const JsonValue& request, bool* shutdown);
  JsonValue Dispatch(const JsonValue& request, const std::string& op,
                     bool* shutdown);
  JsonValue HandleQuery(const JsonValue& request);

  ClusterEngine* cluster_;
  MetricsRegistry* metrics_registry_;
  SlowQueryLog* slow_log_;
  /// op -> cached children; read-only after construction.
  std::map<std::string, OpMetrics> op_metrics_;
  LineServer shell_;
};

}  // namespace pis

#endif  // PIS_SERVER_ROUTER_SERVER_H_
