// TCP front end over a ClusterEngine: the same newline-delimited JSON
// protocol pis_server speaks for clients, so pis_client talks to a router
// exactly as it talks to a single server.
//
//   {"op":"health"}                    -> {"ok":true,"status":"serving",...}
//   {"op":"stats"}                     -> {"ok":true,"stats":{...cluster...}}
//   {"op":"query","graph":"<record>",  -> {"ok":true,"answers":[ids],
//     "sigma":2.0?}                        "candidates":N,...}
//   {"op":"add","graph":"<record>"}    -> {"ok":true,"id":gid}
//   {"op":"remove","id":17}            -> {"ok":true}
//   {"op":"probe"}                     -> {"ok":true} (one synchronous
//                                         health/catch-up pass; test hook)
//   {"op":"shutdown"}                  -> {"ok":true} (stops the router
//                                         only, never the shard servers)
//
// Failures reply {"ok":false,"code":"<StatusCode>","error":"..."}; an
// Unavailable code on a write is the ambiguous-failure contract of
// ClusterEngine::AddGraph/RemoveGraph (committed for catch-up, not yet
// readable).
#ifndef PIS_SERVER_ROUTER_SERVER_H_
#define PIS_SERVER_ROUTER_SERVER_H_

#include <cstdint>
#include <string>

#include "server/cluster_engine.h"
#include "server/line_server.h"
#include "util/json.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace pis {

struct RouterServerOptions {
  int port = 0;  // 0 = ephemeral
  bool loopback_only = true;
  int num_workers = 4;
  size_t max_request_bytes = 16u << 20;
};

/// \brief Client-protocol server over a ClusterEngine.
class RouterServer {
 public:
  /// `cluster` must outlive the server.
  RouterServer(ClusterEngine* cluster, const RouterServerOptions& options = {});

  Status Start() { return shell_.Start(); }
  int port() const { return shell_.port(); }
  void Wait() { shell_.Wait(); }
  void Shutdown() { shell_.Shutdown(); }
  bool running() const { return shell_.running(); }
  uint64_t connections_served() const { return shell_.connections_served(); }
  uint64_t requests_served() const { return shell_.requests_served(); }

 private:
  JsonValue HandleLine(const std::string& line, bool* shutdown);
  JsonValue HandleRequest(const JsonValue& request, bool* shutdown);

  ClusterEngine* cluster_;
  LineServer shell_;
};

}  // namespace pis

#endif  // PIS_SERVER_ROUTER_SERVER_H_
