#include "server/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "graph/io.h"
#include "util/fs_util.h"
#include "util/logging.h"
#include "util/serde.h"
#include "util/timer.h"

namespace pis {

namespace {

constexpr uint32_t kWalMagic = 0x4C415750;  // 'PWAL' little-endian
constexpr uint32_t kWalVersion = 2;
constexpr uint32_t kWalVersionNoShard = 1;  // pre-cluster: no shard field
constexpr size_t kHeaderBytes = 8;
constexpr size_t kFrameBytes = 12;  // u32 payload size + u64 checksum
/// Any single record larger than this is corruption, not data: a logged
/// graph is one text encoding, and checkpointing keeps the log short.
constexpr uint32_t kMaxPayloadBytes = 1u << 30;

uint64_t Fnv1a64(const char* data, size_t n) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

std::string EncodePayload(const WalRecord& rec) {
  std::ostringstream os(std::ios::binary);
  BinaryWriter w(os);
  w.U8(static_cast<uint8_t>(rec.op));
  w.U64(rec.epoch);
  w.I32(rec.gid);
  w.I32(rec.shard);
  w.Str(rec.graph_text);
  return os.str();
}

Result<WalRecord> DecodePayload(const std::string& payload, size_t index,
                                uint32_t version) {
  std::istringstream is(payload, std::ios::binary);
  BinaryReader r(is);
  WalRecord rec;
  const uint8_t op = r.U8();
  rec.epoch = r.U64();
  rec.gid = r.I32();
  rec.shard = version >= kWalVersion ? r.I32() : -1;
  rec.graph_text = r.Str();
  PIS_RETURN_NOT_OK(r.Check("WAL record " + std::to_string(index)));
  if (op != static_cast<uint8_t>(WalRecord::Op::kAdd) &&
      op != static_cast<uint8_t>(WalRecord::Op::kRemove)) {
    return Status::InvalidArgument("WAL record " + std::to_string(index) +
                                   " has unknown op " + std::to_string(op));
  }
  rec.op = static_cast<WalRecord::Op>(op);
  return rec;
}

/// Parses the framed record stream after the header. On success fills
/// `records` and sets `*valid_end` to the offset just past the last intact
/// record — less than `data.size()` exactly when a torn tail follows.
Status ParseRecords(const std::string& data, uint32_t version,
                    std::vector<WalRecord>* records, size_t* valid_end) {
  size_t off = kHeaderBytes;
  *valid_end = off;
  while (off < data.size()) {
    if (data.size() - off < kFrameBytes) break;  // torn frame
    const uint32_t payload_size = GetU32(data.data() + off);
    const uint64_t checksum = GetU64(data.data() + off + 4);
    if (payload_size > kMaxPayloadBytes) {
      return Status::InvalidArgument(
          "corrupt WAL: record at offset " + std::to_string(off) +
          " declares implausible payload of " + std::to_string(payload_size) +
          " bytes");
    }
    if (data.size() - off - kFrameBytes < payload_size) break;  // torn payload
    const char* payload = data.data() + off + kFrameBytes;
    if (Fnv1a64(payload, payload_size) != checksum) {
      return Status::InvalidArgument(
          "corrupt WAL: checksum mismatch in record at offset " +
          std::to_string(off));
    }
    PIS_ASSIGN_OR_RETURN(
        WalRecord rec, DecodePayload(std::string(payload, payload_size),
                                     records->size(), version));
    records->push_back(std::move(rec));
    off += kFrameBytes + payload_size;
    *valid_end = off;
  }
  return Status::OK();
}

/// Atomically replaces the log at `path` with a freshly encoded
/// current-version file holding exactly `records`. Returns the new size.
Result<uint64_t> ReplaceLog(const std::string& path,
                            std::span<const WalRecord> records) {
  std::string out;
  PutU32(&out, kWalMagic);
  PutU32(&out, kWalVersion);
  for (const WalRecord& rec : records) {
    const std::string payload = EncodePayload(rec);
    PutU32(&out, static_cast<uint32_t>(payload.size()));
    PutU64(&out, Fnv1a64(payload.data(), payload.size()));
    out.append(payload);
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    f.write(out.data(), static_cast<std::streamsize>(out.size()));
    f.close();
    if (!f) return Status::IOError("cannot write " + tmp);
  }
  PIS_RETURN_NOT_OK(SyncFile(tmp));
  const std::string dir = std::filesystem::path(path).parent_path().string();
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError("cannot swap rewritten WAL into place: " +
                           ec.message());
  }
  PIS_RETURN_NOT_OK(SyncDir(dir));
  return static_cast<uint64_t>(out.size());
}

Status ReadWholeFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IOError("cannot read " + path);
  *out = buf.str();
  return Status::OK();
}

}  // namespace

Result<WriteAheadLog> WriteAheadLog::Open(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create WAL directory " + dir + ": " +
                           ec.message());
  }
  WriteAheadLog wal;
  wal.path_ = (std::filesystem::path(dir) / "wal.log").string();

  std::string data;
  if (std::filesystem::exists(wal.path_)) {
    PIS_RETURN_NOT_OK(ReadWholeFile(wal.path_, &data));
  }
  size_t valid_end = 0;
  if (data.size() < kHeaderBytes) {
    // Empty or torn mid-header (a crash during creation): start fresh.
    std::string header;
    PutU32(&header, kWalMagic);
    PutU32(&header, kWalVersion);
    std::ofstream out(wal.path_, std::ios::binary | std::ios::trunc);
    out.write(header.data(), static_cast<std::streamsize>(header.size()));
    out.close();
    if (!out) return Status::IOError("cannot initialize WAL " + wal.path_);
    PIS_RETURN_NOT_OK(SyncFile(wal.path_));
    PIS_RETURN_NOT_OK(SyncDir(dir));
    valid_end = kHeaderBytes;
  } else {
    if (GetU32(data.data()) != kWalMagic) {
      return Status::InvalidArgument(wal.path_ + " is not a PIS WAL");
    }
    const uint32_t version = GetU32(data.data() + 4);
    if (version != kWalVersion && version != kWalVersionNoShard) {
      return Status::InvalidArgument(
          "unsupported WAL version " + std::to_string(version) + " in " +
          wal.path_);
    }
    PIS_RETURN_NOT_OK(ParseRecords(data, version, &wal.recovered_,
                                   &valid_end));
    if (valid_end < data.size()) {
      PIS_LOG(Warning) << "WAL " << wal.path_ << ": truncating torn tail ("
                       << (data.size() - valid_end) << " bytes after record "
                       << wal.recovered_.size() << ")";
      if (::truncate(wal.path_.c_str(),
                     static_cast<off_t>(valid_end)) != 0) {
        return Status::IOError("cannot truncate torn WAL tail in " +
                               wal.path_ + ": " + std::strerror(errno));
      }
      PIS_RETURN_NOT_OK(SyncFile(wal.path_));
    }
    if (version != kWalVersion) {
      // Upgrade the file in place (same atomic rewrite as truncation) so
      // appends — always current-version — never mix formats in one log.
      PIS_ASSIGN_OR_RETURN(uint64_t new_size,
                           ReplaceLog(wal.path_, wal.recovered_));
      valid_end = new_size;
    }
  }

  for (const WalRecord& rec : wal.recovered_) {
    if (rec.epoch > wal.max_recovered_epoch_) {
      wal.max_recovered_epoch_ = rec.epoch;
    }
  }
  wal.bytes_.store(valid_end, std::memory_order_relaxed);
  wal.records_.store(wal.recovered_.size(), std::memory_order_relaxed);
  PIS_RETURN_NOT_OK(wal.OpenForAppend());
  return wal;
}

Status WriteAheadLog::OpenForAppend() {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) {
    return Status::IOError("cannot open WAL " + path_ +
                           " for append: " + std::strerror(errno));
  }
  return Status::OK();
}

void WriteAheadLog::CloseFd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

WriteAheadLog::WriteAheadLog(WriteAheadLog&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      recovered_(std::move(other.recovered_)),
      max_recovered_epoch_(other.max_recovered_epoch_),
      bytes_(other.bytes_.load(std::memory_order_relaxed)),
      records_(other.records_.load(std::memory_order_relaxed)),
      metrics_(other.metrics_) {
  other.fd_ = -1;
}

WriteAheadLog& WriteAheadLog::operator=(WriteAheadLog&& other) noexcept {
  if (this != &other) {
    CloseFd();
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    other.fd_ = -1;
    recovered_ = std::move(other.recovered_);
    max_recovered_epoch_ = other.max_recovered_epoch_;
    bytes_.store(other.bytes_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    records_.store(other.records_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    metrics_ = other.metrics_;
  }
  return *this;
}

WriteAheadLog::~WriteAheadLog() { CloseFd(); }

Status WriteAheadLog::Replay(GraphDatabase* db,
                             ShardedFragmentIndex* index) const {
  for (size_t i = 0; i < recovered_.size(); ++i) {
    const WalRecord& rec = recovered_[i];
    const std::string where = "WAL record " + std::to_string(i);
    if (rec.gid < 0) {
      return Status::InvalidArgument(where + " carries negative gid " +
                                     std::to_string(rec.gid));
    }
    if (rec.op == WalRecord::Op::kAdd) {
      // The db and the index may independently already hold this add (a
      // crash between the checkpoint's two file swaps); reconcile each.
      const bool db_needs = rec.gid >= db->size();
      const bool index_needs = rec.gid >= index->db_size();
      if (rec.shard < 0) {
        // Shard-less (v1) adds replay through least-loaded routing, which
        // only reproduces the original placement when the log is gap-free.
        if (db_needs && rec.gid != db->size()) {
          return Status::InvalidArgument(
              where + " adds gid " + std::to_string(rec.gid) +
              " but the database holds only " + std::to_string(db->size()) +
              " graphs — the log does not continue this snapshot");
        }
        if (index_needs && rec.gid != index->db_size()) {
          return Status::InvalidArgument(
              where + " adds gid " + std::to_string(rec.gid) +
              " but the index covers only " + std::to_string(index->db_size()) +
              " graphs — the log does not continue this snapshot");
        }
      } else if (rec.shard >= index->num_shards()) {
        return Status::InvalidArgument(
            where + " places gid " + std::to_string(rec.gid) + " in shard " +
            std::to_string(rec.shard) + " but the index has only " +
            std::to_string(index->num_shards()) + " shards");
      }
      if (!db_needs && !index_needs) continue;
      Result<Graph> g = ParseGraph(rec.graph_text);
      if (!g.ok()) {
        return Status::InvalidArgument(where + " holds an unparseable graph: " +
                                       g.status().message());
      }
      if (db_needs) {
        // A shard-stamped log legitimately skips foreign gids: align the
        // database with empty placeholder graphs for the absent slots
        // (AddGraphAt tombstones the same ids in the index).
        while (rec.shard >= 0 && db->size() < rec.gid) db->Add(Graph());
        db->Add(g.value());
      }
      if (index_needs) {
        if (rec.shard >= 0) {
          PIS_RETURN_NOT_OK(index->AddGraphAt(rec.gid, rec.shard, g.value()));
        } else {
          PIS_ASSIGN_OR_RETURN(int got, index->AddGraph(g.value()));
          if (got != rec.gid) {
            return Status::InvalidArgument(
                where + " expected gid " + std::to_string(rec.gid) +
                " but the index assigned " + std::to_string(got));
          }
        }
      }
    } else {
      if (rec.gid >= index->db_size()) {
        return Status::InvalidArgument(
            where + " removes gid " + std::to_string(rec.gid) +
            " which the index (size " + std::to_string(index->db_size()) +
            ") never held — the log does not continue this snapshot");
      }
      if (!index->IsLive(rec.gid)) continue;  // already applied
      PIS_RETURN_NOT_OK(index->RemoveGraph(rec.gid));
    }
  }
  if (db->size() != index->db_size()) {
    return Status::InvalidArgument(
        "WAL replay left the database (" + std::to_string(db->size()) +
        " graphs) and index (" + std::to_string(index->db_size()) +
        ") misaligned — snapshot pair and log do not belong together");
  }
  return Status::OK();
}

void WriteAheadLog::EnableMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  metrics_.append_seconds = registry->GetHistogram(
      "pis_wal_append_seconds", "WAL batch append + fsync latency");
  metrics_.appended_records = registry->GetCounter(
      "pis_wal_appended_records_total", "Records appended to the WAL");
  metrics_.fsyncs =
      registry->GetCounter("pis_wal_fsyncs_total", "WAL fsync calls");
  metrics_.truncations = registry->GetCounter(
      "pis_wal_truncations_total", "Checkpoint truncations of the WAL");
  metrics_.log_bytes =
      registry->GetGauge("pis_wal_bytes", "Current WAL file size in bytes");
  metrics_.log_bytes->Set(static_cast<int64_t>(bytes()));
}

Status WriteAheadLog::Append(std::span<const WalRecord> batch) {
  if (fd_ < 0) return Status::Internal("WAL is not open for append");
  if (batch.empty()) return Status::OK();
  Timer append_timer;
  std::string buf;
  for (const WalRecord& rec : batch) {
    const std::string payload = EncodePayload(rec);
    PutU32(&buf, static_cast<uint32_t>(payload.size()));
    PutU64(&buf, Fnv1a64(payload.data(), payload.size()));
    buf.append(payload);
  }
  const uint64_t old_bytes = bytes_.load(std::memory_order_relaxed);
  size_t written = 0;
  while (written < buf.size()) {
    const ssize_t n =
        ::write(fd_, buf.data() + written, buf.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      // Drop any partial frame so the on-disk log stays clean even though
      // this batch is being reported lost. If even the trim fails, POISON
      // the log (close the fd so every later Append refuses): appending
      // more records after a torn frame would leave acknowledged writes
      // behind garbage that recovery rejects wholesale — an acked-but-
      // unreplayable write, the exact contract this log exists to keep.
      if (::ftruncate(fd_, static_cast<off_t>(old_bytes)) != 0) {
        PIS_LOG(Error) << "WAL " << path_
                       << ": cannot trim failed append (" << std::strerror(errno)
                       << "); closing the log — no further writes will be "
                          "acknowledged";
        CloseFd();
      }
      return Status::IOError("WAL append to " + path_ + " failed: " + err);
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    return Status::IOError("WAL fsync of " + path_ +
                           " failed: " + std::strerror(errno));
  }
  bytes_.store(old_bytes + buf.size(), std::memory_order_relaxed);
  records_.fetch_add(batch.size(), std::memory_order_relaxed);
  if (metrics_.append_seconds != nullptr) {
    metrics_.append_seconds->Observe(append_timer.Seconds());
    metrics_.appended_records->Inc(batch.size());
    metrics_.fsyncs->Inc();
    metrics_.log_bytes->Set(static_cast<int64_t>(old_bytes + buf.size()));
  }
  return Status::OK();
}

Status WriteAheadLog::TruncateThrough(uint64_t through_epoch) {
  std::string data;
  PIS_RETURN_NOT_OK(ReadWholeFile(path_, &data));
  if (data.size() < kHeaderBytes) {
    return Status::Internal("WAL " + path_ + " lost its header");
  }
  // Open upgraded any v1 file, but read the header back anyway — the parse
  // must match whatever is physically on disk.
  const uint32_t version = GetU32(data.data() + 4);
  std::vector<WalRecord> all;
  size_t valid_end = 0;
  PIS_RETURN_NOT_OK(ParseRecords(data, version, &all, &valid_end));

  std::vector<WalRecord> keep;
  keep.reserve(all.size());
  for (WalRecord& rec : all) {
    if (rec.epoch > through_epoch) keep.push_back(std::move(rec));
  }
  PIS_ASSIGN_OR_RETURN(uint64_t new_size, ReplaceLog(path_, keep));
  // The append fd still points at the replaced (now unlinked) file; reopen
  // on the new one before any further Append.
  CloseFd();
  PIS_RETURN_NOT_OK(OpenForAppend());
  bytes_.store(new_size, std::memory_order_relaxed);
  records_.store(keep.size(), std::memory_order_relaxed);
  if (metrics_.truncations != nullptr) {
    metrics_.truncations->Inc();
    metrics_.log_bytes->Set(static_cast<int64_t>(new_size));
  }
  return Status::OK();
}

}  // namespace pis
