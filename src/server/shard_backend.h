// One replica of the shard fabric, as seen by the router: the five
// cluster ops of server/shard_ops.h plus a health probe, behind a uniform
// interface so the fan-out/merge logic in ClusterEngine is oblivious to
// where a shard actually lives.
//
//   LocalShardBackend  — an EngineHost in this process (the cluster test
//                        harness, and single-process deployments that want
//                        the router semantics without sockets).
//   RemoteShardBackend — a pis_server reached over the newline-delimited
//                        JSON protocol, with per-request deadlines and a
//                        lazily (re)connected pooled socket.
//
// Error taxonomy matters here: the router's failover and circuit breaker
// trip only on TRANSPORT errors (IOError, DeadlineExceeded, Unavailable —
// the replica is unreachable or wedged), while APPLICATION errors
// (InvalidArgument, NotFound, ...) travel back from a healthy replica's
// reply frame and are surfaced, not retried. RemoteShardBackend
// reconstructs the typed application Status from the reply's "code" field,
// so both backends present the identical error surface.
#ifndef PIS_SERVER_SHARD_BACKEND_H_
#define PIS_SERVER_SHARD_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/engine_host.h"
#include "server/shard_ops.h"
#include "util/json.h"
#include "util/mutex.h"
#include "util/socket.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace pis {

/// True for the failures that mean "this replica is unreachable or wedged"
/// — the ones failover and the circuit breaker should act on. Application
/// errors returned by a healthy replica are not transport errors.
bool IsTransportError(const Status& status);

/// \brief One replica endpoint of the shard fabric (router-side view).
///
/// Implementations must be safe to call from several router threads at
/// once; calls to ONE backend may be serialized internally (the remote
/// backend multiplexes a single pooled connection).
class ShardBackend {
 public:
  virtual ~ShardBackend() = default;

  /// Stable display name for logs and errors ("127.0.0.1:4871", "local#2").
  virtual const std::string& name() const = 0;

  /// Liveness probe; returns the replica's current epoch.
  virtual Result<uint64_t> Health() = 0;
  virtual Result<ShardMeta> Meta() = 0;
  /// With `trace`, the result's `spans` carries the replica's stage spans
  /// (remote clock domain — see ShardQueryResult::spans).
  virtual Result<ShardQueryResult> ShardQuery(const Graph& query,
                                              const std::vector<int>& shards,
                                              double sigma, bool sketch,
                                              bool trace = false) = 0;
  /// With `trace` and a non-null `spans_out`, appends the replica's verify
  /// spans on success (remote clock domain).
  virtual Result<std::vector<int>> ShardVerify(
      const Graph& query, const std::vector<int>& ids, double sigma,
      bool trace = false, std::vector<TraceSpan>* spans_out = nullptr) = 0;
  /// Idempotent explicit-placement write; returns the publishing epoch
  /// (0 when the replica had already applied this placement).
  virtual Result<uint64_t> ShardAdd(int gid, int shard, const Graph& g) = 0;

  struct RemoveOutcome {
    uint64_t epoch = 0;
    /// False when the gid was already dead on this replica (idempotent
    /// re-delivery during catch-up).
    bool applied = false;
  };
  virtual Result<RemoveOutcome> ShardRemove(int gid) = 0;

  /// Registers this endpoint's RPC instrumentation — one latency-histogram
  /// child per op under `pis_cluster_rpc_seconds{endpoint,op}` plus a
  /// transport-error counter — and starts recording. Same setup contract as
  /// EngineHost::EnableMetrics: call before the backend is shared across
  /// threads; the cached pointers are then read unsynchronized and poked
  /// atomics-only.
  void EnableMetrics(MetricsRegistry* registry);

 protected:
  /// Observes one completed call into the per-op latency histogram; a
  /// transport-classified failure (IsTransportError) also counts toward the
  /// endpoint's error counter. No-op until EnableMetrics.
  void RecordRpc(const char* op, double seconds, bool transport_error);

 private:
  /// Cached per-op children (fixed op vocabulary, resolved once so the
  /// record path never touches the registry mutex).
  struct RpcMetrics {
    Histogram* health = nullptr;
    Histogram* meta = nullptr;
    Histogram* shard_query = nullptr;
    Histogram* shard_verify = nullptr;
    Histogram* shard_add = nullptr;
    Histogram* shard_remove = nullptr;
    Counter* transport_errors = nullptr;
  };
  RpcMetrics rpc_metrics_;
};

/// \brief An in-process EngineHost serving a shard subset.
class LocalShardBackend : public ShardBackend {
 public:
  /// `host` must outlive the backend. `shards_owned` empty = all shards.
  LocalShardBackend(EngineHost* host, std::vector<int> shards_owned,
                    std::string name);

  const std::string& name() const override { return name_; }
  Result<uint64_t> Health() override;
  Result<ShardMeta> Meta() override;
  Result<ShardQueryResult> ShardQuery(const Graph& query,
                                      const std::vector<int>& shards,
                                      double sigma, bool sketch,
                                      bool trace = false) override;
  Result<std::vector<int>> ShardVerify(
      const Graph& query, const std::vector<int>& ids, double sigma,
      bool trace = false,
      std::vector<TraceSpan>* spans_out = nullptr) override;
  Result<uint64_t> ShardAdd(int gid, int shard, const Graph& g) override;
  Result<RemoveOutcome> ShardRemove(int gid) override;

 private:
  EngineHost* host_;
  std::vector<int> shards_owned_;  // sorted; empty = all
  std::string name_;
};

/// \brief A pis_server replica reached over TCP.
///
/// Holds one lazily-connected socket; every round trip is serialized under
/// a mutex (the line protocol is strictly request/reply, so one in-flight
/// frame per connection). Any transport failure drops the socket, so the
/// next call reconnects from scratch — reconnection policy (backoff,
/// breaker) lives in the router, not here.
class RemoteShardBackend : public ShardBackend {
 public:
  /// `timeout_ms > 0` bounds connect AND every round trip (a silent peer
  /// yields DeadlineExceeded); <= 0 blocks indefinitely.
  RemoteShardBackend(std::string host, int port, int timeout_ms);

  const std::string& name() const override { return name_; }
  Result<uint64_t> Health() override;
  Result<ShardMeta> Meta() override;
  Result<ShardQueryResult> ShardQuery(const Graph& query,
                                      const std::vector<int>& shards,
                                      double sigma, bool sketch,
                                      bool trace = false) override;
  Result<std::vector<int>> ShardVerify(
      const Graph& query, const std::vector<int>& ids, double sigma,
      bool trace = false,
      std::vector<TraceSpan>* spans_out = nullptr) override;
  Result<uint64_t> ShardAdd(int gid, int shard, const Graph& g) override;
  Result<RemoveOutcome> ShardRemove(int gid) override;

  /// Sends one request object and decodes the reply: an {"ok":false} frame
  /// becomes its typed application Status (via the "code" field), a
  /// transport failure drops the pooled socket and returns the transport
  /// Status. Exposed for pis_router's raw passthrough and the fuzz tests.
  Result<JsonValue> RoundTrip(const JsonValue& request) PIS_EXCLUDES(mu_);

 private:
  /// RoundTrip minus the instrumentation (the timed socket work).
  Result<JsonValue> RoundTripInner(const JsonValue& request)
      PIS_EXCLUDES(mu_);

  std::string host_;
  int port_;
  int timeout_ms_;
  std::string name_;

  Mutex mu_;
  TcpSocket conn_ PIS_GUARDED_BY(mu_);
};

}  // namespace pis

#endif  // PIS_SERVER_SHARD_BACKEND_H_
