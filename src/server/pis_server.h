// TCP front end over an EngineHost: a newline-delimited JSON protocol
// served by a fixed worker pool (ParallelFor is the pool — each worker
// accepts and serves one connection at a time, so per-connection requests
// are processed in order while distinct connections run concurrently).
//
// Protocol: one JSON object per line, one reply line per request.
//
//   {"op":"health"}                          -> {"ok":true,"status":"serving",...}
//   {"op":"stats"}                           -> {"ok":true,"stats":{...}}
//   {"op":"query","graph":"<record>",        -> {"ok":true,"answers":[ids],
//     "sigma":2.0?}                              "candidates":N,"epoch":E,...}
//   {"op":"add","graph":"<record>"}          -> {"ok":true,"id":gid,"epoch":E}
//   {"op":"remove","id":17}                  -> {"ok":true,"epoch":E}
//   {"op":"compact","min_dead_ratio":0.3?}   -> {"ok":true,"compacted":k,"epoch":E}
//   {"op":"shutdown"}                        -> {"ok":true} (then the server stops)
//
// "<record>" is one graph in the native text format (src/graph/io.h) with
// newlines JSON-escaped. Failures reply {"ok":false,"error":"..."} and
// keep the connection open; malformed JSON gets the same treatment.
//
// Concurrency guarantees are inherited from EngineHost: every query runs
// against one immutable snapshot (reads never block on writes, including
// background compaction), and a mutation acknowledged with "ok" is visible
// to every later request on any connection.
#ifndef PIS_SERVER_PIS_SERVER_H_
#define PIS_SERVER_PIS_SERVER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <unordered_set>

#include "server/engine_host.h"
#include "util/json.h"
#include "util/mutex.h"
#include "util/socket.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace pis {

struct PisServerOptions {
  /// 0 binds a kernel-assigned ephemeral port (read back via port()).
  int port = 0;
  bool loopback_only = true;
  /// Concurrent connections served; excess connections queue in the accept
  /// backlog.
  int num_workers = 4;
  /// Per-request frame cap (a graph record arrives as one line).
  size_t max_request_bytes = 16u << 20;
};

/// \brief Newline-delimited JSON server over an EngineHost.
class PisServer {
 public:
  /// `host` must outlive the server.
  PisServer(EngineHost* host, const PisServerOptions& options = {});
  ~PisServer();
  PisServer(const PisServer&) = delete;
  PisServer& operator=(const PisServer&) = delete;

  /// Binds the listener and spawns the worker pool. Call once.
  Status Start() PIS_EXCLUDES(serve_mu_);
  /// The bound port (valid after Start).
  int port() const { return listener_.port(); }

  /// Blocks until the server stopped (a shutdown request or Shutdown()).
  void Wait() PIS_EXCLUDES(serve_mu_);
  /// Stops accepting, severs live connections, and wakes Wait(). Idempotent
  /// and callable from any thread (including a protocol handler's).
  void Shutdown() PIS_EXCLUDES(live_mu_);

  /// True from a successful Start() until the worker pool has exited.
  bool running() const { return serving_.load(std::memory_order_acquire); }
  uint64_t connections_served() const { return connections_served_; }
  uint64_t requests_served() const { return requests_served_; }

 private:
  void WorkerLoop() PIS_EXCLUDES(live_mu_);
  void ServeConnection(TcpSocket conn) PIS_EXCLUDES(live_mu_);
  /// Returns the reply; sets `*shutdown` when the request asked the server
  /// to stop (the reply is still sent first).
  JsonValue HandleLine(const std::string& line, bool* shutdown);
  JsonValue HandleRequest(const JsonValue& request, bool* shutdown);

  EngineHost* host_;
  PisServerOptions options_;
  TcpListener listener_;
  /// serve_mu_ guards the pool thread object: Start() writes it while a
  /// concurrent Wait() (e.g. the destructor racing a protocol-triggered
  /// shutdown's waiter) joins it — unguarded, that pair is a data race on
  /// the std::thread itself (found by the thread-safety annotation pass).
  /// running() deliberately reads the serving_ flag instead of the thread
  /// so it never blocks behind a join in progress.
  mutable Mutex serve_mu_;
  std::thread serve_thread_ PIS_GUARDED_BY(serve_mu_);
  std::atomic<bool> serving_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> connections_served_{0};
  std::atomic<uint64_t> requests_served_{0};
  /// Raw fds of live connections, severed on Shutdown so workers blocked in
  /// RecvLine unblock.
  Mutex live_mu_;
  std::unordered_set<int> live_fds_ PIS_GUARDED_BY(live_mu_);
};

}  // namespace pis

#endif  // PIS_SERVER_PIS_SERVER_H_
