// TCP front end over an EngineHost: a newline-delimited JSON protocol
// served by the shared LineServer worker-pool shell (per-connection
// requests are processed in order; distinct connections run concurrently).
//
// Protocol: one JSON object per line, one reply line per request.
//
//   {"op":"health"}                          -> {"ok":true,"status":"serving",...}
//   {"op":"stats"}                           -> {"ok":true,"stats":{...}}
//   {"op":"query","graph":"<record>",        -> {"ok":true,"answers":[ids],
//     "sigma":2.0?}                              "candidates":N,"epoch":E,...}
//   {"op":"add","graph":"<record>"}          -> {"ok":true,"id":gid,"epoch":E}
//   {"op":"remove","id":17}                  -> {"ok":true,"epoch":E}
//   {"op":"compact","min_dead_ratio":0.3?}   -> {"ok":true,"compacted":k,"epoch":E}
//   {"op":"metrics"}                         -> {"ok":true,"content_type":..,
//                                                "text":"<prometheus exposition>"}
//   {"op":"shutdown"}                        -> {"ok":true} (then the server stops)
//
// `query` additionally accepts "trace":true, which adds a "trace" object to
// the reply: {"trace_id":..,"op":"query","total_ms":F,"spans":[span*]} with
// the span schema of obs/trace.h (filter stage children + verify). The same
// document is what a configured slow-query log records when total_ms
// breaches the threshold — with or without "trace" in the request.
//
// Cluster-fabric ops (pis_router is the intended caller; the payload
// shapes live in server/shard_ops.h):
//
//   {"op":"meta"}                            -> {"ok":true,"db_slots":..,
//                                                "routing":[..],"tombstones":[..],..}
//   {"op":"shard_query","graph":"<record>",  -> {"ok":true,"fragments":[..],
//     "shards":[0,2],"sigma":S?,"sketch":b?}     "dists":[[[gid,d],..],..],..}
//   {"op":"shard_verify","graph":"<record>", -> {"ok":true,"answers":[ids]}
//     "ids":[..],"sigma":S}
//   {"op":"shard_add","gid":N,"shard":s,     -> {"ok":true,"epoch":E}
//     "graph":"<record>"}                       (idempotent re-apply included)
//   {"op":"shard_remove","id":N}             -> {"ok":true,"epoch":E,
//                                                "applied":bool} (idempotent)
//
// With a non-empty PisServerOptions::shards_owned, shard_query/shard_verify
// reject shards (or candidate gids resident in shards) outside the owned
// set — the replica serves a shard subset even though it loads the full
// index structure. shard_add carries an explicit (gid, shard) placement
// preassigned by the router and is idempotent, which is what makes the
// router's catch-up replay after a lost ack safe; shard_remove likewise
// treats an already-dead gid as success ("applied":false).
//
// "<record>" is one graph in the native text format (src/graph/io.h) with
// newlines JSON-escaped. Failures reply {"ok":false,"code":"<StatusCode>",
// "error":"..."} and keep the connection open; malformed JSON gets the
// same treatment.
//
// Concurrency guarantees are inherited from EngineHost: every query runs
// against one immutable snapshot (reads never block on writes, including
// background compaction), and a mutation acknowledged with "ok" is visible
// to every later request on any connection.
#ifndef PIS_SERVER_PIS_SERVER_H_
#define PIS_SERVER_PIS_SERVER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/engine_host.h"
#include "server/line_server.h"
#include "util/json.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace pis {

struct PisServerOptions {
  /// 0 binds a kernel-assigned ephemeral port (read back via port()).
  int port = 0;
  bool loopback_only = true;
  /// Concurrent connections served; excess connections queue in the accept
  /// backlog.
  int num_workers = 4;
  /// Per-request frame cap (a graph record arrives as one line).
  size_t max_request_bytes = 16u << 20;
  /// Shards this replica serves (empty = all). Only constrains the
  /// cluster-fabric ops; the classic single-server ops always see the whole
  /// host.
  std::vector<int> shards_owned;
  /// When non-null: per-op request counters/latency histograms register
  /// here, the `metrics` op renders its Prometheus exposition, and the
  /// `stats` reply gains a "metrics" JSON section. Must outlive the server.
  /// (Wiring the HOST's engine metrics into the same registry is the
  /// caller's job — EngineHost::EnableMetrics.)
  MetricsRegistry* metrics = nullptr;
  /// When non-null, any query whose wall time breaches the log's threshold
  /// has its span tree appended as one JSON line. Must outlive the server.
  SlowQueryLog* slow_query_log = nullptr;
};

/// \brief Newline-delimited JSON server over an EngineHost.
class PisServer {
 public:
  /// `host` must outlive the server.
  PisServer(EngineHost* host, const PisServerOptions& options = {});

  /// Binds the listener and spawns the worker pool. Call once.
  Status Start() { return shell_.Start(); }
  /// The bound port (valid after Start).
  int port() const { return shell_.port(); }

  /// Blocks until the server stopped (a shutdown request or Shutdown()).
  void Wait() { shell_.Wait(); }
  /// Stops accepting, severs live connections, and wakes Wait(). Idempotent
  /// and callable from any thread (including a protocol handler's).
  void Shutdown() { shell_.Shutdown(); }

  /// True from a successful Start() until the worker pool has exited.
  bool running() const { return shell_.running(); }
  uint64_t connections_served() const { return shell_.connections_served(); }
  uint64_t requests_served() const { return shell_.requests_served(); }

 private:
  /// Per-op request instrumentation, registered once at construction for
  /// the fixed op vocabulary so the request path never takes the registry
  /// mutex.
  struct OpMetrics {
    Counter* requests = nullptr;
    Histogram* latency = nullptr;
  };

  /// Returns the reply; sets `*shutdown` when the request asked the server
  /// to stop (the reply is still sent first).
  JsonValue HandleLine(const std::string& line, bool* shutdown);
  /// Times and counts the request, then dispatches.
  JsonValue HandleRequest(const JsonValue& request, bool* shutdown);
  JsonValue Dispatch(const JsonValue& request, const std::string& op,
                     bool* shutdown);
  JsonValue HandleQuery(const JsonValue& request);
  JsonValue HandleShardQuery(const JsonValue& request);
  JsonValue HandleShardVerify(const JsonValue& request);
  JsonValue HandleShardAdd(const JsonValue& request);
  JsonValue HandleShardRemove(const JsonValue& request);

  EngineHost* host_;
  /// Sorted copy of options.shards_owned (empty = all shards).
  std::vector<int> shards_owned_;
  MetricsRegistry* metrics_registry_;
  SlowQueryLog* slow_log_;
  /// op -> cached children; read-only after construction.
  std::map<std::string, OpMetrics> op_metrics_;
  LineServer shell_;
};

}  // namespace pis

#endif  // PIS_SERVER_PIS_SERVER_H_
