// The fan-out/merge router core of the distributed shard fabric: a set of
// ShardBackend replicas, a cluster manifest mapping every shard to the
// replicas that serve it, and a query/write engine whose externally
// observable behaviour — answers, candidate lists, and every shared
// QueryStats counter — is identical to a single-process ShardedPisEngine
// over the same logical database.
//
// How the equivalence is engineered (and why the merge happens where it
// does): the PIS filter is global — its selectivity denominator is the
// cluster-wide live count, the ε-filter keeps fragments globally, and the
// overlap partition is chosen once over merged selectivities. So a query
// runs in two rounds:
//
//   round 1  shard_query to a COVER (one healthy replica per shard, shards
//            grouped per endpoint), returning per-fragment
//            {gid -> min distance} maps. Shards own disjoint gid spaces,
//            so the router unions the maps positionally and then runs
//            RunPisFilterCore — the exact post-enumeration Algorithm 2
//            core both engines share — over the merged maps.
//   round 2  shard_verify of the surviving candidates, grouped to the
//            owning shard's chosen replica; answers union ascending.
//
// Writes are serialized by the router (the sole writer and global-metadata
// authority): placement mirrors ShardedFragmentIndex::AddGraph (least
// loaded live count, ties to the lowest shard id) and the new gid is the
// next slot, so a cluster that applies the router's write sequence holds
// the same routing table as the oracle applying AddGraph calls. Each write
// fans to EVERY replica of the owning shard as an idempotent explicit
// placement (shard_add gid/shard) and commits once >= 1 replica acks;
// replicas that missed it get the op appended to a per-endpoint ordered
// catch-up queue which the health thread drains when the replica returns
// (idempotency is what makes replaying a possibly-applied op safe). A
// write acked by NO replica still commits router state, queues everywhere,
// and reports Unavailable — the ambiguous-failure contract documented in
// docs/cluster.md (the op may have landed on a replica that died after
// applying; reserving the gid keeps a later retry from colliding).
//
// Reads never touch a replica with queued catch-up ops (it is behind acked
// state) or an open circuit breaker; transport failures during a query
// trip the breaker and the round retries on the next healthy cover, so a
// replica kill mid-stream degrades to failover, not wrong answers.
#ifndef PIS_SERVER_CLUSTER_ENGINE_H_
#define PIS_SERVER_CLUSTER_ENGINE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/options.h"
#include "core/pis.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/shard_backend.h"
#include "util/json.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace pis {

/// Shard -> replica endpoints. JSON form:
///   {"shards": [{"replicas": ["127.0.0.1:4871", "127.0.0.1:4872"]},
///               {"replicas": ["127.0.0.1:4873"]}]}
/// Entry i lists the endpoints serving shard i; an endpoint may (and
/// typically does) appear under several shards.
struct ClusterManifest {
  struct Shard {
    std::vector<std::string> replicas;  // "host:port"
  };
  std::vector<Shard> shards;

  static Result<ClusterManifest> FromJson(const JsonValue& json);
  static Result<ClusterManifest> LoadFile(const std::string& path);
};

struct ClusterEngineOptions {
  /// Per-request socket deadline for remote replicas (connect + each round
  /// trip); <= 0 blocks indefinitely.
  int timeout_ms = 5000;
  /// Consecutive transport failures that open an endpoint's breaker.
  int breaker_threshold = 3;
  /// How long an open breaker rejects an endpoint before the health thread
  /// probes it again.
  int breaker_open_ms = 500;
  /// Health-probe cadence (StartHealthThread); the probe also drains
  /// catch-up queues of recovered replicas.
  int health_interval_ms = 100;
  /// Engine knobs. sigma/sketch_enabled/epsilon/partition choices must
  /// match the shard servers' cluster config; verify_threads affects only
  /// replica-side scheduling. shard_threads fans round-1 endpoint groups.
  PisOptions options;
  /// When non-null, the engine registers fabric metrics here (breaker
  /// state/transitions, catch-up queue depth, failover counts, and each
  /// backend's per-endpoint RPC latency) at construction and records them
  /// atomics-only afterwards. Must outlive the engine.
  MetricsRegistry* metrics = nullptr;
};

/// \brief Fan-out/merge engine over a set of shard-replica backends.
///
/// Thread-safe: queries run concurrently with each other and with writes
/// (each round reads a pinned copy of the routing state); writes are
/// serialized internally.
class ClusterEngine {
 public:
  /// Takes ownership of the backends. `shards_of[e]` lists the shards
  /// backend e serves; every shard must be covered by >= 1 backend.
  /// Call Bootstrap() before serving.
  ClusterEngine(std::vector<std::unique_ptr<ShardBackend>> backends,
                std::vector<std::vector<int>> shards_of,
                const ClusterEngineOptions& options);
  ~ClusterEngine();
  ClusterEngine(const ClusterEngine&) = delete;
  ClusterEngine& operator=(const ClusterEngine&) = delete;

  /// Connects RemoteShardBackends per the manifest (one backend per unique
  /// endpoint string) and bootstraps.
  static Result<std::unique_ptr<ClusterEngine>> Connect(
      const ClusterManifest& manifest, const ClusterEngineOptions& options);

  /// Adopts the global routing state (slot count, routing table,
  /// tombstones) from the highest-epoch reachable replica. The cluster
  /// must be quiesced (no in-flight writes from a previous router) —
  /// epochs order ops per replica, not across them. InvalidArgument when
  /// replicas disagree structurally; Unavailable when nothing is
  /// reachable.
  Status Bootstrap() PIS_EXCLUDES(writer_mu_, state_mu_);

  /// Starts the background prober (health checks, breaker reset, catch-up
  /// drain). No-op when already running.
  void StartHealthThread() PIS_EXCLUDES(health_mu_);
  void StopHealthThread() PIS_EXCLUDES(health_mu_);

  /// One probe-and-drain pass over every endpoint, synchronously — what
  /// the health thread runs each tick. Exposed so tests (and single-shot
  /// tools) can force recovery without waiting out the cadence.
  void ProbeOnce() PIS_EXCLUDES(writer_mu_);

  // -- Queries (see class comment for the two-round protocol) --------------

  /// The configured default similarity threshold (what Search(query) uses).
  double sigma() const { return options_.options.sigma; }

  Result<SearchResult> Search(const Graph& query)
      PIS_EXCLUDES(writer_mu_, state_mu_);
  /// Per-query sigma override (the router front end's "sigma" field).
  Result<SearchResult> Search(const Graph& query, double sigma)
      PIS_EXCLUDES(writer_mu_, state_mu_);
  /// Traced variant: with a non-null `trace`, records the two-round span
  /// tree — one `shard_query:<endpoint>` round-trip span per cover group
  /// (remote stage spans grafted as children), `merge`, `filter` with the
  /// shared-core stage children, and one `shard_verify:...` span per shard
  /// with work. With shard_threads == 1 (the default) the fan-outs are
  /// sequential, so sibling spans do not overlap and their durations sum to
  /// at most the trace total.
  Result<SearchResult> Search(const Graph& query, double sigma,
                              TraceContext* trace)
      PIS_EXCLUDES(writer_mu_, state_mu_);
  /// Same contract as ShardedPisEngine::SearchBatch (0 = all hardware
  /// threads); per-query rounds run concurrently.
  BatchSearchResult SearchBatch(std::span<const Graph> queries,
                                int num_threads = 0)
      PIS_EXCLUDES(writer_mu_, state_mu_);

  // -- Writes (router-serialized; see class comment for replication) -------

  /// Places and replicates one graph; returns its global id. Unavailable
  /// with NO acks is ambiguous: the gid is committed and will reach every
  /// replica via catch-up, but the caller cannot assume visibility yet.
  Result<int> AddGraph(const Graph& g) PIS_EXCLUDES(writer_mu_, state_mu_);
  /// Tombstones one live graph cluster-wide. Same ambiguous-failure
  /// contract as AddGraph.
  Status RemoveGraph(int gid) PIS_EXCLUDES(writer_mu_, state_mu_);

  // -- Introspection --------------------------------------------------------

  struct EndpointStatus {
    std::string name;
    std::vector<int> shards;
    bool breaker_open = false;
    int consecutive_failures = 0;
    size_t pending_ops = 0;
  };
  struct ClusterStats {
    uint64_t epoch = 0;  // max replica epoch observed on the write path
    int db_slots = 0;
    int live = 0;
    int num_shards = 0;
    std::vector<EndpointStatus> endpoints;
  };
  ClusterStats Stats() PIS_EXCLUDES(state_mu_);
  JsonValue StatsJson();

  int num_shards() const { return static_cast<int>(shard_endpoints_.size()); }

 private:
  /// One queued catch-up op (an add carries the whole graph so the queue
  /// is self-contained — the router has no storage of its own).
  struct PendingOp {
    bool is_add = false;
    int gid = 0;
    int shard = 0;
    Graph graph;  // adds only
  };

  /// Per-endpoint replica state. send_mu serializes every WRITE to the
  /// endpoint (direct or catch-up drain) so the replica applies the
  /// router's ops in commit order; reads bypass it (they are stateless and
  /// the backend serializes frames internally).
  struct Endpoint {
    std::unique_ptr<ShardBackend> backend;
    std::vector<int> shards;  // sorted shard ids this endpoint serves

    Mutex send_mu;
    std::deque<PendingOp> pending PIS_GUARDED_BY(send_mu);

    Mutex health_mu;
    int consecutive_failures PIS_GUARDED_BY(health_mu) = 0;
    std::chrono::steady_clock::time_point open_until
        PIS_GUARDED_BY(health_mu);

    /// Metric children (null without ClusterEngineOptions::metrics). The
    /// breaker gauge reports the sticky open/closed state — it stays 1
    /// through the half-open probe window until a success closes it.
    Gauge* breaker_open_gauge = nullptr;
    Counter* breaker_opened = nullptr;
    Counter* breaker_closed = nullptr;
    Gauge* catchup_depth = nullptr;
  };

  /// Immutable pin of the routing state one query round runs against.
  struct StatePin {
    int db_slots = 0;
    std::vector<int> routing;
    std::unordered_set<int> tombstones;
  };

  StatePin PinState() PIS_EXCLUDES(state_mu_);
  /// Endpoint is currently eligible to serve reads: breaker closed and no
  /// queued catch-up ops (a replica with pending ops is behind acked
  /// state).
  bool Readable(Endpoint& ep);
  void NoteTransportFailure(Endpoint& ep);
  void NoteTransportSuccess(Endpoint& ep);
  /// Picks one readable endpoint per shard, excluding `exclude`; fills
  /// cover[s] with an endpoint index. Unavailable when a shard has none.
  Status PickCover(const std::unordered_set<int>& exclude,
                   std::vector<int>* cover);
  Result<SearchResult> SearchInternal(const Graph& query, double sigma,
                                      QueryStats* stats_out,
                                      TraceContext* trace);
  /// Applies one committed write to every replica of its shard: direct
  /// sends where possible, catch-up queue otherwise. Returns the ack count
  /// and the max acked epoch.
  int ReplicateOp(const PendingOp& op, uint64_t* max_epoch);
  /// Drains one endpoint's catch-up queue in order; stops (and re-trips
  /// the breaker) on the first transport failure.
  void DrainPending(Endpoint& ep);
  void HealthLoop();

  ClusterEngineOptions options_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  /// Cluster-wide metric children (null without options_.metrics).
  struct Metrics {
    Counter* failovers = nullptr;
    Counter* catchup_dropped = nullptr;
  };
  Metrics metrics_;
  /// shard -> endpoint indexes serving it (manifest order: replica 0 is
  /// the preferred primary).
  std::vector<std::vector<int>> shard_endpoints_;

  /// Lock order: writer_mu_ before state_mu_ (never the reverse).
  Mutex writer_mu_;
  Mutex state_mu_;
  int db_slots_ PIS_GUARDED_BY(state_mu_) = 0;
  std::vector<int> routing_ PIS_GUARDED_BY(state_mu_);
  std::unordered_set<int> tombstones_ PIS_GUARDED_BY(state_mu_);
  std::vector<int> live_per_shard_ PIS_GUARDED_BY(state_mu_);
  uint64_t epoch_ PIS_GUARDED_BY(state_mu_) = 0;

  Mutex health_mu_;
  std::thread health_thread_ PIS_GUARDED_BY(health_mu_);
  CondVar health_cv_;
  bool health_stop_ PIS_GUARDED_BY(health_mu_) = false;
};

}  // namespace pis

#endif  // PIS_SERVER_CLUSTER_ENGINE_H_
