#include "server/cluster_engine.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "core/filter_impl.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace pis {

namespace {

Result<std::pair<std::string, int>> SplitEndpoint(const std::string& text) {
  const size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == text.size()) {
    return Status::InvalidArgument("endpoint \"" + text +
                                   "\" is not host:port");
  }
  char* end = nullptr;
  const long port = std::strtol(text.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || port < 1 || port > 65535) {
    return Status::InvalidArgument("endpoint \"" + text +
                                   "\" has an invalid port");
  }
  return std::make_pair(text.substr(0, colon), static_cast<int>(port));
}

}  // namespace

// ---------------------------------------------------------------------------
// ClusterManifest

Result<ClusterManifest> ClusterManifest::FromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("manifest must be a JSON object");
  }
  const JsonValue* shards = json.Find("shards");
  if (shards == nullptr || !shards->is_array() || shards->size() == 0) {
    return Status::InvalidArgument(
        "manifest needs a non-empty \"shards\" array");
  }
  ClusterManifest manifest;
  manifest.shards.reserve(shards->size());
  for (const JsonValue& entry : shards->items()) {
    const JsonValue* replicas =
        entry.is_object() ? entry.Find("replicas") : nullptr;
    if (replicas == nullptr || !replicas->is_array() ||
        replicas->size() == 0) {
      return Status::InvalidArgument(
          "every manifest shard needs a non-empty \"replicas\" array");
    }
    Shard shard;
    for (const JsonValue& replica : replicas->items()) {
      if (!replica.is_string()) {
        return Status::InvalidArgument("replica endpoints must be strings");
      }
      PIS_RETURN_NOT_OK(SplitEndpoint(replica.AsString()).status());
      shard.replicas.push_back(replica.AsString());
    }
    manifest.shards.push_back(std::move(shard));
  }
  return manifest;
}

Result<ClusterManifest> ClusterManifest::LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open manifest " + path);
  std::ostringstream text;
  text << in.rdbuf();
  PIS_ASSIGN_OR_RETURN(JsonValue json, JsonValue::Parse(text.str()));
  return FromJson(json);
}

// ---------------------------------------------------------------------------
// Construction

ClusterEngine::ClusterEngine(
    std::vector<std::unique_ptr<ShardBackend>> backends,
    std::vector<std::vector<int>> shards_of,
    const ClusterEngineOptions& options)
    : options_(options) {
  PIS_CHECK(backends.size() == shards_of.size());
  PIS_CHECK(!backends.empty());
  int num_shards = 0;
  for (const std::vector<int>& shards : shards_of) {
    for (int s : shards) num_shards = std::max(num_shards, s + 1);
  }
  shard_endpoints_.resize(num_shards);
  endpoints_.reserve(backends.size());
  for (size_t e = 0; e < backends.size(); ++e) {
    auto ep = std::make_unique<Endpoint>();
    ep->backend = std::move(backends[e]);
    ep->shards = std::move(shards_of[e]);
    std::sort(ep->shards.begin(), ep->shards.end());
    ep->shards.erase(std::unique(ep->shards.begin(), ep->shards.end()),
                     ep->shards.end());
    for (int s : ep->shards) {
      shard_endpoints_[s].push_back(static_cast<int>(e));
    }
    endpoints_.push_back(std::move(ep));
  }
  for (int s = 0; s < num_shards; ++s) {
    PIS_CHECK(!shard_endpoints_[s].empty());  // manifest must cover all shards
  }
  if (options_.metrics != nullptr) {
    MetricsRegistry* reg = options_.metrics;
    metrics_.failovers = reg->GetCounter(
        "pis_cluster_failovers_total",
        "Query-path retries on another replica after a failed attempt.");
    metrics_.catchup_dropped = reg->GetCounter(
        "pis_cluster_catchup_dropped_total",
        "Catch-up ops dropped after an application rejection (permanent "
        "replica divergence).");
    for (std::unique_ptr<Endpoint>& ep : endpoints_) {
      const std::string& name = ep->backend->name();
      ep->breaker_open_gauge = reg->GetGauge(
          "pis_cluster_breaker_open",
          "1 while the endpoint's circuit breaker is open (sticky until a "
          "success closes it).",
          {{"endpoint", name}});
      ep->breaker_opened = reg->GetCounter(
          "pis_cluster_breaker_transitions_total",
          "Circuit-breaker state transitions per endpoint.",
          {{"endpoint", name}, {"to", "open"}});
      ep->breaker_closed = reg->GetCounter(
          "pis_cluster_breaker_transitions_total",
          "Circuit-breaker state transitions per endpoint.",
          {{"endpoint", name}, {"to", "closed"}});
      ep->catchup_depth = reg->GetGauge(
          "pis_cluster_catchup_pending",
          "Queued catch-up ops awaiting ordered replay on the endpoint.",
          {{"endpoint", name}});
      ep->backend->EnableMetrics(reg);
    }
  }
}

ClusterEngine::~ClusterEngine() { StopHealthThread(); }

Result<std::unique_ptr<ClusterEngine>> ClusterEngine::Connect(
    const ClusterManifest& manifest, const ClusterEngineOptions& options) {
  std::unordered_map<std::string, size_t> endpoint_index;
  std::vector<std::unique_ptr<ShardBackend>> backends;
  std::vector<std::vector<int>> shards_of;
  for (size_t s = 0; s < manifest.shards.size(); ++s) {
    for (const std::string& replica : manifest.shards[s].replicas) {
      auto [it, inserted] =
          endpoint_index.emplace(replica, backends.size());
      if (inserted) {
        PIS_ASSIGN_OR_RETURN(auto host_port, SplitEndpoint(replica));
        backends.push_back(std::make_unique<RemoteShardBackend>(
            host_port.first, host_port.second, options.timeout_ms));
        shards_of.emplace_back();
      }
      shards_of[it->second].push_back(static_cast<int>(s));
    }
  }
  auto engine = std::make_unique<ClusterEngine>(
      std::move(backends), std::move(shards_of), options);
  PIS_RETURN_NOT_OK(engine->Bootstrap());
  return engine;
}

// ---------------------------------------------------------------------------
// Health / breaker / catch-up

bool ClusterEngine::Readable(Endpoint& ep) {
  {
    MutexLock lock(&ep.health_mu);
    if (ep.consecutive_failures >= options_.breaker_threshold &&
        std::chrono::steady_clock::now() < ep.open_until) {
      return false;  // breaker open (half-opens once open_until passes)
    }
  }
  MutexLock lock(&ep.send_mu);
  // Queued catch-up ops mean this replica is behind acked state: reading
  // from it could miss an acknowledged write.
  return ep.pending.empty();
}

void ClusterEngine::NoteTransportFailure(Endpoint& ep) {
  MutexLock lock(&ep.health_mu);
  ++ep.consecutive_failures;
  if (ep.consecutive_failures >= options_.breaker_threshold) {
    ep.open_until = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(options_.breaker_open_ms);
    // Exactly the first crossing since the last success is a transition;
    // later failures merely extend the open window.
    if (ep.consecutive_failures == options_.breaker_threshold &&
        ep.breaker_opened != nullptr) {
      ep.breaker_opened->Inc();
    }
    if (ep.breaker_open_gauge != nullptr) ep.breaker_open_gauge->Set(1);
  }
}

void ClusterEngine::NoteTransportSuccess(Endpoint& ep) {
  MutexLock lock(&ep.health_mu);
  if (ep.consecutive_failures >= options_.breaker_threshold &&
      ep.breaker_closed != nullptr) {
    ep.breaker_closed->Inc();
  }
  if (ep.breaker_open_gauge != nullptr) ep.breaker_open_gauge->Set(0);
  ep.consecutive_failures = 0;
}

void ClusterEngine::DrainPending(Endpoint& ep) {
  MutexLock lock(&ep.send_mu);
  while (!ep.pending.empty()) {
    const PendingOp& op = ep.pending.front();
    Status applied = Status::OK();
    if (op.is_add) {
      applied = ep.backend->ShardAdd(op.gid, op.shard, op.graph).status();
    } else {
      applied = ep.backend->ShardRemove(op.gid).status();
    }
    if (!applied.ok()) {
      if (IsTransportError(applied)) {
        NoteTransportFailure(ep);
        if (ep.catchup_depth != nullptr) {
          ep.catchup_depth->Set(static_cast<int64_t>(ep.pending.size()));
        }
        return;  // still down; keep the queue, retry next probe
      }
      // An application error will repeat on every retry — dropping it is
      // the only way the queue ever drains. Loud, because it means this
      // replica has permanently diverged (misconfigured ownership).
      PIS_LOG(Error) << "dropping catch-up op (gid " << op.gid << ") for "
                     << ep.backend->name() << ": " << applied.ToString();
      if (metrics_.catchup_dropped != nullptr) metrics_.catchup_dropped->Inc();
    }
    ep.pending.pop_front();
  }
  if (ep.catchup_depth != nullptr) ep.catchup_depth->Set(0);
}

void ClusterEngine::ProbeOnce() {
  for (std::unique_ptr<Endpoint>& ep : endpoints_) {
    {
      MutexLock lock(&ep->health_mu);
      if (ep->consecutive_failures >= options_.breaker_threshold &&
          std::chrono::steady_clock::now() < ep->open_until) {
        continue;  // breaker open: don't hammer a dead endpoint
      }
    }
    Result<uint64_t> health = ep->backend->Health();
    if (!health.ok()) {
      NoteTransportFailure(*ep);
      continue;
    }
    NoteTransportSuccess(*ep);
    DrainPending(*ep);
  }
}

void ClusterEngine::StartHealthThread() {
  MutexLock lock(&health_mu_);
  if (health_thread_.joinable()) return;
  health_stop_ = false;
  health_thread_ = std::thread([this] { HealthLoop(); });
}

void ClusterEngine::StopHealthThread() {
  std::thread to_join;
  {
    MutexLock lock(&health_mu_);
    if (!health_thread_.joinable()) return;
    health_stop_ = true;
    health_cv_.NotifyAll();
    to_join = std::move(health_thread_);
  }
  to_join.join();
}

void ClusterEngine::HealthLoop() {
  const auto interval =
      std::chrono::milliseconds(std::max(1, options_.health_interval_ms));
  while (true) {
    {
      MutexLock lock(&health_mu_);
      if (health_stop_) return;
      health_cv_.WaitFor(&health_mu_, interval);
      if (health_stop_) return;
    }
    ProbeOnce();
  }
}

// ---------------------------------------------------------------------------
// Bootstrap

Status ClusterEngine::Bootstrap() {
  MutexLock writer(&writer_mu_);
  bool have_meta = false;
  ShardMeta best;
  Status last_error =
      Status::Unavailable("no replica endpoints configured");
  for (std::unique_ptr<Endpoint>& ep : endpoints_) {
    Result<ShardMeta> meta = ep->backend->Meta();
    if (!meta.ok()) {
      last_error = meta.status();
      if (IsTransportError(meta.status())) NoteTransportFailure(*ep);
      continue;
    }
    NoteTransportSuccess(*ep);
    if (meta.value().num_shards != num_shards()) {
      return Status::InvalidArgument(
          ep->backend->name() + " serves " +
          std::to_string(meta.value().num_shards) +
          " shards but the manifest describes " +
          std::to_string(num_shards()));
    }
    if (!have_meta || meta.value().epoch > best.epoch) {
      best = meta.MoveValue();
      have_meta = true;
    }
  }
  if (!have_meta) {
    return Status::Unavailable("no replica reachable for bootstrap: " +
                               last_error.ToString());
  }
  MutexLock state(&state_mu_);
  db_slots_ = best.db_slots;
  routing_ = std::move(best.routing);
  tombstones_ =
      std::unordered_set<int>(best.tombstones.begin(), best.tombstones.end());
  live_per_shard_.assign(num_shards(), 0);
  for (int gid = 0; gid < db_slots_; ++gid) {
    const int s = routing_[gid];
    if (s >= 0 && tombstones_.count(gid) == 0) ++live_per_shard_[s];
  }
  if (best.epoch > epoch_) epoch_ = best.epoch;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Query path

ClusterEngine::StatePin ClusterEngine::PinState() {
  MutexLock lock(&state_mu_);
  StatePin pin;
  pin.db_slots = db_slots_;
  pin.routing = routing_;
  pin.tombstones = tombstones_;
  return pin;
}

Status ClusterEngine::PickCover(const std::unordered_set<int>& exclude,
                                std::vector<int>* cover) {
  cover->assign(num_shards(), -1);
  for (int s = 0; s < num_shards(); ++s) {
    for (int e : shard_endpoints_[s]) {
      if (exclude.count(e) != 0) continue;
      if (!Readable(*endpoints_[e])) continue;
      (*cover)[s] = e;
      break;
    }
    if ((*cover)[s] < 0) {
      return Status::Unavailable("no healthy replica serves shard " +
                                 std::to_string(s));
    }
  }
  return Status::OK();
}

Result<SearchResult> ClusterEngine::Search(const Graph& query) {
  return Search(query, options_.options.sigma);
}

Result<SearchResult> ClusterEngine::Search(const Graph& query, double sigma) {
  QueryStats unused;
  return SearchInternal(query, sigma, &unused, nullptr);
}

Result<SearchResult> ClusterEngine::Search(const Graph& query, double sigma,
                                           TraceContext* trace) {
  QueryStats unused;
  return SearchInternal(query, sigma, &unused, trace);
}

Result<SearchResult> ClusterEngine::SearchInternal(const Graph& query,
                                                   double sigma,
                                                   QueryStats* stats_out,
                                                   TraceContext* trace) {
  Timer filter_timer;
  const StatePin pin = PinState();
  const bool sketch = options_.options.sketch_enabled;

  // ---- Round 1: fan shard_query over a healthy cover, with failover ----
  std::vector<QueryFragment> fragments;
  std::vector<std::unordered_map<int, double>> merged;
  uint64_t sketch_checks = 0;
  std::vector<int> sketch_pruned;
  std::unordered_set<int> exclude;
  bool round1_done = false;
  while (!round1_done) {
    std::vector<int> cover;
    PIS_RETURN_NOT_OK(PickCover(exclude, &cover));
    // Group the cover's shards per endpoint: one shard_query round trip
    // asks an endpoint for every shard it covers.
    std::vector<std::pair<int, std::vector<int>>> groups;  // endpoint, shards
    for (int s = 0; s < num_shards(); ++s) {
      const int e = cover[s];
      auto it = std::find_if(groups.begin(), groups.end(),
                             [e](const auto& g) { return g.first == e; });
      if (it == groups.end()) {
        groups.emplace_back(e, std::vector<int>{s});
      } else {
        it->second.push_back(s);
      }
    }
    std::vector<Result<ShardQueryResult>> replies(
        groups.size(), Status::Internal("shard_query not run"));
    const int fan = std::max(1, options_.options.shard_threads);
    ParallelFor(groups.size(), fan, [&](size_t g) {
      const double start_ms = trace != nullptr ? trace->ElapsedMs() : 0;
      replies[g] = endpoints_[groups[g].first]->backend->ShardQuery(
          query, groups[g].second, sigma, sketch, trace != nullptr);
      if (trace != nullptr) {
        // The replica's own stage spans (remote clock domain) graft under
        // this round-trip span; a failed attempt records with no children.
        std::vector<TraceSpan> children;
        if (replies[g].ok()) children = std::move(replies[g].value().spans);
        trace->RecordSince(
            "shard_query:" + endpoints_[groups[g].first]->backend->name(),
            start_ms, std::move(children));
      }
    });
    bool retry = false;
    for (size_t g = 0; g < groups.size(); ++g) {
      if (replies[g].ok()) continue;
      if (IsTransportError(replies[g].status())) {
        NoteTransportFailure(*endpoints_[groups[g].first]);
        exclude.insert(groups[g].first);
        retry = true;
        if (metrics_.failovers != nullptr) metrics_.failovers->Inc();
        continue;
      }
      // Application error from a healthy replica (e.g. "query graph is
      // empty") — the single-process engine would fail identically.
      return replies[g].status();
    }
    if (retry) continue;

    // ---- Merge: positional union of the per-fragment maps ----
    // The first reply's catalog is the reference; it is only moved into
    // `fragments` after the loop (which still reads it for comparison).
    ScopedSpan merge_span(trace, "merge");
    const auto& catalog = replies[0].value().fragments;
    merged.assign(catalog.size(), {});
    sketch_checks = 0;
    sketch_pruned.clear();
    for (size_t g = 0; g < groups.size(); ++g) {
      ShardQueryResult& r = replies[g].value();
      if (r.fragments.size() != catalog.size()) {
        return Status::Internal(
            "fragment catalogs diverge across replicas (" +
            endpoints_[groups[g].first]->backend->name() + " enumerated " +
            std::to_string(r.fragments.size()) + " fragments, expected " +
            std::to_string(catalog.size()) + ")");
      }
      for (size_t fi = 0; fi < catalog.size(); ++fi) {
        if (r.fragments[fi].prepared.class_id !=
            catalog[fi].prepared.class_id) {
          return Status::Internal(
              "fragment catalogs diverge across replicas (class mismatch)");
        }
        // Shards own disjoint global-id spaces: plain union.
        for (const auto& [gid, d] : r.dists[fi]) merged[fi].emplace(gid, d);
      }
      sketch_checks += r.sketch_checks;
      sketch_pruned.insert(sketch_pruned.end(), r.sketch_pruned.begin(),
                           r.sketch_pruned.end());
    }
    fragments = std::move(replies[0].value().fragments);
    round1_done = true;
  }

  // ---- Global filter: the exact Algorithm 2 core both engines share ----
  FilterResult filter;
  filter.fragments = std::move(fragments);
  const size_t total_shards = static_cast<size_t>(num_shards());
  internal::FragmentDistFn fragment_dists =
      [&merged, total_shards](size_t fi, double /*sigma*/,
                              std::unordered_map<int, double>* dist,
                              QueryStats* stats) {
        *dist = std::move(merged[fi]);
        // The cover issued one physical range query per (fragment, shard),
        // exactly like the in-process fan-out.
        stats->range_queries += total_shards;
        return Status::OK();
      };
  internal::SketchPruneFn sketch_prune;
  if (sketch) {
    sketch_prune = [&sketch_checks, &sketch_pruned](
                       const std::vector<QueryFragment>& /*fragments*/,
                       std::vector<char>* alive, size_t* alive_count,
                       QueryStats* stats) {
      stats->sketch_checks += sketch_checks;
      for (int gid : sketch_pruned) {
        if (gid >= 0 && gid < static_cast<int>(alive->size()) &&
            (*alive)[gid]) {
          (*alive)[gid] = 0;
          --*alive_count;
          ++stats->sketch_pruned;
        }
      }
    };
  }
  PisOptions filter_options = options_.options;
  filter_options.sigma = sigma;
  const double core_start_ms = trace != nullptr ? trace->ElapsedMs() : 0;
  PIS_RETURN_NOT_OK(internal::RunPisFilterCore(
      pin.db_slots, &pin.tombstones, filter_options, fragment_dists,
      sketch_prune, &filter));
  filter.stats.filter_seconds = filter_timer.Seconds();
  if (trace != nullptr) {
    trace->Record(BuildFilterSpan(filter.stats, core_start_ms,
                                  trace->ElapsedMs() - core_start_ms));
  }

  // ---- Round 2: verify candidates on their owning shard's replica ----
  Timer verify_timer;
  SearchResult result;
  result.candidates = filter.candidates;
  result.stats = filter.stats;
  // Candidates grouped by owning shard; each shard verifies independently
  // (failover is per shard — a replica death mid-round only re-sends that
  // shard's candidate list).
  std::vector<std::vector<int>> by_shard(num_shards());
  for (int gid : filter.candidates) {
    const int s = pin.routing[gid];
    if (s < 0) {
      return Status::Internal("candidate " + std::to_string(gid) +
                              " has no routing entry");
    }
    by_shard[s].push_back(gid);
  }
  std::vector<int> shards_with_work;
  for (int s = 0; s < num_shards(); ++s) {
    if (!by_shard[s].empty()) shards_with_work.push_back(s);
  }
  std::vector<Result<std::vector<int>>> verified(
      shards_with_work.size(), Status::Internal("shard_verify not run"));
  const int fan = std::max(1, options_.options.shard_threads);
  ParallelFor(shards_with_work.size(), fan, [&](size_t i) {
    const int s = shards_with_work[i];
    std::unordered_set<int> tried;
    Status last = Status::Unavailable("no endpoint tried");
    for (;;) {
      int chosen = -1;
      for (int e : shard_endpoints_[s]) {
        if (tried.count(e) != 0) continue;
        if (!Readable(*endpoints_[e])) continue;
        chosen = e;
        break;
      }
      if (chosen < 0) {
        verified[i] = Status::Unavailable(
            "no healthy replica can verify shard " + std::to_string(s) +
            ": " + last.ToString());
        return;
      }
      const double start_ms = trace != nullptr ? trace->ElapsedMs() : 0;
      std::vector<TraceSpan> child_spans;
      Result<std::vector<int>> answers =
          endpoints_[chosen]->backend->ShardVerify(
              query, by_shard[s], sigma, trace != nullptr,
              trace != nullptr ? &child_spans : nullptr);
      if (answers.ok()) {
        NoteTransportSuccess(*endpoints_[chosen]);
        if (trace != nullptr) {
          trace->RecordSince(
              "shard_verify:shard" + std::to_string(s) + "@" +
                  endpoints_[chosen]->backend->name(),
              start_ms, std::move(child_spans));
        }
        verified[i] = std::move(answers);
        return;
      }
      last = answers.status();
      if (IsTransportError(last)) {
        NoteTransportFailure(*endpoints_[chosen]);
        tried.insert(chosen);
        if (metrics_.failovers != nullptr) metrics_.failovers->Inc();
        continue;
      }
      if (last.code() == StatusCode::kNotFound) {
        // The replica is behind on this gid (e.g. restarted from an older
        // checkpoint): fail over rather than answer from stale state.
        tried.insert(chosen);
        if (metrics_.failovers != nullptr) metrics_.failovers->Inc();
        continue;
      }
      verified[i] = last;  // real application error: surface it
      return;
    }
  });
  for (Result<std::vector<int>>& v : verified) {
    if (!v.ok()) return v.status();
    result.answers.insert(result.answers.end(), v.value().begin(),
                          v.value().end());
  }
  std::sort(result.answers.begin(), result.answers.end());
  result.stats.answers = result.answers.size();
  result.stats.verify_seconds = verify_timer.Seconds();
  *stats_out = result.stats;
  return result;
}

BatchSearchResult ClusterEngine::SearchBatch(std::span<const Graph> queries,
                                             int num_threads) {
  const int workers =
      std::min<int>(num_threads > 0 ? num_threads : HardwareThreads(),
                    std::max<size_t>(queries.size(), 1));
  return internal::RunSearchBatch(
      queries.size(), workers,
      [this, queries](size_t i) { return Search(queries[i]); });
}

// ---------------------------------------------------------------------------
// Write path

int ClusterEngine::ReplicateOp(const PendingOp& op, uint64_t* max_epoch) {
  int acks = 0;
  for (int e : shard_endpoints_[op.shard]) {
    Endpoint& ep = *endpoints_[e];
    bool breaker_open = false;
    {
      MutexLock lock(&ep.health_mu);
      breaker_open =
          ep.consecutive_failures >= options_.breaker_threshold &&
          std::chrono::steady_clock::now() < ep.open_until;
    }
    MutexLock lock(&ep.send_mu);
    if (breaker_open || !ep.pending.empty()) {
      // Behind or unreachable: the op joins the ordered catch-up queue so
      // the replica applies the router's writes in commit order.
      ep.pending.push_back(op);
      if (ep.catchup_depth != nullptr) {
        ep.catchup_depth->Set(static_cast<int64_t>(ep.pending.size()));
      }
      continue;
    }
    Status applied = Status::OK();
    uint64_t epoch = 0;
    if (op.is_add) {
      Result<uint64_t> added = ep.backend->ShardAdd(op.gid, op.shard, op.graph);
      applied = added.status();
      if (added.ok()) epoch = added.value();
    } else {
      Result<ShardBackend::RemoveOutcome> removed =
          ep.backend->ShardRemove(op.gid);
      applied = removed.status();
      if (removed.ok()) epoch = removed.value().epoch;
    }
    if (applied.ok()) {
      NoteTransportSuccess(ep);
      *max_epoch = std::max(*max_epoch, epoch);
      ++acks;
    } else if (IsTransportError(applied)) {
      NoteTransportFailure(ep);
      ep.pending.push_back(op);
      if (ep.catchup_depth != nullptr) {
        ep.catchup_depth->Set(static_cast<int64_t>(ep.pending.size()));
      }
    } else {
      // Application rejection: retrying is pointless (it would fail the
      // same way forever and wedge the queue). This replica misses the op.
      PIS_LOG(Error) << ep.backend->name() << " rejected write (gid "
                     << op.gid << "): " << applied.ToString();
    }
  }
  return acks;
}

Result<int> ClusterEngine::AddGraph(const Graph& g) {
  MutexLock writer(&writer_mu_);
  PendingOp op;
  op.is_add = true;
  op.graph = g;
  {
    MutexLock state(&state_mu_);
    // Placement mirrors ShardedFragmentIndex::AddGraph: least-loaded live
    // count, ties to the lowest shard id — so the cluster's routing table
    // replays to exactly the oracle's.
    op.shard = 0;
    for (int s = 1; s < num_shards(); ++s) {
      if (live_per_shard_[s] < live_per_shard_[op.shard]) op.shard = s;
    }
    op.gid = db_slots_;
  }
  uint64_t max_epoch = 0;
  const int acks = ReplicateOp(op, &max_epoch);
  {
    MutexLock state(&state_mu_);
    routing_.push_back(op.shard);
    ++db_slots_;
    ++live_per_shard_[op.shard];
    if (max_epoch > epoch_) epoch_ = max_epoch;
  }
  if (acks == 0) {
    // Ambiguous: a replica may have applied the op before dying, so the
    // slot stays committed (catch-up will converge every replica) but the
    // caller must not assume the write is readable yet.
    return Status::Unavailable(
        "write acknowledged by no replica of shard " +
        std::to_string(op.shard) + " (gid " + std::to_string(op.gid) +
        " committed for catch-up)");
  }
  return op.gid;
}

Status ClusterEngine::RemoveGraph(int gid) {
  MutexLock writer(&writer_mu_);
  PendingOp op;
  op.gid = gid;
  {
    MutexLock state(&state_mu_);
    if (gid < 0 || gid >= db_slots_ || tombstones_.count(gid) != 0 ||
        routing_[gid] < 0) {
      return Status::NotFound("graph " + std::to_string(gid) +
                              " is not live");
    }
    op.shard = routing_[gid];
  }
  uint64_t max_epoch = 0;
  const int acks = ReplicateOp(op, &max_epoch);
  {
    MutexLock state(&state_mu_);
    tombstones_.insert(gid);
    --live_per_shard_[op.shard];
    if (max_epoch > epoch_) epoch_ = max_epoch;
  }
  if (acks == 0) {
    return Status::Unavailable(
        "remove acknowledged by no replica of shard " +
        std::to_string(op.shard) + " (gid " + std::to_string(gid) +
        " committed for catch-up)");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Introspection

ClusterEngine::ClusterStats ClusterEngine::Stats() {
  ClusterStats stats;
  {
    MutexLock lock(&state_mu_);
    stats.epoch = epoch_;
    stats.db_slots = db_slots_;
    stats.num_shards = num_shards();
    for (int s = 0; s < num_shards(); ++s) stats.live += live_per_shard_[s];
  }
  for (std::unique_ptr<Endpoint>& ep : endpoints_) {
    EndpointStatus status;
    status.name = ep->backend->name();
    status.shards = ep->shards;
    {
      MutexLock lock(&ep->health_mu);
      status.consecutive_failures = ep->consecutive_failures;
      status.breaker_open =
          ep->consecutive_failures >= options_.breaker_threshold &&
          std::chrono::steady_clock::now() < ep->open_until;
    }
    {
      MutexLock lock(&ep->send_mu);
      status.pending_ops = ep->pending.size();
    }
    stats.endpoints.push_back(std::move(status));
  }
  return stats;
}

JsonValue ClusterEngine::StatsJson() {
  const ClusterStats stats = Stats();
  JsonValue json = JsonValue::Object();
  json.Set("epoch", stats.epoch);
  json.Set("db_slots", stats.db_slots);
  json.Set("live", stats.live);
  json.Set("num_shards", stats.num_shards);
  JsonValue endpoints = JsonValue::Array();
  for (const EndpointStatus& ep : stats.endpoints) {
    JsonValue entry = JsonValue::Object();
    entry.Set("endpoint", ep.name);
    JsonValue shards = JsonValue::Array();
    for (int s : ep.shards) shards.Push(s);
    entry.Set("shards", std::move(shards));
    entry.Set("breaker_open", ep.breaker_open);
    entry.Set("consecutive_failures", ep.consecutive_failures);
    entry.Set("pending_ops", static_cast<uint64_t>(ep.pending_ops));
    endpoints.Push(std::move(entry));
  }
  json.Set("endpoints", std::move(endpoints));
  return json;
}

}  // namespace pis
