// Umbrella header for the PIS library: substructure search with
// superimposed distance (Yan, Zhu, Han & Yu, ICDE 2006).
//
// Typical usage:
//
//   pis::MoleculeGenerator gen;                     // or ReadSdfFile(...)
//   pis::GraphDatabase db = gen.Generate(10000);
//
//   auto patterns = pis::MineFrequentSubgraphs(Skeletons(db), mine_opts);
//   auto selected = pis::SelectDiscriminativeFeatures(...);
//
//   pis::FragmentIndexOptions idx_opts;             // edge mutation distance
//   auto index = pis::FragmentIndex::Build(db, features, idx_opts);
//
//   pis::PisOptions opts;  opts.sigma = 2;
//   pis::PisEngine engine(&db, &index.value(), opts);
//   auto result = engine.Search(query);             // exact SSSD answers
#ifndef PIS_PIS_H_
#define PIS_PIS_H_

#include "canonical/dfs_code.h"      // IWYU pragma: export
#include "canonical/min_dfs.h"       // IWYU pragma: export
#include "core/naive_search.h"       // IWYU pragma: export
#include "core/options.h"            // IWYU pragma: export
#include "core/partition.h"          // IWYU pragma: export
#include "core/pis.h"                // IWYU pragma: export
#include "core/query_fragments.h"    // IWYU pragma: export
#include "core/selectivity.h"        // IWYU pragma: export
#include "core/sharded_pis.h"        // IWYU pragma: export
#include "core/stats.h"              // IWYU pragma: export
#include "core/topk.h"               // IWYU pragma: export
#include "core/topo_prune.h"         // IWYU pragma: export
#include "core/verifier.h"           // IWYU pragma: export
#include "distance/combined.h"       // IWYU pragma: export
#include "distance/distance_spec.h"  // IWYU pragma: export
#include "distance/linear.h"         // IWYU pragma: export
#include "distance/mutation.h"       // IWYU pragma: export
#include "distance/score_matrix.h"   // IWYU pragma: export
#include "distance/superimposed.h"   // IWYU pragma: export
#include "graph/generator.h"         // IWYU pragma: export
#include "graph/graph.h"             // IWYU pragma: export
#include "graph/io.h"                // IWYU pragma: export
#include "graph/label_map.h"         // IWYU pragma: export
#include "graph/query_sampler.h"     // IWYU pragma: export
#include "graph/sdf_parser.h"        // IWYU pragma: export
#include "graph/statistics.h"        // IWYU pragma: export
#include "index/fragment_enum.h"     // IWYU pragma: export
#include "index/fragment_index.h"    // IWYU pragma: export
#include "index/sharded_index.h"     // IWYU pragma: export
#include "isomorphism/ullmann.h"     // IWYU pragma: export
#include "isomorphism/vf2.h"         // IWYU pragma: export
// The serving layer (server/engine_host.h, server/pis_server.h,
// util/socket.h) is deliberately NOT exported here: it drags POSIX socket
// headers into every consumer, and only the server binaries need it —
// include those headers directly.
#include "mining/feature_selector.h" // IWYU pragma: export
#include "mining/gspan.h"            // IWYU pragma: export
#include "mining/path_features.h"    // IWYU pragma: export
#include "mining/pipeline.h"         // IWYU pragma: export
#include "util/json.h"               // IWYU pragma: export
#include "util/parallel.h"           // IWYU pragma: export

#endif  // PIS_PIS_H_
