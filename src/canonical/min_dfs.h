// Minimum DFS code canonicalization.
//
// The minimum DFS code of a connected graph is a canonical form: two graphs
// are isomorphic (with matching labels when `use_labels`) iff their minimum
// DFS codes are equal. The level-synchronous search here also yields every
// vertex/edge ordering that realizes the minimum code — one per
// automorphism — which the fragment index uses to insert all
// automorphism-induced label sequences (DESIGN.md §3).
#ifndef PIS_CANONICAL_MIN_DFS_H_
#define PIS_CANONICAL_MIN_DFS_H_

#include <vector>

#include "canonical/dfs_code.h"
#include "graph/graph.h"
#include "util/status.h"

namespace pis {

/// One realization of the minimum DFS code: original vertex ids in DFS-index
/// order and original edge ids in code-position order.
struct CanonicalEmbedding {
  std::vector<VertexId> vertex_order;
  std::vector<EdgeId> edge_order;
};

/// The canonical form of a connected graph.
struct CanonicalForm {
  DfsCode code;
  /// All realizations of `code`; size equals the automorphism-group order of
  /// the (labeled or skeleton) graph. Never empty for a valid input.
  std::vector<CanonicalEmbedding> embeddings;

  /// Hash key including the vertex count (distinguishes the single-vertex
  /// graph from the empty one).
  std::string Key() const;
};

struct CanonicalOptions {
  /// Use vertex/edge labels in the code. When false the skeleton is
  /// canonicalized (labels treated as kNoLabel) — this is the
  /// structural-equivalence-class key of the paper (Definition 4).
  bool use_labels = true;
  /// Stop after the first embedding (cheaper when automorphisms are not
  /// needed, e.g. canonicalizing a query fragment or a mining pattern).
  bool first_embedding_only = false;
};

/// Computes the canonical form. Requires a connected graph with at least one
/// vertex; returns InvalidArgument otherwise.
Result<CanonicalForm> MinDfsCode(const Graph& g, const CanonicalOptions& options = {});

/// True iff `code` is the minimum DFS code of the graph it describes.
/// (Used by the gSpan miner to discard duplicate patterns.)
Result<bool> IsMinDfsCode(const DfsCode& code);

}  // namespace pis

#endif  // PIS_CANONICAL_MIN_DFS_H_
