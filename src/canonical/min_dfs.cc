#include "canonical/min_dfs.h"

#include <algorithm>

#include "util/logging.h"

namespace pis {

namespace {

// One partial realization of the (globally minimal) code prefix.
struct State {
  std::vector<VertexId> order;   // dfs index -> original vertex
  std::vector<EdgeId> edge_order;  // code position -> original edge
  std::vector<int> parent;       // dfs index -> parent dfs index (-1 for root)
  std::vector<int> dfs_index;    // original vertex -> dfs index or -1
  std::vector<bool> edge_used;   // original edge -> consumed by the code
};

struct Candidate {
  DfsEdge edge;
  EdgeId graph_edge = kInvalidEdge;
  VertexId new_vertex = kInvalidVertex;  // only for forward edges
  int from_idx = -1;
};

Label L(const Graph& g, VertexId v, bool use_labels) {
  return use_labels ? g.VertexLabel(v) : kNoLabel;
}

Label EL(const Graph& g, EdgeId e, bool use_labels) {
  return use_labels ? g.GetEdge(e).label : kNoLabel;
}

// Rightmost path as dfs indices from rightmost vertex up to the root.
std::vector<int> RightmostPath(const State& s) {
  std::vector<int> path;
  int idx = static_cast<int>(s.order.size()) - 1;
  while (idx >= 0) {
    path.push_back(idx);
    idx = s.parent[idx];
  }
  return path;
}

void CollectCandidates(const Graph& g, bool use_labels, const State& s,
                       std::vector<Candidate>* out) {
  std::vector<int> rmpath = RightmostPath(s);  // [rm, ..., root]
  int rm_idx = rmpath.front();
  VertexId rm_vertex = s.order[rm_idx];
  std::vector<bool> on_rmpath(s.order.size(), false);
  for (int idx : rmpath) on_rmpath[idx] = true;

  // Backward edges: from the rightmost vertex to a rightmost-path ancestor.
  for (EdgeId e : g.IncidentEdges(rm_vertex)) {
    if (s.edge_used[e]) continue;
    VertexId w = g.GetEdge(e).Other(rm_vertex);
    int w_idx = s.dfs_index[w];
    if (w_idx < 0 || !on_rmpath[w_idx]) continue;
    if (w_idx == s.parent[rm_idx]) continue;  // the tree edge itself
    Candidate c;
    c.edge = DfsEdge{rm_idx, w_idx, L(g, rm_vertex, use_labels),
                     EL(g, e, use_labels), L(g, s.order[w_idx], use_labels)};
    c.graph_edge = e;
    c.from_idx = rm_idx;
    out->push_back(c);
  }
  // Forward edges: from any rightmost-path vertex to an unmapped vertex.
  int next_idx = static_cast<int>(s.order.size());
  for (int idx : rmpath) {
    VertexId v = s.order[idx];
    for (EdgeId e : g.IncidentEdges(v)) {
      if (s.edge_used[e]) continue;
      VertexId w = g.GetEdge(e).Other(v);
      if (s.dfs_index[w] >= 0) continue;
      Candidate c;
      c.edge = DfsEdge{idx, next_idx, L(g, v, use_labels), EL(g, e, use_labels),
                       L(g, w, use_labels)};
      c.graph_edge = e;
      c.new_vertex = w;
      c.from_idx = idx;
      out->push_back(c);
    }
  }
}

State ApplyCandidate(const State& s, const Candidate& c) {
  State next = s;
  next.edge_used[c.graph_edge] = true;
  next.edge_order.push_back(c.graph_edge);
  if (c.new_vertex != kInvalidVertex) {
    next.dfs_index[c.new_vertex] = static_cast<int>(next.order.size());
    next.order.push_back(c.new_vertex);
    next.parent.push_back(c.from_idx);
  }
  return next;
}

}  // namespace

std::string CanonicalForm::Key() const {
  int n = 0;
  if (!embeddings.empty()) n = static_cast<int>(embeddings[0].vertex_order.size());
  return "n" + std::to_string(n) + "|" + code.ToKey();
}

Result<CanonicalForm> MinDfsCode(const Graph& g, const CanonicalOptions& options) {
  if (g.NumVertices() == 0) {
    return Status::InvalidArgument("cannot canonicalize the empty graph");
  }
  if (!g.IsConnected()) {
    return Status::InvalidArgument("cannot canonicalize a disconnected graph");
  }
  CanonicalForm form;
  if (g.NumEdges() == 0) {
    // Single vertex (connected, no edges).
    CanonicalEmbedding emb;
    emb.vertex_order = {0};
    form.embeddings.push_back(std::move(emb));
    return form;
  }

  // Seed states: every directed orientation of every edge that attains the
  // minimal initial tuple.
  std::vector<State> states;
  {
    DfsEdge best{};
    bool have_best = false;
    std::vector<std::pair<EdgeId, bool>> realizations;  // (edge, u_is_root)
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      const Edge& edge = g.GetEdge(e);
      for (bool u_root : {true, false}) {
        VertexId a = u_root ? edge.u : edge.v;
        VertexId b = u_root ? edge.v : edge.u;
        DfsEdge t{0, 1, L(g, a, options.use_labels), EL(g, e, options.use_labels),
                  L(g, b, options.use_labels)};
        int cmp = have_best ? CompareDfsEdges(t, best) : -1;
        if (cmp < 0) {
          best = t;
          have_best = true;
          realizations.clear();
          realizations.emplace_back(e, u_root);
        } else if (cmp == 0) {
          realizations.emplace_back(e, u_root);
        }
      }
    }
    form.code.Append(best);
    for (auto [e, u_root] : realizations) {
      const Edge& edge = g.GetEdge(e);
      VertexId a = u_root ? edge.u : edge.v;
      VertexId b = u_root ? edge.v : edge.u;
      State s;
      s.order = {a, b};
      s.edge_order = {e};
      s.parent = {-1, 0};
      s.dfs_index.assign(g.NumVertices(), -1);
      s.dfs_index[a] = 0;
      s.dfs_index[b] = 1;
      s.edge_used.assign(g.NumEdges(), false);
      s.edge_used[e] = true;
      states.push_back(std::move(s));
    }
  }

  // Level-synchronous extension: at each level keep exactly the states that
  // realize the globally minimal next tuple.
  for (int level = 1; level < g.NumEdges(); ++level) {
    DfsEdge best{};
    bool have_best = false;
    std::vector<std::pair<size_t, Candidate>> winners;
    std::vector<Candidate> candidates;
    for (size_t si = 0; si < states.size(); ++si) {
      candidates.clear();
      CollectCandidates(g, options.use_labels, states[si], &candidates);
      for (const Candidate& c : candidates) {
        int cmp = have_best ? CompareDfsEdges(c.edge, best) : -1;
        if (cmp < 0) {
          best = c.edge;
          have_best = true;
          winners.clear();
          winners.emplace_back(si, c);
        } else if (cmp == 0) {
          winners.emplace_back(si, c);
        }
      }
    }
    PIS_CHECK(have_best) << "min DFS code search stalled (internal invariant)";
    form.code.Append(best);
    std::vector<State> next_states;
    next_states.reserve(winners.size());
    for (const auto& [si, c] : winners) {
      next_states.push_back(ApplyCandidate(states[si], c));
    }
    states.swap(next_states);
  }

  size_t keep = options.first_embedding_only ? 1 : states.size();
  for (size_t i = 0; i < keep; ++i) {
    CanonicalEmbedding emb;
    emb.vertex_order = std::move(states[i].order);
    emb.edge_order = std::move(states[i].edge_order);
    form.embeddings.push_back(std::move(emb));
  }
  return form;
}

Result<bool> IsMinDfsCode(const DfsCode& code) {
  if (code.empty()) return Status::InvalidArgument("empty DFS code");
  PIS_ASSIGN_OR_RETURN(Graph g, code.ToGraph());
  CanonicalOptions options;
  options.use_labels = true;
  options.first_embedding_only = true;
  PIS_ASSIGN_OR_RETURN(CanonicalForm form, MinDfsCode(g, options));
  return form.code == code;
}

}  // namespace pis
