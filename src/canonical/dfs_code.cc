#include "canonical/dfs_code.h"

#include <algorithm>
#include <sstream>
#include <tuple>

namespace pis {

namespace {
int CompareLabels(const DfsEdge& a, const DfsEdge& b) {
  auto ta = std::make_tuple(a.from_label, a.edge_label, a.to_label);
  auto tb = std::make_tuple(b.from_label, b.edge_label, b.to_label);
  if (ta < tb) return -1;
  if (tb < ta) return 1;
  return 0;
}
}  // namespace

int CompareDfsEdges(const DfsEdge& a, const DfsEdge& b) {
  bool fa = a.IsForward();
  bool fb = b.IsForward();
  if (fa && fb) {
    if (a.to != b.to) return a.to < b.to ? -1 : 1;
    // Deeper origin (larger from) comes first.
    if (a.from != b.from) return a.from > b.from ? -1 : 1;
    return CompareLabels(a, b);
  }
  if (!fa && !fb) {
    if (a.from != b.from) return a.from < b.from ? -1 : 1;
    if (a.to != b.to) return a.to < b.to ? -1 : 1;
    return CompareLabels(a, b);
  }
  if (!fa && fb) {
    // backward vs forward: backward smaller iff its origin precedes the
    // forward edge's new vertex.
    return a.from < b.to ? -1 : 1;
  }
  // forward vs backward.
  return a.to <= b.from ? -1 : 1;
}

int DfsCode::NumVertices() const {
  int max_index = -1;
  for (const DfsEdge& e : edges_) {
    max_index = std::max({max_index, e.from, e.to});
  }
  return max_index + 1;
}

int DfsCode::Compare(const DfsCode& other) const {
  size_t n = std::min(edges_.size(), other.edges_.size());
  for (size_t i = 0; i < n; ++i) {
    int c = CompareDfsEdges(edges_[i], other.edges_[i]);
    if (c != 0) return c;
  }
  if (edges_.size() != other.edges_.size()) {
    return edges_.size() < other.edges_.size() ? -1 : 1;
  }
  return 0;
}

Result<Graph> DfsCode::ToGraph() const {
  Graph g;
  int n = NumVertices();
  std::vector<Label> vlabels(n, kNoLabel);
  for (const DfsEdge& e : edges_) {
    if (e.from < 0 || e.to < 0) return Status::InvalidArgument("negative DFS index");
    vlabels[e.from] = e.from_label;
    vlabels[e.to] = e.to_label;
  }
  for (int i = 0; i < n; ++i) g.AddVertex(vlabels[i]);
  for (const DfsEdge& e : edges_) {
    auto added = g.AddEdge(e.from, e.to, e.edge_label);
    if (!added.ok()) return added.status();
  }
  if (!g.IsConnected()) {
    return Status::InvalidArgument("DFS code describes a disconnected graph");
  }
  return g;
}

std::string DfsCode::ToKey() const {
  std::ostringstream os;
  for (const DfsEdge& e : edges_) {
    os << '(' << e.from << ',' << e.to << ',' << e.from_label << ','
       << e.edge_label << ',' << e.to_label << ')';
  }
  return os.str();
}

}  // namespace pis
