// gSpan-style DFS codes: sequences of edge 5-tuples with the canonical
// lexicographic order from Yan & Han, "gSpan: Graph-Based Substructure
// Pattern Mining" (ICDM'02) — reference [15] of the paper.
#ifndef PIS_CANONICAL_DFS_CODE_H_
#define PIS_CANONICAL_DFS_CODE_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace pis {

/// One DFS-code entry: edge between DFS discovery indices `from` and `to`.
/// `from < to` is a forward (tree) edge, `from > to` a backward edge.
struct DfsEdge {
  int from = 0;
  int to = 0;
  Label from_label = kNoLabel;
  Label edge_label = kNoLabel;
  Label to_label = kNoLabel;

  bool IsForward() const { return from < to; }

  bool operator==(const DfsEdge& other) const {
    return from == other.from && to == other.to &&
           from_label == other.from_label && edge_label == other.edge_label &&
           to_label == other.to_label;
  }
};

/// Returns -1/0/+1 for a < b / a == b / a > b under the gSpan edge order.
int CompareDfsEdges(const DfsEdge& a, const DfsEdge& b);

/// \brief A DFS code: an ordered edge list describing a connected graph.
class DfsCode {
 public:
  DfsCode() = default;
  explicit DfsCode(std::vector<DfsEdge> edges) : edges_(std::move(edges)) {}

  void Append(const DfsEdge& e) { edges_.push_back(e); }
  void PopBack() { edges_.pop_back(); }
  size_t size() const { return edges_.size(); }
  bool empty() const { return edges_.empty(); }
  const DfsEdge& operator[](size_t i) const { return edges_[i]; }
  const std::vector<DfsEdge>& edges() const { return edges_; }

  /// Number of distinct DFS indices referenced (vertex count of the coded
  /// graph); 0 for an empty code.
  int NumVertices() const;

  /// Lexicographic comparison with the gSpan per-edge order; shorter prefix
  /// compares smaller when equal so codes form a prefix-ordered search tree.
  int Compare(const DfsCode& other) const;
  bool operator==(const DfsCode& other) const { return edges_ == other.edges_; }
  bool operator<(const DfsCode& other) const { return Compare(other) < 0; }

  /// Reconstructs the coded graph: vertex ids equal DFS indices.
  Result<Graph> ToGraph() const;

  /// Compact serialization usable as a hash key, e.g.
  /// "(0,1,0,2,0)(1,2,0,1,0)".
  std::string ToKey() const;

  /// Human-readable rendering (same as ToKey currently).
  std::string ToString() const { return ToKey(); }

 private:
  std::vector<DfsEdge> edges_;
};

}  // namespace pis

#endif  // PIS_CANONICAL_DFS_CODE_H_
