// Ullmann's subgraph isomorphism algorithm (J. ACM 1976) with candidate
// matrix refinement. Kept as an independent oracle to cross-check VF2 and
// as a baseline in the micro-benchmarks.
#ifndef PIS_ISOMORPHISM_ULLMANN_H_
#define PIS_ISOMORPHISM_ULLMANN_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "isomorphism/matcher.h"

namespace pis {

/// \brief Ullmann matcher over bit-packed candidate matrices.
class UllmannMatcher {
 public:
  UllmannMatcher(const Graph& pattern, const Graph& target,
                 const MatchOptions& options = {});

  /// True if at least one embedding exists; fills `mapping` if non-null.
  bool FindFirst(std::vector<VertexId>* mapping = nullptr);

  /// Invokes `cb` for every embedding; returns the number visited.
  size_t EnumerateAll(const EmbeddingCallback& cb);

 private:
  using BitRow = std::vector<uint64_t>;

  bool Refine(std::vector<BitRow>* cand) const;
  bool Recurse(int row, std::vector<BitRow>& cand, const EmbeddingCallback& cb,
               size_t* count);

  static bool TestBit(const BitRow& row, int i) {
    return (row[i >> 6] >> (i & 63)) & 1;
  }
  static void ClearBit(BitRow* row, int i) {
    (*row)[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  const Graph& pattern_;
  const Graph& target_;
  MatchOptions options_;
  int words_ = 0;
  std::vector<VertexId> assignment_;  // pattern vertex -> target vertex
  std::vector<bool> target_used_;
};

/// Convenience: containment test via Ullmann.
bool IsSubgraphUllmann(const Graph& pattern, const Graph& target,
                       const MatchOptions& options = {});

}  // namespace pis

#endif  // PIS_ISOMORPHISM_ULLMANN_H_
