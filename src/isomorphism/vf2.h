// VF2-style subgraph isomorphism (Cordella et al.), adapted to undirected
// labeled graphs with non-induced (monomorphism) semantics by default.
#ifndef PIS_ISOMORPHISM_VF2_H_
#define PIS_ISOMORPHISM_VF2_H_

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "isomorphism/matcher.h"

namespace pis {

/// \brief Enumerates embeddings of a pattern graph in a target graph.
///
/// The matcher orders pattern vertices once (connectivity-first, high degree
/// first) and then backtracks over candidate target vertices with degree and
/// adjacency feasibility checks. Instances are single-shot cheap objects;
/// construct per (pattern, target) pair.
class Vf2Matcher {
 public:
  Vf2Matcher(const Graph& pattern, const Graph& target,
             const MatchOptions& options = {});

  /// True if at least one embedding exists; fills `mapping` (pattern vertex
  /// -> target vertex) if non-null.
  bool FindFirst(std::vector<VertexId>* mapping = nullptr);

  /// Invokes `cb` for every embedding until exhaustion or the callback
  /// returns false. Returns the number of embeddings visited.
  size_t EnumerateAll(const EmbeddingCallback& cb);

 private:
  bool Feasible(VertexId pv, VertexId tv) const;
  bool Recurse(int depth, const EmbeddingCallback& cb, size_t* count);

  const Graph& pattern_;
  const Graph& target_;
  MatchOptions options_;
  std::vector<VertexId> order_;        // pattern matching order
  std::vector<int> order_parent_;      // index into order_ of a mapped neighbor, or -1
  std::vector<VertexId> core_;         // pattern vertex -> target vertex
  std::vector<bool> target_used_;      // target vertex already mapped
};

/// True iff `pattern` is subgraph-isomorphic to `target` under `options`
/// (the paper's `⊆` for structure-only, `⊑` with labels).
bool IsSubgraph(const Graph& pattern, const Graph& target,
                const MatchOptions& options = {});

/// True iff the two graphs are isomorphic under `options` (same vertex and
/// edge counts plus mutual embedding feasibility via induced matching).
bool AreIsomorphic(const Graph& a, const Graph& b, const MatchOptions& options = {});

/// Enumerates all automorphisms of `g` (structure-only when
/// `options.match_*_labels` are false). The identity is always included.
std::vector<std::vector<VertexId>> EnumerateAutomorphisms(
    const Graph& g, const MatchOptions& options = {});

}  // namespace pis

#endif  // PIS_ISOMORPHISM_VF2_H_
