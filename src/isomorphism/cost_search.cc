#include "isomorphism/cost_search.h"

#include <algorithm>

#include "isomorphism/vf2.h"

namespace pis {

namespace {

// Backtracking search sharing VF2's connectivity-first order, extended with
// cost accounting. `best` shrinks as better embeddings are found, so the
// search degenerates to plain VF2 when the model is all-zero.
class CostSearcher {
 public:
  CostSearcher(const Graph& query, const Graph& target,
               const SuperimposeCostModel& model, double bound)
      : query_(query), target_(target), model_(model), best_(bound) {
    BuildOrder();
    core_.assign(query_.NumVertices(), kInvalidVertex);
    used_.assign(target_.NumVertices(), false);
  }

  CostSearchResult Run() {
    CostSearchResult result;
    if (query_.NumVertices() == 0) {
      result.distance = 0;
      return result;
    }
    if (query_.NumVertices() > target_.NumVertices() ||
        query_.NumEdges() > target_.NumEdges()) {
      return result;
    }
    Recurse(0, 0.0);
    result.distance = found_ ? best_ : kInfiniteDistance;
    result.mapping = std::move(best_mapping_);
    result.nodes_expanded = nodes_;
    return result;
  }

 private:
  void BuildOrder() {
    int n = query_.NumVertices();
    order_.reserve(n);
    std::vector<bool> placed(n, false);
    std::vector<int> placed_neighbors(n, 0);
    for (int step = 0; step < n; ++step) {
      VertexId best = kInvalidVertex;
      for (VertexId v = 0; v < n; ++v) {
        if (placed[v]) continue;
        if (best == kInvalidVertex ||
            placed_neighbors[v] > placed_neighbors[best] ||
            (placed_neighbors[v] == placed_neighbors[best] &&
             query_.Degree(v) > query_.Degree(best))) {
          best = v;
        }
      }
      placed[best] = true;
      order_.push_back(best);
      for (EdgeId e : query_.IncidentEdges(best)) {
        placed_neighbors[query_.GetEdge(e).Other(best)]++;
      }
    }
    order_parent_.assign(n, -1);
    std::vector<int> pos(n, -1);
    for (size_t i = 0; i < order_.size(); ++i) pos[order_[i]] = static_cast<int>(i);
    for (size_t i = 0; i < order_.size(); ++i) {
      for (EdgeId e : query_.IncidentEdges(order_[i])) {
        VertexId nb = query_.GetEdge(e).Other(order_[i]);
        if (pos[nb] < static_cast<int>(i)) {
          order_parent_[i] = pos[nb];
          break;
        }
      }
    }
  }

  // Cost of extending the mapping with qv -> tv, or infinity if infeasible.
  double ExtensionCost(VertexId qv, VertexId tv) const {
    if (used_[tv] || target_.Degree(tv) < query_.Degree(qv)) {
      return kInfiniteDistance;
    }
    double cost = model_.VertexCost(query_, qv, target_, tv);
    for (EdgeId qe : query_.IncidentEdges(qv)) {
      VertexId nb = query_.GetEdge(qe).Other(qv);
      VertexId mapped = core_[nb];
      if (mapped == kInvalidVertex) continue;
      EdgeId te = target_.FindEdge(tv, mapped);
      if (te == kInvalidEdge) return kInfiniteDistance;
      cost += model_.EdgeCost(query_, qe, target_, te);
    }
    return cost;
  }

  void TryExtend(int depth, double cost, VertexId qv, VertexId tv) {
    double delta = ExtensionCost(qv, tv);
    if (delta == kInfiniteDistance) return;
    double next_cost = cost + delta;
    // Prune strictly above the bound; equality is admissible so σ-exact
    // answers are kept. When a full embedding at `best` already exists,
    // further equal-cost embeddings are redundant, hence the found_ check.
    if (next_cost > best_ || (found_ && next_cost >= best_)) return;
    core_[qv] = tv;
    used_[tv] = true;
    Recurse(depth + 1, next_cost);
    core_[qv] = kInvalidVertex;
    used_[tv] = false;
  }

  void Recurse(int depth, double cost) {
    ++nodes_;
    if (depth == static_cast<int>(order_.size())) {
      best_ = cost;
      found_ = true;
      best_mapping_ = core_;
      return;
    }
    VertexId qv = order_[depth];
    if (order_parent_[depth] >= 0) {
      VertexId anchor = core_[order_[order_parent_[depth]]];
      for (EdgeId e : target_.IncidentEdges(anchor)) {
        TryExtend(depth, cost, qv, target_.GetEdge(e).Other(anchor));
      }
    } else {
      for (VertexId tv = 0; tv < target_.NumVertices(); ++tv) {
        TryExtend(depth, cost, qv, tv);
      }
    }
  }

  const Graph& query_;
  const Graph& target_;
  const SuperimposeCostModel& model_;
  double best_;
  bool found_ = false;
  std::vector<VertexId> order_;
  std::vector<int> order_parent_;
  std::vector<VertexId> core_;
  std::vector<bool> used_;
  std::vector<VertexId> best_mapping_;
  size_t nodes_ = 0;
};

}  // namespace

CostSearchResult MinCostEmbedding(const Graph& query, const Graph& target,
                                  const SuperimposeCostModel& model, double bound) {
  CostSearcher searcher(query, target, model, bound);
  return searcher.Run();
}

bool ContainsStructure(const Graph& query, const Graph& target) {
  return IsSubgraph(query, target, MatchOptions{});
}

}  // namespace pis
