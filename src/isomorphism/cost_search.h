// Cost-bounded superposition search: a VF2-style backtracker whose partial
// state carries the accumulated superimposed-distance cost and prunes at a
// bound. Computes the *minimum superimposed distance* (Definition 1 of the
// paper) without materializing every embedding.
#ifndef PIS_ISOMORPHISM_COST_SEARCH_H_
#define PIS_ISOMORPHISM_COST_SEARCH_H_

#include <limits>
#include <vector>

#include "graph/graph.h"

namespace pis {

inline constexpr double kInfiniteDistance = std::numeric_limits<double>::infinity();

/// Scores one superimposed vertex pair / edge pair. Implemented by the
/// mutation and linear distance models in src/distance.
class SuperimposeCostModel {
 public:
  virtual ~SuperimposeCostModel() = default;

  /// Cost of mapping query vertex `qv` onto target vertex `gv`.
  virtual double VertexCost(const Graph& q, VertexId qv, const Graph& g,
                            VertexId gv) const = 0;
  /// Cost of mapping query edge `qe` onto target edge `ge`.
  virtual double EdgeCost(const Graph& q, EdgeId qe, const Graph& g,
                          EdgeId ge) const = 0;
};

struct CostSearchResult {
  /// Minimum superimposed distance over all structure embeddings of the
  /// query in the target that stay within `bound`; kInfiniteDistance when no
  /// embedding fits the bound (including the no-embedding case).
  double distance = kInfiniteDistance;
  /// A realizing mapping (query vertex -> target vertex); empty when
  /// distance is infinite.
  std::vector<VertexId> mapping;
  /// Search-tree nodes expanded (for the ablation benchmarks).
  size_t nodes_expanded = 0;
};

/// Finds min_{Q' ⊆ G, Q' ≅ Q} cost(Q, Q') with branch-and-bound pruning at
/// `bound` (inclusive: embeddings of cost exactly `bound` are reported).
/// Pass kInfiniteDistance for an exact unbounded minimum.
CostSearchResult MinCostEmbedding(const Graph& query, const Graph& target,
                                  const SuperimposeCostModel& model, double bound);

/// True iff the target contains the query structure at all (bound-free
/// containment; used by the topoPrune baseline's verifier).
bool ContainsStructure(const Graph& query, const Graph& target);

}  // namespace pis

#endif  // PIS_ISOMORPHISM_COST_SEARCH_H_
