#include "isomorphism/ullmann.h"

#include <algorithm>

namespace pis {

UllmannMatcher::UllmannMatcher(const Graph& pattern, const Graph& target,
                               const MatchOptions& options)
    : pattern_(pattern), target_(target), options_(options) {
  words_ = (target_.NumVertices() + 63) / 64;
  assignment_.assign(pattern_.NumVertices(), kInvalidVertex);
  target_used_.assign(target_.NumVertices(), false);
}

// Ullmann refinement: candidate (p, t) survives only if every pattern
// neighbor of p still has at least one candidate among target neighbors of
// t. Iterates to a fixed point; returns false if some row becomes empty.
bool UllmannMatcher::Refine(std::vector<BitRow>* cand) const {
  bool changed = true;
  while (changed) {
    changed = false;
    for (VertexId p = 0; p < pattern_.NumVertices(); ++p) {
      for (VertexId t = 0; t < target_.NumVertices(); ++t) {
        if (!TestBit((*cand)[p], t)) continue;
        bool ok = true;
        for (EdgeId pe : pattern_.IncidentEdges(p)) {
          VertexId pn = pattern_.GetEdge(pe).Other(p);
          bool neighbor_ok = false;
          for (EdgeId te : target_.IncidentEdges(t)) {
            VertexId tn = target_.GetEdge(te).Other(t);
            if (!TestBit((*cand)[pn], tn)) continue;
            if (options_.match_edge_labels &&
                target_.GetEdge(te).label != pattern_.GetEdge(pe).label) {
              continue;
            }
            neighbor_ok = true;
            break;
          }
          if (!neighbor_ok) {
            ok = false;
            break;
          }
        }
        if (!ok) {
          ClearBit(&(*cand)[p], t);
          changed = true;
        }
      }
      bool empty = true;
      for (uint64_t w : (*cand)[p]) {
        if (w != 0) {
          empty = false;
          break;
        }
      }
      if (empty) return false;
    }
  }
  return true;
}

bool UllmannMatcher::Recurse(int row, std::vector<BitRow>& cand,
                             const EmbeddingCallback& cb, size_t* count) {
  if (row == pattern_.NumVertices()) {
    ++*count;
    return cb(assignment_);
  }
  for (VertexId t = 0; t < target_.NumVertices(); ++t) {
    if (target_used_[t] || !TestBit(cand[row], t)) continue;
    // Check adjacency against rows already assigned (cheap incremental
    // verification; full refinement per node is the classic variant but is
    // slower in practice on sparse molecule graphs).
    bool ok = true;
    for (EdgeId pe : pattern_.IncidentEdges(row)) {
      VertexId pn = pattern_.GetEdge(pe).Other(row);
      if (pn >= row || assignment_[pn] == kInvalidVertex) continue;
      EdgeId te = target_.FindEdge(t, assignment_[pn]);
      if (te == kInvalidEdge) {
        ok = false;
        break;
      }
      if (options_.match_edge_labels &&
          target_.GetEdge(te).label != pattern_.GetEdge(pe).label) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    if (options_.induced) {
      for (EdgeId te : target_.IncidentEdges(t)) {
        VertexId tn = target_.GetEdge(te).Other(t);
        if (!target_used_[tn]) continue;
        VertexId owner = kInvalidVertex;
        for (VertexId p = 0; p < row; ++p) {
          if (assignment_[p] == tn) {
            owner = p;
            break;
          }
        }
        if (owner != kInvalidVertex && !pattern_.HasEdge(row, owner)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
    }
    assignment_[row] = t;
    target_used_[t] = true;
    bool keep_going = Recurse(row + 1, cand, cb, count);
    assignment_[row] = kInvalidVertex;
    target_used_[t] = false;
    if (!keep_going) return false;
  }
  return true;
}

size_t UllmannMatcher::EnumerateAll(const EmbeddingCallback& cb) {
  if (pattern_.NumVertices() > target_.NumVertices() ||
      pattern_.NumEdges() > target_.NumEdges()) {
    return 0;
  }
  if (pattern_.NumVertices() == 0) {
    std::vector<VertexId> empty;
    cb(empty);
    return 1;
  }
  // Initial candidate matrix from degree and label compatibility.
  std::vector<BitRow> cand(pattern_.NumVertices(), BitRow(words_, 0));
  for (VertexId p = 0; p < pattern_.NumVertices(); ++p) {
    for (VertexId t = 0; t < target_.NumVertices(); ++t) {
      if (target_.Degree(t) < pattern_.Degree(p)) continue;
      if (options_.match_vertex_labels &&
          pattern_.VertexLabel(p) != target_.VertexLabel(t)) {
        continue;
      }
      cand[p][t >> 6] |= uint64_t{1} << (t & 63);
    }
  }
  if (!Refine(&cand)) return 0;
  size_t count = 0;
  Recurse(0, cand, cb, &count);
  return count;
}

bool UllmannMatcher::FindFirst(std::vector<VertexId>* mapping) {
  bool found = false;
  EnumerateAll([&](const std::vector<VertexId>& m) {
    found = true;
    if (mapping != nullptr) *mapping = m;
    return false;
  });
  return found;
}

bool IsSubgraphUllmann(const Graph& pattern, const Graph& target,
                       const MatchOptions& options) {
  UllmannMatcher matcher(pattern, target, options);
  return matcher.FindFirst();
}

}  // namespace pis
