// Shared types for subgraph isomorphism matchers.
#ifndef PIS_ISOMORPHISM_MATCHER_H_
#define PIS_ISOMORPHISM_MATCHER_H_

#include <functional>
#include <vector>

#include "graph/graph.h"

namespace pis {

/// Controls what a match must preserve. The paper's subgraph isomorphism
/// "only considers the structure of a graph" (§2) — that is the default
/// here; label-preserving matching implements the `⊑` relation.
struct MatchOptions {
  bool match_vertex_labels = false;
  bool match_edge_labels = false;
  /// Require an induced match: target non-edges between mapped vertices are
  /// rejected. The paper uses non-induced (monomorphism) semantics.
  bool induced = false;
};

/// Receives one embedding: `mapping[qv]` is the target vertex for pattern
/// vertex `qv`. Return false to stop enumeration.
using EmbeddingCallback = std::function<bool(const std::vector<VertexId>&)>;

}  // namespace pis

#endif  // PIS_ISOMORPHISM_MATCHER_H_
