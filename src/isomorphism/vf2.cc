#include "isomorphism/vf2.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace pis {

namespace {

// Connectivity-first matching order: start at the highest-degree vertex,
// then repeatedly pick the unvisited vertex with the most already-ordered
// neighbors (ties broken by degree). Keeps the partial pattern connected so
// adjacency checks prune early.
std::vector<VertexId> BuildOrder(const Graph& pattern) {
  int n = pattern.NumVertices();
  std::vector<VertexId> order;
  order.reserve(n);
  std::vector<bool> placed(n, false);
  std::vector<int> placed_neighbors(n, 0);
  for (int step = 0; step < n; ++step) {
    VertexId best = kInvalidVertex;
    for (VertexId v = 0; v < n; ++v) {
      if (placed[v]) continue;
      if (best == kInvalidVertex ||
          placed_neighbors[v] > placed_neighbors[best] ||
          (placed_neighbors[v] == placed_neighbors[best] &&
           pattern.Degree(v) > pattern.Degree(best))) {
        best = v;
      }
    }
    placed[best] = true;
    order.push_back(best);
    for (EdgeId e : pattern.IncidentEdges(best)) {
      placed_neighbors[pattern.GetEdge(e).Other(best)]++;
    }
  }
  return order;
}

}  // namespace

Vf2Matcher::Vf2Matcher(const Graph& pattern, const Graph& target,
                       const MatchOptions& options)
    : pattern_(pattern), target_(target), options_(options) {
  order_ = BuildOrder(pattern_);
  order_parent_.assign(order_.size(), -1);
  std::vector<int> pos(pattern_.NumVertices(), -1);
  for (size_t i = 0; i < order_.size(); ++i) pos[order_[i]] = static_cast<int>(i);
  for (size_t i = 0; i < order_.size(); ++i) {
    for (EdgeId e : pattern_.IncidentEdges(order_[i])) {
      VertexId nb = pattern_.GetEdge(e).Other(order_[i]);
      if (pos[nb] < static_cast<int>(i)) {
        order_parent_[i] = pos[nb];
        break;
      }
    }
  }
  core_.assign(pattern_.NumVertices(), kInvalidVertex);
  target_used_.assign(target_.NumVertices(), false);
}

bool Vf2Matcher::Feasible(VertexId pv, VertexId tv) const {
  if (target_used_[tv]) return false;
  if (options_.match_vertex_labels &&
      pattern_.VertexLabel(pv) != target_.VertexLabel(tv)) {
    return false;
  }
  if (target_.Degree(tv) < pattern_.Degree(pv)) return false;
  // Every mapped pattern neighbor must be a target neighbor (with matching
  // edge label if requested).
  for (EdgeId e : pattern_.IncidentEdges(pv)) {
    VertexId nb = pattern_.GetEdge(e).Other(pv);
    VertexId mapped = core_[nb];
    if (mapped == kInvalidVertex) continue;
    EdgeId te = target_.FindEdge(tv, mapped);
    if (te == kInvalidEdge) return false;
    if (options_.match_edge_labels &&
        target_.GetEdge(te).label != pattern_.GetEdge(e).label) {
      return false;
    }
  }
  if (options_.induced) {
    // Target edges between mapped vertices must exist in the pattern.
    for (EdgeId e : target_.IncidentEdges(tv)) {
      VertexId nb = target_.GetEdge(e).Other(tv);
      if (!target_used_[nb]) continue;
      // Find which pattern vertex maps to nb.
      bool found = false;
      for (EdgeId pe : pattern_.IncidentEdges(pv)) {
        VertexId pnb = pattern_.GetEdge(pe).Other(pv);
        if (core_[pnb] == nb) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
  }
  return true;
}

bool Vf2Matcher::Recurse(int depth, const EmbeddingCallback& cb, size_t* count) {
  if (depth == static_cast<int>(order_.size())) {
    ++*count;
    return cb(core_);
  }
  VertexId pv = order_[depth];
  // Candidates: neighbors of the mapped parent when one exists (connected
  // extension), otherwise every target vertex.
  if (order_parent_[depth] >= 0) {
    VertexId anchor = core_[order_[order_parent_[depth]]];
    for (EdgeId e : target_.IncidentEdges(anchor)) {
      VertexId tv = target_.GetEdge(e).Other(anchor);
      if (!Feasible(pv, tv)) continue;
      core_[pv] = tv;
      target_used_[tv] = true;
      bool keep_going = Recurse(depth + 1, cb, count);
      core_[pv] = kInvalidVertex;
      target_used_[tv] = false;
      if (!keep_going) return false;
    }
  } else {
    for (VertexId tv = 0; tv < target_.NumVertices(); ++tv) {
      if (!Feasible(pv, tv)) continue;
      core_[pv] = tv;
      target_used_[tv] = true;
      bool keep_going = Recurse(depth + 1, cb, count);
      core_[pv] = kInvalidVertex;
      target_used_[tv] = false;
      if (!keep_going) return false;
    }
  }
  return true;
}

bool Vf2Matcher::FindFirst(std::vector<VertexId>* mapping) {
  if (pattern_.NumVertices() > target_.NumVertices() ||
      pattern_.NumEdges() > target_.NumEdges()) {
    return false;
  }
  if (pattern_.NumVertices() == 0) {
    if (mapping != nullptr) mapping->clear();
    return true;
  }
  bool found = false;
  size_t count = 0;
  Recurse(0, [&](const std::vector<VertexId>& m) {
    found = true;
    if (mapping != nullptr) *mapping = m;
    return false;  // stop after the first embedding
  }, &count);
  return found;
}

size_t Vf2Matcher::EnumerateAll(const EmbeddingCallback& cb) {
  if (pattern_.NumVertices() > target_.NumVertices() ||
      pattern_.NumEdges() > target_.NumEdges()) {
    return 0;
  }
  if (pattern_.NumVertices() == 0) {
    std::vector<VertexId> empty;
    cb(empty);
    return 1;
  }
  size_t count = 0;
  Recurse(0, cb, &count);
  return count;
}

bool IsSubgraph(const Graph& pattern, const Graph& target,
                const MatchOptions& options) {
  Vf2Matcher matcher(pattern, target, options);
  return matcher.FindFirst();
}

bool AreIsomorphic(const Graph& a, const Graph& b, const MatchOptions& options) {
  if (a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges()) {
    return false;
  }
  MatchOptions iso = options;
  iso.induced = true;
  return IsSubgraph(a, b, iso);
}

std::vector<std::vector<VertexId>> EnumerateAutomorphisms(
    const Graph& g, const MatchOptions& options) {
  MatchOptions iso = options;
  iso.induced = true;
  std::vector<std::vector<VertexId>> result;
  Vf2Matcher matcher(g, g, iso);
  matcher.EnumerateAll([&](const std::vector<VertexId>& m) {
    result.push_back(m);
    return true;
  });
  return result;
}

}  // namespace pis
