#include "graph/sdf_parser.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/string_util.h"

namespace pis {

namespace {

// Fixed-column integer field of an MDL counts/bond line, tolerant of the
// free-format variants produced by some exporters.
Result<int> FieldInt(const std::string& line, size_t pos, size_t width) {
  if (pos >= line.size()) return Status::ParseError("short line: " + line);
  std::string field = Trim(line.substr(pos, width));
  if (field.empty()) return Status::ParseError("empty field in: " + line);
  try {
    return std::stoi(field);
  } catch (const std::exception&) {
    return Status::ParseError("bad integer field '" + field + "'");
  }
}

const char* BondName(int code) {
  switch (code) {
    case 1:
      return "single";
    case 2:
      return "double";
    case 3:
      return "triple";
    case 4:
      return "aromatic";
    default:
      return nullptr;
  }
}

}  // namespace

Result<Graph> ParseMolBlock(const std::string& block, ChemicalVocabulary* vocab) {
  std::istringstream in(block);
  std::string line;
  // Header: 3 lines (name, program, comment).
  for (int i = 0; i < 3; ++i) {
    if (!std::getline(in, line)) return Status::ParseError("truncated MOL header");
  }
  if (!std::getline(in, line)) return Status::ParseError("missing counts line");
  PIS_ASSIGN_OR_RETURN(int num_atoms, FieldInt(line, 0, 3));
  PIS_ASSIGN_OR_RETURN(int num_bonds, FieldInt(line, 3, 3));
  if (num_atoms < 0 || num_bonds < 0) {
    return Status::ParseError("negative counts");
  }
  Graph g;
  for (int i = 0; i < num_atoms; ++i) {
    if (!std::getline(in, line)) return Status::ParseError("truncated atom block");
    // Atom line: x y z (10 chars each) then symbol (3 chars at col 31).
    std::string symbol;
    if (line.size() >= 34) {
      symbol = Trim(line.substr(31, 3));
    } else {
      // Fall back to whitespace tokenization: 4th token is the symbol.
      std::vector<std::string> tok = SplitWhitespace(line);
      if (tok.size() < 4) return Status::ParseError("bad atom line: " + line);
      symbol = tok[3];
    }
    if (symbol.empty()) return Status::ParseError("empty atom symbol");
    g.AddVertex(vocab->atoms.GetOrAdd(symbol));
  }
  for (int i = 0; i < num_bonds; ++i) {
    if (!std::getline(in, line)) return Status::ParseError("truncated bond block");
    PIS_ASSIGN_OR_RETURN(int a, FieldInt(line, 0, 3));
    PIS_ASSIGN_OR_RETURN(int b, FieldInt(line, 3, 3));
    PIS_ASSIGN_OR_RETURN(int type, FieldInt(line, 6, 3));
    const char* bond = BondName(type);
    if (bond == nullptr) {
      return Status::ParseError("unsupported bond type " + std::to_string(type));
    }
    if (a < 1 || b < 1 || a > num_atoms || b > num_atoms) {
      return Status::ParseError("bond endpoint out of range");
    }
    auto added = g.AddEdge(a - 1, b - 1, vocab->bonds.GetOrAdd(bond));
    if (!added.ok()) return added.status();
  }
  return g;
}

Result<GraphDatabase> ReadSdf(std::istream& in, ChemicalVocabulary* vocab,
                              const SdfOptions& options) {
  GraphDatabase db;
  std::string line;
  std::string block;
  bool in_properties = false;
  auto flush = [&]() -> Status {
    if (Trim(block).empty()) {
      block.clear();
      return Status::OK();
    }
    Result<Graph> g = ParseMolBlock(block, vocab);
    block.clear();
    if (!g.ok()) {
      if (options.skip_malformed) return Status::OK();
      return g.status();
    }
    if (options.require_connected && !g.value().IsConnected()) {
      return Status::OK();
    }
    db.Add(g.MoveValue());
    return Status::OK();
  };
  while (std::getline(in, line)) {
    if (StartsWith(line, "$$$$")) {
      PIS_RETURN_NOT_OK(flush());
      in_properties = false;
      if (options.max_molecules > 0 && db.size() >= options.max_molecules) {
        return db;
      }
      continue;
    }
    if (StartsWith(line, "M  END")) {
      in_properties = true;  // ignore data items until $$$$
      continue;
    }
    if (!in_properties) {
      block += line;
      block += '\n';
    }
  }
  PIS_RETURN_NOT_OK(flush());
  return db;
}

Result<GraphDatabase> ReadSdfFile(const std::string& path,
                                  ChemicalVocabulary* vocab,
                                  const SdfOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ReadSdf(in, vocab, options);
}

}  // namespace pis
