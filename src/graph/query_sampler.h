// Samples query workloads from a graph database, following the paper's
// protocol: "query graphs are directly sampled from the database and are
// grouped together according to their size" (#edges).
#ifndef PIS_GRAPH_QUERY_SAMPLER_H_
#define PIS_GRAPH_QUERY_SAMPLER_H_

#include <vector>

#include "graph/graph.h"
#include "util/random.h"
#include "util/status.h"

namespace pis {

struct QuerySamplerOptions {
  uint64_t seed = 7;
  /// Strip vertex labels from sampled queries; the paper ignores vertex
  /// labels "to make the problem hard".
  bool strip_vertex_labels = true;
};

/// \brief Draws connected m-edge query graphs from database graphs.
class QuerySampler {
 public:
  QuerySampler(const GraphDatabase* db, const QuerySamplerOptions& options = {});

  /// Samples one connected query with exactly `num_edges` edges, grown by a
  /// random edge-expansion walk inside a random database graph (retrying
  /// other graphs if the host is too small). Fails only if no database
  /// graph has `num_edges` edges.
  Result<Graph> Sample(int num_edges);

  /// Samples a whole query set Q_m.
  Result<std::vector<Graph>> SampleSet(int num_edges, int count);

 private:
  const GraphDatabase* db_;
  QuerySamplerOptions options_;
  Rng rng_;
};

/// Grows a uniform connected edge subset of `g` with `num_edges` edges via
/// random incremental expansion; returns the extracted subgraph. Fails if
/// the graph has fewer than `num_edges` edges.
Result<Graph> SampleConnectedSubgraph(const Graph& g, int num_edges, Rng* rng);

}  // namespace pis

#endif  // PIS_GRAPH_QUERY_SAMPLER_H_
