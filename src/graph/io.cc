#include "graph/io.h"

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace pis {

namespace {

// Exception-free numeric parsing: std::stoi throws on junk, which fuzzed
// inputs reach trivially.
bool ParseInt(const std::string& s, int* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  long v = std::strtol(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE) return false;
  if (v < INT32_MIN || v > INT32_MAX) return false;
  *out = static_cast<int>(v);
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || errno == ERANGE) return false;
  *out = v;
  return true;
}

Status ParseInto(std::istream& in, GraphDatabase* db) {
  std::string line;
  Graph current;
  bool have_graph = false;
  int line_no = 0;
  auto flush = [&]() {
    if (have_graph) {
      db->Add(std::move(current));
      current = Graph();
    }
  };
  while (std::getline(in, line)) {
    ++line_no;
    std::vector<std::string> tok = SplitWhitespace(line);
    if (tok.empty()) continue;
    const std::string where = " at line " + std::to_string(line_no);
    if (tok[0] == "t") {
      flush();
      have_graph = true;
    } else if (tok[0] == "v") {
      if (!have_graph) return Status::ParseError("'v' before 't'" + where);
      if (tok.size() < 3) return Status::ParseError("'v' needs id and label" + where);
      int id = 0;
      int label = 0;
      double weight = 0.0;
      if (!ParseInt(tok[1], &id) || !ParseInt(tok[2], &label) ||
          (tok.size() >= 4 && !ParseDouble(tok[3], &weight))) {
        return Status::ParseError("bad 'v' fields" + where);
      }
      VertexId got = current.AddVertex(label, weight);
      if (got != id) {
        return Status::ParseError("vertex ids must be dense and ordered" + where);
      }
    } else if (tok[0] == "e") {
      if (!have_graph) return Status::ParseError("'e' before 't'" + where);
      if (tok.size() < 4) {
        return Status::ParseError("'e' needs endpoints and label" + where);
      }
      int u = 0;
      int v = 0;
      int label = 0;
      double weight = 0.0;
      if (!ParseInt(tok[1], &u) || !ParseInt(tok[2], &v) ||
          !ParseInt(tok[3], &label) ||
          (tok.size() >= 5 && !ParseDouble(tok[4], &weight))) {
        return Status::ParseError("bad 'e' fields" + where);
      }
      auto added = current.AddEdge(u, v, label, weight);
      if (!added.ok()) {
        return Status::ParseError(added.status().message() + where);
      }
    } else if (tok[0][0] == '#') {
      continue;  // comment
    } else {
      return Status::ParseError("unrecognized line '" + tok[0] + "'" + where);
    }
  }
  flush();
  return Status::OK();
}

}  // namespace

Result<GraphDatabase> ReadGraphDatabase(std::istream& in) {
  GraphDatabase db;
  PIS_RETURN_NOT_OK(ParseInto(in, &db));
  return db;
}

Result<GraphDatabase> ReadGraphDatabaseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ReadGraphDatabase(in);
}

Status WriteGraphDatabase(const GraphDatabase& db, std::ostream& out) {
  for (int i = 0; i < db.size(); ++i) {
    out << FormatGraph(db.at(i), i);
  }
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

Status WriteGraphDatabaseFile(const GraphDatabase& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  return WriteGraphDatabase(db, out);
}

Result<Graph> ParseGraph(const std::string& text) {
  std::istringstream in(text);
  GraphDatabase db;
  PIS_RETURN_NOT_OK(ParseInto(in, &db));
  if (db.size() != 1) {
    return Status::ParseError("expected exactly one graph record, got " +
                              std::to_string(db.size()));
  }
  return db.at(0);
}

std::string FormatGraph(const Graph& g, int id) {
  std::ostringstream os;
  os.precision(17);  // round-trip exact doubles
  os << "t # " << id << "\n";
  for (int v = 0; v < g.NumVertices(); ++v) {
    os << "v " << v << " " << g.VertexLabel(v);
    if (g.VertexWeight(v) != 0.0) os << " " << g.VertexWeight(v);
    os << "\n";
  }
  for (int e = 0; e < g.NumEdges(); ++e) {
    const Edge& edge = g.GetEdge(e);
    os << "e " << edge.u << " " << edge.v << " " << edge.label;
    if (edge.weight != 0.0) os << " " << edge.weight;
    os << "\n";
  }
  return os.str();
}

}  // namespace pis
