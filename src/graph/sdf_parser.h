// Parser for MDL SDF / MOL V2000 connection tables, so the real NCI AIDS
// antiviral screen file (AIDO99SD) can be loaded when available. Atom
// symbols and bond types are interned through a ChemicalVocabulary.
#ifndef PIS_GRAPH_SDF_PARSER_H_
#define PIS_GRAPH_SDF_PARSER_H_

#include <iosfwd>
#include <string>

#include "graph/graph.h"
#include "graph/label_map.h"
#include "util/status.h"

namespace pis {

struct SdfOptions {
  /// Skip molecules that fail to parse instead of failing the whole read.
  bool skip_malformed = true;
  /// Drop disconnected molecules (salts etc.); the paper's workload uses
  /// connected compounds.
  bool require_connected = false;
  /// Stop after this many molecules (0 = no limit).
  int max_molecules = 0;
};

/// Reads an SDF stream into a database. Bond type codes 1,2,3,4 map to
/// labels "single","double","triple","aromatic" via `vocab->bonds`; atom
/// symbols are interned in `vocab->atoms`.
Result<GraphDatabase> ReadSdf(std::istream& in, ChemicalVocabulary* vocab,
                              const SdfOptions& options = {});

/// Reads an SDF file by path.
Result<GraphDatabase> ReadSdfFile(const std::string& path,
                                  ChemicalVocabulary* vocab,
                                  const SdfOptions& options = {});

/// Parses a single MOL block (header + counts line + atoms + bonds).
Result<Graph> ParseMolBlock(const std::string& block, ChemicalVocabulary* vocab);

}  // namespace pis

#endif  // PIS_GRAPH_SDF_PARSER_H_
