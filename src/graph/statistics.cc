#include "graph/statistics.h"

#include <algorithm>
#include <sstream>

namespace pis {

void ScalarSummary::Add(double v) {
  if (count == 0) {
    min = max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  sum += v;
  ++count;
}

double DatabaseStatistics::VertexLabelFraction(Label label) const {
  size_t total = 0;
  for (const auto& [l, c] : vertex_label_counts) total += c;
  if (total == 0) return 0;
  auto it = vertex_label_counts.find(label);
  return it == vertex_label_counts.end()
             ? 0
             : static_cast<double>(it->second) / static_cast<double>(total);
}

double DatabaseStatistics::EdgeLabelFraction(Label label) const {
  size_t total = 0;
  for (const auto& [l, c] : edge_label_counts) total += c;
  if (total == 0) return 0;
  auto it = edge_label_counts.find(label);
  return it == edge_label_counts.end()
             ? 0
             : static_cast<double>(it->second) / static_cast<double>(total);
}

std::string DatabaseStatistics::ToString() const {
  std::ostringstream os;
  os << "graphs: " << num_graphs << "\n";
  os << "vertices/graph: mean " << vertices_per_graph.Mean() << " max "
     << vertices_per_graph.max << "\n";
  os << "edges/graph: mean " << edges_per_graph.Mean() << " max "
     << edges_per_graph.max << "\n";
  os << "degree: mean " << degree.Mean() << " max " << degree.max << "\n";
  os << "vertex labels:";
  for (const auto& [label, count] : vertex_label_counts) {
    os << " " << label << ":" << count;
  }
  os << "\nedge labels:";
  for (const auto& [label, count] : edge_label_counts) {
    os << " " << label << ":" << count;
  }
  os << "\ncycle rank:";
  for (const auto& [rank, count] : cycle_rank_counts) {
    os << " " << rank << ":" << count;
  }
  os << "\n";
  return os.str();
}

DatabaseStatistics ComputeStatistics(const GraphDatabase& db) {
  DatabaseStatistics stats;
  stats.num_graphs = db.size();
  for (const Graph& g : db.graphs()) {
    stats.vertices_per_graph.Add(g.NumVertices());
    stats.edges_per_graph.Add(g.NumEdges());
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      stats.degree.Add(g.Degree(v));
      stats.vertex_label_counts[g.VertexLabel(v)]++;
    }
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      stats.edge_label_counts[g.GetEdge(e).label]++;
    }
    stats.cycle_rank_counts[g.NumEdges() - g.NumVertices() + 1]++;
  }
  return stats;
}

}  // namespace pis
