// Dataset statistics: the numbers the paper quotes about its workload
// ("25 nodes and 27 edges on average", "most of the atoms are carbons") and
// the histograms needed to validate the synthetic substitution in
// EXPERIMENTS.md.
#ifndef PIS_GRAPH_STATISTICS_H_
#define PIS_GRAPH_STATISTICS_H_

#include <map>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace pis {

/// Simple accumulator for scalar samples.
struct ScalarSummary {
  size_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;

  void Add(double v);
  double Mean() const { return count == 0 ? 0 : sum / static_cast<double>(count); }
};

/// Aggregate statistics over a graph database.
struct DatabaseStatistics {
  int num_graphs = 0;
  ScalarSummary vertices_per_graph;
  ScalarSummary edges_per_graph;
  ScalarSummary degree;
  /// label -> number of vertices / edges carrying it, over the database.
  std::map<Label, size_t> vertex_label_counts;
  std::map<Label, size_t> edge_label_counts;
  /// Count of graphs by cyclomatic number (#edges - #vertices + 1).
  std::map<int, size_t> cycle_rank_counts;

  /// Fraction of vertices carrying `label` (0 when the database is empty).
  double VertexLabelFraction(Label label) const;
  /// Fraction of edges carrying `label`.
  double EdgeLabelFraction(Label label) const;

  /// Human-readable multi-line report.
  std::string ToString() const;
};

/// Scans a database once and computes all statistics.
DatabaseStatistics ComputeStatistics(const GraphDatabase& db);

}  // namespace pis

#endif  // PIS_GRAPH_STATISTICS_H_
