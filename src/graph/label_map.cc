#include "graph/label_map.h"

namespace pis {

Label LabelMap::GetOrAdd(const std::string& name) {
  if (name.empty()) return kNoLabel;
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  Label id = static_cast<Label>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

Result<Label> LabelMap::Find(const std::string& name) const {
  if (name.empty()) return kNoLabel;
  auto it = ids_.find(name);
  if (it == ids_.end()) {
    return Status::NotFound("label not interned: " + name);
  }
  return it->second;
}

Result<std::string> LabelMap::Name(Label label) const {
  if (label < 0 || label >= size()) {
    return Status::OutOfRange("label id out of range: " + std::to_string(label));
  }
  return names_[label];
}

ChemicalVocabulary MakeDefaultChemicalVocabulary() {
  ChemicalVocabulary vocab;
  for (const char* atom : {"C", "N", "O", "S", "P", "F", "Cl", "Br", "I"}) {
    vocab.atoms.GetOrAdd(atom);
  }
  for (const char* bond : {"single", "double", "triple", "aromatic"}) {
    vocab.bonds.GetOrAdd(bond);
  }
  return vocab;
}

}  // namespace pis
