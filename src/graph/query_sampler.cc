#include "graph/query_sampler.h"

#include <algorithm>

#include "util/logging.h"

namespace pis {

Result<Graph> SampleConnectedSubgraph(const Graph& g, int num_edges, Rng* rng) {
  if (num_edges <= 0) return Status::InvalidArgument("num_edges must be > 0");
  if (g.NumEdges() < num_edges) {
    return Status::OutOfRange("graph has fewer edges than requested");
  }
  std::vector<EdgeId> chosen;
  std::vector<bool> edge_in(g.NumEdges(), false);
  std::vector<bool> vertex_in(g.NumVertices(), false);
  std::vector<EdgeId> frontier;  // incident edges not yet chosen

  auto add_edge = [&](EdgeId e) {
    chosen.push_back(e);
    edge_in[e] = true;
    for (VertexId v : {g.GetEdge(e).u, g.GetEdge(e).v}) {
      if (vertex_in[v]) continue;
      vertex_in[v] = true;
      for (EdgeId inc : g.IncidentEdges(v)) {
        if (!edge_in[inc]) frontier.push_back(inc);
      }
    }
  };

  add_edge(static_cast<EdgeId>(rng->UniformIndex(g.NumEdges())));
  while (static_cast<int>(chosen.size()) < num_edges) {
    // Compact the frontier lazily: drop already-chosen edges.
    while (!frontier.empty()) {
      size_t pick = rng->UniformIndex(frontier.size());
      EdgeId e = frontier[pick];
      frontier[pick] = frontier.back();
      frontier.pop_back();
      if (!edge_in[e]) {
        add_edge(e);
        break;
      }
    }
    if (frontier.empty() && static_cast<int>(chosen.size()) < num_edges) {
      // Connected component exhausted before reaching the target size.
      return Status::OutOfRange("component smaller than requested edge count");
    }
  }
  return g.EdgeSubgraph(chosen);
}

QuerySampler::QuerySampler(const GraphDatabase* db, const QuerySamplerOptions& options)
    : db_(db), options_(options), rng_(options.seed) {
  PIS_CHECK(db_ != nullptr);
}

Result<Graph> QuerySampler::Sample(int num_edges) {
  if (db_->empty()) return Status::InvalidArgument("empty database");
  constexpr int kMaxAttempts = 256;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    const Graph& host = db_->at(static_cast<int>(rng_.UniformIndex(db_->size())));
    if (host.NumEdges() < num_edges) continue;
    Result<Graph> sub = SampleConnectedSubgraph(host, num_edges, &rng_);
    if (!sub.ok()) continue;
    Graph q = sub.MoveValue();
    if (options_.strip_vertex_labels) {
      for (VertexId v = 0; v < q.NumVertices(); ++v) q.SetVertexLabel(v, kNoLabel);
    }
    return q;
  }
  return Status::NotFound("no database graph admits a query of requested size");
}

Result<std::vector<Graph>> QuerySampler::SampleSet(int num_edges, int count) {
  std::vector<Graph> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) {
    PIS_ASSIGN_OR_RETURN(Graph q, Sample(num_edges));
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace pis
