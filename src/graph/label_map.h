// Bidirectional string <-> Label dictionary (atom symbols, bond names).
#ifndef PIS_GRAPH_LABEL_MAP_H_
#define PIS_GRAPH_LABEL_MAP_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace pis {

/// \brief Interns strings as dense Label ids.
///
/// Id 0 is reserved for kNoLabel and maps to "". Lookup of an unknown name
/// via GetOrAdd inserts it; Find returns NotFound.
class LabelMap {
 public:
  LabelMap() { names_.push_back(""); }

  /// Returns the id for `name`, interning it if new. "" maps to kNoLabel.
  Label GetOrAdd(const std::string& name);

  /// Returns the id for `name` or NotFound.
  Result<Label> Find(const std::string& name) const;

  /// Returns the name for an id, or OutOfRange.
  Result<std::string> Name(Label label) const;

  /// Number of distinct labels including the reserved empty label.
  int size() const { return static_cast<int>(names_.size()); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, Label> ids_;
};

/// Shared vocabulary for a chemical dataset: atoms and bonds.
struct ChemicalVocabulary {
  LabelMap atoms;
  LabelMap bonds;
};

/// Builds the vocabulary used by the synthetic generator and SDF parser:
/// atoms C,N,O,S,P,F,Cl,Br,I and bonds single,double,triple,aromatic
/// (interned in that order, so e.g. "single" gets a stable id).
ChemicalVocabulary MakeDefaultChemicalVocabulary();

}  // namespace pis

#endif  // PIS_GRAPH_LABEL_MAP_H_
