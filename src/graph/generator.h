// Synthetic dataset generators.
//
// MoleculeGenerator emulates the NCI AIDS antiviral screen compounds used in
// the paper's evaluation (see DESIGN.md §4): carbon-dominated atoms,
// ring-and-chain topology, bond-type edge labels, sizes averaging ~25
// vertices / ~27 edges with a heavy tail. RandomGraphGenerator produces
// arbitrary connected labeled graphs for tests and property sweeps.
#ifndef PIS_GRAPH_GENERATOR_H_
#define PIS_GRAPH_GENERATOR_H_

#include <cstdint>

#include "graph/graph.h"
#include "graph/label_map.h"
#include "util/random.h"

namespace pis {

/// Tuning knobs for the molecule generator. Defaults reproduce the paper's
/// dataset statistics.
struct MoleculeGeneratorOptions {
  uint64_t seed = 42;
  int min_vertices = 8;
  double mean_vertices = 25.0;
  int max_vertices = 214;
  /// Ring size distribution: weights for sizes 3,4,5,6,7. Six-membered
  /// rings dominate real compounds; the rare small/large rings create the
  /// selective skeletons the paper's Yt buckets depend on.
  std::vector<double> ring_size_weights = {0.03, 0.05, 0.22, 0.60, 0.10};
  /// Probability a 6-ring is aromatic (all bonds labeled aromatic).
  double aromatic_prob = 0.55;
  /// Probability that a growth step fuses a ring on an existing edge.
  double fuse_prob = 0.30;
  /// Probability that a growth step attaches a ring at a single vertex.
  double spiro_prob = 0.15;
  /// Remaining probability attaches a chain.
  /// Fraction of atoms that are carbon; the rest are drawn from N/O/S/....
  double carbon_frac = 0.75;
  /// Probability a non-ring bond is a double bond.
  double double_bond_prob = 0.10;
  /// Probability a non-ring bond is a triple bond.
  double triple_bond_prob = 0.02;
  /// Also assign numeric weights (pseudo bond lengths) for linear-distance
  /// experiments.
  bool assign_weights = true;
};

/// \brief Seeded generator of molecule-like labeled graphs.
///
/// Every produced graph is connected and simple. The vocabulary is the
/// default chemical vocabulary (see MakeDefaultChemicalVocabulary).
class MoleculeGenerator {
 public:
  explicit MoleculeGenerator(const MoleculeGeneratorOptions& options = {});

  /// Generates the next molecule.
  Graph Next();

  /// Generates a database of `n` molecules.
  GraphDatabase Generate(int n);

  const ChemicalVocabulary& vocabulary() const { return vocab_; }

 private:
  Label RandomAtom();
  Label ChainBond();
  double BondWeight(Label bond);
  /// Appends a fresh ring; `attach_edge`/`attach_vertex` select fusion mode.
  void AddRing(Graph* g, EdgeId fuse_edge, VertexId spiro_vertex);
  void AddChain(Graph* g, VertexId from);

  MoleculeGeneratorOptions options_;
  ChemicalVocabulary vocab_;
  Rng rng_;
  Label carbon_, nitrogen_, oxygen_, sulfur_;
  Label single_, double_, triple_, aromatic_;
};

/// Options for uniform random connected graphs (test workloads).
struct RandomGraphOptions {
  int num_vertices = 10;
  int num_edges = 12;  // clamped to [n-1, n(n-1)/2]
  int vertex_alphabet = 3;
  int edge_alphabet = 3;
  double max_weight = 10.0;
};

/// Generates a connected simple graph: a random spanning tree plus random
/// extra edges, with labels drawn uniformly from 1..alphabet.
Graph GenerateRandomConnectedGraph(const RandomGraphOptions& options, Rng* rng);

}  // namespace pis

#endif  // PIS_GRAPH_GENERATOR_H_
