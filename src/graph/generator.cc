#include "graph/generator.h"

#include <algorithm>

#include "util/logging.h"

namespace pis {

MoleculeGenerator::MoleculeGenerator(const MoleculeGeneratorOptions& options)
    : options_(options),
      vocab_(MakeDefaultChemicalVocabulary()),
      rng_(options.seed) {
  carbon_ = vocab_.atoms.GetOrAdd("C");
  nitrogen_ = vocab_.atoms.GetOrAdd("N");
  oxygen_ = vocab_.atoms.GetOrAdd("O");
  sulfur_ = vocab_.atoms.GetOrAdd("S");
  single_ = vocab_.bonds.GetOrAdd("single");
  double_ = vocab_.bonds.GetOrAdd("double");
  triple_ = vocab_.bonds.GetOrAdd("triple");
  aromatic_ = vocab_.bonds.GetOrAdd("aromatic");
}

Label MoleculeGenerator::RandomAtom() {
  if (rng_.Bernoulli(options_.carbon_frac)) return carbon_;
  // Hetero-atom mix loosely matching organic compounds.
  size_t pick = rng_.Categorical({0.40, 0.40, 0.12, 0.08});
  switch (pick) {
    case 0:
      return nitrogen_;
    case 1:
      return oxygen_;
    case 2:
      return sulfur_;
    default: {
      Label halogens[] = {vocab_.atoms.GetOrAdd("F"), vocab_.atoms.GetOrAdd("Cl"),
                          vocab_.atoms.GetOrAdd("Br")};
      return halogens[rng_.UniformIndex(3)];
    }
  }
}

Label MoleculeGenerator::ChainBond() {
  double x = rng_.UniformDouble();
  if (x < options_.triple_bond_prob) return triple_;
  if (x < options_.triple_bond_prob + options_.double_bond_prob) return double_;
  return single_;
}

double MoleculeGenerator::BondWeight(Label bond) {
  // Pseudo bond lengths (Angstrom-like) with jitter; gives the linear
  // distance something physically plausible to range over.
  double base = 1.54;
  if (bond == double_) base = 1.34;
  if (bond == triple_) base = 1.20;
  if (bond == aromatic_) base = 1.40;
  return base + rng_.UniformDouble(-0.05, 0.05);
}

void MoleculeGenerator::AddRing(Graph* g, EdgeId fuse_edge, VertexId spiro_vertex) {
  int size = 3 + static_cast<int>(rng_.Categorical(options_.ring_size_weights));
  bool aromatic = size == 6 && rng_.Bernoulli(options_.aromatic_prob);
  Label bond = aromatic ? aromatic_ : single_;

  std::vector<VertexId> cycle;
  if (fuse_edge != kInvalidEdge) {
    // Share an existing edge: the new ring is (u, new..., v, u).
    const Edge& e = g->GetEdge(fuse_edge);
    cycle.push_back(e.u);
    for (int i = 0; i < size - 2; ++i) {
      cycle.push_back(g->AddVertex(aromatic ? carbon_ : RandomAtom()));
    }
    cycle.push_back(e.v);
  } else if (spiro_vertex != kInvalidVertex) {
    cycle.push_back(spiro_vertex);
    for (int i = 0; i < size - 1; ++i) {
      cycle.push_back(g->AddVertex(aromatic ? carbon_ : RandomAtom()));
    }
  } else {
    for (int i = 0; i < size; ++i) {
      cycle.push_back(g->AddVertex(aromatic ? carbon_ : RandomAtom()));
    }
  }
  for (size_t i = 0; i < cycle.size(); ++i) {
    VertexId a = cycle[i];
    VertexId b = cycle[(i + 1) % cycle.size()];
    if (g->HasEdge(a, b)) continue;  // the fused edge already exists
    Label b_label = aromatic ? bond : (rng_.Bernoulli(0.15) ? double_ : bond);
    auto added = g->AddEdge(a, b, b_label,
                            options_.assign_weights ? BondWeight(b_label) : 0.0);
    PIS_CHECK(added.ok()) << added.status().ToString();
  }
}

void MoleculeGenerator::AddChain(Graph* g, VertexId from) {
  int len = rng_.UniformInt(1, 4);
  VertexId prev = from;
  for (int i = 0; i < len; ++i) {
    VertexId next = g->AddVertex(RandomAtom());
    Label bond = ChainBond();
    auto added = g->AddEdge(prev, next, bond,
                            options_.assign_weights ? BondWeight(bond) : 0.0);
    PIS_CHECK(added.ok()) << added.status().ToString();
    prev = next;
  }
}

Graph MoleculeGenerator::Next() {
  int target = rng_.HeavyTailInt(options_.min_vertices, options_.mean_vertices,
                                 options_.max_vertices);
  Graph g;
  AddRing(&g, kInvalidEdge, kInvalidVertex);
  // Growth loop; each step adds a fused ring, a spiro ring, or a chain.
  while (g.NumVertices() < target) {
    double x = rng_.UniformDouble();
    if (x < options_.fuse_prob && g.NumEdges() > 0) {
      EdgeId e = static_cast<EdgeId>(rng_.UniformIndex(g.NumEdges()));
      // Fusing on an edge whose endpoints are already saturated creates
      // implausible dense clusters; cap endpoint degree at 3.
      const Edge& edge = g.GetEdge(e);
      if (g.Degree(edge.u) <= 3 && g.Degree(edge.v) <= 3) {
        AddRing(&g, e, kInvalidVertex);
        continue;
      }
    } else if (x < options_.fuse_prob + options_.spiro_prob) {
      VertexId v = static_cast<VertexId>(rng_.UniformIndex(g.NumVertices()));
      if (g.Degree(v) <= 2) {
        AddRing(&g, kInvalidEdge, v);
        continue;
      }
    }
    // Chains attach at low-degree vertices (valence).
    VertexId v = static_cast<VertexId>(rng_.UniformIndex(g.NumVertices()));
    if (g.Degree(v) <= 3) AddChain(&g, v);
  }
  PIS_DCHECK(g.IsConnected());
  return g;
}

GraphDatabase MoleculeGenerator::Generate(int n) {
  GraphDatabase db;
  for (int i = 0; i < n; ++i) db.Add(Next());
  return db;
}

Graph GenerateRandomConnectedGraph(const RandomGraphOptions& options, Rng* rng) {
  PIS_CHECK(options.num_vertices >= 1);
  Graph g;
  auto rand_vlabel = [&]() {
    return static_cast<Label>(rng->UniformInt(1, std::max(1, options.vertex_alphabet)));
  };
  auto rand_elabel = [&]() {
    return static_cast<Label>(rng->UniformInt(1, std::max(1, options.edge_alphabet)));
  };
  for (int i = 0; i < options.num_vertices; ++i) {
    g.AddVertex(rand_vlabel(), rng->UniformDouble(0, options.max_weight));
  }
  // Random spanning tree: connect each vertex i>0 to a random earlier one.
  for (int i = 1; i < options.num_vertices; ++i) {
    VertexId parent = static_cast<VertexId>(rng->UniformIndex(i));
    auto added = g.AddEdge(parent, i, rand_elabel(),
                           rng->UniformDouble(0, options.max_weight));
    PIS_CHECK(added.ok());
  }
  long long max_edges =
      static_cast<long long>(options.num_vertices) * (options.num_vertices - 1) / 2;
  int want = static_cast<int>(std::clamp<long long>(
      options.num_edges, options.num_vertices - 1, max_edges));
  int attempts = 0;
  while (g.NumEdges() < want && attempts < 50 * want + 100) {
    ++attempts;
    VertexId u = static_cast<VertexId>(rng->UniformIndex(options.num_vertices));
    VertexId v = static_cast<VertexId>(rng->UniformIndex(options.num_vertices));
    if (u == v || g.HasEdge(u, v)) continue;
    auto added =
        g.AddEdge(u, v, rand_elabel(), rng->UniformDouble(0, options.max_weight));
    PIS_CHECK(added.ok());
  }
  return g;
}

}  // namespace pis
