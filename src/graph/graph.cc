#include "graph/graph.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace pis {

VertexId Graph::AddVertex(Label label, double weight) {
  vertex_labels_.push_back(label);
  vertex_weights_.push_back(weight);
  adjacency_.emplace_back();
  return static_cast<VertexId>(vertex_labels_.size()) - 1;
}

Result<EdgeId> Graph::AddEdge(VertexId u, VertexId v, Label label, double weight) {
  if (u < 0 || v < 0 || u >= NumVertices() || v >= NumVertices()) {
    return Status::InvalidArgument("AddEdge: endpoint out of range");
  }
  if (u == v) {
    return Status::InvalidArgument("AddEdge: self-loops are not supported");
  }
  if (HasEdge(u, v)) {
    return Status::AlreadyExists("AddEdge: parallel edge");
  }
  EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{u, v, label, weight});
  adjacency_[u].push_back(id);
  adjacency_[v].push_back(id);
  return id;
}

EdgeId Graph::FindEdge(VertexId u, VertexId v) const {
  if (u < 0 || v < 0 || u >= NumVertices() || v >= NumVertices()) {
    return kInvalidEdge;
  }
  // Scan the smaller adjacency list.
  VertexId probe = (Degree(u) <= Degree(v)) ? u : v;
  VertexId other = (probe == u) ? v : u;
  for (EdgeId e : adjacency_[probe]) {
    if (edges_[e].Other(probe) == other) return e;
  }
  return kInvalidEdge;
}

bool Graph::IsConnected() const {
  if (NumVertices() == 0) return true;
  std::vector<bool> seen(NumVertices(), false);
  std::vector<VertexId> stack = {0};
  seen[0] = true;
  int count = 1;
  while (!stack.empty()) {
    VertexId v = stack.back();
    stack.pop_back();
    for (EdgeId e : adjacency_[v]) {
      VertexId w = edges_[e].Other(v);
      if (!seen[w]) {
        seen[w] = true;
        ++count;
        stack.push_back(w);
      }
    }
  }
  return count == NumVertices();
}

Graph Graph::EdgeSubgraph(const std::vector<EdgeId>& edge_ids,
                          std::vector<VertexId>* vertex_map_out) const {
  Graph out;
  std::vector<VertexId> old_to_new(NumVertices(), kInvalidVertex);
  std::vector<VertexId> new_to_old;
  auto map_vertex = [&](VertexId old) {
    if (old_to_new[old] == kInvalidVertex) {
      old_to_new[old] = out.AddVertex(vertex_labels_[old], vertex_weights_[old]);
      new_to_old.push_back(old);
    }
    return old_to_new[old];
  };
  for (EdgeId e : edge_ids) {
    PIS_DCHECK(e >= 0 && e < NumEdges());
    const Edge& edge = edges_[e];
    VertexId nu = map_vertex(edge.u);
    VertexId nv = map_vertex(edge.v);
    auto added = out.AddEdge(nu, nv, edge.label, edge.weight);
    PIS_CHECK(added.ok()) << added.status().ToString();
  }
  if (vertex_map_out != nullptr) {
    *vertex_map_out = std::move(new_to_old);
  }
  return out;
}

Graph Graph::Relabeled(const std::vector<VertexId>& perm) const {
  PIS_CHECK(static_cast<int>(perm.size()) == NumVertices());
  // inverse[old] = new position of old vertex.
  std::vector<VertexId> inverse(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    inverse[perm[i]] = static_cast<VertexId>(i);
  }
  Graph out;
  for (size_t i = 0; i < perm.size(); ++i) {
    out.AddVertex(vertex_labels_[perm[i]], vertex_weights_[perm[i]]);
  }
  for (const Edge& e : edges_) {
    auto added = out.AddEdge(inverse[e.u], inverse[e.v], e.label, e.weight);
    PIS_CHECK(added.ok()) << added.status().ToString();
  }
  return out;
}

Graph Graph::Skeleton() const {
  Graph out;
  for (int v = 0; v < NumVertices(); ++v) {
    out.AddVertex(kNoLabel, 0.0);
  }
  for (const Edge& e : edges_) {
    auto added = out.AddEdge(e.u, e.v, kNoLabel, 0.0);
    PIS_CHECK(added.ok()) << added.status().ToString();
  }
  return out;
}

std::string Graph::ToString() const {
  std::ostringstream os;
  os << "Graph(" << NumVertices() << " vertices, " << NumEdges() << " edges)\n";
  for (int v = 0; v < NumVertices(); ++v) {
    os << "  v" << v << " label=" << vertex_labels_[v]
       << " weight=" << vertex_weights_[v] << "\n";
  }
  for (int e = 0; e < NumEdges(); ++e) {
    os << "  e" << e << " (" << edges_[e].u << "," << edges_[e].v
       << ") label=" << edges_[e].label << " weight=" << edges_[e].weight << "\n";
  }
  return os.str();
}

bool Graph::operator==(const Graph& other) const {
  if (NumVertices() != other.NumVertices() || NumEdges() != other.NumEdges()) {
    return false;
  }
  if (vertex_labels_ != other.vertex_labels_ ||
      vertex_weights_ != other.vertex_weights_) {
    return false;
  }
  for (int e = 0; e < NumEdges(); ++e) {
    const Edge& a = edges_[e];
    const Edge& b = other.edges_[e];
    bool same = (a.u == b.u && a.v == b.v) || (a.u == b.v && a.v == b.u);
    if (!same || a.label != b.label || a.weight != b.weight) return false;
  }
  return true;
}

double GraphDatabase::AverageVertices() const {
  if (graphs_.empty()) return 0;
  double total = 0;
  for (const Graph& g : graphs_) total += g.NumVertices();
  return total / static_cast<double>(graphs_.size());
}

double GraphDatabase::AverageEdges() const {
  if (graphs_.empty()) return 0;
  double total = 0;
  for (const Graph& g : graphs_) total += g.NumEdges();
  return total / static_cast<double>(graphs_.size());
}

int GraphDatabase::MaxVertices() const {
  int best = 0;
  for (const Graph& g : graphs_) best = std::max(best, g.NumVertices());
  return best;
}

int GraphDatabase::MaxEdges() const {
  int best = 0;
  for (const Graph& g : graphs_) best = std::max(best, g.NumEdges());
  return best;
}

}  // namespace pis
