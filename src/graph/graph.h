// Labeled undirected graph: the fundamental object of the library.
#ifndef PIS_GRAPH_GRAPH_H_
#define PIS_GRAPH_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace pis {

using VertexId = int32_t;
using EdgeId = int32_t;
/// Categorical label (atom type, bond type). kNoLabel means "unlabeled".
using Label = int32_t;

inline constexpr Label kNoLabel = 0;
inline constexpr VertexId kInvalidVertex = -1;
inline constexpr EdgeId kInvalidEdge = -1;

/// One undirected edge. `u < v` is NOT guaranteed; endpoints keep insertion
/// order. `weight` supports the linear (geometric) distance; `label`
/// supports the mutation distance.
struct Edge {
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;
  Label label = kNoLabel;
  double weight = 0.0;

  /// The endpoint that is not `from`.
  VertexId Other(VertexId from) const { return from == u ? v : u; }
};

/// \brief Undirected graph with labeled/weighted vertices and edges.
///
/// Designed for the small, sparse graphs of chemical databases (tens to a
/// few hundred vertices). Vertices and edges are identified by dense ids in
/// insertion order; adjacency is an edge-id list per vertex. Parallel edges
/// and self-loops are rejected by AddEdge (chemical graphs are simple).
class Graph {
 public:
  Graph() = default;

  /// Adds a vertex and returns its id.
  VertexId AddVertex(Label label = kNoLabel, double weight = 0.0);
  /// Adds an undirected edge; returns the edge id, or an error for
  /// out-of-range endpoints, self-loops, and duplicate edges.
  Result<EdgeId> AddEdge(VertexId u, VertexId v, Label label = kNoLabel,
                         double weight = 0.0);

  int NumVertices() const { return static_cast<int>(vertex_labels_.size()); }
  int NumEdges() const { return static_cast<int>(edges_.size()); }
  bool Empty() const { return NumVertices() == 0; }

  Label VertexLabel(VertexId v) const { return vertex_labels_[v]; }
  double VertexWeight(VertexId v) const { return vertex_weights_[v]; }
  void SetVertexLabel(VertexId v, Label label) { vertex_labels_[v] = label; }
  void SetVertexWeight(VertexId v, double w) { vertex_weights_[v] = w; }

  const Edge& GetEdge(EdgeId e) const { return edges_[e]; }
  void SetEdgeLabel(EdgeId e, Label label) { edges_[e].label = label; }
  void SetEdgeWeight(EdgeId e, double w) { edges_[e].weight = w; }

  /// Edge ids incident to `v`, in insertion order.
  const std::vector<EdgeId>& IncidentEdges(VertexId v) const {
    return adjacency_[v];
  }
  int Degree(VertexId v) const { return static_cast<int>(adjacency_[v].size()); }

  /// Edge id between u and v, or kInvalidEdge.
  EdgeId FindEdge(VertexId u, VertexId v) const;
  bool HasEdge(VertexId u, VertexId v) const {
    return FindEdge(u, v) != kInvalidEdge;
  }

  /// True if every vertex is reachable from vertex 0 (true for the empty
  /// graph).
  bool IsConnected() const;

  /// Extracts the subgraph induced by an edge subset. Vertices touched by
  /// the edges are renumbered 0..k-1 in first-appearance order;
  /// `vertex_map_out` (optional) receives original ids indexed by new ids.
  Graph EdgeSubgraph(const std::vector<EdgeId>& edge_ids,
                     std::vector<VertexId>* vertex_map_out = nullptr) const;

  /// Returns a copy whose vertex ids are permuted: new id i holds old vertex
  /// perm[i]. `perm` must be a permutation of 0..n-1.
  Graph Relabeled(const std::vector<VertexId>& perm) const;

  /// Returns a structure-only copy: all vertex/edge labels set to kNoLabel,
  /// weights zeroed. Used for equivalence-class hashing.
  Graph Skeleton() const;

  /// Multi-line human-readable dump (for debugging and golden tests).
  std::string ToString() const;

  /// Structural + label equality under identity mapping (not isomorphism).
  bool operator==(const Graph& other) const;

 private:
  std::vector<Label> vertex_labels_;
  std::vector<double> vertex_weights_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> adjacency_;
};

/// A graph plus its id in a database.
struct GraphEntry {
  int id = -1;
  Graph graph;
};

/// An in-memory graph database: contiguous ids 0..n-1.
class GraphDatabase {
 public:
  GraphDatabase() = default;

  /// Appends a graph; returns its id.
  int Add(Graph g) {
    graphs_.push_back(std::move(g));
    return static_cast<int>(graphs_.size()) - 1;
  }

  int size() const { return static_cast<int>(graphs_.size()); }
  bool empty() const { return graphs_.empty(); }
  const Graph& at(int id) const { return graphs_[id]; }
  Graph& mutable_at(int id) { return graphs_[id]; }

  const std::vector<Graph>& graphs() const { return graphs_; }

  /// Average vertex / edge counts (0 for an empty database).
  double AverageVertices() const;
  double AverageEdges() const;
  int MaxVertices() const;
  int MaxEdges() const;

 private:
  std::vector<Graph> graphs_;
};

}  // namespace pis

#endif  // PIS_GRAPH_GRAPH_H_
