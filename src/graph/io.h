// Native text format for graph databases (gSpan-compatible superset).
//
//   t # <graph-id>
//   v <vertex-id> <label> [weight]
//   e <u> <v> <label> [weight]
//
// Vertex ids must be dense and in order; '#'-prefixed lines outside records
// and blank lines are ignored.
#ifndef PIS_GRAPH_IO_H_
#define PIS_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace pis {

/// Parses a database from a stream in the native text format.
Result<GraphDatabase> ReadGraphDatabase(std::istream& in);

/// Parses a database from a file path.
Result<GraphDatabase> ReadGraphDatabaseFile(const std::string& path);

/// Serializes a database to the native text format.
Status WriteGraphDatabase(const GraphDatabase& db, std::ostream& out);

/// Serializes a database to a file path.
Status WriteGraphDatabaseFile(const GraphDatabase& db, const std::string& path);

/// Parses a single graph from the native text format (expects exactly one
/// record).
Result<Graph> ParseGraph(const std::string& text);

/// Serializes a single graph as one record with the given id.
std::string FormatGraph(const Graph& g, int id);

}  // namespace pis

#endif  // PIS_GRAPH_IO_H_
