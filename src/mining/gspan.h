// gSpan frequent connected-subgraph mining (Yan & Han, ICDM'02 — reference
// [15] of the paper). PIS uses it to mine the indexing features;
// structure-only features are mined by passing graph skeletons.
#ifndef PIS_MINING_GSPAN_H_
#define PIS_MINING_GSPAN_H_

#include <vector>

#include "graph/graph.h"
#include "mining/pattern.h"
#include "util/status.h"

namespace pis {

struct GspanOptions {
  /// Absolute minimum support (number of database graphs).
  int min_support = 2;
  /// Maximum pattern size in edges (the paper indexes fragments of 4-6
  /// edges; Figure 12 sweeps this).
  int max_edges = 6;
  /// Minimum pattern size in edges for *reporting* (smaller patterns are
  /// still explored internally).
  int min_edges = 1;
  /// Cap on the number of reported patterns, 0 = unlimited. Mining stops
  /// early when reached (depth-first order, so small patterns first).
  size_t max_patterns = 0;
};

/// Mines all frequent connected subgraphs of `db` up to `options.max_edges`
/// edges. Patterns use the labels present in `db`; to mine bare structures
/// (the paper's features), pass skeletons. Single-vertex patterns are not
/// reported (features are edge sets).
Result<std::vector<Pattern>> MineFrequentSubgraphs(const GraphDatabase& db,
                                                   const GspanOptions& options);

}  // namespace pis

#endif  // PIS_MINING_GSPAN_H_
