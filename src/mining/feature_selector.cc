#include "mining/feature_selector.h"

#include <algorithm>
#include <numeric>

#include "isomorphism/vf2.h"

namespace pis {

namespace {

// Intersects `acc` (sorted) with `other` (sorted) in place.
void IntersectInto(std::vector<int>* acc, const std::vector<int>& other) {
  std::vector<int> out;
  std::set_intersection(acc->begin(), acc->end(), other.begin(), other.end(),
                        std::back_inserter(out));
  acc->swap(out);
}

}  // namespace

Result<std::vector<size_t>> SelectDiscriminativeFeatures(
    const std::vector<Pattern>& patterns, int db_size,
    const FeatureSelectorOptions& options) {
  if (options.gamma < 1.0) {
    return Status::InvalidArgument("gamma must be >= 1");
  }
  // Ascending size; stable to keep miner order within a size class.
  std::vector<size_t> order(patterns.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return patterns[a].num_edges() < patterns[b].num_edges();
  });

  std::vector<size_t> selected;
  MatchOptions match;
  match.match_vertex_labels = true;
  match.match_edge_labels = true;
  for (size_t idx : order) {
    if (options.max_features > 0 && selected.size() >= options.max_features) break;
    const Pattern& p = patterns[idx];
    if (p.num_edges() <= options.always_keep_max_edges) {
      selected.push_back(idx);
      continue;
    }
    // Support of the conjunction of selected subpatterns: start from the
    // whole database and intersect.
    std::vector<int> conj(db_size);
    std::iota(conj.begin(), conj.end(), 0);
    for (size_t sidx : selected) {
      const Pattern& f = patterns[sidx];
      if (f.num_edges() >= p.num_edges()) continue;
      if (static_cast<int>(conj.size()) < p.support() * options.gamma) break;
      if (!IsSubgraph(f.graph, p.graph, match)) continue;
      IntersectInto(&conj, f.support_set);
    }
    if (static_cast<double>(conj.size()) >=
        options.gamma * static_cast<double>(p.support())) {
      selected.push_back(idx);
    }
  }
  return selected;
}

}  // namespace pis
