// GraphGrep-style path features (Shasha, Wang & Giugno, PODS'02 — reference
// [12] of the paper): all simple paths up to a length cap. The paper notes
// "PIS can take paths as features to build the index"; this module provides
// that alternative feature source.
#ifndef PIS_MINING_PATH_FEATURES_H_
#define PIS_MINING_PATH_FEATURES_H_

#include <vector>

#include "graph/graph.h"
#include "mining/pattern.h"
#include "util/status.h"

namespace pis {

struct PathFeatureOptions {
  int min_edges = 1;
  int max_edges = 4;
  /// Absolute minimum support.
  int min_support = 1;
};

/// Enumerates the simple paths (as canonical patterns with support sets)
/// occurring in the database, deduplicated by minimum DFS code.
Result<std::vector<Pattern>> MinePathFeatures(const GraphDatabase& db,
                                              const PathFeatureOptions& options = {});

}  // namespace pis

#endif  // PIS_MINING_PATH_FEATURES_H_
