#include "mining/gspan.h"

#include <algorithm>
#include <map>

#include "canonical/min_dfs.h"
#include "util/logging.h"

namespace pis {

namespace {

// One embedding step: graph edge `edge` realizes the code entry, oriented
// from `from` to `to`; `prev` chains to the parent projection entry (stable:
// parent lists outlive children on the recursion stack).
struct PDFS {
  int gid = -1;
  VertexId from = kInvalidVertex;
  VertexId to = kInvalidVertex;
  EdgeId edge = kInvalidEdge;
  const PDFS* prev = nullptr;
};

using Projected = std::vector<PDFS>;

// Strict weak order for grouping extension tuples (any total order works;
// plain lexicographic keeps map iteration deterministic).
struct DfsEdgeLess {
  bool operator()(const DfsEdge& a, const DfsEdge& b) const {
    auto ta = std::tie(a.from, a.to, a.from_label, a.edge_label, a.to_label);
    auto tb = std::tie(b.from, b.to, b.from_label, b.edge_label, b.to_label);
    return ta < tb;
  }
};

// Rightmost path of a code as code positions, deepest edge first.
std::vector<int> BuildRmPath(const DfsCode& code) {
  std::vector<int> rmpath;
  int old_from = -1;
  for (int i = static_cast<int>(code.size()) - 1; i >= 0; --i) {
    const DfsEdge& e = code[i];
    if (e.IsForward() && (rmpath.empty() || e.to == old_from)) {
      rmpath.push_back(i);
      old_from = e.from;
    }
  }
  return rmpath;
}

// Unrolled embedding: code-position -> graph edge plus dfs-index -> vertex.
struct History {
  std::vector<EdgeId> edges;       // code position -> graph edge
  std::vector<VertexId> vertex_of;  // dfs index -> graph vertex
  std::vector<bool> edge_used;
  std::vector<bool> vertex_used;

  History(const Graph& g, const DfsCode& code, const PDFS& last) {
    std::vector<const PDFS*> chain;
    for (const PDFS* p = &last; p != nullptr; p = p->prev) chain.push_back(p);
    std::reverse(chain.begin(), chain.end());
    PIS_DCHECK(chain.size() == code.size());
    edges.resize(chain.size());
    vertex_of.assign(code.NumVertices(), kInvalidVertex);
    edge_used.assign(g.NumEdges(), false);
    vertex_used.assign(g.NumVertices(), false);
    for (size_t i = 0; i < chain.size(); ++i) {
      edges[i] = chain[i]->edge;
      edge_used[chain[i]->edge] = true;
      vertex_of[code[i].from] = chain[i]->from;
      vertex_of[code[i].to] = chain[i]->to;
      vertex_used[chain[i]->from] = true;
      vertex_used[chain[i]->to] = true;
    }
  }
};

class GspanMiner {
 public:
  GspanMiner(const GraphDatabase& db, const GspanOptions& options)
      : db_(db), options_(options) {}

  Result<std::vector<Pattern>> Run() {
    if (options_.min_support < 1) {
      return Status::InvalidArgument("min_support must be >= 1");
    }
    if (options_.max_edges < 1) {
      return Status::InvalidArgument("max_edges must be >= 1");
    }
    // Root level: group single edges by (la, le, lb), la <= lb (other
    // orientations cannot start a minimal code).
    std::map<DfsEdge, Projected, DfsEdgeLess> roots;
    for (int gid = 0; gid < db_.size(); ++gid) {
      const Graph& g = db_.at(gid);
      for (EdgeId e = 0; e < g.NumEdges(); ++e) {
        const Edge& edge = g.GetEdge(e);
        for (bool u_first : {true, false}) {
          VertexId a = u_first ? edge.u : edge.v;
          VertexId b = u_first ? edge.v : edge.u;
          if (g.VertexLabel(a) > g.VertexLabel(b)) continue;
          DfsEdge t{0, 1, g.VertexLabel(a), edge.label, g.VertexLabel(b)};
          roots[t].push_back(PDFS{gid, a, b, e, nullptr});
        }
      }
    }
    DfsCode code;
    for (auto& [tuple, projected] : roots) {
      code.Append(tuple);
      Subgraph(&code, projected);
      code.PopBack();
      if (Done()) break;
    }
    return std::move(patterns_);
  }

 private:
  bool Done() const {
    return options_.max_patterns > 0 && patterns_.size() >= options_.max_patterns;
  }

  static std::vector<int> SupportSet(const Projected& projected) {
    std::vector<int> gids;
    int last = -1;
    for (const PDFS& p : projected) {
      if (p.gid != last) {
        gids.push_back(p.gid);
        last = p.gid;
      }
    }
    // Projections are built in gid order, but guard against future changes.
    std::sort(gids.begin(), gids.end());
    gids.erase(std::unique(gids.begin(), gids.end()), gids.end());
    return gids;
  }

  void Subgraph(DfsCode* code, const Projected& projected) {
    if (Done()) return;
    std::vector<int> support_set = SupportSet(projected);
    if (static_cast<int>(support_set.size()) < options_.min_support) return;
    Result<bool> is_min = IsMinDfsCode(*code);
    PIS_CHECK(is_min.ok()) << is_min.status().ToString();
    if (!is_min.value()) return;

    if (static_cast<int>(code->size()) >= options_.min_edges) {
      Pattern pattern;
      pattern.code = *code;
      Result<Graph> g = code->ToGraph();
      PIS_CHECK(g.ok()) << g.status().ToString();
      pattern.graph = g.MoveValue();
      pattern.support_set = std::move(support_set);
      patterns_.push_back(std::move(pattern));
      if (Done()) return;
    }
    if (static_cast<int>(code->size()) >= options_.max_edges) return;

    const std::vector<int> rmpath = BuildRmPath(*code);
    const int maxtoc = (*code)[rmpath[0]].to;  // rightmost dfs index

    std::map<DfsEdge, Projected, DfsEdgeLess> extensions;
    for (const PDFS& p : projected) {
      const Graph& g = db_.at(p.gid);
      History history(g, *code, p);
      VertexId rmv = history.vertex_of[maxtoc];
      // Backward: rightmost vertex -> rightmost-path ancestors.
      for (size_t ri = rmpath.size(); ri-- > 0;) {
        int pos = rmpath[ri];
        int anc_idx = (*code)[pos].from;
        if (ri == 0) continue;  // skip (there is no backward to maxtoc itself)
        VertexId anc = history.vertex_of[anc_idx];
        EdgeId be = g.FindEdge(rmv, anc);
        if (be == kInvalidEdge || history.edge_used[be]) continue;
        DfsEdge t{maxtoc, anc_idx, g.VertexLabel(rmv), g.GetEdge(be).label,
                  g.VertexLabel(anc)};
        extensions[t].push_back(PDFS{p.gid, rmv, anc, be, &p});
      }
      // Forward: from every rightmost-path vertex (the rightmost vertex
      // itself plus each rmpath ancestor) to an unmapped vertex.
      std::vector<int> forward_from = {maxtoc};
      for (int pos : rmpath) forward_from.push_back((*code)[pos].from);
      for (int from_idx : forward_from) {
        VertexId from_v = history.vertex_of[from_idx];
        for (EdgeId fe : g.IncidentEdges(from_v)) {
          if (history.edge_used[fe]) continue;
          VertexId w = g.GetEdge(fe).Other(from_v);
          if (history.vertex_used[w]) continue;
          DfsEdge t{from_idx, maxtoc + 1, g.VertexLabel(from_v),
                    g.GetEdge(fe).label, g.VertexLabel(w)};
          extensions[t].push_back(PDFS{p.gid, from_v, w, fe, &p});
        }
      }
    }
    for (auto& [tuple, child] : extensions) {
      code->Append(tuple);
      Subgraph(code, child);
      code->PopBack();
      if (Done()) return;
    }
  }

  const GraphDatabase& db_;
  GspanOptions options_;
  std::vector<Pattern> patterns_;
};

}  // namespace

Result<std::vector<Pattern>> MineFrequentSubgraphs(const GraphDatabase& db,
                                                   const GspanOptions& options) {
  GspanMiner miner(db, options);
  return miner.Run();
}

}  // namespace pis
