#include "mining/pipeline.h"

#include <algorithm>

#include "mining/feature_selector.h"
#include "mining/gspan.h"

namespace pis {

Result<std::vector<Graph>> MineDiscriminativeFeatures(
    const GraphDatabase& db, int max_fragment_edges,
    double min_support_fraction, double gamma) {
  GraphDatabase skeletons;
  for (const Graph& g : db.graphs()) skeletons.Add(g.Skeleton());
  GspanOptions mine;
  mine.min_support =
      std::max(1, static_cast<int>(min_support_fraction * db.size()));
  mine.max_edges = max_fragment_edges;
  PIS_ASSIGN_OR_RETURN(std::vector<Pattern> patterns,
                       MineFrequentSubgraphs(skeletons, mine));
  FeatureSelectorOptions select;
  select.gamma = gamma;
  PIS_ASSIGN_OR_RETURN(
      std::vector<size_t> selected,
      SelectDiscriminativeFeatures(patterns, db.size(), select));
  std::vector<Graph> features;
  features.reserve(selected.size());
  for (size_t idx : selected) features.push_back(patterns[idx].graph);
  return features;
}

Result<DistanceSpec> DistanceSpecFromName(const std::string& name) {
  if (name == "mutation") return DistanceSpec::EdgeMutation();
  if (name == "linear") return DistanceSpec::EdgeLinear();
  return Status::InvalidArgument("unknown --distance " + name);
}

}  // namespace pis
