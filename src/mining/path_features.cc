#include "mining/path_features.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "canonical/min_dfs.h"
#include "util/logging.h"

namespace pis {

namespace {

// Enumerates simple paths (edge sequences) of length [1, max_edges] from
// each start vertex; each undirected path is visited twice (once per
// direction) and deduplicated by canonical code downstream.
void EnumeratePaths(const Graph& g, int max_edges,
                    const std::function<void(const std::vector<EdgeId>&)>& emit) {
  std::vector<EdgeId> path_edges;
  std::vector<bool> on_path(g.NumVertices(), false);
  std::function<void(VertexId)> extend = [&](VertexId v) {
    if (static_cast<int>(path_edges.size()) >= 1) emit(path_edges);
    if (static_cast<int>(path_edges.size()) >= max_edges) return;
    for (EdgeId e : g.IncidentEdges(v)) {
      VertexId w = g.GetEdge(e).Other(v);
      if (on_path[w]) continue;
      on_path[w] = true;
      path_edges.push_back(e);
      extend(w);
      path_edges.pop_back();
      on_path[w] = false;
    }
  };
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    on_path[v] = true;
    extend(v);
    on_path[v] = false;
  }
}

}  // namespace

Result<std::vector<Pattern>> MinePathFeatures(const GraphDatabase& db,
                                              const PathFeatureOptions& options) {
  if (options.max_edges < options.min_edges || options.min_edges < 1) {
    return Status::InvalidArgument("invalid path length bounds");
  }
  struct Accum {
    Pattern pattern;
    int last_gid = -1;
  };
  std::unordered_map<std::string, Accum> by_key;
  Status failure = Status::OK();
  for (int gid = 0; gid < db.size(); ++gid) {
    const Graph& g = db.at(gid);
    EnumeratePaths(g, options.max_edges, [&](const std::vector<EdgeId>& edges) {
      if (!failure.ok()) return;
      if (static_cast<int>(edges.size()) < options.min_edges) return;
      Graph sub = g.EdgeSubgraph(edges);
      CanonicalOptions copts;
      copts.first_embedding_only = true;
      Result<CanonicalForm> form = MinDfsCode(sub, copts);
      if (!form.ok()) {
        failure = form.status();
        return;
      }
      std::string key = form.value().Key();
      auto [it, inserted] = by_key.try_emplace(key);
      Accum& acc = it->second;
      if (inserted) {
        acc.pattern.code = form.value().code;
        Result<Graph> pg = acc.pattern.code.ToGraph();
        if (!pg.ok()) {
          failure = pg.status();
          return;
        }
        acc.pattern.graph = pg.MoveValue();
      }
      if (acc.last_gid != gid) {
        acc.pattern.support_set.push_back(gid);
        acc.last_gid = gid;
      }
    });
    PIS_RETURN_NOT_OK(failure);
  }
  std::vector<Pattern> out;
  out.reserve(by_key.size());
  for (auto& [key, acc] : by_key) {
    if (acc.pattern.support() < options.min_support) continue;
    out.push_back(std::move(acc.pattern));
  }
  std::sort(out.begin(), out.end(), [](const Pattern& a, const Pattern& b) {
    if (a.num_edges() != b.num_edges()) return a.num_edges() < b.num_edges();
    return a.code.ToKey() < b.code.ToKey();
  });
  return out;
}

}  // namespace pis
