// One-call front door to the feature pipeline every index-building binary
// shares: gSpan over the database's skeletons at a relative minimum
// support, then gIndex discriminative selection. pis_cli build and
// pis_server both call this, so the two binaries can never drift on how an
// index gets built from the same flags. (bench_common keeps its own
// variant: its support rounding differs deliberately to pin the paper
// workloads.)
#ifndef PIS_MINING_PIPELINE_H_
#define PIS_MINING_PIPELINE_H_

#include <string>
#include <vector>

#include "distance/distance_spec.h"
#include "graph/graph.h"
#include "util/status.h"

namespace pis {

/// Mines skeleton features of up to `max_fragment_edges` edges at relative
/// support `min_support_fraction` (truncated to an absolute count, floor
/// 1) and keeps the gIndex-discriminative subset at ratio `gamma`.
Result<std::vector<Graph>> MineDiscriminativeFeatures(
    const GraphDatabase& db, int max_fragment_edges,
    double min_support_fraction, double gamma);

/// Maps the CLI distance name ("mutation" | "linear") to its spec.
Result<DistanceSpec> DistanceSpecFromName(const std::string& name);

}  // namespace pis

#endif  // PIS_MINING_PIPELINE_H_
