// A mined pattern: graph + canonical code + support set.
#ifndef PIS_MINING_PATTERN_H_
#define PIS_MINING_PATTERN_H_

#include <string>
#include <vector>

#include "canonical/dfs_code.h"
#include "graph/graph.h"

namespace pis {

/// One frequent subgraph produced by the miner.
struct Pattern {
  /// Minimum DFS code (canonical).
  DfsCode code;
  /// The pattern graph (vertex ids = DFS indices of `code`).
  Graph graph;
  /// Sorted ids of the database graphs containing the pattern.
  std::vector<int> support_set;

  int support() const { return static_cast<int>(support_set.size()); }
  int num_edges() const { return graph.NumEdges(); }
};

}  // namespace pis

#endif  // PIS_MINING_PATTERN_H_
