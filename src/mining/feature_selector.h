// Discriminative feature selection in the style of gIndex (Yan, Yu & Han,
// SIGMOD'04 — reference [16] of the paper): a frequent pattern is kept only
// if it is substantially more selective than the conjunction of its already
// selected subpatterns.
#ifndef PIS_MINING_FEATURE_SELECTOR_H_
#define PIS_MINING_FEATURE_SELECTOR_H_

#include <vector>

#include "mining/pattern.h"
#include "util/status.h"

namespace pis {

struct FeatureSelectorOptions {
  /// Discriminative ratio γ: pattern p is selected when
  /// |∩ supports(selected subpatterns of p)| >= gamma * |support(p)|.
  /// γ = 1 keeps everything frequent; larger γ keeps fewer features.
  double gamma = 1.5;
  /// Always keep patterns with at most this many edges regardless of γ
  /// (single edges guarantee every query decomposes into indexed
  /// fragments).
  int always_keep_max_edges = 1;
  /// Cap on selected features, 0 = unlimited. Patterns are considered in
  /// ascending size so the cap favors small, broadly reusable features.
  size_t max_features = 0;
};

/// Returns indexes into `patterns` of the selected features, in ascending
/// pattern-size order. `patterns` must come from MineFrequentSubgraphs on a
/// database of `db_size` graphs.
Result<std::vector<size_t>> SelectDiscriminativeFeatures(
    const std::vector<Pattern>& patterns, int db_size,
    const FeatureSelectorOptions& options = {});

}  // namespace pis

#endif  // PIS_MINING_FEATURE_SELECTOR_H_
