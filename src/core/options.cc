// Intentionally empty: PisOptions is a plain aggregate. This TU anchors the
// header in the build so misuse surfaces as compile errors early.
#include "core/options.h"
