#include "core/selectivity.h"

#include <algorithm>

#include "util/logging.h"

namespace pis {

double ComputeSelectivity(const std::vector<double>& found_distances, int db_size,
                          double sigma, double lambda) {
  if (db_size <= 0) return 0.0;  // empty database: nothing to discriminate
  PIS_DCHECK(static_cast<int>(found_distances.size()) <= db_size);
  const double cutoff = lambda * sigma;
  double total = 0;
  for (double d : found_distances) total += std::min(d, cutoff);
  total += static_cast<double>(db_size - found_distances.size()) * cutoff;
  return total / static_cast<double>(db_size);
}

}  // namespace pis
