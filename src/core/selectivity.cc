#include "core/selectivity.h"

#include <algorithm>

#include "util/logging.h"

namespace pis {

double ComputeSelectivity(const std::vector<double>& found_distances, int db_size,
                          double sigma, double lambda) {
  if (db_size <= 0) return 0.0;  // empty database: nothing to discriminate
  PIS_DCHECK(static_cast<int>(found_distances.size()) <= db_size);
  const double cutoff = lambda * sigma;
  // Sum in sorted order: callers pass distances in whatever order their
  // range-query aggregation produced (hash-map iteration, per-shard merge),
  // and the selectivity must not depend on it — the sharded engine's
  // equivalence guarantee needs bit-identical weights.
  std::vector<double> sorted = found_distances;
  std::sort(sorted.begin(), sorted.end());
  double total = 0;
  for (double d : sorted) total += std::min(d, cutoff);
  total += static_cast<double>(db_size - sorted.size()) * cutoff;
  return total / static_cast<double>(db_size);
}

}  // namespace pis
