#include "core/query_fragments.h"

#include <algorithm>

#include "index/fragment_enum.h"

namespace pis {

Result<std::vector<QueryFragment>> EnumerateIndexedQueryFragments(
    const FragmentIndex& index, const Graph& query, size_t max_fragments) {
  FragmentEnumOptions enum_opts;
  enum_opts.min_edges = index.options().min_fragment_edges;
  enum_opts.max_edges = index.options().max_fragment_edges;
  std::vector<QueryFragment> fragments;
  Status failure = Status::OK();
  EnumerateConnectedEdgeSubgraphs(query, enum_opts,
                                  [&](const std::vector<EdgeId>& subset) {
    std::vector<VertexId> vertex_map;
    Graph sub = query.EdgeSubgraph(subset, &vertex_map);
    Result<PreparedFragment> prepared = index.Prepare(sub);
    if (!prepared.ok()) {
      if (prepared.status().code() == StatusCode::kNotFound) return true;
      failure = prepared.status();
      return false;
    }
    QueryFragment qf;
    qf.prepared = prepared.MoveValue();
    qf.vertices = std::move(vertex_map);
    std::sort(qf.vertices.begin(), qf.vertices.end());
    fragments.push_back(std::move(qf));
    return true;
  });
  PIS_RETURN_NOT_OK(failure);
  if (max_fragments > 0 && fragments.size() > max_fragments) {
    // Keep the largest fragments: they carry the pruning power.
    std::stable_sort(fragments.begin(), fragments.end(),
                     [](const QueryFragment& a, const QueryFragment& b) {
                       return a.prepared.num_edges > b.prepared.num_edges;
                     });
    fragments.resize(max_fragments);
  }
  return fragments;
}

}  // namespace pis
