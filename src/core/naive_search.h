// Naive SSSD baseline (paper §2): scan the whole database and verify every
// graph. The correctness oracle for the other engines.
#ifndef PIS_CORE_NAIVE_SEARCH_H_
#define PIS_CORE_NAIVE_SEARCH_H_

#include <vector>

#include "core/stats.h"
#include "core/verifier.h"
#include "distance/distance_spec.h"
#include "graph/graph.h"

namespace pis {

struct SearchResult {
  /// Ids of graphs with d(Q, G) <= sigma, ascending.
  std::vector<int> answers;
  /// Candidate ids that reached verification (the filtering output; equals
  /// the whole database for naive search).
  std::vector<int> candidates;
  QueryStats stats;
};

/// Verifies every database graph against the query. Unlike the indexed
/// engines (which reject empty queries as InvalidArgument), this cannot
/// fail: an empty query trivially superimposes onto everything at distance
/// 0, so every graph is returned.
SearchResult NaiveSearch(const GraphDatabase& db, const Graph& query,
                         const DistanceSpec& spec, double sigma);

}  // namespace pis

#endif  // PIS_CORE_NAIVE_SEARCH_H_
