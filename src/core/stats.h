// Per-query statistics reported by the search engines; the benchmark
// harness aggregates these into the paper's figures.
#ifndef PIS_CORE_STATS_H_
#define PIS_CORE_STATS_H_

#include <cstddef>
#include <string>

namespace pis {

struct QueryStats {
  /// Indexed fragments enumerated in the query (Algorithm 2 lines 3-4).
  size_t fragments_enumerated = 0;
  /// Fragments surviving the ε selectivity filter (line 5).
  size_t fragments_kept = 0;
  /// Range queries issued against the index.
  size_t range_queries = 0;
  /// Fragments in the selected partition P (line 20).
  size_t partition_size = 0;
  /// Total selectivity weight of P.
  double partition_weight = 0;
  /// |CQ| after the per-fragment intersections (line 17).
  size_t candidates_after_intersection = 0;
  /// |CQ| after partition lower-bound pruning (lines 21-23) — the
  /// candidate count the paper plots (Yp).
  size_t candidates_final = 0;
  /// Number of answers after verification.
  size_t answers = 0;
  /// Graphs probed against the superimposed sketch (0 when the prefilter
  /// is off or no fragments were enumerated).
  size_t sketch_checks = 0;
  /// Probed graphs discarded before any range-query result was consulted.
  /// Every one of them was provably impossible, so these counters are the
  /// only ones a sketch-on run changes.
  size_t sketch_pruned = 0;
  /// False drops of the superimposed code (Knuutila et al.): graphs that
  /// PASSED the sketch probe but were then eliminated by the pass-1
  /// intersection anyway — probes the sketch spent bits on without pruning
  /// anything. false_drop_rate = sketch_false_drops / (sketch_checks -
  /// sketch_pruned). Zero when the sketch is off; drifts with database
  /// composition, which is why it is surfaced live and not just at bench
  /// time.
  size_t sketch_false_drops = 0;
  /// 1 when the query's fragment enumeration was served from a SearchBatch
  /// enumeration cache instead of recomputed (0 outside batches). Like the
  /// timing fields this is schedule-dependent — two duplicate queries
  /// racing on different workers may both miss — so determinism checks
  /// must not compare it.
  size_t enum_cache_hits = 0;
  double filter_seconds = 0;
  double verify_seconds = 0;
  /// Per-stage wall time inside the filter (all schedule-dependent, like
  /// filter_seconds — determinism checks must not compare them). The
  /// observability layer turns these into trace spans and latency
  /// histograms; stages are disjoint except selectivity_seconds, which is
  /// the portion of pass1_seconds spent in ComputeSelectivity.
  double sketch_seconds = 0;       ///< superimposed-sketch probe
  double pass1_seconds = 0;        ///< range queries + ε-filter/intersection
  double selectivity_seconds = 0;  ///< ComputeSelectivity within pass 1
  double partition_seconds = 0;    ///< overlap graph + partition selection
  double pass2_seconds = 0;        ///< partition lower-bound pruning

  /// Adds every counter of `other` into this (batch aggregation).
  void Accumulate(const QueryStats& other);

  std::string ToString() const;
};

}  // namespace pis

#endif  // PIS_CORE_STATS_H_
