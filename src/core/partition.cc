#include "core/partition.h"

#include <algorithm>
#include <functional>
#include <numeric>

#include "util/logging.h"

namespace pis {

namespace {

// Sorted-vector intersection test.
bool VerticesIntersect(const std::vector<VertexId>& a,
                       const std::vector<VertexId>& b) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

}  // namespace

OverlapGraph::OverlapGraph(const std::vector<WeightedFragment>& fragments) {
  int n = static_cast<int>(fragments.size());
  weights_.resize(n);
  adjacency_.assign(n, {});
  for (int i = 0; i < n; ++i) {
    weights_[i] = fragments[i].weight;
    PIS_DCHECK(std::is_sorted(fragments[i].vertices.begin(),
                              fragments[i].vertices.end()));
  }
  // The i-ascending/j-ascending double loop appends to every adjacency list
  // in increasing order, so each list is born sorted — Adjacent binary
  // searches it (it sits in the inner loop of EnhancedGreedyMwis's DFS,
  // where a linear scan made dense overlap graphs superlinear).
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (VerticesIntersect(fragments[i].vertices, fragments[j].vertices)) {
        adjacency_[i].push_back(j);
        adjacency_[j].push_back(i);
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    PIS_DCHECK(std::is_sorted(adjacency_[i].begin(), adjacency_[i].end()));
  }
}

bool OverlapGraph::Adjacent(int a, int b) const {
  const std::vector<int>& adj = adjacency_[a];
  return std::binary_search(adj.begin(), adj.end(), b);
}

bool OverlapGraph::IsIndependent(const std::vector<int>& set) const {
  for (size_t i = 0; i < set.size(); ++i) {
    for (size_t j = i + 1; j < set.size(); ++j) {
      if (Adjacent(set[i], set[j])) return false;
    }
  }
  return true;
}

double OverlapGraph::TotalWeight(const std::vector<int>& set) const {
  double total = 0;
  for (int v : set) total += weights_[v];
  return total;
}

std::vector<int> GreedyMwis(const OverlapGraph& graph) {
  std::vector<int> selected;
  std::vector<bool> alive(graph.size(), true);
  while (true) {
    int best = -1;
    for (int v = 0; v < graph.size(); ++v) {
      if (!alive[v]) continue;
      if (best < 0 || graph.weight(v) > graph.weight(best)) best = v;
    }
    if (best < 0) break;
    selected.push_back(best);
    alive[best] = false;
    for (int nb : graph.neighbors(best)) alive[nb] = false;
  }
  std::sort(selected.begin(), selected.end());
  return selected;
}

std::vector<int> EnhancedGreedyMwis(const OverlapGraph& graph, int k) {
  PIS_CHECK(k >= 1);
  std::vector<int> selected;
  std::vector<bool> alive(graph.size(), true);
  // One round: maximum-weight independent set of size <= k among alive
  // vertices, found by bounded DFS enumeration.
  std::vector<int> best_set;
  double best_weight;
  std::vector<int> current;
  std::function<void(int, double)> enumerate = [&](int start, double weight) {
    if (weight > best_weight) {
      best_weight = weight;
      best_set = current;
    }
    if (static_cast<int>(current.size()) >= k) return;
    for (int v = start; v < graph.size(); ++v) {
      if (!alive[v]) continue;
      bool independent = true;
      for (int s : current) {
        if (graph.Adjacent(s, v)) {
          independent = false;
          break;
        }
      }
      if (!independent) continue;
      current.push_back(v);
      enumerate(v + 1, weight + graph.weight(v));
      current.pop_back();
    }
  };
  while (true) {
    best_set.clear();
    best_weight = 0;
    current.clear();
    enumerate(0, 0);
    if (best_set.empty()) break;
    for (int v : best_set) {
      selected.push_back(v);
      alive[v] = false;
      for (int nb : graph.neighbors(v)) alive[nb] = false;
    }
  }
  std::sort(selected.begin(), selected.end());
  return selected;
}

namespace {

// Branch and bound: branch on the highest-weight undecided vertex; bound by
// the sum of undecided weights.
struct ExactSolver {
  const OverlapGraph& graph;
  std::vector<int> best_set;
  double best_weight = -1;
  std::vector<int> current;
  std::vector<int> excluded;  // exclusion depth marker, -1 = free

  explicit ExactSolver(const OverlapGraph& g) : graph(g) {
    excluded.assign(g.size(), -1);
  }

  void Solve(double weight) {
    double remaining = 0;
    int pivot = -1;
    for (int v = 0; v < graph.size(); ++v) {
      if (excluded[v] >= 0) continue;
      remaining += graph.weight(v);
      if (pivot < 0 || graph.weight(v) > graph.weight(pivot)) pivot = v;
    }
    if (weight > best_weight) {
      best_weight = weight;
      best_set = current;
    }
    if (pivot < 0 || weight + remaining <= best_weight) return;
    int depth = static_cast<int>(current.size());
    // Branch 1: include pivot.
    std::vector<int> newly_excluded = {pivot};
    excluded[pivot] = depth;
    for (int nb : graph.neighbors(pivot)) {
      if (excluded[nb] < 0) {
        excluded[nb] = depth;
        newly_excluded.push_back(nb);
      }
    }
    current.push_back(pivot);
    Solve(weight + graph.weight(pivot));
    current.pop_back();
    for (int v : newly_excluded) excluded[v] = -1;
    // Branch 2: exclude pivot.
    excluded[pivot] = depth;
    Solve(weight);
    excluded[pivot] = -1;
  }
};

}  // namespace

std::vector<int> ExactMwis(const OverlapGraph& graph) {
  ExactSolver solver(graph);
  solver.Solve(0);
  std::sort(solver.best_set.begin(), solver.best_set.end());
  return solver.best_set;
}

std::vector<int> SingleBestMwis(const OverlapGraph& graph) {
  int best = -1;
  for (int v = 0; v < graph.size(); ++v) {
    if (best < 0 || graph.weight(v) > graph.weight(best)) best = v;
  }
  if (best < 0) return {};
  return {best};
}

std::vector<int> SelectPartition(const OverlapGraph& graph,
                                 PartitionAlgorithm algorithm, int enhanced_k) {
  switch (algorithm) {
    case PartitionAlgorithm::kGreedy:
      return GreedyMwis(graph);
    case PartitionAlgorithm::kEnhancedGreedy:
      return EnhancedGreedyMwis(graph, enhanced_k);
    case PartitionAlgorithm::kExact:
      return ExactMwis(graph);
    case PartitionAlgorithm::kSingleBest:
      return SingleBestMwis(graph);
  }
  return {};
}

}  // namespace pis
