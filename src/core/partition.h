// Partition selection: the overlapping-relation graph and maximum weighted
// independent set heuristics of paper §5 (Algorithm 1, EnhancedGreedy(k),
// plus an exact solver for tests and ablations).
#ifndef PIS_CORE_PARTITION_H_
#define PIS_CORE_PARTITION_H_

#include <vector>

#include "core/options.h"
#include "graph/graph.h"
#include "util/status.h"

namespace pis {

/// A candidate partition member: an indexed query fragment with its
/// selectivity weight and the query vertices it covers.
struct WeightedFragment {
  double weight = 0;
  /// Sorted query vertex ids covered by the fragment. Two fragments overlap
  /// when these intersect (Definition 3 requires vertex-disjointness).
  std::vector<VertexId> vertices;
};

/// \brief The overlapping-relation graph Q̃ (paper Figure 6).
class OverlapGraph {
 public:
  explicit OverlapGraph(const std::vector<WeightedFragment>& fragments);

  int size() const { return static_cast<int>(adjacency_.size()); }
  double weight(int v) const { return weights_[v]; }
  const std::vector<int>& neighbors(int v) const { return adjacency_[v]; }
  bool Adjacent(int a, int b) const;

  /// True iff `set` is an independent set.
  bool IsIndependent(const std::vector<int>& set) const;
  double TotalWeight(const std::vector<int>& set) const;

 private:
  std::vector<double> weights_;
  std::vector<std::vector<int>> adjacency_;
};

/// Algorithm 1 (Greedy): O(cn) with optimality ratio 1/c.
std::vector<int> GreedyMwis(const OverlapGraph& graph);

/// EnhancedGreedy(k): picks a maximum-weight independent k-set per round;
/// optimality ratio c/k in O(c k n^k). k >= 1 (k = 1 equals Greedy).
std::vector<int> EnhancedGreedyMwis(const OverlapGraph& graph, int k);

/// Exact MWIS by branch and bound. Exponential: intended for the small
/// overlap graphs of tests/ablations (size <= ~40 recommended).
std::vector<int> ExactMwis(const OverlapGraph& graph);

/// Single heaviest vertex (ablation baseline: "no partition, best fragment
/// only").
std::vector<int> SingleBestMwis(const OverlapGraph& graph);

/// Dispatches on the configured algorithm.
std::vector<int> SelectPartition(const OverlapGraph& graph,
                                 PartitionAlgorithm algorithm, int enhanced_k);

}  // namespace pis

#endif  // PIS_CORE_PARTITION_H_
