#include "core/filter_impl.h"

#include <algorithm>
#include <exception>
#include <string>
#include <utility>
#include <vector>

#include "canonical/min_dfs.h"
#include "core/partition.h"
#include "core/query_fragments.h"
#include "core/selectivity.h"
#include "graph/io.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace pis::internal {

namespace {

/// Looks the query up in the batch enumeration cache. On a hit, copies the
/// memoized fragment list into `result` (the copy happens outside the
/// cache lock — only the shared_ptr is fetched under it) and returns true.
/// On a miss, leaves the composite cache key in `key` so the caller can
/// insert its enumeration; an unkeyable query (MinDfsCode rejects it, e.g.
/// disconnected) leaves `key` empty and the caller skips the insert too.
bool LookUpEnumCache(QueryEnumCache* cache, const Graph& query,
                     FilterResult* result, std::string* key) {
  CanonicalOptions canon_opts;
  canon_opts.use_labels = true;
  canon_opts.first_embedding_only = true;
  Result<CanonicalForm> canon = MinDfsCode(query, canon_opts);
  if (!canon.ok()) return false;
  // Composite key: canonical code (the isomorphism class) plus the exact
  // encoding (distinguishes renumbered twins — see QueryEnumCache docs).
  // '\n' cannot appear in a code key, so the join is unambiguous.
  *key = canon.value().Key() + '\n' + FormatGraph(query, 0);
  std::shared_ptr<const std::vector<QueryFragment>> cached;
  {
    MutexLock lock(&cache->mu);
    auto it = cache->by_key.find(*key);
    if (it != cache->by_key.end()) cached = it->second;
  }
  if (cached == nullptr) return false;
  result->fragments = *cached;
  result->stats.enum_cache_hits = 1;
  return true;
}

}  // namespace

Status MinDistancePerGraph(const FragmentIndex& index,
                           const PreparedFragment& fragment, double sigma,
                           std::unordered_map<int, double>* out) {
  out->clear();
  return index.RangeQuery(fragment, sigma, [&](int gid, double d) {
    auto [it, inserted] = out->try_emplace(gid, d);
    if (!inserted && d < it->second) it->second = d;
  });
}

Status RunPisFilterCore(int db_size, const std::unordered_set<int>* tombstones,
                        const PisOptions& options,
                        const FragmentDistFn& fragment_dists,
                        const SketchPruneFn& sketch_prune,
                        FilterResult* resultp) {
  FilterResult& result = *resultp;
  const double sigma = options.sigma;
  result.stats.fragments_enumerated = result.fragments.size();

  // Pass 1 (Algorithm 2 lines 6-18): one range query per fragment; keep CQ
  // and the selectivity. The per-graph maps of fragments that survive the
  // ε-filter (line 5) are retained for pass 2 — the partition can only draw
  // from kept fragments, so their range queries never re-run. Maps of
  // dropped fragments are discarded to bound memory by `fragments_kept`.
  // Tombstoned slots start dead: they must not surface as candidates even
  // when the query enumerates no fragments (no pruning), and the
  // selectivity denominator below is the count of *live* graphs — both
  // exactly as in an index rebuilt without the removed graphs.
  std::vector<char> alive(db_size, 1);
  size_t alive_count = db_size;
  if (tombstones != nullptr) {
    for (int gid : *tombstones) {
      if (gid >= 0 && gid < db_size && alive[gid]) {
        alive[gid] = 0;
        --alive_count;
      }
    }
  }
  const int live_size = static_cast<int>(alive_count);

  // Superimposed-sketch prefilter: discard graphs whose bit codes are
  // missing an enumerated class. Placed after live_size is fixed (the
  // selectivity denominator must count every live graph) and before pass 1.
  // A sketch-failed graph lacks at least one enumerated class's fragments,
  // so that class's range-query result cannot contain it and the pass-1
  // intersection would kill it regardless — pruning here changes no result
  // field and no shared counter, it only skips dead per-graph work.
  if (options.sketch_enabled && sketch_prune != nullptr &&
      !result.fragments.empty()) {
    Timer sketch_timer;
    sketch_prune(result.fragments, &alive, &alive_count, &result.stats);
    result.stats.sketch_seconds = sketch_timer.Seconds();
  }
  // Sketch survivors at this point; everything pass 1 eliminates below was
  // a false drop of the superimposed code (it passed the probe yet could
  // not survive the exact intersection).
  const size_t sketch_survivors =
      result.stats.sketch_checks > 0 ? alive_count : 0;

  Timer pass1_timer;
  std::vector<double> selectivities(result.fragments.size(), 0.0);
  std::vector<int> kept;  // positions into result.fragments
  std::unordered_map<int, std::unordered_map<int, double>> kept_dists;
  std::unordered_map<int, double> dist;
  std::vector<double> found;
  for (size_t fi = 0; fi < result.fragments.size(); ++fi) {
    dist.clear();
    PIS_RETURN_NOT_OK(fragment_dists(fi, sigma, &dist, &result.stats));
    found.clear();
    found.reserve(dist.size());
    for (const auto& [gid, d] : dist) found.push_back(d);
    Timer selectivity_timer;
    selectivities[fi] =
        ComputeSelectivity(found, live_size, sigma, options.lambda);
    result.stats.selectivity_seconds += selectivity_timer.Seconds();
    // CQ <- CQ ∩ T (line 17). `dist` holds live graphs only, so covering
    // every live graph means nothing can be dropped.
    if (dist.size() < static_cast<size_t>(live_size)) {
      for (int gid = 0; gid < db_size; ++gid) {
        if (alive[gid] && dist.count(gid) == 0) {
          alive[gid] = 0;
          --alive_count;
        }
      }
    }
    if (selectivities[fi] > options.epsilon) {
      kept.push_back(static_cast<int>(fi));
      kept_dists.emplace(static_cast<int>(fi), std::move(dist));
      dist = {};
    }
  }
  result.stats.candidates_after_intersection = alive_count;
  result.stats.fragments_kept = kept.size();
  result.stats.pass1_seconds = pass1_timer.Seconds();
  if (sketch_survivors > alive_count) {
    result.stats.sketch_false_drops = sketch_survivors - alive_count;
  }
  result.selectivities = std::move(selectivities);

  // Overlapping-relation graph and the partition (lines 19-20).
  Timer partition_timer;
  std::vector<WeightedFragment> weighted;
  weighted.reserve(kept.size());
  for (int fi : kept) {
    WeightedFragment wf;
    wf.weight = result.selectivities[fi];
    wf.vertices = result.fragments[fi].vertices;
    weighted.push_back(std::move(wf));
  }
  OverlapGraph overlap(weighted);
  std::vector<int> partition_local = SelectPartition(
      overlap, options.partition_algorithm, options.enhanced_k);
  result.partition.reserve(partition_local.size());
  for (int pi : partition_local) result.partition.push_back(kept[pi]);
  result.stats.partition_size = result.partition.size();
  result.stats.partition_weight = overlap.TotalWeight(partition_local);
  result.stats.partition_seconds = partition_timer.Seconds();

  // Pass 2 (lines 21-23): prune by the summed lower bound over the
  // partition, replaying the cached pass-1 results.
  Timer pass2_timer;
  std::vector<double> lower_bound(db_size, 0.0);
  for (int fi : result.partition) {
    const std::unordered_map<int, double>& part_dist = kept_dists.at(fi);
    for (int gid = 0; gid < db_size; ++gid) {
      if (!alive[gid]) continue;
      auto it = part_dist.find(gid);
      if (it == part_dist.end()) {
        // Structure violation (already impossible after line 17, but kept
        // defensive): the bound is unbounded.
        alive[gid] = 0;
        --alive_count;
      } else {
        lower_bound[gid] += it->second;
        if (lower_bound[gid] > sigma) {
          alive[gid] = 0;
          --alive_count;
        }
      }
    }
  }

  result.candidates.reserve(alive_count);
  for (int gid = 0; gid < db_size; ++gid) {
    if (alive[gid]) result.candidates.push_back(gid);
  }
  result.stats.candidates_final = result.candidates.size();
  result.stats.pass2_seconds = pass2_timer.Seconds();
  return Status::OK();
}

Result<FilterResult> RunPisFilter(const FragmentIndex& enum_index, int db_size,
                                  const std::unordered_set<int>* tombstones,
                                  const PisOptions& options, const Graph& query,
                                  const FragmentQueryFn& query_fn,
                                  QueryEnumCache* enum_cache,
                                  const SketchProbeFactory& sketch_factory) {
  if (query.Empty()) {
    return Status::InvalidArgument("query graph is empty");
  }
  Timer timer;
  FilterResult result;

  std::string cache_key;
  const bool cached = enum_cache != nullptr &&
                      LookUpEnumCache(enum_cache, query, &result, &cache_key);
  if (!cached) {
    PIS_ASSIGN_OR_RETURN(
        result.fragments,
        EnumerateIndexedQueryFragments(enum_index, query,
                                       options.max_query_fragments));
    if (enum_cache != nullptr && !cache_key.empty()) {
      auto shared = std::make_shared<const std::vector<QueryFragment>>(
          result.fragments);
      MutexLock lock(&enum_cache->mu);
      // First writer wins on a race; both enumerated the same thing.
      enum_cache->by_key.emplace(std::move(cache_key), std::move(shared));
    }
  }

  auto fragment_dists = [&](size_t fi, double sigma,
                            std::unordered_map<int, double>* dist,
                            QueryStats* stats) -> Status {
    return query_fn(result.fragments[fi].prepared, sigma, dist, stats);
  };
  SketchPruneFn sketch_prune;
  if (sketch_factory != nullptr) {
    sketch_prune = [&sketch_factory, db_size](
                       const std::vector<QueryFragment>& fragments,
                       std::vector<char>* alive, size_t* alive_count,
                       QueryStats* stats) {
      std::vector<int> class_ids;
      class_ids.reserve(fragments.size());
      for (const QueryFragment& qf : fragments) {
        class_ids.push_back(qf.prepared.class_id);
      }
      std::sort(class_ids.begin(), class_ids.end());
      class_ids.erase(std::unique(class_ids.begin(), class_ids.end()),
                      class_ids.end());
      SketchProbe probe = sketch_factory(class_ids);
      if (probe == nullptr) return;
      for (int gid = 0; gid < db_size; ++gid) {
        if (!(*alive)[gid]) continue;
        ++stats->sketch_checks;
        if (!probe(gid)) {
          (*alive)[gid] = 0;
          --(*alive_count);
          ++stats->sketch_pruned;
        }
      }
    };
  }
  PIS_RETURN_NOT_OK(RunPisFilterCore(db_size, tombstones, options,
                                     fragment_dists, sketch_prune, &result));
  result.stats.filter_seconds = timer.Seconds();
  return result;
}

BatchSearchResult RunSearchBatch(
    size_t num_queries, int num_threads,
    const std::function<Result<SearchResult>(size_t)>& run_query) {
  Timer timer;
  BatchSearchResult batch;
  batch.results.assign(num_queries,
                       Result<SearchResult>(Status::Internal("query not run")));
  ParallelFor(num_queries, num_threads, [&](size_t qi) {
    // ParallelFor requires that exceptions never escape the body; Search is
    // Status-based, so anything thrown below it is a defect we surface as a
    // per-query internal error rather than a process abort.
    try {
      batch.results[qi] = run_query(qi);
    } catch (const std::exception& e) {
      batch.results[qi] = Status::Internal(std::string("uncaught: ") + e.what());
    } catch (...) {
      batch.results[qi] = Status::Internal("uncaught non-standard exception");
    }
  });
  for (const Result<SearchResult>& r : batch.results) {
    if (r.ok()) {
      ++batch.succeeded;
      batch.total_stats.Accumulate(r.value().stats);
    } else {
      ++batch.failed;
    }
  }
  batch.wall_seconds = timer.Seconds();
  return batch;
}

}  // namespace pis::internal
