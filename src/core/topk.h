// Top-k substructure search: the k database graphs with the smallest
// minimum superimposed distance to the query. Not in the original paper's
// evaluation (it fixes σ); implemented as the natural extension via
// iterative σ-expansion over the PIS filter, with distances memoized across
// rounds.
#ifndef PIS_CORE_TOPK_H_
#define PIS_CORE_TOPK_H_

#include <utility>
#include <vector>

#include "core/pis.h"
#include "util/status.h"

namespace pis {

struct TopKOptions {
  int k = 10;
  /// First search radius; 0 starts with exact (labeled) containment.
  /// Must be >= 0.
  double initial_sigma = 0.0;
  /// Radius growth per round when fewer than k answers were found.
  double growth = 2.0;
  /// Additive step used when initial_sigma is 0 (growth on 0 stalls).
  /// Must be > 0 — a non-positive step would pin σ at 0 forever.
  double first_step = 1.0;
  /// Hard stop: graphs farther than this are never reported. Must be
  /// >= initial_sigma.
  double max_sigma = 64.0;
  /// Base PIS options (partition algorithm etc.); sigma is overridden.
  PisOptions pis;
};

struct TopKResult {
  /// (graph id, distance), ascending by distance then id; size <= k
  /// (smaller when fewer than k graphs are within max_sigma).
  std::vector<std::pair<int, double>> results;
  /// Rounds of σ-expansion used.
  int rounds = 0;
  /// Final radius searched.
  double final_sigma = 0.0;
  /// Total candidate verifications performed (memoized across rounds).
  size_t verifications = 0;
};

/// Finds the k nearest graphs under the index's distance spec. Ties at the
/// k-th distance are broken by graph id (deterministic).
Result<TopKResult> TopKSearch(const GraphDatabase& db, const FragmentIndex& index,
                              const Graph& query, const TopKOptions& options = {});

}  // namespace pis

#endif  // PIS_CORE_TOPK_H_
