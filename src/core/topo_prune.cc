#include "core/topo_prune.h"

#include <algorithm>
#include <unordered_set>

#include "core/query_fragments.h"
#include "util/logging.h"
#include "util/timer.h"

namespace pis {

TopoPruneEngine::TopoPruneEngine(const GraphDatabase* db,
                                 const FragmentIndex* index)
    : db_(db), index_(index) {
  PIS_CHECK(db_ != nullptr && index_ != nullptr);
}

Result<std::vector<int>> TopoPruneEngine::Filter(const Graph& query,
                                                 QueryStats* stats) const {
  if (query.Empty()) {
    return Status::InvalidArgument("query graph is empty");
  }
  Timer timer;
  PIS_ASSIGN_OR_RETURN(std::vector<QueryFragment> fragments,
                       EnumerateIndexedQueryFragments(*index_, query));
  // Distinct classes only: containment is a class property.
  std::unordered_set<int> class_ids;
  for (const QueryFragment& qf : fragments) {
    class_ids.insert(qf.prepared.class_id);
  }
  std::vector<char> alive(db_->size(), 1);
  size_t alive_count = db_->size();
  // Tombstoned graphs stay listed in containing_graphs() until a rebuild;
  // start them dead so they never reach verification.
  for (int gid : index_->tombstones()) {
    if (gid >= 0 && gid < db_->size() && alive[gid]) {
      alive[gid] = 0;
      --alive_count;
    }
  }
  for (int class_id : class_ids) {
    const std::vector<int>& containing =
        index_->class_at(class_id).containing_graphs();
    std::vector<char> keep(db_->size(), 0);
    for (int gid : containing) keep[gid] = 1;
    for (int gid = 0; gid < db_->size(); ++gid) {
      if (alive[gid] && !keep[gid]) {
        alive[gid] = 0;
        --alive_count;
      }
    }
    if (alive_count == 0) break;
  }
  std::vector<int> candidates;
  candidates.reserve(alive_count);
  for (int gid = 0; gid < db_->size(); ++gid) {
    if (alive[gid]) candidates.push_back(gid);
  }
  if (stats != nullptr) {
    stats->fragments_enumerated = fragments.size();
    stats->range_queries = class_ids.size();
    stats->candidates_after_intersection = candidates.size();
    stats->candidates_final = candidates.size();
    stats->filter_seconds = timer.Seconds();
  }
  return candidates;
}

Result<SearchResult> TopoPruneEngine::Search(const Graph& query,
                                             double sigma) const {
  SearchResult result;
  PIS_ASSIGN_OR_RETURN(result.candidates, Filter(query, &result.stats));
  VerifyResult verified = VerifyCandidates(*db_, query, result.candidates,
                                           index_->options().spec, sigma);
  result.answers = std::move(verified.answers);
  result.stats.answers = result.answers.size();
  result.stats.verify_seconds = verified.seconds;
  return result;
}

}  // namespace pis
