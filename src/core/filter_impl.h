// Shared implementation core of the PIS filtering phase (Algorithm 2) and
// the batched-search driver, parameterized over how one fragment's range
// query is answered. PisEngine plugs in a single monolithic index;
// ShardedPisEngine fans the query across per-shard indexes and merges. Both
// engines therefore run byte-identical filtering logic — the equivalence
// guarantee of the sharded engine falls out by construction.
//
// Internal header: not exported through pis.h.
#ifndef PIS_CORE_FILTER_IMPL_H_
#define PIS_CORE_FILTER_IMPL_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/options.h"
#include "core/pis.h"
#include "core/query_fragments.h"
#include "index/fragment_index.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace pis::internal {

/// Per-batch memo of query-fragment enumeration, shared by the workers of
/// one SearchBatch call (ROADMAP "duplicate queries" lever). Keyed by the
/// canonical minimum DFS code of the query COMBINED with its exact
/// serialized encoding: a hit strictly isomorphism-keyed on the code alone
/// would let a renumbered twin inherit a foreign fragment list, permuting
/// fragment order and vertex sets — answers would stay exact (verification
/// runs on the real query), but selectivity-tie partition choices could
/// drift and the batch would no longer equal a sequential Search loop
/// counter for counter. With the composite key, identical repeats of EVERY
/// distinct encoding hit (including repeats of each renumbered twin), and
/// distinct encodings never share an entry. The mutex guards only the map;
/// entries are immutable shared_ptrs copied out before use, so workers
/// never hold the lock across fragment-vector copies.
struct QueryEnumCache {
  Mutex mu;
  std::unordered_map<std::string,
                     std::shared_ptr<const std::vector<QueryFragment>>>
      by_key PIS_GUARDED_BY(mu);
};

/// Answers one fragment's range query: fills `min_dist` with the per-graph
/// minimum distance over all matches within `sigma` (Eq. 3), keyed by
/// global graph id, and adds the number of physical index queries issued to
/// `stats->range_queries`. `min_dist` arrives empty.
using FragmentQueryFn = std::function<Status(
    const PreparedFragment& fragment, double sigma,
    std::unordered_map<int, double>* min_dist, QueryStats* stats)>;

/// Runs one range query against a single index and aggregates the per-graph
/// minimum distance (Algorithm 2 lines 10-16). The building block of every
/// FragmentQueryFn.
Status MinDistancePerGraph(const FragmentIndex& index,
                           const PreparedFragment& fragment, double sigma,
                           std::unordered_map<int, double>* out);

/// Superimposed-sketch probe: true unless graph `gid` provably lacks a
/// fragment in some enumerated class (see index/graph_sketch.h). A false
/// return licenses pruning before any range query runs — soundness is the
/// probe's contract.
using SketchProbe = std::function<bool(int gid)>;
/// Builds the probe for one query from its enumerated classes' superimposed
/// mask. Engines bind their index's sketch here (per-shard rows for the
/// sharded engine); returning a null probe skips the prefilter for this
/// query (e.g. a shard without a sketch).
using SketchProbeFactory =
    std::function<SketchProbe(const std::vector<int>& class_ids)>;

/// Answers the range query of the fragment at `fragment_pos` (a position
/// into the pre-enumerated fragment list) during a RunPisFilterCore run.
/// Engines wrap their FragmentQueryFn over the prepared fragment; the
/// cluster router instead moves in per-shard maps merged from remote shard
/// servers. `min_dist` arrives empty, keyed by global graph id on return.
using FragmentDistFn =
    std::function<Status(size_t fragment_pos, double sigma,
                         std::unordered_map<int, double>* min_dist,
                         QueryStats* stats)>;

/// Applies the superimposed-sketch prefilter during a RunPisFilterCore run:
/// clears alive[] slots whose graphs provably lack an enumerated class,
/// decrementing `alive_count` and recording stats->sketch_checks /
/// sketch_pruned. Invoked only under options.sketch_enabled with a
/// non-empty fragment list, after the live selectivity denominator is fixed
/// and before pass 1 — exactly the window where pruning is free of result
/// drift.
using SketchPruneFn = std::function<void(
    const std::vector<QueryFragment>& fragments, std::vector<char>* alive,
    size_t* alive_count, QueryStats* stats)>;

/// The post-enumeration core of Algorithm 2: pass-1 ε-filter +
/// intersection, overlap-graph partition, and pass-2 summed-lower-bound
/// pruning, over `result->fragments` which must already hold the enumerated
/// query fragments (RunPisFilter fills them locally; the cluster router
/// receives them from a shard server, which enumerated against the
/// identical frozen catalog). Fills every stats counter except
/// enum_cache_hits and the timing fields. Factoring the core out of
/// enumeration is what lets the distributed router run byte-identical
/// global filtering — selectivity denominators, partition choice, pass-2
/// bounds — over range-query maps merged across the socket boundary.
Status RunPisFilterCore(int db_size, const std::unordered_set<int>* tombstones,
                        const PisOptions& options,
                        const FragmentDistFn& fragment_dists,
                        const SketchPruneFn& sketch_prune,
                        FilterResult* result);

/// Algorithm 2 over `db_size` graph-id slots. `enum_index` supplies the
/// class catalog for query-fragment enumeration (for a sharded index any
/// shard works: classes are registered from the feature set alone, so every
/// shard carries the same catalog). Range-query results for fragments
/// surviving the ε-filter are cached and reused for the partition in pass 2
/// — the partition is a subset of the kept fragments, so pass 2 issues no
/// range queries; memory is bounded by `fragments_kept` maps.
///
/// `tombstones` (nullable) holds removed graph ids: they start dead — never
/// candidates even when no query fragment prunes anything — and the
/// selectivity denominator is the live count, so an incrementally mutated
/// index filters exactly like one rebuilt from scratch over the live
/// graphs. `query_fn` must already exclude tombstoned ids from its results
/// (FragmentIndex::RangeQuery does).
///
/// `enum_cache` (nullable) memoizes the fragment enumeration across the
/// queries of one batch: a duplicate query reuses the first duplicate's
/// fragment list (stats.enum_cache_hits = 1) instead of re-enumerating and
/// re-preparing every connected edge subset. Results are identical either
/// way; unkeyable queries (disconnected) simply bypass the cache.
///
/// `sketch_factory` (nullable; consulted only under options.sketch_enabled)
/// supplies the superimposed-sketch probe. Sketch-failed graphs are pruned
/// AFTER the live count (selectivity denominator) is fixed and BEFORE pass
/// 1 — every range query still runs, and each pruned graph would have died
/// in the pass-1 intersection anyway (it lacks a fragment in some
/// enumerated class, so that class's result set cannot contain it), so
/// every result field and shared counter is identical to a sketch-off run;
/// only stats.sketch_checks/sketch_pruned record the prefilter's work.
Result<FilterResult> RunPisFilter(const FragmentIndex& enum_index, int db_size,
                                  const std::unordered_set<int>* tombstones,
                                  const PisOptions& options, const Graph& query,
                                  const FragmentQueryFn& query_fn,
                                  QueryEnumCache* enum_cache = nullptr,
                                  const SketchProbeFactory& sketch_factory = {});

/// The SearchBatch driver: fans `run_query` over 0..num_queries-1 with
/// ParallelFor, isolates per-query exceptions as Internal errors, and
/// aggregates stats over the successful queries. The caller resolves
/// `num_threads` (> 0) and applies any verify-thread clamping before
/// constructing `run_query`.
BatchSearchResult RunSearchBatch(
    size_t num_queries, int num_threads,
    const std::function<Result<SearchResult>(size_t)>& run_query);

}  // namespace pis::internal

#endif  // PIS_CORE_FILTER_IMPL_H_
