// topoPrune baseline (paper §2): prune graphs that do not contain the query
// *structure* using the fragment index's per-class containment lists, then
// verify the survivors. Its candidate count is the paper's Yt.
#ifndef PIS_CORE_TOPO_PRUNE_H_
#define PIS_CORE_TOPO_PRUNE_H_

#include "core/naive_search.h"
#include "core/options.h"
#include "index/fragment_index.h"

namespace pis {

/// \brief Structure-only pruning engine.
class TopoPruneEngine {
 public:
  /// Both pointers must outlive the engine.
  TopoPruneEngine(const GraphDatabase* db, const FragmentIndex* index);

  /// Filtering only: graphs containing (a fragment of the class of) every
  /// indexed query fragment. Distance-free.
  Result<std::vector<int>> Filter(const Graph& query, QueryStats* stats) const;

  /// Filter + verification at `sigma` under the index's distance spec.
  Result<SearchResult> Search(const Graph& query, double sigma) const;

 private:
  const GraphDatabase* db_;
  const FragmentIndex* index_;
};

}  // namespace pis

#endif  // PIS_CORE_TOPO_PRUNE_H_
