// Enumeration of the indexed fragments of a query graph (Algorithm 2 lines
// 3-4), shared by the PIS engine and the topoPrune baseline.
#ifndef PIS_CORE_QUERY_FRAGMENTS_H_
#define PIS_CORE_QUERY_FRAGMENTS_H_

#include <vector>

#include "graph/graph.h"
#include "index/fragment_index.h"
#include "util/status.h"

namespace pis {

/// One indexed fragment of the query.
struct QueryFragment {
  PreparedFragment prepared;
  /// Sorted query vertex ids covered by the fragment (for the
  /// overlapping-relation graph).
  std::vector<VertexId> vertices;
};

/// Enumerates every connected edge subset of `query` (within the index's
/// fragment size bounds) whose skeleton is an indexed class. When
/// `max_fragments` > 0 and more are found, the largest fragments are kept
/// (larger fragments are more selective, paper §5).
Result<std::vector<QueryFragment>> EnumerateIndexedQueryFragments(
    const FragmentIndex& index, const Graph& query, size_t max_fragments = 0);

}  // namespace pis

#endif  // PIS_CORE_QUERY_FRAGMENTS_H_
