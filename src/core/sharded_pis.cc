#include "core/sharded_pis.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "core/filter_impl.h"
#include "core/verifier.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace pis {

ShardedPisEngine::ShardedPisEngine(const GraphDatabase* db,
                                   const ShardedFragmentIndex* index,
                                   const PisOptions& options)
    : db_(db), index_(index), options_(options) {
  PIS_CHECK(db_ != nullptr && index_ != nullptr);
  PIS_CHECK(index_->db_size() == db_->size())
      << "sharded index was built over a different database";
}

Result<FilterResult> ShardedPisEngine::Filter(const Graph& query) const {
  return FilterImpl(query, nullptr);
}

Result<FilterResult> ShardedPisEngine::FilterImpl(
    const Graph& query, internal::QueryEnumCache* enum_cache) const {
  const int num_shards = index_->num_shards();
  // One fragment's range query = one physical query per shard, merged back
  // to global ids. Shards own disjoint id ranges, so the merge is a plain
  // union; per-shard maps land in fixed slots, keeping any thread schedule
  // deterministic.
  auto query_fn = [&](const PreparedFragment& fragment, double sigma,
                      std::unordered_map<int, double>* min_dist,
                      QueryStats* stats) -> Status {
    std::vector<std::unordered_map<int, double>> local(num_shards);
    std::vector<Status> failures(num_shards);
    ParallelFor(num_shards, options_.shard_threads, [&](size_t s) {
      failures[s] = internal::MinDistancePerGraph(index_->shard(s), fragment,
                                                  sigma, &local[s]);
    });
    stats->range_queries += num_shards;
    for (int s = 0; s < num_shards; ++s) {
      PIS_RETURN_NOT_OK(failures[s]);
      for (const auto& [local_gid, d] : local[s]) {
        min_dist->emplace(index_->global_id(s, local_gid), d);
      }
    }
    return Status::OK();
  };
  // The sketch probe routes each global id to its shard's sketch row. Class
  // ids are shard-independent (every shard registers the identical
  // feature-derived catalog), but the masks are built per shard anyway in
  // case shards were built with different sketch shapes.
  auto sketch_factory =
      [this, num_shards](
          const std::vector<int>& class_ids) -> internal::SketchProbe {
    struct ShardMask {
      const GraphSketch* sketch;
      std::vector<uint64_t> mask;
    };
    auto masks = std::make_shared<std::vector<ShardMask>>();
    masks->reserve(num_shards);
    for (int s = 0; s < num_shards; ++s) {
      const GraphSketch& sketch = index_->shard(s).sketch();
      masks->push_back({&sketch, sketch.MakeMask(class_ids)});
    }
    return [this, masks](int gid) {
      const int s = index_->shard_of(gid);
      // Compacted-away ids are resident nowhere; they are already dead in
      // the filter's alive[] and never probed, but stay permissive.
      if (s < 0) return true;
      const ShardMask& sm = (*masks)[s];
      return sm.sketch->MightContainAll(index_->local_id(gid), sm.mask);
    };
  };
  // Any shard serves as the enumeration catalog (identical classes); use
  // shard 0. Per-shard range queries already exclude per-shard tombstones;
  // the global set seeds the dead slots for the no-pruning path and the
  // live selectivity denominator.
  return internal::RunPisFilter(index_->shard(0), db_->size(),
                                &index_->tombstones(), options_, query,
                                query_fn, enum_cache, sketch_factory);
}

Result<SearchResult> ShardedPisEngine::Search(const Graph& query) const {
  return SearchImpl(query, nullptr);
}

Result<SearchResult> ShardedPisEngine::SearchImpl(
    const Graph& query, internal::QueryEnumCache* enum_cache) const {
  PIS_ASSIGN_OR_RETURN(FilterResult filtered, FilterImpl(query, enum_cache));
  SearchResult result;
  result.candidates = std::move(filtered.candidates);
  result.stats = filtered.stats;
  VerifyResult verified =
      VerifyCandidates(*db_, query, result.candidates, index_->options().spec,
                       options_.sigma, options_.verify_threads);
  result.answers = std::move(verified.answers);
  result.stats.answers = result.answers.size();
  result.stats.verify_seconds = verified.seconds;
  return result;
}

BatchSearchResult ShardedPisEngine::SearchBatch(std::span<const Graph> queries,
                                                int num_threads) const {
  if (num_threads <= 0) num_threads = HardwareThreads();
  // Same anti-oversubscription clamp as PisEngine::SearchBatch, extended to
  // the per-query shard fan-out: with multiple batch workers both inner
  // fan-outs run sequentially. Never changes results, only scheduling.
  const size_t workers =
      std::min(static_cast<size_t>(num_threads), queries.size());
  const ShardedPisEngine* engine = this;
  ShardedPisEngine flat(db_, index_, options_);
  if (workers > 1 &&
      (options_.verify_threads > 1 || options_.shard_threads > 1)) {
    flat.options_.verify_threads = 1;
    flat.options_.shard_threads = 1;
    engine = &flat;
  }
  // One enumeration memo per batch (see PisEngine::SearchBatch).
  internal::QueryEnumCache enum_cache;
  return internal::RunSearchBatch(
      queries.size(), num_threads,
      [&](size_t qi) { return engine->SearchImpl(queries[qi], &enum_cache); });
}

}  // namespace pis
