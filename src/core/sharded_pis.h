// PIS search over a sharded fragment index: each query fans its range
// queries across the per-shard indexes and merges the per-shard results
// back to global graph ids before the partition/pruning logic runs. The
// filtering core is shared with PisEngine (core/filter_impl.h), so for any
// shard count and any thread count the answers, candidates, and
// partition-derived stats are identical to the unsharded engine — only
// `range_queries` grows (one physical query per shard per fragment).
#ifndef PIS_CORE_SHARDED_PIS_H_
#define PIS_CORE_SHARDED_PIS_H_

#include <span>

#include "core/options.h"
#include "core/pis.h"
#include "index/sharded_index.h"
#include "util/status.h"

namespace pis {

/// \brief Partition-based search engine over a sharded fragment index.
class ShardedPisEngine {
 public:
  /// `db` and `index` must outlive the engine; the index must have been
  /// built over exactly this database. `options.shard_threads` controls the
  /// per-query fan-out across shards; `options.verify_threads` the
  /// candidate verification, both without affecting results.
  ShardedPisEngine(const GraphDatabase* db, const ShardedFragmentIndex* index,
                   const PisOptions& options = {});

  /// Algorithm 2 over all shards: identical candidates and stats to
  /// PisEngine::Filter on an unsharded index of the same database, except
  /// `range_queries` counts per-shard physical queries.
  Result<FilterResult> Filter(const Graph& query) const;

  /// Filter + verification: the exact SSSD answer set (global graph ids).
  Result<SearchResult> Search(const Graph& query) const;

  /// Batched search; same contract as PisEngine::SearchBatch. When more
  /// than one batch worker runs, per-query shard fan-out and verification
  /// are clamped to one thread each so the fan-outs don't multiply.
  BatchSearchResult SearchBatch(std::span<const Graph> queries,
                                int num_threads = 0) const;

  const PisOptions& options() const { return options_; }
  const ShardedFragmentIndex& index() const { return *index_; }

 private:
  /// Filter/Search with an optional batch-scoped enumeration cache (same
  /// contract as PisEngine::FilterImpl/SearchImpl).
  Result<FilterResult> FilterImpl(const Graph& query,
                                  internal::QueryEnumCache* enum_cache) const;
  Result<SearchResult> SearchImpl(const Graph& query,
                                  internal::QueryEnumCache* enum_cache) const;

  const GraphDatabase* db_;
  const ShardedFragmentIndex* index_;
  PisOptions options_;
};

}  // namespace pis

#endif  // PIS_CORE_SHARDED_PIS_H_
