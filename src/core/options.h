// Configuration of the PIS search engine (paper Algorithm 2 knobs).
#ifndef PIS_CORE_OPTIONS_H_
#define PIS_CORE_OPTIONS_H_

#include <cstddef>

#include "distance/distance_spec.h"

namespace pis {

/// Which MWIS heuristic selects the partition (paper §5).
enum class PartitionAlgorithm {
  /// Algorithm 1: pick the max-weight vertex, remove neighbors, repeat.
  kGreedy,
  /// EnhancedGreedy(k): pick the max-weight independent k-set per round
  /// (optimality ratio c/k, cost O(c k n^k)).
  kEnhancedGreedy,
  /// Exact branch-and-bound MWIS (exponential; ablation/tests only).
  kExact,
  /// Use the single best fragment only (ablation baseline).
  kSingleBest,
};

struct PisOptions {
  /// Maximum superimposed distance threshold σ.
  double sigma = 2.0;
  /// Selectivity cutoff multiplier λ (Figure 11): d(g, G) is capped at λσ
  /// and graphs outside the range-query result contribute λσ each.
  double lambda = 1.0;
  /// ε of Algorithm 2 line 5: fragments with selectivity <= ε are dropped
  /// before partitioning.
  double epsilon = 0.0;
  PartitionAlgorithm partition_algorithm = PartitionAlgorithm::kGreedy;
  /// k for kEnhancedGreedy.
  int enhanced_k = 2;
  /// Cap on enumerated query fragments (0 = unlimited). When hit, the
  /// largest fragments are kept (they are the selective ones).
  size_t max_query_fragments = 0;
  /// Threads for candidate verification (1 = sequential).
  int verify_threads = 1;
  /// Threads fanning one query's range queries across shards
  /// (ShardedPisEngine only; PisEngine ignores it). Never affects results,
  /// only scheduling.
  int shard_threads = 1;
  /// Auto-compaction threshold for sharded serving: when > 0, callers that
  /// own a mutable ShardedFragmentIndex forward this to
  /// set_compact_dead_ratio so a RemoveGraph compacts the owning shard once
  /// its tombstoned fraction reaches the threshold; EngineHost instead
  /// hands it to its background compactor so the write path stays cheap.
  /// 0 (default) disables — compaction then only happens on explicit
  /// Compact()/CompactShard() calls (`pis_cli compact`). Never affects
  /// query results, only when the dead postings are reclaimed.
  double compact_dead_ratio = 0.0;
  /// Superimposed-sketch prefilter (index/graph_sketch.h): when on, graphs
  /// whose bit codes are missing an enumerated class die before pass 1.
  /// Sound by construction — only provably-impossible candidates are
  /// pruned, so results and every shared counter are identical to a
  /// sketch-off run; the QueryStats sketch_* counters record the work
  /// saved. The sketch shape (bits, hashes) is a build-time option
  /// (FragmentIndexOptions), not a query knob.
  bool sketch_enabled = false;
};

}  // namespace pis

#endif  // PIS_CORE_OPTIONS_H_
