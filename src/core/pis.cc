#include "core/pis.h"

#include <algorithm>
#include <exception>
#include <string>
#include <unordered_map>

#include "core/selectivity.h"
#include "core/verifier.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace pis {

namespace {

// Runs one range query and aggregates the per-graph minimum distance
// (Eq. 3 / Algorithm 2 lines 10-16).
Status MinDistancePerGraph(const FragmentIndex& index,
                           const PreparedFragment& fragment, double sigma,
                           std::unordered_map<int, double>* out) {
  out->clear();
  return index.RangeQuery(fragment, sigma, [&](int gid, double d) {
    auto [it, inserted] = out->try_emplace(gid, d);
    if (!inserted && d < it->second) it->second = d;
  });
}

}  // namespace

PisEngine::PisEngine(const GraphDatabase* db, const FragmentIndex* index,
                     const PisOptions& options)
    : db_(db), index_(index), options_(options) {
  PIS_CHECK(db_ != nullptr && index_ != nullptr);
  PIS_CHECK(index_->db_size() == db_->size())
      << "index was built over a different database";
}

Result<FilterResult> PisEngine::Filter(const Graph& query) const {
  if (query.Empty()) {
    return Status::InvalidArgument("query graph is empty");
  }
  Timer timer;
  const double sigma = options_.sigma;
  FilterResult result;

  PIS_ASSIGN_OR_RETURN(
      result.fragments,
      EnumerateIndexedQueryFragments(*index_, query, options_.max_query_fragments));
  result.stats.fragments_enumerated = result.fragments.size();

  // Pass 1 (Algorithm 2 lines 6-18): one range query per fragment; keep CQ
  // and the selectivity, drop the per-graph maps to bound memory.
  std::vector<char> alive(db_->size(), 1);
  size_t alive_count = db_->size();
  std::vector<double> selectivities(result.fragments.size(), 0.0);
  std::unordered_map<int, double> dist;
  std::vector<double> found;
  for (size_t fi = 0; fi < result.fragments.size(); ++fi) {
    PIS_RETURN_NOT_OK(MinDistancePerGraph(*index_, result.fragments[fi].prepared,
                                          sigma, &dist));
    ++result.stats.range_queries;
    found.clear();
    found.reserve(dist.size());
    for (const auto& [gid, d] : dist) found.push_back(d);
    selectivities[fi] =
        ComputeSelectivity(found, db_->size(), sigma, options_.lambda);
    // CQ <- CQ ∩ T (line 17).
    if (dist.size() < static_cast<size_t>(db_->size())) {
      for (int gid = 0; gid < db_->size(); ++gid) {
        if (alive[gid] && dist.count(gid) == 0) {
          alive[gid] = 0;
          --alive_count;
        }
      }
    }
  }
  result.stats.candidates_after_intersection = alive_count;

  // Line 5 (ε-filter) applied with the online selectivities, then the
  // overlapping-relation graph and the partition (lines 19-20).
  std::vector<int> kept;  // positions into result.fragments
  for (size_t fi = 0; fi < result.fragments.size(); ++fi) {
    if (selectivities[fi] > options_.epsilon) kept.push_back(static_cast<int>(fi));
  }
  result.stats.fragments_kept = kept.size();
  result.selectivities = std::move(selectivities);

  std::vector<WeightedFragment> weighted;
  weighted.reserve(kept.size());
  for (int fi : kept) {
    WeightedFragment wf;
    wf.weight = result.selectivities[fi];
    wf.vertices = result.fragments[fi].vertices;
    weighted.push_back(std::move(wf));
  }
  OverlapGraph overlap(weighted);
  std::vector<int> partition_local = SelectPartition(
      overlap, options_.partition_algorithm, options_.enhanced_k);
  result.partition.reserve(partition_local.size());
  for (int pi : partition_local) result.partition.push_back(kept[pi]);
  result.stats.partition_size = result.partition.size();
  result.stats.partition_weight = overlap.TotalWeight(partition_local);

  // Pass 2 (lines 21-23): re-run range queries for the partition fragments
  // only and prune by the summed lower bound.
  std::vector<double> lower_bound(db_->size(), 0.0);
  for (int fi : result.partition) {
    PIS_RETURN_NOT_OK(MinDistancePerGraph(*index_, result.fragments[fi].prepared,
                                          sigma, &dist));
    ++result.stats.range_queries;
    for (int gid = 0; gid < db_->size(); ++gid) {
      if (!alive[gid]) continue;
      auto it = dist.find(gid);
      if (it == dist.end()) {
        // Structure violation (already impossible after line 17, but kept
        // defensive): the bound is unbounded.
        alive[gid] = 0;
        --alive_count;
      } else {
        lower_bound[gid] += it->second;
        if (lower_bound[gid] > sigma) {
          alive[gid] = 0;
          --alive_count;
        }
      }
    }
  }

  result.candidates.reserve(alive_count);
  for (int gid = 0; gid < db_->size(); ++gid) {
    if (alive[gid]) result.candidates.push_back(gid);
  }
  result.stats.candidates_final = result.candidates.size();
  result.stats.filter_seconds = timer.Seconds();
  return result;
}

Result<SearchResult> PisEngine::Search(const Graph& query) const {
  PIS_ASSIGN_OR_RETURN(FilterResult filtered, Filter(query));
  SearchResult result;
  result.candidates = std::move(filtered.candidates);
  result.stats = filtered.stats;
  VerifyResult verified =
      VerifyCandidates(*db_, query, result.candidates, index_->options().spec,
                       options_.sigma, options_.verify_threads);
  result.answers = std::move(verified.answers);
  result.stats.answers = result.answers.size();
  result.stats.verify_seconds = verified.seconds;
  return result;
}

BatchSearchResult PisEngine::SearchBatch(std::span<const Graph> queries,
                                         int num_threads) const {
  Timer timer;
  if (num_threads <= 0) num_threads = HardwareThreads();
  // With multiple batch workers, per-query verification runs sequentially:
  // nesting options_.verify_threads under the batch fan-out would multiply
  // the two counts and oversubscribe the machine. The clamp keys on the
  // effective worker count (ParallelFor caps workers at the batch size), so
  // a narrow batch keeps its verify parallelism. Thread counts never affect
  // results, only scheduling.
  const size_t workers =
      std::min(static_cast<size_t>(num_threads), queries.size());
  const PisEngine* engine = this;
  PisEngine flat(db_, index_, options_);
  if (workers > 1 && options_.verify_threads > 1) {
    flat.options_.verify_threads = 1;
    engine = &flat;
  }
  BatchSearchResult batch;
  batch.results.assign(queries.size(),
                       Result<SearchResult>(Status::Internal("query not run")));
  ParallelFor(queries.size(), num_threads, [&](size_t qi) {
    // ParallelFor requires that exceptions never escape the body; Search is
    // Status-based, so anything thrown below it is a defect we surface as a
    // per-query internal error rather than a process abort.
    try {
      batch.results[qi] = engine->Search(queries[qi]);
    } catch (const std::exception& e) {
      batch.results[qi] = Status::Internal(std::string("uncaught: ") + e.what());
    } catch (...) {
      batch.results[qi] = Status::Internal("uncaught non-standard exception");
    }
  });
  for (const Result<SearchResult>& r : batch.results) {
    if (r.ok()) {
      ++batch.succeeded;
      batch.total_stats.Accumulate(r.value().stats);
    } else {
      ++batch.failed;
    }
  }
  batch.wall_seconds = timer.Seconds();
  return batch;
}

}  // namespace pis
