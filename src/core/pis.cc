#include "core/pis.h"

#include <algorithm>

#include "core/filter_impl.h"
#include "core/verifier.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace pis {

PisEngine::PisEngine(const GraphDatabase* db, const FragmentIndex* index,
                     const PisOptions& options)
    : db_(db), index_(index), options_(options) {
  PIS_CHECK(db_ != nullptr && index_ != nullptr);
  PIS_CHECK(index_->db_size() == db_->size())
      << "index was built over a different database";
}

Result<FilterResult> PisEngine::Filter(const Graph& query) const {
  return FilterImpl(query, nullptr);
}

Result<FilterResult> PisEngine::FilterImpl(
    const Graph& query, internal::QueryEnumCache* enum_cache) const {
  return internal::RunPisFilter(
      *index_, db_->size(), &index_->tombstones(), options_, query,
      [this](const PreparedFragment& fragment, double sigma,
             std::unordered_map<int, double>* min_dist, QueryStats* stats) {
        ++stats->range_queries;
        return internal::MinDistancePerGraph(*index_, fragment, sigma, min_dist);
      },
      enum_cache,
      [this](const std::vector<int>& class_ids) -> internal::SketchProbe {
        const GraphSketch& sketch = index_->sketch();
        return [&sketch, mask = sketch.MakeMask(class_ids)](int gid) {
          return sketch.MightContainAll(gid, mask);
        };
      });
}

Result<SearchResult> PisEngine::Search(const Graph& query) const {
  return SearchImpl(query, nullptr);
}

Result<SearchResult> PisEngine::SearchImpl(
    const Graph& query, internal::QueryEnumCache* enum_cache) const {
  PIS_ASSIGN_OR_RETURN(FilterResult filtered, FilterImpl(query, enum_cache));
  SearchResult result;
  result.candidates = std::move(filtered.candidates);
  result.stats = filtered.stats;
  VerifyResult verified =
      VerifyCandidates(*db_, query, result.candidates, index_->options().spec,
                       options_.sigma, options_.verify_threads);
  result.answers = std::move(verified.answers);
  result.stats.answers = result.answers.size();
  result.stats.verify_seconds = verified.seconds;
  return result;
}

BatchSearchResult PisEngine::SearchBatch(std::span<const Graph> queries,
                                         int num_threads) const {
  if (num_threads <= 0) num_threads = HardwareThreads();
  // With multiple batch workers, per-query verification runs sequentially:
  // nesting options_.verify_threads under the batch fan-out would multiply
  // the two counts and oversubscribe the machine. The clamp keys on the
  // effective worker count (ParallelFor caps workers at the batch size), so
  // a narrow batch keeps its verify parallelism. Thread counts never affect
  // results, only scheduling.
  const size_t workers =
      std::min(static_cast<size_t>(num_threads), queries.size());
  const PisEngine* engine = this;
  PisEngine flat(db_, index_, options_);
  if (workers > 1 && options_.verify_threads > 1) {
    flat.options_.verify_threads = 1;
    engine = &flat;
  }
  // One enumeration memo per batch: duplicate queries reuse the first
  // duplicate's fragment list instead of re-enumerating (results are
  // identical; only work and stats.enum_cache_hits change).
  internal::QueryEnumCache enum_cache;
  return internal::RunSearchBatch(
      queries.size(), num_threads,
      [&](size_t qi) { return engine->SearchImpl(queries[qi], &enum_cache); });
}

}  // namespace pis
