#include "core/verifier.h"

#include <algorithm>

#include "distance/superimposed.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace pis {

VerifyResult VerifyCandidates(const GraphDatabase& db, const Graph& query,
                              const std::vector<int>& candidates,
                              const DistanceSpec& spec, double sigma,
                              int num_threads) {
  Timer timer;
  VerifyResult result;
  std::vector<double> distances(candidates.size(), kInfiniteDistance);
  if (num_threads <= 1) {
    auto model = spec.MakeCostModel();
    for (size_t i = 0; i < candidates.size(); ++i) {
      distances[i] =
          MinSuperimposedDistance(query, db.at(candidates[i]), *model, sigma);
    }
  } else {
    // One cost model per task invocation: the models are stateless but
    // cheap, and per-call construction avoids shared mutable state.
    ParallelFor(candidates.size(), num_threads, [&](size_t i) {
      auto model = spec.MakeCostModel();
      distances[i] =
          MinSuperimposedDistance(query, db.at(candidates[i]), *model, sigma);
    });
  }
  // Candidates arrive in ascending id order from the filters; preserve it.
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (distances[i] <= sigma) {
      result.answers.push_back(candidates[i]);
      result.distances.push_back(distances[i]);
    }
  }
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace pis
