#include "core/stats.h"

#include "util/string_util.h"

namespace pis {

void QueryStats::Accumulate(const QueryStats& other) {
  fragments_enumerated += other.fragments_enumerated;
  fragments_kept += other.fragments_kept;
  range_queries += other.range_queries;
  partition_size += other.partition_size;
  partition_weight += other.partition_weight;
  candidates_after_intersection += other.candidates_after_intersection;
  candidates_final += other.candidates_final;
  answers += other.answers;
  sketch_checks += other.sketch_checks;
  sketch_pruned += other.sketch_pruned;
  sketch_false_drops += other.sketch_false_drops;
  enum_cache_hits += other.enum_cache_hits;
  filter_seconds += other.filter_seconds;
  verify_seconds += other.verify_seconds;
  sketch_seconds += other.sketch_seconds;
  pass1_seconds += other.pass1_seconds;
  selectivity_seconds += other.selectivity_seconds;
  partition_seconds += other.partition_seconds;
  pass2_seconds += other.pass2_seconds;
}

std::string QueryStats::ToString() const {
  return StrFormat(
      "fragments=%zu kept=%zu range_queries=%zu partition=%zu (w=%.3f) "
      "cand_intersect=%zu cand_final=%zu answers=%zu sketch=%zu/%zu "
      "sketch_false_drops=%zu enum_cache_hits=%zu filter=%.3fms "
      "verify=%.3fms",
      fragments_enumerated, fragments_kept, range_queries, partition_size,
      partition_weight, candidates_after_intersection, candidates_final, answers,
      sketch_pruned, sketch_checks, sketch_false_drops, enum_cache_hits,
      filter_seconds * 1e3, verify_seconds * 1e3);
}

}  // namespace pis
