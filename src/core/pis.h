// The PIS engine: partition-based graph index and search (paper Algorithm 2
// plus candidate verification). This is the library's primary entry point.
#ifndef PIS_CORE_PIS_H_
#define PIS_CORE_PIS_H_

#include <vector>

#include "core/naive_search.h"
#include "core/options.h"
#include "core/partition.h"
#include "core/query_fragments.h"
#include "core/stats.h"
#include "index/fragment_index.h"
#include "util/status.h"

namespace pis {

/// Output of the filtering phase (Algorithm 2) — everything the benchmark
/// harness needs without paying for verification.
struct FilterResult {
  /// Candidate answer set CQ after partition lower-bound pruning (Yp).
  std::vector<int> candidates;
  /// Positions (into `fragments`) of the selected partition P.
  std::vector<int> partition;
  /// All kept query fragments with their selectivity weights.
  std::vector<QueryFragment> fragments;
  std::vector<double> selectivities;
  QueryStats stats;
};

/// \brief Partition-based search engine over a fragment index.
class PisEngine {
 public:
  /// `db` and `index` must outlive the engine; the index must have been
  /// built over exactly this database.
  PisEngine(const GraphDatabase* db, const FragmentIndex* index,
            const PisOptions& options = {});

  /// Algorithm 2: returns the pruned candidate set and filtering stats.
  Result<FilterResult> Filter(const Graph& query) const;

  /// Filter + verification: the exact SSSD answer set.
  Result<SearchResult> Search(const Graph& query) const;

  const PisOptions& options() const { return options_; }

 private:
  const GraphDatabase* db_;
  const FragmentIndex* index_;
  PisOptions options_;
};

}  // namespace pis

#endif  // PIS_CORE_PIS_H_
