// The PIS engine: partition-based graph index and search (paper Algorithm 2
// plus candidate verification). This is the library's primary entry point.
#ifndef PIS_CORE_PIS_H_
#define PIS_CORE_PIS_H_

#include <cstddef>
#include <span>
#include <vector>

#include "core/naive_search.h"
#include "core/options.h"
#include "core/partition.h"
#include "core/query_fragments.h"
#include "core/stats.h"
#include "index/fragment_index.h"
#include "util/status.h"

namespace pis {

namespace internal {
struct QueryEnumCache;  // batch-scoped enumeration memo (core/filter_impl.h)
}  // namespace internal

/// Output of the filtering phase (Algorithm 2) — everything the benchmark
/// harness needs without paying for verification.
struct FilterResult {
  /// Candidate answer set CQ after partition lower-bound pruning (Yp).
  std::vector<int> candidates;
  /// Positions (into `fragments`) of the selected partition P.
  std::vector<int> partition;
  /// All kept query fragments with their selectivity weights.
  std::vector<QueryFragment> fragments;
  std::vector<double> selectivities;
  QueryStats stats;
};

/// Outcome of a batched search. `results[i]` corresponds to `queries[i]`;
/// a query that fails (e.g. not indexable) carries its own error without
/// affecting the rest of the batch.
struct BatchSearchResult {
  std::vector<Result<SearchResult>> results;
  /// Per-query stats summed over the successful queries only.
  QueryStats total_stats;
  size_t succeeded = 0;
  size_t failed = 0;
  /// End-to-end batch latency (covers all threads).
  double wall_seconds = 0;
};

/// \brief Partition-based search engine over a fragment index.
class PisEngine {
 public:
  /// `db` and `index` must outlive the engine; the index must have been
  /// built over exactly this database.
  PisEngine(const GraphDatabase* db, const FragmentIndex* index,
            const PisOptions& options = {});

  /// Algorithm 2: returns the pruned candidate set and filtering stats.
  Result<FilterResult> Filter(const Graph& query) const;

  /// Filter + verification: the exact SSSD answer set.
  Result<SearchResult> Search(const Graph& query) const;

  /// Runs `Search` over every query, fanning the batch out across
  /// `num_threads` threads (0 = all hardware threads). Per-query results —
  /// including errors — are identical to a sequential `Search` loop; each
  /// query's failure is isolated in its `Result` slot. Thread-safe: the
  /// engine is read-only during search. When more than one batch worker
  /// actually runs (`min(num_threads, queries.size()) > 1`),
  /// `options().verify_threads` is ignored (treated as 1) so the two
  /// fan-outs don't multiply into oversubscription; this never changes
  /// results, only scheduling.
  BatchSearchResult SearchBatch(std::span<const Graph> queries,
                                int num_threads = 0) const;

  const PisOptions& options() const { return options_; }

 private:
  /// Filter/Search with an optional batch-scoped enumeration cache:
  /// duplicate queries in one SearchBatch skip re-enumerating their
  /// fragments (stats.enum_cache_hits reports reuse). Results are
  /// identical with or without the cache.
  Result<FilterResult> FilterImpl(const Graph& query,
                                  internal::QueryEnumCache* enum_cache) const;
  Result<SearchResult> SearchImpl(const Graph& query,
                                  internal::QueryEnumCache* enum_cache) const;

  const GraphDatabase* db_;
  const FragmentIndex* index_;
  PisOptions options_;
};

}  // namespace pis

#endif  // PIS_CORE_PIS_H_
