#include "core/naive_search.h"

#include <numeric>

namespace pis {

SearchResult NaiveSearch(const GraphDatabase& db, const Graph& query,
                         const DistanceSpec& spec, double sigma) {
  SearchResult result;
  result.candidates.resize(db.size());
  std::iota(result.candidates.begin(), result.candidates.end(), 0);
  result.stats.candidates_final = result.candidates.size();
  VerifyResult verified =
      VerifyCandidates(db, query, result.candidates, spec, sigma);
  result.answers = std::move(verified.answers);
  result.stats.answers = result.answers.size();
  result.stats.verify_seconds = verified.seconds;
  return result;
}

}  // namespace pis
