// Candidate verification (paper framework step 3): compute the real minimum
// superimposed distance for each candidate and keep those within σ.
#ifndef PIS_CORE_VERIFIER_H_
#define PIS_CORE_VERIFIER_H_

#include <vector>

#include "distance/distance_spec.h"
#include "graph/graph.h"

namespace pis {

struct VerifyResult {
  /// Ids of candidate graphs with d(Q, G) <= sigma, ascending.
  std::vector<int> answers;
  /// Realized minimum distances, parallel to `answers`.
  std::vector<double> distances;
  double seconds = 0;
};

/// Verifies `candidates` (database ids) against the query using the
/// cost-bounded superposition search. With `num_threads > 1` candidates are
/// verified in parallel (each search is independent); results are returned
/// in ascending id order either way.
VerifyResult VerifyCandidates(const GraphDatabase& db, const Graph& query,
                              const std::vector<int>& candidates,
                              const DistanceSpec& spec, double sigma,
                              int num_threads = 1);

}  // namespace pis

#endif  // PIS_CORE_VERIFIER_H_
