#include "core/topk.h"

#include <algorithm>
#include <unordered_map>

#include "distance/superimposed.h"

namespace pis {

Result<TopKResult> TopKSearch(const GraphDatabase& db, const FragmentIndex& index,
                              const Graph& query, const TopKOptions& options) {
  if (options.k < 1) return Status::InvalidArgument("k must be >= 1");
  if (options.growth <= 1.0) {
    return Status::InvalidArgument("growth must be > 1");
  }
  // Degenerate radii either spin the σ-expansion forever (σ stuck at 0 when
  // the first step is not positive) or report answers beyond the hard stop
  // (max_sigma below the starting radius); reject them up front.
  if (options.initial_sigma < 0) {
    return Status::InvalidArgument("initial_sigma must be >= 0");
  }
  if (options.first_step <= 0) {
    return Status::InvalidArgument("first_step must be > 0");
  }
  if (options.max_sigma < options.initial_sigma) {
    return Status::InvalidArgument("max_sigma must be >= initial_sigma");
  }
  TopKResult out;
  auto model = index.options().spec.MakeCostModel();
  // gid -> exact distance at the radius it was verified under; infinity
  // means "verified, beyond that radius". Memoizing the radius avoids
  // re-verifying graphs whose candidate status did not change.
  std::unordered_map<int, double> exact;
  std::unordered_map<int, double> verified_at;

  double sigma = options.initial_sigma;
  while (true) {
    ++out.rounds;
    out.final_sigma = sigma;
    PisOptions pis_options = options.pis;
    pis_options.sigma = sigma;
    PisEngine engine(&db, &index, pis_options);
    PIS_ASSIGN_OR_RETURN(FilterResult filtered, engine.Filter(query));
    for (int gid : filtered.candidates) {
      auto it = verified_at.find(gid);
      if (it != verified_at.end()) {
        // Already verified. A finite exact distance is final; an infinite
        // one only needs re-verification if the radius grew past it.
        if (exact[gid] != kInfiniteDistance || it->second >= sigma) continue;
      }
      double d = MinSuperimposedDistance(query, db.at(gid), *model, sigma);
      ++out.verifications;
      exact[gid] = d;
      verified_at[gid] = sigma;
    }
    // Collect answers within the current radius.
    std::vector<std::pair<int, double>> hits;
    for (const auto& [gid, d] : exact) {
      if (d <= sigma) hits.emplace_back(gid, d);
    }
    if (static_cast<int>(hits.size()) >= options.k || sigma >= options.max_sigma) {
      std::sort(hits.begin(), hits.end(), [](const auto& a, const auto& b) {
        if (a.second != b.second) return a.second < b.second;
        return a.first < b.first;
      });
      if (static_cast<int>(hits.size()) > options.k) {
        hits.resize(options.k);
      }
      out.results = std::move(hits);
      return out;
    }
    sigma = sigma == 0.0 ? options.first_step : sigma * options.growth;
    sigma = std::min(sigma, options.max_sigma);
  }
}

}  // namespace pis
