// Selectivity (paper Definition 5 and Algorithm 2 line 18): the average
// minimum distance between a fragment and the database, with the cutoff
// generalized to λ·σ for the Figure 11 sensitivity study.
#ifndef PIS_CORE_SELECTIVITY_H_
#define PIS_CORE_SELECTIVITY_H_

#include <vector>

namespace pis {

/// w(g) = [ Σ_{G ∈ T} min(d(g,G), λσ) + (n - |T|) · λσ ] / n
/// where `found_distances` are the per-graph minimum distances of the range
/// query result T (each <= σ), `db_size` is n, and the cutoff is λσ.
/// Order-independent: the summation runs over a sorted copy, so equal
/// distance multisets yield bit-identical weights regardless of how the
/// caller aggregated them.
double ComputeSelectivity(const std::vector<double>& found_distances, int db_size,
                          double sigma, double lambda);

}  // namespace pis

#endif  // PIS_CORE_SELECTIVITY_H_
