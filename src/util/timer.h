// Wall-clock stopwatch used by the benchmark harness and query stats.
#ifndef PIS_UTIL_TIMER_H_
#define PIS_UTIL_TIMER_H_

#include <chrono>

namespace pis {

/// Monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pis

#endif  // PIS_UTIL_TIMER_H_
