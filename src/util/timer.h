// Monotonic stopwatch used by the benchmark harness, query stats, and the
// observability layer. Everything here reads steady_clock — never
// system_clock, whose NTP steps would corrupt measured durations
// (scripts/lint.sh bans system_clock::now() outside util/).
#ifndef PIS_UTIL_TIMER_H_
#define PIS_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace pis {

/// Monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Nanoseconds on the monotonic clock. Only differences are meaningful —
/// the epoch is unspecified (boot time on Linux) and differs per host, so
/// a value must never cross a process boundary undiffed (trace spans ship
/// start offsets and durations, never raw timestamps).
inline uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace pis

#endif  // PIS_UTIL_TIMER_H_
