// Minimal data parallelism: ParallelFor over an index range with an atomic
// work counter. Used by the index builder (per-graph fragment extraction)
// and the verifier (per-candidate superposition search) — both
// embarrassingly parallel.
#ifndef PIS_UTIL_PARALLEL_H_
#define PIS_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace pis {

/// Runs fn(0..n-1) across `num_threads` threads (dynamic scheduling via an
/// atomic counter). `num_threads <= 1` runs inline on the caller's thread.
/// `fn` must be safe to call concurrently for distinct indices; exceptions
/// must not escape it.
void ParallelFor(size_t n, int num_threads, const std::function<void(size_t)>& fn);

/// Number of hardware threads, at least 1.
int HardwareThreads();

}  // namespace pis

#endif  // PIS_UTIL_PARALLEL_H_
