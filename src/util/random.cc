#include "util/random.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace pis {

int Rng::UniformInt(int lo, int hi) {
  PIS_DCHECK(lo <= hi);
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(engine_);
}

size_t Rng::UniformIndex(size_t n) {
  PIS_DCHECK(n > 0);
  std::uniform_int_distribution<size_t> dist(0, n - 1);
  return dist(engine_);
}

double Rng::UniformDouble() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

double Rng::UniformDouble(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(std::clamp(p, 0.0, 1.0));
  return dist(engine_);
}

int Rng::HeavyTailInt(int lo, double mean, int cap) {
  PIS_DCHECK(mean > lo);
  std::exponential_distribution<double> dist(1.0 / (mean - lo));
  int v = lo + static_cast<int>(std::floor(dist(engine_)));
  return std::min(v, cap);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  PIS_DCHECK(!weights.empty());
  double total = 0;
  for (double w : weights) total += w;
  double x = UniformDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (x < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace pis
