// Capability-annotated synchronization primitives: the only lock types the
// project uses (scripts/lint.sh rejects naked std::mutex outside this
// header). They are zero-cost shims over <mutex>/<condition_variable> whose
// value is the annotations: a field marked PIS_GUARDED_BY(mu_) can only be
// touched while `mu_` is provably held, checked by clang's -Wthread-safety
// at compile time (see util/thread_annotations.h and docs/locking.md).
//
// The API is deliberately minimal — Lock/Unlock, a scoped MutexLock, and a
// CondVar whose Wait requires the mutex by annotation. There is no
// template predicate Wait: the thread-safety analysis cannot see into a
// lambda, so condition loops live at the call site where the guarded reads
// are visible to the checker.
#ifndef PIS_UTIL_MUTEX_H_
#define PIS_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace pis {

/// \brief A std::mutex with thread-safety-analysis capability annotations.
class PIS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PIS_ACQUIRE() { mu_.lock(); }
  void Unlock() PIS_RELEASE() { mu_.unlock(); }
  bool TryLock() PIS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief RAII lock over a Mutex (the project's lock_guard).
class PIS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) PIS_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() PIS_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// \brief Condition variable bound to Mutex.
///
/// Wait/WaitUntil require the caller to hold the mutex (enforced by
/// annotation) and atomically release/reacquire it around the block, like
/// std::condition_variable. Spurious wakeups are possible: callers loop on
/// their guarded condition.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously woken). `mu` must be held.
  void Wait(Mutex* mu) PIS_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then release the
    // unique_lock's ownership claim so the Mutex stays (logically and
    // physically) held by the caller on return.
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Blocks until notified or `deadline` passes; returns true on timeout.
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex* mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      PIS_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status == std::cv_status::timeout;
  }

  /// Blocks until notified or `rel_time` elapses; returns true on timeout.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex* mu, const std::chrono::duration<Rep, Period>& rel_time)
      PIS_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(native, rel_time);
    native.release();
    return status == std::cv_status::timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace pis

#endif  // PIS_UTIL_MUTEX_H_
