// Status and Result<T>: exception-free error propagation for the public API,
// following the Arrow/RocksDB idiom.
#ifndef PIS_UTIL_STATUS_H_
#define PIS_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace pis {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIOError,
  kParseError,
  kInternal,
  kNotImplemented,
  kDeadlineExceeded,
  kUnavailable,
};

/// \brief Outcome of an operation that can fail.
///
/// A `Status` is cheap to copy in the OK case (no allocation). Non-OK
/// statuses carry a code and a human-readable message.
///
/// The class is [[nodiscard]]: ignoring a returned Status is a compile
/// error under -Werror (a dropped IOError from the WAL or a swallowed
/// InvalidArgument from a loader is exactly how a server silently loses
/// data). Call sites that genuinely cannot act on a failure make that
/// explicit with a `(void)` cast and a comment, or PIS_CHECK_OK
/// (util/logging.h) when failure is a program invariant.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Stable wire name of a code ("NotFound", "DeadlineExceeded", ...): the
/// serving protocol ships it in error replies so a remote caller can
/// reconstruct a typed Status instead of collapsing everything to a string.
const char* StatusCodeName(StatusCode code);
/// Inverse of StatusCodeName; kInternal for an unrecognized name (an older
/// or foreign peer — the message still carries the details).
StatusCode StatusCodeFromName(const std::string& name);

/// \brief A value or an error, never both.
///
/// Minimal `StatusOr` analogue. Accessing `value()` on an error aborts in
/// debug builds; check `ok()` first. [[nodiscard]] for the same reason as
/// Status: a dropped Result is a dropped error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& MoveValue() {
    assert(ok());
    return std::move(*value_);
  }
  /// Returns the value, or `fallback` if this holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace pis

/// Propagates a non-OK status to the caller.
#define PIS_RETURN_NOT_OK(expr)              \
  do {                                       \
    ::pis::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (false)

/// Assigns the value of a Result expression or propagates its error.
#define PIS_ASSIGN_OR_RETURN(lhs, expr)      \
  auto PIS_CONCAT_(_res_, __LINE__) = (expr);            \
  if (!PIS_CONCAT_(_res_, __LINE__).ok())                \
    return PIS_CONCAT_(_res_, __LINE__).status();        \
  lhs = PIS_CONCAT_(_res_, __LINE__).MoveValue()

#define PIS_CONCAT_INNER_(a, b) a##b
#define PIS_CONCAT_(a, b) PIS_CONCAT_INNER_(a, b)

#endif  // PIS_UTIL_STATUS_H_
