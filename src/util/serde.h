// Little-endian binary serialization helpers for index persistence.
//
// Writers accumulate into a std::ostream; readers consume a std::istream
// and latch a failure flag — callers check ok() at section boundaries
// instead of after every field.
#ifndef PIS_UTIL_SERDE_H_
#define PIS_UTIL_SERDE_H_

#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/status.h"

namespace pis {

/// \brief Sequential binary writer.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out) : out_(out) {}

  void U8(uint8_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I32(int32_t v);
  void F64(double v);
  void Str(const std::string& s);
  void VecI32(const std::vector<int32_t>& v);
  void VecInt(const std::vector<int>& v);
  void VecF64(const std::vector<double>& v);

  /// Stream still healthy?
  bool ok() const;

 private:
  void Raw(const void* data, size_t n);
  std::ostream& out_;
};

/// \brief Sequential binary reader with a latched failure flag.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream& in) : in_(in) {}

  uint8_t U8();
  uint32_t U32();
  uint64_t U64();
  int32_t I32();
  double F64();
  std::string Str();
  std::vector<int32_t> VecI32();
  std::vector<int> VecInt();
  std::vector<double> VecF64();

  /// Reads a container count and validates it against the remaining stream
  /// size assuming at least `min_elem_bytes` per element (latches failure
  /// and returns 0 when implausible). Use before any reserve()/loop.
  uint64_t ReadCount(uint64_t min_elem_bytes);

  /// False once any read failed or the stream went bad.
  bool ok() const;
  /// Convenience: OK status or ParseError mentioning `what`.
  Status Check(const std::string& what) const;

 private:
  bool Raw(void* data, size_t n);
  /// True when at least `bytes` more can plausibly be read: corrupt length
  /// prefixes must not trigger huge allocations. Uses the stream size when
  /// seekable, else a fixed cap.
  bool HasBytes(uint64_t bytes);
  /// Fallback length guard for non-seekable streams.
  static constexpr uint64_t kMaxContainer = 1ull << 28;

  std::istream& in_;
  bool failed_ = false;
  /// Total stream bytes if seekable, -1 otherwise (computed lazily).
  int64_t stream_bytes_ = -2;
};

}  // namespace pis

#endif  // PIS_UTIL_SERDE_H_
