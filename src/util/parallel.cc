#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace pis {

void ParallelFor(size_t n, int num_threads,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (num_threads <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  int workers = std::min<size_t>(static_cast<size_t>(num_threads), n);
  std::atomic<size_t> next{0};
  auto run = [&]() {
    while (true) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (int t = 1; t < workers; ++t) threads.emplace_back(run);
  run();
  for (std::thread& t : threads) t.join();
}

int HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

}  // namespace pis
