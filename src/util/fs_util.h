// Filesystem helpers shared by the CLI, the benches, and the durable write
// path: size reporting (e.g. the on-disk bytes a compaction reclaimed) and
// the fsync plumbing the write-ahead log and checkpointing need to make
// "acknowledged" mean "survives a crash".
#ifndef PIS_UTIL_FS_UTIL_H_
#define PIS_UTIL_FS_UTIL_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace pis {

/// Total bytes of the regular files directly inside `dir` (the layout
/// SaveDir writes: a manifest plus per-shard files, no subdirectories).
/// 0 when the directory is missing or unreadable.
uintmax_t DirectoryBytes(const std::string& dir);

/// DirectoryBytes for a directory, the file size otherwise; 0 on error.
uintmax_t PathBytes(const std::string& path);

/// fsync(2)s a regular file by path (open / fsync / close). Buffered data
/// an ofstream already flushed can still sit in the page cache; this forces
/// it to stable storage.
Status SyncFile(const std::string& path);

/// fsync(2)s a directory so a rename/create inside it is itself durable
/// (the file's bytes being on disk does not make its directory entry so).
Status SyncDir(const std::string& dir);

/// SyncFile over every regular file directly inside `dir`, then SyncDir on
/// the directory — what a freshly written snapshot directory needs before
/// the WAL that covered it may be truncated.
Status SyncTree(const std::string& dir);

}  // namespace pis

#endif  // PIS_UTIL_FS_UTIL_H_
