// Filesystem size helpers shared by the CLI and the benches (e.g. for
// reporting the on-disk bytes a compaction reclaimed).
#ifndef PIS_UTIL_FS_UTIL_H_
#define PIS_UTIL_FS_UTIL_H_

#include <cstdint>
#include <string>

namespace pis {

/// Total bytes of the regular files directly inside `dir` (the layout
/// SaveDir writes: a manifest plus per-shard files, no subdirectories).
/// 0 when the directory is missing or unreadable.
uintmax_t DirectoryBytes(const std::string& dir);

/// DirectoryBytes for a directory, the file size otherwise; 0 on error.
uintmax_t PathBytes(const std::string& path);

}  // namespace pis

#endif  // PIS_UTIL_FS_UTIL_H_
