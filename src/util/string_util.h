// Small string helpers shared by parsers and report writers.
#ifndef PIS_UTIL_STRING_UTIL_H_
#define PIS_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace pis {

/// Splits on a delimiter; empty tokens are kept.
std::vector<std::string> Split(const std::string& s, char delim);

/// Splits on arbitrary runs of whitespace; empty tokens are dropped.
std::vector<std::string> SplitWhitespace(const std::string& s);

/// Removes leading/trailing whitespace.
std::string Trim(const std::string& s);

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// Joins tokens with a separator.
std::string Join(const std::vector<std::string>& tokens, const std::string& sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace pis

#endif  // PIS_UTIL_STRING_UTIL_H_
