#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace pis {

namespace {

/// Recursive-descent parser over a raw byte range. Depth is bounded so a
/// hostile "[[[[..." line can't blow the stack of a server worker.
class Parser {
 public:
  Parser(const char* p, const char* end) : p_(p), end_(end) {}

  Result<JsonValue> ParseDocument() {
    PIS_ASSIGN_OR_RETURN(JsonValue v, ParseValue(0));
    SkipSpace();
    if (p_ != end_) return Err("trailing characters after JSON document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Err(const std::string& what) const {
    return Status::ParseError("JSON: " + what + " at offset " +
                              std::to_string(offset_));
  }

  void SkipSpace() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      Advance();
    }
  }

  void Advance() {
    ++p_;
    ++offset_;
  }

  bool Consume(char c) {
    if (p_ != end_ && *p_ == c) {
      Advance();
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    const char* q = p_;
    size_t n = 0;
    while (word[n] != '\0') {
      if (q == end_ || *q != word[n]) return false;
      ++q;
      ++n;
    }
    p_ = q;
    offset_ += n;
    return true;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    SkipSpace();
    if (p_ == end_) return Err("unexpected end of input");
    switch (*p_) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        PIS_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue(std::move(s));
      }
      case 't':
        if (ConsumeWord("true")) return JsonValue(true);
        return Err("bad literal");
      case 'f':
        if (ConsumeWord("false")) return JsonValue(false);
        return Err("bad literal");
      case 'n':
        if (ConsumeWord("null")) return JsonValue();
        return Err("bad literal");
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    Advance();  // '{'
    JsonValue obj = JsonValue::Object();
    SkipSpace();
    if (Consume('}')) return obj;
    while (true) {
      SkipSpace();
      if (p_ == end_ || *p_ != '"') return Err("expected object key");
      PIS_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipSpace();
      if (!Consume(':')) return Err("expected ':' after object key");
      PIS_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      obj.Set(key, std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Err("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    Advance();  // '['
    JsonValue arr = JsonValue::Array();
    SkipSpace();
    if (Consume(']')) return arr;
    while (true) {
      PIS_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      arr.Push(std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Err("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    Advance();  // '"'
    std::string out;
    while (true) {
      if (p_ == end_) return Err("unterminated string");
      unsigned char c = static_cast<unsigned char>(*p_);
      if (c == '"') {
        Advance();
        return out;
      }
      if (c == '\\') {
        Advance();
        if (p_ == end_) return Err("unterminated escape");
        char esc = *p_;
        Advance();
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            PIS_ASSIGN_OR_RETURN(unsigned code, ParseHex4());
            // BMP code points only (no surrogate-pair recombination):
            // enough for the protocol, whose strings are ASCII graph
            // records and status text. Encode as UTF-8.
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Err("bad escape");
        }
        continue;
      }
      if (c < 0x20) return Err("raw control character in string");
      out.push_back(static_cast<char>(c));
      Advance();
    }
  }

  Result<unsigned> ParseHex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (p_ == end_) return Err("truncated \\u escape");
      char c = *p_;
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Err("bad \\u escape");
      }
      Advance();
    }
    return code;
  }

  // RFC 8259 number grammar, enforced before strtod sees the token:
  //   -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
  // strtod is looser (".5", "1.", "0x1p3", "inf"), so the grammar check here
  // is what keeps malformed client frames from parsing differently than any
  // other JSON implementation would.
  Result<JsonValue> ParseNumber() {
    const char* start = p_;
    Consume('-');
    if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_))) {
      return p_ == start ? Err("expected a value")
                         : Err("bad number: digit expected");
    }
    if (*p_ == '0') {
      Advance();
      if (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) {
        return Err("bad number: leading zero");
      }
    } else {
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) {
        Advance();
      }
    }
    if (Consume('.')) {
      if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_))) {
        return Err("bad number: digit expected after '.'");
      }
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) {
        Advance();
      }
    }
    if (p_ != end_ && (*p_ == 'e' || *p_ == 'E')) {
      Advance();
      if (p_ != end_ && (*p_ == '+' || *p_ == '-')) Advance();
      if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_))) {
        return Err("bad number: digit expected in exponent");
      }
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) {
        Advance();
      }
    }
    std::string token(start, p_);
    char* parsed_end = nullptr;
    double value = std::strtod(token.c_str(), &parsed_end);
    if (parsed_end != token.c_str() + token.size() || !std::isfinite(value)) {
      return Err("bad number '" + token + "'");
    }
    return JsonValue(value);
  }

  const char* p_;
  const char* end_;
  size_t offset_ = 0;
};

void SerializeTo(const JsonValue& v, std::string* out) {
  switch (v.type()) {
    case JsonValue::Type::kNull:
      out->append("null");
      break;
    case JsonValue::Type::kBool:
      out->append(v.AsBool() ? "true" : "false");
      break;
    case JsonValue::Type::kNumber: {
      double d = v.AsNumber();
      // Integral values in int64 range print as integers so ids and
      // counters round-trip textually.
      if (std::isfinite(d) && d == std::floor(d) && std::abs(d) < 9.2e18) {
        out->append(std::to_string(static_cast<int64_t>(d)));
      } else if (!std::isfinite(d)) {
        // JSON has no NaN/Infinity; null is the only faithful rendering.
        out->append("null");
      } else {
        // Shortest form that parses back to exactly this double, so
        // sigma/distance values survive the wire bit-for-bit.
        char buf[32];
        std::to_chars_result r = std::to_chars(buf, buf + sizeof(buf), d);
        out->append(buf, r.ptr);
      }
      break;
    }
    case JsonValue::Type::kString:
      out->push_back('"');
      out->append(JsonEscape(v.AsString()));
      out->push_back('"');
      break;
    case JsonValue::Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, member] : v.members()) {
        if (!first) out->push_back(',');
        first = false;
        out->push_back('"');
        out->append(JsonEscape(key));
        out->append("\":");
        SerializeTo(member, out);
      }
      out->push_back('}');
      break;
    }
    case JsonValue::Type::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < v.size(); ++i) {
        if (i > 0) out->push_back(',');
        SerializeTo(v.at(i), out);
      }
      out->push_back(']');
      break;
    }
  }
}

}  // namespace

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  Parser parser(text.data(), text.data() + text.size());
  return parser.ParseDocument();
}

bool JsonValue::Has(const std::string& key) const {
  return Find(key) != nullptr;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = members_.find(key);
  return it == members_.end() ? nullptr : &it->second;
}

double JsonValue::GetNumberOr(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsNumber() : fallback;
}

bool JsonValue::GetBoolOr(const std::string& key, bool fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_bool() ? v->AsBool() : fallback;
}

std::string JsonValue::GetStringOr(const std::string& key,
                                   const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->AsString() : fallback;
}

JsonValue& JsonValue::Set(const std::string& key, JsonValue value) {
  type_ = Type::kObject;
  members_[key] = std::move(value);
  return *this;
}

void JsonValue::Push(JsonValue value) {
  type_ = Type::kArray;
  items_.push_back(std::move(value));
}

size_t JsonValue::size() const {
  return type_ == Type::kObject ? members_.size() : items_.size();
}

std::string JsonValue::Serialize() const {
  std::string out;
  SerializeTo(*this, &out);
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out.append("\\\""); break;
      case '\\': out.append("\\\\"); break;
      case '\b': out.append("\\b"); break;
      case '\f': out.append("\\f"); break;
      case '\n': out.append("\\n"); break;
      case '\r': out.append("\\r"); break;
      case '\t': out.append("\\t"); break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out.append(buf);
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

}  // namespace pis
