// Minimal JSON for the serving protocol (util only — no external deps).
//
// Supports the full JSON value model (null, bool, number, string, object,
// array) with compact single-line serialization — exactly what the
// newline-delimited protocol of pis_server needs. Objects keep their keys
// sorted (std::map), so serialization is deterministic: the same value
// always renders to the same bytes, which the smoke tests and goldens rely
// on. Numbers are doubles; integral values within int64 range render
// without a decimal point so graph ids round-trip as "17", not "17.0".
#ifndef PIS_UTIL_JSON_H_
#define PIS_UTIL_JSON_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace pis {

/// \brief A parsed/buildable JSON value.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  JsonValue() = default;  // null
  JsonValue(bool b)  // NOLINT(google-explicit-constructor)
      : type_(Type::kBool), bool_(b) {}
  JsonValue(double d)  // NOLINT(google-explicit-constructor)
      : type_(Type::kNumber), number_(d) {}
  JsonValue(int i)  // NOLINT(google-explicit-constructor)
      : type_(Type::kNumber), number_(i) {}
  JsonValue(int64_t i)  // NOLINT(google-explicit-constructor)
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  JsonValue(uint64_t i)  // NOLINT(google-explicit-constructor)
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  JsonValue(const char* s)  // NOLINT(google-explicit-constructor)
      : type_(Type::kString), string_(s) {}
  JsonValue(std::string s)  // NOLINT(google-explicit-constructor)
      : type_(Type::kString), string_(std::move(s)) {}

  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }

  /// Parses one JSON document; trailing non-whitespace is an error.
  static Result<JsonValue> Parse(const std::string& text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }

  /// Object access. `Get*Or` helpers make protocol handlers terse: they
  /// return the fallback when the key is missing or of the wrong type.
  bool Has(const std::string& key) const;
  const JsonValue* Find(const std::string& key) const;
  double GetNumberOr(const std::string& key, double fallback) const;
  bool GetBoolOr(const std::string& key, bool fallback) const;
  std::string GetStringOr(const std::string& key,
                          const std::string& fallback) const;
  JsonValue& Set(const std::string& key, JsonValue value);

  /// Array access.
  void Push(JsonValue value);
  size_t size() const;
  const JsonValue& at(size_t i) const { return items_[i]; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::map<std::string, JsonValue>& members() const { return members_; }

  /// Compact single-line rendering (no trailing newline).
  std::string Serialize() const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::map<std::string, JsonValue> members_;  // kObject
  std::vector<JsonValue> items_;              // kArray
};

/// Escapes `s` for embedding in a JSON string literal (no quotes added).
std::string JsonEscape(const std::string& s);

}  // namespace pis

#endif  // PIS_UTIL_JSON_H_
