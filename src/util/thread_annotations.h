// Clang Thread Safety Analysis annotation macros (no-ops on other
// compilers). Annotating a mutex-guarded field with PIS_GUARDED_BY(mu) —
// and lock-taking/requiring functions with the ACQUIRE/RELEASE/REQUIRES
// family — turns the locking discipline into a compile-time contract:
// `clang++ -Wthread-safety` rejects any access that does not provably hold
// the right capability, on every build, for every interleaving. See
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html and util/mutex.h
// for the annotated lock types these attach to.
//
// The macro spellings follow the upstream reference header so the intent
// reads the same as in Abseil/LLVM code; everything is PIS_-prefixed to
// keep the global namespace clean.
#ifndef PIS_UTIL_THREAD_ANNOTATIONS_H_
#define PIS_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define PIS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define PIS_THREAD_ANNOTATION_(x)  // no-op off clang
#endif

/// Marks a class as a capability (a lock type). The string names the
/// capability kind in diagnostics ("mutex").
#define PIS_CAPABILITY(x) PIS_THREAD_ANNOTATION_(capability(x))

/// Marks a RAII class whose constructor acquires and destructor releases a
/// capability.
#define PIS_SCOPED_CAPABILITY PIS_THREAD_ANNOTATION_(scoped_lockable)

/// Declares that the data member it is attached to is protected by the
/// given capability: reads require the capability held shared or
/// exclusively, writes require it exclusively.
#define PIS_GUARDED_BY(x) PIS_THREAD_ANNOTATION_(guarded_by(x))

/// Like PIS_GUARDED_BY for pointer members: the *pointed-to* data is
/// protected (the pointer itself may be read freely).
#define PIS_PT_GUARDED_BY(x) PIS_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Declares that a function requires the listed capabilities to be held by
/// the caller (and does not release them).
#define PIS_REQUIRES(...) \
  PIS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Shared-capability variant of PIS_REQUIRES.
#define PIS_REQUIRES_SHARED(...) \
  PIS_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Declares that a function acquires the listed capabilities (caller must
/// not hold them; they are held on return).
#define PIS_ACQUIRE(...) \
  PIS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Declares that a function releases the listed capabilities (caller must
/// hold them; they are free on return).
#define PIS_RELEASE(...) \
  PIS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Declares that a function attempts to acquire a capability and returns
/// `ok` (true/false) on success.
#define PIS_TRY_ACQUIRE(...) \
  PIS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Declares that a function may be called only when the listed capabilities
/// are NOT held — the annotation that catches self-deadlock (re-entry into
/// a function that takes a lock the caller already holds) and documents
/// the lock hierarchy (see docs/locking.md).
#define PIS_EXCLUDES(...) PIS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the calling thread holds the capability, and
/// tells the analysis to assume so from here on.
#define PIS_ASSERT_CAPABILITY(x) \
  PIS_THREAD_ANNOTATION_(assert_capability(x))

/// Returns the capability guarding the returned reference/pointer.
#define PIS_RETURN_CAPABILITY(x) PIS_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis inside one function. Every use must
/// carry a written reason at the use site (scripts/lint.sh enforces this
/// for NOLINT; review enforces it here).
#define PIS_NO_THREAD_SAFETY_ANALYSIS \
  PIS_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // PIS_UTIL_THREAD_ANNOTATIONS_H_
