// Seeded PRNG wrapper so every dataset / workload in the repo is reproducible.
#ifndef PIS_UTIL_RANDOM_H_
#define PIS_UTIL_RANDOM_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace pis {

/// \brief Deterministic random source used by generators and samplers.
///
/// Thin wrapper over std::mt19937_64 with convenience draws. Not
/// thread-safe; create one per thread.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int UniformInt(int lo, int hi);
  /// Uniform size_t in [0, n-1]; n must be > 0.
  size_t UniformIndex(size_t n);
  /// Uniform double in [0, 1).
  double UniformDouble();
  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);
  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p);
  /// Geometric-ish heavy-tail integer: lo + floor(Exp(mean - lo)), capped.
  int HeavyTailInt(int lo, double mean, int cap);
  /// Draws an index according to non-negative weights (need not sum to 1).
  size_t Categorical(const std::vector<double>& weights);
  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    std::shuffle(v->begin(), v->end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace pis

#endif  // PIS_UTIL_RANDOM_H_
