#include "util/status.h"

namespace pis {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

StatusCode StatusCodeFromName(const std::string& name) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kIOError, StatusCode::kParseError, StatusCode::kInternal,
        StatusCode::kNotImplemented, StatusCode::kDeadlineExceeded,
        StatusCode::kUnavailable}) {
    if (name == StatusCodeName(code)) return code;
  }
  return StatusCode::kInternal;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace pis
