#include "util/flags.h"

#include <cstdio>
#include <cstdlib>

#include "util/string_util.h"

namespace pis {

namespace {
std::string BoolRepr(bool b) { return b ? "true" : "false"; }
}  // namespace

void FlagSet::AddInt(const std::string& name, int* target, const std::string& help) {
  flags_.push_back({name, Type::kInt, target, help, std::to_string(*target)});
}

void FlagSet::AddInt64(const std::string& name, int64_t* target,
                       const std::string& help) {
  flags_.push_back({name, Type::kInt64, target, help, std::to_string(*target)});
}

void FlagSet::AddDouble(const std::string& name, double* target,
                        const std::string& help) {
  flags_.push_back({name, Type::kDouble, target, help, std::to_string(*target)});
}

void FlagSet::AddBool(const std::string& name, bool* target, const std::string& help) {
  flags_.push_back({name, Type::kBool, target, help, BoolRepr(*target)});
}

void FlagSet::AddString(const std::string& name, std::string* target,
                        const std::string& help) {
  flags_.push_back({name, Type::kString, target, help, *target});
}

Status FlagSet::Apply(const Flag& flag, const std::string& value) const {
  switch (flag.type) {
    case Type::kInt: {
      char* end = nullptr;
      long v = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad int for --" + flag.name + ": " + value);
      }
      *static_cast<int*>(flag.target) = static_cast<int>(v);
      return Status::OK();
    }
    case Type::kInt64: {
      char* end = nullptr;
      long long v = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad int64 for --" + flag.name + ": " + value);
      }
      *static_cast<int64_t*>(flag.target) = v;
      return Status::OK();
    }
    case Type::kDouble: {
      char* end = nullptr;
      double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad double for --" + flag.name + ": " + value);
      }
      *static_cast<double*>(flag.target) = v;
      return Status::OK();
    }
    case Type::kBool: {
      if (value == "true" || value == "1") {
        *static_cast<bool*>(flag.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(flag.target) = false;
      } else {
        return Status::InvalidArgument("bad bool for --" + flag.name + ": " + value);
      }
      return Status::OK();
    }
    case Type::kString:
      *static_cast<std::string*>(flag.target) = value;
      return Status::OK();
  }
  return Status::Internal("unreachable flag type");
}

Status FlagSet::Parse(int argc, char** argv) const {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr, "%s", Usage(argv[0]).c_str());
      return Status::AlreadyExists("help requested");
    }
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("unexpected positional argument: " + arg);
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      name = body;
      // Bool flags may appear bare ("--verbose"); others take the next token.
      const Flag* f = nullptr;
      for (const auto& fl : flags_) {
        if (fl.name == name) f = &fl;
      }
      if (f != nullptr && f->type == Type::kBool) {
        value = "true";
      } else {
        if (i + 1 >= argc) {
          return Status::InvalidArgument("missing value for --" + name);
        }
        value = argv[++i];
      }
    }
    bool found = false;
    for (const auto& flag : flags_) {
      if (flag.name == name) {
        PIS_RETURN_NOT_OK(Apply(flag, value));
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
  }
  return Status::OK();
}

std::string FlagSet::Usage(const std::string& program) const {
  std::string out = "Usage: " + program + " [flags]\n";
  for (const auto& flag : flags_) {
    out += "  --" + flag.name + " (default " + flag.default_repr + ")  " +
           flag.help + "\n";
  }
  return out;
}

}  // namespace pis
