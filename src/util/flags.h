// Tiny command-line flag parser for the benchmark and example binaries.
//
// Usage:
//   FlagSet flags;
//   int db_size = 10000;
//   flags.AddInt("db_size", &db_size, "number of graphs in the database");
//   PIS_CHECK(flags.Parse(argc, argv).ok());
//
// Accepts "--name=value" and "--name value". Unknown flags are an error;
// "--help" prints usage and is reported via Status code kAlreadyExists so
// callers can exit(0).
#ifndef PIS_UTIL_FLAGS_H_
#define PIS_UTIL_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace pis {

/// Registry of typed command-line flags.
class FlagSet {
 public:
  void AddInt(const std::string& name, int* target, const std::string& help);
  void AddInt64(const std::string& name, int64_t* target, const std::string& help);
  void AddDouble(const std::string& name, double* target, const std::string& help);
  void AddBool(const std::string& name, bool* target, const std::string& help);
  void AddString(const std::string& name, std::string* target, const std::string& help);

  /// Parses argv. Returns InvalidArgument on unknown flags or bad values,
  /// AlreadyExists after printing usage for --help, OK otherwise.
  Status Parse(int argc, char** argv) const;

  /// Renders a usage string listing all registered flags.
  std::string Usage(const std::string& program) const;

 private:
  enum class Type { kInt, kInt64, kDouble, kBool, kString };
  struct Flag {
    std::string name;
    Type type;
    void* target;
    std::string help;
    std::string default_repr;
  };

  Status Apply(const Flag& flag, const std::string& value) const;

  std::vector<Flag> flags_;
};

}  // namespace pis

#endif  // PIS_UTIL_FLAGS_H_
