// Lightweight leveled logging and check macros.
#ifndef PIS_UTIL_LOGGING_H_
#define PIS_UTIL_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace pis {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Sets the global minimum level that is actually emitted (default: Info).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it (to stderr) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace pis

#define PIS_LOG(level) \
  ::pis::internal::LogMessage(::pis::LogLevel::k##level, __FILE__, __LINE__)

// PIS_CHECK aborts on failure in all build types; use for invariants whose
// violation would corrupt results (index postings, search state).
#define PIS_CHECK(cond)                                              \
  if (!(cond))                                                       \
  ::pis::internal::LogMessage(::pis::LogLevel::kFatal, __FILE__,     \
                              __LINE__)                              \
      << "Check failed: " #cond " "

#ifndef NDEBUG
#define PIS_DCHECK(cond) PIS_CHECK(cond)
#else
#define PIS_DCHECK(cond) \
  if (false) ::pis::internal::LogMessage(::pis::LogLevel::kFatal, __FILE__, __LINE__)
#endif

// Aborts (with the rendered status) when a [[nodiscard]] Status-returning
// expression fails. For call sites where failure is a program invariant —
// test/bench setup, CLI plumbing — not a substitute for propagating errors
// on library paths (use PIS_RETURN_NOT_OK there).
#define PIS_CHECK_OK(expr)                                        \
  do {                                                            \
    const auto& _pis_check_ok_st = (expr);                        \
    PIS_CHECK(_pis_check_ok_st.ok()) << _pis_check_ok_st.ToString(); \
  } while (false)

#endif  // PIS_UTIL_LOGGING_H_
