// Line-oriented TCP sockets for the serving layer (POSIX only, no external
// deps). TcpListener accepts connections — safely from several worker
// threads at once — and TcpSocket moves newline-delimited frames, which is
// all the JSON protocol of pis_server needs. Both are move-only RAII
// wrappers over file descriptors.
#ifndef PIS_UTIL_SOCKET_H_
#define PIS_UTIL_SOCKET_H_

#include <string>

#include "util/status.h"

namespace pis {

/// \brief A connected TCP stream with buffered line framing.
class TcpSocket {
 public:
  TcpSocket() = default;
  explicit TcpSocket(int fd) : fd_(fd) {}
  ~TcpSocket() { Close(); }
  TcpSocket(TcpSocket&& other) noexcept;
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  /// Connects to host:port (IPv4 "a.b.c.d" or a resolvable name).
  /// `timeout_ms > 0` bounds the connect itself (non-blocking connect +
  /// poll) and is then installed as the socket's I/O deadline, so a peer
  /// that accepts but never answers cannot block the caller forever.
  /// `timeout_ms <= 0` keeps the historical blocking behaviour.
  static Result<TcpSocket> Connect(const std::string& host, int port,
                                   int timeout_ms = 0);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Applies a per-operation deadline to every subsequent SendLine/RecvLine
  /// (SO_SNDTIMEO/SO_RCVTIMEO). An operation that cannot finish within
  /// `timeout_ms` fails with DeadlineExceeded instead of blocking. Pass
  /// `timeout_ms <= 0` to remove the deadline (block forever again).
  Status SetDeadline(int timeout_ms);

  /// Writes `line` plus a trailing '\n' (the frame delimiter), retrying
  /// short writes. `line` must not itself contain '\n'.
  Status SendLine(const std::string& line);

  /// Reads up to and including the next '\n'; returns the line without the
  /// delimiter. IOError("connection closed") on clean EOF with no buffered
  /// partial line. `max_bytes` bounds a single frame so a peer that never
  /// sends '\n' can't grow the buffer without limit. With a deadline set
  /// (SetDeadline), a silent peer yields DeadlineExceeded.
  Result<std::string> RecvLine(size_t max_bytes = 64 << 20);

  /// Half-closes both directions (unblocks a peer or a reader thread) then
  /// releases the descriptor.
  void Close();

  /// shutdown(2) both directions without closing the fd — used to unblock
  /// another thread parked in RecvLine on this socket.
  void ShutdownBothEnds();

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes received beyond the last returned line
};

/// \brief A listening TCP socket (IPv4 loopback-or-any).
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { Close(); }
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens on `port` (0 = kernel-assigned ephemeral port; read
  /// it back with port()). `loopback_only` binds 127.0.0.1 instead of
  /// INADDR_ANY.
  static Result<TcpListener> Listen(int port, bool loopback_only = false,
                                    int backlog = 64);

  bool valid() const { return fd_ >= 0; }
  /// The bound port (resolved after Listen, including port 0 requests).
  int port() const { return port_; }

  /// Blocks for the next connection. Safe to call concurrently from many
  /// worker threads. After Shutdown() (from any thread), pending and future
  /// calls return IOError("listener shut down"). On failure, `fatal`
  /// (nullable) reports whether the listener itself is gone: false for
  /// transient resource pressure (fd/buffer exhaustion — back off and
  /// retry), true when no future Accept on this listener can succeed.
  Result<TcpSocket> Accept(bool* fatal = nullptr);

  /// Unblocks every Accept() and makes future ones fail. Idempotent and
  /// callable from any thread.
  void Shutdown();

  void Close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace pis

#endif  // PIS_UTIL_SOCKET_H_
