#include "util/serde.h"

#include <istream>
#include <ostream>

namespace pis {

void BinaryWriter::Raw(const void* data, size_t n) {
  out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
}

void BinaryWriter::U8(uint8_t v) { Raw(&v, 1); }

void BinaryWriter::U32(uint32_t v) { Raw(&v, 4); }

void BinaryWriter::U64(uint64_t v) { Raw(&v, 8); }

void BinaryWriter::I32(int32_t v) { Raw(&v, 4); }

void BinaryWriter::F64(double v) { Raw(&v, 8); }

void BinaryWriter::Str(const std::string& s) {
  U64(s.size());
  Raw(s.data(), s.size());
}

void BinaryWriter::VecI32(const std::vector<int32_t>& v) {
  U64(v.size());
  Raw(v.data(), v.size() * sizeof(int32_t));
}

void BinaryWriter::VecInt(const std::vector<int>& v) {
  U64(v.size());
  for (int x : v) I32(x);
}

void BinaryWriter::VecF64(const std::vector<double>& v) {
  U64(v.size());
  Raw(v.data(), v.size() * sizeof(double));
}

bool BinaryWriter::ok() const { return static_cast<bool>(out_); }

bool BinaryReader::HasBytes(uint64_t bytes) {
  if (failed_) return false;
  if (stream_bytes_ == -2) {
    // Lazily probe the stream size (seekable streams only).
    std::streampos cur = in_.tellg();
    if (cur == std::streampos(-1)) {
      stream_bytes_ = -1;
    } else {
      in_.seekg(0, std::ios::end);
      std::streampos end = in_.tellg();
      in_.seekg(cur);
      stream_bytes_ = static_cast<int64_t>(end);
    }
  }
  if (stream_bytes_ < 0) return bytes <= kMaxContainer;
  std::streampos cur = in_.tellg();
  if (cur == std::streampos(-1)) return false;
  return bytes <= static_cast<uint64_t>(stream_bytes_ - static_cast<int64_t>(cur));
}

bool BinaryReader::Raw(void* data, size_t n) {
  if (failed_) return false;
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  if (in_.gcount() != static_cast<std::streamsize>(n)) failed_ = true;
  return !failed_;
}

uint8_t BinaryReader::U8() {
  uint8_t v = 0;
  Raw(&v, 1);
  return v;
}

uint32_t BinaryReader::U32() {
  uint32_t v = 0;
  Raw(&v, 4);
  return v;
}

uint64_t BinaryReader::U64() {
  uint64_t v = 0;
  Raw(&v, 8);
  return v;
}

int32_t BinaryReader::I32() {
  int32_t v = 0;
  Raw(&v, 4);
  return v;
}

double BinaryReader::F64() {
  double v = 0;
  Raw(&v, 8);
  return v;
}

std::string BinaryReader::Str() {
  uint64_t n = U64();
  if (failed_ || n > (uint64_t{1} << 40) || !HasBytes(n)) {
    failed_ = true;
    return {};
  }
  std::string s(n, '\0');
  Raw(s.data(), n);
  return s;
}

std::vector<int32_t> BinaryReader::VecI32() {
  uint64_t n = U64();
  if (failed_ || n > (uint64_t{1} << 40) / sizeof(int32_t) || !HasBytes(n * sizeof(int32_t))) {
    failed_ = true;
    return {};
  }
  std::vector<int32_t> v(n);
  Raw(v.data(), n * sizeof(int32_t));
  return v;
}

std::vector<int> BinaryReader::VecInt() {
  uint64_t n = U64();
  if (failed_ || n > (uint64_t{1} << 40) / sizeof(int32_t) || !HasBytes(n * sizeof(int32_t))) {
    failed_ = true;
    return {};
  }
  std::vector<int> v(n);
  for (uint64_t i = 0; i < n && !failed_; ++i) v[i] = I32();
  return v;
}

std::vector<double> BinaryReader::VecF64() {
  uint64_t n = U64();
  if (failed_ || n > (uint64_t{1} << 40) / sizeof(double) || !HasBytes(n * sizeof(double))) {
    failed_ = true;
    return {};
  }
  std::vector<double> v(n);
  Raw(v.data(), n * sizeof(double));
  return v;
}

uint64_t BinaryReader::ReadCount(uint64_t min_elem_bytes) {
  uint64_t n = U64();
  if (failed_) return 0;
  if (min_elem_bytes == 0) min_elem_bytes = 1;
  // Overflow-safe: n * min_elem_bytes must fit and fit the stream.
  if (n > (uint64_t{1} << 40) / min_elem_bytes || !HasBytes(n * min_elem_bytes)) {
    failed_ = true;
    return 0;
  }
  return n;
}

bool BinaryReader::ok() const { return !failed_ && static_cast<bool>(in_); }

Status BinaryReader::Check(const std::string& what) const {
  if (ok()) return Status::OK();
  return Status::ParseError("truncated or corrupt " + what);
}

}  // namespace pis
