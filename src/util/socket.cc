#include "util/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace pis {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

// Connects `fd` within `timeout_ms` using a non-blocking connect + poll,
// restoring blocking mode afterwards. A plain connect(2) has no deadline at
// all — against a black-holed peer it blocks for the kernel's SYN-retry
// budget (minutes), which the router's failover cannot afford.
Status ConnectWithTimeout(int fd, const sockaddr* addr, socklen_t addrlen,
                          int timeout_ms) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl");
  }
  Status st = Status::OK();
  if (::connect(fd, addr, addrlen) != 0) {
    if (errno == EINPROGRESS) {
      pollfd pfd{fd, POLLOUT, 0};
      int rc;
      do {
        rc = ::poll(&pfd, 1, timeout_ms);
      } while (rc < 0 && errno == EINTR);
      if (rc == 0) {
        st = Status::DeadlineExceeded("connect timed out after " +
                                      std::to_string(timeout_ms) + "ms");
      } else if (rc < 0) {
        st = Errno("poll");
      } else {
        int err = 0;
        socklen_t len = sizeof(err);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
          st = Errno("getsockopt");
        } else if (err != 0) {
          st = Status::IOError(std::string("connect: ") + std::strerror(err));
        }
      }
    } else {
      st = Errno("connect");
    }
  }
  if (st.ok() && ::fcntl(fd, F_SETFL, flags) < 0) st = Errno("fcntl");
  return st;
}

}  // namespace

TcpSocket::TcpSocket(TcpSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

Result<TcpSocket> TcpSocket::Connect(const std::string& host, int port,
                                     int timeout_ms) {
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("bad port " + std::to_string(port));
  }
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* resolved = nullptr;
  const std::string service = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &resolved);
  if (rc != 0) {
    return Status::IOError("cannot resolve " + host + ": " +
                           gai_strerror(rc));
  }
  Status failure = Status::IOError("no addresses for " + host);
  for (addrinfo* ai = resolved; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      failure = Errno("socket");
      continue;
    }
    Status st = timeout_ms > 0
                    ? ConnectWithTimeout(fd, ai->ai_addr, ai->ai_addrlen,
                                         timeout_ms)
                    : (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0
                           ? Status::OK()
                           : Errno("connect to " + host + ":" + service));
    if (st.ok()) {
      ::freeaddrinfo(resolved);
      // Latency over throughput: protocol frames are small request/reply
      // lines, so coalescing (Nagle) only adds round-trip delay.
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      TcpSocket sock(fd);
      if (timeout_ms > 0) {
        Status deadline = sock.SetDeadline(timeout_ms);
        if (!deadline.ok()) return deadline;
      }
      return sock;
    }
    failure = std::move(st);
    ::close(fd);
  }
  ::freeaddrinfo(resolved);
  return failure;
}

Status TcpSocket::SetDeadline(int timeout_ms) {
  if (!valid()) return Status::IOError("socket is closed");
  timeval tv{};
  if (timeout_ms > 0) {
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>(timeout_ms % 1000) * 1000;
  }
  // timeout_ms <= 0 leaves tv zeroed, which the kernel reads as "no
  // timeout" — the documented way to clear SO_RCVTIMEO/SO_SNDTIMEO.
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
      ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt timeout");
  }
  return Status::OK();
}

Status TcpSocket::SendLine(const std::string& line) {
  if (!valid()) return Status::IOError("socket is closed");
  // Gather-write the payload and its delimiter: no copy of a frame that
  // can legitimately be megabytes (a graph record in an add request).
  static const char kNewline = '\n';
  size_t sent = 0;
  const size_t total = line.size() + 1;
  while (sent < total) {
    iovec iov[2];
    int iovcnt = 0;
    if (sent < line.size()) {
      iov[iovcnt].iov_base = const_cast<char*>(line.data()) + sent;
      iov[iovcnt].iov_len = line.size() - sent;
      ++iovcnt;
    }
    iov[iovcnt].iov_base = const_cast<char*>(&kNewline);
    iov[iovcnt].iov_len = 1;
    ++iovcnt;
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<size_t>(iovcnt);
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE instead of killing
    // the process with SIGPIPE.
    ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Only reachable with a SetDeadline timeout installed: the peer's
        // receive window stayed full past the deadline.
        return Status::DeadlineExceeded("send timed out");
      }
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> TcpSocket::RecvLine(size_t max_bytes) {
  if (!valid()) return Status::IOError("socket is closed");
  while (true) {
    size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      // The cap applies to the frame itself, not just the buffered bytes —
      // a delimiter that arrived in the same segment must not smuggle an
      // oversized line through.
      if (newline > max_bytes) {
        return Status::InvalidArgument("frame exceeds " +
                                       std::to_string(max_bytes) + " bytes");
      }
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    if (buffer_.size() > max_bytes) {
      return Status::InvalidArgument("frame exceeds " +
                                     std::to_string(max_bytes) + " bytes");
    }
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // A silent peer with a SetDeadline timeout installed — the defining
        // failure mode the router's failover keys off.
        return Status::DeadlineExceeded("recv timed out");
      }
      return Errno("recv");
    }
    if (n == 0) {
      return Status::IOError("connection closed");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

void TcpSocket::Close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

void TcpSocket::ShutdownBothEnds() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(std::exchange(other.port_, 0)) {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

Result<TcpListener> TcpListener::Listen(int port, bool loopback_only,
                                        int backlog) {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("bad port " + std::to_string(port));
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(loopback_only ? INADDR_LOOPBACK : INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Errno("bind port " + std::to_string(port));
    ::close(fd);
    return st;
  }
  if (::listen(fd, backlog) != 0) {
    Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status st = Errno("getsockname");
    ::close(fd);
    return st;
  }
  TcpListener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

Result<TcpSocket> TcpListener::Accept(bool* fatal) {
  if (fatal != nullptr) *fatal = false;
  while (true) {
    if (fd_ < 0) {
      if (fatal != nullptr) *fatal = true;
      return Status::IOError("listener shut down");
    }
    int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) {
      int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return TcpSocket(client);
    }
    // Transient per-connection failures (a peer RSTing before accept, an
    // interrupted syscall) must not look like a dead listener — a worker
    // that treated them as fatal would silently leave the accept pool.
    if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) continue;
    // Resource pressure starves accept but the listener itself is fine —
    // backing off and retrying can succeed once descriptors/memory free up.
    if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
        errno == ENOMEM) {
      return Status::IOError(std::string("accept failed: ") +
                             std::strerror(errno));
    }
    // Everything else means the listening socket is unusable: shutdown(2)
    // from another thread (EINVAL), a closed fd (EBADF), a non-listener.
    // Retrying can never succeed, so report it as fatal.
    if (fatal != nullptr) *fatal = true;
    return Status::IOError(std::string("accept failed: ") +
                           std::strerror(errno));
  }
}

void TcpListener::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace pis
