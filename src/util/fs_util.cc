#include "util/fs_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

namespace pis {

namespace {

Status SyncFd(const std::string& path, int open_flags) {
  const int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + " for fsync: " +
                           std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::IOError("fsync " + path + ": " +
                           std::strerror(saved_errno));
  }
  return Status::OK();
}

}  // namespace

uintmax_t DirectoryBytes(const std::string& dir) {
  uintmax_t total = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file(ec)) total += entry.file_size(ec);
  }
  return total;
}

uintmax_t PathBytes(const std::string& path) {
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) return DirectoryBytes(path);
  uintmax_t size = std::filesystem::file_size(path, ec);
  return ec ? 0 : size;
}

Status SyncFile(const std::string& path) { return SyncFd(path, O_RDONLY); }

Status SyncDir(const std::string& dir) {
  return SyncFd(dir, O_RDONLY | O_DIRECTORY);
}

Status SyncTree(const std::string& dir) {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    PIS_RETURN_NOT_OK(SyncFile(entry.path().string()));
  }
  if (ec) {
    return Status::IOError("cannot iterate " + dir + ": " + ec.message());
  }
  return SyncDir(dir);
}

}  // namespace pis
