#include "util/fs_util.h"

#include <filesystem>

namespace pis {

uintmax_t DirectoryBytes(const std::string& dir) {
  uintmax_t total = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file(ec)) total += entry.file_size(ec);
  }
  return total;
}

uintmax_t PathBytes(const std::string& path) {
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) return DirectoryBytes(path);
  uintmax_t size = std::filesystem::file_size(path, ec);
  return ec ? 0 : size;
}

}  // namespace pis
