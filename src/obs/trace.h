// Per-query pipeline tracing: a TraceContext allocated at the front end
// (pis_server / pis_router request handler) collects a tree of wall-time
// spans — sketch probe, pass-1, selectivity, pass-2, verify, merge, WAL
// append, group-commit wait, snapshot publish — and renders it as a
// single-line JSON document for the `"trace": true` query reply and the
// slow-query log.
//
// Clock domains: every duration is measured on the local steady clock
// (util/timer.h MonotonicNowNs). Spans that cross the wire (a shard
// replica's internal timings returned in a shard_query/shard_verify reply)
// carry only start OFFSETS relative to their own root and durations —
// never raw timestamps — so a router can graft a remote subtree under its
// round-trip span without any cross-host clock agreement. A child's
// offsets are therefore in the REMOTE clock domain: children nest
// logically inside the round trip, and their summed durations are <= the
// round-trip duration minus network cost, but their absolute offsets are
// not comparable to sibling spans recorded locally.
//
// Wire/log schema (docs/observability.md):
//   span  := {"name":"<stage>","start_ms":F,"dur_ms":F,"children":[span*]}
//   trace := {"trace_id":"<id>","op":"query","total_ms":F,
//             "spans":[span*], ...front-end extras (sigma, answers)}
#ifndef PIS_OBS_TRACE_H_
#define PIS_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/stats.h"
#include "util/json.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace pis {

/// \brief One timed stage; a node of the span tree.
struct TraceSpan {
  std::string name;
  /// Offset from the enclosing trace's start (or, for a remote subtree,
  /// from the remote handler's own start), in milliseconds.
  double start_ms = 0;
  double dur_ms = 0;
  std::vector<TraceSpan> children;

  JsonValue ToJsonValue() const;
  /// Strict decode (InvalidArgument on shape problems); depth-limited so a
  /// hostile reply cannot blow the stack.
  static Result<TraceSpan> FromJson(const JsonValue& json);

  /// Decodes a JSON array of spans (the "spans" field of a reply).
  static Result<std::vector<TraceSpan>> ListFromJson(const JsonValue& array);
  static JsonValue ListToJson(const std::vector<TraceSpan>& spans);
};

/// Synthesizes the `filter` span of a query trace from the engine's
/// QueryStats stage timings: children `sketch` (when the probe ran) /
/// `pass1` (with a nested `selectivity` child — pass-1 wall time includes
/// the selectivity fits) / `partition` / `pass2`, laid out back to back
/// from `start_ms`. `start_ms`/`dur_ms` are the measured bounds of the
/// filter call in the caller's clock domain; the children are
/// reconstructions from stage timers, not independently clocked spans.
TraceSpan BuildFilterSpan(const QueryStats& stats, double start_ms,
                          double dur_ms);

/// \brief Collects spans for one request, relative to its construction.
///
/// Thread-safe: shard fan-outs and parallel verify record from worker
/// threads. Tracing is off the metrics hot path — it only exists when the
/// front end decided to trace this request (explicit "trace":true or a
/// configured slow-query threshold), so a mutex per span is fine.
class TraceContext {
 public:
  explicit TraceContext(std::string trace_id);

  const std::string& trace_id() const { return trace_id_; }
  /// Milliseconds since construction (monotonic).
  double ElapsedMs() const;

  /// Appends a completed top-level span.
  void Record(TraceSpan span) PIS_EXCLUDES(mu_);

  /// Records `name` spanning [start_ms, now], adopting `children`
  /// (e.g. a remote reply's span list under its round-trip span).
  void RecordSince(const std::string& name, double start_ms,
                   std::vector<TraceSpan> children = {}) PIS_EXCLUDES(mu_);

  /// The collected spans, ordered by recording time.
  std::vector<TraceSpan> TakeSpans() PIS_EXCLUDES(mu_);

  /// {"trace_id":..,"total_ms":..,"spans":[..]} — callers add op extras.
  JsonValue ToJsonValue() PIS_EXCLUDES(mu_);

  /// Process-unique trace id: "<prefix>-<pid>-<seq>".
  static std::string NextId(const char* prefix);

 private:
  std::string trace_id_;
  uint64_t start_ns_;
  mutable Mutex mu_;
  std::vector<TraceSpan> spans_ PIS_GUARDED_BY(mu_);
};

/// \brief RAII span: times construction-to-Stop (or destruction) and
/// records into the context. A null context makes every operation a no-op,
/// so instrumented code needs no branches.
class ScopedSpan {
 public:
  ScopedSpan(TraceContext* ctx, std::string name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a child (remote subtree or sub-stage) recorded with the span.
  void AddChild(TraceSpan child);
  void AddChildren(std::vector<TraceSpan> children);
  /// Stops the clock and records now (destructor becomes a no-op).
  void Stop();

 private:
  TraceContext* ctx_;
  std::string name_;
  double start_ms_ = 0;
  std::vector<TraceSpan> children_;
  bool stopped_ = false;
};

/// \brief Append-only single-line-JSON log of traces that breached the
/// slow-query threshold. Thread-safe; lines are written atomically under a
/// mutex so concurrent handlers never interleave bytes.
class SlowQueryLog {
 public:
  /// `threshold_ms` <= 0 disables logging (ShouldLog is always false).
  /// `path` empty writes to stderr.
  SlowQueryLog(std::string path, double threshold_ms);

  bool enabled() const { return threshold_ms_ > 0; }
  double threshold_ms() const { return threshold_ms_; }
  bool ShouldLog(double total_ms) const {
    return enabled() && total_ms >= threshold_ms_;
  }

  /// Serializes `trace` as one line and appends it. Open failures are
  /// recorded (lines_dropped) but never fail the request.
  void Log(const JsonValue& trace) PIS_EXCLUDES(mu_);

  uint64_t lines_written() const {
    return lines_written_.load(std::memory_order_relaxed);
  }
  uint64_t lines_dropped() const {
    return lines_dropped_.load(std::memory_order_relaxed);
  }

 private:
  std::string path_;
  double threshold_ms_;
  Mutex mu_;
  std::atomic<uint64_t> lines_written_{0};
  std::atomic<uint64_t> lines_dropped_{0};
};

}  // namespace pis

#endif  // PIS_OBS_TRACE_H_
