#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cstdio>
#include <limits>

namespace pis {

namespace {

/// Shortest-round-trip rendering for exposition values (same policy as the
/// JSON serializer: integral values print without a decimal point).
std::string FormatNumber(double d) {
  if (d == static_cast<double>(static_cast<int64_t>(d)) &&
      d >= -9.2e18 && d <= 9.2e18) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(d)));
    return buf;
  }
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  return std::string(buf, ptr);
}

/// Prometheus label-value escaping: backslash, double-quote, newline.
std::string EscapeLabelValue(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Help strings escape backslash and newline only (they are unquoted).
std::string EscapeHelp(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Canonical child key: labels sorted by name, rendered exactly as the
/// exposition label block (minus braces). Doubles as the exposition text.
std::string LabelKey(const MetricLabels& labels) {
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key;
  for (const auto& [k, v] : sorted) {
    if (!key.empty()) key += ',';
    key += k;
    key += "=\"";
    key += EscapeLabelValue(v);
    key += '"';
  }
  return key;
}

/// "name" or "name{a="1"}" — the series head for one child, with an extra
/// label ("le" for buckets) appended when provided.
std::string SeriesHead(const std::string& name, const std::string& label_key,
                       const std::string& extra = {}) {
  std::string out = name;
  if (label_key.empty() && extra.empty()) return out;
  out += '{';
  out += label_key;
  if (!extra.empty()) {
    if (!label_key.empty()) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

JsonValue LabelsToJson(const MetricLabels& labels) {
  JsonValue obj = JsonValue::Object();
  for (const auto& [k, v] : labels) obj.Set(k, v);
  return obj;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double value) {
  // First bucket whose upper bound admits the value; linear scan — bucket
  // lists are short (<= ~16) and the scan is branch-predictable.
  size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t old_bits = sum_bits_.load(std::memory_order_relaxed);
  while (true) {
    const double new_sum = std::bit_cast<double>(old_bits) + value;
    if (sum_bits_.compare_exchange_weak(old_bits, std::bit_cast<uint64_t>(
                                                      new_sum),
                                        std::memory_order_relaxed)) {
      break;
    }
  }
}

double Histogram::sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

std::vector<double> Histogram::DefaultLatencyBounds() {
  // 100us * 4^k for k in [0, 9]: 0.0001 .. ~26.2s.
  std::vector<double> bounds;
  double b = 1e-4;
  for (int i = 0; i < 10; ++i) {
    bounds.push_back(b);
    b *= 4;
  }
  return bounds;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Family* MetricsRegistry::GetFamily(const std::string& name,
                                                    Kind kind,
                                                    const std::string& help) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    Family fam;
    fam.kind = kind;
    fam.help = help;
    it = families_.emplace(name, std::move(fam)).first;
  }
  if (it->second.kind != kind) return nullptr;  // type mismatch
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const MetricLabels& labels) {
  MutexLock lock(&mu_);
  Family* fam = GetFamily(name, Kind::kCounter, help);
  if (fam == nullptr) {
    static Counter* dummy = new Counter();  // type-mismatch sink
    return dummy;
  }
  const std::string key = LabelKey(labels);
  auto it = fam->counters.find(key);
  if (it == fam->counters.end()) {
    it = fam->counters.emplace(key, std::make_unique<Counter>()).first;
    fam->label_sets.emplace(key, labels);
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const MetricLabels& labels) {
  MutexLock lock(&mu_);
  Family* fam = GetFamily(name, Kind::kGauge, help);
  if (fam == nullptr) {
    static Gauge* dummy = new Gauge();
    return dummy;
  }
  const std::string key = LabelKey(labels);
  auto it = fam->gauges.find(key);
  if (it == fam->gauges.end()) {
    it = fam->gauges.emplace(key, std::make_unique<Gauge>()).first;
    fam->label_sets.emplace(key, labels);
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> bounds,
                                         const MetricLabels& labels) {
  MutexLock lock(&mu_);
  Family* fam = GetFamily(name, Kind::kHistogram, help);
  if (fam == nullptr) {
    static Histogram* dummy = new Histogram(Histogram::DefaultLatencyBounds());
    return dummy;
  }
  if (fam->histograms.empty()) {
    fam->bounds =
        bounds.empty() ? Histogram::DefaultLatencyBounds() : std::move(bounds);
  }
  const std::string key = LabelKey(labels);
  auto it = fam->histograms.find(key);
  if (it == fam->histograms.end()) {
    it = fam->histograms.emplace(key, std::make_unique<Histogram>(fam->bounds))
             .first;
    fam->label_sets.emplace(key, labels);
  }
  return it->second.get();
}

std::string MetricsRegistry::RenderPrometheus() const {
  MutexLock lock(&mu_);
  std::string out;
  for (const auto& [name, fam] : families_) {
    const char* type = fam.kind == Kind::kCounter   ? "counter"
                       : fam.kind == Kind::kGauge   ? "gauge"
                                                    : "histogram";
    out += "# HELP " + name + ' ' + EscapeHelp(fam.help) + '\n';
    out += "# TYPE " + name + ' ' + type + '\n';
    switch (fam.kind) {
      case Kind::kCounter:
        for (const auto& [key, c] : fam.counters) {
          out += SeriesHead(name, key) + ' ' +
                 FormatNumber(static_cast<double>(c->value())) + '\n';
        }
        break;
      case Kind::kGauge:
        for (const auto& [key, g] : fam.gauges) {
          out += SeriesHead(name, key) + ' ' +
                 FormatNumber(static_cast<double>(g->value())) + '\n';
        }
        break;
      case Kind::kHistogram:
        for (const auto& [key, h] : fam.histograms) {
          uint64_t cumulative = 0;
          for (size_t i = 0; i < h->bounds().size(); ++i) {
            cumulative += h->bucket_count(i);
            out += SeriesHead(name + "_bucket", key,
                              "le=\"" + FormatNumber(h->bounds()[i]) + "\"") +
                   ' ' + FormatNumber(static_cast<double>(cumulative)) + '\n';
          }
          cumulative += h->bucket_count(h->bounds().size());
          out += SeriesHead(name + "_bucket", key, "le=\"+Inf\"") + ' ' +
                 FormatNumber(static_cast<double>(cumulative)) + '\n';
          out += SeriesHead(name + "_sum", key) + ' ' +
                 FormatNumber(h->sum()) + '\n';
          out += SeriesHead(name + "_count", key) + ' ' +
                 FormatNumber(static_cast<double>(h->count())) + '\n';
        }
        break;
    }
  }
  return out;
}

JsonValue MetricsRegistry::ToJsonValue() const {
  MutexLock lock(&mu_);
  JsonValue root = JsonValue::Object();
  for (const auto& [name, fam] : families_) {
    JsonValue family = JsonValue::Object();
    family.Set("type", fam.kind == Kind::kCounter   ? "counter"
                       : fam.kind == Kind::kGauge   ? "gauge"
                                                    : "histogram");
    JsonValue values = JsonValue::Array();
    switch (fam.kind) {
      case Kind::kCounter:
        for (const auto& [key, c] : fam.counters) {
          JsonValue v = JsonValue::Object();
          v.Set("labels", LabelsToJson(fam.label_sets.at(key)));
          v.Set("value", c->value());
          values.Push(std::move(v));
        }
        break;
      case Kind::kGauge:
        for (const auto& [key, g] : fam.gauges) {
          JsonValue v = JsonValue::Object();
          v.Set("labels", LabelsToJson(fam.label_sets.at(key)));
          v.Set("value", static_cast<int64_t>(g->value()));
          values.Push(std::move(v));
        }
        break;
      case Kind::kHistogram:
        for (const auto& [key, h] : fam.histograms) {
          JsonValue v = JsonValue::Object();
          v.Set("labels", LabelsToJson(fam.label_sets.at(key)));
          v.Set("count", h->count());
          v.Set("sum", h->sum());
          JsonValue buckets = JsonValue::Array();
          for (size_t i = 0; i <= h->bounds().size(); ++i) {
            JsonValue b = JsonValue::Object();
            b.Set("le", i < h->bounds().size()
                            ? JsonValue(h->bounds()[i])
                            : JsonValue("+Inf"));
            b.Set("n", h->bucket_count(i));
            buckets.Push(std::move(b));
          }
          v.Set("buckets", std::move(buckets));
          values.Push(std::move(v));
        }
        break;
    }
    family.Set("values", std::move(values));
    root.Set(name, std::move(family));
  }
  return root;
}

}  // namespace pis
