// Process-wide metrics: lock-free counters/gauges and fixed-bucket latency
// histograms behind a registry that renders Prometheus text exposition and
// a JSON mirror for the `stats` protocol op.
//
// Concurrency contract (the whole point of the design):
//
//   - The HOT PATH — Counter::Inc, Gauge::Set/Add, Histogram::Observe — is
//     atomics only. No mutex, no allocation, no branch beyond the bucket
//     scan. Instrumented code caches the metric pointer once at setup and
//     pokes atomics per event, so the query path never serializes on the
//     registry.
//   - REGISTRATION (GetCounter/GetGauge/GetHistogram) takes the registry
//     mutex (TSA-annotated) and is idempotent: the same (name, labels)
//     returns the same child, so concurrent registration is safe and
//     lazily instrumenting per-endpoint/per-op children is cheap enough to
//     do on first use. Returned pointers stay valid for the registry's
//     lifetime — children are heap-allocated and never erased.
//   - RENDERING (RenderPrometheus/ToJsonValue) takes the mutex to walk the
//     family maps but reads values through the same relaxed atomics the
//     hot path writes; a render racing an increment sees either value,
//     never a torn one.
//
// Metric names follow Prometheus conventions: `pis_<noun>_total` counters,
// `pis_<noun>` gauges, `pis_<noun>_seconds` histograms with `_bucket`/
// `_sum`/`_count` series. Labels are fixed at registration per child
// (e.g. {op="query"}, {endpoint="127.0.0.1:4871"}).
#ifndef PIS_OBS_METRICS_H_
#define PIS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/json.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace pis {

/// Label set of one metric child, fixed at registration. Order-insensitive:
/// the registry sorts by key, so {a=1,b=2} and {b=2,a=1} are one child.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// \brief Monotone event counter (atomic, relaxed).
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-write-wins instantaneous value (atomic, relaxed).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Fixed-bucket histogram with Prometheus semantics.
///
/// Buckets store NON-cumulative counts internally (each observation lands
/// in exactly one bucket, one fetch_add); exposition accumulates them into
/// the cumulative `le` form Prometheus expects. The sum is an atomic
/// double (CAS loop — still lock-free), so `_sum`/`_count` give a true
/// mean even between bucket bounds.
class Histogram {
 public:
  /// `bounds` must be strictly increasing; the +Inf bucket is implicit.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);
  /// Convenience for the common case: durations measured in seconds.
  void ObserveSeconds(double seconds) { Observe(seconds); }

  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  /// Non-cumulative count of bucket `i` (i == bounds().size() is +Inf).
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Default latency bounds: 100us .. ~26s, x4 steps — wide enough for a
  /// sketch probe and a cold cluster round trip on one scale.
  static std::vector<double> DefaultLatencyBounds();

 private:
  std::vector<double> bounds_;
  /// bounds_.size() + 1 slots; the last is the +Inf overflow bucket.
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};  // bit-cast double, CAS-accumulated
};

/// \brief Registry of labeled metric families.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry the servers expose. Tests build their own.
  static MetricsRegistry& Global();

  /// Idempotent registration: returns the existing child when (name,
  /// labels) was seen before. `help` is recorded on first registration.
  /// Registering one name as two different types is a programming error
  /// and returns the originally-registered family's child of that name
  /// only for the original type — the mismatched call gets a process-local
  /// dummy so callers never crash (and the bug is visible in exposition).
  Counter* GetCounter(const std::string& name, const std::string& help,
                      const MetricLabels& labels = {}) PIS_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const MetricLabels& labels = {}) PIS_EXCLUDES(mu_);
  /// `bounds` applies on first registration of the family; later calls
  /// reuse the family's bounds (children of one family share buckets).
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds = {},
                          const MetricLabels& labels = {}) PIS_EXCLUDES(mu_);

  /// Prometheus text exposition (version 0.0.4): families sorted by name,
  /// children by label string, `# HELP`/`# TYPE` headers once per family.
  std::string RenderPrometheus() const PIS_EXCLUDES(mu_);

  /// JSON mirror for the `stats` op: {"<family>":{"type":..,
  /// "values":[{"labels":{..},"value":..|"count"/"sum"/"buckets"},..]},..}.
  JsonValue ToJsonValue() const PIS_EXCLUDES(mu_);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Family {
    Kind kind;
    std::string help;
    std::vector<double> bounds;  // histograms only
    /// Serialized sorted label set -> child. Pointers are stable: children
    /// are never erased while the registry lives.
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
    /// Original label sets keyed like the child maps (for exposition).
    std::map<std::string, MetricLabels> label_sets;
  };

  Family* GetFamily(const std::string& name, Kind kind,
                    const std::string& help) PIS_REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, Family> families_ PIS_GUARDED_BY(mu_);
};

}  // namespace pis

#endif  // PIS_OBS_METRICS_H_
