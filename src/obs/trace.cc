#include "obs/trace.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <utility>

namespace pis {

namespace {

constexpr int kMaxSpanDepth = 16;

Result<TraceSpan> SpanFromJson(const JsonValue& json, int depth) {
  if (depth > kMaxSpanDepth) {
    return Status::InvalidArgument("trace span tree too deep");
  }
  if (!json.is_object()) {
    return Status::InvalidArgument("trace span must be an object");
  }
  const JsonValue* name = json.Find("name");
  if (name == nullptr || !name->is_string()) {
    return Status::InvalidArgument("trace span missing string 'name'");
  }
  TraceSpan span;
  span.name = name->AsString();
  span.start_ms = json.GetNumberOr("start_ms", 0);
  span.dur_ms = json.GetNumberOr("dur_ms", 0);
  if (span.start_ms < 0 || span.dur_ms < 0) {
    return Status::InvalidArgument("trace span times must be non-negative");
  }
  const JsonValue* children = json.Find("children");
  if (children != nullptr) {
    if (!children->is_array()) {
      return Status::InvalidArgument("trace span 'children' must be an array");
    }
    span.children.reserve(children->size());
    for (const JsonValue& child : children->items()) {
      PIS_ASSIGN_OR_RETURN(TraceSpan decoded, SpanFromJson(child, depth + 1));
      span.children.push_back(std::move(decoded));
    }
  }
  return span;
}

}  // namespace

JsonValue TraceSpan::ToJsonValue() const {
  JsonValue obj = JsonValue::Object();
  obj.Set("name", name);
  obj.Set("start_ms", start_ms);
  obj.Set("dur_ms", dur_ms);
  if (!children.empty()) {
    JsonValue kids = JsonValue::Array();
    for (const TraceSpan& child : children) kids.Push(child.ToJsonValue());
    obj.Set("children", std::move(kids));
  }
  return obj;
}

Result<TraceSpan> TraceSpan::FromJson(const JsonValue& json) {
  return SpanFromJson(json, 0);
}

Result<std::vector<TraceSpan>> TraceSpan::ListFromJson(const JsonValue& array) {
  if (!array.is_array()) {
    return Status::InvalidArgument("'spans' must be an array");
  }
  std::vector<TraceSpan> spans;
  spans.reserve(array.size());
  for (const JsonValue& item : array.items()) {
    PIS_ASSIGN_OR_RETURN(TraceSpan span, SpanFromJson(item, 0));
    spans.push_back(std::move(span));
  }
  return spans;
}

JsonValue TraceSpan::ListToJson(const std::vector<TraceSpan>& spans) {
  JsonValue array = JsonValue::Array();
  for (const TraceSpan& span : spans) array.Push(span.ToJsonValue());
  return array;
}

TraceSpan BuildFilterSpan(const QueryStats& stats, double start_ms,
                          double dur_ms) {
  TraceSpan filter;
  filter.name = "filter";
  filter.start_ms = start_ms;
  filter.dur_ms = dur_ms;
  double offset = start_ms;
  auto stage = [&offset](const char* name, double seconds) {
    TraceSpan span;
    span.name = name;
    span.start_ms = offset;
    span.dur_ms = seconds * 1e3;
    offset += span.dur_ms;
    return span;
  };
  if (stats.sketch_checks > 0 || stats.sketch_seconds > 0) {
    filter.children.push_back(stage("sketch", stats.sketch_seconds));
  }
  TraceSpan pass1 = stage("pass1", stats.pass1_seconds);
  // Pass-1 wall time includes the per-fragment selectivity fits, so the
  // selectivity child nests at the pass-1 start rather than after it.
  TraceSpan selectivity;
  selectivity.name = "selectivity";
  selectivity.start_ms = pass1.start_ms;
  selectivity.dur_ms = stats.selectivity_seconds * 1e3;
  pass1.children.push_back(std::move(selectivity));
  filter.children.push_back(std::move(pass1));
  filter.children.push_back(stage("partition", stats.partition_seconds));
  filter.children.push_back(stage("pass2", stats.pass2_seconds));
  return filter;
}

TraceContext::TraceContext(std::string trace_id)
    : trace_id_(std::move(trace_id)), start_ns_(MonotonicNowNs()) {}

double TraceContext::ElapsedMs() const {
  return static_cast<double>(MonotonicNowNs() - start_ns_) / 1e6;
}

void TraceContext::Record(TraceSpan span) {
  MutexLock lock(&mu_);
  spans_.push_back(std::move(span));
}

void TraceContext::RecordSince(const std::string& name, double start_ms,
                               std::vector<TraceSpan> children) {
  TraceSpan span;
  span.name = name;
  span.start_ms = start_ms;
  span.dur_ms = ElapsedMs() - start_ms;
  if (span.dur_ms < 0) span.dur_ms = 0;
  span.children = std::move(children);
  Record(std::move(span));
}

std::vector<TraceSpan> TraceContext::TakeSpans() {
  MutexLock lock(&mu_);
  std::vector<TraceSpan> out = std::move(spans_);
  spans_.clear();
  return out;
}

JsonValue TraceContext::ToJsonValue() {
  JsonValue obj = JsonValue::Object();
  obj.Set("trace_id", trace_id_);
  obj.Set("total_ms", ElapsedMs());
  JsonValue spans = JsonValue::Array();
  {
    MutexLock lock(&mu_);
    for (const TraceSpan& span : spans_) spans.Push(span.ToJsonValue());
  }
  obj.Set("spans", std::move(spans));
  return obj;
}

std::string TraceContext::NextId(const char* prefix) {
  static std::atomic<uint64_t> seq{0};
  const uint64_t n = seq.fetch_add(1, std::memory_order_relaxed);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s-%d-%llu", prefix,
                static_cast<int>(::getpid()),
                static_cast<unsigned long long>(n));
  return buf;
}

ScopedSpan::ScopedSpan(TraceContext* ctx, std::string name)
    : ctx_(ctx), name_(std::move(name)) {
  if (ctx_ != nullptr) start_ms_ = ctx_->ElapsedMs();
}

ScopedSpan::~ScopedSpan() { Stop(); }

void ScopedSpan::AddChild(TraceSpan child) {
  if (ctx_ == nullptr) return;
  children_.push_back(std::move(child));
}

void ScopedSpan::AddChildren(std::vector<TraceSpan> children) {
  if (ctx_ == nullptr) return;
  for (TraceSpan& child : children) children_.push_back(std::move(child));
}

void ScopedSpan::Stop() {
  if (ctx_ == nullptr || stopped_) return;
  stopped_ = true;
  ctx_->RecordSince(name_, start_ms_, std::move(children_));
}

SlowQueryLog::SlowQueryLog(std::string path, double threshold_ms)
    : path_(std::move(path)), threshold_ms_(threshold_ms) {}

void SlowQueryLog::Log(const JsonValue& trace) {
  const std::string line = trace.Serialize() + '\n';
  MutexLock lock(&mu_);
  if (path_.empty()) {
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
    lines_written_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::FILE* f = std::fopen(path_.c_str(), "a");
  if (f == nullptr) {
    lines_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const size_t wrote = std::fwrite(line.data(), 1, line.size(), f);
  std::fclose(f);
  if (wrote == line.size()) {
    lines_written_.fetch_add(1, std::memory_order_relaxed);
  } else {
    lines_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace pis
