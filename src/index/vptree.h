// Vantage-point tree: the "metric-based index" alternative the paper cites
// (Hjaltason & Samet, TODS'03 — reference [6]). Works for any metric
// distance over stored items, e.g. Hamming distance on label sequences.
#ifndef PIS_INDEX_VPTREE_H_
#define PIS_INDEX_VPTREE_H_

#include <functional>
#include <vector>

#include "util/random.h"

namespace pis {

/// Distance between stored item `i` and the query (closed over by caller).
using ItemQueryDistance = std::function<double(size_t item)>;
/// Distance between two stored items.
using ItemPairDistance = std::function<double(size_t a, size_t b)>;
/// Receives (payload, distance) for an item within the radius.
using ItemMatchCallback = std::function<void(int payload, double distance)>;

/// \brief Static VP-tree built once over n items.
///
/// The tree stores item indices only; callers provide the metric. The
/// metric must satisfy the triangle inequality or range queries may miss
/// results (unit-score mutation distance and L1 both qualify).
class VpTree {
 public:
  /// Builds over items 0..n-1 with payloads and a pairwise metric.
  VpTree(size_t n, std::vector<int> payloads, const ItemPairDistance& metric,
         uint64_t seed = 1);

  /// Finds all items with distance(query, item) <= radius; `to_query` must
  /// be consistent with the construction metric.
  void RangeQuery(const ItemQueryDistance& to_query, double radius,
                  const ItemMatchCallback& cb) const;

  size_t size() const { return payloads_.size(); }

 private:
  struct Node {
    size_t item = 0;       // vantage point
    double threshold = 0;  // median distance to the vantage point
    int32_t inside = -1;   // items with d <= threshold
    int32_t outside = -1;  // items with d > threshold
  };

  int32_t Build(std::vector<size_t>* items, size_t begin, size_t end,
                const ItemPairDistance& metric, Rng* rng);

  std::vector<Node> nodes_;
  std::vector<int> payloads_;
  int32_t root_ = -1;
};

}  // namespace pis

#endif  // PIS_INDEX_VPTREE_H_
