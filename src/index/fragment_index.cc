#include "index/fragment_index.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "canonical/min_dfs.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/serde.h"
#include "util/timer.h"

namespace pis {

namespace {

uint64_t HashCombine(uint64_t h, uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

}  // namespace

uint64_t StructureSignature(const Graph& g) {
  std::vector<int> degrees(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) degrees[v] = g.Degree(v);
  std::sort(degrees.begin(), degrees.end());
  uint64_t h = HashCombine(static_cast<uint64_t>(g.NumVertices()),
                           static_cast<uint64_t>(g.NumEdges()) * 1315423911ULL);
  for (int d : degrees) h = HashCombine(h, static_cast<uint64_t>(d));
  return h;
}

void FragmentIndex::BuildVectors(const Graph& fragment,
                                 const std::vector<VertexId>& vorder,
                                 const std::vector<EdgeId>& eorder,
                                 std::vector<Label>* labels,
                                 std::vector<double>* weights) const {
  labels->clear();
  weights->clear();
  labels->reserve(vorder.size() + eorder.size());
  // Mirror EquivalenceClassIndex::NumVertexPositions(): vertex labels are
  // omitted when the vertex score matrix can never contribute cost.
  if (!options_.spec.vertex_scores.IsZero()) {
    for (VertexId v : vorder) labels->push_back(fragment.VertexLabel(v));
  }
  for (EdgeId e : eorder) labels->push_back(fragment.GetEdge(e).label);
  if (options_.spec.type == DistanceType::kLinear) {
    if (options_.spec.use_vertex_weights) {
      for (VertexId v : vorder) weights->push_back(fragment.VertexWeight(v));
    }
    if (options_.spec.use_edge_weights) {
      for (EdgeId e : eorder) weights->push_back(fragment.GetEdge(e).weight);
    }
    if (weights->empty()) weights->push_back(0.0);  // degenerate 1-dim point
  }
}

Result<FragmentIndex> FragmentIndex::Build(const GraphDatabase& db,
                                           const std::vector<Graph>& features,
                                           const FragmentIndexOptions& options) {
  if (options.min_fragment_edges < 1 ||
      options.max_fragment_edges < options.min_fragment_edges) {
    return Status::InvalidArgument("invalid fragment size bounds");
  }
  if (!GraphSketch::ValidParams(options.sketch_bits, options.sketch_hashes)) {
    return Status::InvalidArgument(
        "invalid sketch parameters: bits must be a multiple of 64 in "
        "[64, 2^20], hashes in [1, 64]");
  }
  Timer timer;
  FragmentIndex index;
  index.options_ = options;
  index.spec_holder_ = std::make_shared<const DistanceSpec>(options.spec);
  index.db_size_ = db.size();
  index.sketch_ =
      std::make_unique<GraphSketch>(options.sketch_bits, options.sketch_hashes);
  index.sketch_->AddGraphs(db.size());
  ClassBackend backend =
      options.backend.value_or(DefaultBackend(options.spec.type));

  // Register classes from the feature set.
  CanonicalOptions skeleton_opts;
  skeleton_opts.use_labels = false;
  skeleton_opts.first_embedding_only = true;
  for (const Graph& f : features) {
    if (f.NumEdges() < options.min_fragment_edges ||
        f.NumEdges() > options.max_fragment_edges) {
      continue;
    }
    PIS_ASSIGN_OR_RETURN(CanonicalForm form, MinDfsCode(f, skeleton_opts));
    std::string key = form.Key();
    if (index.class_by_key_.count(key) > 0) continue;
    int class_id = static_cast<int>(index.classes_.size());
    index.class_by_key_.emplace(key, class_id);
    index.classes_.push_back(std::make_unique<EquivalenceClassIndex>(
        key, f.NumVertices(), f.NumEdges(), backend, index.spec_holder_.get()));
    index.signatures_.insert(StructureSignature(f));
  }
  index.stats_.num_classes = index.classes_.size();

  // Scan the database: every connected fragment whose skeleton is a
  // registered class is inserted under all its automorphism-induced
  // sequences. Extraction (canonicalization — the expensive part) is
  // parallel; insertion stays sequential in graph-id order so per-class
  // dedup assumptions hold.
  if (options.num_threads > 1) {
    std::vector<std::vector<PendingInsert>> pending(db.size());
    std::vector<ExtractStats> stats(db.size());
    std::vector<Status> failures(db.size());
    ParallelFor(db.size(), options.num_threads, [&](size_t gid) {
      failures[gid] =
          index.ExtractGraphFragments(db.at(static_cast<int>(gid)),
                                      &pending[gid], &stats[gid]);
    });
    for (int gid = 0; gid < db.size(); ++gid) {
      PIS_RETURN_NOT_OK(failures[gid]);
      index.ApplyExtraction(gid, pending[gid], stats[gid]);
    }
  } else {
    for (int gid = 0; gid < db.size(); ++gid) {
      PIS_RETURN_NOT_OK(index.InsertGraphFragments(gid, db.at(gid)));
    }
  }
  for (auto& cls : index.classes_) cls->Finalize();
  index.stats_.build_seconds = timer.Seconds();
  return index;
}

Status FragmentIndex::ExtractGraphFragments(const Graph& g,
                                            std::vector<PendingInsert>* out,
                                            ExtractStats* stats) const {
  FragmentEnumOptions enum_opts;
  enum_opts.min_edges = options_.min_fragment_edges;
  enum_opts.max_edges = options_.max_fragment_edges;
  CanonicalOptions all_embeddings;
  all_embeddings.use_labels = false;
  all_embeddings.first_embedding_only = false;

  Status failure = Status::OK();
  std::vector<Label> labels;
  std::vector<double> weights;
  EnumerateConnectedEdgeSubgraphs(g, enum_opts, [&](const std::vector<EdgeId>&
                                                        subset) {
    ++stats->subsets;
    Graph fragment = g.EdgeSubgraph(subset);
    if (signatures_.count(StructureSignature(fragment)) == 0) {
      ++stats->skipped_by_signature;
      return true;
    }
    Result<CanonicalForm> form = MinDfsCode(fragment, all_embeddings);
    if (!form.ok()) {
      failure = form.status();
      return false;
    }
    auto it = class_by_key_.find(form.value().Key());
    if (it == class_by_key_.end()) return true;
    ++stats->occurrences;
    // Distinct sequences only: symmetric labels make many automorphisms
    // collide.
    size_t first = out->size();
    for (const CanonicalEmbedding& emb : form.value().embeddings) {
      BuildVectors(fragment, emb.vertex_order, emb.edge_order, &labels, &weights);
      bool duplicate = false;
      for (size_t i = first; i < out->size(); ++i) {
        if ((*out)[i].labels == labels && (*out)[i].weights == weights) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      out->push_back(PendingInsert{it->second, labels, weights});
    }
    return true;
  });
  return failure;
}

void FragmentIndex::ApplyExtraction(int gid,
                                    const std::vector<PendingInsert>& pending,
                                    const ExtractStats& stats) {
  for (const PendingInsert& p : pending) {
    classes_[p.class_id]->Insert(p.labels, p.weights, gid);
    sketch_->AddClass(gid, p.class_id);
  }
  stats_.num_subsets_enumerated += stats.subsets;
  stats_.num_subsets_skipped_by_signature += stats.skipped_by_signature;
  stats_.num_fragment_occurrences += stats.occurrences;
  stats_.num_sequences_inserted += pending.size();
}

Status FragmentIndex::InsertGraphFragments(int gid, const Graph& g) {
  std::vector<PendingInsert> pending;
  ExtractStats stats;
  PIS_RETURN_NOT_OK(ExtractGraphFragments(g, &pending, &stats));
  ApplyExtraction(gid, pending, stats);
  return Status::OK();
}

Result<int> FragmentIndex::AddGraph(const Graph& g) {
  int gid = db_size_;
  std::vector<PendingInsert> pending;
  ExtractStats stats;
  PIS_RETURN_NOT_OK(ExtractGraphFragments(g, &pending, &stats));
  sketch_->AddGraphs(1);  // row gid, filled by ApplyExtraction
  ApplyExtraction(gid, pending, stats);
  ++db_size_;
  // Re-finalize only the classes that received postings, so postings stay
  // sorted/deduplicated and lazily built backends (VP-tree) refresh;
  // untouched classes keep their finalized state — the amortized add cost
  // scales with the new graph, not the whole index.
  std::unordered_set<int> touched;
  for (const PendingInsert& p : pending) touched.insert(p.class_id);
  for (int class_id : touched) classes_[class_id]->Refinalize();
  return gid;
}

Status FragmentIndex::RemoveGraph(int gid) {
  if (gid < 0 || gid >= db_size_) {
    return Status::NotFound("graph id " + std::to_string(gid) +
                            " is outside the indexed database");
  }
  if (!tombstones_.insert(gid).second) {
    return Status::NotFound("graph id " + std::to_string(gid) +
                            " was already removed");
  }
  return Status::OK();
}

std::vector<int> FragmentIndex::Compact() {
  std::vector<int> remap(db_size_);
  if (tombstones_.empty()) {
    // Strict no-op: identity remap, no epoch bump, so Save() stays
    // byte-identical (the zero-tombstone contract the tests pin down).
    for (int gid = 0; gid < db_size_; ++gid) remap[gid] = gid;
    return remap;
  }
  int next = 0;
  for (int gid = 0; gid < db_size_; ++gid) {
    remap[gid] = tombstones_.count(gid) > 0 ? -1 : next++;
  }
  size_t sequences = 0;
  for (auto& cls : classes_) {
    cls->Compact(remap);
    sequences += cls->num_fragments();
  }
  sketch_->Compact(remap);
  db_size_ = next;
  tombstones_.clear();
  ++compaction_epoch_;
  // Build-scan counters (subsets enumerated, occurrences) are history of
  // scans that included the dead graphs; the sequence count is the one
  // statistic the rewrite re-derives exactly.
  stats_.num_sequences_inserted = sequences;
  return remap;
}

Result<PreparedFragment> FragmentIndex::Prepare(const Graph& fragment) const {
  CanonicalOptions opts;
  opts.use_labels = false;
  opts.first_embedding_only = true;
  PIS_ASSIGN_OR_RETURN(CanonicalForm form, MinDfsCode(fragment, opts));
  auto it = class_by_key_.find(form.Key());
  if (it == class_by_key_.end()) {
    return Status::NotFound("fragment skeleton is not an indexed class");
  }
  PreparedFragment prepared;
  prepared.class_id = it->second;
  prepared.num_edges = fragment.NumEdges();
  BuildVectors(fragment, form.embeddings[0].vertex_order,
               form.embeddings[0].edge_order, &prepared.labels,
               &prepared.weights);
  return prepared;
}

Status FragmentIndex::RangeQuery(const PreparedFragment& fragment, double sigma,
                                 const ClassMatchCallback& cb) const {
  if (fragment.class_id < 0 ||
      fragment.class_id >= static_cast<int>(classes_.size())) {
    return Status::InvalidArgument("bad prepared fragment");
  }
  if (tombstones_.empty()) {
    return classes_[fragment.class_id]->RangeQuery(fragment.labels,
                                                   fragment.weights, sigma, cb);
  }
  // Tombstoned graphs keep their postings; filter them at the emit point so
  // every caller sees exactly the live database.
  return classes_[fragment.class_id]->RangeQuery(
      fragment.labels, fragment.weights, sigma, [this, &cb](int gid, double d) {
        if (tombstones_.count(gid) == 0) cb(gid, d);
      });
}

Status FragmentIndex::RangeQuery(const Graph& fragment, double sigma,
                                 const ClassMatchCallback& cb) const {
  PIS_ASSIGN_OR_RETURN(PreparedFragment prepared, Prepare(fragment));
  return RangeQuery(prepared, sigma, cb);
}

namespace {
constexpr uint32_t kIndexMagic = 0x50495358;  // "PISX"
// v1: static index. v2 appends the tombstone list (incremental RemoveGraph)
// as a trailing section; v1 files load as tombstone-free. v3 appends the
// compaction epoch plus the live count (cross-checked against db_size minus
// tombstones on load); v2 files load with epoch 0. v4 appends the
// superimposed-sketch prefilter (parameters + per-graph code words); pre-v4
// files rebuild the sketch from class postings at load. Each version is a
// strict prefix of the next so old fixtures stay constructible from a
// current Save().
constexpr uint32_t kIndexVersion = 4;

void SerializeSpec(const DistanceSpec& spec, BinaryWriter* writer) {
  writer->U8(static_cast<uint8_t>(spec.type));
  spec.vertex_scores.Serialize(writer);
  spec.edge_scores.Serialize(writer);
  writer->U8(spec.use_vertex_weights ? 1 : 0);
  writer->U8(spec.use_edge_weights ? 1 : 0);
}

Result<DistanceSpec> DeserializeSpec(BinaryReader* reader) {
  DistanceSpec spec;
  uint8_t type = reader->U8();
  if (type > 1) return Status::ParseError("bad distance type");
  spec.type = static_cast<DistanceType>(type);
  PIS_ASSIGN_OR_RETURN(spec.vertex_scores, ScoreMatrix::Deserialize(reader));
  PIS_ASSIGN_OR_RETURN(spec.edge_scores, ScoreMatrix::Deserialize(reader));
  spec.use_vertex_weights = reader->U8() != 0;
  spec.use_edge_weights = reader->U8() != 0;
  PIS_RETURN_NOT_OK(reader->Check("distance spec"));
  return spec;
}
}  // namespace

Status FragmentIndex::Save(std::ostream& out) const {
  BinaryWriter writer(out);
  writer.U32(kIndexMagic);
  writer.U32(kIndexVersion);
  writer.I32(options_.min_fragment_edges);
  writer.I32(options_.max_fragment_edges);
  SerializeSpec(options_.spec, &writer);
  writer.U8(options_.backend.has_value() ? 1 : 0);
  if (options_.backend.has_value()) {
    writer.U8(static_cast<uint8_t>(*options_.backend));
  }
  writer.I32(db_size_);
  // Build statistics (informational, preserved across load).
  writer.U64(stats_.num_fragment_occurrences);
  writer.U64(stats_.num_sequences_inserted);
  writer.U64(stats_.num_subsets_enumerated);
  writer.U64(stats_.num_subsets_skipped_by_signature);
  // Signature set for the subset prefilter, sorted so Save is a pure
  // function of the index state (the unordered_set's iteration order is
  // not — it depends on insertion history, which a Load resets).
  std::vector<uint64_t> signatures(signatures_.begin(), signatures_.end());
  std::sort(signatures.begin(), signatures.end());
  writer.U64(signatures.size());
  for (uint64_t sig : signatures) writer.U64(sig);
  writer.U64(classes_.size());
  for (const auto& cls : classes_) {
    PIS_RETURN_NOT_OK(cls->Serialize(&writer));
  }
  // v2 trailing section: sorted tombstone ids. v3 trailing section:
  // compaction epoch + live count. Each kept last so an older file is
  // exactly a newer file without its tail (the compat fixtures rely on
  // this).
  std::vector<int> dead(tombstones_.begin(), tombstones_.end());
  std::sort(dead.begin(), dead.end());
  writer.VecInt(dead);
  writer.U32(compaction_epoch_);
  writer.I32(num_live());
  // v4 trailing section: the superimposed-sketch prefilter. Words are
  // written verbatim, so Save -> Load -> Save is byte-identical.
  sketch_->Serialize(&writer);
  if (!writer.ok()) return Status::IOError("index write failed");
  return Status::OK();
}

Result<FragmentIndex> FragmentIndex::Clone() const {
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  PIS_RETURN_NOT_OK(Save(buffer));
  PIS_ASSIGN_OR_RETURN(FragmentIndex copy, Load(buffer));
  copy.options_.num_threads = options_.num_threads;
  copy.stats_ = stats_;
  return copy;
}

Status FragmentIndex::SaveFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  return Save(out);
}

Result<FragmentIndex> FragmentIndex::Load(std::istream& in) {
  BinaryReader reader(in);
  if (reader.U32() != kIndexMagic) {
    return Status::ParseError("not a PIS index file (bad magic)");
  }
  uint32_t version = reader.U32();
  if (version < 1 || version > kIndexVersion) {
    return Status::ParseError("unsupported index version " +
                              std::to_string(version) + " (this build reads " +
                              std::to_string(kIndexVersion) + " and older)");
  }
  FragmentIndex index;
  index.options_.min_fragment_edges = reader.I32();
  index.options_.max_fragment_edges = reader.I32();
  PIS_ASSIGN_OR_RETURN(index.options_.spec, DeserializeSpec(&reader));
  if (reader.U8() != 0) {
    uint8_t backend = reader.U8();
    if (backend > 2) return Status::ParseError("bad backend tag");
    index.options_.backend = static_cast<ClassBackend>(backend);
  }
  index.spec_holder_ = std::make_shared<const DistanceSpec>(index.options_.spec);
  index.db_size_ = reader.I32();
  index.stats_.num_fragment_occurrences = reader.U64();
  index.stats_.num_sequences_inserted = reader.U64();
  index.stats_.num_subsets_enumerated = reader.U64();
  index.stats_.num_subsets_skipped_by_signature = reader.U64();
  uint64_t num_signatures = reader.ReadCount(8);
  PIS_RETURN_NOT_OK(reader.Check("index header"));
  for (uint64_t i = 0; i < num_signatures; ++i) {
    index.signatures_.insert(reader.U64());
  }
  uint64_t num_classes = reader.ReadCount(16);
  PIS_RETURN_NOT_OK(reader.Check("index signatures"));
  for (uint64_t i = 0; i < num_classes; ++i) {
    PIS_ASSIGN_OR_RETURN(
        std::unique_ptr<EquivalenceClassIndex> cls,
        EquivalenceClassIndex::Deserialize(&reader, index.spec_holder_.get()));
    int class_id = static_cast<int>(index.classes_.size());
    if (!index.class_by_key_.emplace(cls->key(), class_id).second) {
      return Status::ParseError("duplicate class key in index file");
    }
    index.classes_.push_back(std::move(cls));
  }
  index.stats_.num_classes = index.classes_.size();
  if (version >= 2) {
    std::vector<int> dead = reader.VecInt();
    PIS_RETURN_NOT_OK(reader.Check("index tombstones"));
    for (int gid : dead) {
      if (gid < 0 || gid >= index.db_size_ ||
          !index.tombstones_.insert(gid).second) {
        return Status::ParseError("bad tombstone id in index file");
      }
    }
  }
  if (version >= 3) {
    index.compaction_epoch_ = reader.U32();
    int32_t live = reader.I32();
    PIS_RETURN_NOT_OK(reader.Check("index compaction trailer"));
    if (live != index.num_live()) {
      return Status::ParseError(
          "index live count " + std::to_string(live) +
          " disagrees with db_size minus tombstones (" +
          std::to_string(index.num_live()) + ")");
    }
  }
  if (version >= 4) {
    // A file that declared v4 promised a sketch section; a short or
    // mangled one is a structural disagreement with that promise (mirrors
    // the truncated-manifest contract), not unreadable garbage.
    Result<GraphSketch> sketch = GraphSketch::Deserialize(&reader);
    if (!sketch.ok()) {
      return Status::InvalidArgument("index sketch section truncated or "
                                     "invalid: " +
                                     sketch.status().message());
    }
    if (sketch.value().num_graphs() != index.db_size_) {
      return Status::InvalidArgument(
          "sketch covers " + std::to_string(sketch.value().num_graphs()) +
          " graphs but the index holds " + std::to_string(index.db_size_));
    }
    index.options_.sketch_bits = sketch.value().bits_per_graph();
    index.options_.sketch_hashes = sketch.value().num_hashes();
    index.sketch_ = std::make_unique<GraphSketch>(sketch.MoveValue());
  } else {
    // Pre-v4 file: derive the sketch the section would have carried.
    index.RebuildSketch();
  }
  return index;
}

void FragmentIndex::RebuildSketch() {
  sketch_ =
      std::make_unique<GraphSketch>(options_.sketch_bits, options_.sketch_hashes);
  sketch_->AddGraphs(db_size_);
  for (int class_id = 0; class_id < static_cast<int>(classes_.size());
       ++class_id) {
    for (int gid : classes_[class_id]->containing_graphs()) {
      sketch_->AddClass(gid, class_id);
    }
  }
}

Result<FragmentIndex> FragmentIndex::LoadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  return Load(in);
}

bool FragmentIndex::HasClass(const Graph& fragment) const {
  CanonicalOptions opts;
  opts.use_labels = false;
  opts.first_embedding_only = true;
  Result<CanonicalForm> form = MinDfsCode(fragment, opts);
  if (!form.ok()) return false;
  return class_by_key_.count(form.value().Key()) > 0;
}

}  // namespace pis
