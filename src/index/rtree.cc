#include "index/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace pis {

RTree::RTree(int dimensions, int max_entries)
    : dims_(dimensions),
      max_entries_(max_entries),
      min_entries_(std::max(2, max_entries / 2)) {
  PIS_CHECK(dims_ >= 1);
  PIS_CHECK(max_entries_ >= 4);
}

double RTree::Area(const Rect& r) {
  double area = 1.0;
  for (size_t d = 0; d < r.lo.size(); ++d) area *= (r.hi[d] - r.lo[d]);
  return area;
}

double RTree::Enlargement(const Rect& r, const Rect& add) {
  double enlarged = 1.0;
  for (size_t d = 0; d < r.lo.size(); ++d) {
    enlarged *= std::max(r.hi[d], add.hi[d]) - std::min(r.lo[d], add.lo[d]);
  }
  return enlarged - Area(r);
}

void RTree::Extend(Rect* r, const Rect& add) {
  for (size_t d = 0; d < r->lo.size(); ++d) {
    r->lo[d] = std::min(r->lo[d], add.lo[d]);
    r->hi[d] = std::max(r->hi[d], add.hi[d]);
  }
}

double RTree::MinDistL1(const Rect& r, const std::vector<double>& p) const {
  double dist = 0;
  for (int d = 0; d < dims_; ++d) {
    if (p[d] < r.lo[d]) {
      dist += r.lo[d] - p[d];
    } else if (p[d] > r.hi[d]) {
      dist += p[d] - r.hi[d];
    }
  }
  return dist;
}

RTree::Rect RTree::PointRect(const std::vector<double>& p) const {
  return Rect{p, p};
}

RTree::Rect RTree::NodeRect(int32_t node) const {
  const Node& n = nodes_[node];
  PIS_DCHECK(!n.entries.empty());
  Rect r = n.entries[0].rect;
  for (size_t i = 1; i < n.entries.size(); ++i) Extend(&r, n.entries[i].rect);
  return r;
}

int32_t RTree::ChooseSubtree(int32_t node, const Rect& rect) const {
  const Node& n = nodes_[node];
  double best_enlargement = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  int32_t best = -1;
  for (size_t i = 0; i < n.entries.size(); ++i) {
    double enl = Enlargement(n.entries[i].rect, rect);
    double area = Area(n.entries[i].rect);
    if (enl < best_enlargement ||
        (enl == best_enlargement && area < best_area)) {
      best_enlargement = enl;
      best_area = area;
      best = static_cast<int32_t>(i);
    }
  }
  return best;
}

void RTree::QuadraticSeeds(const std::vector<Entry>& entries, size_t* a,
                           size_t* b) const {
  double worst = -1;
  *a = 0;
  *b = 1;
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      Rect combined = entries[i].rect;
      Extend(&combined, entries[j].rect);
      double waste = Area(combined) - Area(entries[i].rect) - Area(entries[j].rect);
      if (waste > worst) {
        worst = waste;
        *a = i;
        *b = j;
      }
    }
  }
}

int32_t RTree::SplitNode(int32_t node) {
  // Guttman quadratic split.
  std::vector<Entry> entries = std::move(nodes_[node].entries);
  nodes_[node].entries.clear();
  int32_t sibling = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(Node{nodes_[node].leaf, {}});

  size_t seed_a = 0;
  size_t seed_b = 1;
  QuadraticSeeds(entries, &seed_a, &seed_b);
  Rect rect_a = entries[seed_a].rect;
  Rect rect_b = entries[seed_b].rect;
  nodes_[node].entries.push_back(entries[seed_a]);
  nodes_[sibling].entries.push_back(entries[seed_b]);
  std::vector<bool> assigned(entries.size(), false);
  assigned[seed_a] = assigned[seed_b] = true;
  size_t remaining = entries.size() - 2;

  while (remaining > 0) {
    // Force assignment when one group must take everything left to reach
    // the minimum fill.
    if (nodes_[node].entries.size() + remaining == static_cast<size_t>(min_entries_)) {
      for (size_t i = 0; i < entries.size(); ++i) {
        if (!assigned[i]) {
          nodes_[node].entries.push_back(entries[i]);
          Extend(&rect_a, entries[i].rect);
          assigned[i] = true;
        }
      }
      remaining = 0;
      break;
    }
    if (nodes_[sibling].entries.size() + remaining ==
        static_cast<size_t>(min_entries_)) {
      for (size_t i = 0; i < entries.size(); ++i) {
        if (!assigned[i]) {
          nodes_[sibling].entries.push_back(entries[i]);
          Extend(&rect_b, entries[i].rect);
          assigned[i] = true;
        }
      }
      remaining = 0;
      break;
    }
    // Pick the unassigned entry with the strongest group preference.
    double best_diff = -1;
    size_t best_i = 0;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (assigned[i]) continue;
      double da = Enlargement(rect_a, entries[i].rect);
      double db = Enlargement(rect_b, entries[i].rect);
      double diff = std::abs(da - db);
      if (diff > best_diff) {
        best_diff = diff;
        best_i = i;
      }
    }
    double da = Enlargement(rect_a, entries[best_i].rect);
    double db = Enlargement(rect_b, entries[best_i].rect);
    bool to_a = da < db ||
                (da == db && nodes_[node].entries.size() <=
                                 nodes_[sibling].entries.size());
    if (to_a) {
      nodes_[node].entries.push_back(entries[best_i]);
      Extend(&rect_a, entries[best_i].rect);
    } else {
      nodes_[sibling].entries.push_back(entries[best_i]);
      Extend(&rect_b, entries[best_i].rect);
    }
    assigned[best_i] = true;
    --remaining;
  }
  return sibling;
}

int32_t RTree::InsertRecursive(int32_t node, const Entry& entry, int target_level,
                               int level) {
  Node& n = nodes_[node];
  if (level == target_level) {
    n.entries.push_back(entry);
  } else {
    int32_t slot = ChooseSubtree(node, entry.rect);
    int32_t child = n.entries[slot].child;
    int32_t new_sibling = InsertRecursive(child, entry, target_level, level - 1);
    // `n` may be dangling after vector growth inside the recursion.
    Node& self = nodes_[node];
    self.entries[slot].rect = NodeRect(child);
    if (new_sibling >= 0) {
      Entry sibling_entry;
      sibling_entry.rect = NodeRect(new_sibling);
      sibling_entry.child = new_sibling;
      self.entries.push_back(sibling_entry);
    }
  }
  if (nodes_[node].entries.size() > static_cast<size_t>(max_entries_)) {
    return SplitNode(node);
  }
  return -1;
}

void RTree::Insert(const std::vector<double>& point, int payload) {
  PIS_CHECK(static_cast<int>(point.size()) == dims_);
  int32_t pid = static_cast<int32_t>(points_.size());
  points_.push_back(point);
  payloads_.push_back(payload);
  ++num_points_;

  Entry entry;
  entry.rect = PointRect(point);
  entry.point = pid;

  if (root_ < 0) {
    root_ = static_cast<int32_t>(nodes_.size());
    nodes_.push_back(Node{true, {}});
    height_ = 1;
  }
  int32_t sibling = InsertRecursive(root_, entry, 0, height_ - 1);
  if (sibling >= 0) {
    // Grow a new root.
    int32_t new_root = static_cast<int32_t>(nodes_.size());
    nodes_.push_back(Node{false, {}});
    Entry left;
    left.rect = NodeRect(root_);
    left.child = root_;
    Entry right;
    right.rect = NodeRect(sibling);
    right.child = sibling;
    nodes_[new_root].entries = {left, right};
    root_ = new_root;
    ++height_;
  }
}

void RTree::RangeQueryL1(const std::vector<double>& center, double radius,
                         const PointMatchCallback& cb) const {
  PIS_CHECK(static_cast<int>(center.size()) == dims_);
  if (root_ < 0) return;
  std::vector<int32_t> stack = {root_};
  while (!stack.empty()) {
    int32_t node = stack.back();
    stack.pop_back();
    const Node& n = nodes_[node];
    for (const Entry& e : n.entries) {
      if (MinDistL1(e.rect, center) > radius) continue;
      if (n.leaf) {
        const std::vector<double>& p = points_[e.point];
        double dist = 0;
        for (int d = 0; d < dims_; ++d) dist += std::abs(p[d] - center[d]);
        if (dist <= radius) cb(payloads_[e.point], dist);
      } else {
        stack.push_back(e.child);
      }
    }
  }
}

int RTree::Height() const { return height_; }

void RTree::ForEachPoint(
    const std::function<void(const std::vector<double>& point, int payload)>&
        visitor) const {
  for (size_t i = 0; i < points_.size(); ++i) visitor(points_[i], payloads_[i]);
}

void RTree::Serialize(BinaryWriter* writer) const {
  writer->I32(dims_);
  writer->I32(max_entries_);
  writer->U64(points_.size());
  for (size_t i = 0; i < points_.size(); ++i) {
    writer->VecF64(points_[i]);
    writer->I32(payloads_[i]);
  }
}

Result<RTree> RTree::Deserialize(BinaryReader* reader) {
  int32_t dims = reader->I32();
  int32_t max_entries = reader->I32();
  uint64_t n = reader->ReadCount(12);  // >= one point + payload each
  PIS_RETURN_NOT_OK(reader->Check("rtree header"));
  if (dims < 1 || max_entries < 4) return Status::ParseError("bad rtree params");
  RTree tree(dims, max_entries);
  for (uint64_t i = 0; i < n; ++i) {
    std::vector<double> point = reader->VecF64();
    int payload = reader->I32();
    PIS_RETURN_NOT_OK(reader->Check("rtree point"));
    if (static_cast<int>(point.size()) != dims) {
      return Status::ParseError("rtree point dimension mismatch");
    }
    tree.Insert(point, payload);
  }
  return tree;
}

bool RTree::CheckInvariants() const {
  if (root_ < 0) return true;
  bool ok = true;
  std::vector<std::pair<int32_t, int>> stack = {{root_, height_ - 1}};
  while (!stack.empty()) {
    auto [node, level] = stack.back();
    stack.pop_back();
    const Node& n = nodes_[node];
    if (n.entries.empty()) {
      PIS_LOG(Error) << "rtree: empty node " << node;
      ok = false;
      continue;
    }
    if (node != root_ && n.entries.size() < static_cast<size_t>(min_entries_)) {
      PIS_LOG(Error) << "rtree: underfull node " << node;
      ok = false;
    }
    if (n.entries.size() > static_cast<size_t>(max_entries_)) {
      PIS_LOG(Error) << "rtree: overfull node " << node;
      ok = false;
    }
    if (n.leaf != (level == 0)) {
      PIS_LOG(Error) << "rtree: leaf flag inconsistent at node " << node;
      ok = false;
    }
    if (!n.leaf) {
      for (const Entry& e : n.entries) {
        Rect child_rect = NodeRect(e.child);
        for (int d = 0; d < dims_; ++d) {
          if (child_rect.lo[d] < e.rect.lo[d] || child_rect.hi[d] > e.rect.hi[d]) {
            PIS_LOG(Error) << "rtree: MBR does not cover child at node " << node;
            ok = false;
            break;
          }
        }
        stack.push_back({e.child, level - 1});
      }
    }
  }
  return ok;
}

}  // namespace pis
