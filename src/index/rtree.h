// R-tree (Guttman, SIGMOD'84 — reference [4] of the paper) over k-dim
// points with L1-ball range queries: the paper's index structure for the
// linear mutation distance (§4, Example 3).
#ifndef PIS_INDEX_RTREE_H_
#define PIS_INDEX_RTREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "util/serde.h"
#include "util/status.h"

namespace pis {

/// Receives (payload, l1_distance) for each point inside the query ball.
using PointMatchCallback = std::function<void(int payload, double distance)>;

/// \brief Dynamic R-tree with quadratic split, storing points + int payloads.
///
/// Dimensions are fixed at construction (one per fragment edge/vertex
/// weight). Duplicate points are allowed.
class RTree {
 public:
  /// `dimensions` >= 1; `max_entries` is the node capacity M (min fill is
  /// M/2 rounded down, at least 2).
  explicit RTree(int dimensions, int max_entries = 16);

  /// Inserts a point with a payload; `point` must have `dimensions()` values.
  void Insert(const std::vector<double>& point, int payload);

  /// Finds every point p with L1(p, center) <= radius.
  void RangeQueryL1(const std::vector<double>& center, double radius,
                    const PointMatchCallback& cb) const;

  size_t size() const { return num_points_; }
  int dimensions() const { return dims_; }
  int max_entries() const { return max_entries_; }
  /// Visits every stored point with its payload, in insertion order. Used
  /// by compaction to rebuild a tree without the dead points (same
  /// re-insertion scheme as Deserialize, so the result is deterministic).
  void ForEachPoint(
      const std::function<void(const std::vector<double>& point, int payload)>&
          visitor) const;
  /// Tree height (1 = root is a leaf); 0 when empty.
  int Height() const;

  /// Validates structural invariants (MBR containment, fill factors);
  /// returns false and logs on violation. For tests.
  bool CheckInvariants() const;

  /// Binary persistence. Serialization stores the points and payloads;
  /// deserialization rebuilds the tree by re-insertion (deterministic).
  void Serialize(BinaryWriter* writer) const;
  static Result<RTree> Deserialize(BinaryReader* reader);

 private:
  struct Rect {
    std::vector<double> lo;
    std::vector<double> hi;
  };
  struct Entry {
    Rect rect;
    int32_t child = -1;  // internal: node index
    int32_t point = -1;  // leaf: index into points_/payloads_
  };
  struct Node {
    bool leaf = true;
    std::vector<Entry> entries;
  };

  static double Area(const Rect& r);
  static double Enlargement(const Rect& r, const Rect& add);
  static void Extend(Rect* r, const Rect& add);
  static bool Intersects(const Rect& r, const std::vector<double>& lo,
                         const std::vector<double>& hi);
  double MinDistL1(const Rect& r, const std::vector<double>& p) const;

  Rect PointRect(const std::vector<double>& p) const;
  Rect NodeRect(int32_t node) const;
  // Returns the index of the new sibling if the child split, else -1.
  int32_t InsertRecursive(int32_t node, const Entry& entry, int target_level,
                          int level);
  int32_t ChooseSubtree(int32_t node, const Rect& rect) const;
  int32_t SplitNode(int32_t node);
  void QuadraticSeeds(const std::vector<Entry>& entries, size_t* a, size_t* b) const;

  int dims_;
  int max_entries_;
  int min_entries_;
  int32_t root_ = -1;
  int height_ = 0;
  std::vector<Node> nodes_;
  std::vector<std::vector<double>> points_;
  std::vector<int> payloads_;
  size_t num_points_ = 0;
};

}  // namespace pis

#endif  // PIS_INDEX_RTREE_H_
