#include "index/graph_sketch.h"

#include "util/logging.h"
#include "util/serde.h"

namespace pis {

namespace {

// splitmix64: cheap, well-mixed, and stable across platforms — the bit
// positions are part of the on-disk format from index v4 on.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

GraphSketch::GraphSketch(int bits_per_graph, int num_hashes)
    : bits_(bits_per_graph), hashes_(num_hashes), words_(bits_per_graph / 64) {
  PIS_CHECK(ValidParams(bits_per_graph, num_hashes));
}

bool GraphSketch::ValidParams(int bits_per_graph, int num_hashes) {
  return bits_per_graph >= 64 && bits_per_graph % 64 == 0 &&
         bits_per_graph <= (1 << 20) && num_hashes >= 1 && num_hashes <= 64;
}

uint64_t GraphSketch::BitFor(int class_id, int k) const {
  // Double hashing over the class id: k independent-enough positions
  // without k full hash evaluations.
  const uint64_t h1 = SplitMix64(static_cast<uint64_t>(class_id) + 1);
  const uint64_t h2 = SplitMix64(h1 ^ 0x9e3779b97f4a7c15ULL) | 1;
  return (h1 + static_cast<uint64_t>(k) * h2) % static_cast<uint64_t>(bits_);
}

void GraphSketch::AddGraphs(int count) {
  data_.resize(data_.size() + static_cast<size_t>(count) * words_, 0);
}

void GraphSketch::AddClass(int gid, int class_id) {
  uint64_t* block = &data_[static_cast<size_t>(gid) * words_];
  for (int k = 0; k < hashes_; ++k) {
    const uint64_t bit = BitFor(class_id, k);
    block[bit / 64] |= uint64_t{1} << (bit % 64);
  }
}

std::vector<uint64_t> GraphSketch::MakeMask(
    const std::vector<int>& class_ids) const {
  std::vector<uint64_t> mask(words_, 0);
  for (int class_id : class_ids) {
    for (int k = 0; k < hashes_; ++k) {
      const uint64_t bit = BitFor(class_id, k);
      mask[bit / 64] |= uint64_t{1} << (bit % 64);
    }
  }
  return mask;
}

void GraphSketch::Compact(const std::vector<int>& remap) {
  int survivors = 0;
  for (int new_id : remap) {
    if (new_id >= 0) ++survivors;
  }
  std::vector<uint64_t> compacted(static_cast<size_t>(survivors) * words_, 0);
  for (size_t old_id = 0; old_id < remap.size(); ++old_id) {
    const int new_id = remap[old_id];
    if (new_id < 0) continue;
    for (int w = 0; w < words_; ++w) {
      compacted[static_cast<size_t>(new_id) * words_ + w] =
          data_[old_id * words_ + w];
    }
  }
  data_ = std::move(compacted);
}

void GraphSketch::Serialize(BinaryWriter* writer) const {
  writer->I32(bits_);
  writer->I32(hashes_);
  writer->U64(data_.size());
  for (uint64_t word : data_) writer->U64(word);
}

Result<GraphSketch> GraphSketch::Deserialize(BinaryReader* reader) {
  const int32_t bits = reader->I32();
  const int32_t hashes = reader->I32();
  PIS_RETURN_NOT_OK(reader->Check("sketch header"));
  if (!ValidParams(bits, hashes)) {
    return Status::ParseError("implausible sketch parameters (" +
                              std::to_string(bits) + " bits, " +
                              std::to_string(hashes) + " hashes)");
  }
  GraphSketch sketch(bits, hashes);
  const uint64_t num_words = reader->ReadCount(8);
  PIS_RETURN_NOT_OK(reader->Check("sketch word count"));
  if (num_words % static_cast<uint64_t>(sketch.words_) != 0) {
    return Status::ParseError("sketch payload is not whole graph blocks");
  }
  sketch.data_.resize(num_words);
  for (uint64_t i = 0; i < num_words; ++i) sketch.data_[i] = reader->U64();
  PIS_RETURN_NOT_OK(reader->Check("sketch payload"));
  return sketch;
}

}  // namespace pis
