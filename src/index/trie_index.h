// Trie over fixed-length label sequences with cost-bounded range search:
// the paper's index structure for the mutation distance ("for the mutation
// distance, we can use a trie", §4).
#ifndef PIS_INDEX_TRIE_INDEX_H_
#define PIS_INDEX_TRIE_INDEX_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "distance/score_matrix.h"
#include "graph/graph.h"
#include "util/serde.h"

namespace pis {

/// Per-position cost model for sequence mutation distance: positions
/// [0, num_vertex_positions) score with the vertex matrix, the rest with
/// the edge matrix.
struct SequenceCostModel {
  const ScoreMatrix* vertex_scores = nullptr;
  const ScoreMatrix* edge_scores = nullptr;
  int num_vertex_positions = 0;

  double Cost(int position, Label a, Label b) const {
    const ScoreMatrix* m =
        position < num_vertex_positions ? vertex_scores : edge_scores;
    return m->Cost(a, b);
  }
};

/// Receives (graph_id, mutation cost) for a matching stored sequence. One
/// call per (leaf, graph) pair; callers aggregate the per-graph minimum.
using SequenceMatchCallback = std::function<void(int graph_id, double cost)>;

/// \brief Fixed-depth trie keyed by label sequences, postings at the leaves.
///
/// Insertions happen in non-decreasing graph-id order (the index builder
/// scans the database sequentially); Finalize() deduplicates postings.
class LabelTrie {
 public:
  explicit LabelTrie(int sequence_length);

  /// Inserts a sequence for a graph. `seq` must have the trie's length.
  void Insert(const std::vector<Label>& seq, int graph_id);

  /// Sorts and deduplicates all posting lists. Call once after all inserts.
  void Finalize();

  /// Finds every stored sequence whose mutation cost against `seq` is
  /// <= sigma and invokes the callback per (leaf, graph) posting.
  void RangeQuery(const std::vector<Label>& seq, const SequenceCostModel& model,
                  double sigma, const SequenceMatchCallback& cb) const;

  int sequence_length() const { return sequence_length_; }
  size_t NumLeaves() const { return num_leaves_; }
  size_t NumNodes() const { return nodes_.size(); }
  size_t NumPostings() const;

  /// Visits every stored sequence with its posting list, in depth-first
  /// symbol order. The references are only valid inside the callback. Used
  /// by compaction to rebuild a trie without the dead postings.
  using SequenceVisitor =
      std::function<void(const std::vector<Label>& seq,
                         const std::vector<int>& postings)>;
  void ForEachSequence(const SequenceVisitor& visitor) const;

  /// Binary persistence: the structural node array and posting lists.
  void Serialize(BinaryWriter* writer) const;
  static Result<LabelTrie> Deserialize(BinaryReader* reader);

 private:
  struct Node {
    // Sorted by symbol; small fan-out expected (few bond/atom types).
    std::vector<std::pair<Label, int32_t>> children;
    int32_t postings = -1;  // index into postings_, leaves only
  };

  int32_t ChildOrCreate(int32_t node, Label symbol);
  int32_t FindChild(int32_t node, Label symbol) const;

  int sequence_length_;
  std::vector<Node> nodes_;
  std::vector<std::vector<int>> postings_;
  size_t num_leaves_ = 0;
};

}  // namespace pis

#endif  // PIS_INDEX_TRIE_INDEX_H_
