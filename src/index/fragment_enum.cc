#include "index/fragment_enum.h"

#include "util/logging.h"

namespace pis {

namespace {

// ESU (Wernicke, 2006) on the line graph: subsets containing root edge r use
// only edges > r; the extension set grows by *exclusive* neighbors of the
// newest edge, which guarantees each subset has exactly one generation path.
class EdgeEsu {
 public:
  EdgeEsu(const Graph& g, const FragmentEnumOptions& options,
          const EdgeSubsetCallback& cb)
      : g_(g), options_(options), cb_(cb) {
    in_subset_.assign(g.NumEdges(), false);
    neighbor_of_subset_.assign(g.NumEdges(), false);
  }

  size_t Run() {
    for (EdgeId root = 0; root < g_.NumEdges(); ++root) {
      if (stopped_) break;
      root_ = root;
      subset_ = {root};
      in_subset_[root] = true;
      std::vector<EdgeId> fresh = EligibleNeighbors(root);
      for (EdgeId e : fresh) neighbor_of_subset_[e] = true;
      Extend(fresh);
      for (EdgeId e : fresh) neighbor_of_subset_[e] = false;
      in_subset_[root] = false;
    }
    return emitted_;
  }

 private:
  // Edge-neighbors of `e` that are allowed in subsets rooted at root_
  // (id > root_) and not already adjacent to the subset.
  std::vector<EdgeId> EligibleNeighbors(EdgeId e) const {
    std::vector<EdgeId> out;
    const Edge& edge = g_.GetEdge(e);
    for (VertexId endpoint : {edge.u, edge.v}) {
      for (EdgeId nb : g_.IncidentEdges(endpoint)) {
        if (nb == e || nb <= root_) continue;
        if (in_subset_[nb] || neighbor_of_subset_[nb]) continue;
        out.push_back(nb);
      }
    }
    return out;
  }

  void Emit() {
    if (static_cast<int>(subset_.size()) >= options_.min_edges) {
      ++emitted_;
      if (!cb_(subset_)) stopped_ = true;
    }
  }

  // `extension`: candidate edges that may still be added at this node.
  void Extend(std::vector<EdgeId> extension) {
    Emit();
    if (stopped_) return;
    if (static_cast<int>(subset_.size()) >= options_.max_edges) return;
    while (!extension.empty()) {
      EdgeId w = extension.back();
      extension.pop_back();
      // Children may use the remaining extension plus exclusive neighbors
      // of w (edges adjacent to w but not to the current subset).
      subset_.push_back(w);
      in_subset_[w] = true;
      std::vector<EdgeId> fresh = EligibleNeighbors(w);
      for (EdgeId e : fresh) neighbor_of_subset_[e] = true;
      std::vector<EdgeId> child_ext = extension;
      child_ext.insert(child_ext.end(), fresh.begin(), fresh.end());
      Extend(std::move(child_ext));
      for (EdgeId e : fresh) neighbor_of_subset_[e] = false;
      in_subset_[w] = false;
      subset_.pop_back();
      if (stopped_) return;
    }
  }

  const Graph& g_;
  FragmentEnumOptions options_;
  const EdgeSubsetCallback& cb_;
  EdgeId root_ = 0;
  std::vector<EdgeId> subset_;
  std::vector<bool> in_subset_;
  std::vector<bool> neighbor_of_subset_;
  size_t emitted_ = 0;
  bool stopped_ = false;
};

}  // namespace

size_t EnumerateConnectedEdgeSubgraphs(const Graph& g,
                                       const FragmentEnumOptions& options,
                                       const EdgeSubsetCallback& cb) {
  PIS_CHECK(options.min_edges >= 1 && options.max_edges >= options.min_edges);
  EdgeEsu esu(g, options, cb);
  return esu.Run();
}

size_t CountConnectedEdgeSubgraphs(const Graph& g,
                                   const FragmentEnumOptions& options) {
  return EnumerateConnectedEdgeSubgraphs(
      g, options, [](const std::vector<EdgeId>&) { return true; });
}

}  // namespace pis
