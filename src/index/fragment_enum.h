// Connected edge-subgraph enumeration: every connected subset of edges up
// to a size cap, each emitted exactly once (ESU adapted to the line graph).
// Both index construction (fragments of database graphs) and query
// processing (fragments of the query graph, Algorithm 2 lines 3-4) use it.
#ifndef PIS_INDEX_FRAGMENT_ENUM_H_
#define PIS_INDEX_FRAGMENT_ENUM_H_

#include <functional>
#include <vector>

#include "graph/graph.h"

namespace pis {

struct FragmentEnumOptions {
  int min_edges = 1;
  int max_edges = 6;
};

/// Receives each connected edge subset (edge ids of the host graph, in
/// discovery order). Return false to stop the enumeration early.
using EdgeSubsetCallback = std::function<bool(const std::vector<EdgeId>&)>;

/// Enumerates every connected edge subset of `g` with size in
/// [min_edges, max_edges], exactly once each. Returns the number emitted.
size_t EnumerateConnectedEdgeSubgraphs(const Graph& g,
                                       const FragmentEnumOptions& options,
                                       const EdgeSubsetCallback& cb);

/// Counts without materializing (for capacity planning and tests).
size_t CountConnectedEdgeSubgraphs(const Graph& g, const FragmentEnumOptions& options);

}  // namespace pis

#endif  // PIS_INDEX_FRAGMENT_ENUM_H_
