// The fragment-based index of PIS (paper §4, Figures 4-5): a hash table
// from canonical skeleton codes to per-class indexes. Construction scans
// the database once, enumerating every fragment whose skeleton is a
// selected feature and inserting all automorphism-induced label sequences /
// weight vectors.
#ifndef PIS_INDEX_FRAGMENT_INDEX_H_
#define PIS_INDEX_FRAGMENT_INDEX_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "distance/distance_spec.h"
#include "graph/graph.h"
#include "index/class_index.h"
#include "index/fragment_enum.h"
#include "index/graph_sketch.h"
#include "util/status.h"

namespace pis {

struct FragmentIndexOptions {
  /// Size bounds (in edges) of indexed fragments. max_edges is the paper's
  /// "maximum indexed fragment size" (Figure 12 sweeps 4-6).
  int min_fragment_edges = 1;
  int max_fragment_edges = 6;
  /// Distance the index answers range queries for.
  DistanceSpec spec;
  /// Backend override; defaults by distance type (trie / R-tree).
  std::optional<ClassBackend> backend;
  /// Threads for the build's fragment-extraction phase (canonicalization
  /// dominates build time and parallelizes per graph). 1 = sequential;
  /// use HardwareThreads() for full parallelism. Runtime-only (not
  /// persisted by Save).
  int num_threads = 1;
  /// Shape of the superimposed-sketch prefilter (see index/graph_sketch.h):
  /// bits per graph (a multiple of 64) and hash functions per class.
  /// Persisted from format v4 on; pre-v4 files rebuild their sketch at load
  /// with these defaults. Query-time use is opt-in (PisOptions::
  /// sketch_enabled) — the sketch itself is always maintained.
  int sketch_bits = GraphSketch::kDefaultBits;
  int sketch_hashes = GraphSketch::kDefaultHashes;
};

/// Build-time statistics (reported by benches and the index explorer).
struct FragmentIndexStats {
  size_t num_classes = 0;
  size_t num_fragment_occurrences = 0;
  size_t num_sequences_inserted = 0;
  size_t num_subsets_enumerated = 0;
  size_t num_subsets_skipped_by_signature = 0;
  double build_seconds = 0;
};

/// A query fragment prepared for range queries: resolved class plus
/// canonical label sequence / weight vector.
struct PreparedFragment {
  int class_id = -1;
  std::vector<Label> labels;
  std::vector<double> weights;
  int num_edges = 0;
};

/// \brief The PIS fragment-based index.
class FragmentIndex {
 public:
  /// Builds the index over `db` using the given structure features
  /// (skeleton graphs, e.g. from the gSpan+gIndex pipeline in src/mining).
  /// Features larger than max_fragment_edges or smaller than
  /// min_fragment_edges are ignored; duplicate features are deduplicated by
  /// canonical key.
  static Result<FragmentIndex> Build(const GraphDatabase& db,
                                     const std::vector<Graph>& features,
                                     const FragmentIndexOptions& options);

  /// Resolves a labeled query fragment against the index. NotFound when the
  /// fragment's skeleton is not an indexed class.
  Result<PreparedFragment> Prepare(const Graph& fragment) const;

  /// Range query d(g, g') <= sigma over a prepared fragment (Algorithm 2
  /// line 9); emits (graph_id, distance) with possible repeats per graph —
  /// callers keep the minimum (Eq. 3).
  Status RangeQuery(const PreparedFragment& fragment, double sigma,
                    const ClassMatchCallback& cb) const;

  /// Convenience: Prepare + RangeQuery.
  Status RangeQuery(const Graph& fragment, double sigma,
                    const ClassMatchCallback& cb) const;

  /// True if the fragment's skeleton is indexed.
  bool HasClass(const Graph& fragment) const;

  /// Incremental maintenance: indexes one graph appended to the database
  /// (its id becomes db_size()). The caller must append the same graph to
  /// its GraphDatabase to keep ids aligned. Only the classes the new graph
  /// touches are re-finalized; feature classes are fixed at Build time
  /// (fragments of the new graph outside existing classes are not indexed,
  /// exactly as if the graph had been present at build time with the same
  /// feature set). Returns the id assigned to the graph.
  Result<int> AddGraph(const Graph& g);

  /// Incremental maintenance: tombstones graph `gid`. Its postings stay in
  /// the class backends but every subsequent RangeQuery filters it out, so
  /// queries behave exactly as if the index had been rebuilt without the
  /// graph (modulo the selectivity denominator, which engines take from
  /// num_live()). Ids are never reused. NotFound when `gid` is out of range
  /// or already removed.
  Status RemoveGraph(int gid);

  /// True when `gid` names a graph that was added and not removed.
  bool IsLive(int gid) const {
    return gid >= 0 && gid < db_size_ && tombstones_.count(gid) == 0;
  }
  /// Graphs added minus graphs removed — the selectivity denominator.
  int num_live() const {
    return db_size_ - static_cast<int>(tombstones_.size());
  }
  /// Removed graph ids (never reused). Postings of these ids still occupy
  /// backend memory until Compact() (or a full rebuild) reclaims them.
  const std::unordered_set<int>& tombstones() const { return tombstones_; }
  /// Fraction of id slots that are tombstoned — the operator signal for
  /// when to Compact(). 0 for an empty index.
  double dead_ratio() const {
    return db_size_ == 0 ? 0.0
                         : static_cast<double>(tombstones_.size()) / db_size_;
  }

  /// Tombstone compaction: rewrites every class backend in place, dropping
  /// the postings of removed graphs and re-densifying the surviving ids to
  /// 0..num_live()-1 in their original order. Afterwards the index is
  /// byte-for-byte equivalent in query behaviour to one rebuilt from
  /// scratch over the live graphs (the class catalog — fixed at Build — is
  /// kept even for classes that became empty, so a sharded catalog stays
  /// identical across shards). Returns the id remap: remap[old_id] is the
  /// new id, or -1 for a removed graph — callers re-densify their aligned
  /// GraphDatabase with it. With zero tombstones this is a strict no-op
  /// (identity remap, no epoch bump, byte-identical Save).
  std::vector<int> Compact();

  /// Number of Compact() rewrites this index has absorbed (persisted by
  /// format v3; informational).
  uint32_t compaction_epoch() const { return compaction_epoch_; }

  /// Deep copy. Per-class backends hold raw pointers into spec_holder_, so
  /// a memberwise copy would alias the source; the copy goes through the
  /// (full-fidelity) serialization round trip instead, then carries over the
  /// runtime-only state Save() skips (thread options, build timings). Used
  /// by the copy-on-write shard swaps of the serving layer.
  Result<FragmentIndex> Clone() const;

  /// Binary persistence: write the full index (options, spec, classes) so a
  /// later process can Load() and serve queries without rebuilding.
  Status Save(std::ostream& out) const;
  Status SaveFile(const std::string& path) const;
  static Result<FragmentIndex> Load(std::istream& in);
  static Result<FragmentIndex> LoadFile(const std::string& path);

  int num_classes() const { return static_cast<int>(classes_.size()); }
  const EquivalenceClassIndex& class_at(int id) const { return *classes_[id]; }
  const FragmentIndexStats& stats() const { return stats_; }
  const FragmentIndexOptions& options() const { return options_; }
  int db_size() const { return db_size_; }

  /// The superimposed-code prefilter, maintained through Build / AddGraph /
  /// RemoveGraph / Compact and persisted from format v4 (older files
  /// rebuild it at load). Row gid covers graph gid; tombstoned rows keep
  /// their bits, mirroring the postings they summarize.
  const GraphSketch& sketch() const { return *sketch_; }

 private:
  FragmentIndex() = default;

  // Builds the canonical label sequence / weight vector of one fragment
  // embedding.
  void BuildVectors(const Graph& fragment, const std::vector<VertexId>& vorder,
                    const std::vector<EdgeId>& eorder, std::vector<Label>* labels,
                    std::vector<double>* weights) const;

  // One fragment sequence awaiting insertion (extraction is parallel and
  // side-effect free; insertion is sequential in graph-id order).
  struct PendingInsert {
    int class_id;
    std::vector<Label> labels;
    std::vector<double> weights;
  };
  struct ExtractStats {
    size_t subsets = 0;
    size_t skipped_by_signature = 0;
    size_t occurrences = 0;
  };

  // Enumerates the fragments of one graph whose skeleton is a registered
  // class, emitting deduplicated automorphism sequences. Thread-safe
  // (reads only immutable index state).
  Status ExtractGraphFragments(const Graph& g, std::vector<PendingInsert>* out,
                               ExtractStats* stats) const;

  // Extract + apply + account: shared by the sequential build path and
  // AddGraph.
  Status InsertGraphFragments(int gid, const Graph& g);

  // Applies extracted fragments of graph `gid` and folds its stats in.
  void ApplyExtraction(int gid, const std::vector<PendingInsert>& pending,
                       const ExtractStats& stats);

  // Derives the sketch from the finalized class postings (used when loading
  // pre-v4 files). Bit-identical to incremental maintenance: a bit is set
  // iff the class holds at least one fragment of the graph.
  void RebuildSketch();

  FragmentIndexOptions options_;
  /// Stable home for the spec: per-class indexes keep raw pointers to it,
  /// and FragmentIndex itself is movable.
  std::shared_ptr<const DistanceSpec> spec_holder_;
  int db_size_ = 0;
  std::unordered_map<std::string, int> class_by_key_;
  std::vector<std::unique_ptr<EquivalenceClassIndex>> classes_;
  std::unordered_set<uint64_t> signatures_;
  /// Removed graph ids (format v2 persists these).
  std::unordered_set<int> tombstones_;
  /// Count of Compact() rewrites (format v3 persists this).
  uint32_t compaction_epoch_ = 0;
  /// Superimposed prefilter codes (format v4 persists these). Never null
  /// after Build/Load.
  std::unique_ptr<GraphSketch> sketch_;
  FragmentIndexStats stats_;
};

/// Cheap structural signature (vertex count, edge count, degree multiset)
/// used to skip subsets that cannot match any indexed class.
uint64_t StructureSignature(const Graph& g);

}  // namespace pis

#endif  // PIS_INDEX_FRAGMENT_INDEX_H_
