#include "index/vptree.h"

#include <algorithm>

#include "util/logging.h"

namespace pis {

VpTree::VpTree(size_t n, std::vector<int> payloads, const ItemPairDistance& metric,
               uint64_t seed)
    : payloads_(std::move(payloads)) {
  PIS_CHECK(payloads_.size() == n);
  if (n == 0) return;
  std::vector<size_t> items(n);
  for (size_t i = 0; i < n; ++i) items[i] = i;
  Rng rng(seed);
  nodes_.reserve(n);
  root_ = Build(&items, 0, n, metric, &rng);
}

int32_t VpTree::Build(std::vector<size_t>* items, size_t begin, size_t end,
                      const ItemPairDistance& metric, Rng* rng) {
  if (begin >= end) return -1;
  int32_t id = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  // Random vantage point avoids adversarial orderings.
  size_t pick = begin + rng->UniformIndex(end - begin);
  std::swap((*items)[begin], (*items)[pick]);
  size_t vp = (*items)[begin];
  nodes_[id].item = vp;
  if (end - begin == 1) return id;

  size_t mid = begin + 1 + (end - begin - 1) / 2;
  std::nth_element(items->begin() + begin + 1, items->begin() + mid,
                   items->begin() + end, [&](size_t a, size_t b) {
                     return metric(vp, a) < metric(vp, b);
                   });
  double threshold = metric(vp, (*items)[mid]);
  int32_t inside = Build(items, begin + 1, mid + 1, metric, rng);
  int32_t outside = Build(items, mid + 1, end, metric, rng);
  // Children were built after `id`; reference via index (vector may have
  // reallocated).
  nodes_[id].threshold = threshold;
  nodes_[id].inside = inside;
  nodes_[id].outside = outside;
  return id;
}

void VpTree::RangeQuery(const ItemQueryDistance& to_query, double radius,
                        const ItemMatchCallback& cb) const {
  if (root_ < 0) return;
  std::vector<int32_t> stack = {root_};
  while (!stack.empty()) {
    int32_t id = stack.back();
    stack.pop_back();
    const Node& node = nodes_[id];
    double d = to_query(node.item);
    if (d <= radius) cb(payloads_[node.item], d);
    // Triangle inequality bounds which side(s) can contain matches.
    if (node.inside >= 0 && d - radius <= node.threshold) {
      stack.push_back(node.inside);
    }
    if (node.outside >= 0 && d + radius >= node.threshold) {
      stack.push_back(node.outside);
    }
  }
}

}  // namespace pis
