#include "index/class_index.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace pis {

ClassBackend DefaultBackend(DistanceType type) {
  return type == DistanceType::kMutation ? ClassBackend::kTrie
                                         : ClassBackend::kRTree;
}

EquivalenceClassIndex::EquivalenceClassIndex(std::string key, int num_vertices,
                                             int num_edges, ClassBackend backend,
                                             const DistanceSpec* spec)
    : key_(std::move(key)),
      num_vertices_(num_vertices),
      num_edges_(num_edges),
      backend_(backend),
      spec_(spec) {
  PIS_CHECK(spec_ != nullptr);
  switch (backend_) {
    case ClassBackend::kTrie:
      trie_ = std::make_unique<LabelTrie>(NumVertexPositions() + num_edges_);
      break;
    case ClassBackend::kRTree:
      rtree_ = std::make_unique<RTree>(WeightDims());
      break;
    case ClassBackend::kVpTree:
      break;  // buffered until Finalize
  }
}

int EquivalenceClassIndex::WeightDims() const {
  int dims = 0;
  if (spec_->use_vertex_weights) dims += num_vertices_;
  if (spec_->use_edge_weights) dims += num_edges_;
  return std::max(dims, 1);
}

int EquivalenceClassIndex::NumVertexPositions() const {
  // Cost-free vertex positions would only widen the trie walk; skip them.
  return spec_->vertex_scores.IsZero() ? 0 : num_vertices_;
}

SequenceCostModel EquivalenceClassIndex::MakeSequenceModel() const {
  SequenceCostModel model;
  model.vertex_scores = &spec_->vertex_scores;
  model.edge_scores = &spec_->edge_scores;
  model.num_vertex_positions = NumVertexPositions();
  return model;
}

void EquivalenceClassIndex::Insert(const std::vector<Label>& labels,
                                   const std::vector<double>& weights,
                                   int graph_id) {
  // Inserts after Finalize() are allowed for incremental maintenance; the
  // owner must call Refinalize() before the next query.
  ++num_fragments_;
  if (containing_graphs_.empty() || containing_graphs_.back() != graph_id) {
    containing_graphs_.push_back(graph_id);
  }
  switch (backend_) {
    case ClassBackend::kTrie:
      trie_->Insert(labels, graph_id);
      break;
    case ClassBackend::kRTree:
      rtree_->Insert(weights, graph_id);
      break;
    case ClassBackend::kVpTree:
      vp_labels_.push_back(labels);
      vp_weights_.push_back(weights);
      vp_graph_ids_.push_back(graph_id);
      break;
  }
}

void EquivalenceClassIndex::Finalize() {
  if (finalized_) return;
  finalized_ = true;
  std::sort(containing_graphs_.begin(), containing_graphs_.end());
  containing_graphs_.erase(
      std::unique(containing_graphs_.begin(), containing_graphs_.end()),
      containing_graphs_.end());
  switch (backend_) {
    case ClassBackend::kTrie:
      trie_->Finalize();
      break;
    case ClassBackend::kRTree:
      break;
    case ClassBackend::kVpTree: {
      if (vp_graph_ids_.empty()) break;
      if (spec_->type == DistanceType::kMutation) {
        SequenceCostModel model = MakeSequenceModel();
        auto metric = [this, model](size_t a, size_t b) {
          double d = 0;
          for (size_t i = 0; i < vp_labels_[a].size(); ++i) {
            d += model.Cost(static_cast<int>(i), vp_labels_[a][i], vp_labels_[b][i]);
          }
          return d;
        };
        vptree_ = std::make_unique<VpTree>(vp_graph_ids_.size(), vp_graph_ids_,
                                           metric);
      } else {
        auto metric = [this](size_t a, size_t b) {
          double d = 0;
          for (size_t i = 0; i < vp_weights_[a].size(); ++i) {
            d += std::abs(vp_weights_[a][i] - vp_weights_[b][i]);
          }
          return d;
        };
        vptree_ = std::make_unique<VpTree>(vp_graph_ids_.size(), vp_graph_ids_,
                                           metric);
      }
      break;
    }
  }
}

void EquivalenceClassIndex::Refinalize() {
  finalized_ = false;
  vptree_.reset();  // rebuilt from the retained buffers
  Finalize();
}

void EquivalenceClassIndex::Compact(const std::vector<int>& remap) {
  PIS_CHECK(finalized_) << "compact before Finalize()";
  auto remapped = [&remap](int gid) {
    return gid >= 0 && gid < static_cast<int>(remap.size()) ? remap[gid] : -1;
  };
  // The remap is monotone over survivors, so the filtered list stays sorted.
  std::vector<int> live_containing;
  live_containing.reserve(containing_graphs_.size());
  for (int gid : containing_graphs_) {
    int mapped = remapped(gid);
    if (mapped >= 0) live_containing.push_back(mapped);
  }
  containing_graphs_ = std::move(live_containing);

  size_t surviving = 0;
  switch (backend_) {
    case ClassBackend::kTrie: {
      // Rebuild from the surviving sequences: leaves whose postings all
      // died drop out entirely, along with their now-unreachable interior
      // nodes.
      auto fresh = std::make_unique<LabelTrie>(trie_->sequence_length());
      std::vector<int> list;
      trie_->ForEachSequence(
          [&](const std::vector<Label>& seq, const std::vector<int>& postings) {
            list.clear();
            for (int gid : postings) {
              int mapped = remapped(gid);
              if (mapped >= 0) list.push_back(mapped);
            }
            for (int gid : list) fresh->Insert(seq, gid);
            surviving += list.size();
          });
      fresh->Finalize();
      trie_ = std::move(fresh);
      break;
    }
    case ClassBackend::kRTree: {
      auto fresh = std::make_unique<RTree>(rtree_->dimensions(),
                                           rtree_->max_entries());
      rtree_->ForEachPoint([&](const std::vector<double>& point, int payload) {
        int mapped = remapped(payload);
        if (mapped < 0) return;
        fresh->Insert(point, mapped);
        ++surviving;
      });
      rtree_ = std::move(fresh);
      break;
    }
    case ClassBackend::kVpTree: {
      size_t keep = 0;
      for (size_t i = 0; i < vp_graph_ids_.size(); ++i) {
        int mapped = remapped(vp_graph_ids_[i]);
        if (mapped < 0) continue;
        if (keep != i) {  // self-move-assign would empty the buffers
          vp_labels_[keep] = std::move(vp_labels_[i]);
          vp_weights_[keep] = std::move(vp_weights_[i]);
        }
        vp_graph_ids_[keep] = mapped;
        ++keep;
      }
      vp_labels_.resize(keep);
      vp_weights_.resize(keep);
      vp_graph_ids_.resize(keep);
      vp_labels_.shrink_to_fit();
      vp_weights_.shrink_to_fit();
      vp_graph_ids_.shrink_to_fit();
      surviving = keep;
      Refinalize();
      break;
    }
  }
  num_fragments_ = surviving;
}

Status EquivalenceClassIndex::Serialize(BinaryWriter* writer) const {
  if (!finalized_) return Status::Internal("serialize before Finalize()");
  writer->Str(key_);
  writer->I32(num_vertices_);
  writer->I32(num_edges_);
  writer->U8(static_cast<uint8_t>(backend_));
  writer->U64(num_fragments_);
  writer->VecInt(containing_graphs_);
  switch (backend_) {
    case ClassBackend::kTrie:
      trie_->Serialize(writer);
      break;
    case ClassBackend::kRTree:
      rtree_->Serialize(writer);
      break;
    case ClassBackend::kVpTree:
      writer->U64(vp_graph_ids_.size());
      for (size_t i = 0; i < vp_graph_ids_.size(); ++i) {
        writer->VecI32(vp_labels_[i]);
        writer->VecF64(vp_weights_[i]);
        writer->I32(vp_graph_ids_[i]);
      }
      break;
  }
  if (!writer->ok()) return Status::IOError("class index write failed");
  return Status::OK();
}

Result<std::unique_ptr<EquivalenceClassIndex>> EquivalenceClassIndex::Deserialize(
    BinaryReader* reader, const DistanceSpec* spec) {
  std::string key = reader->Str();
  int32_t nv = reader->I32();
  int32_t ne = reader->I32();
  uint8_t backend_tag = reader->U8();
  PIS_RETURN_NOT_OK(reader->Check("class index header"));
  if (nv < 1 || ne < 0 || backend_tag > 2) {
    return Status::ParseError("bad class index header");
  }
  auto backend = static_cast<ClassBackend>(backend_tag);
  auto cls = std::make_unique<EquivalenceClassIndex>(key, nv, ne, backend, spec);
  cls->num_fragments_ = reader->U64();
  cls->containing_graphs_ = reader->VecInt();
  PIS_RETURN_NOT_OK(reader->Check("class index containment list"));
  switch (backend) {
    case ClassBackend::kTrie: {
      PIS_ASSIGN_OR_RETURN(LabelTrie trie, LabelTrie::Deserialize(reader));
      if (trie.sequence_length() != cls->NumVertexPositions() + ne) {
        return Status::ParseError("trie length inconsistent with class/spec");
      }
      cls->trie_ = std::make_unique<LabelTrie>(std::move(trie));
      break;
    }
    case ClassBackend::kRTree: {
      PIS_ASSIGN_OR_RETURN(RTree rtree, RTree::Deserialize(reader));
      if (rtree.dimensions() != cls->WeightDims()) {
        return Status::ParseError("rtree dims inconsistent with class/spec");
      }
      cls->rtree_ = std::make_unique<RTree>(std::move(rtree));
      break;
    }
    case ClassBackend::kVpTree: {
      uint64_t n = reader->ReadCount(20);  // two vectors + id per item
      PIS_RETURN_NOT_OK(reader->Check("vp item count"));
      for (uint64_t i = 0; i < n; ++i) {
        cls->vp_labels_.push_back(reader->VecI32());
        cls->vp_weights_.push_back(reader->VecF64());
        cls->vp_graph_ids_.push_back(reader->I32());
      }
      PIS_RETURN_NOT_OK(reader->Check("vp items"));
      break;
    }
  }
  // Finalize rebuilds the VP-tree (deterministic) and marks the class
  // queryable; trie/rtree payloads were stored finalized.
  cls->Finalize();
  return cls;
}

Status EquivalenceClassIndex::RangeQuery(const std::vector<Label>& labels,
                                         const std::vector<double>& weights,
                                         double sigma,
                                         const ClassMatchCallback& cb) const {
  if (!finalized_) {
    return Status::Internal("class index queried before Finalize()");
  }
  switch (backend_) {
    case ClassBackend::kTrie: {
      if (static_cast<int>(labels.size()) != NumVertexPositions() + num_edges_) {
        return Status::InvalidArgument("label sequence length mismatch");
      }
      trie_->RangeQuery(labels, MakeSequenceModel(), sigma, cb);
      return Status::OK();
    }
    case ClassBackend::kRTree: {
      if (static_cast<int>(weights.size()) != WeightDims()) {
        return Status::InvalidArgument("weight vector length mismatch");
      }
      rtree_->RangeQueryL1(weights, sigma, cb);
      return Status::OK();
    }
    case ClassBackend::kVpTree: {
      if (vptree_ == nullptr) return Status::OK();  // empty class
      if (spec_->type == DistanceType::kMutation) {
        SequenceCostModel model = MakeSequenceModel();
        auto to_query = [this, model, &labels](size_t item) {
          double d = 0;
          for (size_t i = 0; i < labels.size(); ++i) {
            d += model.Cost(static_cast<int>(i), labels[i], vp_labels_[item][i]);
          }
          return d;
        };
        vptree_->RangeQuery(to_query, sigma, cb);
      } else {
        auto to_query = [this, &weights](size_t item) {
          double d = 0;
          for (size_t i = 0; i < weights.size(); ++i) {
            d += std::abs(weights[i] - vp_weights_[item][i]);
          }
          return d;
        };
        vptree_->RangeQuery(to_query, sigma, cb);
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable backend");
}

}  // namespace pis
