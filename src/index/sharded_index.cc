#include "index/sharded_index.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "util/logging.h"
#include "util/parallel.h"
#include "util/serde.h"
#include "util/timer.h"

namespace pis {

namespace {

constexpr uint32_t kManifestMagic = 0x5049534D;  // "PISM"
constexpr uint32_t kManifestVersion = 1;
constexpr char kManifestName[] = "MANIFEST";

std::string ShardFileName(int s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard_%04d.idx", s);
  return buf;
}

}  // namespace

int ShardedFragmentIndex::shard_of(int gid) const {
  PIS_DCHECK(gid >= 0 && gid < db_size());
  // First offset strictly greater than gid, minus one.
  auto it = std::upper_bound(offsets_.begin(), offsets_.end(), gid);
  return static_cast<int>(it - offsets_.begin()) - 1;
}

Result<ShardedFragmentIndex> ShardedFragmentIndex::Build(
    const GraphDatabase& db, const std::vector<Graph>& features,
    const FragmentIndexOptions& options, int num_shards) {
  if (num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  Timer timer;
  ShardedFragmentIndex sharded;
  sharded.options_ = options;

  // Balanced contiguous ranges: the first (n % S) shards get one extra.
  const int n = db.size();
  const int base = n / num_shards;
  const int rem = n % num_shards;
  sharded.offsets_.resize(num_shards + 1);
  sharded.offsets_[0] = 0;
  for (int s = 0; s < num_shards; ++s) {
    sharded.offsets_[s + 1] = sharded.offsets_[s] + base + (s < rem ? 1 : 0);
  }
  PIS_CHECK(sharded.offsets_[num_shards] == n);

  // Shards build concurrently; with S > 1 each shard's own extraction runs
  // sequentially so thread counts don't multiply.
  FragmentIndexOptions shard_options = options;
  if (num_shards > 1) shard_options.num_threads = 1;
  // No fill-construction: Result<FragmentIndex> is move-only.
  std::vector<Result<FragmentIndex>> built;
  built.reserve(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    built.emplace_back(Status::Internal("shard not built"));
  }
  ParallelFor(num_shards, options.num_threads, [&](size_t s) {
    // The shard's sub-database copy lives only for the duration of its
    // build (concurrent const reads of `db` are safe), so peak memory holds
    // one in-flight copy per worker, not a second copy of the whole
    // database.
    GraphDatabase part;
    for (int gid = sharded.offsets_[s]; gid < sharded.offsets_[s + 1]; ++gid) {
      part.Add(db.at(gid));
    }
    built[s] = FragmentIndex::Build(part, features, shard_options);
  });
  sharded.shards_.reserve(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    if (!built[s].ok()) return built[s].status();
    sharded.shards_.push_back(built[s].MoveValue());
  }
  for (int s = 1; s < num_shards; ++s) {
    PIS_CHECK(sharded.shards_[s].num_classes() ==
              sharded.shards_[0].num_classes())
        << "shards disagree on the class catalog";
  }
  sharded.build_seconds_ = timer.Seconds();
  return sharded;
}

Status ShardedFragmentIndex::SaveDir(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create directory " + dir + ": " +
                           ec.message());
  }
  const std::filesystem::path root(dir);
  {
    std::ofstream out(root / kManifestName, std::ios::binary);
    if (!out) return Status::IOError("cannot open manifest for writing");
    BinaryWriter writer(out);
    writer.U32(kManifestMagic);
    writer.U32(kManifestVersion);
    writer.U32(static_cast<uint32_t>(num_shards()));
    writer.VecInt(offsets_);
    if (!writer.ok()) return Status::IOError("manifest write failed");
  }
  for (int s = 0; s < num_shards(); ++s) {
    PIS_RETURN_NOT_OK(shards_[s].SaveFile((root / ShardFileName(s)).string()));
  }
  return Status::OK();
}

Result<ShardedFragmentIndex> ShardedFragmentIndex::LoadDir(
    const std::string& dir) {
  const std::filesystem::path root(dir);
  std::ifstream in(root / kManifestName, std::ios::binary);
  if (!in) return Status::IOError("cannot open manifest in " + dir);
  BinaryReader reader(in);
  if (reader.U32() != kManifestMagic) {
    return Status::ParseError("not a sharded PIS index (bad manifest magic)");
  }
  uint32_t version = reader.U32();
  if (version != kManifestVersion) {
    return Status::ParseError("unsupported manifest version " +
                              std::to_string(version));
  }
  uint32_t num_shards = reader.U32();
  ShardedFragmentIndex sharded;
  sharded.offsets_ = reader.VecInt();
  PIS_RETURN_NOT_OK(reader.Check("shard manifest"));
  if (num_shards < 1 || sharded.offsets_.size() != num_shards + 1 ||
      sharded.offsets_.front() != 0 ||
      !std::is_sorted(sharded.offsets_.begin(), sharded.offsets_.end())) {
    return Status::ParseError("corrupt shard manifest");
  }

  sharded.shards_.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    PIS_ASSIGN_OR_RETURN(
        FragmentIndex shard,
        FragmentIndex::LoadFile((root / ShardFileName(s)).string()));
    if (shard.db_size() !=
        sharded.offsets_[s + 1] - sharded.offsets_[s]) {
      return Status::ParseError("shard " + std::to_string(s) +
                                " size disagrees with manifest");
    }
    if (s > 0 &&
        shard.num_classes() != sharded.shards_.front().num_classes()) {
      return Status::ParseError("shard " + std::to_string(s) +
                                " class catalog disagrees with shard 0");
    }
    sharded.shards_.push_back(std::move(shard));
  }
  sharded.options_ = sharded.shards_.front().options();
  return sharded;
}

}  // namespace pis
