#include "index/sharded_index.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "util/logging.h"
#include "util/parallel.h"
#include "util/serde.h"
#include "util/timer.h"

namespace pis {

namespace {

constexpr uint32_t kManifestMagic = 0x5049534D;  // "PISM"
// v1: contiguous per-shard id ranges (offsets vector). v2: explicit
// per-graph routing table, required once incremental AddGraph breaks
// contiguity. v3: compaction epoch, routing that admits -1 (removed and
// compacted away), explicit per-graph local ids (Rebalance breaks the
// "locals ascend with globals" derivation v2 relied on), and per-shard
// live counts cross-checked against the shard files. v4: trailing
// auto-compaction dead-ratio policy, so a reloaded server keeps it. v1-v3
// manifests still load (with the policy off).
constexpr uint32_t kManifestVersion = 4;
constexpr char kManifestName[] = "MANIFEST";

std::string ShardFileName(int s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard_%04d.idx", s);
  return buf;
}

}  // namespace

int ShardedFragmentIndex::shard_of(int gid) const {
  PIS_DCHECK(gid >= 0 && gid < db_size());
  return shard_of_[gid];
}

void ShardedFragmentIndex::DeriveRouting() {
  local_of_.assign(shard_of_.size(), 0);
  globals_.assign(shards_.size(), {});
  for (int gid = 0; gid < static_cast<int>(shard_of_.size()); ++gid) {
    const int s = shard_of_[gid];
    local_of_[gid] = static_cast<int>(globals_[s].size());
    globals_[s].push_back(gid);
  }
}

Status ShardedFragmentIndex::DeriveGlobalsFromLocals() {
  globals_.assign(shards_.size(), {});
  std::vector<int> resident(shards_.size(), 0);
  for (int gid = 0; gid < db_size(); ++gid) {
    if (shard_of_[gid] >= 0) ++resident[shard_of_[gid]];
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    globals_[s].assign(resident[s], -1);
  }
  for (int gid = 0; gid < db_size(); ++gid) {
    const int s = shard_of_[gid];
    const int local = local_of_[gid];
    if (s < 0) {
      if (local != -1) {
        return Status::InvalidArgument(
            "manifest gives compacted-away graph " + std::to_string(gid) +
            " a local id");
      }
      continue;
    }
    if (local < 0 || local >= resident[s] || globals_[s][local] != -1) {
      return Status::InvalidArgument(
          "manifest local ids of shard " + std::to_string(s) +
          " are not a permutation of its residents");
    }
    globals_[s][local] = gid;
  }
  return Status::OK();
}

Result<ShardedFragmentIndex> ShardedFragmentIndex::Build(
    const GraphDatabase& db, const std::vector<Graph>& features,
    const FragmentIndexOptions& options, int num_shards) {
  if (num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  Timer timer;
  ShardedFragmentIndex sharded;
  sharded.options_ = options;

  // Balanced contiguous ranges: the first (n % S) shards get one extra.
  const int n = db.size();
  const int base = n / num_shards;
  const int rem = n % num_shards;
  std::vector<int> offsets(num_shards + 1);
  offsets[0] = 0;
  for (int s = 0; s < num_shards; ++s) {
    offsets[s + 1] = offsets[s] + base + (s < rem ? 1 : 0);
  }
  PIS_CHECK(offsets[num_shards] == n);
  sharded.shard_of_.resize(n);
  for (int s = 0; s < num_shards; ++s) {
    for (int gid = offsets[s]; gid < offsets[s + 1]; ++gid) {
      sharded.shard_of_[gid] = s;
    }
  }

  // Shards build concurrently; with S > 1 each shard's own extraction runs
  // sequentially so thread counts don't multiply.
  FragmentIndexOptions shard_options = options;
  if (num_shards > 1) shard_options.num_threads = 1;
  // No fill-construction: Result<FragmentIndex> is move-only.
  std::vector<Result<FragmentIndex>> built;
  built.reserve(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    built.emplace_back(Status::Internal("shard not built"));
  }
  ParallelFor(num_shards, options.num_threads, [&](size_t s) {
    // The shard's sub-database copy lives only for the duration of its
    // build (concurrent const reads of `db` are safe), so peak memory holds
    // one in-flight copy per worker, not a second copy of the whole
    // database.
    GraphDatabase part;
    for (int gid = offsets[s]; gid < offsets[s + 1]; ++gid) {
      part.Add(db.at(gid));
    }
    built[s] = FragmentIndex::Build(part, features, shard_options);
  });
  sharded.shards_.reserve(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    if (!built[s].ok()) return built[s].status();
    sharded.shards_.push_back(
        std::make_shared<FragmentIndex>(built[s].MoveValue()));
  }
  for (int s = 1; s < num_shards; ++s) {
    PIS_CHECK(sharded.shards_[s]->num_classes() ==
              sharded.shards_[0]->num_classes())
        << "shards disagree on the class catalog";
  }
  sharded.DeriveRouting();
  sharded.build_seconds_ = timer.Seconds();
  return sharded;
}

Result<FragmentIndex*> ShardedFragmentIndex::MutableShard(int s) {
  // use_count == 1 means nobody else can observe the shard: mutate in
  // place. Anything higher means a snapshot handle or an index copy pins
  // it, so detach a deep copy first (their view stays frozen, ours moves).
  //
  // Concurrency note: under EngineHost the published snapshot always
  // shares every shard of the writer's master copy, so the in-place path
  // is only ever taken by single-threaded owners (CLI, tests) — a racing
  // reader releasing the last pin concurrently with this check cannot
  // happen there by construction. The acquire fence still pairs with the
  // release decrement of a hypothetical releasing thread, so even that
  // interleaving would not reorder its reads past our writes.
  if (shards_[s].use_count() > 1) {
    PIS_ASSIGN_OR_RETURN(FragmentIndex detached, shards_[s]->Clone());
    shards_[s] = std::make_shared<FragmentIndex>(std::move(detached));
  } else {
    std::atomic_thread_fence(std::memory_order_acquire);
  }
  return shards_[s].get();
}

Result<int> ShardedFragmentIndex::AddGraph(const Graph& g) {
  // Least-loaded routing by live graph count; ties go to the lowest shard
  // id so a replayed update sequence reproduces the same routing.
  int best = 0;
  for (int s = 1; s < num_shards(); ++s) {
    if (shards_[s]->num_live() < shards_[best]->num_live()) best = s;
  }
  PIS_ASSIGN_OR_RETURN(FragmentIndex * target, MutableShard(best));
  PIS_ASSIGN_OR_RETURN(int local, target->AddGraph(g));
  PIS_DCHECK(local == static_cast<int>(globals_[best].size()));
  const int gid = db_size();
  shard_of_.push_back(best);
  local_of_.push_back(local);
  globals_[best].push_back(gid);
  return gid;
}

Status ShardedFragmentIndex::AddGraphAt(int gid, int shard, const Graph& g) {
  if (shard < 0 || shard >= num_shards()) {
    return Status::InvalidArgument("shard " + std::to_string(shard) +
                                   " out of range");
  }
  if (gid < db_size()) {
    return Status::AlreadyExists("graph id " + std::to_string(gid) +
                                 " is already assigned (db spans " +
                                 std::to_string(db_size()) + " slots)");
  }
  // Foreign-shard ids this replica never received arrive as a gap below
  // `gid`: materialize them as absent slots so the id space stays aligned
  // with the cluster. Absent slots are globally dead, never resident, and
  // never revived — exactly like compacted-away tombstones.
  while (db_size() < gid) {
    tombstones_.insert(db_size());
    shard_of_.push_back(-1);
    local_of_.push_back(-1);
  }
  PIS_ASSIGN_OR_RETURN(FragmentIndex * target, MutableShard(shard));
  PIS_ASSIGN_OR_RETURN(int local, target->AddGraph(g));
  PIS_DCHECK(local == static_cast<int>(globals_[shard].size()));
  shard_of_.push_back(shard);
  local_of_.push_back(local);
  globals_[shard].push_back(gid);
  return Status::OK();
}

Status ShardedFragmentIndex::RemoveGraph(int gid) {
  if (gid < 0 || gid >= db_size()) {
    return Status::NotFound("graph id " + std::to_string(gid) +
                            " is outside the sharded database");
  }
  // Compacted-away ids are no longer resident in any shard, so the shard
  // can't reject the double remove for us.
  if (tombstones_.count(gid) > 0) {
    return Status::NotFound("graph id " + std::to_string(gid) +
                            " was already removed");
  }
  const int s = shard_of_[gid];
  PIS_ASSIGN_OR_RETURN(FragmentIndex * target, MutableShard(s));
  PIS_RETURN_NOT_OK(target->RemoveGraph(local_of_[gid]));
  tombstones_.insert(gid);
  if (compact_dead_ratio_ > 0 &&
      shards_[s]->dead_ratio() >= compact_dead_ratio_) {
    return CompactShard(s);
  }
  return Status::OK();
}

Status ShardedFragmentIndex::CompactShard(int s) {
  if (s < 0 || s >= num_shards()) {
    return Status::InvalidArgument("shard " + std::to_string(s) +
                                   " out of range");
  }
  if (shards_[s]->tombstones().empty()) return Status::OK();
  // The detached-copy-then-swap below is the serving layer's zero-downtime
  // compaction: when a snapshot pins the shard, the rewrite happens off to
  // the side and lands atomically in this index's handle slot.
  PIS_ASSIGN_OR_RETURN(FragmentIndex * target, MutableShard(s));
  const std::vector<int> remap = target->Compact();
  // The remap is monotone over survivors, so rebuilding globals_[s] in old
  // local order lands every surviving gid at exactly its new local id.
  std::vector<int> survivors;
  survivors.reserve(target->db_size());
  for (size_t local = 0; local < remap.size(); ++local) {
    const int gid = globals_[s][local];
    if (gid < 0) {
      // Mid-rebalance hole: the graph migrated out, its routing already
      // points at the recipient shard. The slot just disappears here.
      PIS_DCHECK(remap[local] < 0);
      continue;
    }
    if (remap[local] >= 0) {
      local_of_[gid] = remap[local];
      survivors.push_back(gid);
    } else {
      // The global tombstone set keeps the id dead forever; only its
      // residency (and postings) are reclaimed.
      shard_of_[gid] = -1;
      local_of_[gid] = -1;
    }
  }
  globals_[s] = std::move(survivors);
  ++compaction_epoch_;
  return Status::OK();
}

Result<int> ShardedFragmentIndex::Compact(double min_dead_ratio) {
  int compacted = 0;
  for (int s = 0; s < num_shards(); ++s) {
    if (shards_[s]->tombstones().empty()) continue;
    if (shards_[s]->dead_ratio() < min_dead_ratio) continue;
    PIS_RETURN_NOT_OK(CompactShard(s));
    ++compacted;
  }
  return compacted;
}

Result<int> ShardedFragmentIndex::Rebalance(const GraphDatabase& db) {
  if (db.size() != db_size()) {
    return Status::InvalidArgument(
        "rebalance database holds " + std::to_string(db.size()) +
        " graphs but the index spans " + std::to_string(db_size()) +
        " id slots");
  }
  auto extreme_shards = [this](int* fullest, int* emptiest) {
    *fullest = 0;
    *emptiest = 0;
    for (int s = 1; s < num_shards(); ++s) {
      if (shards_[s]->num_live() > shards_[*fullest]->num_live()) *fullest = s;
      if (shards_[s]->num_live() < shards_[*emptiest]->num_live()) {
        *emptiest = s;
      }
    }
  };
  std::vector<char> donor(num_shards(), 0);
  int migrated = 0;
  Status failed = Status::OK();
  while (failed.ok()) {
    int src, dst;
    extreme_shards(&src, &dst);
    if (shards_[src]->num_live() - shards_[dst]->num_live() <= 1) break;
    // Migrate the donor's most recently indexed live graph: its postings
    // sit at the tail of the shard, and the choice is deterministic.
    int gid = -1;
    for (int local = static_cast<int>(globals_[src].size()) - 1; local >= 0;
         --local) {
      if (shards_[src]->IsLive(local)) {
        gid = globals_[src][local];
        break;
      }
    }
    PIS_CHECK(gid >= 0) << "overloaded shard has no live graph";
    Result<FragmentIndex*> recipient = MutableShard(dst);
    if (!recipient.ok()) {
      failed = recipient.status();
      break;
    }
    Result<int> local = recipient.value()->AddGraph(db.at(gid));
    if (!local.ok()) {
      failed = local.status();
      break;
    }
    PIS_DCHECK(local.value() == static_cast<int>(globals_[dst].size()));
    // Per-shard tombstone only — the graph stays live globally; the donor
    // compaction below drains it so per-shard tombstones remain a subset of
    // the global (removed-forever) set. The donor's globals slot becomes a
    // -1 hole so that compaction doesn't clobber the rewritten routing.
    Result<FragmentIndex*> donor_shard = MutableShard(src);
    if (!donor_shard.ok()) {
      failed = donor_shard.status();
      break;
    }
    failed = donor_shard.value()->RemoveGraph(local_of_[gid]);
    if (!failed.ok()) break;
    globals_[src][local_of_[gid]] = -1;
    shard_of_[gid] = dst;
    local_of_[gid] = local.value();
    globals_[dst].push_back(gid);
    donor[src] = 1;
    ++migrated;
  }
  // Donor compaction runs even when a migration failed mid-way: completed
  // migrations stay committed, and compacting the donors removes their
  // globals holes and drains their migration tombstones — the invariants
  // SaveDir/LoadDir rely on hold again, just at a partially levelled state.
  for (int s = 0; s < num_shards(); ++s) {
    if (donor[s]) PIS_RETURN_NOT_OK(CompactShard(s));
  }
  PIS_RETURN_NOT_OK(failed);
  return migrated;
}

Status ShardedFragmentIndex::SaveDir(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create directory " + dir + ": " +
                           ec.message());
  }
  const std::filesystem::path root(dir);
  {
    std::ofstream out(root / kManifestName, std::ios::binary);
    if (!out) return Status::IOError("cannot open manifest for writing");
    BinaryWriter writer(out);
    writer.U32(kManifestMagic);
    writer.U32(kManifestVersion);
    writer.U32(static_cast<uint32_t>(num_shards()));
    writer.U32(static_cast<uint32_t>(compaction_epoch_));
    writer.VecInt(shard_of_);
    writer.VecInt(local_of_);
    std::vector<int> live(num_shards());
    for (int s = 0; s < num_shards(); ++s) live[s] = shards_[s]->num_live();
    writer.VecInt(live);
    // v4 trailing section: the auto-compaction policy.
    writer.F64(compact_dead_ratio_);
    if (!writer.ok()) return Status::IOError("manifest write failed");
  }
  for (int s = 0; s < num_shards(); ++s) {
    PIS_RETURN_NOT_OK(shards_[s]->SaveFile((root / ShardFileName(s)).string()));
  }
  // An in-place re-save with a smaller shard count must not leave stale
  // shard files behind: LoadDir treats surplus files as manifest/disk
  // disagreement.
  for (int s = num_shards();; ++s) {
    std::error_code stale_ec;
    if (!std::filesystem::remove(root / ShardFileName(s), stale_ec)) break;
  }
  return Status::OK();
}

Result<ShardedFragmentIndex> ShardedFragmentIndex::LoadDir(
    const std::string& dir) {
  const std::filesystem::path root(dir);
  std::ifstream in(root / kManifestName, std::ios::binary);
  if (!in) return Status::IOError("cannot open manifest in " + dir);
  BinaryReader reader(in);
  if (reader.U32() != kManifestMagic) {
    return Status::ParseError("not a sharded PIS index (bad manifest magic)");
  }
  const uint32_t version = reader.U32();
  if (version < 1 || version > kManifestVersion) {
    return Status::ParseError("unsupported manifest version " +
                              std::to_string(version) + " (this build reads " +
                              std::to_string(kManifestVersion) +
                              " and older)");
  }
  const uint32_t num_shards = reader.U32();
  ShardedFragmentIndex sharded;
  std::vector<int> manifest_live;  // v3 only; cross-checked after loading
  if (version == 1) {
    // Contiguous ranges: offsets[s] .. offsets[s+1]) belongs to shard s.
    std::vector<int> offsets = reader.VecInt();
    PIS_RETURN_NOT_OK(reader.Check("shard manifest"));
    if (num_shards < 1 || offsets.size() != num_shards + 1 ||
        offsets.front() != 0 ||
        !std::is_sorted(offsets.begin(), offsets.end())) {
      return Status::ParseError("corrupt shard manifest");
    }
    sharded.shard_of_.resize(offsets.back());
    for (uint32_t s = 0; s < num_shards; ++s) {
      for (int gid = offsets[s]; gid < offsets[s + 1]; ++gid) {
        sharded.shard_of_[gid] = static_cast<int>(s);
      }
    }
  } else {
    // v2 routing admits resident shards only; v3 also admits -1 (removed
    // and compacted away) plus the trailing local-id and live-count
    // sections.
    const int min_shard = version >= 3 ? -1 : 0;
    if (version >= 3) {
      sharded.compaction_epoch_ = static_cast<int>(reader.U32());
    }
    sharded.shard_of_ = reader.VecInt();
    PIS_RETURN_NOT_OK(reader.Check("shard manifest"));
    if (num_shards < 1) return Status::ParseError("corrupt shard manifest");
    for (size_t gid = 0; gid < sharded.shard_of_.size(); ++gid) {
      if (sharded.shard_of_[gid] < min_shard ||
          sharded.shard_of_[gid] >= static_cast<int>(num_shards)) {
        return Status::InvalidArgument(
            "manifest routes graph " + std::to_string(gid) +
            " to nonexistent shard " +
            std::to_string(sharded.shard_of_[gid]));
      }
    }
    if (version >= 3) {
      sharded.local_of_ = reader.VecInt();
      manifest_live = reader.VecInt();
      double dead_ratio = 0.0;
      if (version >= 4) dead_ratio = reader.F64();
      // The routing parsed but the trailing v3/v4 sections are short: the
      // manifest structurally disagrees with what it declares rather than
      // being unreadable garbage.
      if (!reader.ok()) {
        return Status::InvalidArgument("manifest truncated mid-section");
      }
      if (sharded.local_of_.size() != sharded.shard_of_.size() ||
          manifest_live.size() != num_shards) {
        return Status::InvalidArgument(
            "manifest local-id/live-count sections disagree with its "
            "routing table");
      }
      if (!(dead_ratio >= 0.0 && dead_ratio <= 1.0)) {
        return Status::InvalidArgument(
            "manifest auto-compaction dead ratio outside [0, 1]");
      }
      sharded.compact_dead_ratio_ = dead_ratio;
    }
  }

  // The manifest and the files on disk must agree exactly: every declared
  // shard present with the declared number of graphs, and nothing extra.
  for (uint32_t s = 0; s < num_shards; ++s) {
    if (!std::filesystem::exists(root / ShardFileName(static_cast<int>(s)))) {
      return Status::InvalidArgument(
          "manifest declares " + std::to_string(num_shards) +
          " shards but " + ShardFileName(static_cast<int>(s)) +
          " is missing on disk");
    }
  }
  if (std::filesystem::exists(
          root / ShardFileName(static_cast<int>(num_shards)))) {
    return Status::InvalidArgument(
        "more shard files on disk than the manifest's " +
        std::to_string(num_shards) + " shards");
  }

  sharded.shards_.reserve(num_shards);
  // globals_ sizing needs shards_ populated; derive after loading, but
  // compute expected per-shard sizes first for the consistency check.
  std::vector<int> expected_size(num_shards, 0);
  for (int s : sharded.shard_of_) {
    if (s >= 0) ++expected_size[s];
  }
  for (uint32_t s = 0; s < num_shards; ++s) {
    PIS_ASSIGN_OR_RETURN(
        FragmentIndex shard,
        FragmentIndex::LoadFile(
            (root / ShardFileName(static_cast<int>(s))).string()));
    if (shard.db_size() != expected_size[s]) {
      return Status::InvalidArgument(
          "shard " + std::to_string(s) + " holds " +
          std::to_string(shard.db_size()) + " graphs but the manifest routes " +
          std::to_string(expected_size[s]) + " to it");
    }
    if (!manifest_live.empty() && shard.num_live() != manifest_live[s]) {
      return Status::InvalidArgument(
          "shard " + std::to_string(s) + " holds " +
          std::to_string(shard.num_live()) +
          " live graphs but the manifest recorded " +
          std::to_string(manifest_live[s]));
    }
    if (s > 0 &&
        shard.num_classes() != sharded.shards_.front()->num_classes()) {
      return Status::InvalidArgument("shard " + std::to_string(s) +
                                     " class catalog disagrees with shard 0");
    }
    sharded.shards_.push_back(std::make_shared<FragmentIndex>(std::move(shard)));
  }
  if (version >= 3) {
    PIS_RETURN_NOT_OK(sharded.DeriveGlobalsFromLocals());
  } else {
    sharded.DeriveRouting();
  }
  // Global tombstones: the per-shard sets (persisted inside the per-shard
  // index files) plus every compacted-away slot the routing marks -1.
  for (uint32_t s = 0; s < num_shards; ++s) {
    for (int local : sharded.shards_[s]->tombstones()) {
      if (local < 0 || local >= sharded.shard_size(static_cast<int>(s))) {
        return Status::InvalidArgument("shard " + std::to_string(s) +
                                       " tombstone out of range");
      }
      sharded.tombstones_.insert(sharded.global_id(static_cast<int>(s), local));
    }
  }
  for (int gid = 0; gid < sharded.db_size(); ++gid) {
    if (sharded.shard_of_[gid] < 0) sharded.tombstones_.insert(gid);
  }
  sharded.options_ = sharded.shards_.front()->options();
  return sharded;
}

}  // namespace pis
