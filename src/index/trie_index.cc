#include "index/trie_index.h"

#include <algorithm>

#include "util/logging.h"

namespace pis {

LabelTrie::LabelTrie(int sequence_length) : sequence_length_(sequence_length) {
  PIS_CHECK(sequence_length >= 1);
  nodes_.emplace_back();  // root
}

int32_t LabelTrie::FindChild(int32_t node, Label symbol) const {
  const auto& children = nodes_[node].children;
  auto it = std::lower_bound(
      children.begin(), children.end(), symbol,
      [](const std::pair<Label, int32_t>& c, Label s) { return c.first < s; });
  if (it != children.end() && it->first == symbol) return it->second;
  return -1;
}

int32_t LabelTrie::ChildOrCreate(int32_t node, Label symbol) {
  int32_t child = FindChild(node, symbol);
  if (child >= 0) return child;
  child = static_cast<int32_t>(nodes_.size());
  auto& children = nodes_[node].children;
  auto it = std::lower_bound(
      children.begin(), children.end(), symbol,
      [](const std::pair<Label, int32_t>& c, Label s) { return c.first < s; });
  children.insert(it, {symbol, child});
  nodes_.emplace_back();
  return child;
}

void LabelTrie::Insert(const std::vector<Label>& seq, int graph_id) {
  PIS_DCHECK(static_cast<int>(seq.size()) == sequence_length_);
  int32_t node = 0;
  for (Label symbol : seq) {
    node = ChildOrCreate(node, symbol);
  }
  if (nodes_[node].postings < 0) {
    nodes_[node].postings = static_cast<int32_t>(postings_.size());
    postings_.emplace_back();
    ++num_leaves_;
  }
  std::vector<int>& list = postings_[nodes_[node].postings];
  // Graphs are inserted in non-decreasing id order; skip immediate repeats
  // to keep lists short (Finalize fully deduplicates).
  if (list.empty() || list.back() != graph_id) list.push_back(graph_id);
}

void LabelTrie::Finalize() {
  for (std::vector<int>& list : postings_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
}

void LabelTrie::ForEachSequence(const SequenceVisitor& visitor) const {
  // Iterative DFS mirroring RangeQuery. A subtree unwinds completely before
  // the next sibling at the same depth starts, so writing the edge symbol
  // into seq as each frame pops keeps seq[0..depth) equal to the current
  // path; children are pushed in reverse for ascending symbol order.
  struct Frame {
    int32_t node;
    int depth;
    Label symbol;
  };
  std::vector<Label> seq(sequence_length_);
  std::vector<Frame> stack = {{0, 0, 0}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (f.depth > 0) seq[f.depth - 1] = f.symbol;
    if (f.depth == sequence_length_) {
      int32_t pid = nodes_[f.node].postings;
      if (pid >= 0 && !postings_[pid].empty()) visitor(seq, postings_[pid]);
      continue;
    }
    const auto& children = nodes_[f.node].children;
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back({it->second, f.depth + 1, it->first});
    }
  }
}

size_t LabelTrie::NumPostings() const {
  size_t total = 0;
  for (const auto& list : postings_) total += list.size();
  return total;
}

void LabelTrie::RangeQuery(const std::vector<Label>& seq,
                           const SequenceCostModel& model, double sigma,
                           const SequenceMatchCallback& cb) const {
  PIS_DCHECK(static_cast<int>(seq.size()) == sequence_length_);
  // Iterative DFS with the residual budget; budgets never increase so the
  // walk prunes whole subtrees as soon as the accumulated cost exceeds
  // sigma.
  struct Frame {
    int32_t node;
    int depth;
    double cost;
  };
  std::vector<Frame> stack = {{0, 0, 0.0}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (f.depth == sequence_length_) {
      int32_t pid = nodes_[f.node].postings;
      if (pid >= 0) {
        for (int gid : postings_[pid]) cb(gid, f.cost);
      }
      continue;
    }
    for (const auto& [symbol, child] : nodes_[f.node].children) {
      double c = f.cost + model.Cost(f.depth, seq[f.depth], symbol);
      if (c <= sigma) stack.push_back({child, f.depth + 1, c});
    }
  }
}

void LabelTrie::Serialize(BinaryWriter* writer) const {
  writer->I32(sequence_length_);
  writer->U64(num_leaves_);
  writer->U64(nodes_.size());
  for (const Node& node : nodes_) {
    writer->I32(node.postings);
    writer->U64(node.children.size());
    for (const auto& [symbol, child] : node.children) {
      writer->I32(symbol);
      writer->I32(child);
    }
  }
  writer->U64(postings_.size());
  for (const std::vector<int>& list : postings_) writer->VecInt(list);
}

Result<LabelTrie> LabelTrie::Deserialize(BinaryReader* reader) {
  int32_t length = reader->I32();
  PIS_RETURN_NOT_OK(reader->Check("trie header"));
  if (length < 1) return Status::ParseError("bad trie sequence length");
  LabelTrie trie(length);
  trie.num_leaves_ = reader->U64();
  uint64_t num_nodes = reader->ReadCount(12);  // postings + fanout per node
  PIS_RETURN_NOT_OK(reader->Check("trie node count"));
  trie.nodes_.clear();
  trie.nodes_.reserve(num_nodes);
  for (uint64_t i = 0; i < num_nodes; ++i) {
    Node node;
    node.postings = reader->I32();
    uint64_t fanout = reader->ReadCount(8);  // (symbol, child) per entry
    PIS_RETURN_NOT_OK(reader->Check("trie node"));
    node.children.reserve(fanout);
    for (uint64_t c = 0; c < fanout; ++c) {
      Label symbol = reader->I32();
      int32_t child = reader->I32();
      node.children.emplace_back(symbol, child);
    }
    trie.nodes_.push_back(std::move(node));
  }
  uint64_t num_postings = reader->ReadCount(8);
  PIS_RETURN_NOT_OK(reader->Check("trie postings count"));
  trie.postings_.clear();
  trie.postings_.reserve(num_postings);
  for (uint64_t i = 0; i < num_postings; ++i) {
    trie.postings_.push_back(reader->VecInt());
  }
  PIS_RETURN_NOT_OK(reader->Check("trie postings"));
  // Structural sanity: child and posting indices in range.
  for (const Node& node : trie.nodes_) {
    if (node.postings >= static_cast<int32_t>(trie.postings_.size())) {
      return Status::ParseError("trie postings index out of range");
    }
    for (const auto& [symbol, child] : node.children) {
      if (child < 0 || child >= static_cast<int32_t>(trie.nodes_.size())) {
        return Status::ParseError("trie child index out of range");
      }
    }
  }
  return trie;
}

}  // namespace pis
