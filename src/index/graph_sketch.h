// Superimposed-code prefilter (paper §3's framing; ROADMAP item 2): each
// graph carries a fixed-size block of bits, and every equivalence class the
// graph has at least one fragment in sets k hashed bits inside that block —
// a blocked-bloom layout, so one probe touches one cache line's worth of
// contiguous words. A query superimposes (ORs) the codes of the classes it
// enumerates; a graph whose block is missing any mask bit provably lacks a
// fragment in some enumerated class and can be discarded before any range
// query runs. False drops — non-candidates that pass — only cost the work
// the filter would have done anyway, so the prefilter never changes results.
#ifndef PIS_INDEX_GRAPH_SKETCH_H_
#define PIS_INDEX_GRAPH_SKETCH_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace pis {

class BinaryReader;
class BinaryWriter;

/// \brief Per-graph superimposed bit codes over equivalence-class membership.
class GraphSketch {
 public:
  static constexpr int kDefaultBits = 256;
  static constexpr int kDefaultHashes = 4;

  /// Parameters must satisfy ValidParams(); FragmentIndex::Build rejects
  /// anything else before construction.
  GraphSketch(int bits_per_graph, int num_hashes);

  /// bits_per_graph must be a positive multiple of 64 (whole words, so
  /// probes are word ops) and not absurd; 1..64 hash functions.
  static bool ValidParams(int bits_per_graph, int num_hashes);

  int bits_per_graph() const { return bits_; }
  int num_hashes() const { return hashes_; }
  int words_per_graph() const { return words_; }
  int num_graphs() const {
    return static_cast<int>(data_.size() / static_cast<size_t>(words_));
  }

  /// Appends `count` all-zero rows (graphs with no indexed fragments yet).
  void AddGraphs(int count);

  /// Sets the k code bits of `class_id` in graph `gid`'s block. Idempotent:
  /// repeated insertions (one per fragment sequence) OR the same bits.
  void AddClass(int gid, int class_id);

  /// Superimposes the codes of `class_ids` into one query mask
  /// (words_per_graph() words). Duplicate ids are harmless.
  std::vector<uint64_t> MakeMask(const std::vector<int>& class_ids) const;

  /// True unless graph `gid`'s block is missing a mask bit — i.e. false
  /// means the graph provably lacks a fragment in some masked class.
  bool MightContainAll(int gid, const std::vector<uint64_t>& mask) const {
    const uint64_t* block = &data_[static_cast<size_t>(gid) * words_];
    for (int w = 0; w < words_; ++w) {
      if ((block[w] & mask[w]) != mask[w]) return false;
    }
    return true;
  }

  /// Mirrors FragmentIndex::Compact: keeps row old_gid as row
  /// remap[old_gid], drops rows mapped to -1. remap must be the same
  /// order-preserving densification the backends were rewritten with.
  void Compact(const std::vector<int>& remap);

  void Serialize(BinaryWriter* writer) const;
  /// ParseError on truncation or implausible parameters; callers decide
  /// whether that is corruption or structural disagreement.
  static Result<GraphSketch> Deserialize(BinaryReader* reader);

 private:
  uint64_t BitFor(int class_id, int k) const;

  int bits_;
  int hashes_;
  int words_;
  /// num_graphs() consecutive blocks of words_ words each.
  std::vector<uint64_t> data_;
};

}  // namespace pis

#endif  // PIS_INDEX_GRAPH_SKETCH_H_
