// One structural equivalence class [f] (paper Definition 4): all database
// fragments sharing a skeleton, stored in a backend that answers range
// queries d(g, g') <= sigma — a trie for the mutation distance, an R-tree
// for the linear distance, or a VP-tree (Figure 5).
#ifndef PIS_INDEX_CLASS_INDEX_H_
#define PIS_INDEX_CLASS_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "distance/distance_spec.h"
#include "graph/graph.h"
#include "index/rtree.h"
#include "index/trie_index.h"
#include "index/vptree.h"
#include "util/status.h"

namespace pis {

/// Backend data structure for a class.
enum class ClassBackend {
  /// Trie over label sequences (mutation distance).
  kTrie,
  /// R-tree over weight vectors (linear distance).
  kRTree,
  /// VP-tree over label sequences or weight vectors (either distance,
  /// requires the configured distance to be a metric).
  kVpTree,
};

/// Picks the paper's default backend for a distance type.
ClassBackend DefaultBackend(DistanceType type);

/// Receives (graph_id, distance) pairs from a class range query. Callers
/// aggregate the per-graph minimum (Eq. 3).
using ClassMatchCallback = std::function<void(int graph_id, double distance)>;

/// \brief Index of one structural equivalence class.
///
/// Insertion: the fragment-index builder canonicalizes each database
/// fragment's skeleton and inserts every automorphism-induced label
/// sequence / weight vector, so a single canonical query sequence retrieves
/// the exact minimum fragment distance (DESIGN.md §3).
class EquivalenceClassIndex {
 public:
  /// `num_vertices`/`num_edges` describe the class skeleton; sequences have
  /// length num_vertices + num_edges, weight vectors as configured by spec.
  EquivalenceClassIndex(std::string key, int num_vertices, int num_edges,
                        ClassBackend backend, const DistanceSpec* spec);

  /// Inserts one fragment occurrence. `labels` is the canonical sequence
  /// (vertex labels then edge labels); `weights` likewise for numeric
  /// weights (may be empty when the spec is mutation-only).
  void Insert(const std::vector<Label>& labels, const std::vector<double>& weights,
              int graph_id);

  /// Call once after all inserts; builds/finalizes the backend.
  void Finalize();

  /// Re-finalizes after post-Finalize inserts (incremental AddGraph):
  /// re-sorts postings and rebuilds lazily-constructed backends.
  void Refinalize();

  /// Rewrites the backend keeping only postings whose graph id survives
  /// `remap` (remap[old_id] is the new id, or -1 for a dropped graph; it
  /// must be strictly increasing over the survivors so sorted posting lists
  /// stay sorted). Dead sequences/points and their index structure are
  /// discarded — this is where tombstone compaction reclaims memory. After
  /// the call, num_fragments() counts the surviving (deduplicated)
  /// postings. Requires Finalize(); the class stays finalized.
  void Compact(const std::vector<int>& remap);

  /// Range query (Algorithm 2 line 9): every graph owning a fragment in
  /// this class within `sigma` of the query fragment, with the per-graph
  /// minimum distance. Must be called after Finalize().
  Status RangeQuery(const std::vector<Label>& labels,
                    const std::vector<double>& weights, double sigma,
                    const ClassMatchCallback& cb) const;

  const std::string& key() const { return key_; }
  int num_vertices() const { return num_vertices_; }
  int num_edges() const { return num_edges_; }
  size_t num_fragments() const { return num_fragments_; }
  ClassBackend backend() const { return backend_; }

  /// Sorted ids of graphs owning at least one fragment in this class
  /// (structure containment — what topoPrune filters on). Valid after
  /// Finalize().
  const std::vector<int>& containing_graphs() const { return containing_graphs_; }

  /// Binary persistence. Serialization requires Finalize(); the
  /// deserialized class is already finalized. `spec` must outlive the
  /// returned object (the fragment index owns it).
  Status Serialize(BinaryWriter* writer) const;
  static Result<std::unique_ptr<EquivalenceClassIndex>> Deserialize(
      BinaryReader* reader, const DistanceSpec* spec);

 private:
  int WeightDims() const;
  /// Vertex positions included in label sequences: 0 when the vertex score
  /// matrix is all-zero (they could never contribute cost).
  int NumVertexPositions() const;
  SequenceCostModel MakeSequenceModel() const;

  std::string key_;
  int num_vertices_;
  int num_edges_;
  ClassBackend backend_;
  const DistanceSpec* spec_;
  size_t num_fragments_ = 0;
  bool finalized_ = false;
  std::vector<int> containing_graphs_;

  std::unique_ptr<LabelTrie> trie_;
  std::unique_ptr<RTree> rtree_;
  // VP-tree is built lazily at Finalize() from buffered items.
  std::vector<std::vector<Label>> vp_labels_;
  std::vector<std::vector<double>> vp_weights_;
  std::vector<int> vp_graph_ids_;
  std::unique_ptr<VpTree> vptree_;
};

}  // namespace pis

#endif  // PIS_INDEX_CLASS_INDEX_H_
