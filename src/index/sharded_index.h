// Horizontal sharding of the PIS fragment index: every graph id is routed
// to exactly one per-shard FragmentIndex. A full Build assigns contiguous,
// balanced id ranges (and builds the shards in parallel); incremental
// AddGraph routes each new id to the least-loaded shard, so the routing is
// a general table rather than ranges. Every shard registers the identical
// class catalog — classes come from the feature set, not the data — so a
// query fragment prepared against any shard is valid against all of them.
// Persistence writes a directory holding a binary manifest (shard count +
// routing table) plus one index file per shard, so shards can later be
// loaded (or, eventually, served) independently, and a mutated index
// round-trips exactly. Deletion debt is repaid locally: CompactShard
// rewrites one shard without its tombstoned postings (global ids stay
// stable; dead ids simply stop being resident anywhere) and Rebalance
// migrates graphs off overloaded shards through the routing table, so the
// index can serve a mutating workload indefinitely without a full rebuild.
//
// Shards are held behind shared_ptr handles with copy-on-write mutation:
// copying a ShardedFragmentIndex is cheap (the copies share the per-shard
// indexes), and any mutator detaches — deep-copies — a shard before
// touching it whenever the handle is shared. The serving layer
// (server/engine_host.h) builds its immutable published snapshots on
// exactly this: a snapshot pins the shard handles it was published with,
// while the writer keeps mutating its own copy, and an expensive
// CompactShard rewrites happen on a detached copy that is swapped in —
// never under a concurrent reader.
#ifndef PIS_INDEX_SHARDED_INDEX_H_
#define PIS_INDEX_SHARDED_INDEX_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "graph/graph.h"
#include "index/fragment_index.h"
#include "util/status.h"

namespace pis {

/// \brief A fragment index partitioned into per-shard FragmentIndexes.
class ShardedFragmentIndex {
 public:
  /// Builds `num_shards` per-shard indexes over contiguous, balanced
  /// graph-id ranges of `db` (shard sizes differ by at most one). Shards
  /// build concurrently on `options.num_threads` threads (<= 1 =
  /// sequential); with more than one shard each per-shard build is
  /// sequential so the two fan-outs don't multiply. `num_shards` may exceed
  /// db.size(); surplus shards are empty but still answer queries.
  static Result<ShardedFragmentIndex> Build(const GraphDatabase& db,
                                            const std::vector<Graph>& features,
                                            const FragmentIndexOptions& options,
                                            int num_shards);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const FragmentIndex& shard(int s) const { return *shards_[s]; }
  /// Snapshot handle: keeps shard `s`'s current index alive independently of
  /// this object. A later mutation of shard `s` (on this index or any copy)
  /// detaches a fresh copy first, so the handle's index never changes under
  /// the holder — the building block of the serving layer's snapshots.
  std::shared_ptr<const FragmentIndex> shard_handle(int s) const {
    return shards_[s];
  }
  /// Graph-id slots resident in shard `s`: live plus tombstoned-but-not-
  /// yet-compacted (compaction evicts dead slots from the shard entirely).
  int shard_size(int s) const { return static_cast<int>(globals_[s].size()); }
  /// Shard owning global graph id `gid`, or -1 when the graph was removed
  /// and its postings compacted away (it is resident nowhere).
  int shard_of(int gid) const;
  /// Global graph id of shard `s`'s local id `local` (the inverse of the
  /// routing: shard(s) emits local ids, queries report global ids).
  int global_id(int s, int local) const { return globals_[s][local]; }
  /// Local id of global id `gid` inside its owning shard, or -1 when the
  /// graph was compacted away (shard_of(gid) == -1). The sketch prefilter
  /// probes per-shard rows through this.
  int local_id(int gid) const { return local_of_[gid]; }

  /// Total graph-id slots ever assigned (monotone; tombstoned and
  /// compacted-away slots included — ids are never reused).
  int db_size() const { return static_cast<int>(shard_of_.size()); }
  /// Live graphs — Σ over shards of shard(s).num_live(); the selectivity
  /// denominator the engines use.
  int num_live() const {
    return db_size() - static_cast<int>(tombstones_.size());
  }
  /// Every global graph id ever removed (monotone — compaction reclaims a
  /// dead graph's postings but its id stays dead forever). The engines seed
  /// their dead-slot sets from this, so it must cover compacted-away ids
  /// too; the per-shard tombstones() sets shrink to empty on compaction.
  const std::unordered_set<int>& tombstones() const { return tombstones_; }
  bool IsLive(int gid) const {
    return gid >= 0 && gid < db_size() && tombstones_.count(gid) == 0;
  }
  /// Dead fraction of shard `s`'s resident slots — the auto-compaction
  /// trigger signal. 0 for an empty shard.
  double shard_dead_ratio(int s) const { return shards_[s]->dead_ratio(); }

  /// Incremental maintenance: routes the graph to the shard with the fewest
  /// live graphs (ties break toward the lowest shard id, so a fixed update
  /// sequence yields a deterministic routing) and indexes it there.
  /// Returns the new global id, db_size() before the call. The caller must
  /// append the same graph to its GraphDatabase to keep ids aligned.
  Result<int> AddGraph(const Graph& g);
  /// Explicit-placement add for replicated serving: indexes `g` into shard
  /// `shard` under the preassigned global id `gid`, which must be >=
  /// db_size() (ids are never rewritten). Id slots in [db_size, gid) — gids
  /// a shard-subset replica never saw because foreign shards own them — are
  /// backfilled as absent: resident nowhere (shard_of -1) and globally
  /// tombstoned, so local queries over the owned shards behave exactly as
  /// the cluster-wide index does for those shards. The caller must place
  /// the same graph at slot `gid` of its id-aligned GraphDatabase.
  Status AddGraphAt(int gid, int shard, const Graph& g);
  /// Tombstones global id `gid` in its owning shard. NotFound when out of
  /// range or already removed. When an auto-compaction threshold is set
  /// (set_compact_dead_ratio) and the owning shard's dead ratio reaches it,
  /// the shard is compacted before returning.
  Status RemoveGraph(int gid);

  /// Compacts shard `s`: drops its tombstoned postings, re-densifies its
  /// local ids, and evicts the dead slots from the routing table (their
  /// shard_of becomes -1). Global ids — and therefore every engine-visible
  /// query result — are unchanged. No-op when the shard has no tombstones.
  Status CompactShard(int s);
  /// Compacts every shard whose dead ratio is >= `min_dead_ratio` (with the
  /// default 0, every shard holding any tombstone). Returns the number of
  /// shards compacted.
  Result<int> Compact(double min_dead_ratio = 0.0);

  /// Auto-compaction policy: a threshold in (0, 1] makes RemoveGraph
  /// compact the owning shard once its dead ratio reaches the threshold
  /// (PisOptions::compact_dead_ratio is the conventional source of the
  /// value). 0 — the default — disables the policy. Persisted by manifest
  /// v4, so a reloaded server keeps its policy; v1-v3 directories load with
  /// the policy off.
  void set_compact_dead_ratio(double ratio) { compact_dead_ratio_ = ratio; }
  double compact_dead_ratio() const { return compact_dead_ratio_; }

  /// Rebalancing: while the live-count spread between the fullest and
  /// emptiest shards exceeds one, migrates the most recently indexed live
  /// graph of the fullest shard (lowest shard id on ties, so the plan is
  /// deterministic) to the emptiest one — re-indexing it there from `db`,
  /// which must be this index's id-aligned database — then compacts every
  /// donor shard. Global ids never change; only the routing table does.
  /// Returns the number of graphs migrated (0 when already balanced).
  Result<int> Rebalance(const GraphDatabase& db);

  /// Total CompactShard rewrites absorbed (manifest v3 persists this;
  /// informational, e.g. surfaced by `pis_cli stats`).
  int compaction_epoch() const { return compaction_epoch_; }

  /// Identical across shards (classes are feature-derived).
  int num_classes() const { return shards_.front()->num_classes(); }
  const FragmentIndexOptions& options() const { return options_; }
  /// Wall-clock build time of the whole sharded build (covers the parallel
  /// per-shard builds; per-shard CPU times are in shard(s).stats()).
  double build_seconds() const { return build_seconds_; }

  /// Persists a manifest (shard count, compaction epoch, per-graph routing
  /// and local ids, per-shard live counts) plus one file per shard under
  /// `dir`, creating the directory if needed. Tombstones travel inside the
  /// per-shard files, so a mutated index round-trips — including one that
  /// was compacted or rebalanced.
  Status SaveDir(const std::string& dir) const;
  /// Loads a directory written by SaveDir (current, v2 routing-table, or v1
  /// contiguous-range manifests). Returns InvalidArgument when a
  /// structurally readable manifest disagrees with the files on disk
  /// (missing/surplus shard files, shard sizes, routing, or live counts out
  /// of step) or is truncated mid-section, ParseError on garbage.
  static Result<ShardedFragmentIndex> LoadDir(const std::string& dir);

 private:
  ShardedFragmentIndex() = default;

  /// Rebuilds globals_/local_of_ from shard_of_, assuming insertion-ordered
  /// routing (local ids ascend with global ids within a shard). Valid for
  /// freshly built indexes and v1/v2 manifests; rebalanced indexes violate
  /// the assumption, which is why manifest v3 persists local_of_ verbatim.
  void DeriveRouting();
  /// Rebuilds globals_ from shard_of_/local_of_ (any routing shape).
  Status DeriveGlobalsFromLocals();

  /// Copy-on-write guard: returns shard `s` for mutation, first detaching a
  /// deep copy when the handle is shared (a snapshot or another index copy
  /// still pins the current one). Every mutator goes through this, so a
  /// shard an outside holder can observe is never modified in place.
  Result<FragmentIndex*> MutableShard(int s);

  FragmentIndexOptions options_;
  /// Shared with snapshot handles and index copies; COW via MutableShard.
  std::vector<std::shared_ptr<FragmentIndex>> shards_;
  /// Global graph id -> owning shard; -1 once the graph was removed and
  /// compacted away (resident nowhere).
  std::vector<int> shard_of_;
  /// Global graph id -> local id inside its shard's FragmentIndex; -1 for
  /// compacted-away ids.
  std::vector<int> local_of_;
  /// Shard -> local id -> global graph id.
  std::vector<std::vector<int>> globals_;
  /// Every removed global id ever (monotone superset of the per-shard
  /// tombstone sets, which compaction drains).
  std::unordered_set<int> tombstones_;
  double compact_dead_ratio_ = 0.0;
  int compaction_epoch_ = 0;
  double build_seconds_ = 0;
};

}  // namespace pis

#endif  // PIS_INDEX_SHARDED_INDEX_H_
