// Horizontal sharding of the PIS fragment index: the database is split into
// S contiguous graph-id ranges and one FragmentIndex is built per range (in
// parallel). Every shard registers the identical class catalog — classes
// come from the feature set, not the data — so a query fragment prepared
// against any shard is valid against all of them. Persistence writes a
// directory holding a binary manifest plus one index file per shard, so
// shards can later be loaded (or, eventually, served) independently.
#ifndef PIS_INDEX_SHARDED_INDEX_H_
#define PIS_INDEX_SHARDED_INDEX_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "index/fragment_index.h"
#include "util/status.h"

namespace pis {

/// \brief A fragment index partitioned into per-shard FragmentIndexes.
class ShardedFragmentIndex {
 public:
  /// Builds `num_shards` per-shard indexes over contiguous, balanced
  /// graph-id ranges of `db` (shard sizes differ by at most one). Shards
  /// build concurrently on `options.num_threads` threads (<= 1 =
  /// sequential); with more than one shard each per-shard build is
  /// sequential so the two fan-outs don't multiply. `num_shards` may exceed
  /// db.size(); surplus shards are empty but still answer queries.
  static Result<ShardedFragmentIndex> Build(const GraphDatabase& db,
                                            const std::vector<Graph>& features,
                                            const FragmentIndexOptions& options,
                                            int num_shards);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const FragmentIndex& shard(int s) const { return shards_[s]; }
  /// First global graph id of shard `s`; shard s covers
  /// [shard_offset(s), shard_offset(s) + shard_size(s)).
  int shard_offset(int s) const { return offsets_[s]; }
  int shard_size(int s) const { return offsets_[s + 1] - offsets_[s]; }
  /// Shard owning global graph id `gid`.
  int shard_of(int gid) const;

  int db_size() const { return offsets_.back(); }
  /// Identical across shards (classes are feature-derived).
  int num_classes() const { return shards_.front().num_classes(); }
  const FragmentIndexOptions& options() const { return options_; }
  /// Wall-clock build time of the whole sharded build (covers the parallel
  /// per-shard builds; per-shard CPU times are in shard(s).stats()).
  double build_seconds() const { return build_seconds_; }

  /// Persists a manifest (shard count, id ranges) plus one file per shard
  /// under `dir`, creating the directory if needed.
  Status SaveDir(const std::string& dir) const;
  /// Loads a directory written by SaveDir, validating the manifest against
  /// the per-shard files.
  static Result<ShardedFragmentIndex> LoadDir(const std::string& dir);

 private:
  ShardedFragmentIndex() = default;

  FragmentIndexOptions options_;
  std::vector<FragmentIndex> shards_;
  /// num_shards + 1 entries; offsets_[s] is shard s's first global id,
  /// offsets_.back() the database size.
  std::vector<int> offsets_;
  double build_seconds_ = 0;
};

}  // namespace pis

#endif  // PIS_INDEX_SHARDED_INDEX_H_
