// Horizontal sharding of the PIS fragment index: every graph id is routed
// to exactly one per-shard FragmentIndex. A full Build assigns contiguous,
// balanced id ranges (and builds the shards in parallel); incremental
// AddGraph routes each new id to the least-loaded shard, so the routing is
// a general table rather than ranges. Every shard registers the identical
// class catalog — classes come from the feature set, not the data — so a
// query fragment prepared against any shard is valid against all of them.
// Persistence writes a directory holding a binary manifest (shard count +
// routing table) plus one index file per shard, so shards can later be
// loaded (or, eventually, served) independently, and a mutated index
// round-trips exactly.
#ifndef PIS_INDEX_SHARDED_INDEX_H_
#define PIS_INDEX_SHARDED_INDEX_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "graph/graph.h"
#include "index/fragment_index.h"
#include "util/status.h"

namespace pis {

/// \brief A fragment index partitioned into per-shard FragmentIndexes.
class ShardedFragmentIndex {
 public:
  /// Builds `num_shards` per-shard indexes over contiguous, balanced
  /// graph-id ranges of `db` (shard sizes differ by at most one). Shards
  /// build concurrently on `options.num_threads` threads (<= 1 =
  /// sequential); with more than one shard each per-shard build is
  /// sequential so the two fan-outs don't multiply. `num_shards` may exceed
  /// db.size(); surplus shards are empty but still answer queries.
  static Result<ShardedFragmentIndex> Build(const GraphDatabase& db,
                                            const std::vector<Graph>& features,
                                            const FragmentIndexOptions& options,
                                            int num_shards);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const FragmentIndex& shard(int s) const { return shards_[s]; }
  /// Graph-id slots routed to shard `s`, including tombstoned ones.
  int shard_size(int s) const { return static_cast<int>(globals_[s].size()); }
  /// Shard owning global graph id `gid`.
  int shard_of(int gid) const;
  /// Global graph id of shard `s`'s local id `local` (the inverse of the
  /// routing: shard(s) emits local ids, queries report global ids).
  int global_id(int s, int local) const { return globals_[s][local]; }

  /// Total graph-id slots ever assigned (monotone; tombstones included).
  int db_size() const { return static_cast<int>(shard_of_.size()); }
  /// Live graphs — Σ over shards of shard(s).num_live(); the selectivity
  /// denominator the engines use.
  int num_live() const {
    return db_size() - static_cast<int>(tombstones_.size());
  }
  /// Removed global graph ids.
  const std::unordered_set<int>& tombstones() const { return tombstones_; }
  bool IsLive(int gid) const {
    return gid >= 0 && gid < db_size() && tombstones_.count(gid) == 0;
  }

  /// Incremental maintenance: routes the graph to the shard with the fewest
  /// live graphs (ties break toward the lowest shard id, so a fixed update
  /// sequence yields a deterministic routing) and indexes it there.
  /// Returns the new global id, db_size() before the call. The caller must
  /// append the same graph to its GraphDatabase to keep ids aligned.
  Result<int> AddGraph(const Graph& g);
  /// Tombstones global id `gid` in its owning shard. NotFound when out of
  /// range or already removed.
  Status RemoveGraph(int gid);

  /// Identical across shards (classes are feature-derived).
  int num_classes() const { return shards_.front().num_classes(); }
  const FragmentIndexOptions& options() const { return options_; }
  /// Wall-clock build time of the whole sharded build (covers the parallel
  /// per-shard builds; per-shard CPU times are in shard(s).stats()).
  double build_seconds() const { return build_seconds_; }

  /// Persists a manifest (shard count, per-graph routing) plus one file per
  /// shard under `dir`, creating the directory if needed. Tombstones travel
  /// inside the per-shard files, so a mutated index round-trips.
  Status SaveDir(const std::string& dir) const;
  /// Loads a directory written by SaveDir (current or v1 contiguous-range
  /// manifests). Returns InvalidArgument when a structurally readable
  /// manifest disagrees with the files on disk (missing/surplus shard
  /// files, shard sizes or routing out of step), ParseError on garbage.
  static Result<ShardedFragmentIndex> LoadDir(const std::string& dir);

 private:
  ShardedFragmentIndex() = default;

  /// Rebuilds globals_/local_of_ from shard_of_ (routing is insertion-
  /// ordered: local ids ascend with global ids within a shard).
  void DeriveRouting();

  FragmentIndexOptions options_;
  std::vector<FragmentIndex> shards_;
  /// Global graph id -> owning shard.
  std::vector<int> shard_of_;
  /// Global graph id -> local id inside its shard's FragmentIndex.
  std::vector<int> local_of_;
  /// Shard -> local id -> global graph id.
  std::vector<std::vector<int>> globals_;
  /// Removed global ids (mirrors the per-shard tombstone sets).
  std::unordered_set<int> tombstones_;
  double build_seconds_ = 0;
};

}  // namespace pis

#endif  // PIS_INDEX_SHARDED_INDEX_H_
