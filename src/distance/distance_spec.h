// DistanceSpec: a value type naming which superimposed distance an index or
// engine is configured for, with its parameters. One spec governs index
// construction, range queries, and verification so they cannot disagree.
#ifndef PIS_DISTANCE_DISTANCE_SPEC_H_
#define PIS_DISTANCE_DISTANCE_SPEC_H_

#include <memory>

#include "distance/linear.h"
#include "distance/mutation.h"
#include "distance/score_matrix.h"

namespace pis {

enum class DistanceType {
  /// Mutation Distance: categorical labels scored by matrices.
  kMutation,
  /// Linear Mutation Distance: numeric weights scored by |w - w'|.
  kLinear,
};

/// \brief Configuration of the superimposed distance.
struct DistanceSpec {
  DistanceType type = DistanceType::kMutation;

  // Mutation distance parameters. Defaults reproduce the paper's
  // evaluation: edge labels count, vertex labels ignored.
  ScoreMatrix vertex_scores = ScoreMatrix::Zero();
  ScoreMatrix edge_scores = ScoreMatrix::Unit();

  // Linear distance parameters.
  bool use_vertex_weights = false;
  bool use_edge_weights = true;

  /// The paper's evaluation distance (edge mutation distance).
  static DistanceSpec EdgeMutation() { return DistanceSpec{}; }
  /// Full mutation distance with unit scores on vertices and edges.
  static DistanceSpec FullMutation() {
    DistanceSpec spec;
    spec.vertex_scores = ScoreMatrix::Unit();
    return spec;
  }
  /// Linear distance over edge weights.
  static DistanceSpec EdgeLinear() {
    DistanceSpec spec;
    spec.type = DistanceType::kLinear;
    return spec;
  }

  /// Materializes the matching cost model for verification searches.
  std::unique_ptr<SuperimposeCostModel> MakeCostModel() const {
    if (type == DistanceType::kMutation) {
      return std::make_unique<MutationCostModel>(vertex_scores, edge_scores);
    }
    return std::make_unique<LinearCostModel>(use_vertex_weights, use_edge_weights);
  }
};

}  // namespace pis

#endif  // PIS_DISTANCE_DISTANCE_SPEC_H_
