// Mutation score matrices: the per-label-pair cost tables of the paper's
// Mutation Distance (MD). Entries default to 0 on the diagonal and to a
// configurable mismatch cost elsewhere; individual pairs can be overridden
// (e.g. chemically-informed bond substitution costs).
#ifndef PIS_DISTANCE_SCORE_MATRIX_H_
#define PIS_DISTANCE_SCORE_MATRIX_H_

#include <cstdint>
#include <unordered_map>

#include "graph/graph.h"
#include "util/serde.h"
#include "util/status.h"

namespace pis {

/// \brief Symmetric non-negative label-mutation cost table.
class ScoreMatrix {
 public:
  /// Unit matrix: cost 1 for any mismatch (Hamming). This is the "edge
  /// mutation distance" of the paper's evaluation.
  static ScoreMatrix Unit() { return ScoreMatrix(1.0); }
  /// Zero matrix: all mutations free. Used to ignore one label dimension
  /// (the evaluation ignores vertex labels).
  static ScoreMatrix Zero() { return ScoreMatrix(0.0); }

  explicit ScoreMatrix(double default_mismatch = 1.0)
      : default_mismatch_(default_mismatch) {}

  /// Overrides the cost of mutating `a` into `b` (stored symmetrically).
  /// Negative costs are rejected: the partition lower bound (Eq. 2)
  /// requires non-negative terms.
  Status Set(Label a, Label b, double cost);

  /// Mutation cost between two labels; 0 when equal.
  double Cost(Label a, Label b) const;

  double default_mismatch() const { return default_mismatch_; }

  /// True when every mutation costs 0 (the matrix can never contribute to a
  /// distance). The index uses this to drop cost-free label positions from
  /// its sequences.
  bool IsZero() const;

  /// Binary persistence (index save/load).
  void Serialize(BinaryWriter* writer) const;
  static Result<ScoreMatrix> Deserialize(BinaryReader* reader);

 private:
  static uint64_t PairKey(Label a, Label b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
           static_cast<uint32_t>(b);
  }

  double default_mismatch_;
  std::unordered_map<uint64_t, double> overrides_;
};

}  // namespace pis

#endif  // PIS_DISTANCE_SCORE_MATRIX_H_
