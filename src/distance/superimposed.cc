#include "distance/superimposed.h"

#include <algorithm>

#include "isomorphism/vf2.h"

namespace pis {

double MinSuperimposedDistance(const Graph& query, const Graph& target,
                               const SuperimposeCostModel& model, double bound) {
  return MinCostEmbedding(query, target, model, bound).distance;
}

bool WithinSuperimposedDistance(const Graph& query, const Graph& target,
                                const SuperimposeCostModel& model, double sigma) {
  return MinSuperimposedDistance(query, target, model, sigma) <= sigma;
}

double IsomorphicDistance(const Graph& a, const Graph& b,
                          const SuperimposeCostModel& model) {
  if (a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges()) {
    return kInfiniteDistance;
  }
  return MinSuperimposedDistance(a, b, model);
}

double MinSuperimposedDistanceBruteForce(const Graph& query, const Graph& target,
                                         const SuperimposeCostModel& model) {
  double best = kInfiniteDistance;
  Vf2Matcher matcher(query, target, MatchOptions{});
  matcher.EnumerateAll([&](const std::vector<VertexId>& mapping) {
    double cost = 0;
    for (VertexId v = 0; v < query.NumVertices(); ++v) {
      cost += model.VertexCost(query, v, target, mapping[v]);
    }
    for (EdgeId e = 0; e < query.NumEdges(); ++e) {
      const Edge& edge = query.GetEdge(e);
      EdgeId te = target.FindEdge(mapping[edge.u], mapping[edge.v]);
      cost += model.EdgeCost(query, e, target, te);
    }
    best = std::min(best, cost);
    return true;
  });
  return best;
}

}  // namespace pis
