#include "distance/score_matrix.h"

namespace pis {

Status ScoreMatrix::Set(Label a, Label b, double cost) {
  if (cost < 0) {
    return Status::InvalidArgument("mutation costs must be non-negative");
  }
  overrides_[PairKey(a, b)] = cost;
  return Status::OK();
}

bool ScoreMatrix::IsZero() const {
  if (default_mismatch_ != 0) return false;
  for (const auto& [key, cost] : overrides_) {
    if (cost != 0) return false;
  }
  return true;
}

double ScoreMatrix::Cost(Label a, Label b) const {
  if (a == b) return 0.0;
  auto it = overrides_.find(PairKey(a, b));
  if (it != overrides_.end()) return it->second;
  return default_mismatch_;
}

void ScoreMatrix::Serialize(BinaryWriter* writer) const {
  writer->F64(default_mismatch_);
  writer->U64(overrides_.size());
  for (const auto& [key, cost] : overrides_) {
    writer->U64(key);
    writer->F64(cost);
  }
}

Result<ScoreMatrix> ScoreMatrix::Deserialize(BinaryReader* reader) {
  ScoreMatrix m(reader->F64());
  uint64_t n = reader->U64();
  PIS_RETURN_NOT_OK(reader->Check("score matrix header"));
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t key = reader->U64();
    double cost = reader->F64();
    PIS_RETURN_NOT_OK(reader->Check("score matrix entry"));
    if (cost < 0) return Status::ParseError("negative score matrix entry");
    m.overrides_[key] = cost;
  }
  return m;
}

}  // namespace pis
