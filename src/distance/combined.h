// Weighted combination of mutation and linear distances: categorical labels
// and numeric weights scored together, e.g. "bond-type mutations cost 1,
// plus 0.5 per Angstrom of bond-length deviation". The paper treats MD and
// LD separately; the combination is the obvious practical extension and
// still satisfies the additive lower bound (Eq. 2) since both parts do.
#ifndef PIS_DISTANCE_COMBINED_H_
#define PIS_DISTANCE_COMBINED_H_

#include "distance/linear.h"
#include "distance/mutation.h"
#include "isomorphism/cost_search.h"

namespace pis {

/// \brief cost = mutation_weight * MD + linear_weight * LD.
class CombinedCostModel : public SuperimposeCostModel {
 public:
  CombinedCostModel(MutationCostModel mutation, LinearCostModel linear,
                    double mutation_weight = 1.0, double linear_weight = 1.0)
      : mutation_(std::move(mutation)),
        linear_(std::move(linear)),
        mutation_weight_(mutation_weight),
        linear_weight_(linear_weight) {}

  double VertexCost(const Graph& q, VertexId qv, const Graph& g,
                    VertexId gv) const override {
    return mutation_weight_ * mutation_.VertexCost(q, qv, g, gv) +
           linear_weight_ * linear_.VertexCost(q, qv, g, gv);
  }
  double EdgeCost(const Graph& q, EdgeId qe, const Graph& g,
                  EdgeId ge) const override {
    return mutation_weight_ * mutation_.EdgeCost(q, qe, g, ge) +
           linear_weight_ * linear_.EdgeCost(q, qe, g, ge);
  }

  double mutation_weight() const { return mutation_weight_; }
  double linear_weight() const { return linear_weight_; }

 private:
  MutationCostModel mutation_;
  LinearCostModel linear_;
  double mutation_weight_;
  double linear_weight_;
};

}  // namespace pis

#endif  // PIS_DISTANCE_COMBINED_H_
