// Minimum superimposed distance (Definition 1 of the paper): the best
// alignment of a query graph inside a target graph under a cost model.
#ifndef PIS_DISTANCE_SUPERIMPOSED_H_
#define PIS_DISTANCE_SUPERIMPOSED_H_

#include "graph/graph.h"
#include "isomorphism/cost_search.h"

namespace pis {

/// d(Q, G) = min over subgraphs Q' ⊆ G with Q' ≅ Q of cost(Q, Q'), searched
/// with branch-and-bound pruning at `bound` (inclusive). Returns
/// kInfiniteDistance when Q is not contained in G or every superposition
/// exceeds the bound.
double MinSuperimposedDistance(const Graph& query, const Graph& target,
                               const SuperimposeCostModel& model,
                               double bound = kInfiniteDistance);

/// Decision form: d(Q, G) ≤ sigma?
bool WithinSuperimposedDistance(const Graph& query, const Graph& target,
                                const SuperimposeCostModel& model, double sigma);

/// Exact minimum distance between two *isomorphic* graphs (min over all
/// superpositions); kInfiniteDistance if they are not isomorphic. Used for
/// fragment-vs-fragment distances and as a test oracle.
double IsomorphicDistance(const Graph& a, const Graph& b,
                          const SuperimposeCostModel& model);

/// Brute-force oracle: enumerates every embedding with VF2 and scores each
/// one. Exponentially slower than MinSuperimposedDistance; for tests and
/// the ablation benchmark only.
double MinSuperimposedDistanceBruteForce(const Graph& query, const Graph& target,
                                         const SuperimposeCostModel& model);

}  // namespace pis

#endif  // PIS_DISTANCE_SUPERIMPOSED_H_
