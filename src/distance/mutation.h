// Mutation Distance (MD): sum of mutation-matrix scores over superimposed
// vertex and edge label pairs (paper §2).
#ifndef PIS_DISTANCE_MUTATION_H_
#define PIS_DISTANCE_MUTATION_H_

#include "distance/score_matrix.h"
#include "graph/graph.h"
#include "isomorphism/cost_search.h"
#include "util/status.h"

namespace pis {

/// \brief MD cost model: pluggable vertex and edge score matrices.
///
/// The paper's evaluation uses `EdgeMutationModel()`: unit edge scores,
/// vertex labels ignored.
class MutationCostModel : public SuperimposeCostModel {
 public:
  MutationCostModel(ScoreMatrix vertex_scores, ScoreMatrix edge_scores)
      : vertex_scores_(std::move(vertex_scores)),
        edge_scores_(std::move(edge_scores)) {}

  double VertexCost(const Graph& q, VertexId qv, const Graph& g,
                    VertexId gv) const override {
    return vertex_scores_.Cost(q.VertexLabel(qv), g.VertexLabel(gv));
  }
  double EdgeCost(const Graph& q, EdgeId qe, const Graph& g,
                  EdgeId ge) const override {
    return edge_scores_.Cost(q.GetEdge(qe).label, g.GetEdge(ge).label);
  }

  const ScoreMatrix& vertex_scores() const { return vertex_scores_; }
  const ScoreMatrix& edge_scores() const { return edge_scores_; }

 private:
  ScoreMatrix vertex_scores_;
  ScoreMatrix edge_scores_;
};

/// The evaluation's distance: count of mismatched edge labels, vertex
/// labels free.
MutationCostModel EdgeMutationModel();

/// Full MD with unit scores on both vertices and edges.
MutationCostModel UnitMutationModel();

/// MD between two graphs under a *given* superposition `mapping`
/// (query vertex -> target vertex). Returns InvalidArgument if the mapping
/// is not a valid structure embedding.
Result<double> MutationDistanceUnderMapping(const Graph& q, const Graph& g,
                                            const std::vector<VertexId>& mapping,
                                            const MutationCostModel& model);

}  // namespace pis

#endif  // PIS_DISTANCE_MUTATION_H_
