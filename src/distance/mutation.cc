#include "distance/mutation.h"

namespace pis {

MutationCostModel EdgeMutationModel() {
  return MutationCostModel(ScoreMatrix::Zero(), ScoreMatrix::Unit());
}

MutationCostModel UnitMutationModel() {
  return MutationCostModel(ScoreMatrix::Unit(), ScoreMatrix::Unit());
}

Result<double> MutationDistanceUnderMapping(const Graph& q, const Graph& g,
                                            const std::vector<VertexId>& mapping,
                                            const MutationCostModel& model) {
  if (static_cast<int>(mapping.size()) != q.NumVertices()) {
    return Status::InvalidArgument("mapping size != query vertex count");
  }
  double total = 0;
  for (VertexId v = 0; v < q.NumVertices(); ++v) {
    VertexId img = mapping[v];
    if (img < 0 || img >= g.NumVertices()) {
      return Status::InvalidArgument("mapping image out of range");
    }
    total += model.VertexCost(q, v, g, img);
  }
  for (EdgeId e = 0; e < q.NumEdges(); ++e) {
    const Edge& edge = q.GetEdge(e);
    EdgeId img = g.FindEdge(mapping[edge.u], mapping[edge.v]);
    if (img == kInvalidEdge) {
      return Status::InvalidArgument("mapping is not a structure embedding");
    }
    total += model.EdgeCost(q, e, g, img);
  }
  return total;
}

}  // namespace pis
