// Linear Mutation Distance (LD): sum of |w - w'| over superimposed numeric
// vertex/edge weights (paper §2). Suited to geometric attributes such as
// bond lengths; indexed with an R-tree.
#ifndef PIS_DISTANCE_LINEAR_H_
#define PIS_DISTANCE_LINEAR_H_

#include "graph/graph.h"
#include "isomorphism/cost_search.h"
#include "util/status.h"

namespace pis {

/// \brief LD cost model. Either weight dimension can be disabled.
class LinearCostModel : public SuperimposeCostModel {
 public:
  LinearCostModel(bool use_vertex_weights, bool use_edge_weights)
      : use_vertex_weights_(use_vertex_weights),
        use_edge_weights_(use_edge_weights) {}

  double VertexCost(const Graph& q, VertexId qv, const Graph& g,
                    VertexId gv) const override {
    if (!use_vertex_weights_) return 0.0;
    double d = q.VertexWeight(qv) - g.VertexWeight(gv);
    return d < 0 ? -d : d;
  }
  double EdgeCost(const Graph& q, EdgeId qe, const Graph& g,
                  EdgeId ge) const override {
    if (!use_edge_weights_) return 0.0;
    double d = q.GetEdge(qe).weight - g.GetEdge(ge).weight;
    return d < 0 ? -d : d;
  }

  bool use_vertex_weights() const { return use_vertex_weights_; }
  bool use_edge_weights() const { return use_edge_weights_; }

 private:
  bool use_vertex_weights_;
  bool use_edge_weights_;
};

/// LD over edge weights only (the R-tree example of the paper, §4 Ex. 3).
LinearCostModel EdgeLinearModel();

/// LD under a given superposition; InvalidArgument if the mapping is not a
/// structure embedding.
Result<double> LinearDistanceUnderMapping(const Graph& q, const Graph& g,
                                          const std::vector<VertexId>& mapping,
                                          const LinearCostModel& model);

}  // namespace pis

#endif  // PIS_DISTANCE_LINEAR_H_
