// Micro-benchmarks for the algorithmic substrates: VF2/Ullmann matching,
// minimum DFS code canonicalization, cost-bounded verification, and
// connected-fragment enumeration.
#include <benchmark/benchmark.h>

#include "canonical/min_dfs.h"
#include "distance/mutation.h"
#include "distance/superimposed.h"
#include "graph/generator.h"
#include "graph/query_sampler.h"
#include "index/fragment_enum.h"
#include "isomorphism/ullmann.h"
#include "isomorphism/vf2.h"
#include "util/logging.h"
#include "util/random.h"

namespace pis {
namespace {

GraphDatabase& SharedDb() {
  static GraphDatabase db = [] {
    MoleculeGenerator gen;
    return gen.Generate(64);
  }();
  return db;
}

Graph SharedQuery(int edges, uint64_t seed) {
  QuerySampler sampler(&SharedDb(), {.seed = seed, .strip_vertex_labels = true});
  auto q = sampler.Sample(edges);
  PIS_CHECK(q.ok());
  return q.MoveValue();
}

void BM_Vf2FindFirst(benchmark::State& state) {
  Graph query = SharedQuery(static_cast<int>(state.range(0)), 1);
  const GraphDatabase& db = SharedDb();
  size_t i = 0;
  for (auto _ : state) {
    Vf2Matcher matcher(query, db.at(i++ % db.size()));
    benchmark::DoNotOptimize(matcher.FindFirst());
  }
}
BENCHMARK(BM_Vf2FindFirst)->Arg(4)->Arg(8)->Arg(16);

void BM_UllmannFindFirst(benchmark::State& state) {
  Graph query = SharedQuery(static_cast<int>(state.range(0)), 1);
  const GraphDatabase& db = SharedDb();
  size_t i = 0;
  for (auto _ : state) {
    UllmannMatcher matcher(query, db.at(i++ % db.size()));
    benchmark::DoNotOptimize(matcher.FindFirst());
  }
}
BENCHMARK(BM_UllmannFindFirst)->Arg(4)->Arg(8)->Arg(16);

void BM_Vf2EnumerateAll(benchmark::State& state) {
  Graph query = SharedQuery(6, 2);
  const GraphDatabase& db = SharedDb();
  size_t i = 0;
  for (auto _ : state) {
    Vf2Matcher matcher(query, db.at(i++ % db.size()));
    size_t count =
        matcher.EnumerateAll([](const std::vector<VertexId>&) { return true; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_Vf2EnumerateAll);

void BM_MinDfsCodeSkeleton(benchmark::State& state) {
  // Canonicalize fragments of the given edge count — the index build's hot
  // path.
  std::vector<Graph> fragments;
  Rng rng(7);
  for (int i = 0; i < 64; ++i) {
    auto frag = SampleConnectedSubgraph(
        SharedDb().at(rng.UniformIndex(SharedDb().size())),
        static_cast<int>(state.range(0)), &rng);
    if (frag.ok()) fragments.push_back(frag.MoveValue());
  }
  CanonicalOptions options;
  options.use_labels = false;
  size_t i = 0;
  for (auto _ : state) {
    auto form = MinDfsCode(fragments[i++ % fragments.size()], options);
    benchmark::DoNotOptimize(form.ok());
  }
}
BENCHMARK(BM_MinDfsCodeSkeleton)->Arg(3)->Arg(6)->Arg(10);

void BM_CostBoundedVerify(benchmark::State& state) {
  Graph query = SharedQuery(16, 3);
  const GraphDatabase& db = SharedDb();
  MutationCostModel model = EdgeMutationModel();
  double sigma = static_cast<double>(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    double d = MinSuperimposedDistance(query, db.at(i++ % db.size()), model, sigma);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_CostBoundedVerify)->Arg(1)->Arg(4);

void BM_BruteForceVerify(benchmark::State& state) {
  // Ablation: enumerate-then-score (what PIS's verifier avoids).
  Graph query = SharedQuery(12, 3);
  const GraphDatabase& db = SharedDb();
  MutationCostModel model = EdgeMutationModel();
  size_t i = 0;
  for (auto _ : state) {
    double d = MinSuperimposedDistanceBruteForce(query, db.at(i++ % db.size()),
                                                 model);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_BruteForceVerify);

void BM_FragmentEnumeration(benchmark::State& state) {
  const GraphDatabase& db = SharedDb();
  FragmentEnumOptions options;
  options.max_edges = static_cast<int>(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    size_t count = CountConnectedEdgeSubgraphs(db.at(i++ % db.size()), options);
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_FragmentEnumeration)->Arg(4)->Arg(6);

void BM_Automorphisms(benchmark::State& state) {
  Graph ring;
  for (int i = 0; i < 6; ++i) ring.AddVertex(1);
  for (int i = 0; i < 6; ++i) (void)ring.AddEdge(i, (i + 1) % 6, 1);
  for (auto _ : state) {
    auto autos = EnumerateAutomorphisms(ring);
    benchmark::DoNotOptimize(autos.size());
  }
}
BENCHMARK(BM_Automorphisms);

}  // namespace
}  // namespace pis
