// Figure 12: "Performance vs. Fragment Size" — reduction ratio for Q16 with
// the maximum indexed fragment size swept over 4, 5, 6 edges (one index
// build per size). The paper's finding: larger fragments prune better.
#include <cstdio>

#include "bench_common.h"

#include "util/string_util.h"

using namespace pis;
using namespace pis::bench;

int main(int argc, char** argv) {
  WorkloadConfig config;
  int query_edges = 16;
  double sigma = 2.0;
  std::string json_out;
  FlagSet flags;
  config.Register(&flags);
  flags.AddInt("query_edges", &query_edges, "query size (edges)");
  flags.AddDouble("sigma", &sigma, "distance threshold");
  flags.AddString("json_out", &json_out,
                  "write machine-readable results to this JSON file");
  Status st = flags.Parse(argc, argv);
  if (st.code() == StatusCode::kAlreadyExists) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  GraphDatabase db = MakeDatabase(config);
  auto queries = SampleQueries(db, query_edges, config);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }

  // One index per maximum fragment size. The Yt bucketing uses the largest
  // index (it has the tightest structure filter, matching the paper's
  // grouping by the gIndex-based topoPrune).
  std::vector<int> sizes = {4, 5, 6};
  std::vector<FragmentIndex> indexes;
  for (int size : sizes) {
    WorkloadConfig sized = config;
    sized.max_fragment_edges = size;
    auto features = MineFeatures(db, sized);
    if (!features.ok()) {
      std::fprintf(stderr, "%s\n", features.status().ToString().c_str());
      return 1;
    }
    auto index = BuildIndex(db, features.value(), sized);
    if (!index.ok()) {
      std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
      return 1;
    }
    indexes.push_back(index.MoveValue());
  }

  std::vector<SeriesSpec> series;
  for (size_t i = 0; i < sizes.size(); ++i) {
    SeriesSpec spec;
    spec.name = StrFormat("size=%d", sizes[i]);
    spec.options.sigma = sigma;
    spec.options.max_query_fragments = config.max_query_fragments;
    spec.index = &indexes[i];
    series.push_back(spec);
  }
  auto experiment =
      RunFilterExperiment(db, indexes.back(), series, queries.value());
  if (!experiment.ok()) {
    std::fprintf(stderr, "%s\n", experiment.status().ToString().c_str());
    return 1;
  }
  std::vector<std::string> names;
  for (const SeriesSpec& spec : series) names.push_back(spec.name);
  const std::vector<std::vector<double>> ratios =
      ReductionRatios(experiment.value());
  ReportBucketed(
      StrFormat("Figure 12: reduction vs max fragment size, sigma=%g", sigma),
      config, experiment.value().yt, names, ratios);
  if (!json_out.empty()) {
    JsonValue report = JsonValue::Object();
    report.Set("bench", "fig12_fragment_size");
    JsonValue cfg = JsonValue::Object();
    cfg.Set("db_size", config.db_size);
    cfg.Set("query_edges", query_edges);
    cfg.Set("sigma", sigma);
    cfg.Set("queries", static_cast<uint64_t>(queries.value().size()));
    JsonValue size_list = JsonValue::Array();
    for (int size : sizes) size_list.Push(size);
    cfg.Set("fragment_sizes", std::move(size_list));
    report.Set("config", std::move(cfg));
    report.Set("reduction",
               BucketTableJson(config, experiment.value().yt, names, ratios));
    Status written = WriteJsonFile(json_out, report);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_out.c_str());
  }
  return 0;
}
