// Index-sharding scaling: build time and batch-query throughput of the
// ShardedFragmentIndex / ShardedPisEngine pair as the shard count grows,
// against the monolithic FragmentIndex / PisEngine baseline. Answers are
// cross-checked against the baseline at every shard count — the sharded
// engine is exact by construction, and this bench enforces it on the
// benchmark workload too.
//
// --json_out writes every number of the printed table as one JSON object
// (shared bench::WriteJsonFile schema: a "config" block, the monolithic
// baseline, and per-shard-count sweep entries).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"

using namespace pis;
using namespace pis::bench;

int main(int argc, char** argv) {
  WorkloadConfig config;
  int query_edges = 12;
  int batch_size = 32;
  double sigma = 2.0;
  int max_shards = 8;
  std::string json_out;
  FlagSet flags;
  config.Register(&flags);
  flags.AddInt("query_edges", &query_edges, "query size (edges)");
  flags.AddInt("batch_size", &batch_size, "queries per batch");
  flags.AddDouble("sigma", &sigma, "max superimposed distance");
  flags.AddInt("max_shards", &max_shards, "largest shard count in the sweep");
  flags.AddString("json_out", &json_out,
                  "write machine-readable results to this JSON file");
  Status st = flags.Parse(argc, argv);
  if (st.code() == StatusCode::kAlreadyExists) return 0;  // --help
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  GraphDatabase db = MakeDatabase(config);
  auto features = MineFeatures(db, config);
  if (!features.ok()) {
    std::fprintf(stderr, "%s\n", features.status().ToString().c_str());
    return 1;
  }

  FragmentIndexOptions index_options;
  index_options.min_fragment_edges = config.min_fragment_edges;
  index_options.max_fragment_edges = config.max_fragment_edges;
  index_options.spec = DistanceSpec::EdgeMutation();
  index_options.num_threads =
      config.threads <= 0 ? HardwareThreads() : config.threads;

  // Monolithic baseline.
  auto index = FragmentIndex::Build(db, features.value(), index_options);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  const double baseline_build = index.value().stats().build_seconds;

  auto sampled = SampleQueries(db, query_edges, config);
  if (!sampled.ok() || sampled.value().empty()) {
    std::fprintf(stderr, "query sampling failed\n");
    return 1;
  }
  std::vector<Graph> batch;
  batch.reserve(batch_size);
  for (int i = 0; i < batch_size; ++i) {
    batch.push_back(sampled.value()[i % sampled.value().size()]);
  }

  PisOptions options;
  options.sigma = sigma;
  options.max_query_fragments = config.max_query_fragments;
  PisEngine baseline(&db, &index.value(), options);
  BatchSearchResult baseline_batch = baseline.SearchBatch(batch, 0);
  const double baseline_query = baseline_batch.wall_seconds;
  if (baseline_batch.failed != 0) {
    std::fprintf(stderr, "%zu baseline queries failed\n",
                 baseline_batch.failed);
    return 1;
  }

  std::printf("db=%d graphs, batch=%d queries (Q%d, sigma=%.1f)\n", db.size(),
              batch_size, query_edges, sigma);
  std::printf("%-12s %10s %9s %10s %9s %9s\n", "index", "build_s", "build_x",
              "batch_s", "queries/s", "answers");
  std::printf("%-12s %10.3f %9s %10.3f %9.1f %9zu\n", "monolithic",
              baseline_build, "1.00x", baseline_query,
              batch_size / baseline_query, baseline_batch.total_stats.answers);

  std::vector<int> sweep;
  for (int s = 1; s <= max_shards; s *= 2) sweep.push_back(s);
  // The doubling sweep skips a non-power-of-two endpoint; always include it.
  if (sweep.empty() || sweep.back() != max_shards) sweep.push_back(max_shards);
  JsonValue sweep_json = JsonValue::Array();
  for (int shards : sweep) {
    auto sharded =
        ShardedFragmentIndex::Build(db, features.value(), index_options, shards);
    if (!sharded.ok()) {
      std::fprintf(stderr, "%s\n", sharded.status().ToString().c_str());
      return 1;
    }
    ShardedPisEngine engine(&db, &sharded.value(), options);
    BatchSearchResult result = engine.SearchBatch(batch, 0);
    if (result.failed != 0) {
      std::fprintf(stderr, "%zu queries failed at S=%d\n", result.failed,
                   shards);
      return 1;
    }
    // Exactness check: the sharded engine must reproduce the baseline
    // answers query by query.
    for (size_t qi = 0; qi < batch.size(); ++qi) {
      if (result.results[qi].value().answers !=
          baseline_batch.results[qi].value().answers) {
        std::fprintf(stderr, "answer mismatch at S=%d query %zu\n", shards, qi);
        return 1;
      }
    }
    char label[32];
    std::snprintf(label, sizeof(label), "S=%d", shards);
    std::printf("%-12s %10.3f %8.2fx %10.3f %9.1f %9zu\n", label,
                sharded.value().build_seconds(),
                baseline_build / sharded.value().build_seconds(),
                result.wall_seconds, batch_size / result.wall_seconds,
                result.total_stats.answers);
    JsonValue entry = JsonValue::Object();
    entry.Set("shards", shards);
    entry.Set("build_seconds", sharded.value().build_seconds());
    entry.Set("build_speedup",
              baseline_build / sharded.value().build_seconds());
    entry.Set("batch_seconds", result.wall_seconds);
    entry.Set("queries_per_second", batch_size / result.wall_seconds);
    entry.Set("answers", static_cast<uint64_t>(result.total_stats.answers));
    sweep_json.Push(std::move(entry));
  }

  if (!json_out.empty()) {
    JsonValue report = JsonValue::Object();
    report.Set("bench", "bench_shard");
    JsonValue cfg = JsonValue::Object();
    cfg.Set("db_size", config.db_size);
    cfg.Set("query_edges", query_edges);
    cfg.Set("batch_size", batch_size);
    cfg.Set("sigma", sigma);
    cfg.Set("max_shards", max_shards);
    report.Set("config", std::move(cfg));
    JsonValue base = JsonValue::Object();
    base.Set("build_seconds", baseline_build);
    base.Set("batch_seconds", baseline_query);
    base.Set("queries_per_second", batch_size / baseline_query);
    base.Set("answers",
             static_cast<uint64_t>(baseline_batch.total_stats.answers));
    report.Set("monolithic", std::move(base));
    report.Set("sweep", std::move(sweep_json));
    Status written = WriteJsonFile(json_out, report);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_out.c_str());
  }
  return 0;
}
