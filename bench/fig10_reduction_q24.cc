// Figure 10: "Structure Query with 24 edges" — candidate reduction ratio
// Yt/Yp per Yt bucket for 24-edge queries, σ = 1, 3, 5.
#include "bench_common.h"

int main(int argc, char** argv) {
  return pis::bench::ReductionFigureMain(
      argc, argv, "fig10_reduction_q24", "Figure 10: reduction ratio Yt/Yp",
      /*default_query_edges=*/24, {1.0, 3.0, 5.0});
}
