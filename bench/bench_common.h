// Shared setup for the paper-figure benches: dataset generation, feature
// mining, index construction, query sampling, and the Yt-bucket reporting
// scheme of Figures 8-12.
#ifndef PIS_BENCH_BENCH_COMMON_H_
#define PIS_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "pis.h"
#include "util/flags.h"
#include "util/json.h"

namespace pis::bench {

/// Workload configuration shared by every figure bench; overridable from
/// the command line so the paper-scale run (10k graphs) and a quick
/// smoke-scale run are both one command.
struct WorkloadConfig {
  int db_size = 1000;
  uint64_t db_seed = 42;
  int queries_per_set = 60;
  uint64_t query_seed = 7;
  /// gSpan relative min support for skeleton features.
  double feature_min_support = 0.01;
  /// gIndex discriminative ratio.
  double feature_gamma = 1.0;
  /// Fragment size bounds of the index.
  int min_fragment_edges = 1;
  int max_fragment_edges = 6;
  /// Cap on enumerated query fragments (0 = all).
  int max_query_fragments = 0;
  /// Threads for index construction (0 = all hardware threads).
  int threads = 0;
  bool verbose = false;

  void Register(FlagSet* flags);
};

/// Generates the AIDS-like database (see DESIGN.md §4).
GraphDatabase MakeDatabase(const WorkloadConfig& config);

/// Mines skeleton features (gSpan on skeletons + discriminative selection).
Result<std::vector<Graph>> MineFeatures(const GraphDatabase& db,
                                        const WorkloadConfig& config);

/// Builds the fragment index for the edge mutation distance.
Result<FragmentIndex> BuildIndex(const GraphDatabase& db,
                                 const std::vector<Graph>& features,
                                 const WorkloadConfig& config);

/// Samples the query set Q_m (vertex labels stripped, as in the paper).
Result<std::vector<Graph>> SampleQueries(const GraphDatabase& db, int num_edges,
                                         const WorkloadConfig& config);

/// The paper's six query buckets by topoPrune candidate count Yt, relative
/// to the database size (the paper uses 10k: <300, <750, <1.5k, <3k, <5k,
/// the rest). Bucket edges scale with db_size.
struct Buckets {
  std::vector<double> upper_fractions = {0.03, 0.075, 0.15, 0.30, 0.50, 1.0};
  std::vector<std::string> names = {"Q<300", "Q750", "Q1.5k",
                                    "Q3k",   "Q5k",  "Q>5k"};
  int BucketOf(size_t yt, int db_size) const;
};

/// Per-(bucket, series) average accumulator.
class BucketAverager {
 public:
  BucketAverager(int num_buckets, int num_series);
  void Add(int bucket, int series, double value);
  /// Average or NaN when the bucket is empty.
  double Mean(int bucket, int series) const;
  int Count(int bucket, int series) const;

 private:
  int num_series_;
  std::vector<double> sums_;
  std::vector<int> counts_;
};

/// Prints a figure table: rows = buckets, columns = series.
void PrintBucketTable(const std::string& title, const Buckets& buckets,
                      const std::vector<std::string>& series_names,
                      const BucketAverager& averager);

/// One PIS configuration to evaluate as a figure series.
struct SeriesSpec {
  std::string name;
  PisOptions options;
  /// Index for this series (Figure 12 varies it); nullptr = shared default.
  const FragmentIndex* index = nullptr;
};

/// Per-query filtering outcomes for every series.
struct FilterExperiment {
  /// topoPrune candidate counts Yt against the default index, one per query
  /// (the bucketing key).
  std::vector<size_t> yt;
  /// topoPrune counts against each series' own index: [series][query].
  /// Equals `yt` replicated when a series shares the default index. The
  /// per-series reduction ratio divides by this, so a weaker index (Figure
  /// 12, size=4) is compared against its own structure filter.
  std::vector<std::vector<size_t>> yt_per_series;
  /// PIS candidate counts Yp: [series][query].
  std::vector<std::vector<size_t>> yp;
  /// Average PIS filtering time per query, per series (seconds).
  std::vector<double> filter_seconds;
  /// Average verification time per candidate, measured on a sample
  /// (supports the paper's "pruning cost is negligible" claim).
  double verify_seconds_per_candidate = 0;
};

/// Runs topoPrune and each PIS series over the query set.
Result<FilterExperiment> RunFilterExperiment(const GraphDatabase& db,
                                             const FragmentIndex& default_index,
                                             const std::vector<SeriesSpec>& series,
                                             const std::vector<Graph>& queries,
                                             bool sample_verify_cost = false);

/// Buckets per-query values of all series by Yt and prints the table.
/// `values[series][query]`; `yt` gives the bucket key.
void ReportBucketed(const std::string& title, const WorkloadConfig& config,
                    const std::vector<size_t>& yt,
                    const std::vector<std::string>& series_names,
                    const std::vector<std::vector<double>>& values);

/// Computes per-query reduction ratios Yt / max(Yp, 1) for each series.
std::vector<std::vector<double>> ReductionRatios(const FilterExperiment& ex);

/// The bucket table as JSON — the same numbers PrintBucketTable renders: a
/// "buckets" array of {bucket, queries, <series>: mean} rows. Empty buckets
/// carry null means (NaN serializes as null). Shared by every figure
/// bench's --json_out so plotting and regression scripts read one shape.
JsonValue BucketTableJson(const WorkloadConfig& config,
                          const std::vector<size_t>& yt,
                          const std::vector<std::string>& series_names,
                          const std::vector<std::vector<double>>& values);

/// Writes `value` plus a trailing newline to `path`, creating parent
/// directories as needed — the machine-readable side channel of a bench run
/// (the human-readable tables stay on stdout). Serialization is
/// deterministic (sorted keys), so checked-in bench JSON diffs cleanly.
Status WriteJsonFile(const std::string& path, const JsonValue& value);

/// Complete driver for a reduction-ratio figure (Figures 9 and 10): parse
/// flags, build workload, run the σ series, print the bucket table.
/// `bench_name` labels the --json_out report (e.g. "fig09_reduction_q16").
/// Returns a process exit code.
int ReductionFigureMain(int argc, char** argv, const std::string& bench_name,
                        const std::string& figure_title,
                        int default_query_edges,
                        const std::vector<double>& sigmas);

}  // namespace pis::bench

#endif  // PIS_BENCH_BENCH_COMMON_H_
