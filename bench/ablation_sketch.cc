// Ablation: superimposed-sketch prefilter. Runs the same query set through
// the PIS filter with the sketch disabled and enabled and reports what the
// prefilter buys: the fraction of live graphs it discards before any range
// query intersection, the false-drop rate (graphs that pass the sketch but
// fall to the pass-1 intersection anyway — the superimposed-code false
// positives), and the filter-time delta. The candidate lists of the two
// configurations must be identical — the sketch prunes only
// provably-impossible graphs — and the bench exits nonzero if they differ.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/string_util.h"

using namespace pis;
using namespace pis::bench;

int main(int argc, char** argv) {
  WorkloadConfig config;
  int query_edges = 16;
  double sigma = 2.0;
  std::string json_out;
  FlagSet flags;
  config.Register(&flags);
  flags.AddInt("query_edges", &query_edges, "query size (edges)");
  flags.AddDouble("sigma", &sigma, "distance threshold");
  flags.AddString("json_out", &json_out,
                  "write machine-readable results to this JSON file");
  Status st = flags.Parse(argc, argv);
  if (st.code() == StatusCode::kAlreadyExists) return 0;  // --help
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  GraphDatabase db = MakeDatabase(config);
  auto features = MineFeatures(db, config);
  if (!features.ok()) {
    std::fprintf(stderr, "%s\n", features.status().ToString().c_str());
    return 1;
  }
  auto index = BuildIndex(db, features.value(), config);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  auto queries = SampleQueries(db, query_edges, config);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }

  PisOptions off_options;
  off_options.sigma = sigma;
  off_options.max_query_fragments = config.max_query_fragments;
  PisOptions on_options = off_options;
  on_options.sketch_enabled = true;
  PisEngine off_engine(&db, &index.value(), off_options);
  PisEngine on_engine(&db, &index.value(), on_options);

  double off_seconds = 0;
  double on_seconds = 0;
  size_t off_candidates = 0;
  size_t on_candidates = 0;
  size_t sketch_checks = 0;
  size_t sketch_pruned = 0;
  size_t after_intersection = 0;
  size_t mismatches = 0;
  for (const Graph& query : queries.value()) {
    auto off = off_engine.Filter(query);
    if (!off.ok()) {
      std::fprintf(stderr, "%s\n", off.status().ToString().c_str());
      return 1;
    }
    auto on = on_engine.Filter(query);
    if (!on.ok()) {
      std::fprintf(stderr, "%s\n", on.status().ToString().c_str());
      return 1;
    }
    if (off.value().candidates != on.value().candidates) ++mismatches;
    off_seconds += off.value().stats.filter_seconds;
    on_seconds += on.value().stats.filter_seconds;
    off_candidates += off.value().stats.candidates_final;
    on_candidates += on.value().stats.candidates_final;
    sketch_checks += on.value().stats.sketch_checks;
    sketch_pruned += on.value().stats.sketch_pruned;
    after_intersection += on.value().stats.candidates_after_intersection;
  }

  const double n = static_cast<double>(queries.value().size());
  // Sketch survivors that the pass-1 intersection kills anyway: the
  // superimposed code said "might contain every query class" but at least
  // one class's range query came back without the graph.
  const size_t survivors = sketch_checks - sketch_pruned;
  const size_t false_drops =
      survivors > after_intersection ? survivors - after_intersection : 0;
  const double prune_fraction =
      sketch_checks > 0
          ? static_cast<double>(sketch_pruned) / static_cast<double>(sketch_checks)
          : 0.0;
  const double false_drop_rate =
      sketch_checks > 0
          ? static_cast<double>(false_drops) / static_cast<double>(sketch_checks)
          : 0.0;

  std::printf("=== Ablation: sketch prefilter (Q%d, sigma=%g, %d graphs) ===\n",
              query_edges, sigma, config.db_size);
  std::printf("%-14s %14s %12s\n", "config", "avg candidates", "filter ms");
  std::printf("%-14s %14.1f %12.2f\n", "sketch off", off_candidates / n,
              off_seconds / n * 1e3);
  std::printf("%-14s %14.1f %12.2f\n", "sketch on", on_candidates / n,
              on_seconds / n * 1e3);
  std::printf("sketch checks: %zu, pruned: %zu (%.1f%% of live graphs)\n",
              sketch_checks, sketch_pruned, prune_fraction * 100);
  std::printf("false drops: %zu of %zu checks (%.2f%% pass the sketch but "
              "fail the intersection)\n",
              false_drops, sketch_checks, false_drop_rate * 100);
  std::printf("candidate lists identical: %s\n",
              mismatches == 0 ? "yes" : "NO (BROKEN)");

  if (!json_out.empty()) {
    JsonValue report = JsonValue::Object();
    report.Set("bench", "ablation_sketch");
    JsonValue cfg = JsonValue::Object();
    cfg.Set("db_size", config.db_size);
    cfg.Set("query_edges", query_edges);
    cfg.Set("sigma", sigma);
    cfg.Set("queries", static_cast<uint64_t>(queries.value().size()));
    cfg.Set("sketch_bits", index.value().sketch().bits_per_graph());
    cfg.Set("sketch_hashes", index.value().sketch().num_hashes());
    report.Set("config", std::move(cfg));
    JsonValue off_json = JsonValue::Object();
    off_json.Set("avg_candidates", off_candidates / n);
    off_json.Set("avg_filter_ms", off_seconds / n * 1e3);
    report.Set("sketch_off", std::move(off_json));
    JsonValue on_json = JsonValue::Object();
    on_json.Set("avg_candidates", on_candidates / n);
    on_json.Set("avg_filter_ms", on_seconds / n * 1e3);
    on_json.Set("sketch_checks", static_cast<uint64_t>(sketch_checks));
    on_json.Set("sketch_pruned", static_cast<uint64_t>(sketch_pruned));
    on_json.Set("prune_fraction", prune_fraction);
    on_json.Set("false_drops", static_cast<uint64_t>(false_drops));
    on_json.Set("false_drop_rate", false_drop_rate);
    report.Set("sketch_on", std::move(on_json));
    report.Set("identical_candidates", mismatches == 0);
    report.Set("ok", mismatches == 0);
    Status written = WriteJsonFile(json_out, report);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_out.c_str());
  }
  return mismatches == 0 ? 0 : 1;
}
