// Ablation: partition selection strategy (paper §5). Compares the candidate
// counts and filtering time of Greedy (Algorithm 1), EnhancedGreedy(2)
// (Theorem 3), exact MWIS, and the single-best-fragment baseline.
// The paper reports EnhancedGreedy(2) ≈ Greedy on real data; this bench
// regenerates that observation and quantifies the gap to optimal.
#include <cstdio>

#include "bench_common.h"
#include "util/string_util.h"

using namespace pis;
using namespace pis::bench;

int main(int argc, char** argv) {
  WorkloadConfig config;
  config.db_size = 500;
  int query_edges = 16;
  double sigma = 2.0;
  std::string json_out;
  FlagSet flags;
  config.Register(&flags);
  flags.AddInt("query_edges", &query_edges, "query size (edges)");
  flags.AddDouble("sigma", &sigma, "distance threshold");
  flags.AddString("json_out", &json_out,
                  "write machine-readable results to this JSON file");
  Status st = flags.Parse(argc, argv);
  if (st.code() == StatusCode::kAlreadyExists) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  GraphDatabase db = MakeDatabase(config);
  auto features = MineFeatures(db, config);
  if (!features.ok()) {
    std::fprintf(stderr, "%s\n", features.status().ToString().c_str());
    return 1;
  }
  auto index = BuildIndex(db, features.value(), config);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  auto queries = SampleQueries(db, query_edges, config);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }

  struct Algo {
    const char* name;
    PartitionAlgorithm algorithm;
  };
  std::vector<Algo> algos = {
      {"greedy", PartitionAlgorithm::kGreedy},
      {"enhanced(2)", PartitionAlgorithm::kEnhancedGreedy},
      {"exact", PartitionAlgorithm::kExact},
      {"single-best", PartitionAlgorithm::kSingleBest},
  };

  std::printf("=== Ablation: partition selection (Q%d, sigma=%g, %d graphs) ===\n",
              query_edges, sigma, config.db_size);
  std::printf("%-12s %12s %14s %14s %12s\n", "algorithm", "avg |P|",
              "avg weight", "avg candidates", "filter ms");
  JsonValue algo_list = JsonValue::Array();
  for (const Algo& algo : algos) {
    PisOptions options;
    options.sigma = sigma;
    options.partition_algorithm = algo.algorithm;
    options.enhanced_k = 2;
    PisEngine engine(&db, &index.value(), options);
    double total_p = 0;
    double total_w = 0;
    double total_c = 0;
    double total_t = 0;
    for (const Graph& query : queries.value()) {
      auto filtered = engine.Filter(query);
      if (!filtered.ok()) {
        std::fprintf(stderr, "%s\n", filtered.status().ToString().c_str());
        return 1;
      }
      total_p += static_cast<double>(filtered.value().stats.partition_size);
      total_w += filtered.value().stats.partition_weight;
      total_c += static_cast<double>(filtered.value().stats.candidates_final);
      total_t += filtered.value().stats.filter_seconds;
    }
    double n = static_cast<double>(queries.value().size());
    std::printf("%-12s %12.2f %14.3f %14.1f %12.2f\n", algo.name, total_p / n,
                total_w / n, total_c / n, total_t / n * 1e3);
    JsonValue entry = JsonValue::Object();
    entry.Set("algorithm", algo.name);
    entry.Set("avg_partition_size", total_p / n);
    entry.Set("avg_partition_weight", total_w / n);
    entry.Set("avg_candidates", total_c / n);
    entry.Set("avg_filter_ms", total_t / n * 1e3);
    algo_list.Push(std::move(entry));
  }
  std::printf(
      "\nExpected shape: greedy ≈ enhanced(2) ≈ exact candidates (paper §5);\n"
      "single-best prunes less; exact costs the most filter time on large\n"
      "overlap graphs.\n");
  if (!json_out.empty()) {
    JsonValue report = JsonValue::Object();
    report.Set("bench", "ablation_partition");
    JsonValue cfg = JsonValue::Object();
    cfg.Set("db_size", config.db_size);
    cfg.Set("query_edges", query_edges);
    cfg.Set("sigma", sigma);
    cfg.Set("queries", static_cast<uint64_t>(queries.value().size()));
    report.Set("config", std::move(cfg));
    report.Set("algorithms", std::move(algo_list));
    Status written = WriteJsonFile(json_out, report);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_out.c_str());
  }
  return 0;
}
