#include "bench_common.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>

#include "util/logging.h"
#include "util/parallel.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace pis::bench {

void WorkloadConfig::Register(FlagSet* flags) {
  flags->AddInt("db_size", &db_size, "number of graphs in the database");
  flags->AddInt64("db_seed", reinterpret_cast<int64_t*>(&db_seed),
                  "dataset generator seed");
  flags->AddInt("queries_per_set", &queries_per_set, "queries per query set");
  flags->AddInt64("query_seed", reinterpret_cast<int64_t*>(&query_seed),
                  "query sampler seed");
  flags->AddDouble("feature_min_support", &feature_min_support,
                   "gSpan relative min support for skeleton features");
  flags->AddDouble("feature_gamma", &feature_gamma,
                   "gIndex discriminative ratio");
  flags->AddInt("min_fragment_edges", &min_fragment_edges,
                "smallest indexed fragment size");
  flags->AddInt("max_fragment_edges", &max_fragment_edges,
                "largest indexed fragment size");
  flags->AddInt("max_query_fragments", &max_query_fragments,
                "cap on enumerated query fragments (0 = all)");
  flags->AddInt("threads", &threads, "index build threads (0 = all cores)");
  flags->AddBool("verbose", &verbose, "log progress");
}

GraphDatabase MakeDatabase(const WorkloadConfig& config) {
  MoleculeGeneratorOptions options;
  options.seed = config.db_seed;
  MoleculeGenerator gen(options);
  Timer timer;
  GraphDatabase db = gen.Generate(config.db_size);
  if (config.verbose) {
    PIS_LOG(Info) << "generated " << db.size() << " graphs (avg "
                  << db.AverageVertices() << " vertices / " << db.AverageEdges()
                  << " edges, max " << db.MaxVertices() << "/" << db.MaxEdges()
                  << ") in " << timer.Seconds() << "s";
  }
  return db;
}

Result<std::vector<Graph>> MineFeatures(const GraphDatabase& db,
                                        const WorkloadConfig& config) {
  // Features are bare structures: mine the skeletons (paper §4 step 1).
  GraphDatabase skeletons;
  for (const Graph& g : db.graphs()) skeletons.Add(g.Skeleton());

  GspanOptions mine;
  mine.min_support = std::max(
      1, static_cast<int>(std::lround(config.feature_min_support * db.size())));
  mine.min_edges = 1;
  mine.max_edges = config.max_fragment_edges;
  Timer timer;
  PIS_ASSIGN_OR_RETURN(std::vector<Pattern> patterns,
                       MineFrequentSubgraphs(skeletons, mine));

  FeatureSelectorOptions select;
  select.gamma = config.feature_gamma;
  PIS_ASSIGN_OR_RETURN(std::vector<size_t> selected,
                       SelectDiscriminativeFeatures(patterns, db.size(), select));
  std::vector<Graph> features;
  features.reserve(selected.size());
  for (size_t idx : selected) features.push_back(patterns[idx].graph);
  if (config.verbose) {
    PIS_LOG(Info) << "mined " << patterns.size() << " frequent skeletons, kept "
                  << features.size() << " discriminative features in "
                  << timer.Seconds() << "s";
  }
  return features;
}

Result<FragmentIndex> BuildIndex(const GraphDatabase& db,
                                 const std::vector<Graph>& features,
                                 const WorkloadConfig& config) {
  FragmentIndexOptions options;
  options.min_fragment_edges = config.min_fragment_edges;
  options.max_fragment_edges = config.max_fragment_edges;
  options.spec = DistanceSpec::EdgeMutation();
  options.num_threads = config.threads > 0 ? config.threads : HardwareThreads();
  PIS_ASSIGN_OR_RETURN(FragmentIndex index,
                       FragmentIndex::Build(db, features, options));
  if (config.verbose) {
    const FragmentIndexStats& s = index.stats();
    PIS_LOG(Info) << "index: " << s.num_classes << " classes, "
                  << s.num_fragment_occurrences << " fragment occurrences, "
                  << s.num_sequences_inserted << " sequences, built in "
                  << s.build_seconds << "s";
  }
  return index;
}

Result<std::vector<Graph>> SampleQueries(const GraphDatabase& db, int num_edges,
                                         const WorkloadConfig& config) {
  QuerySamplerOptions options;
  options.seed = config.query_seed;
  options.strip_vertex_labels = true;
  QuerySampler sampler(&db, options);
  return sampler.SampleSet(num_edges, config.queries_per_set);
}

int Buckets::BucketOf(size_t yt, int db_size) const {
  double fraction = static_cast<double>(yt) / static_cast<double>(db_size);
  for (size_t i = 0; i < upper_fractions.size(); ++i) {
    if (fraction < upper_fractions[i]) return static_cast<int>(i);
  }
  return static_cast<int>(upper_fractions.size()) - 1;
}

BucketAverager::BucketAverager(int num_buckets, int num_series)
    : num_series_(num_series),
      sums_(static_cast<size_t>(num_buckets) * num_series, 0.0),
      counts_(static_cast<size_t>(num_buckets) * num_series, 0) {}

void BucketAverager::Add(int bucket, int series, double value) {
  size_t slot = static_cast<size_t>(bucket) * num_series_ + series;
  sums_[slot] += value;
  counts_[slot] += 1;
}

double BucketAverager::Mean(int bucket, int series) const {
  size_t slot = static_cast<size_t>(bucket) * num_series_ + series;
  if (counts_[slot] == 0) return std::nan("");
  return sums_[slot] / counts_[slot];
}

int BucketAverager::Count(int bucket, int series) const {
  return counts_[static_cast<size_t>(bucket) * num_series_ + series];
}

void PrintBucketTable(const std::string& title, const Buckets& buckets,
                      const std::vector<std::string>& series_names,
                      const BucketAverager& averager) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-8s %8s", "bucket", "queries");
  for (const std::string& name : series_names) {
    std::printf(" %14s", name.c_str());
  }
  std::printf("\n");
  for (size_t b = 0; b < buckets.names.size(); ++b) {
    std::printf("%-8s %8d", buckets.names[b].c_str(),
                averager.Count(static_cast<int>(b), 0));
    for (size_t s = 0; s < series_names.size(); ++s) {
      double mean = averager.Mean(static_cast<int>(b), static_cast<int>(s));
      if (std::isnan(mean)) {
        std::printf(" %14s", "-");
      } else {
        std::printf(" %14.2f", mean);
      }
    }
    std::printf("\n");
  }
}

Result<FilterExperiment> RunFilterExperiment(const GraphDatabase& db,
                                             const FragmentIndex& default_index,
                                             const std::vector<SeriesSpec>& series,
                                             const std::vector<Graph>& queries,
                                             bool sample_verify_cost) {
  FilterExperiment out;
  out.yt_per_series.assign(series.size(), {});
  out.yp.assign(series.size(), {});
  out.filter_seconds.assign(series.size(), 0.0);
  TopoPruneEngine topo(&db, &default_index);

  std::vector<std::unique_ptr<PisEngine>> engines;
  std::vector<std::unique_ptr<TopoPruneEngine>> series_topo;
  for (const SeriesSpec& spec : series) {
    const FragmentIndex* index = spec.index != nullptr ? spec.index : &default_index;
    engines.push_back(std::make_unique<PisEngine>(&db, index, spec.options));
    series_topo.push_back(index == &default_index
                              ? nullptr
                              : std::make_unique<TopoPruneEngine>(&db, index));
  }

  size_t verify_candidates = 0;
  double verify_seconds = 0;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    QueryStats topo_stats;
    PIS_ASSIGN_OR_RETURN(std::vector<int> yt_candidates,
                         topo.Filter(queries[qi], &topo_stats));
    out.yt.push_back(yt_candidates.size());
    for (size_t si = 0; si < series.size(); ++si) {
      PIS_ASSIGN_OR_RETURN(FilterResult filtered, engines[si]->Filter(queries[qi]));
      out.yp[si].push_back(filtered.candidates.size());
      out.filter_seconds[si] += filtered.stats.filter_seconds;
      if (series_topo[si] == nullptr) {
        out.yt_per_series[si].push_back(yt_candidates.size());
      } else {
        PIS_ASSIGN_OR_RETURN(std::vector<int> own_yt,
                             series_topo[si]->Filter(queries[qi], nullptr));
        out.yt_per_series[si].push_back(own_yt.size());
      }
      // Verify a small sample of candidates to estimate per-candidate cost.
      if (sample_verify_cost && si == 0 && qi % 8 == 0) {
        std::vector<int> sample = filtered.candidates;
        if (sample.size() > 20) sample.resize(20);
        VerifyResult v = VerifyCandidates(db, queries[qi], sample,
                                          default_index.options().spec,
                                          series[si].options.sigma);
        verify_candidates += sample.size();
        verify_seconds += v.seconds;
      }
    }
  }
  for (double& s : out.filter_seconds) {
    s /= queries.empty() ? 1 : static_cast<double>(queries.size());
  }
  if (verify_candidates > 0) {
    out.verify_seconds_per_candidate = verify_seconds / verify_candidates;
  }
  return out;
}

void ReportBucketed(const std::string& title, const WorkloadConfig& config,
                    const std::vector<size_t>& yt,
                    const std::vector<std::string>& series_names,
                    const std::vector<std::vector<double>>& values) {
  Buckets buckets;
  BucketAverager averager(static_cast<int>(buckets.names.size()),
                          static_cast<int>(series_names.size()));
  for (size_t qi = 0; qi < yt.size(); ++qi) {
    int bucket = buckets.BucketOf(yt[qi], config.db_size);
    for (size_t si = 0; si < series_names.size(); ++si) {
      averager.Add(bucket, static_cast<int>(si), values[si][qi]);
    }
  }
  PrintBucketTable(title, buckets, series_names, averager);
}

std::vector<std::vector<double>> ReductionRatios(const FilterExperiment& ex) {
  std::vector<std::vector<double>> ratios;
  for (size_t si = 0; si < ex.yp.size(); ++si) {
    std::vector<double> r(ex.yt.size());
    for (size_t qi = 0; qi < ex.yt.size(); ++qi) {
      r[qi] = static_cast<double>(ex.yt_per_series[si][qi]) /
              std::max<size_t>(1, ex.yp[si][qi]);
    }
    ratios.push_back(std::move(r));
  }
  return ratios;
}

JsonValue BucketTableJson(const WorkloadConfig& config,
                          const std::vector<size_t>& yt,
                          const std::vector<std::string>& series_names,
                          const std::vector<std::vector<double>>& values) {
  Buckets buckets;
  BucketAverager averager(static_cast<int>(buckets.names.size()),
                          static_cast<int>(series_names.size()));
  for (size_t qi = 0; qi < yt.size(); ++qi) {
    int bucket = buckets.BucketOf(yt[qi], config.db_size);
    for (size_t si = 0; si < series_names.size(); ++si) {
      averager.Add(bucket, static_cast<int>(si), values[si][qi]);
    }
  }
  JsonValue rows = JsonValue::Array();
  for (size_t b = 0; b < buckets.names.size(); ++b) {
    JsonValue row = JsonValue::Object();
    row.Set("bucket", buckets.names[b]);
    row.Set("queries", averager.Count(static_cast<int>(b), 0));
    for (size_t s = 0; s < series_names.size(); ++s) {
      row.Set(series_names[s],
              averager.Mean(static_cast<int>(b), static_cast<int>(s)));
    }
    rows.Push(std::move(row));
  }
  JsonValue table = JsonValue::Object();
  table.Set("buckets", std::move(rows));
  return table;
}

Status WriteJsonFile(const std::string& path, const JsonValue& value) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  std::error_code ec;
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << value.Serialize() << "\n";
  out.flush();
  if (!out.good()) return Status::IOError("short write to " + path);
  return Status::OK();
}

int ReductionFigureMain(int argc, char** argv, const std::string& bench_name,
                        const std::string& figure_title,
                        int default_query_edges,
                        const std::vector<double>& sigmas) {
  WorkloadConfig config;
  int query_edges = default_query_edges;
  std::string json_out;
  FlagSet flags;
  config.Register(&flags);
  flags.AddInt("query_edges", &query_edges, "query size (edges)");
  flags.AddString("json_out", &json_out,
                  "write machine-readable results to this JSON file");
  Status st = flags.Parse(argc, argv);
  if (st.code() == StatusCode::kAlreadyExists) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  GraphDatabase db = MakeDatabase(config);
  auto features = MineFeatures(db, config);
  if (!features.ok()) {
    std::fprintf(stderr, "%s\n", features.status().ToString().c_str());
    return 1;
  }
  auto index = BuildIndex(db, features.value(), config);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  auto queries = SampleQueries(db, query_edges, config);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }

  std::vector<SeriesSpec> series;
  for (double sigma : sigmas) {
    SeriesSpec spec;
    spec.name = StrFormat("PIS s=%g", sigma);
    spec.options.sigma = sigma;
    spec.options.max_query_fragments = config.max_query_fragments;
    series.push_back(spec);
  }
  auto experiment =
      RunFilterExperiment(db, index.value(), series, queries.value());
  if (!experiment.ok()) {
    std::fprintf(stderr, "%s\n", experiment.status().ToString().c_str());
    return 1;
  }
  std::vector<std::string> names;
  for (const SeriesSpec& spec : series) names.push_back(spec.name);
  const std::vector<std::vector<double>> ratios =
      ReductionRatios(experiment.value());
  ReportBucketed(figure_title + ", Q" + std::to_string(query_edges), config,
                 experiment.value().yt, names, ratios);
  if (!json_out.empty()) {
    JsonValue report = JsonValue::Object();
    report.Set("bench", bench_name);
    JsonValue cfg = JsonValue::Object();
    cfg.Set("db_size", config.db_size);
    cfg.Set("query_edges", query_edges);
    cfg.Set("queries", static_cast<uint64_t>(queries.value().size()));
    JsonValue sigma_list = JsonValue::Array();
    for (double sigma : sigmas) sigma_list.Push(sigma);
    cfg.Set("sigmas", std::move(sigma_list));
    report.Set("config", std::move(cfg));
    report.Set("reduction",
               BucketTableJson(config, experiment.value().yt, names, ratios));
    Status written = WriteJsonFile(json_out, report);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_out.c_str());
  }
  return 0;
}

}  // namespace pis::bench
