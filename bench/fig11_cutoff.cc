// Figure 11: "Cutoff Value Sensitivity" — reduction ratio for Q16 at σ = 2
// with the selectivity cutoff λσ, λ ∈ {0.5, 1, 2}. The paper's finding:
// λ < 1 hurts pruning; λ ≥ 1 is flat (λ=1 and λ=2 curves coincide).
#include <cstdio>

#include "bench_common.h"

#include "util/string_util.h"

using namespace pis;
using namespace pis::bench;

int main(int argc, char** argv) {
  WorkloadConfig config;
  int query_edges = 16;
  double sigma = 2.0;
  std::string json_out;
  FlagSet flags;
  config.Register(&flags);
  flags.AddInt("query_edges", &query_edges, "query size (edges)");
  flags.AddDouble("sigma", &sigma, "distance threshold");
  flags.AddString("json_out", &json_out,
                  "write machine-readable results to this JSON file");
  Status st = flags.Parse(argc, argv);
  if (st.code() == StatusCode::kAlreadyExists) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  GraphDatabase db = MakeDatabase(config);
  auto features = MineFeatures(db, config);
  if (!features.ok()) {
    std::fprintf(stderr, "%s\n", features.status().ToString().c_str());
    return 1;
  }
  auto index = BuildIndex(db, features.value(), config);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  auto queries = SampleQueries(db, query_edges, config);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }

  std::vector<SeriesSpec> series;
  for (double lambda : {0.5, 1.0, 2.0}) {
    SeriesSpec spec;
    spec.name = StrFormat("PIS l=%g", lambda);
    spec.options.sigma = sigma;
    spec.options.lambda = lambda;
    spec.options.max_query_fragments = config.max_query_fragments;
    series.push_back(spec);
  }
  auto experiment =
      RunFilterExperiment(db, index.value(), series, queries.value());
  if (!experiment.ok()) {
    std::fprintf(stderr, "%s\n", experiment.status().ToString().c_str());
    return 1;
  }
  std::vector<std::string> names;
  for (const SeriesSpec& spec : series) names.push_back(spec.name);
  const std::vector<std::vector<double>> ratios =
      ReductionRatios(experiment.value());
  ReportBucketed(StrFormat("Figure 11: cutoff sensitivity, sigma=%g", sigma),
                 config, experiment.value().yt, names, ratios);
  if (!json_out.empty()) {
    JsonValue report = JsonValue::Object();
    report.Set("bench", "fig11_cutoff");
    JsonValue cfg = JsonValue::Object();
    cfg.Set("db_size", config.db_size);
    cfg.Set("query_edges", query_edges);
    cfg.Set("sigma", sigma);
    cfg.Set("queries", static_cast<uint64_t>(queries.value().size()));
    report.Set("config", std::move(cfg));
    report.Set("reduction",
               BucketTableJson(config, experiment.value().yt, names, ratios));
    Status written = WriteJsonFile(json_out, report);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_out.c_str());
  }
  return 0;
}
