// Figure 8: "Structure Query with 16 edges" — average number of candidate
// graphs per Yt bucket for topoPrune vs PIS at σ = 4, 2, 1.
// Also reports the §7 timing claim (filtering ≪ verification).
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"

using namespace pis;
using namespace pis::bench;

int main(int argc, char** argv) {
  WorkloadConfig config;
  int query_edges = 16;
  std::string json_out;
  FlagSet flags;
  config.Register(&flags);
  flags.AddInt("query_edges", &query_edges, "query size (edges)");
  flags.AddString("json_out", &json_out,
                  "write machine-readable results to this JSON file");
  Status st = flags.Parse(argc, argv);
  if (st.code() == StatusCode::kAlreadyExists) return 0;  // --help
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  GraphDatabase db = MakeDatabase(config);
  auto features = MineFeatures(db, config);
  if (!features.ok()) {
    std::fprintf(stderr, "%s\n", features.status().ToString().c_str());
    return 1;
  }
  auto index = BuildIndex(db, features.value(), config);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  auto queries = SampleQueries(db, query_edges, config);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }

  std::vector<SeriesSpec> series;
  for (double sigma : {4.0, 2.0, 1.0}) {
    SeriesSpec spec;
    spec.name = "PIS s=" + std::to_string(static_cast<int>(sigma));
    spec.options.sigma = sigma;
    spec.options.max_query_fragments = config.max_query_fragments;
    series.push_back(spec);
  }
  auto experiment =
      RunFilterExperiment(db, index.value(), series, queries.value(), true);
  if (!experiment.ok()) {
    std::fprintf(stderr, "%s\n", experiment.status().ToString().c_str());
    return 1;
  }
  const FilterExperiment& ex = experiment.value();

  std::vector<std::string> names = {"topoPrune"};
  std::vector<std::vector<double>> values;
  values.emplace_back(ex.yt.begin(), ex.yt.end());
  for (size_t si = 0; si < series.size(); ++si) {
    names.push_back(series[si].name);
    values.emplace_back(ex.yp[si].begin(), ex.yp[si].end());
  }
  ReportBucketed(
      "Figure 8: avg #candidate graphs, Q" + std::to_string(query_edges), config,
      ex.yt, names, values);

  std::printf("\nTiming (paper §7: pruning ≪ verification):\n");
  for (size_t si = 0; si < series.size(); ++si) {
    std::printf("  %-10s avg PIS filter time per query: %8.2f ms\n",
                series[si].name.c_str(), ex.filter_seconds[si] * 1e3);
  }
  std::printf("  est. verification cost per candidate:  %8.3f ms\n",
              ex.verify_seconds_per_candidate * 1e3);

  if (!json_out.empty()) {
    JsonValue report = JsonValue::Object();
    report.Set("bench", "fig08_candidates");
    JsonValue cfg = JsonValue::Object();
    cfg.Set("db_size", config.db_size);
    cfg.Set("query_edges", query_edges);
    cfg.Set("queries", static_cast<uint64_t>(queries.value().size()));
    report.Set("config", std::move(cfg));
    report.Set("candidates", BucketTableJson(config, ex.yt, names, values));
    JsonValue timing = JsonValue::Object();
    for (size_t si = 0; si < series.size(); ++si) {
      timing.Set(series[si].name + " filter_ms_per_query",
                 ex.filter_seconds[si] * 1e3);
    }
    timing.Set("verify_ms_per_candidate",
               ex.verify_seconds_per_candidate * 1e3);
    report.Set("timing", std::move(timing));
    Status written = WriteJsonFile(json_out, report);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_out.c_str());
  }
  return 0;
}
