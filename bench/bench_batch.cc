// Batch-search throughput: queries/second of PisEngine::SearchBatch as the
// thread count grows from 1 to the hardware limit, against the sequential
// Search loop baseline. Supports the north-star goal of serving heavy query
// traffic: the batch API should scale near-linearly on an embarrassingly
// parallel workload.
//
// --json_out writes every number of the printed table as one JSON object
// (shared bench::WriteJsonFile schema: a "config" block plus per-thread
// sweep entries), so plotting scripts consume the same run CI logs.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "util/timer.h"

using namespace pis;
using namespace pis::bench;

int main(int argc, char** argv) {
  WorkloadConfig config;
  int query_edges = 12;
  int batch_size = 64;
  double sigma = 2.0;
  std::string json_out;
  FlagSet flags;
  config.Register(&flags);
  flags.AddInt("query_edges", &query_edges, "query size (edges)");
  flags.AddInt("batch_size", &batch_size, "queries per batch");
  flags.AddDouble("sigma", &sigma, "max superimposed distance");
  flags.AddString("json_out", &json_out,
                  "write machine-readable results to this JSON file");
  Status st = flags.Parse(argc, argv);
  if (st.code() == StatusCode::kAlreadyExists) return 0;  // --help
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  GraphDatabase db = MakeDatabase(config);
  auto features = MineFeatures(db, config);
  if (!features.ok()) {
    std::fprintf(stderr, "%s\n", features.status().ToString().c_str());
    return 1;
  }
  auto index = BuildIndex(db, features.value(), config);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }

  // Sample enough queries for one batch (cycling the query set if the
  // sampler yields fewer).
  auto sampled = SampleQueries(db, query_edges, config);
  if (!sampled.ok()) {
    std::fprintf(stderr, "%s\n", sampled.status().ToString().c_str());
    return 1;
  }
  if (sampled.value().empty()) {
    std::fprintf(stderr, "no queries sampled\n");
    return 1;
  }
  std::vector<Graph> batch;
  batch.reserve(batch_size);
  for (int i = 0; i < batch_size; ++i) {
    batch.push_back(sampled.value()[i % sampled.value().size()]);
  }

  PisOptions options;
  options.sigma = sigma;
  options.max_query_fragments = config.max_query_fragments;
  PisEngine engine(&db, &index.value(), options);

  // Sequential baseline.
  Timer timer;
  size_t baseline_answers = 0;
  for (const Graph& q : batch) {
    auto r = engine.Search(q);
    if (r.ok()) baseline_answers += r.value().answers.size();
  }
  double sequential_seconds = timer.Seconds();
  std::printf("batch=%d queries (Q%d, sigma=%.1f) over %d graphs\n",
              batch_size, query_edges, sigma, db.size());
  std::printf("%-22s %10s %12s %9s\n", "mode", "seconds", "queries/s",
              "speedup");
  std::printf("%-22s %10.3f %12.1f %9s\n", "sequential Search",
              sequential_seconds, batch_size / sequential_seconds, "1.00x");

  std::vector<int> sweep;
  for (int threads = 1; threads < HardwareThreads(); threads *= 2) {
    sweep.push_back(threads);
  }
  sweep.push_back(HardwareThreads());
  JsonValue sweep_json = JsonValue::Array();
  for (int threads : sweep) {
    BatchSearchResult result = engine.SearchBatch(batch, threads);
    if (result.failed != 0) {
      std::fprintf(stderr, "%zu queries failed\n", result.failed);
      return 1;
    }
    if (result.total_stats.answers != baseline_answers) {
      std::fprintf(stderr, "answer mismatch vs sequential baseline\n");
      return 1;
    }
    char label[32];
    std::snprintf(label, sizeof(label), "SearchBatch t=%d", threads);
    std::printf("%-22s %10.3f %12.1f %8.2fx\n", label, result.wall_seconds,
                batch_size / result.wall_seconds,
                sequential_seconds / result.wall_seconds);
    JsonValue entry = JsonValue::Object();
    entry.Set("threads", threads);
    entry.Set("seconds", result.wall_seconds);
    entry.Set("queries_per_second", batch_size / result.wall_seconds);
    entry.Set("speedup", sequential_seconds / result.wall_seconds);
    sweep_json.Push(std::move(entry));
  }

  if (!json_out.empty()) {
    JsonValue report = JsonValue::Object();
    report.Set("bench", "bench_batch");
    JsonValue cfg = JsonValue::Object();
    cfg.Set("db_size", config.db_size);
    cfg.Set("query_edges", query_edges);
    cfg.Set("batch_size", batch_size);
    cfg.Set("sigma", sigma);
    cfg.Set("hardware_threads", HardwareThreads());
    report.Set("config", std::move(cfg));
    report.Set("sequential_seconds", sequential_seconds);
    report.Set("sequential_queries_per_second",
               batch_size / sequential_seconds);
    report.Set("answers", static_cast<uint64_t>(baseline_answers));
    report.Set("sweep", std::move(sweep_json));
    Status written = WriteJsonFile(json_out, report);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_out.c_str());
  }
  return 0;
}
