// Micro-benchmarks for the per-class index backends (trie / R-tree /
// VP-tree range queries) and full index construction.
#include <benchmark/benchmark.h>

#include "distance/score_matrix.h"
#include "graph/generator.h"
#include "index/fragment_index.h"
#include "index/rtree.h"
#include "index/trie_index.h"
#include "index/vptree.h"
#include "mining/gspan.h"
#include "util/logging.h"
#include "util/random.h"

namespace pis {
namespace {

void BM_TrieRangeQuery(benchmark::State& state) {
  const int len = 6;
  const int alphabet = 4;
  Rng rng(1);
  LabelTrie trie(len);
  for (int gid = 0; gid < 2000; ++gid) {
    for (int k = 0; k < 8; ++k) {
      std::vector<Label> seq(len);
      for (Label& s : seq) s = rng.UniformInt(1, alphabet);
      trie.Insert(seq, gid);
    }
  }
  trie.Finalize();
  ScoreMatrix unit = ScoreMatrix::Unit();
  SequenceCostModel model{&unit, &unit, 0};
  double sigma = static_cast<double>(state.range(0));
  for (auto _ : state) {
    std::vector<Label> query(len);
    for (Label& s : query) s = rng.UniformInt(1, alphabet);
    size_t hits = 0;
    trie.RangeQuery(query, model, sigma, [&](int, double) { ++hits; });
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_TrieRangeQuery)->Arg(0)->Arg(1)->Arg(2)->Arg(4);

void BM_RTreeInsert(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    RTree tree(6);
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      std::vector<double> p(6);
      for (double& x : p) x = rng.UniformDouble(0, 3);
      tree.Insert(p, i);
    }
    benchmark::DoNotOptimize(tree.size());
  }
}
BENCHMARK(BM_RTreeInsert);

void BM_RTreeRangeQuery(benchmark::State& state) {
  Rng rng(3);
  RTree tree(6);
  for (int i = 0; i < 20000; ++i) {
    std::vector<double> p(6);
    for (double& x : p) x = rng.UniformDouble(0, 3);
    tree.Insert(p, i % 2000);
  }
  double radius = static_cast<double>(state.range(0)) / 10.0;
  for (auto _ : state) {
    std::vector<double> center(6);
    for (double& x : center) x = rng.UniformDouble(0, 3);
    size_t hits = 0;
    tree.RangeQueryL1(center, radius, [&](int, double) { ++hits; });
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_RTreeRangeQuery)->Arg(1)->Arg(5)->Arg(20);

void BM_VpTreeRangeQuery(benchmark::State& state) {
  // Hamming metric over length-6 sequences, like a mutation-distance class.
  Rng rng(4);
  const int len = 6;
  std::vector<std::vector<Label>> items;
  std::vector<int> payloads;
  for (int i = 0; i < 16000; ++i) {
    std::vector<Label> seq(len);
    for (Label& s : seq) s = rng.UniformInt(1, 4);
    items.push_back(std::move(seq));
    payloads.push_back(i % 2000);
  }
  auto hamming = [&](size_t a, size_t b) {
    double d = 0;
    for (int k = 0; k < len; ++k) d += items[a][k] != items[b][k] ? 1 : 0;
    return d;
  };
  VpTree tree(items.size(), payloads, hamming);
  double sigma = static_cast<double>(state.range(0));
  for (auto _ : state) {
    std::vector<Label> query(len);
    for (Label& s : query) s = rng.UniformInt(1, 4);
    size_t hits = 0;
    tree.RangeQuery(
        [&](size_t item) {
          double d = 0;
          for (int k = 0; k < len; ++k) d += items[item][k] != query[k] ? 1 : 0;
          return d;
        },
        sigma, [&](int, double) { ++hits; });
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_VpTreeRangeQuery)->Arg(1)->Arg(2);

void BM_IndexBuild(benchmark::State& state) {
  MoleculeGenerator gen;
  GraphDatabase db = gen.Generate(static_cast<int>(state.range(0)));
  GraphDatabase skeletons;
  for (const Graph& g : db.graphs()) skeletons.Add(g.Skeleton());
  GspanOptions mine;
  mine.min_support = std::max(2, db.size() / 100);
  mine.max_edges = 4;
  auto patterns = MineFrequentSubgraphs(skeletons, mine);
  PIS_CHECK(patterns.ok());
  std::vector<Graph> features;
  for (const Pattern& p : patterns.value()) features.push_back(p.graph);
  FragmentIndexOptions options;
  options.max_fragment_edges = 4;
  for (auto _ : state) {
    auto index = FragmentIndex::Build(db, features, options);
    PIS_CHECK(index.ok());
    benchmark::DoNotOptimize(index.value().num_classes());
  }
  state.SetItemsProcessed(state.iterations() * db.size());
}
BENCHMARK(BM_IndexBuild)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_GspanMining(benchmark::State& state) {
  MoleculeGenerator gen;
  GraphDatabase db = gen.Generate(100);
  GraphDatabase skeletons;
  for (const Graph& g : db.graphs()) skeletons.Add(g.Skeleton());
  GspanOptions mine;
  mine.min_support = 5;
  mine.max_edges = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto patterns = MineFrequentSubgraphs(skeletons, mine);
    PIS_CHECK(patterns.ok());
    benchmark::DoNotOptimize(patterns.value().size());
  }
}
BENCHMARK(BM_GspanMining)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pis
