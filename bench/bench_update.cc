// Incremental-update economics: amortized AddGraph/RemoveGraph cost and
// query latency before and after N interleaved updates against a sharded
// index, compared with the cost of rebuilding from scratch at the final
// state. The interesting ratio is (N * amortized add) vs (one rebuild): as
// long as it stays well below 1 the incremental path wins for live traffic.
// A second phase then removes graphs down to --live_fraction of the slots
// and compares the tombstoned index against CompactShard-ing it in place
// and against a full rebuild: on-disk bytes, compaction cost, query
// latency, and mean final candidate counts — compaction must reclaim the
// space at a fraction of the rebuild's cost without regressing candidates.
//
// --json_out writes every number of the printed table as one JSON object
// for CI and trend tooling.
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <utility>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/sharded_pis.h"
#include "index/sharded_index.h"
#include "util/fs_util.h"
#include "util/random.h"
#include "util/timer.h"

using namespace pis;
using namespace pis::bench;

namespace {

struct QueryCost {
  double mean_seconds = 0;
  double mean_candidates = 0;
};

// Mean per-query Search latency and final candidate count over the set.
QueryCost MeasureQueries(const ShardedPisEngine& engine,
                         const std::vector<Graph>& queries) {
  QueryCost cost;
  size_t candidates = 0;
  Timer timer;
  for (const Graph& q : queries) {
    auto result = engine.Search(q);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      continue;
    }
    candidates += result.value().stats.candidates_final;
  }
  cost.mean_seconds = timer.Seconds() / static_cast<double>(queries.size());
  cost.mean_candidates =
      static_cast<double>(candidates) / static_cast<double>(queries.size());
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  WorkloadConfig config;
  int query_edges = 12;
  int updates = 200;
  int shards = 4;
  double sigma = 2.0;
  double live_fraction = 0.5;
  std::string json_out;
  FlagSet flags;
  config.Register(&flags);
  flags.AddInt("query_edges", &query_edges, "query size (edges)");
  flags.AddInt("updates", &updates, "interleaved add/remove operations");
  flags.AddInt("shards", &shards, "shard count of the mutated index");
  flags.AddDouble("sigma", &sigma, "max superimposed distance");
  flags.AddDouble("live_fraction", &live_fraction,
                  "remove down to this live/slots ratio before measuring "
                  "compaction (phase 2)");
  flags.AddString("json_out", &json_out,
                  "write machine-readable results to this JSON file");
  Status st = flags.Parse(argc, argv);
  if (st.code() == StatusCode::kAlreadyExists) return 0;  // --help
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // The pool holds the initial database plus every graph the update phase
  // will add; features are mined over the initial snapshot only (the
  // AddGraph contract: the class catalog is fixed at build time).
  const int num_adds = (updates + 1) / 2;
  WorkloadConfig pool_config = config;
  pool_config.db_size = config.db_size + num_adds;
  GraphDatabase pool = MakeDatabase(pool_config);
  GraphDatabase db;
  for (int i = 0; i < config.db_size; ++i) db.Add(pool.at(i));
  auto features = MineFeatures(db, config);
  if (!features.ok()) {
    std::fprintf(stderr, "%s\n", features.status().ToString().c_str());
    return 1;
  }

  FragmentIndexOptions index_options;
  index_options.min_fragment_edges = config.min_fragment_edges;
  index_options.max_fragment_edges = config.max_fragment_edges;
  index_options.spec = DistanceSpec::EdgeMutation();
  index_options.num_threads =
      config.threads <= 0 ? HardwareThreads() : config.threads;

  auto index =
      ShardedFragmentIndex::Build(db, features.value(), index_options, shards);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  const double initial_build = index.value().build_seconds();

  auto sampled = SampleQueries(db, query_edges, config);
  if (!sampled.ok() || sampled.value().empty()) {
    std::fprintf(stderr, "query sampling failed\n");
    return 1;
  }
  const std::vector<Graph>& queries = sampled.value();

  PisOptions options;
  options.sigma = sigma;
  ShardedPisEngine engine(&db, &index.value(), options);
  const QueryCost cost_before = MeasureQueries(engine, queries);

  // Interleave adds (from the pool tail) and removes (random live id).
  Rng rng(config.db_seed + 1);
  std::vector<int> live_ids(db.size());
  for (int i = 0; i < db.size(); ++i) live_ids[i] = i;
  int next_pool = config.db_size;
  int adds = 0;
  int removes = 0;
  double add_seconds = 0;
  double remove_seconds = 0;
  for (int op = 0; op < updates; ++op) {
    const bool do_add = (op % 2 == 0) ? next_pool < pool.size()
                                      : live_ids.size() <= 1;
    if (do_add && next_pool < pool.size()) {
      const Graph& g = pool.at(next_pool++);
      Timer timer;
      auto gid = index.value().AddGraph(g);
      add_seconds += timer.Seconds();
      if (!gid.ok()) {
        std::fprintf(stderr, "%s\n", gid.status().ToString().c_str());
        return 1;
      }
      db.Add(g);
      live_ids.push_back(gid.value());
      ++adds;
    } else {
      const size_t slot = rng.UniformIndex(live_ids.size());
      Timer timer;
      Status removed = index.value().RemoveGraph(live_ids[slot]);
      remove_seconds += timer.Seconds();
      if (!removed.ok()) {
        std::fprintf(stderr, "%s\n", removed.ToString().c_str());
        return 1;
      }
      live_ids[slot] = live_ids.back();
      live_ids.pop_back();
      ++removes;
    }
  }
  const QueryCost cost_after = MeasureQueries(engine, queries);

  // Phase 2: drain the database down to --live_fraction of its id slots so
  // dead postings dominate, then weigh the three ways out of the debt:
  // keep serving tombstoned, CompactShard in place, or rebuild from
  // scratch.
  Rng drain_rng(config.db_seed + 2);
  while (live_ids.size() >
         static_cast<size_t>(live_fraction * index.value().db_size()) &&
         live_ids.size() > 1) {
    const size_t slot = drain_rng.UniformIndex(live_ids.size());
    Timer timer;
    Status removed = index.value().RemoveGraph(live_ids[slot]);
    remove_seconds += timer.Seconds();
    if (!removed.ok()) {
      std::fprintf(stderr, "%s\n", removed.ToString().c_str());
      return 1;
    }
    live_ids[slot] = live_ids.back();
    live_ids.pop_back();
    ++removes;
  }
  const int slots = index.value().db_size();
  const int live = index.value().num_live();

  // PID-suffixed so concurrent runs (or stale dirs from other users on a
  // shared machine) can't clobber each other's size measurements.
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("pis_bench_update_idx." + std::to_string(getpid())))
          .string();
  std::filesystem::remove_all(dir);
  if (!index.value().SaveDir(dir).ok()) {
    std::fprintf(stderr, "SaveDir failed\n");
    return 1;
  }
  const uintmax_t bytes_tombstoned = DirectoryBytes(dir);
  const QueryCost cost_tombstoned = MeasureQueries(engine, queries);

  Timer compact_timer;
  auto compacted_shards = index.value().Compact();
  const double compact_seconds = compact_timer.Seconds();
  if (!compacted_shards.ok()) {
    std::fprintf(stderr, "%s\n", compacted_shards.status().ToString().c_str());
    return 1;
  }
  if (!index.value().SaveDir(dir).ok()) {
    std::fprintf(stderr, "SaveDir failed\n");
    return 1;
  }
  const uintmax_t bytes_compacted = DirectoryBytes(dir);
  const QueryCost cost_compacted = MeasureQueries(engine, queries);
  std::filesystem::remove_all(dir);

  // Full rebuild at the final state: densify the live graphs and build a
  // fresh sharded index — what a non-incremental system pays per batch of
  // updates.
  GraphDatabase densified;
  {
    std::vector<int> sorted = live_ids;
    std::sort(sorted.begin(), sorted.end());
    for (int gid : sorted) densified.Add(db.at(gid));
  }
  auto rebuilt = ShardedFragmentIndex::Build(densified, features.value(),
                                             index_options, shards);
  if (!rebuilt.ok()) {
    std::fprintf(stderr, "%s\n", rebuilt.status().ToString().c_str());
    return 1;
  }
  ShardedPisEngine rebuilt_engine(&densified, &rebuilt.value(), options);
  const QueryCost cost_rebuilt = MeasureQueries(rebuilt_engine, queries);

  std::printf("bench_update: %d initial graphs, %d shards, %d queries/set\n",
              config.db_size, shards, static_cast<int>(queries.size()));
  std::printf("updates applied: %d adds, %d removes (%d live of %d slots)\n",
              adds, removes, live, slots);
  std::printf("\n%-38s %12s\n", "metric", "value");
  std::printf("%-38s %9.3f s\n", "initial sharded build", initial_build);
  std::printf("%-38s %9.3f ms\n", "amortized AddGraph",
              adds > 0 ? 1e3 * add_seconds / adds : 0.0);
  std::printf("%-38s %9.3f ms\n", "amortized RemoveGraph",
              removes > 0 ? 1e3 * remove_seconds / removes : 0.0);
  std::printf("%-38s %9.3f s (%d shards)\n", "compaction at final state",
              compact_seconds, compacted_shards.value());
  std::printf("%-38s %9.3f s\n", "full rebuild at final state",
              rebuilt.value().build_seconds());
  std::printf("%-38s %9.3f ms\n", "query latency before updates",
              1e3 * cost_before.mean_seconds);
  std::printf("%-38s %9.3f ms\n", "query latency after updates",
              1e3 * cost_after.mean_seconds);
  std::printf("%-38s %9.3f ms\n", "query latency tombstoned (drained)",
              1e3 * cost_tombstoned.mean_seconds);
  std::printf("%-38s %9.3f ms\n", "query latency after compaction",
              1e3 * cost_compacted.mean_seconds);
  std::printf("%-38s %9.3f ms\n", "query latency after rebuild",
              1e3 * cost_rebuilt.mean_seconds);
  std::printf("%-38s %9" PRIuMAX " B\n", "index bytes tombstoned",
              bytes_tombstoned);
  std::printf("%-38s %9" PRIuMAX " B\n", "index bytes compacted",
              bytes_compacted);
  std::printf("%-38s %9.1f / %9.1f / %9.1f\n",
              "mean candidates tomb/compact/rebuild",
              cost_tombstoned.mean_candidates, cost_compacted.mean_candidates,
              cost_rebuilt.mean_candidates);
  if (adds > 0 && rebuilt.value().build_seconds() > 0) {
    std::printf("%-38s %9.2fx\n", "adds per rebuild-equivalent cost",
                rebuilt.value().build_seconds() / (add_seconds / adds));
  }
  if (compact_seconds > 0) {
    std::printf("%-38s %9.2fx\n", "rebuild cost per compaction cost",
                rebuilt.value().build_seconds() / compact_seconds);
  }
  std::printf("%-38s %9.1f%%\n", "bytes reclaimed by compaction",
              bytes_tombstoned > 0
                  ? 100.0 * (1.0 - static_cast<double>(bytes_compacted) /
                                       static_cast<double>(bytes_tombstoned))
                  : 0.0);

  if (!json_out.empty()) {
    JsonValue report = JsonValue::Object();
    report.Set("bench", "bench_update");
    JsonValue cfg = JsonValue::Object();
    cfg.Set("db_size", config.db_size);
    cfg.Set("shards", shards);
    cfg.Set("updates", updates);
    cfg.Set("live_fraction", live_fraction);
    cfg.Set("sigma", sigma);
    cfg.Set("query_edges", query_edges);
    cfg.Set("queries_per_set", static_cast<int>(queries.size()));
    report.Set("config", std::move(cfg));
    report.Set("adds", adds);
    report.Set("removes", removes);
    report.Set("live", live);
    report.Set("slots", slots);
    report.Set("initial_build_seconds", initial_build);
    report.Set("amortized_add_ms",
               adds > 0 ? 1e3 * add_seconds / adds : 0.0);
    report.Set("amortized_remove_ms",
               removes > 0 ? 1e3 * remove_seconds / removes : 0.0);
    report.Set("compact_seconds", compact_seconds);
    report.Set("compacted_shards", compacted_shards.value());
    report.Set("rebuild_seconds", rebuilt.value().build_seconds());
    JsonValue latency = JsonValue::Object();
    latency.Set("before_updates_ms", 1e3 * cost_before.mean_seconds);
    latency.Set("after_updates_ms", 1e3 * cost_after.mean_seconds);
    latency.Set("tombstoned_ms", 1e3 * cost_tombstoned.mean_seconds);
    latency.Set("compacted_ms", 1e3 * cost_compacted.mean_seconds);
    latency.Set("rebuilt_ms", 1e3 * cost_rebuilt.mean_seconds);
    report.Set("query_latency", std::move(latency));
    JsonValue candidates = JsonValue::Object();
    candidates.Set("tombstoned", cost_tombstoned.mean_candidates);
    candidates.Set("compacted", cost_compacted.mean_candidates);
    candidates.Set("rebuilt", cost_rebuilt.mean_candidates);
    report.Set("mean_candidates", std::move(candidates));
    report.Set("index_bytes_tombstoned",
               static_cast<uint64_t>(bytes_tombstoned));
    report.Set("index_bytes_compacted",
               static_cast<uint64_t>(bytes_compacted));
    Status written = WriteJsonFile(json_out, report);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_out.c_str());
  }
  return 0;
}
