// Incremental-update economics: amortized AddGraph/RemoveGraph cost and
// query latency before and after N interleaved updates against a sharded
// index, compared with the cost of rebuilding from scratch at the final
// state. The interesting ratio is (N * amortized add) vs (one rebuild): as
// long as it stays well below 1 the incremental path wins for live traffic;
// query latency after updates quantifies the tombstone overhead a periodic
// compaction rebuild would reclaim.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/sharded_pis.h"
#include "index/sharded_index.h"
#include "util/random.h"
#include "util/timer.h"

using namespace pis;
using namespace pis::bench;

namespace {

// Mean per-query Search latency (seconds) over the query set.
double MeanQuerySeconds(const ShardedPisEngine& engine,
                        const std::vector<Graph>& queries) {
  Timer timer;
  for (const Graph& q : queries) {
    auto result = engine.Search(q);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
    }
  }
  return timer.Seconds() / static_cast<double>(queries.size());
}

}  // namespace

int main(int argc, char** argv) {
  WorkloadConfig config;
  int query_edges = 12;
  int updates = 200;
  int shards = 4;
  double sigma = 2.0;
  FlagSet flags;
  config.Register(&flags);
  flags.AddInt("query_edges", &query_edges, "query size (edges)");
  flags.AddInt("updates", &updates, "interleaved add/remove operations");
  flags.AddInt("shards", &shards, "shard count of the mutated index");
  flags.AddDouble("sigma", &sigma, "max superimposed distance");
  Status st = flags.Parse(argc, argv);
  if (st.code() == StatusCode::kAlreadyExists) return 0;  // --help
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // The pool holds the initial database plus every graph the update phase
  // will add; features are mined over the initial snapshot only (the
  // AddGraph contract: the class catalog is fixed at build time).
  const int num_adds = (updates + 1) / 2;
  WorkloadConfig pool_config = config;
  pool_config.db_size = config.db_size + num_adds;
  GraphDatabase pool = MakeDatabase(pool_config);
  GraphDatabase db;
  for (int i = 0; i < config.db_size; ++i) db.Add(pool.at(i));
  auto features = MineFeatures(db, config);
  if (!features.ok()) {
    std::fprintf(stderr, "%s\n", features.status().ToString().c_str());
    return 1;
  }

  FragmentIndexOptions index_options;
  index_options.min_fragment_edges = config.min_fragment_edges;
  index_options.max_fragment_edges = config.max_fragment_edges;
  index_options.spec = DistanceSpec::EdgeMutation();
  index_options.num_threads =
      config.threads <= 0 ? HardwareThreads() : config.threads;

  auto index =
      ShardedFragmentIndex::Build(db, features.value(), index_options, shards);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  const double initial_build = index.value().build_seconds();

  auto sampled = SampleQueries(db, query_edges, config);
  if (!sampled.ok() || sampled.value().empty()) {
    std::fprintf(stderr, "query sampling failed\n");
    return 1;
  }
  const std::vector<Graph>& queries = sampled.value();

  PisOptions options;
  options.sigma = sigma;
  ShardedPisEngine engine(&db, &index.value(), options);
  const double latency_before = MeanQuerySeconds(engine, queries);

  // Interleave adds (from the pool tail) and removes (random live id).
  Rng rng(config.db_seed + 1);
  std::vector<int> live_ids(db.size());
  for (int i = 0; i < db.size(); ++i) live_ids[i] = i;
  int next_pool = config.db_size;
  int adds = 0;
  int removes = 0;
  double add_seconds = 0;
  double remove_seconds = 0;
  for (int op = 0; op < updates; ++op) {
    const bool do_add = (op % 2 == 0) ? next_pool < pool.size()
                                      : live_ids.size() <= 1;
    if (do_add && next_pool < pool.size()) {
      const Graph& g = pool.at(next_pool++);
      Timer timer;
      auto gid = index.value().AddGraph(g);
      add_seconds += timer.Seconds();
      if (!gid.ok()) {
        std::fprintf(stderr, "%s\n", gid.status().ToString().c_str());
        return 1;
      }
      db.Add(g);
      live_ids.push_back(gid.value());
      ++adds;
    } else {
      const size_t slot = rng.UniformIndex(live_ids.size());
      Timer timer;
      Status removed = index.value().RemoveGraph(live_ids[slot]);
      remove_seconds += timer.Seconds();
      if (!removed.ok()) {
        std::fprintf(stderr, "%s\n", removed.ToString().c_str());
        return 1;
      }
      live_ids[slot] = live_ids.back();
      live_ids.pop_back();
      ++removes;
    }
  }
  const double latency_after = MeanQuerySeconds(engine, queries);

  // Full rebuild at the final state: compact the live graphs and build a
  // fresh sharded index — what a non-incremental system pays per batch of
  // updates (and what a periodic compaction costs here).
  GraphDatabase compacted;
  {
    std::vector<int> sorted = live_ids;
    std::sort(sorted.begin(), sorted.end());
    for (int gid : sorted) compacted.Add(db.at(gid));
  }
  auto rebuilt = ShardedFragmentIndex::Build(compacted, features.value(),
                                             index_options, shards);
  if (!rebuilt.ok()) {
    std::fprintf(stderr, "%s\n", rebuilt.status().ToString().c_str());
    return 1;
  }
  ShardedPisEngine rebuilt_engine(&compacted, &rebuilt.value(), options);
  const double latency_rebuilt = MeanQuerySeconds(rebuilt_engine, queries);

  std::printf("bench_update: %d initial graphs, %d shards, %d queries/set\n",
              config.db_size, shards, static_cast<int>(queries.size()));
  std::printf("updates applied: %d adds, %d removes (%d live of %d slots)\n",
              adds, removes, index.value().num_live(),
              index.value().db_size());
  std::printf("\n%-38s %12s\n", "metric", "value");
  std::printf("%-38s %9.3f s\n", "initial sharded build", initial_build);
  std::printf("%-38s %9.3f ms\n", "amortized AddGraph",
              adds > 0 ? 1e3 * add_seconds / adds : 0.0);
  std::printf("%-38s %9.3f ms\n", "amortized RemoveGraph",
              removes > 0 ? 1e3 * remove_seconds / removes : 0.0);
  std::printf("%-38s %9.3f s\n", "full rebuild at final state",
              rebuilt.value().build_seconds());
  std::printf("%-38s %9.3f ms\n", "query latency before updates",
              1e3 * latency_before);
  std::printf("%-38s %9.3f ms\n", "query latency after updates",
              1e3 * latency_after);
  std::printf("%-38s %9.3f ms\n", "query latency after rebuild",
              1e3 * latency_rebuilt);
  if (adds > 0 && rebuilt.value().build_seconds() > 0) {
    std::printf("%-38s %9.2fx\n", "adds per rebuild-equivalent cost",
                rebuilt.value().build_seconds() / (add_seconds / adds));
  }
  return 0;
}
