// Ablation: verification strategy. PIS verifies candidates with a
// cost-bounded branch-and-bound superposition search (DESIGN.md §3); the
// naive alternative enumerates every embedding with VF2 and scores each.
// This bench quantifies the speedup and the search-tree size difference.
#include <cstdio>

#include "bench_common.h"
#include "distance/superimposed.h"
#include "isomorphism/cost_search.h"
#include "util/timer.h"

using namespace pis;
using namespace pis::bench;

int main(int argc, char** argv) {
  WorkloadConfig config;
  config.db_size = 300;
  int query_edges = 16;
  double sigma = 2.0;
  std::string json_out;
  FlagSet flags;
  config.Register(&flags);
  flags.AddInt("query_edges", &query_edges, "query size (edges)");
  flags.AddDouble("sigma", &sigma, "distance threshold");
  flags.AddString("json_out", &json_out,
                  "write machine-readable results to this JSON file");
  Status st = flags.Parse(argc, argv);
  if (st.code() == StatusCode::kAlreadyExists) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  GraphDatabase db = MakeDatabase(config);
  auto queries = SampleQueries(db, query_edges, config);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }
  MutationCostModel model = EdgeMutationModel();

  double bounded_seconds = 0;
  double unbounded_seconds = 0;
  double brute_seconds = 0;
  size_t bounded_nodes = 0;
  size_t unbounded_nodes = 0;
  size_t disagreements = 0;
  size_t pairs = 0;
  for (const Graph& query : queries.value()) {
    for (int gid = 0; gid < db.size(); gid += 7) {  // sample the database
      ++pairs;
      Timer t1;
      CostSearchResult bounded = MinCostEmbedding(query, db.at(gid), model, sigma);
      bounded_seconds += t1.Seconds();
      bounded_nodes += bounded.nodes_expanded;

      Timer t2;
      CostSearchResult unbounded =
          MinCostEmbedding(query, db.at(gid), model, kInfiniteDistance);
      unbounded_seconds += t2.Seconds();
      unbounded_nodes += unbounded.nodes_expanded;

      Timer t3;
      double brute = MinSuperimposedDistanceBruteForce(query, db.at(gid), model);
      brute_seconds += t3.Seconds();

      bool within = bounded.distance <= sigma;
      bool brute_within = brute <= sigma;
      if (within != brute_within) ++disagreements;
      if (within && bounded.distance != brute) ++disagreements;
    }
  }

  std::printf("=== Ablation: verification strategy (Q%d, sigma=%g, %zu pairs) ===\n",
              query_edges, sigma, pairs);
  std::printf("%-28s %14s %16s\n", "verifier", "total time", "nodes/embeddings");
  std::printf("%-28s %11.1f ms %16zu\n", "bounded branch-and-bound",
              bounded_seconds * 1e3, bounded_nodes);
  std::printf("%-28s %11.1f ms %16zu\n", "unbounded branch-and-bound",
              unbounded_seconds * 1e3, unbounded_nodes);
  std::printf("%-28s %11.1f ms %16s\n", "VF2 enumerate-then-score",
              brute_seconds * 1e3, "-");
  std::printf("agreement with oracle: %s (%zu disagreements)\n",
              disagreements == 0 ? "exact" : "BROKEN", disagreements);
  std::printf("speedup bounded vs enumerate: %.1fx\n",
              brute_seconds / std::max(1e-9, bounded_seconds));
  if (!json_out.empty()) {
    JsonValue report = JsonValue::Object();
    report.Set("bench", "ablation_verify");
    JsonValue cfg = JsonValue::Object();
    cfg.Set("db_size", config.db_size);
    cfg.Set("query_edges", query_edges);
    cfg.Set("sigma", sigma);
    cfg.Set("pairs", static_cast<uint64_t>(pairs));
    report.Set("config", std::move(cfg));
    report.Set("bounded_ms", bounded_seconds * 1e3);
    report.Set("bounded_nodes", static_cast<uint64_t>(bounded_nodes));
    report.Set("unbounded_ms", unbounded_seconds * 1e3);
    report.Set("unbounded_nodes", static_cast<uint64_t>(unbounded_nodes));
    report.Set("enumerate_ms", brute_seconds * 1e3);
    report.Set("speedup_bounded_vs_enumerate",
               brute_seconds / std::max(1e-9, bounded_seconds));
    report.Set("disagreements", static_cast<uint64_t>(disagreements));
    report.Set("ok", disagreements == 0);
    Status written = WriteJsonFile(json_out, report);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_out.c_str());
  }
  return disagreements == 0 ? 0 : 1;
}
