// Figure 9: "Reduction: PIS over topoPrune" — candidate reduction ratio
// Yt/Yp per Yt bucket for 16-edge queries, σ = 1, 2, 4.
#include "bench_common.h"

int main(int argc, char** argv) {
  return pis::bench::ReductionFigureMain(
      argc, argv, "fig09_reduction_q16", "Figure 9: reduction ratio Yt/Yp",
      /*default_query_edges=*/16, {1.0, 2.0, 4.0});
}
