// bench_server: query latency percentiles of the serving subsystem under a
// mixed read / write / compact workload.
//
//   bench_server [--db_size N] [--shards S] [--readers R] [--seconds T]
//                [--write_every_ms W] [--compact_dead_ratio D] [--sigma SG]
//                [--json_out results.json]
//
// Drives an in-process EngineHost (the same object pis_server fronts) in
// three phases:
//
//   1. read-only        — R reader threads, no writers (the baseline);
//   2. mixed            — readers plus one writer alternating AddGraph /
//                         RemoveGraph every W ms, with the background
//                         dead-ratio compactor running;
//   3. forced compact   — readers keep running while a dedicated thread
//                         runs a full Compact() + Rebalance(); latencies
//                         landing inside that window are reported
//                         separately.
//
// The headline check (the PR's acceptance criterion): queries keep being
// answered — with a reported p99 — while compaction runs. The process
// exits 1 if the compaction window saw no completed queries.
//
// --json_out writes the same numbers as one machine-readable JSON object
// (per-phase latency percentiles, writer/compaction counters, final host
// stats) so CI and trend tooling can consume a run without scraping stdout.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "server/engine_host.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/timer.h"

using namespace pis;
using namespace pis::bench;

namespace {

using Clock = std::chrono::steady_clock;

struct Sample {
  double millis = 0;
  Clock::time_point done;
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const size_t idx = static_cast<size_t>(p * (values.size() - 1) + 0.5);
  return values[std::min(idx, values.size() - 1)];
}

void PrintLatencies(const char* label, const std::vector<double>& millis,
                    double seconds) {
  std::printf(
      "%-16s %7zu queries  %8.1f qps   p50 %7.3f ms   p95 %7.3f ms   "
      "p99 %7.3f ms\n",
      label, millis.size(), seconds > 0 ? millis.size() / seconds : 0.0,
      Percentile(millis, 0.50), Percentile(millis, 0.95),
      Percentile(millis, 0.99));
}

/// The same numbers PrintLatencies reports, as a JSON object.
JsonValue LatencyJson(const std::vector<double>& millis, double seconds) {
  JsonValue v = JsonValue::Object();
  v.Set("queries", static_cast<uint64_t>(millis.size()));
  v.Set("qps", seconds > 0 ? millis.size() / seconds : 0.0);
  v.Set("p50_ms", Percentile(millis, 0.50));
  v.Set("p95_ms", Percentile(millis, 0.95));
  v.Set("p99_ms", Percentile(millis, 0.99));
  return v;
}

/// Runs `readers` threads querying the host until stopped; collects one
/// Sample per completed query.
class ReaderPool {
 public:
  ReaderPool(const EngineHost& host, const std::vector<Graph>& queries,
             int readers)
      : host_(host), queries_(queries), samples_(readers) {
    threads_.reserve(readers);
    for (int r = 0; r < readers; ++r) {
      threads_.emplace_back([this, r] { Loop(r); });
    }
  }

  std::vector<Sample> StopAndCollect() {
    stop_.store(true);
    for (std::thread& t : threads_) t.join();
    std::vector<Sample> all;
    for (const std::vector<Sample>& s : samples_) {
      all.insert(all.end(), s.begin(), s.end());
    }
    return all;
  }

  size_t failed() const { return failed_.load(); }

 private:
  void Loop(int reader) {
    size_t qi = static_cast<size_t>(reader);
    while (!stop_.load(std::memory_order_relaxed)) {
      const Graph& query = queries_[qi++ % queries_.size()];
      Timer timer;
      Result<SearchResult> result = host_.Search(query);
      if (result.ok()) {
        samples_[reader].push_back({timer.Millis(), Clock::now()});
      } else {
        ++failed_;
      }
    }
  }

  const EngineHost& host_;
  const std::vector<Graph>& queries_;
  std::vector<std::vector<Sample>> samples_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  std::atomic<size_t> failed_{0};
};

std::vector<double> MillisIn(const std::vector<Sample>& samples,
                             Clock::time_point begin, Clock::time_point end) {
  std::vector<double> out;
  for (const Sample& s : samples) {
    if (s.done >= begin && s.done <= end) out.push_back(s.millis);
  }
  return out;
}

std::vector<double> AllMillis(const std::vector<Sample>& samples) {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const Sample& s : samples) out.push_back(s.millis);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  WorkloadConfig config;
  config.db_size = 600;
  config.feature_min_support = 0.05;
  config.max_fragment_edges = 4;
  int shards = 4;
  int readers = 4;
  double seconds = 2.0;
  int write_every_ms = 20;
  // Low enough that the default run's removals cross it per shard, so the
  // mixed phase visibly exercises the background compactor.
  double compact_dead_ratio = 0.04;
  double sigma = 2.0;
  int query_edges = 10;
  std::string json_out;

  FlagSet flags;
  config.Register(&flags);
  flags.AddInt("shards", &shards, "index shard count");
  flags.AddInt("readers", &readers, "concurrent reader threads");
  flags.AddDouble("seconds", &seconds, "duration of each phase");
  flags.AddInt("write_every_ms", &write_every_ms,
               "writer cadence in the mixed phase");
  flags.AddDouble("compact_dead_ratio", &compact_dead_ratio,
                  "background compaction threshold (mixed phase)");
  flags.AddDouble("sigma", &sigma, "query distance threshold");
  flags.AddInt("query_edges", &query_edges, "edges per sampled query");
  flags.AddString("json_out", &json_out,
                  "write machine-readable results to this JSON file");
  PIS_CHECK(flags.Parse(argc, argv).ok());

  std::printf("bench_server: db=%d shards=%d readers=%d phase=%.1fs\n",
              config.db_size, shards, readers, seconds);

  GraphDatabase db = MakeDatabase(config);
  auto features = MineFeatures(db, config);
  PIS_CHECK(features.ok());
  FragmentIndexOptions iopt;
  iopt.min_fragment_edges = config.min_fragment_edges;
  iopt.max_fragment_edges = config.max_fragment_edges;
  iopt.spec = DistanceSpec::EdgeMutation();
  iopt.num_threads = config.threads <= 0 ? HardwareThreads() : config.threads;
  auto index = ShardedFragmentIndex::Build(db, features.value(), iopt, shards);
  PIS_CHECK(index.ok()) << index.status().ToString();
  auto queries = SampleQueries(db, query_edges, config);
  PIS_CHECK(queries.ok());

  // Writer fodder: fresh graphs to add, drawn from the same generator.
  MoleculeGeneratorOptions gen_opt;
  gen_opt.seed = config.db_seed + 1;
  MoleculeGenerator gen(gen_opt);
  GraphDatabase fresh = gen.Generate(2000);

  PisOptions options;
  options.sigma = sigma;
  options.compact_dead_ratio = compact_dead_ratio;
  EngineHost host(std::move(db), index.MoveValue(), options);

  const auto phase_len = std::chrono::duration<double>(seconds);

  JsonValue report = JsonValue::Object();
  report.Set("bench", "bench_server");
  {
    JsonValue cfg = JsonValue::Object();
    cfg.Set("db_size", config.db_size);
    cfg.Set("shards", shards);
    cfg.Set("readers", readers);
    cfg.Set("seconds", seconds);
    cfg.Set("write_every_ms", write_every_ms);
    cfg.Set("compact_dead_ratio", compact_dead_ratio);
    cfg.Set("sigma", sigma);
    cfg.Set("query_edges", query_edges);
    report.Set("config", std::move(cfg));
  }
  JsonValue phases = JsonValue::Object();

  // ---- Phase 1: read-only baseline.
  {
    Timer timer;
    ReaderPool pool(host, queries.value(), readers);
    std::this_thread::sleep_for(phase_len);
    std::vector<Sample> samples = pool.StopAndCollect();
    const std::vector<double> millis = AllMillis(samples);
    PrintLatencies("read-only", millis, timer.Seconds());
    phases.Set("read_only", LatencyJson(millis, timer.Seconds()));
  }

  // ---- Phase 2: mixed read/write with the background compactor on.
  {
    PIS_CHECK(host.StartAutoCompaction(std::chrono::milliseconds(200)).ok());
    Timer timer;
    ReaderPool pool(host, queries.value(), readers);
    std::atomic<bool> stop_writer{false};
    size_t writes = 0;
    std::thread writer([&] {
      size_t next_fresh = 0;
      int next_remove = 0;
      bool add = true;
      while (!stop_writer.load()) {
        if (add) {
          PIS_CHECK(host.AddGraph(fresh.at(next_fresh++ % fresh.size())).ok());
        } else {
          // Ids are immortal; marching upward never repeats a victim.
          (void)host.RemoveGraph(next_remove++);
        }
        add = !add;
        ++writes;
        std::this_thread::sleep_for(std::chrono::milliseconds(write_every_ms));
      }
    });
    std::this_thread::sleep_for(phase_len);
    stop_writer.store(true);
    writer.join();
    std::vector<Sample> samples = pool.StopAndCollect();
    const std::vector<double> millis = AllMillis(samples);
    PrintLatencies("mixed r/w", millis, timer.Seconds());
    std::printf(
        "                 %zu writes, %llu background compaction(s)\n",
        writes,
        static_cast<unsigned long long>(host.background_compactions()));
    host.StopAutoCompaction();
    JsonValue mixed = LatencyJson(millis, timer.Seconds());
    mixed.Set("writes", static_cast<uint64_t>(writes));
    mixed.Set("background_compactions", host.background_compactions());
    phases.Set("mixed", std::move(mixed));
  }

  // ---- Phase 3: full compaction + rebalance while readers hammer.
  size_t during_compaction = 0;
  {
    // Tombstone enough graphs that every shard has work to rewrite.
    EngineHost::HostStats before = host.Stats();
    for (int gid = before.db_slots - 1, removed = 0;
         gid >= 0 && removed < before.live / 5; --gid) {
      if (host.RemoveGraph(gid).ok()) ++removed;
    }
    Timer timer;
    ReaderPool pool(host, queries.value(), readers);
    // Let readers reach steady state before the window opens. The readers
    // supply the concurrency; the compaction itself runs right here and
    // its wall-clock span is the measurement window.
    std::this_thread::sleep_for(phase_len / 4);
    const Clock::time_point window_begin = Clock::now();
    auto compacted = host.Compact(0.0);
    PIS_CHECK(compacted.ok()) << compacted.status().ToString();
    auto migrated = host.Rebalance();
    PIS_CHECK(migrated.ok()) << migrated.status().ToString();
    const Clock::time_point window_end = Clock::now();
    std::printf(
        "                 compacted %d shard(s), migrated %d graph(s) in "
        "%.1f ms\n",
        compacted.value(), migrated.value(),
        std::chrono::duration<double>(window_end - window_begin).count() *
            1e3);
    std::this_thread::sleep_for(phase_len / 4);
    std::vector<Sample> samples = pool.StopAndCollect();
    const std::vector<double> millis = AllMillis(samples);
    PrintLatencies("around compact", millis, timer.Seconds());
    std::vector<double> inside = MillisIn(samples, window_begin, window_end);
    during_compaction = inside.size();
    const double window_seconds =
        std::chrono::duration<double>(window_end - window_begin).count();
    PrintLatencies("  in window", inside, window_seconds);
    PIS_CHECK(pool.failed() == 0) << "queries failed during compaction";
    phases.Set("around_compact", LatencyJson(millis, timer.Seconds()));
    JsonValue window = LatencyJson(inside, window_seconds);
    window.Set("window_ms", window_seconds * 1e3);
    window.Set("compacted_shards", compacted.value());
    window.Set("migrated_graphs", migrated.value());
    phases.Set("compact_window", std::move(window));
  }

  EngineHost::HostStats final_stats = host.Stats();
  std::printf("final: %d live / %d slots, compaction epoch %d\n",
              final_stats.live, final_stats.db_slots,
              final_stats.compaction_epoch);

  const bool ok = during_compaction > 0;
  report.Set("phases", std::move(phases));
  {
    JsonValue final_json = JsonValue::Object();
    final_json.Set("live", final_stats.live);
    final_json.Set("db_slots", final_stats.db_slots);
    final_json.Set("compaction_epoch", final_stats.compaction_epoch);
    final_json.Set("group_commit_batches", final_stats.group_commit_batches);
    final_json.Set("group_commit_ops", final_stats.group_commit_ops);
    final_json.Set("group_commit_batch_size",
                   final_stats.group_commit_max_batch);
    report.Set("final", std::move(final_json));
  }
  report.Set("ok", ok);
  if (!json_out.empty()) {
    Status written = WriteJsonFile(json_out, report);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_out.c_str());
  }

  if (!ok) {
    std::printf(
        "FAIL: no queries completed inside the compaction window (window too "
        "short? raise --db_size)\n");
    return 1;
  }
  std::printf(
      "OK: %zu queries answered while the background compaction ran\n",
      during_compaction);
  return 0;
}
