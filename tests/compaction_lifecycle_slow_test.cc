// Long-horizon randomized index-lifecycle differential suite (the
// nightly-style `ctest -L slow` gate). Same oracle as compaction_test.cc —
// after every add / remove / compact / rebalance / save-load step, both
// incremental engines must answer exactly like a from-scratch rebuild over
// the live graphs — but run over more seeds, more steps, and a larger graph
// pool, so rare interleavings (compact-after-rebalance-after-reload,
// multiple compactions of the same shard, remove-to-empty then regrow) get
// real coverage instead of a lucky dice roll.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "engine_test_util.h"

namespace pis {
namespace {

using ::pis::testing::LifecycleHarness;

class CompactionLifecycleSlowTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CompactionLifecycleSlowTest, LongRandomScheduleMatchesRebuild) {
  LifecycleHarness::Options opt;
  opt.num_shards = std::get<0>(GetParam());
  opt.seed = 9000 + std::get<1>(GetParam());
  opt.initial_graphs = 14;
  opt.pool_graphs = 40;
  LifecycleHarness h(opt);
  if (::testing::Test::HasFatalFailure()) return;

  h.CheckAgainstRebuild();
  constexpr int kSteps = 28;
  for (int step = 0; step < kSteps; ++step) {
    const int roll = h.rng().UniformInt(0, 9);
    if ((roll < 4 || h.live_count() <= 2) && h.CanAdd()) {
      h.AddOne();
    } else if (roll < 6 && h.live_count() > 0) {
      h.RemoveOne();
    } else if (roll == 6) {
      h.CompactShard(h.rng().UniformInt(0, h.sharded().num_shards() - 1));
      h.CompactFlat();
    } else if (roll == 7) {
      h.CompactAll();
    } else if (roll == 8) {
      h.Rebalance();
    } else {
      h.SaveLoadRoundTrip("slow_step" + std::to_string(step));
    }
    if (::testing::Test::HasFatalFailure()) return;
    h.CheckAgainstRebuild();
    if (::testing::Test::HasFatalFailure()) return;
  }
  h.CompactAll();
  h.SaveLoadRoundTrip("slow_final");
  if (::testing::Test::HasFatalFailure()) return;
  h.CheckAgainstRebuild();
}

INSTANTIATE_TEST_SUITE_P(ShardsBySeeds, CompactionLifecycleSlowTest,
                         ::testing::Combine(::testing::Values(1, 3, 8),
                                            ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace pis
