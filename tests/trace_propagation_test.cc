// End-to-end trace propagation through the cluster fabric: a traced query
// driven through a real ClusterEngine over loopback PisServers must come
// back with the two-round span tree — one shard_query round-trip span per
// endpoint group carrying the REPLICA's own child spans (decoded from the
// wire), the merge and global-filter stages, and one shard_verify span per
// owning shard. The harness runs shard_threads == 1, so sibling spans are
// sequential and their durations sum to at most the trace total.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine_test_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/cluster_engine.h"

namespace pis {
namespace {

using pis::testing::ClusterHarness;

bool HasPrefix(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

double SumDurations(const std::vector<TraceSpan>& spans) {
  double total = 0;
  for (const TraceSpan& s : spans) total += s.dur_ms;
  return total;
}

TEST(TracePropagationTest, RouterSpanTreeCarriesPerShardChildSpans) {
  ClusterHarness::Options opt;
  opt.num_shards = 3;
  opt.num_groups = 2;
  opt.sketch = true;  // remote spans must include the sketch probe
  ClusterHarness h(opt);
  if (::testing::Test::HasFatalFailure()) return;

  // Query an initial database graph: its distance to itself is 0, so the
  // two-round pipeline is guaranteed to produce candidates and run verify.
  TraceContext ctx(TraceContext::NextId("test"));
  auto result = h.cluster().Search(h.initial_graph(0), h.sigma(), &ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result.value().answers.empty());

  const double total_ms = ctx.ElapsedMs();
  std::vector<TraceSpan> spans = ctx.TakeSpans();
  ASSERT_FALSE(spans.empty());

  int shard_queries = 0;
  int shard_verifies = 0;
  int merges = 0;
  int filters = 0;
  for (const TraceSpan& span : spans) {
    if (HasPrefix(span.name, "shard_query:")) {
      ++shard_queries;
      EXPECT_GT(span.dur_ms, 0) << span.name;
      // The replica's own spans came back over the wire and were grafted
      // as children of the round trip: fragment enumeration plus one
      // range-query span per requested shard, plus the sketch probe.
      ASSERT_FALSE(span.children.empty()) << span.name;
      int enumerates = 0;
      int range_spans = 0;
      int sketches = 0;
      for (const TraceSpan& child : span.children) {
        EXPECT_GT(child.dur_ms, 0) << child.name;
        if (child.name == "enumerate") ++enumerates;
        if (HasPrefix(child.name, "range_queries:shard")) ++range_spans;
        if (child.name == "sketch_probe") ++sketches;
      }
      EXPECT_EQ(enumerates, 1) << span.name;
      EXPECT_GE(range_spans, 1) << span.name;
      EXPECT_EQ(sketches, 1) << span.name;
      // Remote child time fits inside the round trip (network included).
      EXPECT_LE(SumDurations(span.children), span.dur_ms * 1.0001)
          << span.name;
    } else if (HasPrefix(span.name, "shard_verify:")) {
      ++shard_verifies;
      EXPECT_GT(span.dur_ms, 0) << span.name;
      EXPECT_LE(SumDurations(span.children), span.dur_ms * 1.0001)
          << span.name;
    } else if (span.name == "merge") {
      ++merges;
    } else if (span.name == "filter") {
      ++filters;
      // The global filter span carries the shared-core stage children.
      ASSERT_FALSE(span.children.empty());
      int pass1 = 0;
      for (const TraceSpan& child : span.children) {
        if (child.name == "pass1") ++pass1;
      }
      EXPECT_EQ(pass1, 1);
    }
  }
  // Round 1 fans over every endpoint group of the healthy cover.
  EXPECT_EQ(shard_queries, 2);
  // Round 2 groups candidates per owning shard; the self-match query
  // guarantees at least one shard had candidates to verify.
  EXPECT_GE(shard_verifies, 1);
  EXPECT_EQ(merges, 1);
  EXPECT_EQ(filters, 1);
  // shard_threads == 1: everything ran sequentially inside the context, so
  // the recorded spans cannot out-sum the wall clock.
  EXPECT_LE(SumDurations(spans), total_ms * 1.0001);
}

TEST(TracePropagationTest, UntracedSearchRecordsNothing) {
  ClusterHarness::Options opt;
  opt.num_shards = 2;
  opt.num_groups = 1;
  ClusterHarness h(opt);
  if (::testing::Test::HasFatalFailure()) return;
  auto q = h.SampleQuery(5);
  ASSERT_TRUE(q.ok());
  auto traced = h.cluster().Search(q.value(), h.sigma(), nullptr);
  auto plain = h.cluster().Search(q.value(), h.sigma());
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ(traced.value().answers, plain.value().answers);
}

TEST(TracePropagationTest, TracedAndUntracedAnswersMatch) {
  ClusterHarness::Options opt;
  opt.num_shards = 3;
  opt.num_groups = 2;
  ClusterHarness h(opt);
  if (::testing::Test::HasFatalFailure()) return;
  for (int i = 0; i < 3; ++i) {
    auto q = h.SampleQuery(5 + i);
    ASSERT_TRUE(q.ok());
    TraceContext ctx(TraceContext::NextId("eq"));
    auto traced = h.cluster().Search(q.value(), h.sigma(), &ctx);
    auto plain = h.cluster().Search(q.value(), h.sigma());
    ASSERT_TRUE(traced.ok()) << traced.status().ToString();
    ASSERT_TRUE(plain.ok()) << plain.status().ToString();
    EXPECT_EQ(traced.value().answers, plain.value().answers);
    EXPECT_EQ(traced.value().stats.candidates_final,
              plain.value().stats.candidates_final);
  }
}

}  // namespace
}  // namespace pis
