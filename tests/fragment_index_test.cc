#include "index/fragment_index.h"

#include <gtest/gtest.h>

#include <map>

#include "distance/superimposed.h"
#include "graph/generator.h"
#include "graph/query_sampler.h"
#include "index/fragment_enum.h"
#include "util/random.h"

namespace pis {
namespace {

Graph Cycle(int n, Label elabel = 1) {
  Graph g;
  for (int i = 0; i < n; ++i) g.AddVertex(1);
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(g.AddEdge(i, (i + 1) % n, elabel).ok());
  }
  return g;
}

Graph PathGraph(int edges, Label elabel = 1) {
  Graph g;
  g.AddVertex(1);
  for (int i = 0; i < edges; ++i) {
    g.AddVertex(1);
    EXPECT_TRUE(g.AddEdge(i, i + 1, elabel).ok());
  }
  return g;
}

// Skeleton feature set: paths of 1..k edges plus cycles 5,6.
std::vector<Graph> BasicFeatures(int max_path_edges) {
  std::vector<Graph> features;
  for (int k = 1; k <= max_path_edges; ++k) {
    features.push_back(PathGraph(k).Skeleton());
  }
  features.push_back(Cycle(5).Skeleton());
  features.push_back(Cycle(6).Skeleton());
  return features;
}

// Oracle for d(g, G): min over all same-skeleton fragments of G of the
// isomorphic mutation distance, computed by exhaustive enumeration.
double OracleFragmentDistance(const Graph& fragment, const Graph& target,
                              const SuperimposeCostModel& model) {
  return MinSuperimposedDistance(fragment, target, model);
}

TEST(FragmentIndexTest, BuildRegistersClasses) {
  GraphDatabase db;
  db.Add(Cycle(6));
  db.Add(PathGraph(4));
  FragmentIndexOptions options;
  options.max_fragment_edges = 6;
  auto index = FragmentIndex::Build(db, BasicFeatures(4), options);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ(index.value().num_classes(), 6);  // 4 paths + 2 cycles
  EXPECT_GT(index.value().stats().num_sequences_inserted, 0u);
}

TEST(FragmentIndexTest, PrepareRejectsUnindexedSkeleton) {
  GraphDatabase db;
  db.Add(Cycle(6));
  FragmentIndexOptions options;
  auto index = FragmentIndex::Build(db, {PathGraph(1).Skeleton()}, options);
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE(index.value().HasClass(PathGraph(1)));
  EXPECT_FALSE(index.value().HasClass(Cycle(3)));
  EXPECT_EQ(index.value().Prepare(Cycle(3)).status().code(),
            StatusCode::kNotFound);
}

TEST(FragmentIndexTest, RangeQueryFindsExactFragment) {
  GraphDatabase db;
  Graph g = Cycle(6, 1);
  g.SetEdgeLabel(0, 2);
  db.Add(g);            // ring with one double bond
  db.Add(Cycle(6, 1));  // plain ring
  FragmentIndexOptions options;
  options.max_fragment_edges = 6;
  auto index = FragmentIndex::Build(db, BasicFeatures(3), options);
  ASSERT_TRUE(index.ok());

  Graph query_ring = Cycle(6, 1);
  std::map<int, double> hits;
  ASSERT_TRUE(index.value()
                  .RangeQuery(query_ring, 0.0,
                              [&](int gid, double d) {
                                auto [it, ok] = hits.emplace(gid, d);
                                if (!ok) it->second = std::min(it->second, d);
                              })
                  .ok());
  // Only graph 1 contains the all-single ring at distance 0.
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits.count(1), 1u);

  hits.clear();
  ASSERT_TRUE(index.value()
                  .RangeQuery(query_ring, 1.0,
                              [&](int gid, double d) {
                                auto [it, ok] = hits.emplace(gid, d);
                                if (!ok) it->second = std::min(it->second, d);
                              })
                  .ok());
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_DOUBLE_EQ(hits[0], 1.0);
  EXPECT_DOUBLE_EQ(hits[1], 0.0);
}

TEST(FragmentIndexTest, AutomorphismInsertionGivesExactMinimum) {
  // A ring labeled [2,1,1,1,1,1] vs query ring [1,1,2,1,1,1]: rotations
  // align them at distance 0; without automorphism-aware insertion the trie
  // would report 2.
  GraphDatabase db;
  Graph g = Cycle(6, 1);
  g.SetEdgeLabel(0, 2);
  db.Add(g);
  FragmentIndexOptions options;
  options.max_fragment_edges = 6;
  auto index = FragmentIndex::Build(db, BasicFeatures(2), options);
  ASSERT_TRUE(index.ok());
  Graph query = Cycle(6, 1);
  query.SetEdgeLabel(2, 2);
  double best = -1;
  ASSERT_TRUE(index.value()
                  .RangeQuery(query, 6.0,
                              [&](int, double d) {
                                best = best < 0 ? d : std::min(best, d);
                              })
                  .ok());
  EXPECT_DOUBLE_EQ(best, 0.0);
}

TEST(FragmentIndexTest, LinearDistanceViaRTree) {
  GraphDatabase db;
  Graph a = PathGraph(2);
  a.SetEdgeWeight(0, 1.0);
  a.SetEdgeWeight(1, 2.0);
  db.Add(a);
  Graph b = PathGraph(2);
  b.SetEdgeWeight(0, 5.0);
  b.SetEdgeWeight(1, 5.0);
  db.Add(b);
  FragmentIndexOptions options;
  options.spec = DistanceSpec::EdgeLinear();
  options.max_fragment_edges = 2;
  auto index = FragmentIndex::Build(db, BasicFeatures(2), options);
  ASSERT_TRUE(index.ok());

  Graph query = PathGraph(2);
  query.SetEdgeWeight(0, 1.25);
  query.SetEdgeWeight(1, 2.0);
  std::map<int, double> hits;
  ASSERT_TRUE(index.value()
                  .RangeQuery(query, 0.5,
                              [&](int gid, double d) {
                                auto [it, ok] = hits.emplace(gid, d);
                                if (!ok) it->second = std::min(it->second, d);
                              })
                  .ok());
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NEAR(hits[0], 0.25, 1e-9);
}

TEST(FragmentIndexTest, VpTreeBackendAgreesWithTrie) {
  MoleculeGenerator gen;
  GraphDatabase db = gen.Generate(30);
  std::vector<Graph> features = BasicFeatures(4);
  FragmentIndexOptions trie_opts;
  trie_opts.max_fragment_edges = 4;
  auto trie_index = FragmentIndex::Build(db, features, trie_opts);
  ASSERT_TRUE(trie_index.ok());
  FragmentIndexOptions vp_opts = trie_opts;
  vp_opts.backend = ClassBackend::kVpTree;
  auto vp_index = FragmentIndex::Build(db, features, vp_opts);
  ASSERT_TRUE(vp_index.ok());

  Rng rng(3);
  QuerySampler sampler(&db, {.seed = 11, .strip_vertex_labels = true});
  for (int trial = 0; trial < 5; ++trial) {
    auto q = sampler.Sample(4);
    ASSERT_TRUE(q.ok());
    if (!trie_index.value().HasClass(q.value())) continue;
    for (double sigma : {0.0, 1.0, 2.0}) {
      std::map<int, double> trie_hits;
      std::map<int, double> vp_hits;
      auto collect = [](std::map<int, double>* out) {
        return [out](int gid, double d) {
          auto [it, ok] = out->emplace(gid, d);
          if (!ok) it->second = std::min(it->second, d);
        };
      };
      ASSERT_TRUE(
          trie_index.value().RangeQuery(q.value(), sigma, collect(&trie_hits)).ok());
      ASSERT_TRUE(
          vp_index.value().RangeQuery(q.value(), sigma, collect(&vp_hits)).ok());
      EXPECT_EQ(trie_hits, vp_hits) << "sigma=" << sigma;
    }
  }
}

// Property: index range-query distances equal the exact fragment
// superimposed distance (the identity behind Eq. 3), on molecule data.
class FragmentIndexOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(FragmentIndexOracleTest, RangeDistancesAreExact) {
  MoleculeGeneratorOptions gopt;
  gopt.seed = 500 + GetParam();
  gopt.mean_vertices = 14;
  gopt.max_vertices = 30;
  MoleculeGenerator gen(gopt);
  GraphDatabase db = gen.Generate(12);
  FragmentIndexOptions options;
  options.max_fragment_edges = 4;
  auto index = FragmentIndex::Build(db, BasicFeatures(4), options);
  ASSERT_TRUE(index.ok());

  auto model = options.spec.MakeCostModel();
  QuerySampler sampler(&db,
                       {.seed = 900 + static_cast<uint64_t>(GetParam()),
                        .strip_vertex_labels = false});
  const double sigma = 2.0;
  for (int trial = 0; trial < 4; ++trial) {
    auto fragment = sampler.Sample(3);
    ASSERT_TRUE(fragment.ok());
    if (!index.value().HasClass(fragment.value())) continue;
    std::map<int, double> hits;
    ASSERT_TRUE(index.value()
                    .RangeQuery(fragment.value(), sigma,
                                [&](int gid, double d) {
                                  auto [it, ok] = hits.emplace(gid, d);
                                  if (!ok) it->second = std::min(it->second, d);
                                })
                    .ok());
    for (int gid = 0; gid < db.size(); ++gid) {
      double exact = OracleFragmentDistance(fragment.value(), db.at(gid), *model);
      if (exact <= sigma) {
        ASSERT_EQ(hits.count(gid), 1u) << "gid " << gid << " missing";
        EXPECT_DOUBLE_EQ(hits[gid], exact);
      } else {
        EXPECT_EQ(hits.count(gid), 0u) << "gid " << gid << " spurious";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FragmentIndexOracleTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace pis
