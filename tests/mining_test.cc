#include "mining/gspan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "canonical/min_dfs.h"
#include "graph/generator.h"
#include "index/fragment_enum.h"
#include "isomorphism/vf2.h"
#include "mining/feature_selector.h"
#include "mining/path_features.h"
#include "util/random.h"

namespace pis {
namespace {

Graph Path(int edges, Label vlabel = 1, Label elabel = 1) {
  Graph g;
  g.AddVertex(vlabel);
  for (int i = 0; i < edges; ++i) {
    g.AddVertex(vlabel);
    EXPECT_TRUE(g.AddEdge(i, i + 1, elabel).ok());
  }
  return g;
}

Graph Cycle(int n, Label vlabel = 1, Label elabel = 1) {
  Graph g;
  for (int i = 0; i < n; ++i) g.AddVertex(vlabel);
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(g.AddEdge(i, (i + 1) % n, elabel).ok());
  }
  return g;
}

// Oracle: frequent patterns by exhaustive fragment enumeration +
// canonicalization.
std::map<std::string, std::set<int>> BruteForceFrequent(const GraphDatabase& db,
                                                        int max_edges) {
  std::map<std::string, std::set<int>> supports;
  for (int gid = 0; gid < db.size(); ++gid) {
    EnumerateConnectedEdgeSubgraphs(db.at(gid), {1, max_edges},
                                    [&](const std::vector<EdgeId>& subset) {
      Graph sub = db.at(gid).EdgeSubgraph(subset);
      CanonicalOptions opts;
      opts.first_embedding_only = true;
      auto form = MinDfsCode(sub, opts);
      EXPECT_TRUE(form.ok());
      supports[form.value().Key()].insert(gid);
      return true;
    });
  }
  return supports;
}

TEST(GspanTest, SingleGraphSingleEdge) {
  GraphDatabase db;
  db.Add(Path(1, 1, 5));
  GspanOptions options;
  options.min_support = 1;
  options.max_edges = 1;
  auto patterns = MineFrequentSubgraphs(db, options);
  ASSERT_TRUE(patterns.ok());
  ASSERT_EQ(patterns.value().size(), 1u);
  EXPECT_EQ(patterns.value()[0].support(), 1);
  EXPECT_EQ(patterns.value()[0].graph.NumEdges(), 1);
  EXPECT_EQ(patterns.value()[0].graph.GetEdge(0).label, 5);
}

TEST(GspanTest, SupportCountsGraphsNotEmbeddings) {
  GraphDatabase db;
  db.Add(Cycle(6));  // many embeddings of a 2-edge path
  db.Add(Path(2));
  GspanOptions options;
  options.min_support = 2;
  options.max_edges = 2;
  auto patterns = MineFrequentSubgraphs(db, options);
  ASSERT_TRUE(patterns.ok());
  // Frequent in both: single edge, 2-edge path.
  ASSERT_EQ(patterns.value().size(), 2u);
  for (const Pattern& p : patterns.value()) {
    EXPECT_EQ(p.support(), 2);
    EXPECT_EQ(p.support_set, (std::vector<int>{0, 1}));
  }
}

TEST(GspanTest, MinSupportFilters) {
  GraphDatabase db;
  db.Add(Cycle(3));
  db.Add(Cycle(3));
  db.Add(Path(3));
  GspanOptions options;
  options.min_support = 3;
  options.max_edges = 3;
  auto patterns = MineFrequentSubgraphs(db, options);
  ASSERT_TRUE(patterns.ok());
  // Triangle only in 2 graphs; paths up to 2 edges are in all 3 (the
  // 3-edge path is not in the triangle).
  std::set<std::string> keys;
  for (const Pattern& p : patterns.value()) {
    EXPECT_GE(p.support(), 3);
    keys.insert(p.code.ToKey());
  }
  EXPECT_EQ(patterns.value().size(), 2u);  // 1-edge, 2-edge path
}

TEST(GspanTest, PatternsAreCanonicalAndUnique) {
  Rng rng(7);
  GraphDatabase db;
  for (int i = 0; i < 8; ++i) {
    RandomGraphOptions options;
    options.num_vertices = 7;
    options.num_edges = 9;
    options.vertex_alphabet = 2;
    options.edge_alphabet = 2;
    db.Add(GenerateRandomConnectedGraph(options, &rng));
  }
  GspanOptions options;
  options.min_support = 2;
  options.max_edges = 4;
  auto patterns = MineFrequentSubgraphs(db, options);
  ASSERT_TRUE(patterns.ok());
  std::set<std::string> keys;
  for (const Pattern& p : patterns.value()) {
    auto is_min = IsMinDfsCode(p.code);
    ASSERT_TRUE(is_min.ok());
    EXPECT_TRUE(is_min.value());
    EXPECT_TRUE(keys.insert(p.code.ToKey()).second) << "duplicate pattern";
  }
}

TEST(GspanTest, MaxPatternsCap) {
  MoleculeGenerator gen;
  GraphDatabase db = gen.Generate(20);
  GspanOptions options;
  options.min_support = 2;
  options.max_edges = 3;
  options.max_patterns = 5;
  auto patterns = MineFrequentSubgraphs(db, options);
  ASSERT_TRUE(patterns.ok());
  EXPECT_EQ(patterns.value().size(), 5u);
}

// Property: gSpan equals brute-force enumeration (pattern keys and
// supports) on random labeled databases.
class GspanOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(GspanOracleTest, MatchesBruteForce) {
  Rng rng(GetParam() * 13 + 5);
  GraphDatabase db;
  for (int i = 0; i < 6; ++i) {
    RandomGraphOptions options;
    options.num_vertices = 5 + GetParam() % 3;
    options.num_edges = options.num_vertices + 2;
    options.vertex_alphabet = 2;
    options.edge_alphabet = 2;
    db.Add(GenerateRandomConnectedGraph(options, &rng));
  }
  const int max_edges = 4;
  const int min_support = 1 + GetParam() % 3;
  auto oracle = BruteForceFrequent(db, max_edges);

  GspanOptions options;
  options.min_support = min_support;
  options.max_edges = max_edges;
  auto patterns = MineFrequentSubgraphs(db, options);
  ASSERT_TRUE(patterns.ok());

  std::map<std::string, std::vector<int>> mined;
  for (const Pattern& p : patterns.value()) {
    // Recompute the key with vertex count prefix for comparison.
    CanonicalOptions opts;
    opts.first_embedding_only = true;
    auto form = MinDfsCode(p.graph, opts);
    ASSERT_TRUE(form.ok());
    mined[form.value().Key()] = p.support_set;
  }
  size_t expected_count = 0;
  for (const auto& [key, support] : oracle) {
    if (static_cast<int>(support.size()) < min_support) continue;
    ++expected_count;
    ASSERT_EQ(mined.count(key), 1u) << "missing pattern " << key;
    std::vector<int> expected_support(support.begin(), support.end());
    EXPECT_EQ(mined[key], expected_support);
  }
  EXPECT_EQ(mined.size(), expected_count);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GspanOracleTest, ::testing::Range(0, 15));

TEST(FeatureSelectorTest, GammaOneKeepsEverything) {
  MoleculeGenerator gen;
  GraphDatabase db = gen.Generate(30);
  GspanOptions options;
  options.min_support = 5;
  options.max_edges = 3;
  auto patterns = MineFrequentSubgraphs(db, options);
  ASSERT_TRUE(patterns.ok());
  FeatureSelectorOptions select;
  select.gamma = 1.0;
  auto selected = SelectDiscriminativeFeatures(patterns.value(), db.size(), select);
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected.value().size(), patterns.value().size());
}

TEST(FeatureSelectorTest, LargerGammaSelectsFewer) {
  MoleculeGenerator gen;
  GraphDatabase db = gen.Generate(60);
  GspanOptions options;
  options.min_support = 6;
  options.max_edges = 4;
  auto patterns = MineFrequentSubgraphs(db, options);
  ASSERT_TRUE(patterns.ok());
  FeatureSelectorOptions loose;
  loose.gamma = 1.0;
  FeatureSelectorOptions tight;
  tight.gamma = 2.0;
  auto all = SelectDiscriminativeFeatures(patterns.value(), db.size(), loose);
  auto few = SelectDiscriminativeFeatures(patterns.value(), db.size(), tight);
  ASSERT_TRUE(all.ok() && few.ok());
  EXPECT_LE(few.value().size(), all.value().size());
  EXPECT_FALSE(few.value().empty());  // single edges always kept
}

TEST(FeatureSelectorTest, RejectsBadGamma) {
  EXPECT_FALSE(SelectDiscriminativeFeatures({}, 10, {.gamma = 0.5}).ok());
}

TEST(FeatureSelectorTest, MaxFeaturesCap) {
  MoleculeGenerator gen;
  GraphDatabase db = gen.Generate(30);
  GspanOptions options;
  options.min_support = 3;
  options.max_edges = 3;
  auto patterns = MineFrequentSubgraphs(db, options);
  ASSERT_TRUE(patterns.ok());
  ASSERT_GT(patterns.value().size(), 3u);
  FeatureSelectorOptions select;
  select.gamma = 1.0;
  select.max_features = 3;
  auto selected = SelectDiscriminativeFeatures(patterns.value(), db.size(), select);
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected.value().size(), 3u);
}

TEST(PathFeaturesTest, PathsOfACycle) {
  GraphDatabase db;
  db.Add(Cycle(5));
  PathFeatureOptions options;
  options.max_edges = 3;
  auto features = MinePathFeatures(db, options);
  ASSERT_TRUE(features.ok());
  // Uniform labels: one path pattern per length 1..3.
  ASSERT_EQ(features.value().size(), 3u);
  for (const Pattern& p : features.value()) {
    EXPECT_EQ(p.support(), 1);
    EXPECT_EQ(p.graph.NumEdges(), p.graph.NumVertices() - 1);
  }
}

TEST(PathFeaturesTest, LabelsSplitPatterns) {
  GraphDatabase db;
  Graph g = Path(2, 1, 1);
  g.SetEdgeLabel(1, 2);
  db.Add(g);
  PathFeatureOptions options;
  options.max_edges = 2;
  auto features = MinePathFeatures(db, options);
  ASSERT_TRUE(features.ok());
  // Edges: label-1 and label-2 singles; one 2-edge path [1,2].
  EXPECT_EQ(features.value().size(), 3u);
}

TEST(PathFeaturesTest, MinSupportFilters) {
  GraphDatabase db;
  db.Add(Path(1, 1, 1));
  db.Add(Path(1, 1, 2));
  PathFeatureOptions options;
  options.max_edges = 1;
  options.min_support = 2;
  auto features = MinePathFeatures(db, options);
  ASSERT_TRUE(features.ok());
  EXPECT_TRUE(features.value().empty());  // each edge label in 1 graph only
}

}  // namespace
}  // namespace pis
