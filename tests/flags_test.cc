#include "util/flags.h"

#include <gtest/gtest.h>

#include <vector>

namespace pis {
namespace {

// argv helper: builds a mutable char** from string literals.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    for (std::string& s : storage_) pointers_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> pointers_;
};

TEST(FlagsTest, ParsesAllTypes) {
  int i = 1;
  int64_t i64 = 2;
  double d = 0.5;
  bool b = false;
  std::string s = "x";
  FlagSet flags;
  flags.AddInt("count", &i, "");
  flags.AddInt64("big", &i64, "");
  flags.AddDouble("ratio", &d, "");
  flags.AddBool("verbose", &b, "");
  flags.AddString("name", &s, "");
  Argv argv({"prog", "--count=7", "--big", "9000000000", "--ratio=2.5",
             "--verbose", "--name", "hello"});
  ASSERT_TRUE(flags.Parse(argv.argc(), argv.argv()).ok());
  EXPECT_EQ(i, 7);
  EXPECT_EQ(i64, 9000000000LL);
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_TRUE(b);
  EXPECT_EQ(s, "hello");
}

TEST(FlagsTest, BoolVariants) {
  bool b = true;
  FlagSet flags;
  flags.AddBool("flag", &b, "");
  Argv off({"prog", "--flag=false"});
  ASSERT_TRUE(flags.Parse(off.argc(), off.argv()).ok());
  EXPECT_FALSE(b);
  Argv on({"prog", "--flag=1"});
  ASSERT_TRUE(flags.Parse(on.argc(), on.argv()).ok());
  EXPECT_TRUE(b);
}

TEST(FlagsTest, Errors) {
  int i = 0;
  FlagSet flags;
  flags.AddInt("count", &i, "");
  Argv unknown({"prog", "--bogus=1"});
  EXPECT_EQ(flags.Parse(unknown.argc(), unknown.argv()).code(),
            StatusCode::kInvalidArgument);
  Argv bad_value({"prog", "--count=abc"});
  EXPECT_EQ(flags.Parse(bad_value.argc(), bad_value.argv()).code(),
            StatusCode::kInvalidArgument);
  Argv missing({"prog", "--count"});
  EXPECT_EQ(flags.Parse(missing.argc(), missing.argv()).code(),
            StatusCode::kInvalidArgument);
  Argv positional({"prog", "stray"});
  EXPECT_EQ(flags.Parse(positional.argc(), positional.argv()).code(),
            StatusCode::kInvalidArgument);
}

TEST(FlagsTest, HelpReturnsAlreadyExists) {
  FlagSet flags;
  Argv help({"prog", "--help"});
  EXPECT_EQ(flags.Parse(help.argc(), help.argv()).code(),
            StatusCode::kAlreadyExists);
}

TEST(FlagsTest, UsageListsFlagsWithDefaults) {
  int i = 42;
  FlagSet flags;
  flags.AddInt("count", &i, "how many");
  std::string usage = flags.Usage("prog");
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("42"), std::string::npos);
  EXPECT_NE(usage.find("how many"), std::string::npos);
}

}  // namespace
}  // namespace pis
