#include "obs/trace.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/stats.h"
#include "util/json.h"

namespace pis {
namespace {

TEST(TraceSpanTest, JsonRoundTrip) {
  TraceSpan root;
  root.name = "query";
  root.start_ms = 0;
  root.dur_ms = 12.5;
  TraceSpan child;
  child.name = "shard_query:127.0.0.1:4871";
  child.start_ms = 1.25;
  child.dur_ms = 8;
  TraceSpan grandchild;
  grandchild.name = "sketch_probe";
  grandchild.start_ms = 0.5;
  grandchild.dur_ms = 2;
  child.children.push_back(grandchild);
  root.children.push_back(child);

  auto decoded = TraceSpan::FromJson(root.ToJsonValue());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().name, "query");
  EXPECT_DOUBLE_EQ(decoded.value().dur_ms, 12.5);
  ASSERT_EQ(decoded.value().children.size(), 1u);
  EXPECT_EQ(decoded.value().children[0].name, "shard_query:127.0.0.1:4871");
  ASSERT_EQ(decoded.value().children[0].children.size(), 1u);
  EXPECT_DOUBLE_EQ(decoded.value().children[0].children[0].start_ms, 0.5);
}

TEST(TraceSpanTest, ListRoundTripPreservesOrder) {
  std::vector<TraceSpan> spans(3);
  spans[0].name = "a";
  spans[1].name = "b";
  spans[2].name = "c";
  auto decoded = TraceSpan::ListFromJson(TraceSpan::ListToJson(spans));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().size(), 3u);
  EXPECT_EQ(decoded.value()[0].name, "a");
  EXPECT_EQ(decoded.value()[2].name, "c");
}

TEST(TraceSpanTest, DecodeRejectsMalformedShapes) {
  EXPECT_FALSE(TraceSpan::FromJson(JsonValue(3.0)).ok());
  JsonValue no_name = JsonValue::Object();
  no_name.Set("dur_ms", 1.0);
  EXPECT_FALSE(TraceSpan::FromJson(no_name).ok());
  JsonValue negative = JsonValue::Object();
  negative.Set("name", "x");
  negative.Set("dur_ms", -1.0);
  EXPECT_FALSE(TraceSpan::FromJson(negative).ok());
  JsonValue bad_children = JsonValue::Object();
  bad_children.Set("name", "x");
  bad_children.Set("children", "not an array");
  EXPECT_FALSE(TraceSpan::FromJson(bad_children).ok());
  EXPECT_FALSE(TraceSpan::ListFromJson(JsonValue("nope")).ok());
}

TEST(TraceSpanTest, DecodeIsDepthLimited) {
  // A hostile reply nesting 64 levels deep must be rejected, not recursed
  // into until the stack dies.
  JsonValue leaf = JsonValue::Object();
  leaf.Set("name", "leaf");
  for (int i = 0; i < 64; ++i) {
    JsonValue parent = JsonValue::Object();
    parent.Set("name", "n");
    JsonValue children = JsonValue::Array();
    children.Push(std::move(leaf));
    parent.Set("children", std::move(children));
    leaf = std::move(parent);
  }
  auto decoded = TraceSpan::FromJson(leaf);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(TraceContextTest, RecordsSpansWithMonotonicOffsets) {
  TraceContext ctx("t-1");
  EXPECT_EQ(ctx.trace_id(), "t-1");
  {
    ScopedSpan span(&ctx, "stage_a");
  }
  ctx.RecordSince("stage_b", 0);
  std::vector<TraceSpan> spans = ctx.TakeSpans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "stage_a");
  EXPECT_EQ(spans[1].name, "stage_b");
  EXPECT_GE(spans[0].start_ms, 0);
  EXPECT_GE(spans[1].dur_ms, spans[0].dur_ms);  // b spans the whole context
  EXPECT_TRUE(ctx.TakeSpans().empty());         // Take drained
}

TEST(TraceContextTest, ConcurrentRecordingIsSafe) {
  TraceContext ctx("t-mt");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ctx, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ScopedSpan span(&ctx, "worker" + std::to_string(t));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ctx.TakeSpans().size(),
            static_cast<size_t>(kThreads) * kPerThread);
}

TEST(TraceContextTest, NullContextIsNoOp) {
  ScopedSpan span(nullptr, "ignored");
  span.AddChild(TraceSpan{});
  span.Stop();  // must not crash
}

TEST(TraceContextTest, ToJsonCarriesIdTotalAndSpans) {
  TraceContext ctx(TraceContext::NextId("q"));
  ctx.RecordSince("only", 0);
  JsonValue json = ctx.ToJsonValue();
  EXPECT_NE(json.GetStringOr("trace_id", ""), "");
  EXPECT_GE(json.GetNumberOr("total_ms", -1), 0);
  const JsonValue* spans = json.Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->size(), 1u);
  EXPECT_EQ(spans->items()[0].GetStringOr("name", ""), "only");
}

TEST(TraceContextTest, NextIdIsUnique) {
  EXPECT_NE(TraceContext::NextId("q"), TraceContext::NextId("q"));
}

TEST(BuildFilterSpanTest, ReconstructsStageChildren) {
  QueryStats stats;
  stats.sketch_checks = 10;
  stats.sketch_seconds = 0.001;
  stats.pass1_seconds = 0.004;
  stats.selectivity_seconds = 0.002;
  stats.partition_seconds = 0.0005;
  stats.pass2_seconds = 0.0015;
  TraceSpan filter = BuildFilterSpan(stats, 2.0, 7.5);
  EXPECT_EQ(filter.name, "filter");
  EXPECT_DOUBLE_EQ(filter.start_ms, 2.0);
  EXPECT_DOUBLE_EQ(filter.dur_ms, 7.5);
  ASSERT_EQ(filter.children.size(), 4u);
  EXPECT_EQ(filter.children[0].name, "sketch");
  EXPECT_DOUBLE_EQ(filter.children[0].start_ms, 2.0);
  EXPECT_DOUBLE_EQ(filter.children[0].dur_ms, 1.0);
  EXPECT_EQ(filter.children[1].name, "pass1");
  EXPECT_DOUBLE_EQ(filter.children[1].start_ms, 3.0);  // after sketch
  ASSERT_EQ(filter.children[1].children.size(), 1u);
  // Selectivity nests INSIDE pass-1 (its wall time includes the fits).
  EXPECT_EQ(filter.children[1].children[0].name, "selectivity");
  EXPECT_DOUBLE_EQ(filter.children[1].children[0].start_ms, 3.0);
  EXPECT_EQ(filter.children[2].name, "partition");
  EXPECT_EQ(filter.children[3].name, "pass2");
  // Stages lay out back to back.
  EXPECT_DOUBLE_EQ(filter.children[3].start_ms,
                   filter.children[2].start_ms + filter.children[2].dur_ms);
}

TEST(BuildFilterSpanTest, OmitsSketchWhenProbeNeverRan) {
  QueryStats stats;
  stats.pass1_seconds = 0.001;
  TraceSpan filter = BuildFilterSpan(stats, 0, 1.5);
  ASSERT_EQ(filter.children.size(), 3u);
  EXPECT_EQ(filter.children[0].name, "pass1");
}

TEST(SlowQueryLogTest, ThresholdGatesLogging) {
  SlowQueryLog log("", /*threshold_ms=*/5.0);
  EXPECT_TRUE(log.enabled());
  EXPECT_FALSE(log.ShouldLog(4.999));
  EXPECT_TRUE(log.ShouldLog(5.0));
  EXPECT_TRUE(log.ShouldLog(100.0));
  SlowQueryLog disabled("", 0);
  EXPECT_FALSE(disabled.enabled());
  EXPECT_FALSE(disabled.ShouldLog(1e9));
}

TEST(SlowQueryLogTest, AppendsOneJsonLinePerTrace) {
  const std::string path = ::testing::TempDir() + "/slow_query_test.log";
  std::remove(path.c_str());
  SlowQueryLog log(path, 1.0);
  TraceContext ctx("slow-1");
  ctx.RecordSince("stage", 0);
  JsonValue trace = ctx.ToJsonValue();
  trace.Set("op", "query");
  log.Log(trace);
  log.Log(trace);
  EXPECT_EQ(log.lines_written(), 2u);
  EXPECT_EQ(log.lines_dropped(), 0u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    auto parsed = JsonValue::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    EXPECT_EQ(parsed.value().GetStringOr("trace_id", ""), "slow-1");
    EXPECT_EQ(parsed.value().GetStringOr("op", ""), "query");
    ASSERT_NE(parsed.value().Find("spans"), nullptr);
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

TEST(SlowQueryLogTest, UnwritablePathCountsDrops) {
  SlowQueryLog log("/nonexistent_dir_pis/slow.log", 1.0);
  log.Log(JsonValue::Object());
  EXPECT_EQ(log.lines_written(), 0u);
  EXPECT_EQ(log.lines_dropped(), 1u);
}

}  // namespace
}  // namespace pis
