// Failure injection and adversarial-input robustness: corrupt index files,
// malformed SDF/native inputs, and metric sanity properties of the
// distances. Nothing here should crash — every failure must surface as a
// Status.
#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "distance/mutation.h"
#include "distance/superimposed.h"
#include "graph/generator.h"
#include "graph/io.h"
#include "graph/query_sampler.h"
#include "graph/sdf_parser.h"
#include "index/fragment_index.h"
#include "mining/gspan.h"
#include "util/random.h"

namespace pis {
namespace {

Result<FragmentIndex> BuildSmallIndex(GraphDatabase* db_out) {
  MoleculeGeneratorOptions gopt;
  gopt.seed = 900;
  gopt.mean_vertices = 12;
  gopt.max_vertices = 25;
  MoleculeGenerator gen(gopt);
  *db_out = gen.Generate(10);
  Graph edge;
  edge.AddVertex(kNoLabel);
  edge.AddVertex(kNoLabel);
  auto added = edge.AddEdge(0, 1);
  EXPECT_TRUE(added.ok());
  Graph path2 = edge;
  VertexId v = path2.AddVertex(kNoLabel);
  EXPECT_TRUE(path2.AddEdge(1, v).ok());
  FragmentIndexOptions options;
  options.max_fragment_edges = 3;
  return FragmentIndex::Build(*db_out, {edge, path2}, options);
}

// Property: truncating a valid index file at any prefix length either
// fails cleanly or (never) succeeds — no crashes, no PIS_CHECK aborts.
TEST(IndexFuzzTest, TruncationAlwaysFailsCleanly) {
  GraphDatabase db;
  auto index = BuildSmallIndex(&db);
  ASSERT_TRUE(index.ok());
  std::stringstream buf;
  ASSERT_TRUE(index.value().Save(buf).ok());
  std::string bytes = buf.str();
  ASSERT_GT(bytes.size(), 64u);
  // Exhaustive near the header, sampled beyond.
  for (size_t cut = 0; cut < bytes.size(); cut += (cut < 64 ? 1 : 97)) {
    std::stringstream truncated(bytes.substr(0, cut));
    auto loaded = FragmentIndex::Load(truncated);
    EXPECT_FALSE(loaded.ok()) << "cut=" << cut;
  }
}

TEST(IndexFuzzTest, BitFlipsFailCleanlyOrLoad) {
  GraphDatabase db;
  auto index = BuildSmallIndex(&db);
  ASSERT_TRUE(index.ok());
  std::stringstream buf;
  ASSERT_TRUE(index.value().Save(buf).ok());
  std::string bytes = buf.str();
  Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = bytes;
    size_t pos = rng.UniformIndex(mutated.size());
    mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << rng.UniformInt(0, 7)));
    std::stringstream in(mutated);
    // Either a clean error or a successful load (the flip may hit padding
    // or an informational counter); must not crash.
    auto loaded = FragmentIndex::Load(in);
    if (loaded.ok()) {
      EXPECT_GE(loaded.value().num_classes(), 0);
    }
  }
}

TEST(SdfFuzzTest, RandomTextNeverCrashes) {
  Rng rng(5);
  ChemicalVocabulary vocab = MakeDefaultChemicalVocabulary();
  for (int trial = 0; trial < 100; ++trial) {
    std::string text;
    int lines = rng.UniformInt(1, 20);
    for (int l = 0; l < lines; ++l) {
      int len = rng.UniformInt(0, 30);
      for (int c = 0; c < len; ++c) {
        text += static_cast<char>(rng.UniformInt(32, 126));
      }
      text += '\n';
    }
    text += "$$$$\n";
    std::istringstream in(text);
    auto db = ReadSdf(in, &vocab);  // skip_malformed default: must be OK
    EXPECT_TRUE(db.ok());
  }
}

TEST(NativeFormatFuzzTest, RandomTokensNeverCrash) {
  Rng rng(6);
  const char* tokens[] = {"t", "v", "e", "#", "0", "1", "-1", "9999", "x", "2.5"};
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    int lines = rng.UniformInt(1, 15);
    for (int l = 0; l < lines; ++l) {
      int words = rng.UniformInt(1, 5);
      for (int w = 0; w < words; ++w) {
        text += tokens[rng.UniformIndex(10)];
        text += ' ';
      }
      text += '\n';
    }
    std::istringstream in(text);
    auto db = ReadGraphDatabase(in);  // OK or ParseError, never a crash
    if (!db.ok()) {
      EXPECT_EQ(db.status().code(), StatusCode::kParseError);
    }
  }
}

// Metric sanity of the isomorphic mutation distance with unit scores:
// symmetry and identity-of-indiscernibles over random label assignments of
// a fixed skeleton.
class MutationMetricTest : public ::testing::TestWithParam<int> {};

TEST_P(MutationMetricTest, SymmetricAndZeroOnIsomorphic) {
  Rng rng(GetParam() + 1);
  RandomGraphOptions options;
  options.num_vertices = 6;
  options.num_edges = 8;
  options.vertex_alphabet = 2;
  options.edge_alphabet = 3;
  Graph a = GenerateRandomConnectedGraph(options, &rng);
  Graph b = a;
  // Mutate a few edge labels of b.
  int mutations = rng.UniformInt(0, 3);
  for (int m = 0; m < mutations; ++m) {
    EdgeId e = static_cast<EdgeId>(rng.UniformIndex(b.NumEdges()));
    b.SetEdgeLabel(e, rng.UniformInt(1, 3));
  }
  MutationCostModel model = UnitMutationModel();
  double ab = IsomorphicDistance(a, b, model);
  double ba = IsomorphicDistance(b, a, model);
  EXPECT_DOUBLE_EQ(ab, ba);
  EXPECT_LE(ab, mutations);  // at most the number of applied mutations
  // Relabeled copy is at distance 0.
  std::vector<VertexId> perm(a.NumVertices());
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(&perm);
  EXPECT_DOUBLE_EQ(IsomorphicDistance(a, a.Relabeled(perm), model), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationMetricTest, ::testing::Range(0, 20));

// Eq. 2 property on explicit random partitions: for random vertex-disjoint
// indexed fragments of Q, the summed fragment distances never exceed the
// true superimposed distance.
class LowerBoundPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(LowerBoundPropertyTest, SumOfFragmentDistancesIsLowerBound) {
  Rng rng(GetParam() + 41);
  MoleculeGeneratorOptions gopt;
  gopt.seed = 700 + GetParam();
  gopt.mean_vertices = 12;
  gopt.max_vertices = 25;
  MoleculeGenerator gen(gopt);
  Graph target = gen.Next();
  auto query = SampleConnectedSubgraph(target, 8, &rng);
  ASSERT_TRUE(query.ok());
  MutationCostModel model = EdgeMutationModel();
  double truth = MinSuperimposedDistance(query.value(), target, model);
  ASSERT_NE(truth, kInfiniteDistance);

  // Random vertex-disjoint partitions built from 1- and 2-edge fragments:
  // visit edges in random order, take an edge (possibly extended by one
  // adjacent edge) whenever its vertices are untouched.
  const Graph& q = query.value();
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<EdgeId> order(q.NumEdges());
    std::iota(order.begin(), order.end(), 0);
    rng.Shuffle(&order);
    std::vector<bool> used(q.NumVertices(), false);
    double bound = 0;
    for (EdgeId e : order) {
      const Edge& edge = q.GetEdge(e);
      if (used[edge.u] || used[edge.v]) continue;
      std::vector<EdgeId> frag_edges = {e};
      // Optionally grow to a 2-edge path whose third vertex is also free.
      if (rng.Bernoulli(0.5)) {
        for (EdgeId inc : q.IncidentEdges(edge.v)) {
          if (inc == e) continue;
          VertexId w = q.GetEdge(inc).Other(edge.v);
          if (!used[w] && w != edge.u) {
            frag_edges.push_back(inc);
            used[w] = true;
            break;
          }
        }
      }
      used[edge.u] = used[edge.v] = true;
      Graph frag = q.EdgeSubgraph(frag_edges);
      double d = MinSuperimposedDistance(frag, target, model);
      ASSERT_NE(d, kInfiniteDistance);  // fragment of a contained query
      bound += d;
    }
    EXPECT_LE(bound, truth + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LowerBoundPropertyTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace pis
