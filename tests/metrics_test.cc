#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace pis {
namespace {

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("pis_test_events_total", "events");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(CounterTest, RegistrationIsIdempotentAcrossThreads) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &seen, t] {
      Counter* c = registry.GetCounter("pis_test_shared_total", "shared",
                                       {{"op", "query"}});
      c->Inc();
      seen[t] = c;
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(seen[0]->value(), static_cast<uint64_t>(kThreads));
}

TEST(GaugeTest, SetAndAdd) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("pis_test_depth", "queue depth");
  g->Set(7);
  EXPECT_EQ(g->value(), 7);
  g->Add(-3);
  EXPECT_EQ(g->value(), 4);
  g->Set(-2);  // gauges may go negative
  EXPECT_EQ(g->value(), -2);
}

TEST(HistogramTest, BucketBoundaries) {
  Histogram h({0.1, 1.0, 10.0});
  h.Observe(0.05);   // <= 0.1     -> bucket 0
  h.Observe(0.1);    // == bound   -> bucket 0 (le is inclusive)
  h.Observe(0.1001); // > 0.1      -> bucket 1
  h.Observe(1.0);    // == bound   -> bucket 1
  h.Observe(5.0);    //            -> bucket 2
  h.Observe(10.0);   // == bound   -> bucket 2
  h.Observe(11.0);   // overflow   -> +Inf bucket
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.05 + 0.1 + 0.1001 + 1.0 + 5.0 + 10.0 + 11.0);
}

TEST(HistogramTest, ConcurrentObservationsKeepCountAndSumConsistent) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("pis_test_latency_seconds", "latency",
                                       {0.001, 0.01, 0.1});
  // 1/256 is exactly representable, so the CAS-accumulated sum is exact
  // regardless of the order threads landed their additions.
  constexpr double kValue = 0.00390625;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h] {
      for (int i = 0; i < kPerThread; ++i) h->Observe(kValue);
    });
  }
  for (std::thread& t : threads) t.join();
  const uint64_t want = static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(h->count(), want);
  EXPECT_EQ(h->bucket_count(1), want);
  EXPECT_DOUBLE_EQ(h->sum(), kValue * static_cast<double>(want));
}

TEST(HistogramTest, DefaultLatencyBoundsAreStrictlyIncreasing) {
  const std::vector<double> bounds = Histogram::DefaultLatencyBounds();
  ASSERT_FALSE(bounds.empty());
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-4);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
  EXPECT_GT(bounds.back(), 20.0);  // covers a cold cluster round trip
}

TEST(RegistryTest, PrometheusExpositionGolden) {
  MetricsRegistry registry;
  registry.GetCounter("pis_a_total", "counted things", {{"op", "query"}})
      ->Inc(3);
  registry.GetCounter("pis_a_total", "counted things", {{"op", "add"}})->Inc();
  registry.GetGauge("pis_b", "a gauge")->Set(42);
  Histogram* h =
      registry.GetHistogram("pis_c_seconds", "a histogram", {0.5, 2.0});
  h->Observe(0.25);
  h->Observe(1.0);
  h->Observe(9.0);
  const std::string want =
      "# HELP pis_a_total counted things\n"
      "# TYPE pis_a_total counter\n"
      "pis_a_total{op=\"add\"} 1\n"
      "pis_a_total{op=\"query\"} 3\n"
      "# HELP pis_b a gauge\n"
      "# TYPE pis_b gauge\n"
      "pis_b 42\n"
      "# HELP pis_c_seconds a histogram\n"
      "# TYPE pis_c_seconds histogram\n"
      "pis_c_seconds_bucket{le=\"0.5\"} 1\n"
      "pis_c_seconds_bucket{le=\"2\"} 2\n"
      "pis_c_seconds_bucket{le=\"+Inf\"} 3\n"
      "pis_c_seconds_sum 10.25\n"
      "pis_c_seconds_count 3\n";
  EXPECT_EQ(registry.RenderPrometheus(), want);
}

TEST(RegistryTest, LabelValuesAreEscaped) {
  MetricsRegistry registry;
  registry.GetCounter("pis_esc_total", "escapes",
                      {{"path", "a\\b\"c\nd"}})->Inc();
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("pis_esc_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(RegistryTest, LabelOrderIsCanonical) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("pis_lbl_total", "labels",
                                   {{"b", "2"}, {"a", "1"}});
  Counter* b = registry.GetCounter("pis_lbl_total", "labels",
                                   {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(a, b);  // order-insensitive: one child
  a->Inc();
  EXPECT_NE(registry.RenderPrometheus().find(
                "pis_lbl_total{a=\"1\",b=\"2\"} 1\n"),
            std::string::npos);
}

TEST(RegistryTest, TypeMismatchReturnsDummyNotCrash) {
  MetricsRegistry registry;
  Counter* real = registry.GetCounter("pis_dual", "first registration wins");
  real->Inc(5);
  // Registering the same name as a gauge is a programming error; the call
  // must not crash and must not corrupt the original family.
  Gauge* dummy = registry.GetGauge("pis_dual", "mismatched");
  ASSERT_NE(dummy, nullptr);
  dummy->Set(99);
  EXPECT_EQ(real->value(), 5u);
  EXPECT_NE(registry.RenderPrometheus().find("pis_dual 5\n"),
            std::string::npos);
}

TEST(RegistryTest, HistogramFamilySharesBounds) {
  MetricsRegistry registry;
  Histogram* a = registry.GetHistogram("pis_fam_seconds", "family", {1.0});
  // Later registration's bounds are ignored: children of one family must
  // share buckets or the exposition would be unmergeable.
  Histogram* b = registry.GetHistogram("pis_fam_seconds", "family",
                                       {0.5, 2.0, 4.0}, {{"op", "x"}});
  EXPECT_EQ(a->bounds(), std::vector<double>{1.0});
  EXPECT_EQ(b->bounds(), std::vector<double>{1.0});
}

TEST(RegistryTest, JsonMirrorShape) {
  MetricsRegistry registry;
  registry.GetCounter("pis_j_total", "json", {{"op", "query"}})->Inc(2);
  registry.GetHistogram("pis_jh_seconds", "json hist", {1.0})->Observe(0.5);
  JsonValue root = registry.ToJsonValue();
  const JsonValue* counter = root.Find("pis_j_total");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->GetStringOr("type", ""), "counter");
  const JsonValue* values = counter->Find("values");
  ASSERT_NE(values, nullptr);
  ASSERT_EQ(values->size(), 1u);
  EXPECT_EQ(values->items()[0].GetNumberOr("value", 0), 2);
  const JsonValue* hist = root.Find("pis_jh_seconds");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->GetStringOr("type", ""), "histogram");
  const JsonValue& hv = hist->Find("values")->items()[0];
  EXPECT_EQ(hv.GetNumberOr("count", 0), 1);
  EXPECT_DOUBLE_EQ(hv.GetNumberOr("sum", 0), 0.5);
  ASSERT_NE(hv.Find("buckets"), nullptr);
  EXPECT_EQ(hv.Find("buckets")->size(), 2u);  // le=1.0 and +Inf
}

}  // namespace
}  // namespace pis
