#include "index/fragment_enum.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generator.h"
#include "util/random.h"

namespace pis {
namespace {

Graph Cycle(int n) {
  Graph g;
  for (int i = 0; i < n; ++i) g.AddVertex(1);
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(g.AddEdge(i, (i + 1) % n, 1).ok());
  }
  return g;
}

// Oracle: enumerate all edge subsets by bitmask and keep the connected ones.
std::set<std::vector<EdgeId>> BruteForceSubsets(const Graph& g, int min_edges,
                                                int max_edges) {
  std::set<std::vector<EdgeId>> out;
  int m = g.NumEdges();
  for (uint32_t mask = 1; mask < (1u << m); ++mask) {
    std::vector<EdgeId> subset;
    for (int e = 0; e < m; ++e) {
      if (mask & (1u << e)) subset.push_back(e);
    }
    int k = static_cast<int>(subset.size());
    if (k < min_edges || k > max_edges) continue;
    Graph sub = g.EdgeSubgraph(subset);
    if (!sub.IsConnected()) continue;
    out.insert(subset);
  }
  return out;
}

std::set<std::vector<EdgeId>> EsuSubsets(const Graph& g, int min_edges,
                                         int max_edges) {
  std::set<std::vector<EdgeId>> out;
  FragmentEnumOptions options;
  options.min_edges = min_edges;
  options.max_edges = max_edges;
  EnumerateConnectedEdgeSubgraphs(g, options, [&](const std::vector<EdgeId>& s) {
    std::vector<EdgeId> sorted = s;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(out.insert(sorted).second) << "duplicate subset emitted";
    return true;
  });
  return out;
}

TEST(FragmentEnumTest, SingleEdgeGraph) {
  Graph g;
  g.AddVertex(1);
  g.AddVertex(1);
  ASSERT_TRUE(g.AddEdge(0, 1, 1).ok());
  EXPECT_EQ(CountConnectedEdgeSubgraphs(g, {1, 3}), 1u);
}

TEST(FragmentEnumTest, TriangleCounts) {
  Graph g = Cycle(3);
  // Connected subsets: 3 single edges, 3 two-edge paths, 1 triangle.
  EXPECT_EQ(CountConnectedEdgeSubgraphs(g, {1, 3}), 7u);
  EXPECT_EQ(CountConnectedEdgeSubgraphs(g, {2, 2}), 3u);
  EXPECT_EQ(CountConnectedEdgeSubgraphs(g, {3, 3}), 1u);
}

TEST(FragmentEnumTest, EarlyStop) {
  Graph g = Cycle(6);
  size_t seen = 0;
  EnumerateConnectedEdgeSubgraphs(g, {1, 6}, [&](const std::vector<EdgeId>&) {
    ++seen;
    return seen < 4;
  });
  EXPECT_EQ(seen, 4u);
}

TEST(FragmentEnumTest, MatchesBruteForceOnCycle) {
  Graph g = Cycle(6);
  EXPECT_EQ(EsuSubsets(g, 1, 6), BruteForceSubsets(g, 1, 6));
}

// Property sweep: ESU equals the bitmask oracle on random graphs.
class FragmentEnumOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(FragmentEnumOracleTest, MatchesBruteForce) {
  Rng rng(GetParam());
  RandomGraphOptions options;
  options.num_vertices = 5 + GetParam() % 4;
  options.num_edges = options.num_vertices + GetParam() % 5;
  Graph g = GenerateRandomConnectedGraph(options, &rng);
  ASSERT_LE(g.NumEdges(), 14);
  for (int max_edges : {2, 4, g.NumEdges()}) {
    EXPECT_EQ(EsuSubsets(g, 1, max_edges), BruteForceSubsets(g, 1, max_edges))
        << "max_edges=" << max_edges;
  }
  EXPECT_EQ(EsuSubsets(g, 3, 5), BruteForceSubsets(g, 3, 5));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FragmentEnumOracleTest, ::testing::Range(0, 25));

TEST(FragmentEnumTest, MoleculeScaleSmoke) {
  MoleculeGenerator gen;
  Graph g = gen.Next();
  size_t count = CountConnectedEdgeSubgraphs(g, {1, 6});
  EXPECT_GT(count, static_cast<size_t>(g.NumEdges()));
}

}  // namespace
}  // namespace pis
