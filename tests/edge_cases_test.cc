// Degenerate-configuration behaviour: empty feature sets, empty databases,
// queries with no indexed fragments — the engines must degrade to correct
// (if unpruned) answers, never crash or drop results.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "core/naive_search.h"
#include "core/pis.h"
#include "core/sharded_pis.h"
#include "core/topk.h"
#include "core/topo_prune.h"
#include "graph/generator.h"
#include "graph/query_sampler.h"
#include "index/fragment_index.h"
#include "index/sharded_index.h"

namespace pis {
namespace {

Graph SingleEdgeFeature() {
  Graph edge;
  edge.AddVertex(kNoLabel);
  edge.AddVertex(kNoLabel);
  EXPECT_TRUE(edge.AddEdge(0, 1).ok());
  return edge;
}

TEST(EdgeCasesTest, EmptyFeatureSetDegradesToNoPruning) {
  MoleculeGeneratorOptions gopt;
  gopt.seed = 5;
  gopt.mean_vertices = 12;
  gopt.max_vertices = 25;
  MoleculeGenerator gen(gopt);
  GraphDatabase db = gen.Generate(10);
  auto index = FragmentIndex::Build(db, {}, {});
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index.value().num_classes(), 0);

  QuerySampler sampler(&db, {.seed = 2, .strip_vertex_labels = true});
  auto query = sampler.Sample(6);
  ASSERT_TRUE(query.ok());
  PisOptions options;
  options.sigma = 1;
  PisEngine engine(&db, &index.value(), options);
  auto result = engine.Search(query.value());
  ASSERT_TRUE(result.ok());
  // No fragments -> no pruning -> whole database verified; answers exact.
  EXPECT_EQ(result.value().candidates.size(), static_cast<size_t>(db.size()));
  SearchResult naive =
      NaiveSearch(db, query.value(), index.value().options().spec, 1);
  EXPECT_EQ(result.value().answers, naive.answers);

  TopoPruneEngine topo(&db, &index.value());
  auto topo_result = topo.Search(query.value(), 1);
  ASSERT_TRUE(topo_result.ok());
  EXPECT_EQ(topo_result.value().answers, naive.answers);
}

TEST(EdgeCasesTest, EmptyDatabase) {
  GraphDatabase db;
  auto index = FragmentIndex::Build(db, {SingleEdgeFeature()}, {});
  ASSERT_TRUE(index.ok());
  Graph query = SingleEdgeFeature();
  PisEngine engine(&db, &index.value(), {});
  auto result = engine.Search(query);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().answers.empty());
}

TEST(EdgeCasesTest, SingleEdgeQuery) {
  MoleculeGeneratorOptions gopt;
  gopt.seed = 9;
  gopt.mean_vertices = 10;
  gopt.max_vertices = 20;
  MoleculeGenerator gen(gopt);
  GraphDatabase db = gen.Generate(8);
  auto index = FragmentIndex::Build(db, {SingleEdgeFeature()}, {});
  ASSERT_TRUE(index.ok());
  Graph query = SingleEdgeFeature();
  query.SetEdgeLabel(0, 1);  // "single" bond label from the generator vocab
  PisOptions options;
  options.sigma = 0;
  PisEngine engine(&db, &index.value(), options);
  auto result = engine.Search(query);
  ASSERT_TRUE(result.ok());
  SearchResult naive = NaiveSearch(db, query, index.value().options().spec, 0);
  EXPECT_EQ(result.value().answers, naive.answers);
  EXPECT_FALSE(result.value().answers.empty());  // single bonds are ubiquitous
}

TEST(EdgeCasesTest, QueryLargerThanEveryGraph) {
  MoleculeGeneratorOptions gopt;
  gopt.seed = 11;
  gopt.mean_vertices = 10;
  gopt.max_vertices = 16;
  MoleculeGenerator gen(gopt);
  GraphDatabase db = gen.Generate(6);
  auto index = FragmentIndex::Build(db, {SingleEdgeFeature()}, {});
  ASSERT_TRUE(index.ok());
  // A long path no 16-vertex molecule can contain.
  Graph query;
  query.AddVertex(kNoLabel);
  for (int i = 0; i < 40; ++i) {
    query.AddVertex(kNoLabel);
    ASSERT_TRUE(query.AddEdge(i, i + 1, 1).ok());
  }
  PisOptions options;
  options.sigma = 3;
  PisEngine engine(&db, &index.value(), options);
  auto result = engine.Search(query);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().answers.empty());
}

TEST(EdgeCasesTest, MismatchedIndexAndDatabaseIsFatalInDebug) {
  MoleculeGenerator gen;
  GraphDatabase db = gen.Generate(4);
  auto index = FragmentIndex::Build(db, {SingleEdgeFeature()}, {});
  ASSERT_TRUE(index.ok());
  GraphDatabase other = gen.Generate(7);
  EXPECT_DEATH({ PisEngine engine(&other, &index.value(), {}); },
               "different database");
}

TEST(EdgeCasesTest, InvalidBuildOptionsRejected) {
  GraphDatabase db;
  FragmentIndexOptions bad;
  bad.min_fragment_edges = 0;
  EXPECT_FALSE(FragmentIndex::Build(db, {}, bad).ok());
  bad.min_fragment_edges = 5;
  bad.max_fragment_edges = 3;
  EXPECT_FALSE(FragmentIndex::Build(db, {}, bad).ok());
}

// ---- Degenerate incremental updates -----------------------------------

TEST(UpdateEdgeCasesTest, RemovingNonexistentIdIsNotFound) {
  MoleculeGenerator gen;
  GraphDatabase db = gen.Generate(5);
  auto index = FragmentIndex::Build(db, {SingleEdgeFeature()}, {});
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index.value().RemoveGraph(-1).code(), StatusCode::kNotFound);
  EXPECT_EQ(index.value().RemoveGraph(5).code(), StatusCode::kNotFound);
  // A double remove is NotFound too, and the live count only drops once.
  ASSERT_TRUE(index.value().RemoveGraph(2).ok());
  EXPECT_EQ(index.value().RemoveGraph(2).code(), StatusCode::kNotFound);
  EXPECT_EQ(index.value().num_live(), 4);

  FragmentIndexOptions iopt;
  iopt.max_fragment_edges = 2;
  auto sharded =
      ShardedFragmentIndex::Build(db, {SingleEdgeFeature()}, iopt, 3);
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ(sharded.value().RemoveGraph(-1).code(), StatusCode::kNotFound);
  EXPECT_EQ(sharded.value().RemoveGraph(99).code(), StatusCode::kNotFound);
  ASSERT_TRUE(sharded.value().RemoveGraph(4).ok());
  EXPECT_EQ(sharded.value().RemoveGraph(4).code(), StatusCode::kNotFound);
  EXPECT_EQ(sharded.value().num_live(), 4);
}

TEST(UpdateEdgeCasesTest, AddingTheSameGraphTwiceGetsDistinctIds) {
  MoleculeGeneratorOptions gopt;
  gopt.seed = 31;
  MoleculeGenerator gen(gopt);
  GraphDatabase db = gen.Generate(6);
  auto index = FragmentIndex::Build(db, {SingleEdgeFeature()}, {});
  ASSERT_TRUE(index.ok());
  // There is no "duplicate id" to reject: ids are assigned by the index, so
  // re-adding identical content simply creates a second live graph.
  Graph dup = db.at(0);
  auto first = index.value().AddGraph(dup);
  auto second = index.value().AddGraph(dup);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first.value(), 6);
  EXPECT_EQ(second.value(), 7);
  db.Add(dup);
  db.Add(dup);

  // Both copies answer queries alongside the original.
  PisOptions options;
  options.sigma = 0;
  PisEngine engine(&db, &index.value(), options);
  auto result = engine.Search(db.at(0));
  ASSERT_TRUE(result.ok());
  SearchResult naive = NaiveSearch(db, db.at(0), index.value().options().spec, 0);
  EXPECT_EQ(result.value().answers, naive.answers);
  for (int gid : {0, 6, 7}) {
    EXPECT_NE(std::find(result.value().answers.begin(),
                        result.value().answers.end(), gid),
              result.value().answers.end());
  }
}

TEST(UpdateEdgeCasesTest, RemovingEveryGraphYieldsEmptyResults) {
  MoleculeGeneratorOptions gopt;
  gopt.seed = 13;
  MoleculeGenerator gen(gopt);
  GraphDatabase db = gen.Generate(6);
  auto index = FragmentIndex::Build(db, {SingleEdgeFeature()}, {});
  ASSERT_TRUE(index.ok());
  FragmentIndexOptions iopt;
  iopt.max_fragment_edges = 2;
  auto sharded =
      ShardedFragmentIndex::Build(db, {SingleEdgeFeature()}, iopt, 3);
  ASSERT_TRUE(sharded.ok());
  for (int gid = 0; gid < db.size(); ++gid) {
    ASSERT_TRUE(index.value().RemoveGraph(gid).ok());
    ASSERT_TRUE(sharded.value().RemoveGraph(gid).ok());
  }
  EXPECT_EQ(index.value().num_live(), 0);
  EXPECT_EQ(sharded.value().num_live(), 0);

  QuerySampler sampler(&db, {.seed = 8, .strip_vertex_labels = true});
  auto query = sampler.Sample(4);
  ASSERT_TRUE(query.ok());
  PisOptions options;
  options.sigma = 3;

  // PIS, sharded PIS, topoPrune, and top-k must all come back empty (no
  // candidates leak through the no-pruning path) without touching a
  // tombstoned graph.
  PisEngine engine(&db, &index.value(), options);
  auto result = engine.Search(query.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().candidates.empty());
  EXPECT_TRUE(result.value().answers.empty());

  ShardedPisEngine sharded_engine(&db, &sharded.value(), options);
  auto sharded_result = sharded_engine.Search(query.value());
  ASSERT_TRUE(sharded_result.ok());
  EXPECT_TRUE(sharded_result.value().candidates.empty());
  EXPECT_TRUE(sharded_result.value().answers.empty());

  TopoPruneEngine topo(&db, &index.value());
  auto topo_result = topo.Search(query.value(), options.sigma);
  ASSERT_TRUE(topo_result.ok());
  EXPECT_TRUE(topo_result.value().answers.empty());

  TopKOptions topk;
  topk.k = 3;
  topk.max_sigma = 8;
  auto nearest = TopKSearch(db, index.value(), query.value(), topk);
  ASSERT_TRUE(nearest.ok()) << nearest.status().ToString();
  EXPECT_TRUE(nearest.value().results.empty());
}

// ---- Degenerate compactions -------------------------------------------

std::string SaveBytes(const FragmentIndex& index) {
  std::stringstream out;
  EXPECT_TRUE(index.Save(out).ok());
  return out.str();
}

TEST(CompactionEdgeCasesTest, CompactingAnEmptyIndexIsANoOp) {
  GraphDatabase db;
  auto index = FragmentIndex::Build(db, {SingleEdgeFeature()}, {});
  ASSERT_TRUE(index.ok());
  const std::string before = SaveBytes(index.value());
  EXPECT_TRUE(index.value().Compact().empty());
  EXPECT_EQ(index.value().db_size(), 0);
  EXPECT_EQ(index.value().compaction_epoch(), 0u);
  EXPECT_EQ(SaveBytes(index.value()), before);

  FragmentIndexOptions iopt;
  iopt.max_fragment_edges = 2;
  auto sharded =
      ShardedFragmentIndex::Build(db, {SingleEdgeFeature()}, iopt, 3);
  ASSERT_TRUE(sharded.ok());
  auto compacted = sharded.value().Compact();
  ASSERT_TRUE(compacted.ok());
  EXPECT_EQ(compacted.value(), 0);
  EXPECT_EQ(sharded.value().compaction_epoch(), 0);
}

TEST(CompactionEdgeCasesTest, CompactWithZeroTombstonesIsByteIdentical) {
  MoleculeGeneratorOptions gopt;
  gopt.seed = 17;
  MoleculeGenerator gen(gopt);
  GraphDatabase db = gen.Generate(8);
  auto index = FragmentIndex::Build(db, {SingleEdgeFeature()}, {});
  ASSERT_TRUE(index.ok());
  const std::string before = SaveBytes(index.value());
  const std::vector<int> remap = index.value().Compact();
  // Identity remap, nothing rewritten, not even the epoch word.
  for (int gid = 0; gid < db.size(); ++gid) EXPECT_EQ(remap[gid], gid);
  EXPECT_EQ(index.value().compaction_epoch(), 0u);
  EXPECT_EQ(SaveBytes(index.value()), before);
}

TEST(CompactionEdgeCasesTest, CompactAfterRemovingEveryGraph) {
  MoleculeGeneratorOptions gopt;
  gopt.seed = 23;
  MoleculeGenerator gen(gopt);
  GraphDatabase db = gen.Generate(6);
  auto index = FragmentIndex::Build(db, {SingleEdgeFeature()}, {});
  ASSERT_TRUE(index.ok());
  FragmentIndexOptions iopt;
  iopt.max_fragment_edges = 2;
  auto sharded =
      ShardedFragmentIndex::Build(db, {SingleEdgeFeature()}, iopt, 3);
  ASSERT_TRUE(sharded.ok());
  for (int gid = 0; gid < db.size(); ++gid) {
    ASSERT_TRUE(index.value().RemoveGraph(gid).ok());
    ASSERT_TRUE(sharded.value().RemoveGraph(gid).ok());
  }
  const std::vector<int> remap = index.value().Compact();
  for (int mapped : remap) EXPECT_EQ(mapped, -1);
  EXPECT_EQ(index.value().db_size(), 0);
  EXPECT_EQ(index.value().num_live(), 0);
  EXPECT_TRUE(index.value().tombstones().empty());
  ASSERT_TRUE(sharded.value().Compact().ok());
  // The global record of the removals outlives their postings.
  EXPECT_EQ(sharded.value().num_live(), 0);
  EXPECT_EQ(sharded.value().tombstones().size(), 6u);
  for (int s = 0; s < 3; ++s) EXPECT_EQ(sharded.value().shard_size(s), 0);

  // Both engines still answer (with nothing) over their aligned databases.
  GraphDatabase empty_db;
  QuerySampler sampler(&db, {.seed = 8, .strip_vertex_labels = true});
  auto query = sampler.Sample(4);
  ASSERT_TRUE(query.ok());
  PisOptions options;
  options.sigma = 3;
  PisEngine engine(&empty_db, &index.value(), options);
  auto result = engine.Search(query.value());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().answers.empty());
  ShardedPisEngine sharded_engine(&db, &sharded.value(), options);
  auto sharded_result = sharded_engine.Search(query.value());
  ASSERT_TRUE(sharded_result.ok());
  EXPECT_TRUE(sharded_result.value().answers.empty());

  // And the id space regrows cleanly: fresh adds pick up where ids left
  // off (sharded — slots are immortal) / from zero (flat — re-densified).
  auto fresh_flat = index.value().AddGraph(db.at(0));
  ASSERT_TRUE(fresh_flat.ok());
  EXPECT_EQ(fresh_flat.value(), 0);
  auto fresh_sharded = sharded.value().AddGraph(db.at(0));
  ASSERT_TRUE(fresh_sharded.ok());
  EXPECT_EQ(fresh_sharded.value(), 6);
  EXPECT_EQ(sharded.value().num_live(), 1);
}

TEST(CompactionEdgeCasesTest, DoubleCompactIsIdempotent) {
  MoleculeGeneratorOptions gopt;
  gopt.seed = 29;
  MoleculeGenerator gen(gopt);
  GraphDatabase db = gen.Generate(10);
  auto index = FragmentIndex::Build(db, {SingleEdgeFeature()}, {});
  ASSERT_TRUE(index.ok());
  for (int gid : {1, 3, 8}) ASSERT_TRUE(index.value().RemoveGraph(gid).ok());
  index.value().Compact();
  EXPECT_EQ(index.value().compaction_epoch(), 1u);
  const std::string once = SaveBytes(index.value());
  // The second compact sees zero tombstones and must change nothing.
  const std::vector<int> remap = index.value().Compact();
  for (int gid = 0; gid < index.value().db_size(); ++gid) {
    EXPECT_EQ(remap[gid], gid);
  }
  EXPECT_EQ(index.value().compaction_epoch(), 1u);
  EXPECT_EQ(SaveBytes(index.value()), once);

  FragmentIndexOptions iopt;
  iopt.max_fragment_edges = 2;
  auto sharded =
      ShardedFragmentIndex::Build(db, {SingleEdgeFeature()}, iopt, 2);
  ASSERT_TRUE(sharded.ok());
  for (int gid : {1, 3, 8}) {
    ASSERT_TRUE(sharded.value().RemoveGraph(gid).ok());
  }
  ASSERT_TRUE(sharded.value().Compact().ok());
  const int epoch = sharded.value().compaction_epoch();
  auto again = sharded.value().Compact();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), 0);
  EXPECT_EQ(sharded.value().compaction_epoch(), epoch);
}

}  // namespace
}  // namespace pis
