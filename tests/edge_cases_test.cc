// Degenerate-configuration behaviour: empty feature sets, empty databases,
// queries with no indexed fragments — the engines must degrade to correct
// (if unpruned) answers, never crash or drop results.
#include <gtest/gtest.h>

#include "core/naive_search.h"
#include "core/pis.h"
#include "core/topo_prune.h"
#include "graph/generator.h"
#include "graph/query_sampler.h"
#include "index/fragment_index.h"

namespace pis {
namespace {

Graph SingleEdgeFeature() {
  Graph edge;
  edge.AddVertex(kNoLabel);
  edge.AddVertex(kNoLabel);
  EXPECT_TRUE(edge.AddEdge(0, 1).ok());
  return edge;
}

TEST(EdgeCasesTest, EmptyFeatureSetDegradesToNoPruning) {
  MoleculeGeneratorOptions gopt;
  gopt.seed = 5;
  gopt.mean_vertices = 12;
  gopt.max_vertices = 25;
  MoleculeGenerator gen(gopt);
  GraphDatabase db = gen.Generate(10);
  auto index = FragmentIndex::Build(db, {}, {});
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index.value().num_classes(), 0);

  QuerySampler sampler(&db, {.seed = 2, .strip_vertex_labels = true});
  auto query = sampler.Sample(6);
  ASSERT_TRUE(query.ok());
  PisOptions options;
  options.sigma = 1;
  PisEngine engine(&db, &index.value(), options);
  auto result = engine.Search(query.value());
  ASSERT_TRUE(result.ok());
  // No fragments -> no pruning -> whole database verified; answers exact.
  EXPECT_EQ(result.value().candidates.size(), static_cast<size_t>(db.size()));
  SearchResult naive =
      NaiveSearch(db, query.value(), index.value().options().spec, 1);
  EXPECT_EQ(result.value().answers, naive.answers);

  TopoPruneEngine topo(&db, &index.value());
  auto topo_result = topo.Search(query.value(), 1);
  ASSERT_TRUE(topo_result.ok());
  EXPECT_EQ(topo_result.value().answers, naive.answers);
}

TEST(EdgeCasesTest, EmptyDatabase) {
  GraphDatabase db;
  auto index = FragmentIndex::Build(db, {SingleEdgeFeature()}, {});
  ASSERT_TRUE(index.ok());
  Graph query = SingleEdgeFeature();
  PisEngine engine(&db, &index.value(), {});
  auto result = engine.Search(query);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().answers.empty());
}

TEST(EdgeCasesTest, SingleEdgeQuery) {
  MoleculeGeneratorOptions gopt;
  gopt.seed = 9;
  gopt.mean_vertices = 10;
  gopt.max_vertices = 20;
  MoleculeGenerator gen(gopt);
  GraphDatabase db = gen.Generate(8);
  auto index = FragmentIndex::Build(db, {SingleEdgeFeature()}, {});
  ASSERT_TRUE(index.ok());
  Graph query = SingleEdgeFeature();
  query.SetEdgeLabel(0, 1);  // "single" bond label from the generator vocab
  PisOptions options;
  options.sigma = 0;
  PisEngine engine(&db, &index.value(), options);
  auto result = engine.Search(query);
  ASSERT_TRUE(result.ok());
  SearchResult naive = NaiveSearch(db, query, index.value().options().spec, 0);
  EXPECT_EQ(result.value().answers, naive.answers);
  EXPECT_FALSE(result.value().answers.empty());  // single bonds are ubiquitous
}

TEST(EdgeCasesTest, QueryLargerThanEveryGraph) {
  MoleculeGeneratorOptions gopt;
  gopt.seed = 11;
  gopt.mean_vertices = 10;
  gopt.max_vertices = 16;
  MoleculeGenerator gen(gopt);
  GraphDatabase db = gen.Generate(6);
  auto index = FragmentIndex::Build(db, {SingleEdgeFeature()}, {});
  ASSERT_TRUE(index.ok());
  // A long path no 16-vertex molecule can contain.
  Graph query;
  query.AddVertex(kNoLabel);
  for (int i = 0; i < 40; ++i) {
    query.AddVertex(kNoLabel);
    ASSERT_TRUE(query.AddEdge(i, i + 1, 1).ok());
  }
  PisOptions options;
  options.sigma = 3;
  PisEngine engine(&db, &index.value(), options);
  auto result = engine.Search(query);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().answers.empty());
}

TEST(EdgeCasesTest, MismatchedIndexAndDatabaseIsFatalInDebug) {
  MoleculeGenerator gen;
  GraphDatabase db = gen.Generate(4);
  auto index = FragmentIndex::Build(db, {SingleEdgeFeature()}, {});
  ASSERT_TRUE(index.ok());
  GraphDatabase other = gen.Generate(7);
  EXPECT_DEATH({ PisEngine engine(&other, &index.value(), {}); },
               "different database");
}

TEST(EdgeCasesTest, InvalidBuildOptionsRejected) {
  GraphDatabase db;
  FragmentIndexOptions bad;
  bad.min_fragment_edges = 0;
  EXPECT_FALSE(FragmentIndex::Build(db, {}, bad).ok());
  bad.min_fragment_edges = 5;
  bad.max_fragment_edges = 3;
  EXPECT_FALSE(FragmentIndex::Build(db, {}, bad).ok());
}

}  // namespace
}  // namespace pis
