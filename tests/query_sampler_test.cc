#include "graph/query_sampler.h"

#include <gtest/gtest.h>

#include "graph/generator.h"
#include "isomorphism/vf2.h"
#include "util/random.h"

namespace pis {
namespace {

TEST(SampleConnectedSubgraphTest, ExactEdgeCountAndConnected) {
  Rng rng(1);
  MoleculeGenerator gen;
  for (int trial = 0; trial < 20; ++trial) {
    Graph host = gen.Next();
    for (int m : {1, 4, 10}) {
      if (host.NumEdges() < m) continue;
      Result<Graph> sub = SampleConnectedSubgraph(host, m, &rng);
      ASSERT_TRUE(sub.ok()) << sub.status().ToString();
      EXPECT_EQ(sub.value().NumEdges(), m);
      EXPECT_TRUE(sub.value().IsConnected());
      // The sample is genuinely a subgraph of the host.
      MatchOptions labeled;
      labeled.match_vertex_labels = true;
      labeled.match_edge_labels = true;
      EXPECT_TRUE(IsSubgraph(sub.value(), host, labeled));
    }
  }
}

TEST(SampleConnectedSubgraphTest, RejectsBadSizes) {
  Graph g;
  g.AddVertex(1);
  g.AddVertex(1);
  ASSERT_TRUE(g.AddEdge(0, 1, 1).ok());
  Rng rng(2);
  EXPECT_FALSE(SampleConnectedSubgraph(g, 0, &rng).ok());
  EXPECT_FALSE(SampleConnectedSubgraph(g, 2, &rng).ok());
  EXPECT_TRUE(SampleConnectedSubgraph(g, 1, &rng).ok());
}

TEST(QuerySamplerTest, StripsVertexLabelsWhenAsked) {
  MoleculeGenerator gen;
  GraphDatabase db = gen.Generate(10);
  QuerySampler strip(&db, {.seed = 3, .strip_vertex_labels = true});
  Result<Graph> q = strip.Sample(6);
  ASSERT_TRUE(q.ok());
  for (VertexId v = 0; v < q.value().NumVertices(); ++v) {
    EXPECT_EQ(q.value().VertexLabel(v), kNoLabel);
  }
  QuerySampler keep(&db, {.seed = 3, .strip_vertex_labels = false});
  Result<Graph> q2 = keep.Sample(6);
  ASSERT_TRUE(q2.ok());
  bool any_labeled = false;
  for (VertexId v = 0; v < q2.value().NumVertices(); ++v) {
    if (q2.value().VertexLabel(v) != kNoLabel) any_labeled = true;
  }
  EXPECT_TRUE(any_labeled);
}

TEST(QuerySamplerTest, SampleSetSizeAndDeterminism) {
  MoleculeGenerator gen;
  GraphDatabase db = gen.Generate(15);
  QuerySampler a(&db, {.seed = 7});
  QuerySampler b(&db, {.seed = 7});
  auto qa = a.SampleSet(8, 12);
  auto qb = b.SampleSet(8, 12);
  ASSERT_TRUE(qa.ok() && qb.ok());
  ASSERT_EQ(qa.value().size(), 12u);
  for (size_t i = 0; i < qa.value().size(); ++i) {
    EXPECT_TRUE(qa.value()[i] == qb.value()[i]);
  }
}

TEST(QuerySamplerTest, FailsWhenNoHostBigEnough) {
  GraphDatabase db;
  Graph tiny;
  tiny.AddVertex(1);
  tiny.AddVertex(1);
  ASSERT_TRUE(tiny.AddEdge(0, 1, 1).ok());
  db.Add(tiny);
  QuerySampler sampler(&db);
  EXPECT_FALSE(sampler.Sample(100).ok());
}

TEST(QuerySamplerTest, EmptyDatabase) {
  GraphDatabase db;
  QuerySampler sampler(&db);
  EXPECT_FALSE(sampler.Sample(1).ok());
}

}  // namespace
}  // namespace pis
