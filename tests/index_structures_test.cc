// Unit + property tests for the per-class backends: trie, R-tree, VP-tree.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "distance/score_matrix.h"
#include "index/rtree.h"
#include "index/trie_index.h"
#include "index/vptree.h"
#include "util/random.h"

namespace pis {
namespace {

SequenceCostModel UnitModel(const ScoreMatrix& vm, const ScoreMatrix& em,
                            int vertex_positions) {
  SequenceCostModel model;
  model.vertex_scores = &vm;
  model.edge_scores = &em;
  model.num_vertex_positions = vertex_positions;
  return model;
}

TEST(LabelTrieTest, ExactAndRangeMatch) {
  LabelTrie trie(3);
  trie.Insert({1, 1, 1}, 0);
  trie.Insert({1, 1, 2}, 1);
  trie.Insert({2, 2, 2}, 2);
  trie.Finalize();
  ScoreMatrix unit = ScoreMatrix::Unit();
  SequenceCostModel model = UnitModel(unit, unit, 0);

  std::map<int, double> hits;
  trie.RangeQuery({1, 1, 1}, model, 0, [&](int gid, double d) {
    hits.emplace(gid, d);
  });
  EXPECT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits.count(0), 1u);

  hits.clear();
  trie.RangeQuery({1, 1, 1}, model, 1, [&](int gid, double d) {
    auto [it, inserted] = hits.emplace(gid, d);
    if (!inserted) it->second = std::min(it->second, d);
  });
  EXPECT_EQ(hits.size(), 2u);
  EXPECT_DOUBLE_EQ(hits[1], 1.0);

  hits.clear();
  trie.RangeQuery({1, 1, 1}, model, 3, [&](int gid, double d) {
    hits.emplace(gid, d);
  });
  EXPECT_EQ(hits.size(), 3u);
  EXPECT_DOUBLE_EQ(hits[2], 3.0);
}

TEST(LabelTrieTest, VertexAndEdgeMatricesSplit) {
  // 1 vertex position (free mutations) + 2 edge positions (unit cost).
  LabelTrie trie(3);
  trie.Insert({9, 1, 1}, 0);
  trie.Finalize();
  ScoreMatrix zero = ScoreMatrix::Zero();
  ScoreMatrix unit = ScoreMatrix::Unit();
  SequenceCostModel model = UnitModel(zero, unit, 1);
  double got = -1;
  trie.RangeQuery({1, 1, 2}, model, 5, [&](int, double d) { got = d; });
  EXPECT_DOUBLE_EQ(got, 1.0);  // vertex mismatch free, one edge mismatch
}

TEST(LabelTrieTest, PostingsDeduplicatedPerLeaf) {
  LabelTrie trie(2);
  for (int i = 0; i < 5; ++i) trie.Insert({1, 1}, 7);
  trie.Insert({1, 1}, 3);
  trie.Insert({1, 1}, 7);
  trie.Finalize();
  EXPECT_EQ(trie.NumPostings(), 2u);
  EXPECT_EQ(trie.NumLeaves(), 1u);
}

// Property: trie range query equals linear scan over stored sequences.
class TrieOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(TrieOracleTest, MatchesLinearScan) {
  Rng rng(GetParam());
  const int len = 2 + GetParam() % 5;
  const int alphabet = 3;
  LabelTrie trie(len);
  std::vector<std::pair<std::vector<Label>, int>> stored;
  for (int i = 0; i < 200; ++i) {
    std::vector<Label> seq(len);
    for (Label& s : seq) s = rng.UniformInt(1, alphabet);
    int gid = rng.UniformInt(0, 20);
    stored.emplace_back(seq, gid);
  }
  std::sort(stored.begin(), stored.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  for (const auto& [seq, gid] : stored) trie.Insert(seq, gid);
  trie.Finalize();

  ScoreMatrix unit = ScoreMatrix::Unit();
  SequenceCostModel model = UnitModel(unit, unit, 0);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Label> query(len);
    for (Label& s : query) s = rng.UniformInt(1, alphabet);
    double sigma = rng.UniformInt(0, len);
    // Oracle: min distance per gid by linear scan.
    std::map<int, double> expected;
    for (const auto& [seq, gid] : stored) {
      double d = 0;
      for (int i = 0; i < len; ++i) d += (seq[i] == query[i]) ? 0 : 1;
      if (d > sigma) continue;
      auto [it, inserted] = expected.emplace(gid, d);
      if (!inserted) it->second = std::min(it->second, d);
    }
    std::map<int, double> got;
    trie.RangeQuery(query, model, sigma, [&](int gid, double d) {
      auto [it, inserted] = got.emplace(gid, d);
      if (!inserted) it->second = std::min(it->second, d);
    });
    EXPECT_EQ(got, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieOracleTest, ::testing::Range(0, 20));

TEST(RTreeTest, BasicRangeQuery) {
  RTree tree(2);
  tree.Insert({0, 0}, 1);
  tree.Insert({1, 0}, 2);
  tree.Insert({5, 5}, 3);
  std::map<int, double> hits;
  tree.RangeQueryL1({0, 0}, 1.0, [&](int payload, double d) {
    hits.emplace(payload, d);
  });
  EXPECT_EQ(hits.size(), 2u);
  EXPECT_DOUBLE_EQ(hits[1], 0.0);
  EXPECT_DOUBLE_EQ(hits[2], 1.0);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeTest, GrowsAndSplits) {
  RTree tree(1, 4);
  for (int i = 0; i < 200; ++i) tree.Insert({static_cast<double>(i)}, i);
  EXPECT_EQ(tree.size(), 200u);
  EXPECT_GT(tree.Height(), 1);
  EXPECT_TRUE(tree.CheckInvariants());
  int count = 0;
  tree.RangeQueryL1({100.0}, 4.5, [&](int, double) { ++count; });
  EXPECT_EQ(count, 9);  // 96..104
}

TEST(RTreeTest, DuplicatePointsAllowed) {
  RTree tree(2);
  for (int i = 0; i < 10; ++i) tree.Insert({1.0, 2.0}, i);
  int count = 0;
  tree.RangeQueryL1({1.0, 2.0}, 0.0, [&](int, double) { ++count; });
  EXPECT_EQ(count, 10);
}

// Property: R-tree L1 range query equals linear scan on random points.
class RTreeOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(RTreeOracleTest, MatchesLinearScan) {
  Rng rng(100 + GetParam());
  const int dims = 1 + GetParam() % 5;
  RTree tree(dims, 4 + GetParam() % 13);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 300; ++i) {
    std::vector<double> p(dims);
    for (double& x : p) x = rng.UniformDouble(0, 10);
    tree.Insert(p, i);
    points.push_back(std::move(p));
  }
  ASSERT_TRUE(tree.CheckInvariants());
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> center(dims);
    for (double& x : center) x = rng.UniformDouble(0, 10);
    double radius = rng.UniformDouble(0, 6);
    std::map<int, double> expected;
    for (int i = 0; i < 300; ++i) {
      double d = 0;
      for (int k = 0; k < dims; ++k) d += std::abs(points[i][k] - center[k]);
      if (d <= radius) expected.emplace(i, d);
    }
    std::map<int, double> got;
    tree.RangeQueryL1(center, radius, [&](int payload, double d) {
      got.emplace(payload, d);
    });
    ASSERT_EQ(got.size(), expected.size());
    for (const auto& [payload, d] : expected) {
      ASSERT_EQ(got.count(payload), 1u);
      EXPECT_NEAR(got[payload], d, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RTreeOracleTest, ::testing::Range(0, 20));

TEST(VpTreeTest, EmptyAndSingle) {
  VpTree empty(0, {}, [](size_t, size_t) { return 0.0; });
  int calls = 0;
  empty.RangeQuery([](size_t) { return 0.0; }, 10, [&](int, double) { ++calls; });
  EXPECT_EQ(calls, 0);

  VpTree one(1, {42}, [](size_t, size_t) { return 0.0; });
  one.RangeQuery([](size_t) { return 0.5; }, 1.0, [&](int payload, double d) {
    ++calls;
    EXPECT_EQ(payload, 42);
    EXPECT_DOUBLE_EQ(d, 0.5);
  });
  EXPECT_EQ(calls, 1);
}

// Property: VP-tree range query equals linear scan under L1.
class VpTreeOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(VpTreeOracleTest, MatchesLinearScan) {
  Rng rng(200 + GetParam());
  const int dims = 3;
  const int n = 250;
  std::vector<std::vector<double>> points(n, std::vector<double>(dims));
  std::vector<int> payloads(n);
  for (int i = 0; i < n; ++i) {
    for (double& x : points[i]) x = rng.UniformDouble(0, 10);
    payloads[i] = i;
  }
  auto l1 = [&](const std::vector<double>& a, const std::vector<double>& b) {
    double d = 0;
    for (int k = 0; k < dims; ++k) d += std::abs(a[k] - b[k]);
    return d;
  };
  VpTree tree(n, payloads,
              [&](size_t a, size_t b) { return l1(points[a], points[b]); });
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> center(dims);
    for (double& x : center) x = rng.UniformDouble(0, 10);
    double radius = rng.UniformDouble(0, 8);
    std::map<int, double> expected;
    for (int i = 0; i < n; ++i) {
      double d = l1(points[i], center);
      if (d <= radius) expected.emplace(i, d);
    }
    std::map<int, double> got;
    tree.RangeQuery([&](size_t item) { return l1(points[item], center); },
                    radius, [&](int payload, double d) { got.emplace(payload, d); });
    EXPECT_EQ(got.size(), expected.size());
    for (const auto& [payload, d] : expected) {
      ASSERT_EQ(got.count(payload), 1u);
      EXPECT_NEAR(got[payload], d, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VpTreeOracleTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace pis
