// Binary serde primitives + index persistence round trips.
#include "util/serde.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "distance/score_matrix.h"
#include "graph/generator.h"
#include "graph/query_sampler.h"
#include "index/fragment_index.h"
#include "index/rtree.h"
#include "index/trie_index.h"
#include "mining/gspan.h"
#include "util/random.h"

namespace pis {
namespace {

TEST(SerdeTest, PrimitiveRoundTrip) {
  std::stringstream buf;
  BinaryWriter writer(buf);
  writer.U8(7);
  writer.U32(0xdeadbeef);
  writer.U64(1ull << 40);
  writer.I32(-42);
  writer.F64(3.25);
  writer.Str("hello");
  writer.VecInt({1, -2, 3});
  writer.VecF64({0.5, -1.5});
  ASSERT_TRUE(writer.ok());

  BinaryReader reader(buf);
  EXPECT_EQ(reader.U8(), 7);
  EXPECT_EQ(reader.U32(), 0xdeadbeefu);
  EXPECT_EQ(reader.U64(), 1ull << 40);
  EXPECT_EQ(reader.I32(), -42);
  EXPECT_DOUBLE_EQ(reader.F64(), 3.25);
  EXPECT_EQ(reader.Str(), "hello");
  EXPECT_EQ(reader.VecInt(), (std::vector<int>{1, -2, 3}));
  EXPECT_EQ(reader.VecF64(), (std::vector<double>{0.5, -1.5}));
  EXPECT_TRUE(reader.ok());
}

TEST(SerdeTest, TruncationLatchesFailure) {
  std::stringstream buf;
  BinaryWriter writer(buf);
  writer.U32(5);
  BinaryReader reader(buf);
  reader.U32();
  reader.U64();  // past the end
  EXPECT_FALSE(reader.ok());
  EXPECT_FALSE(reader.Check("x").ok());
  // Latch stays down.
  reader.U8();
  EXPECT_FALSE(reader.ok());
}

TEST(SerdeTest, CorruptLengthRejected) {
  std::stringstream buf;
  BinaryWriter writer(buf);
  writer.U64(~0ull);  // absurd container length
  BinaryReader reader(buf);
  std::string s = reader.Str();
  EXPECT_FALSE(reader.ok());
}

TEST(ScoreMatrixSerdeTest, RoundTrip) {
  ScoreMatrix m(2.0);
  ASSERT_TRUE(m.Set(1, 2, 0.25).ok());
  ASSERT_TRUE(m.Set(3, 4, 1.75).ok());
  std::stringstream buf;
  BinaryWriter writer(buf);
  m.Serialize(&writer);
  BinaryReader reader(buf);
  auto back = ScoreMatrix::Deserialize(&reader);
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(back.value().Cost(1, 2), 0.25);
  EXPECT_DOUBLE_EQ(back.value().Cost(4, 3), 1.75);
  EXPECT_DOUBLE_EQ(back.value().Cost(1, 9), 2.0);
  EXPECT_DOUBLE_EQ(back.value().Cost(5, 5), 0.0);
}

TEST(TrieSerdeTest, RoundTripPreservesRangeQueries) {
  Rng rng(1);
  LabelTrie trie(4);
  for (int gid = 0; gid < 30; ++gid) {
    for (int k = 0; k < 10; ++k) {
      std::vector<Label> seq(4);
      for (Label& s : seq) s = rng.UniformInt(1, 3);
      trie.Insert(seq, gid);
    }
  }
  trie.Finalize();
  std::stringstream buf;
  BinaryWriter writer(buf);
  trie.Serialize(&writer);
  BinaryReader reader(buf);
  auto back = LabelTrie::Deserialize(&reader);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().NumNodes(), trie.NumNodes());
  EXPECT_EQ(back.value().NumPostings(), trie.NumPostings());

  ScoreMatrix unit = ScoreMatrix::Unit();
  SequenceCostModel model{&unit, &unit, 0};
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Label> q(4);
    for (Label& s : q) s = rng.UniformInt(1, 3);
    std::map<int, double> a;
    std::map<int, double> b;
    auto collect = [](std::map<int, double>* out) {
      return [out](int gid, double d) {
        auto [it, ok] = out->emplace(gid, d);
        if (!ok) it->second = std::min(it->second, d);
      };
    };
    trie.RangeQuery(q, model, 2, collect(&a));
    back.value().RangeQuery(q, model, 2, collect(&b));
    EXPECT_EQ(a, b);
  }
}

TEST(RTreeSerdeTest, RoundTripPreservesContents) {
  Rng rng(2);
  RTree tree(3);
  for (int i = 0; i < 500; ++i) {
    tree.Insert({rng.UniformDouble(0, 5), rng.UniformDouble(0, 5),
                 rng.UniformDouble(0, 5)},
                i);
  }
  std::stringstream buf;
  BinaryWriter writer(buf);
  tree.Serialize(&writer);
  BinaryReader reader(buf);
  auto back = RTree::Deserialize(&reader);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().size(), tree.size());
  EXPECT_TRUE(back.value().CheckInvariants());
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> center = {rng.UniformDouble(0, 5), rng.UniformDouble(0, 5),
                                  rng.UniformDouble(0, 5)};
    std::map<int, double> a;
    std::map<int, double> b;
    tree.RangeQueryL1(center, 2, [&](int p, double d) { a.emplace(p, d); });
    back.value().RangeQueryL1(center, 2, [&](int p, double d) { b.emplace(p, d); });
    EXPECT_EQ(a, b);
  }
}

class FragmentIndexSerdeTest : public ::testing::TestWithParam<int> {};

TEST_P(FragmentIndexSerdeTest, SaveLoadServesIdenticalQueries) {
  const int variant = GetParam();
  MoleculeGeneratorOptions gopt;
  gopt.seed = 200 + variant;
  gopt.mean_vertices = 14;
  gopt.max_vertices = 40;
  MoleculeGenerator gen(gopt);
  GraphDatabase db = gen.Generate(20);
  GraphDatabase skeletons;
  for (const Graph& g : db.graphs()) skeletons.Add(g.Skeleton());
  GspanOptions mine;
  mine.min_support = 3;
  mine.max_edges = 4;
  auto patterns = MineFrequentSubgraphs(skeletons, mine);
  ASSERT_TRUE(patterns.ok());
  std::vector<Graph> features;
  for (const Pattern& p : patterns.value()) features.push_back(p.graph);

  FragmentIndexOptions options;
  options.max_fragment_edges = 4;
  switch (variant % 3) {
    case 0:
      options.spec = DistanceSpec::EdgeMutation();
      break;
    case 1:
      options.spec = DistanceSpec::EdgeLinear();
      break;
    case 2:
      options.spec = DistanceSpec::EdgeMutation();
      options.backend = ClassBackend::kVpTree;
      break;
  }
  auto index = FragmentIndex::Build(db, features, options);
  ASSERT_TRUE(index.ok());

  std::stringstream buf;
  ASSERT_TRUE(index.value().Save(buf).ok());
  auto loaded = FragmentIndex::Load(buf);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_classes(), index.value().num_classes());
  EXPECT_EQ(loaded.value().db_size(), index.value().db_size());

  QuerySampler sampler(&db, {.seed = 5, .strip_vertex_labels = true});
  double sigma = variant % 3 == 1 ? 0.2 : 2.0;
  for (int trial = 0; trial < 5; ++trial) {
    auto fragment = sampler.Sample(3);
    ASSERT_TRUE(fragment.ok());
    if (!index.value().HasClass(fragment.value())) {
      EXPECT_FALSE(loaded.value().HasClass(fragment.value()));
      continue;
    }
    std::map<int, double> a;
    std::map<int, double> b;
    auto collect = [](std::map<int, double>* out) {
      return [out](int gid, double d) {
        auto [it, ok] = out->emplace(gid, d);
        if (!ok) it->second = std::min(it->second, d);
      };
    };
    ASSERT_TRUE(index.value().RangeQuery(fragment.value(), sigma, collect(&a)).ok());
    ASSERT_TRUE(loaded.value().RangeQuery(fragment.value(), sigma, collect(&b)).ok());
    EXPECT_EQ(a, b);
  }
  // Containment lists survive (topoPrune works on a loaded index).
  for (int c = 0; c < index.value().num_classes(); ++c) {
    const std::string& key = index.value().class_at(c).key();
    bool found = false;
    for (int c2 = 0; c2 < loaded.value().num_classes(); ++c2) {
      if (loaded.value().class_at(c2).key() == key) {
        EXPECT_EQ(loaded.value().class_at(c2).containing_graphs(),
                  index.value().class_at(c).containing_graphs());
        found = true;
      }
    }
    EXPECT_TRUE(found) << "class " << key << " lost in round trip";
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, FragmentIndexSerdeTest, ::testing::Range(0, 6));

TEST(FragmentIndexSerdeTest, RejectsGarbage) {
  std::stringstream buf;
  buf << "this is not an index file at all";
  EXPECT_EQ(FragmentIndex::Load(buf).status().code(), StatusCode::kParseError);
}

TEST(FragmentIndexSerdeTest, FileRoundTrip) {
  MoleculeGenerator gen;
  GraphDatabase db = gen.Generate(5);
  Graph edge;
  edge.AddVertex(kNoLabel);
  edge.AddVertex(kNoLabel);
  ASSERT_TRUE(edge.AddEdge(0, 1).ok());
  auto index = FragmentIndex::Build(db, {edge}, {});
  ASSERT_TRUE(index.ok());
  std::string path = ::testing::TempDir() + "/pis_index.bin";
  ASSERT_TRUE(index.value().SaveFile(path).ok());
  auto loaded = FragmentIndex::LoadFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_classes(), 1);
  EXPECT_EQ(FragmentIndex::LoadFile("/nonexistent.bin").status().code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace pis
