// Tests for the verifier, naive/topoPrune engines, query-fragment
// enumeration, and QueryStats reporting.
#include <gtest/gtest.h>

#include "core/naive_search.h"
#include "core/query_fragments.h"
#include "core/stats.h"
#include "core/topo_prune.h"
#include "core/verifier.h"
#include "distance/superimposed.h"
#include "graph/generator.h"
#include "graph/query_sampler.h"
#include "mining/gspan.h"

namespace pis {
namespace {

Graph Cycle(int n, Label elabel = 1) {
  Graph g;
  for (int i = 0; i < n; ++i) g.AddVertex(1);
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(g.AddEdge(i, (i + 1) % n, elabel).ok());
  }
  return g;
}

TEST(VerifierTest, FiltersBySigmaAndReportsDistances) {
  GraphDatabase db;
  db.Add(Cycle(6, 1));  // distance 0
  Graph one = Cycle(6, 1);
  one.SetEdgeLabel(0, 2);
  db.Add(one);  // distance 1
  Graph three = Cycle(6, 1);
  three.SetEdgeLabel(0, 2);
  three.SetEdgeLabel(2, 2);
  three.SetEdgeLabel(4, 2);
  db.Add(three);  // distance 3
  db.Add(Cycle(5, 1));  // no embedding

  Graph query = Cycle(6, 1);
  VerifyResult result =
      VerifyCandidates(db, query, {0, 1, 2, 3}, DistanceSpec::EdgeMutation(), 1);
  EXPECT_EQ(result.answers, (std::vector<int>{0, 1}));
  ASSERT_EQ(result.distances.size(), 2u);
  EXPECT_DOUBLE_EQ(result.distances[0], 0.0);
  EXPECT_DOUBLE_EQ(result.distances[1], 1.0);
}

TEST(VerifierTest, RespectsCandidateSubset) {
  GraphDatabase db;
  db.Add(Cycle(6, 1));
  db.Add(Cycle(6, 1));
  Graph query = Cycle(6, 1);
  VerifyResult result =
      VerifyCandidates(db, query, {1}, DistanceSpec::EdgeMutation(), 2);
  EXPECT_EQ(result.answers, (std::vector<int>{1}));
}

TEST(NaiveSearchTest, FindsAllWithinSigma) {
  GraphDatabase db;
  db.Add(Cycle(6, 1));
  Graph mutated = Cycle(6, 1);
  mutated.SetEdgeLabel(0, 2);
  db.Add(mutated);
  db.Add(Cycle(4, 1));
  Graph query = Cycle(6, 1);
  SearchResult r0 = NaiveSearch(db, query, DistanceSpec::EdgeMutation(), 0);
  EXPECT_EQ(r0.answers, (std::vector<int>{0}));
  SearchResult r1 = NaiveSearch(db, query, DistanceSpec::EdgeMutation(), 1);
  EXPECT_EQ(r1.answers, (std::vector<int>{0, 1}));
  EXPECT_EQ(r1.candidates.size(), 3u);
  EXPECT_EQ(r1.stats.answers, 2u);
}

struct SmallIndexFixture {
  GraphDatabase db;
  Result<FragmentIndex> index = Status::Internal("unbuilt");

  SmallIndexFixture() {
    MoleculeGeneratorOptions gopt;
    gopt.seed = 77;
    gopt.mean_vertices = 14;
    gopt.max_vertices = 40;
    MoleculeGenerator gen(gopt);
    db = gen.Generate(25);
    GraphDatabase skeletons;
    for (const Graph& g : db.graphs()) skeletons.Add(g.Skeleton());
    GspanOptions mine;
    mine.min_support = 3;
    mine.max_edges = 4;
    auto patterns = MineFrequentSubgraphs(skeletons, mine);
    EXPECT_TRUE(patterns.ok());
    std::vector<Graph> features;
    for (const Pattern& p : patterns.value()) features.push_back(p.graph);
    FragmentIndexOptions opts;
    opts.max_fragment_edges = 4;
    index = FragmentIndex::Build(db, features, opts);
    EXPECT_TRUE(index.ok());
  }
};

TEST(QueryFragmentsTest, EnumeratesOnlyIndexedFragments) {
  SmallIndexFixture fx;
  QuerySampler sampler(&fx.db, {.seed = 2});
  auto query = sampler.Sample(8);
  ASSERT_TRUE(query.ok());
  auto fragments = EnumerateIndexedQueryFragments(fx.index.value(), query.value());
  ASSERT_TRUE(fragments.ok());
  EXPECT_FALSE(fragments.value().empty());
  for (const QueryFragment& qf : fragments.value()) {
    EXPECT_GE(qf.prepared.class_id, 0);
    EXPECT_LT(qf.prepared.class_id, fx.index.value().num_classes());
    EXPECT_LE(qf.prepared.num_edges, 4);
    EXPECT_TRUE(std::is_sorted(qf.vertices.begin(), qf.vertices.end()));
    // Vertex count consistent with the class skeleton.
    EXPECT_EQ(static_cast<int>(qf.vertices.size()),
              fx.index.value().class_at(qf.prepared.class_id).num_vertices());
  }
}

TEST(QueryFragmentsTest, MaxFragmentsKeepsLargest) {
  SmallIndexFixture fx;
  QuerySampler sampler(&fx.db, {.seed = 4});
  auto query = sampler.Sample(10);
  ASSERT_TRUE(query.ok());
  auto all = EnumerateIndexedQueryFragments(fx.index.value(), query.value());
  ASSERT_TRUE(all.ok());
  ASSERT_GT(all.value().size(), 5u);
  auto capped =
      EnumerateIndexedQueryFragments(fx.index.value(), query.value(), 5);
  ASSERT_TRUE(capped.ok());
  ASSERT_EQ(capped.value().size(), 5u);
  int min_kept = capped.value().back().prepared.num_edges;
  for (const QueryFragment& qf : capped.value()) {
    min_kept = std::min(min_kept, qf.prepared.num_edges);
  }
  // Every kept fragment is at least as large as the largest dropped one
  // would allow: the kept set is a prefix of the size-sorted list.
  int max_possible = 0;
  for (const QueryFragment& qf : all.value()) {
    max_possible = std::max(max_possible, qf.prepared.num_edges);
  }
  EXPECT_EQ(capped.value().front().prepared.num_edges, max_possible);
}

TEST(TopoPruneTest, CandidatesContainStructureMatches) {
  SmallIndexFixture fx;
  TopoPruneEngine topo(&fx.db, &fx.index.value());
  QuerySampler sampler(&fx.db, {.seed = 8});
  auto query = sampler.Sample(8);
  ASSERT_TRUE(query.ok());
  QueryStats stats;
  auto candidates = topo.Filter(query.value(), &stats);
  ASSERT_TRUE(candidates.ok());
  EXPECT_EQ(stats.candidates_final, candidates.value().size());
  // Completeness: every graph actually containing the structure survives.
  for (int gid = 0; gid < fx.db.size(); ++gid) {
    if (ContainsStructure(query.value(), fx.db.at(gid))) {
      EXPECT_TRUE(std::binary_search(candidates.value().begin(),
                                     candidates.value().end(), gid))
          << "topoPrune dropped a true structural match " << gid;
    }
  }
}

TEST(StatsTest, ToStringMentionsCoreCounters) {
  QueryStats stats;
  stats.fragments_enumerated = 12;
  stats.candidates_final = 34;
  std::string s = stats.ToString();
  EXPECT_NE(s.find("fragments=12"), std::string::npos);
  EXPECT_NE(s.find("cand_final=34"), std::string::npos);
}

}  // namespace
}  // namespace pis
