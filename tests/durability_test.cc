// Crash recovery and group commit on the serving host. The durability
// contract under test: once AddGraph/RemoveGraph returns OK, the write is
// in the fsynced WAL, so "killing" the host (discarding all in-memory
// state) and restarting from disk + replay must reproduce a host that is
// differentially equal to one that never crashed — same stats, same
// answers, query for query. The group-commit suite proves concurrent
// writers coalesce (fewer snapshots than ops) while every caller still
// gets its own correct gid.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine_test_util.h"
#include "graph/generator.h"
#include "graph/io.h"
#include "server/engine_host.h"
#include "server/wal.h"
#include "util/json.h"
#include "util/mutex.h"

namespace pis {
namespace {

using testing::EngineFixture;
using testing::SampleQueries;

/// The persistent world of one test: an on-disk snapshot (index dir + db
/// file) plus a WAL directory, and OpenHost() — the same load → replay →
/// attach sequence pis_server runs at startup. "Crashing" a host is just
/// destroying it (or never checkpointing): everything in memory is lost
/// and the next OpenHost sees only what was durable.
struct DurabilityFixture {
  EngineFixture fx;
  Result<ShardedFragmentIndex> sharded = Status::Internal("unbuilt");
  GraphDatabase pool;  // graphs the tests add through the host
  std::vector<Graph> queries;
  PisOptions options;
  std::filesystem::path root;

  explicit DurabilityFixture(const std::string& tag, int db_size = 20,
                             uint64_t seed = 7, int pool_size = 12)
      : fx(db_size, seed) {
    EXPECT_TRUE(fx.index.ok());
    sharded = ShardedFragmentIndex::Build(fx.db, fx.features,
                                          fx.index.value().options(), 3);
    EXPECT_TRUE(sharded.ok());
    MoleculeGeneratorOptions gopt;
    gopt.seed = seed + 1000;
    gopt.mean_vertices = 14;
    gopt.max_vertices = 40;
    pool = MoleculeGenerator(gopt).Generate(pool_size);
    queries = SampleQueries(fx.db, 5, 7, seed + 1);
    options.sigma = 2.0;

    root = std::filesystem::path(::testing::TempDir()) /
           ("pis_durability_" + tag);
    std::filesystem::remove_all(root);
    std::filesystem::create_directories(root);
    EXPECT_TRUE(sharded.value().SaveDir(index_dir()).ok());
    EXPECT_TRUE(WriteGraphDatabaseFile(fx.db, db_path()).ok());
  }

  ~DurabilityFixture() { std::filesystem::remove_all(root); }

  std::string index_dir() const { return (root / "index").string(); }
  std::string db_path() const { return (root / "db.txt").string(); }
  std::string wal_dir() const { return (root / "wal").string(); }
  std::string wal_log() const {
    return (std::filesystem::path(wal_dir()) / "wal.log").string();
  }

  /// Load snapshot → open WAL → replay → host + AttachWal + checkpoint
  /// config, exactly like pis_server startup.
  std::unique_ptr<EngineHost> OpenHost() {
    auto db = ReadGraphDatabaseFile(db_path());
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    auto index = ShardedFragmentIndex::LoadDir(index_dir());
    EXPECT_TRUE(index.ok()) << index.status().ToString();
    auto wal = WriteAheadLog::Open(wal_dir());
    EXPECT_TRUE(wal.ok()) << wal.status().ToString();
    Status replayed = wal.value().Replay(&db.value(), &index.value());
    EXPECT_TRUE(replayed.ok()) << replayed.ToString();
    auto host = std::make_unique<EngineHost>(std::move(db.value()),
                                             index.MoveValue(), options);
    EXPECT_TRUE(
        host->AttachWal(std::make_unique<WriteAheadLog>(wal.MoveValue()))
            .ok());
    EngineHost::CheckpointConfig ckpt;
    ckpt.index_dir = index_dir();
    ckpt.db_path = db_path();
    EXPECT_TRUE(host->EnableCheckpoints(ckpt).ok());
    return host;
  }
};

/// Recovered-equals-survivor check: same shape stats and identical answers
/// on every fixture query plus every added pool graph (self-queries surface
/// the added gid at sigma 0 distance).
void ExpectHostsEquivalent(DurabilityFixture& f, EngineHost& survivor,
                           EngineHost& recovered) {
  EngineHost::HostStats a = survivor.Stats();
  EngineHost::HostStats b = recovered.Stats();
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.db_slots, b.db_slots);
  EXPECT_EQ(a.live, b.live);
  EXPECT_EQ(a.removed, b.removed);
  std::vector<Graph> probes = f.queries;
  for (const Graph& g : f.pool.graphs()) probes.push_back(g);
  for (size_t qi = 0; qi < probes.size(); ++qi) {
    auto want = survivor.Search(probes[qi]);
    auto got = recovered.Search(probes[qi]);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(want.value().answers, got.value().answers) << "probe " << qi;
    EXPECT_EQ(want.value().candidates, got.value().candidates)
        << "probe " << qi;
  }
}

TEST(DurabilityTest, ReplayRecoversEveryAckedWriteAfterCrash) {
  DurabilityFixture f("replay");
  std::unique_ptr<EngineHost> live = f.OpenHost();

  // A mixed acked schedule: 8 adds, then removes of both original and
  // freshly added graphs. Nothing is ever saved — the WAL is the only
  // persistence these mutations get.
  std::vector<int> added;
  for (int i = 0; i < 8; ++i) {
    auto gid = live->AddGraph(f.pool.at(i));
    ASSERT_TRUE(gid.ok()) << gid.status().ToString();
    EXPECT_EQ(gid.value(), f.fx.db.size() + i);
    added.push_back(gid.value());
  }
  for (int gid : {1, 3, added[0], 5, added[2]}) {
    ASSERT_TRUE(live->RemoveGraph(gid).ok());
  }
  EngineHost::HostStats before = live->Stats();
  EXPECT_EQ(before.wal_records, 13u);
  EXPECT_GT(before.wal_bytes, 8u);

  // kill -9: a second host rebuilt purely from disk must be identical.
  std::unique_ptr<EngineHost> recovered = f.OpenHost();
  EXPECT_EQ(recovered->Stats().wal_records, 13u);
  ExpectHostsEquivalent(f, *live, *recovered);

  // The added graphs that are still live answer their own exact query with
  // their assigned gid in the recovered host.
  for (size_t i = 0; i < added.size(); ++i) {
    if (i == 0 || i == 2) continue;  // removed above
    auto r = recovered->Search(f.pool.at(i));
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(std::find(r.value().answers.begin(), r.value().answers.end(),
                          added[i]) != r.value().answers.end())
        << "acked gid " << added[i] << " lost in recovery";
  }
}

TEST(DurabilityTest, ReplayIsIdempotentOverANewerSnapshot) {
  DurabilityFixture f("idempotent");
  std::unique_ptr<EngineHost> live = f.OpenHost();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(live->AddGraph(f.pool.at(i)).ok());
  }
  ASSERT_TRUE(live->RemoveGraph(2).ok());
  // Save() persists the post-mutation snapshot WITHOUT truncating the WAL —
  // the footprint of a crash after a checkpoint's file swaps but before its
  // log truncate. Every replayed record is then already applied.
  ASSERT_TRUE(live->Save(f.index_dir(), f.db_path()).ok());
  std::unique_ptr<EngineHost> recovered = f.OpenHost();
  ExpectHostsEquivalent(f, *live, *recovered);
}

TEST(DurabilityTest, TornTailFromCrashMidAppendIsDiscarded) {
  DurabilityFixture f("torn");
  std::unique_ptr<EngineHost> live = f.OpenHost();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(live->AddGraph(f.pool.at(i)).ok());
  }
  ASSERT_TRUE(live->RemoveGraph(0).ok());
  // Crash mid-append of an op that was never acked: a partial frame at the
  // tail. Recovery must keep every acked record and drop the tail.
  {
    std::ofstream out(f.wal_log(), std::ios::binary | std::ios::app);
    out.write("\x80\x00\x00\x00\xde\xad", 6);
    ASSERT_TRUE(out.good());
  }
  std::unique_ptr<EngineHost> recovered = f.OpenHost();
  EXPECT_EQ(recovered->Stats().wal_records, 4u);
  ExpectHostsEquivalent(f, *live, *recovered);
}

TEST(DurabilityTest, CheckpointTruncatesWalAndRecoveryUsesBoth) {
  DurabilityFixture f("checkpoint");
  std::unique_ptr<EngineHost> live = f.OpenHost();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(live->AddGraph(f.pool.at(i)).ok());
  }
  ASSERT_TRUE(live->RemoveGraph(1).ok());
  ASSERT_TRUE(live->Checkpoint().ok());
  {
    EngineHost::HostStats s = live->Stats();
    EXPECT_EQ(s.checkpoints, 1u);
    EXPECT_EQ(s.wal_records, 0u) << "checkpoint left covered records behind";
  }
  // Post-checkpoint writes live only in the WAL again.
  ASSERT_TRUE(live->AddGraph(f.pool.at(3)).ok());
  ASSERT_TRUE(live->RemoveGraph(4).ok());
  EXPECT_EQ(live->Stats().wal_records, 2u);

  // Recovery = checkpointed snapshot + the 2-record log suffix.
  std::unique_ptr<EngineHost> recovered = f.OpenHost();
  ExpectHostsEquivalent(f, *live, *recovered);

  // Epochs stay monotone across the restart: the next write on the
  // recovered host must not reuse a logged epoch (TruncateThrough keys on
  // them).
  uint64_t epoch = 0;
  ASSERT_TRUE(recovered->AddGraph(f.pool.at(4), &epoch).ok());
  EXPECT_GT(epoch, live->Stats().epoch);
}

TEST(DurabilityTest, ReplayRejectsALogThatDoesNotContinueTheSnapshot) {
  DurabilityFixture f("gid_gap");
  {
    auto wal = WriteAheadLog::Open(f.wal_dir());
    ASSERT_TRUE(wal.ok());
    // An add far past the snapshot's size: a gid gap means this log belongs
    // to a different (newer) snapshot lineage — applying it would fabricate
    // state, so Replay must refuse rather than guess.
    WalRecord rec;
    rec.op = WalRecord::Op::kAdd;
    rec.epoch = 1;
    rec.gid = f.fx.db.size() + 5;
    rec.graph_text = FormatGraph(f.pool.at(0), rec.gid);
    std::vector<WalRecord> batch = {rec};
    ASSERT_TRUE(wal.value().Append(batch).ok());
  }
  auto db = ReadGraphDatabaseFile(f.db_path());
  ASSERT_TRUE(db.ok());
  auto index = ShardedFragmentIndex::LoadDir(f.index_dir());
  ASSERT_TRUE(index.ok());
  auto wal = WriteAheadLog::Open(f.wal_dir());
  ASSERT_TRUE(wal.ok());
  Status replayed = wal.value().Replay(&db.value(), &index.value());
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.code(), StatusCode::kInvalidArgument);
}

TEST(DurabilityTest, GroupCommitCoalescesConcurrentWriters) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20;
  DurabilityFixture f("group_commit", /*db_size=*/20, /*seed=*/7,
                      /*pool_size=*/kThreads * kOpsPerThread);
  // The WAL fsync in the leader's commit path is exactly the latency window
  // that lets followers pile onto the queue — run the concurrency test with
  // durability on, like production.
  std::unique_ptr<EngineHost> host = f.OpenHost();
  const int base_slots = host->Stats().db_slots;
  const uint64_t epoch_before = host->snapshot()->epoch;

  uint64_t max_batch = 0;
  int round = 0;
  int total_ops = 0;
  std::vector<std::pair<int, const Graph*>> acked;  // gid -> submitted graph
  Mutex acked_mu;
  // Batching is timing-dependent; with 8 writers racing a leader that holds
  // writer_mu_ across an fsync, a >1 batch is near-certain, but retry a few
  // rounds before declaring failure.
  while (max_batch <= 1 && round < 5) {
    std::atomic<int> ready{0};
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&, t] {
        ready.fetch_add(1);
        while (ready.load() < kThreads) {
        }  // start barrier: maximize overlap
        for (int i = 0; i < kOpsPerThread; ++i) {
          const Graph& g = f.pool.at(t * kOpsPerThread + i);
          auto gid = host->AddGraph(g);
          ASSERT_TRUE(gid.ok()) << gid.status().ToString();
          MutexLock lock(&acked_mu);
          acked.emplace_back(gid.value(), &g);
        }
      });
    }
    for (std::thread& w : writers) w.join();
    total_ops += kThreads * kOpsPerThread;
    max_batch = host->Stats().group_commit_max_batch;
    // A retry round re-adds the same pool graphs, which is fine: the db
    // admits duplicates and every add still gets a fresh unique gid.
    ++round;
  }

  EngineHost::HostStats stats = host->Stats();
  ASSERT_EQ(static_cast<int>(acked.size()), total_ops);

  // Every waiter got its own correct gid: ids are unique, dense, and the
  // published database holds each caller's exact graph at the id it was
  // handed back.
  std::vector<int> gids;
  gids.reserve(acked.size());
  for (const auto& [gid, g] : acked) gids.push_back(gid);
  std::sort(gids.begin(), gids.end());
  for (int i = 0; i < total_ops; ++i) {
    ASSERT_EQ(gids[i], base_slots + i) << "gids must be unique and dense";
  }
  std::shared_ptr<const EngineHost::Snapshot> snap = host->snapshot();
  for (const auto& [gid, g] : acked) {
    EXPECT_TRUE(snap->db->at(gid) == *g)
        << "gid " << gid << " does not hold the graph its caller submitted";
  }

  // Coalescing: N ops landed in fewer than N snapshots, and the epoch moved
  // once per batch, not once per op.
  EXPECT_EQ(stats.group_commit_ops, static_cast<uint64_t>(total_ops));
  EXPECT_LT(stats.group_commit_batches, stats.group_commit_ops);
  EXPECT_EQ(snap->epoch - epoch_before, stats.group_commit_batches);
  EXPECT_GT(max_batch, 1u) << "no batch ever coalesced across "
                           << round << " rounds";
  EXPECT_EQ(stats.wal_records, static_cast<uint64_t>(total_ops));

  // And the whole concurrent burst is still crash-safe.
  std::unique_ptr<EngineHost> recovered = f.OpenHost();
  EXPECT_EQ(recovered->Stats().db_slots, base_slots + total_ops);
  EXPECT_EQ(recovered->Stats().epoch, snap->epoch);
}

// A replica serving a shard subset sees only the cluster writes routed to
// its shards, so its log legitimately skips foreign gids. Shard-stamped
// (v2) records let Replay bridge those gaps — missing ids materialize as
// absent slots and the logged graph lands in exactly its logged shard —
// where a shard-less record over the same gap must still be refused.
TEST(DurabilityTest, ShardStampedReplayBridgesForeignGidGaps) {
  DurabilityFixture f("shard_gap");
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  const int base = f.fx.db.size();  // snapshot holds gids 0..base-1
  {
    auto wal = WriteAheadLog::Open(f.wal_dir());
    ASSERT_TRUE(wal.ok());
    // Foreign writes consumed gids base and base+1 on other replicas;
    // this replica's shard got the next two.
    WalRecord a;
    a.op = WalRecord::Op::kAdd;
    a.epoch = 1;
    a.gid = base + 2;
    a.shard = 1;
    a.graph_text = FormatGraph(f.pool.at(0), a.gid);
    WalRecord b = a;
    b.epoch = 2;
    b.gid = base + 3;
    b.graph_text = FormatGraph(f.pool.at(1), b.gid);
    std::vector<WalRecord> batch = {a, b};
    ASSERT_TRUE(wal.value().Append(batch).ok());
  }
  std::unique_ptr<EngineHost> host = f.OpenHost();
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  EngineHost::HostStats stats = host->Stats();
  EXPECT_EQ(stats.db_slots, base + 4);  // the gap occupies real slots
  EXPECT_EQ(stats.live, base + 2);      // gap slots are absent, not live
  // Self-queries surface the replayed graphs under their logged gids.
  for (int i = 0; i < 2; ++i) {
    auto result = host->Search(f.pool.at(i));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const std::vector<int>& answers = result.value().answers;
    EXPECT_TRUE(std::find(answers.begin(), answers.end(), base + 2 + i) !=
                answers.end())
        << "replayed gid " << base + 2 + i << " not found";
  }
}

TEST(DurabilityTest, AttachWalRequiresCleanPreconditions) {
  DurabilityFixture f("preconditions");
  std::unique_ptr<EngineHost> host = f.OpenHost();
  // Second attach must be rejected.
  auto extra = WriteAheadLog::Open((f.root / "wal2").string());
  ASSERT_TRUE(extra.ok());
  EXPECT_EQ(host->AttachWal(
                    std::make_unique<WriteAheadLog>(extra.MoveValue()))
                .code(),
            StatusCode::kAlreadyExists);
  // Checkpointing without a WAL is refused (nothing to truncate).
  EngineHost bare(f.fx.db, f.sharded.value(), f.options);
  EngineHost::CheckpointConfig ckpt;
  ckpt.index_dir = f.index_dir();
  ckpt.db_path = f.db_path();
  EXPECT_EQ(bare.EnableCheckpoints(ckpt).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(bare.Checkpoint().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace pis
