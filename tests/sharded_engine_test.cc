// Equivalence and persistence of the sharded engine: for any shard count
// and any thread count, ShardedPisEngine must reproduce PisEngine's
// answers, candidates, and partition-derived stats exactly, and a sharded
// index must survive a manifest-directory save/load round trip.
#include "core/sharded_pis.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "engine_test_util.h"
#include "index/sharded_index.h"
#include "util/random.h"

namespace pis {
namespace {

using ::pis::testing::EngineFixture;
using ::pis::testing::SampleQueries;

// Everything except range_queries (the sharded engine counts per-shard
// physical queries) and timings must match the unsharded engine.
void ExpectEquivalent(const SearchResult& unsharded, const SearchResult& sharded,
                      int num_shards) {
  EXPECT_EQ(unsharded.answers, sharded.answers);
  EXPECT_EQ(unsharded.candidates, sharded.candidates);
  const QueryStats& a = unsharded.stats;
  const QueryStats& b = sharded.stats;
  EXPECT_EQ(a.fragments_enumerated, b.fragments_enumerated);
  EXPECT_EQ(a.fragments_kept, b.fragments_kept);
  EXPECT_EQ(a.partition_size, b.partition_size);
  EXPECT_DOUBLE_EQ(a.partition_weight, b.partition_weight);
  EXPECT_EQ(a.candidates_after_intersection, b.candidates_after_intersection);
  EXPECT_EQ(a.candidates_final, b.candidates_final);
  EXPECT_EQ(a.answers, b.answers);
  // Pass 2 replays cached pass-1 maps in both engines, so the physical
  // query count is exactly one per fragment per (shard) index.
  EXPECT_EQ(a.range_queries, a.fragments_enumerated);
  EXPECT_EQ(b.range_queries,
            a.fragments_enumerated * static_cast<size_t>(num_shards));
}

Result<ShardedFragmentIndex> BuildSharded(const EngineFixture& fx,
                                          int num_shards, int build_threads) {
  FragmentIndexOptions options;
  options.max_fragment_edges = 4;
  options.spec = DistanceSpec::EdgeMutation();
  options.num_threads = build_threads;
  return ShardedFragmentIndex::Build(fx.db, fx.features, options, num_shards);
}

// Random database, random shard count in 1..8, random build / fan-out /
// batch thread counts: the property the whole subsystem is built around.
class ShardedEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardedEquivalenceTest, MatchesUnshardedEngine) {
  const int seed = GetParam();
  Rng rng(900 + seed);
  const int db_size = 20 + rng.UniformInt(0, 30);
  const int num_shards = rng.UniformInt(1, 8);
  EngineFixture fx(db_size, 1000 + seed);
  ASSERT_TRUE(fx.index.ok());
  auto sharded = BuildSharded(fx, num_shards, rng.UniformInt(1, 4));
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  PisOptions options;
  options.sigma = 2.0;
  options.shard_threads = rng.UniformInt(1, 4);
  PisEngine unsharded(&fx.db, &fx.index.value(), options);
  ShardedPisEngine engine(&fx.db, &sharded.value(), options);

  std::vector<Graph> queries = SampleQueries(fx.db, 6, 8, 77 + seed);
  for (const Graph& q : queries) {
    auto want = unsharded.Search(q);
    auto got = engine.Search(q);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectEquivalent(want.value(), got.value(), num_shards);
  }

  // The batched path must agree slot for slot with sequential Search, for
  // any thread count.
  const int batch_threads = rng.UniformInt(1, 5);
  BatchSearchResult batch = engine.SearchBatch(queries, batch_threads);
  ASSERT_EQ(batch.results.size(), queries.size());
  EXPECT_EQ(batch.failed, 0u);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    auto want = unsharded.Search(queries[qi]);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(batch.results[qi].ok());
    ExpectEquivalent(want.value(), batch.results[qi].value(), num_shards);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedEquivalenceTest, ::testing::Range(0, 10));

TEST(ShardedIndexTest, RejectsNonPositiveShardCount) {
  EngineFixture fx(20, 3);
  auto sharded = BuildSharded(fx, 0, 1);
  EXPECT_EQ(sharded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardedIndexTest, ShardRoutingPartitionsTheDatabase) {
  EngineFixture fx(23, 5);
  auto sharded = BuildSharded(fx, 5, 2);
  ASSERT_TRUE(sharded.ok());
  const ShardedFragmentIndex& idx = sharded.value();
  EXPECT_EQ(idx.db_size(), 23);
  EXPECT_EQ(idx.num_live(), 23);
  int covered = 0;
  for (int s = 0; s < idx.num_shards(); ++s) {
    EXPECT_EQ(idx.shard(s).db_size(), idx.shard_size(s));
    covered += idx.shard_size(s);
  }
  EXPECT_EQ(covered, 23);
  // The routing and its inverse agree: every global id maps to exactly one
  // (shard, local) slot and back.
  std::vector<char> seen(idx.db_size(), 0);
  for (int s = 0; s < idx.num_shards(); ++s) {
    for (int local = 0; local < idx.shard_size(s); ++local) {
      const int gid = idx.global_id(s, local);
      ASSERT_GE(gid, 0);
      ASSERT_LT(gid, idx.db_size());
      EXPECT_FALSE(seen[gid]);
      seen[gid] = 1;
      EXPECT_EQ(idx.shard_of(gid), s);
    }
  }
}

TEST(ShardedIndexTest, MoreShardsThanGraphsStillExact) {
  EngineFixture fx(5, 9, /*max_fragment_edges=*/4,
                   DistanceSpec::EdgeMutation(), /*min_support=*/2);
  ASSERT_TRUE(fx.index.ok());
  auto sharded = BuildSharded(fx, 8, 1);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_EQ(sharded.value().num_shards(), 8);
  PisOptions options;
  options.sigma = 2.0;
  PisEngine unsharded(&fx.db, &fx.index.value(), options);
  ShardedPisEngine engine(&fx.db, &sharded.value(), options);
  for (const Graph& q : SampleQueries(fx.db, 3, 6, 31)) {
    auto want = unsharded.Search(q);
    auto got = engine.Search(q);
    ASSERT_TRUE(want.ok() && got.ok());
    ExpectEquivalent(want.value(), got.value(), 8);
  }
}

TEST(ShardedEngineTest, EmptyQueryIsInvalidArgument) {
  EngineFixture fx(20, 4);
  auto sharded = BuildSharded(fx, 3, 1);
  ASSERT_TRUE(sharded.ok());
  ShardedPisEngine engine(&fx.db, &sharded.value(), {});
  EXPECT_EQ(engine.Search(Graph()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardedIndexIoTest, SaveLoadRoundTrip) {
  EngineFixture fx(40, 17);
  auto sharded = BuildSharded(fx, 3, 2);
  ASSERT_TRUE(sharded.ok());
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "pis_sharded_rt").string();
  ASSERT_TRUE(sharded.value().SaveDir(dir).ok());
  auto loaded = ShardedFragmentIndex::LoadDir(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded.value().num_shards(), sharded.value().num_shards());
  EXPECT_EQ(loaded.value().db_size(), sharded.value().db_size());
  EXPECT_EQ(loaded.value().num_classes(), sharded.value().num_classes());
  for (int s = 0; s < sharded.value().num_shards(); ++s) {
    EXPECT_EQ(loaded.value().shard_size(s), sharded.value().shard_size(s));
    for (int local = 0; local < sharded.value().shard_size(s); ++local) {
      EXPECT_EQ(loaded.value().global_id(s, local),
                sharded.value().global_id(s, local));
    }
  }

  PisOptions options;
  options.sigma = 2.0;
  ShardedPisEngine before(&fx.db, &sharded.value(), options);
  ShardedPisEngine after(&fx.db, &loaded.value(), options);
  for (const Graph& q : SampleQueries(fx.db, 4, 8, 55)) {
    auto a = before.Search(q);
    auto b = after.Search(q);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.value().answers, b.value().answers);
    EXPECT_EQ(a.value().candidates, b.value().candidates);
    pis::testing::ExpectSameCounters(a.value().stats, b.value().stats);
  }
  std::filesystem::remove_all(dir);
}

// Satellite: the per-shard counters of a sharded SearchBatch must aggregate
// exactly to the unsharded engine's counts on identical inputs — counter
// drift would silently invalidate every figure the bench harness produces.
// range_queries is the one documented exception: each fragment costs one
// physical query per shard.
TEST(ShardedStatsTest, BatchCountersAggregateExactly) {
  const int kShards = 4;
  EngineFixture fx(30, 21);
  ASSERT_TRUE(fx.index.ok());
  auto sharded = BuildSharded(fx, kShards, 2);
  ASSERT_TRUE(sharded.ok());
  PisOptions options;
  options.sigma = 2.0;
  PisEngine unsharded(&fx.db, &fx.index.value(), options);
  ShardedPisEngine engine(&fx.db, &sharded.value(), options);

  std::vector<Graph> queries = SampleQueries(fx.db, 8, 8, 63);
  BatchSearchResult want = unsharded.SearchBatch(queries, 3);
  BatchSearchResult got = engine.SearchBatch(queries, 3);
  ASSERT_EQ(want.failed, 0u);
  ASSERT_EQ(got.failed, 0u);

  const QueryStats& a = want.total_stats;
  const QueryStats& b = got.total_stats;
  EXPECT_EQ(a.fragments_enumerated, b.fragments_enumerated);
  EXPECT_EQ(a.fragments_kept, b.fragments_kept);
  EXPECT_EQ(a.partition_size, b.partition_size);
  EXPECT_DOUBLE_EQ(a.partition_weight, b.partition_weight);
  EXPECT_EQ(a.candidates_after_intersection, b.candidates_after_intersection);
  EXPECT_EQ(a.candidates_final, b.candidates_final);
  EXPECT_EQ(a.answers, b.answers);
  EXPECT_EQ(b.range_queries, a.range_queries * static_cast<size_t>(kShards));

  // The batch totals are exactly the sum of the per-query stats — nothing
  // counted twice, nothing dropped by the fan-out.
  QueryStats summed;
  for (const auto& r : got.results) {
    ASSERT_TRUE(r.ok());
    summed.Accumulate(r.value().stats);
  }
  pis::testing::ExpectSameCounters(summed, b);
}

TEST(ShardedIndexIoTest, LoadRejectsMissingManifest) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "pis_sharded_empty")
          .string();
  std::filesystem::create_directories(dir);
  EXPECT_EQ(ShardedFragmentIndex::LoadDir(dir).status().code(),
            StatusCode::kIOError);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace pis
