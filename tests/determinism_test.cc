// Determinism regression: the whole pipeline — generation, mining, feature
// selection, index build, filtering, search — must be a pure function of its
// seeds. Two runs with the same MoleculeGenerator seed produce byte-identical
// databases and result sets and identical QueryStats counters.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/pis.h"
#include "engine_test_util.h"
#include "graph/io.h"
#include "util/parallel.h"

namespace pis {
namespace {

using testing::EngineFixture;
using testing::ExpectSameCounters;
using testing::SampleQueries;

constexpr int kDbSize = 35;
constexpr int kMinSupport = 4;

std::string Serialize(const GraphDatabase& db) {
  std::ostringstream out;
  EXPECT_TRUE(WriteGraphDatabase(db, out).ok());
  return out.str();
}

TEST(DeterminismTest, GeneratorIsPureFunctionOfSeed) {
  EngineFixture a(kDbSize, 77, 4, DistanceSpec::EdgeMutation(), kMinSupport);
  EngineFixture b(kDbSize, 77, 4, DistanceSpec::EdgeMutation(), kMinSupport);
  EXPECT_EQ(Serialize(a.db), Serialize(b.db));
  EXPECT_EQ(Serialize(GraphDatabase()), Serialize(GraphDatabase()));
  // And a different seed actually changes the database.
  EngineFixture c(kDbSize, 78, 4, DistanceSpec::EdgeMutation(), kMinSupport);
  EXPECT_NE(Serialize(a.db), Serialize(c.db));
}

TEST(DeterminismTest, TwoEngineRunsAreByteIdentical) {
  EngineFixture a(kDbSize, 77, 4, DistanceSpec::EdgeMutation(), kMinSupport);
  EngineFixture b(kDbSize, 77, 4, DistanceSpec::EdgeMutation(), kMinSupport);
  PisOptions options;
  options.sigma = 2;
  PisEngine engine_a(&a.db, &a.index.value(), options);
  PisEngine engine_b(&b.db, &b.index.value(), options);
  std::vector<Graph> queries_a = SampleQueries(a.db, 8, 8, 78);
  std::vector<Graph> queries_b = SampleQueries(b.db, 8, 8, 78);
  ASSERT_EQ(queries_a.size(), queries_b.size());
  for (size_t qi = 0; qi < queries_a.size(); ++qi) {
    // Identically seeded samplers must yield identical queries.
    EXPECT_EQ(FormatGraph(queries_a[qi], static_cast<int>(qi)),
              FormatGraph(queries_b[qi], static_cast<int>(qi)))
        << "query " << qi;

    auto ra = engine_a.Search(queries_a[qi]);
    auto rb = engine_b.Search(queries_b[qi]);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    EXPECT_EQ(ra.value().answers, rb.value().answers) << "query " << qi;
    EXPECT_EQ(ra.value().candidates, rb.value().candidates) << "query " << qi;
    ExpectSameCounters(ra.value().stats, rb.value().stats);
  }
}

TEST(DeterminismTest, BatchedRunsMatchAcrossInstancesAndThreads) {
  EngineFixture a(kDbSize, 91, 4, DistanceSpec::EdgeMutation(), kMinSupport);
  EngineFixture b(kDbSize, 91, 4, DistanceSpec::EdgeMutation(), kMinSupport);
  PisOptions options;
  options.sigma = 2;
  PisEngine engine_a(&a.db, &a.index.value(), options);
  PisEngine engine_b(&b.db, &b.index.value(), options);
  std::vector<Graph> queries_a = SampleQueries(a.db, 8, 8, 92);
  std::vector<Graph> queries_b = SampleQueries(b.db, 8, 8, 92);
  BatchSearchResult ba =
      engine_a.SearchBatch(std::span<const Graph>(queries_a), 1);
  BatchSearchResult bb = engine_b.SearchBatch(
      std::span<const Graph>(queries_b), HardwareThreads());
  ASSERT_EQ(ba.results.size(), bb.results.size());
  EXPECT_EQ(ba.succeeded, bb.succeeded);
  EXPECT_EQ(ba.failed, bb.failed);
  for (size_t qi = 0; qi < ba.results.size(); ++qi) {
    ASSERT_TRUE(ba.results[qi].ok());
    ASSERT_TRUE(bb.results[qi].ok());
    EXPECT_EQ(ba.results[qi].value().answers, bb.results[qi].value().answers);
    EXPECT_EQ(ba.results[qi].value().candidates,
              bb.results[qi].value().candidates);
    ExpectSameCounters(ba.results[qi].value().stats,
                       bb.results[qi].value().stats);
  }
  ExpectSameCounters(ba.total_stats, bb.total_stats);
}

}  // namespace
}  // namespace pis
