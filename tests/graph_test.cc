#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/generator.h"
#include "graph/io.h"
#include "graph/label_map.h"
#include "util/random.h"

namespace pis {
namespace {

Graph Triangle() {
  Graph g;
  g.AddVertex(1);
  g.AddVertex(2);
  g.AddVertex(3);
  EXPECT_TRUE(g.AddEdge(0, 1, 10).ok());
  EXPECT_TRUE(g.AddEdge(1, 2, 20).ok());
  EXPECT_TRUE(g.AddEdge(2, 0, 30).ok());
  return g;
}

TEST(GraphTest, BasicConstruction) {
  Graph g = Triangle();
  EXPECT_EQ(g.NumVertices(), 3);
  EXPECT_EQ(g.NumEdges(), 3);
  EXPECT_EQ(g.VertexLabel(0), 1);
  EXPECT_EQ(g.Degree(1), 2);
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_FALSE(g.Empty());
}

TEST(GraphTest, AddEdgeRejectsBadInput) {
  Graph g;
  g.AddVertex();
  g.AddVertex();
  EXPECT_EQ(g.AddEdge(0, 0).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g.AddEdge(0, 5).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g.AddEdge(-1, 1).status().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  EXPECT_EQ(g.AddEdge(1, 0).status().code(), StatusCode::kAlreadyExists);
}

TEST(GraphTest, FindEdgeBothDirections) {
  Graph g = Triangle();
  EdgeId e = g.FindEdge(1, 2);
  ASSERT_NE(e, kInvalidEdge);
  EXPECT_EQ(g.GetEdge(e).label, 20);
  EXPECT_EQ(g.FindEdge(2, 1), e);
  EXPECT_EQ(g.FindEdge(0, 0), kInvalidEdge);
}

TEST(GraphTest, Connectivity) {
  Graph g;
  EXPECT_TRUE(g.IsConnected());  // empty graph
  g.AddVertex();
  EXPECT_TRUE(g.IsConnected());
  g.AddVertex();
  EXPECT_FALSE(g.IsConnected());
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  EXPECT_TRUE(g.IsConnected());
}

TEST(GraphTest, EdgeSubgraphRenumbersVertices) {
  Graph g = Triangle();
  std::vector<VertexId> vertex_map;
  Graph sub = g.EdgeSubgraph({1}, &vertex_map);  // edge (1,2)
  EXPECT_EQ(sub.NumVertices(), 2);
  EXPECT_EQ(sub.NumEdges(), 1);
  EXPECT_EQ(vertex_map, (std::vector<VertexId>{1, 2}));
  EXPECT_EQ(sub.VertexLabel(0), 2);
  EXPECT_EQ(sub.VertexLabel(1), 3);
  EXPECT_EQ(sub.GetEdge(0).label, 20);
}

TEST(GraphTest, RelabeledPermutesVertices) {
  Graph g = Triangle();
  Graph p = g.Relabeled({2, 0, 1});  // new 0 = old 2
  EXPECT_EQ(p.VertexLabel(0), 3);
  EXPECT_EQ(p.VertexLabel(1), 1);
  EXPECT_EQ(p.VertexLabel(2), 2);
  // Edge (old 0, old 1) label 10 becomes (new 1, new 2).
  EdgeId e = p.FindEdge(1, 2);
  ASSERT_NE(e, kInvalidEdge);
  EXPECT_EQ(p.GetEdge(e).label, 10);
}

TEST(GraphTest, SkeletonStripsLabels) {
  Graph g = Triangle();
  Graph s = g.Skeleton();
  EXPECT_EQ(s.NumVertices(), 3);
  EXPECT_EQ(s.NumEdges(), 3);
  for (VertexId v = 0; v < 3; ++v) EXPECT_EQ(s.VertexLabel(v), kNoLabel);
  for (EdgeId e = 0; e < 3; ++e) EXPECT_EQ(s.GetEdge(e).label, kNoLabel);
}

TEST(GraphTest, EqualityIgnoresEndpointOrder) {
  Graph a = Triangle();
  Graph b;
  b.AddVertex(1);
  b.AddVertex(2);
  b.AddVertex(3);
  ASSERT_TRUE(b.AddEdge(1, 0, 10).ok());  // reversed endpoints
  ASSERT_TRUE(b.AddEdge(2, 1, 20).ok());
  ASSERT_TRUE(b.AddEdge(0, 2, 30).ok());
  EXPECT_TRUE(a == b);
  b.SetEdgeLabel(0, 99);
  EXPECT_FALSE(a == b);
}

TEST(GraphDatabaseTest, Stats) {
  GraphDatabase db;
  EXPECT_EQ(db.AverageVertices(), 0);
  db.Add(Triangle());
  Graph path;
  path.AddVertex();
  path.AddVertex();
  ASSERT_TRUE(path.AddEdge(0, 1).ok());
  db.Add(path);
  EXPECT_EQ(db.size(), 2);
  EXPECT_DOUBLE_EQ(db.AverageVertices(), 2.5);
  EXPECT_DOUBLE_EQ(db.AverageEdges(), 2.0);
  EXPECT_EQ(db.MaxVertices(), 3);
  EXPECT_EQ(db.MaxEdges(), 3);
}

TEST(LabelMapTest, InternAndLookup) {
  LabelMap map;
  Label c = map.GetOrAdd("C");
  Label n = map.GetOrAdd("N");
  EXPECT_NE(c, n);
  EXPECT_EQ(map.GetOrAdd("C"), c);
  EXPECT_EQ(map.GetOrAdd(""), kNoLabel);
  ASSERT_TRUE(map.Find("N").ok());
  EXPECT_EQ(map.Find("N").value(), n);
  EXPECT_EQ(map.Find("Xx").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(map.Name(c).value(), "C");
  EXPECT_EQ(map.Name(999).status().code(), StatusCode::kOutOfRange);
}

TEST(GeneratorTest, MoleculesAreConnectedAndSimple) {
  MoleculeGeneratorOptions options;
  options.seed = 123;
  MoleculeGenerator gen(options);
  for (int i = 0; i < 50; ++i) {
    Graph g = gen.Next();
    EXPECT_TRUE(g.IsConnected());
    EXPECT_GE(g.NumVertices(), 5);
    EXPECT_LE(g.NumVertices(), options.max_vertices + 8);
  }
}

TEST(GeneratorTest, DeterministicUnderSeed) {
  MoleculeGeneratorOptions options;
  options.seed = 99;
  MoleculeGenerator a(options);
  MoleculeGenerator b(options);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(a.Next() == b.Next());
  }
}

TEST(GeneratorTest, DatabaseStatisticsMatchPaperShape) {
  MoleculeGenerator gen;
  GraphDatabase db = gen.Generate(500);
  // The paper's sample: ~25 vertices / ~27 edges average.
  EXPECT_GT(db.AverageVertices(), 15);
  EXPECT_LT(db.AverageVertices(), 40);
  EXPECT_GT(db.AverageEdges(), db.AverageVertices() * 0.9);
  EXPECT_GT(db.MaxVertices(), 60);  // heavy tail exists
}

TEST(RandomGraphTest, RespectsBoundsAndConnectivity) {
  Rng rng(5);
  RandomGraphOptions options;
  options.num_vertices = 12;
  options.num_edges = 20;
  for (int i = 0; i < 20; ++i) {
    Graph g = GenerateRandomConnectedGraph(options, &rng);
    EXPECT_EQ(g.NumVertices(), 12);
    EXPECT_GE(g.NumEdges(), 11);
    EXPECT_LE(g.NumEdges(), 20);
    EXPECT_TRUE(g.IsConnected());
  }
}

TEST(IoTest, RoundTripDatabase) {
  MoleculeGenerator gen;
  GraphDatabase db = gen.Generate(20);
  std::ostringstream out;
  ASSERT_TRUE(WriteGraphDatabase(db, out).ok());
  std::istringstream in(out.str());
  Result<GraphDatabase> back = ReadGraphDatabase(in);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back.value().size(), db.size());
  for (int i = 0; i < db.size(); ++i) {
    EXPECT_TRUE(db.at(i) == back.value().at(i)) << "graph " << i;
  }
}

TEST(IoTest, ParseErrors) {
  EXPECT_EQ(ParseGraph("v 0 1\n").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseGraph("t # 0\nv 1 1\n").status().code(),
            StatusCode::kParseError);  // non-dense vertex ids
  EXPECT_EQ(ParseGraph("t # 0\nv 0 1\ne 0 0 1\n").status().code(),
            StatusCode::kParseError);  // self loop
  EXPECT_EQ(ParseGraph("garbage\n").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseGraph("t # 0\nv 0 1\nt # 1\nv 0 1\n").status().code(),
            StatusCode::kParseError);  // two records
}

TEST(IoTest, CommentsAndWeights) {
  const char* text =
      "# a comment\n"
      "t # 0\n"
      "v 0 1 2.5\n"
      "v 1 2\n"
      "e 0 1 7 1.25\n";
  Result<Graph> g = ParseGraph(text);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_DOUBLE_EQ(g.value().VertexWeight(0), 2.5);
  EXPECT_DOUBLE_EQ(g.value().GetEdge(0).weight, 1.25);
}

}  // namespace
}  // namespace pis
