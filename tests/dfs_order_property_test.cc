// Order-theoretic properties of the gSpan DFS-edge comparator: on tuples
// drawn from realistic states it must be a strict total order (otherwise
// the level-synchronous minimum search and the miner's extension grouping
// silently misbehave).
#include <gtest/gtest.h>

#include <vector>

#include "canonical/dfs_code.h"
#include "util/random.h"

namespace pis {
namespace {

// Random plausible tuple at a state with `n` mapped vertices: forward
// (i, n) from any i < n, or backward (n-1, j) to an ancestor j < n-2.
DfsEdge RandomTuple(Rng* rng, int n) {
  DfsEdge e;
  if (n >= 4 && rng->Bernoulli(0.4)) {
    e.from = n - 1;
    e.to = rng->UniformInt(0, n - 3);
  } else {
    e.from = rng->UniformInt(0, n - 1);
    e.to = n;
  }
  e.from_label = rng->UniformInt(0, 2);
  e.edge_label = rng->UniformInt(0, 2);
  e.to_label = rng->UniformInt(0, 2);
  return e;
}

class DfsOrderPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DfsOrderPropertyTest, StrictTotalOrderOnStateTuples) {
  Rng rng(GetParam());
  const int n = 4 + GetParam() % 4;
  std::vector<DfsEdge> tuples;
  for (int i = 0; i < 24; ++i) tuples.push_back(RandomTuple(&rng, n));

  for (const DfsEdge& a : tuples) {
    EXPECT_EQ(CompareDfsEdges(a, a), 0);
    for (const DfsEdge& b : tuples) {
      int ab = CompareDfsEdges(a, b);
      int ba = CompareDfsEdges(b, a);
      EXPECT_EQ(ab, -ba) << a.from << "," << a.to << " vs " << b.from << ","
                         << b.to;
      if (ab == 0) {
        // Only label-identical tuples with the same indices tie.
        EXPECT_EQ(a.from, b.from);
        EXPECT_EQ(a.to, b.to);
        EXPECT_EQ(a.from_label, b.from_label);
        EXPECT_EQ(a.edge_label, b.edge_label);
        EXPECT_EQ(a.to_label, b.to_label);
      }
    }
  }
  // Transitivity over sampled triples.
  for (size_t i = 0; i < tuples.size(); ++i) {
    for (size_t j = 0; j < tuples.size(); ++j) {
      for (size_t k = 0; k < tuples.size(); k += 3) {
        if (CompareDfsEdges(tuples[i], tuples[j]) < 0 &&
            CompareDfsEdges(tuples[j], tuples[k]) < 0) {
          EXPECT_LT(CompareDfsEdges(tuples[i], tuples[k]), 0);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DfsOrderPropertyTest, ::testing::Range(0, 10));

TEST(DfsCodeOrderTest, PrefixComparesSmaller) {
  DfsCode a({{0, 1, 1, 1, 1}});
  DfsCode b({{0, 1, 1, 1, 1}, {1, 2, 1, 1, 1}});
  EXPECT_LT(a.Compare(b), 0);
  EXPECT_GT(b.Compare(a), 0);
  EXPECT_EQ(a.Compare(a), 0);
}

TEST(DfsCodeOrderTest, FirstDifferenceDecides) {
  DfsCode a({{0, 1, 1, 1, 1}, {1, 2, 1, 1, 1}});
  DfsCode b({{0, 1, 1, 1, 1}, {1, 2, 1, 2, 1}});
  EXPECT_LT(a.Compare(b), 0);
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
}

}  // namespace
}  // namespace pis
