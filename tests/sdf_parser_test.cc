#include "graph/sdf_parser.h"

#include <gtest/gtest.h>

#include <sstream>

namespace pis {
namespace {

// A V2000 MOL block for ethanol-like C-C-O with single bonds.
constexpr const char* kEthanol =
    "ethanol\n"
    "  program\n"
    "comment\n"
    "  3  2  0  0  0  0  0  0  0  0999 V2000\n"
    "    0.0000    0.0000    0.0000 C   0  0  0  0  0  0  0  0  0  0  0  0\n"
    "    1.5000    0.0000    0.0000 C   0  0  0  0  0  0  0  0  0  0  0  0\n"
    "    2.2000    1.2000    0.0000 O   0  0  0  0  0  0  0  0  0  0  0  0\n"
    "  1  2  1  0\n"
    "  2  3  1  0\n";

constexpr const char* kBenzeneBonds =
    "benzene\n"
    "\n"
    "\n"
    "  6  6  0  0  0  0  0  0  0  0999 V2000\n"
    "    0.0 0.0 0.0 C 0\n"
    "    0.0 0.0 0.0 C 0\n"
    "    0.0 0.0 0.0 C 0\n"
    "    0.0 0.0 0.0 C 0\n"
    "    0.0 0.0 0.0 C 0\n"
    "    0.0 0.0 0.0 C 0\n"
    "  1  2  4  0\n"
    "  2  3  4  0\n"
    "  3  4  4  0\n"
    "  4  5  4  0\n"
    "  5  6  4  0\n"
    "  6  1  4  0\n";

TEST(SdfParserTest, ParsesMolBlock) {
  ChemicalVocabulary vocab = MakeDefaultChemicalVocabulary();
  Result<Graph> g = ParseMolBlock(kEthanol, &vocab);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g.value().NumVertices(), 3);
  EXPECT_EQ(g.value().NumEdges(), 2);
  EXPECT_EQ(g.value().VertexLabel(0), vocab.atoms.Find("C").value());
  EXPECT_EQ(g.value().VertexLabel(2), vocab.atoms.Find("O").value());
  EXPECT_EQ(g.value().GetEdge(0).label, vocab.bonds.Find("single").value());
}

TEST(SdfParserTest, FreeFormatAtomLines) {
  ChemicalVocabulary vocab = MakeDefaultChemicalVocabulary();
  Result<Graph> g = ParseMolBlock(kBenzeneBonds, &vocab);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g.value().NumVertices(), 6);
  EXPECT_EQ(g.value().NumEdges(), 6);
  EXPECT_EQ(g.value().GetEdge(0).label, vocab.bonds.Find("aromatic").value());
  EXPECT_TRUE(g.value().IsConnected());
}

TEST(SdfParserTest, RejectsTruncatedBlocks) {
  ChemicalVocabulary vocab = MakeDefaultChemicalVocabulary();
  EXPECT_FALSE(ParseMolBlock("one line only\n", &vocab).ok());
  EXPECT_FALSE(
      ParseMolBlock("a\nb\nc\n  2  1  0 V2000\n    0 0 0 C\n", &vocab).ok());
}

TEST(SdfParserTest, RejectsBadBondType) {
  ChemicalVocabulary vocab = MakeDefaultChemicalVocabulary();
  std::string block =
      "x\n\n\n  2  1  0999 V2000\n"
      "    0.0 0.0 0.0 C 0\n"
      "    0.0 0.0 0.0 C 0\n"
      "  1  2  9  0\n";
  EXPECT_EQ(ParseMolBlock(block, &vocab).status().code(), StatusCode::kParseError);
}

TEST(SdfParserTest, RejectsOutOfRangeBond) {
  ChemicalVocabulary vocab = MakeDefaultChemicalVocabulary();
  std::string block =
      "x\n\n\n  2  1  0999 V2000\n"
      "    0.0 0.0 0.0 C 0\n"
      "    0.0 0.0 0.0 C 0\n"
      "  1  5  1  0\n";
  EXPECT_EQ(ParseMolBlock(block, &vocab).status().code(), StatusCode::kParseError);
}

TEST(SdfParserTest, ReadsMultiMoleculeSdf) {
  std::string sdf = std::string(kEthanol) + "M  END\n$$$$\n" + kBenzeneBonds +
                    "M  END\n> <NSC>\n123\n\n$$$$\n";
  ChemicalVocabulary vocab = MakeDefaultChemicalVocabulary();
  std::istringstream in(sdf);
  Result<GraphDatabase> db = ReadSdf(in, &vocab);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_EQ(db.value().size(), 2);
  EXPECT_EQ(db.value().at(0).NumVertices(), 3);
  EXPECT_EQ(db.value().at(1).NumVertices(), 6);
}

TEST(SdfParserTest, SkipMalformedKeepsGoing) {
  std::string sdf = "garbage\n$$$$\n" + std::string(kEthanol) + "M  END\n$$$$\n";
  ChemicalVocabulary vocab = MakeDefaultChemicalVocabulary();
  std::istringstream in(sdf);
  Result<GraphDatabase> db = ReadSdf(in, &vocab, {.skip_malformed = true});
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value().size(), 1);

  std::istringstream in2(sdf);
  Result<GraphDatabase> strict = ReadSdf(in2, &vocab, {.skip_malformed = false});
  EXPECT_FALSE(strict.ok());
}

TEST(SdfParserTest, MaxMoleculesStopsEarly) {
  std::string one = std::string(kEthanol) + "M  END\n$$$$\n";
  std::string sdf = one + one + one;
  ChemicalVocabulary vocab = MakeDefaultChemicalVocabulary();
  std::istringstream in(sdf);
  SdfOptions options;
  options.max_molecules = 2;
  Result<GraphDatabase> db = ReadSdf(in, &vocab, options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value().size(), 2);
}

TEST(SdfParserTest, MissingFileIsIOError) {
  ChemicalVocabulary vocab = MakeDefaultChemicalVocabulary();
  EXPECT_EQ(ReadSdfFile("/nonexistent/path.sdf", &vocab).status().code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace pis
