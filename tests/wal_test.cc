// WriteAheadLog file mechanics: append/reopen round trips, torn tails
// (crash mid-append) silently truncated, corrupt records rejected as
// InvalidArgument (never a crash, never a silent skip), and checkpoint
// truncation keeping exactly the records a snapshot does not cover. Replay
// semantics over a real index live in durability_test.cc — this suite needs
// no engine build and stays in the `unit` fast lane.
#include "server/wal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace pis {
namespace {

std::string FreshDir(const std::string& tag) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / ("pis_wal_" + tag))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

std::string LogPath(const std::string& dir) {
  return (std::filesystem::path(dir) / "wal.log").string();
}

WalRecord Add(uint64_t epoch, int gid, const std::string& text) {
  WalRecord rec;
  rec.op = WalRecord::Op::kAdd;
  rec.epoch = epoch;
  rec.gid = gid;
  rec.graph_text = text;
  return rec;
}

WalRecord Remove(uint64_t epoch, int gid) {
  WalRecord rec;
  rec.op = WalRecord::Op::kRemove;
  rec.epoch = epoch;
  rec.gid = gid;
  return rec;
}

void AppendRawBytes(const std::string& dir, const std::string& bytes) {
  std::ofstream out(LogPath(dir), std::ios::binary | std::ios::app);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint64_t Fnv1a64(const std::string& data) {
  uint64_t h = 1469598103934665603ull;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// One framed record in the historical v1 payload layout: op, epoch, gid,
/// graph text — no shard field.
std::string V1Frame(uint8_t op, uint64_t epoch, int32_t gid,
                    const std::string& text) {
  std::string payload;
  payload.push_back(static_cast<char>(op));
  PutU64(&payload, epoch);
  PutU32(&payload, static_cast<uint32_t>(gid));
  PutU64(&payload, text.size());
  payload += text;
  std::string frame;
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU64(&frame, Fnv1a64(payload));
  return frame + payload;
}

/// Writes a complete version-1 log file (magic + version 1 + records).
void WriteV1Log(const std::string& dir) {
  std::filesystem::create_directories(dir);
  std::string file;
  PutU32(&file, 0x4C415750);  // 'PWAL'
  PutU32(&file, 1);
  file += V1Frame(1, 1, 0, "t # 0\nv 0 6\n");
  file += V1Frame(1, 2, 1, "t # 1\nv 0 8\n");
  file += V1Frame(2, 3, 0, "");
  std::ofstream out(LogPath(dir), std::ios::binary | std::ios::trunc);
  out.write(file.data(), static_cast<std::streamsize>(file.size()));
  ASSERT_TRUE(out.good());
}

TEST(WalTest, OpenCreatesAnEmptyLog) {
  const std::string dir = FreshDir("create");
  auto wal = WriteAheadLog::Open(dir);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_TRUE(wal.value().recovered().empty());
  EXPECT_EQ(wal.value().records(), 0u);
  EXPECT_EQ(wal.value().max_recovered_epoch(), 0u);
  // Header only: magic + version.
  EXPECT_EQ(wal.value().bytes(), 8u);
  EXPECT_TRUE(std::filesystem::exists(LogPath(dir)));
}

TEST(WalTest, AppendReopenRoundTrips) {
  const std::string dir = FreshDir("roundtrip");
  {
    auto wal = WriteAheadLog::Open(dir);
    ASSERT_TRUE(wal.ok());
    std::vector<WalRecord> batch = {Add(1, 0, "t # 0\nv 0 6\n"),
                                    Add(1, 1, "t # 1\nv 0 8\n")};
    ASSERT_TRUE(wal.value().Append(batch).ok());
    std::vector<WalRecord> second = {Remove(2, 0)};
    ASSERT_TRUE(wal.value().Append(second).ok());
    EXPECT_EQ(wal.value().records(), 3u);
  }
  auto reopened = WriteAheadLog::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const std::vector<WalRecord>& got = reopened.value().recovered();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].op, WalRecord::Op::kAdd);
  EXPECT_EQ(got[0].epoch, 1u);
  EXPECT_EQ(got[0].gid, 0);
  EXPECT_EQ(got[0].graph_text, "t # 0\nv 0 6\n");
  EXPECT_EQ(got[1].gid, 1);
  EXPECT_EQ(got[2].op, WalRecord::Op::kRemove);
  EXPECT_EQ(got[2].epoch, 2u);
  EXPECT_TRUE(got[2].graph_text.empty());
  EXPECT_EQ(reopened.value().max_recovered_epoch(), 2u);
  EXPECT_EQ(reopened.value().records(), 3u);
}

TEST(WalTest, EmptyAppendIsANoOp) {
  const std::string dir = FreshDir("empty_batch");
  auto wal = WriteAheadLog::Open(dir);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value().Append({}).ok());
  EXPECT_EQ(wal.value().records(), 0u);
  EXPECT_EQ(wal.value().bytes(), 8u);
}

TEST(WalTest, TornFrameHeaderIsTruncatedAway) {
  const std::string dir = FreshDir("torn_frame");
  {
    auto wal = WriteAheadLog::Open(dir);
    ASSERT_TRUE(wal.ok());
    std::vector<WalRecord> batch = {Add(1, 0, "t # 0\nv 0 6\n"),
                                    Remove(2, 0)};
    ASSERT_TRUE(wal.value().Append(batch).ok());
  }
  const auto intact_bytes = std::filesystem::file_size(LogPath(dir));
  // Crash mid-append: only 10 of the 12 frame-header bytes landed.
  AppendRawBytes(dir, std::string("\x40\x00\x00\x00junk!!", 10));
  auto reopened = WriteAheadLog::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().recovered().size(), 2u);
  // The tail was physically removed, not just skipped.
  EXPECT_EQ(std::filesystem::file_size(LogPath(dir)), intact_bytes);
  EXPECT_EQ(reopened.value().bytes(), intact_bytes);
}

TEST(WalTest, TornPayloadIsTruncatedAway) {
  const std::string dir = FreshDir("torn_payload");
  {
    auto wal = WriteAheadLog::Open(dir);
    ASSERT_TRUE(wal.ok());
    std::vector<WalRecord> batch = {Add(5, 3, "t # 3\nv 0 1\n")};
    ASSERT_TRUE(wal.value().Append(batch).ok());
  }
  // A full frame header declaring 64 payload bytes, then only 5 of them.
  std::string torn("\x40\x00\x00\x00", 4);
  torn += std::string(8, '\xab');  // checksum placeholder
  torn += "parti";
  AppendRawBytes(dir, torn);
  auto reopened = WriteAheadLog::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ(reopened.value().recovered().size(), 1u);
  EXPECT_EQ(reopened.value().recovered()[0].gid, 3);
  EXPECT_EQ(reopened.value().max_recovered_epoch(), 5u);
  // A later Append lands after the repaired tail and reopens cleanly.
  std::vector<WalRecord> more = {Remove(6, 3)};
  ASSERT_TRUE(reopened.value().Append(more).ok());
  auto again = WriteAheadLog::Open(dir);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().recovered().size(), 2u);
}

TEST(WalTest, CorruptPayloadIsInvalidArgumentNotACrash) {
  const std::string dir = FreshDir("corrupt");
  {
    auto wal = WriteAheadLog::Open(dir);
    ASSERT_TRUE(wal.ok());
    std::vector<WalRecord> batch = {Add(1, 0, "t # 0\nv 0 6\n")};
    ASSERT_TRUE(wal.value().Append(batch).ok());
  }
  // Flip one payload byte (well past the 8B header + 12B frame): the full
  // record is present, so this is corruption, not a torn tail.
  {
    std::fstream f(LogPath(dir),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-1, std::ios::end);
    f.put('X');
    ASSERT_TRUE(f.good());
  }
  auto reopened = WriteAheadLog::Open(dir);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kInvalidArgument);
}

TEST(WalTest, ImplausibleRecordSizeIsInvalidArgument) {
  const std::string dir = FreshDir("huge_size");
  { ASSERT_TRUE(WriteAheadLog::Open(dir).ok()); }
  // A complete 12-byte frame header declaring a 4GB payload.
  AppendRawBytes(dir, std::string("\xff\xff\xff\xff", 4) +
                          std::string(8, '\x00'));
  auto reopened = WriteAheadLog::Open(dir);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kInvalidArgument);
}

TEST(WalTest, WrongMagicIsInvalidArgument) {
  const std::string dir = FreshDir("magic");
  std::filesystem::create_directories(dir);
  {
    std::ofstream out(LogPath(dir), std::ios::binary);
    out << "NOTAWALFILE";
  }
  auto opened = WriteAheadLog::Open(dir);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
}

TEST(WalTest, TruncateThroughKeepsOnlyUncoveredRecords) {
  const std::string dir = FreshDir("truncate");
  auto wal = WriteAheadLog::Open(dir);
  ASSERT_TRUE(wal.ok());
  std::vector<WalRecord> batch = {Add(1, 0, "a"), Add(2, 1, "b"),
                                  Remove(3, 0)};
  ASSERT_TRUE(wal.value().Append(batch).ok());
  ASSERT_TRUE(wal.value().TruncateThrough(2).ok());
  EXPECT_EQ(wal.value().records(), 1u);
  // Appending through the reopened descriptor still works after the swap.
  std::vector<WalRecord> more = {Add(4, 2, "c")};
  ASSERT_TRUE(wal.value().Append(more).ok());
  auto reopened = WriteAheadLog::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ(reopened.value().recovered().size(), 2u);
  EXPECT_EQ(reopened.value().recovered()[0].epoch, 3u);
  EXPECT_EQ(reopened.value().recovered()[0].op, WalRecord::Op::kRemove);
  EXPECT_EQ(reopened.value().recovered()[1].epoch, 4u);
  EXPECT_EQ(reopened.value().recovered()[1].gid, 2);
}

// Pre-cluster logs carry no shard field; Open must still read them
// (shard resolves to -1 = least-loaded routing) and upgrade the file to
// the current version in place, so one process generation migrates the
// whole fleet's logs.
TEST(WalTest, V1LogUpgradesToV2InPlaceAtOpen) {
  const std::string dir = FreshDir("v1_upgrade");
  WriteV1Log(dir);
  {
    auto wal = WriteAheadLog::Open(dir);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    const std::vector<WalRecord>& got = wal.value().recovered();
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0].op, WalRecord::Op::kAdd);
    EXPECT_EQ(got[0].gid, 0);
    EXPECT_EQ(got[0].shard, -1);  // v1 records have no placement stamp
    EXPECT_EQ(got[0].graph_text, "t # 0\nv 0 6\n");
    EXPECT_EQ(got[1].shard, -1);
    EXPECT_EQ(got[2].op, WalRecord::Op::kRemove);
    EXPECT_EQ(got[2].shard, -1);
    EXPECT_EQ(wal.value().max_recovered_epoch(), 3u);

    // Appends after the upgrade are current-version records in the same
    // file — formats never mix within one log.
    WalRecord stamped = Add(4, 2, "t # 2\nv 0 1\n");
    stamped.shard = 1;
    std::vector<WalRecord> more = {stamped};
    ASSERT_TRUE(wal.value().Append(more).ok());
  }
  // The on-disk version field was rewritten to 2 at Open.
  {
    std::ifstream in(LogPath(dir), std::ios::binary);
    char header[8] = {};
    in.read(header, sizeof header);
    ASSERT_TRUE(in.good());
    uint32_t version = 0;
    for (int i = 3; i >= 0; --i) {
      version = (version << 8) | static_cast<unsigned char>(header[4 + i]);
    }
    EXPECT_EQ(version, 2u);
  }
  auto reopened = WriteAheadLog::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ(reopened.value().recovered().size(), 4u);
  EXPECT_EQ(reopened.value().recovered()[0].shard, -1);
  EXPECT_EQ(reopened.value().recovered()[3].shard, 1);
  EXPECT_EQ(reopened.value().recovered()[3].gid, 2);
}

// The shard stamp (which shard an add landed in) must survive the disk
// round trip exactly — replica recovery replays through it.
TEST(WalTest, ShardStampRoundTrips) {
  const std::string dir = FreshDir("shard_stamp");
  {
    auto wal = WriteAheadLog::Open(dir);
    ASSERT_TRUE(wal.ok());
    WalRecord a = Add(1, 5, "t # 5\nv 0 6\n");
    a.shard = 2;
    WalRecord b = Add(1, 9, "t # 9\nv 0 8\n");
    b.shard = 0;
    std::vector<WalRecord> batch = {a, b, Remove(2, 5)};
    ASSERT_TRUE(wal.value().Append(batch).ok());
  }
  auto reopened = WriteAheadLog::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const std::vector<WalRecord>& got = reopened.value().recovered();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].gid, 5);
  EXPECT_EQ(got[0].shard, 2);
  EXPECT_EQ(got[1].gid, 9);
  EXPECT_EQ(got[1].shard, 0);
  EXPECT_EQ(got[2].op, WalRecord::Op::kRemove);
  EXPECT_EQ(got[2].shard, -1);  // removes route through the live table
}

TEST(WalTest, TruncateThroughEverythingLeavesAnEmptyLog) {
  const std::string dir = FreshDir("truncate_all");
  auto wal = WriteAheadLog::Open(dir);
  ASSERT_TRUE(wal.ok());
  std::vector<WalRecord> batch = {Add(1, 0, "a"), Remove(2, 0)};
  ASSERT_TRUE(wal.value().Append(batch).ok());
  ASSERT_TRUE(wal.value().TruncateThrough(99).ok());
  EXPECT_EQ(wal.value().records(), 0u);
  EXPECT_EQ(wal.value().bytes(), 8u);
  auto reopened = WriteAheadLog::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened.value().recovered().empty());
}

}  // namespace
}  // namespace pis
