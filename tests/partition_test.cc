#include "core/partition.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/selectivity.h"
#include "util/random.h"

namespace pis {
namespace {

WeightedFragment WF(double weight, std::vector<VertexId> vertices) {
  WeightedFragment f;
  f.weight = weight;
  f.vertices = std::move(vertices);
  // OverlapGraph requires sorted vertex sets (Definition 3 overlap is a
  // sorted-vector intersection).
  std::sort(f.vertices.begin(), f.vertices.end());
  return f;
}

TEST(OverlapGraphTest, EdgesFromVertexIntersection) {
  std::vector<WeightedFragment> frags = {
      WF(1, {0, 1}), WF(2, {1, 2}), WF(3, {3, 4})};
  OverlapGraph g(frags);
  EXPECT_EQ(g.size(), 3);
  EXPECT_TRUE(g.Adjacent(0, 1));
  EXPECT_FALSE(g.Adjacent(0, 2));
  EXPECT_FALSE(g.Adjacent(1, 2));
  EXPECT_TRUE(g.IsIndependent({0, 2}));
  EXPECT_FALSE(g.IsIndependent({0, 1}));
  EXPECT_DOUBLE_EQ(g.TotalWeight({0, 2}), 4.0);
}

TEST(GreedyTest, PaperExample5) {
  // Figure 7: path w1-w2-...-w7 with w4 >= w6 >= w5 >= w1 >= w7 >= w2 >= w3.
  // Greedy picks w4, then w6 is removed? No: the figure is a path
  // 1-2-3-4-5-6-7; picking 4 removes 3,5; then 6 removes 7; then 1 removes
  // 2... the paper says the solution is {w4, w6?}.. it reports {w4, w5?}..
  // It reports w4, w5, w2 for a different adjacency; we encode the path and
  // the stated weight order and check the greedy invariant instead: the
  // result is maximal and independent.
  std::vector<WeightedFragment> frags;
  double weights[7] = {4, 2, 1, 7, 5, 6, 3};  // w4 max, then w6, w5, w1, w7, w2, w3
  for (int i = 0; i < 7; ++i) {
    std::vector<VertexId> vs = {i, i + 1};  // path overlap structure
    frags.push_back(WF(weights[i], vs));
  }
  OverlapGraph g(frags);
  std::vector<int> s = GreedyMwis(g);
  EXPECT_TRUE(g.IsIndependent(s));
  // Greedy: picks 3 (w=7), removing 2 and 4; picks 5 (w=6), removing 6;
  // picks 0 (w=4), removing 1. Result {0,3,5}.
  EXPECT_EQ(s, (std::vector<int>{0, 3, 5}));
}

TEST(GreedyTest, EmptyGraph) {
  OverlapGraph g({});
  EXPECT_TRUE(GreedyMwis(g).empty());
  EXPECT_TRUE(ExactMwis(g).empty());
  EXPECT_TRUE(EnhancedGreedyMwis(g, 2).empty());
  EXPECT_TRUE(SingleBestMwis(g).empty());
}

TEST(EnhancedGreedyTest, BeatsGreedyOnStarCounterexample) {
  // Star: center weight 10, leaves 6+6+6. Greedy takes the center (10);
  // the optimum takes the three leaves (18). EnhancedGreedy(2) finds a
  // 2-set of leaves (12) first, then the remaining leaf.
  std::vector<WeightedFragment> frags = {
      WF(10, {0, 1, 2, 3}),  // center overlaps everyone
      WF(6, {1}), WF(6, {2}), WF(6, {3})};
  OverlapGraph g(frags);
  std::vector<int> greedy = GreedyMwis(g);
  EXPECT_EQ(g.TotalWeight(greedy), 10);
  std::vector<int> enhanced = EnhancedGreedyMwis(g, 2);
  EXPECT_EQ(g.TotalWeight(enhanced), 18);
  std::vector<int> exact = ExactMwis(g);
  EXPECT_EQ(g.TotalWeight(exact), 18);
}

TEST(ExactTest, SmallKnownInstance) {
  // 4-cycle with weights 3,5,4,2: best independent set {1,3} = 7.
  std::vector<WeightedFragment> frags = {WF(3, {0, 1}), WF(5, {1, 2}),
                                         WF(4, {2, 3}), WF(2, {3, 0})};
  OverlapGraph g(frags);
  std::vector<int> s = ExactMwis(g);
  EXPECT_EQ(s, (std::vector<int>{1, 3}));
  EXPECT_DOUBLE_EQ(g.TotalWeight(s), 7.0);
}

// Fragment-dense queries: adjacency must answer correctly on a large
// near-clique (this shape made the old linear-scan Adjacent superlinear
// inside EnhancedGreedyMwis's DFS).
TEST(OverlapGraphTest, DenseOverlapStaysConsistent) {
  std::vector<WeightedFragment> frags;
  // 30 fragments all overlapping on vertex 0 (a clique in the overlap
  // graph) plus 10 pairwise-disjoint ones.
  for (int i = 0; i < 30; ++i) {
    frags.push_back(WF(1.0 + i * 0.1, {0, i + 1}));
  }
  for (int i = 0; i < 10; ++i) {
    frags.push_back(WF(0.5 + i * 0.1, {100 + i}));
  }
  OverlapGraph g(frags);
  // Adjacent must agree with brute-force vertex intersection, both
  // argument orders.
  for (int i = 0; i < g.size(); ++i) {
    const std::vector<int>& nb = g.neighbors(i);
    EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
    for (int j = 0; j < g.size(); ++j) {
      if (i == j) continue;
      bool expected = false;
      for (VertexId u : frags[i].vertices) {
        for (VertexId v : frags[j].vertices) {
          if (u == v) expected = true;
        }
      }
      EXPECT_EQ(g.Adjacent(i, j), expected) << i << " vs " << j;
      EXPECT_EQ(g.Adjacent(j, i), expected);
    }
  }
  // On clique + isolated vertices the optimum is the heaviest clique
  // member plus every isolated fragment; all heuristics find it here.
  std::vector<int> exact = ExactMwis(g);
  std::vector<int> enhanced = EnhancedGreedyMwis(g, 2);
  std::vector<int> greedy = GreedyMwis(g);
  EXPECT_TRUE(g.IsIndependent(enhanced));
  double expected_weight = g.weight(29);  // heaviest clique member
  for (int i = 30; i < 40; ++i) expected_weight += g.weight(i);
  EXPECT_DOUBLE_EQ(g.TotalWeight(exact), expected_weight);
  EXPECT_DOUBLE_EQ(g.TotalWeight(enhanced), expected_weight);
  EXPECT_DOUBLE_EQ(g.TotalWeight(greedy), expected_weight);
}

TEST(SingleBestTest, PicksHeaviest) {
  std::vector<WeightedFragment> frags = {WF(1, {0}), WF(9, {1}), WF(4, {2})};
  OverlapGraph g(frags);
  EXPECT_EQ(SingleBestMwis(g), (std::vector<int>{1}));
}

// Properties on random instances: independence, greedy ratio >= 1/c,
// enhanced(k) >= greedy in the adversarial sense checked against exact.
class MwisPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MwisPropertyTest, InvariantsHold) {
  Rng rng(GetParam());
  int n = 4 + GetParam() % 12;
  std::vector<WeightedFragment> frags;
  for (int i = 0; i < n; ++i) {
    // Random small vertex sets over a universe of 12 vertices.
    std::vector<VertexId> vs;
    int k = rng.UniformInt(1, 3);
    for (int j = 0; j < k; ++j) vs.push_back(rng.UniformInt(0, 11));
    std::sort(vs.begin(), vs.end());
    vs.erase(std::unique(vs.begin(), vs.end()), vs.end());
    frags.push_back(WF(rng.UniformDouble(0.1, 5.0), vs));
  }
  OverlapGraph g(frags);
  std::vector<int> greedy = GreedyMwis(g);
  std::vector<int> enhanced = EnhancedGreedyMwis(g, 2);
  std::vector<int> exact = ExactMwis(g);
  EXPECT_TRUE(g.IsIndependent(greedy));
  EXPECT_TRUE(g.IsIndependent(enhanced));
  EXPECT_TRUE(g.IsIndependent(exact));
  // Exact dominates both heuristics; every heuristic is nonempty when the
  // graph is.
  EXPECT_GE(g.TotalWeight(exact) + 1e-9, g.TotalWeight(greedy));
  EXPECT_GE(g.TotalWeight(exact) + 1e-9, g.TotalWeight(enhanced));
  if (g.size() > 0) {
    EXPECT_FALSE(greedy.empty());
    EXPECT_FALSE(exact.empty());
  }
  // Maximality of greedy: no vertex can be added.
  std::vector<bool> in_set(g.size(), false);
  for (int v : greedy) in_set[v] = true;
  for (int v = 0; v < g.size(); ++v) {
    if (in_set[v]) continue;
    bool adjacent = false;
    for (int s : greedy) {
      if (g.Adjacent(s, v)) {
        adjacent = true;
        break;
      }
    }
    EXPECT_TRUE(adjacent) << "greedy result not maximal";
  }
  // Theorem 2 ratio: w(greedy) >= w(exact) / c with c = |exact| as an
  // upper bound witness of the max independent set size is not exact (the
  // true c can exceed |exact|), so check the weaker, always-valid bound
  // with c = n.
  EXPECT_GE(g.TotalWeight(greedy) * g.size() + 1e-9, g.TotalWeight(exact));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MwisPropertyTest, ::testing::Range(0, 30));

TEST(SelectivityTest, Definition5WithCutoff) {
  // n = 4, sigma = 2, lambda = 1; found distances {0, 1} -> two graphs at
  // cutoff 2 each: w = (0 + 1 + 2 + 2) / 4.
  EXPECT_DOUBLE_EQ(ComputeSelectivity({0, 1}, 4, 2, 1), 1.25);
}

TEST(SelectivityTest, LambdaCapsFoundDistances) {
  // lambda = 0.25 -> cutoff 0.5; distances {0, 1} cap to {0, 0.5}; misses
  // contribute 0.5: w = (0 + 0.5 + 0.5 + 0.5)/4.
  EXPECT_DOUBLE_EQ(ComputeSelectivity({0, 1}, 4, 2, 0.25), 0.375);
}

TEST(SelectivityTest, LambdaAboveOneScalesMissTerm) {
  EXPECT_DOUBLE_EQ(ComputeSelectivity({0, 1}, 4, 2, 2), (0 + 1 + 4 + 4) / 4.0);
}

TEST(SelectivityTest, AllGraphsContainFragmentAtZero) {
  EXPECT_DOUBLE_EQ(ComputeSelectivity({0, 0, 0}, 3, 2, 1), 0.0);
}

}  // namespace
}  // namespace pis
