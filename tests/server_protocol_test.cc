// PisServer protocol: every op of the newline-delimited JSON protocol
// against an in-process server on an ephemeral loopback port — replies,
// error handling (which must keep the connection usable), mutation
// visibility across connections, per-request sigma, and clean shutdown.
#include "server/pis_server.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine_test_util.h"
#include "graph/io.h"
#include "server/engine_host.h"
#include "util/json.h"
#include "util/socket.h"

namespace pis {
namespace {

using testing::EngineFixture;

class ServerProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fx_ = std::make_unique<EngineFixture>(20, 61);
    ASSERT_TRUE(fx_->index.ok());
    auto sharded = ShardedFragmentIndex::Build(
        fx_->db, fx_->features, fx_->index.value().options(), 3);
    ASSERT_TRUE(sharded.ok());
    PisOptions options;
    options.sigma = 2.0;
    host_ = std::make_unique<EngineHost>(fx_->db, sharded.MoveValue(),
                                         options);
    PisServerOptions server_options;
    server_options.port = 0;  // ephemeral
    server_options.num_workers = 2;
    server_ = std::make_unique<PisServer>(host_.get(), server_options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GT(server_->port(), 0);
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->Shutdown();
      server_->Wait();
    }
  }

  TcpSocket Connect() {
    auto conn = TcpSocket::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(conn.ok()) << conn.status().ToString();
    return conn.ok() ? conn.MoveValue() : TcpSocket();
  }

  /// Sends one request line and parses the reply object.
  JsonValue RoundTrip(TcpSocket* conn, const std::string& line) {
    EXPECT_TRUE(conn->SendLine(line).ok());
    auto reply = conn->RecvLine();
    EXPECT_TRUE(reply.ok()) << reply.status().ToString();
    if (!reply.ok()) return JsonValue();
    auto parsed = JsonValue::Parse(reply.value());
    EXPECT_TRUE(parsed.ok()) << reply.value();
    return parsed.ok() ? parsed.MoveValue() : JsonValue();
  }
  JsonValue RoundTripJson(TcpSocket* conn, const JsonValue& request) {
    return RoundTrip(conn, request.Serialize());
  }

  static std::vector<int> AnswerIds(const JsonValue& reply) {
    std::vector<int> ids;
    const JsonValue* answers = reply.Find("answers");
    EXPECT_NE(answers, nullptr);
    if (answers == nullptr) return ids;
    for (const JsonValue& v : answers->items()) {
      ids.push_back(static_cast<int>(v.AsNumber()));
    }
    return ids;
  }

  JsonValue QueryRequest(const Graph& g) {
    JsonValue request = JsonValue::Object();
    request.Set("op", "query");
    request.Set("graph", FormatGraph(g, 0));
    return request;
  }

  std::unique_ptr<EngineFixture> fx_;
  std::unique_ptr<EngineHost> host_;
  std::unique_ptr<PisServer> server_;
};

TEST_F(ServerProtocolTest, HealthAndStats) {
  TcpSocket conn = Connect();
  JsonValue health = RoundTrip(&conn, "{\"op\":\"health\"}");
  EXPECT_TRUE(health.GetBoolOr("ok", false));
  EXPECT_EQ(health.GetStringOr("status", ""), "serving");
  EXPECT_EQ(health.GetNumberOr("live", -1), 20);

  JsonValue stats = RoundTrip(&conn, "{\"op\":\"stats\"}");
  EXPECT_TRUE(stats.GetBoolOr("ok", false));
  const JsonValue* payload = stats.Find("stats");
  ASSERT_NE(payload, nullptr);
  EXPECT_EQ(payload->GetNumberOr("num_shards", -1), 3);
  EXPECT_EQ(payload->GetNumberOr("live", -1), 20);
  ASSERT_NE(payload->Find("shards"), nullptr);
  EXPECT_EQ(payload->Find("shards")->size(), 3u);
}

TEST_F(ServerProtocolTest, QueryMatchesTheHostEngine) {
  TcpSocket conn = Connect();
  for (int gid : {0, 7, 13}) {
    const Graph& query = fx_->db.at(gid);
    JsonValue reply = RoundTripJson(&conn, QueryRequest(query));
    ASSERT_TRUE(reply.GetBoolOr("ok", false)) << reply.Serialize();
    auto want = host_->Search(query);
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(AnswerIds(reply), want.value().answers);
    EXPECT_EQ(reply.GetNumberOr("candidates", -1),
              static_cast<double>(want.value().stats.candidates_final));
  }
}

TEST_F(ServerProtocolTest, MutationsAreVisibleAcrossConnections) {
  TcpSocket writer = Connect();
  const Graph& probe = fx_->db.at(4);

  JsonValue before = RoundTripJson(&writer, QueryRequest(probe));
  std::vector<int> base = AnswerIds(before);

  JsonValue add = JsonValue::Object();
  add.Set("op", "add");
  add.Set("graph", FormatGraph(probe, 0));
  JsonValue added = RoundTripJson(&writer, add);
  ASSERT_TRUE(added.GetBoolOr("ok", false)) << added.Serialize();
  const int new_id = static_cast<int>(added.GetNumberOr("id", -1));
  EXPECT_EQ(new_id, 20);
  EXPECT_EQ(added.GetNumberOr("epoch", -1), 1);

  // A different connection sees the add immediately (the ok reply is the
  // linearization point).
  TcpSocket reader = Connect();
  std::vector<int> with_new = base;
  with_new.push_back(new_id);
  EXPECT_EQ(AnswerIds(RoundTripJson(&reader, QueryRequest(probe))), with_new);

  JsonValue remove = JsonValue::Object();
  remove.Set("op", "remove");
  remove.Set("id", new_id);
  JsonValue removed = RoundTripJson(&writer, remove);
  EXPECT_TRUE(removed.GetBoolOr("ok", false));
  EXPECT_EQ(AnswerIds(RoundTripJson(&reader, QueryRequest(probe))), base);

  JsonValue compact = RoundTrip(&writer, "{\"op\":\"compact\"}");
  EXPECT_TRUE(compact.GetBoolOr("ok", false));
  EXPECT_GE(compact.GetNumberOr("compacted", -1), 1);
  // Compaction changes nothing a query can observe.
  EXPECT_EQ(AnswerIds(RoundTripJson(&reader, QueryRequest(probe))), base);
}

TEST_F(ServerProtocolTest, PerRequestSigmaOverride) {
  TcpSocket conn = Connect();
  const Graph& query = fx_->db.at(9);
  JsonValue request = QueryRequest(query);
  request.Set("sigma", 0.0);
  JsonValue reply = RoundTripJson(&conn, request);
  ASSERT_TRUE(reply.GetBoolOr("ok", false)) << reply.Serialize();

  PisOptions zero = host_->options();
  zero.sigma = 0.0;
  auto snap = host_->snapshot();
  ShardedPisEngine engine(snap->db.get(), snap->index.get(), zero);
  auto want = engine.Search(query);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(AnswerIds(reply), want.value().answers);

  request.Set("sigma", -1.0);
  JsonValue rejected = RoundTripJson(&conn, request);
  EXPECT_FALSE(rejected.GetBoolOr("ok", true));
}

TEST_F(ServerProtocolTest, ErrorsKeepTheConnectionUsable) {
  TcpSocket conn = Connect();
  for (const char* bad : {
           "this is not json",
           "[1,2,3]",
           "{\"op\":\"frobnicate\"}",
           "{}",
           "{\"op\":\"query\"}",
           "{\"op\":\"query\",\"graph\":\"not a graph record\"}",
           "{\"op\":\"remove\"}",
           "{\"op\":\"remove\",\"id\":99999}",
           "{\"op\":\"compact\",\"min_dead_ratio\":7}",
       }) {
    JsonValue reply = RoundTrip(&conn, std::string(bad));
    EXPECT_FALSE(reply.GetBoolOr("ok", true)) << bad;
    EXPECT_FALSE(reply.GetStringOr("error", "").empty()) << bad;
  }
  // After nine rejected requests the connection still serves.
  JsonValue health = RoundTrip(&conn, "{\"op\":\"health\"}");
  EXPECT_TRUE(health.GetBoolOr("ok", false));
}

TEST_F(ServerProtocolTest, ShutdownStopsTheServerCleanly) {
  TcpSocket conn = Connect();
  JsonValue reply = RoundTrip(&conn, "{\"op\":\"shutdown\"}");
  EXPECT_TRUE(reply.GetBoolOr("ok", false));
  EXPECT_EQ(reply.GetStringOr("status", ""), "stopping");
  // Wait() must return (the worker pool drained); the fixture's TearDown
  // would hang otherwise. requests_served counts the shutdown itself.
  server_->Wait();
  EXPECT_GE(server_->requests_served(), 1u);
  server_.reset();
}

}  // namespace
}  // namespace pis
