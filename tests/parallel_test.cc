#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "core/naive_search.h"
#include "core/pis.h"
#include "core/verifier.h"
#include "graph/generator.h"
#include "graph/query_sampler.h"
#include "index/fragment_index.h"
#include "mining/gspan.h"

namespace pis {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    std::vector<std::atomic<int>> hits(100);
    for (auto& h : hits) h = 0;
    ParallelFor(100, threads, [&](size_t i) { hits[i]++; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << "threads=" << threads;
  }
}

TEST(ParallelForTest, EmptyAndSingle) {
  int calls = 0;
  ParallelFor(0, 4, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(1, 4, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::atomic<int> total{0};
  ParallelFor(3, 16, [&](size_t) { total++; });
  EXPECT_EQ(total.load(), 3);
}

TEST(HardwareThreadsTest, AtLeastOne) { EXPECT_GE(HardwareThreads(), 1); }

TEST(ParallelVerifyTest, MatchesSequential) {
  MoleculeGenerator gen;
  GraphDatabase db = gen.Generate(40);
  QuerySampler sampler(&db, {.seed = 3, .strip_vertex_labels = true});
  auto query = sampler.Sample(10);
  ASSERT_TRUE(query.ok());
  std::vector<int> candidates(db.size());
  std::iota(candidates.begin(), candidates.end(), 0);
  DistanceSpec spec = DistanceSpec::EdgeMutation();
  VerifyResult seq = VerifyCandidates(db, query.value(), candidates, spec, 2, 1);
  VerifyResult par = VerifyCandidates(db, query.value(), candidates, spec, 2, 4);
  EXPECT_EQ(seq.answers, par.answers);
  EXPECT_EQ(seq.distances, par.distances);
}

TEST(ParallelBuildTest, MatchesSequentialBuild) {
  MoleculeGeneratorOptions gopt;
  gopt.seed = 17;
  gopt.mean_vertices = 14;
  gopt.max_vertices = 40;
  MoleculeGenerator gen(gopt);
  GraphDatabase db = gen.Generate(30);
  GraphDatabase skeletons;
  for (const Graph& g : db.graphs()) skeletons.Add(g.Skeleton());
  GspanOptions mine;
  mine.min_support = 3;
  mine.max_edges = 4;
  auto patterns = MineFrequentSubgraphs(skeletons, mine);
  ASSERT_TRUE(patterns.ok());
  std::vector<Graph> features;
  for (const Pattern& p : patterns.value()) features.push_back(p.graph);

  FragmentIndexOptions seq_opts;
  seq_opts.max_fragment_edges = 4;
  auto seq = FragmentIndex::Build(db, features, seq_opts);
  ASSERT_TRUE(seq.ok());
  FragmentIndexOptions par_opts = seq_opts;
  par_opts.num_threads = 4;
  auto par = FragmentIndex::Build(db, features, par_opts);
  ASSERT_TRUE(par.ok());

  EXPECT_EQ(seq.value().stats().num_sequences_inserted,
            par.value().stats().num_sequences_inserted);
  EXPECT_EQ(seq.value().stats().num_fragment_occurrences,
            par.value().stats().num_fragment_occurrences);

  // Identical query behaviour end to end.
  QuerySampler sampler(&db, {.seed = 5, .strip_vertex_labels = true});
  for (int trial = 0; trial < 4; ++trial) {
    auto query = sampler.Sample(8);
    ASSERT_TRUE(query.ok());
    PisOptions options;
    options.sigma = 2;
    PisEngine seq_engine(&db, &seq.value(), options);
    PisEngine par_engine(&db, &par.value(), options);
    auto a = seq_engine.Search(query.value());
    auto b = par_engine.Search(query.value());
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.value().answers, b.value().answers);
    EXPECT_EQ(a.value().candidates, b.value().candidates);
  }
}

TEST(ParallelEngineTest, VerifyThreadsOptionIsSound) {
  MoleculeGenerator gen;
  GraphDatabase db = gen.Generate(30);
  GraphDatabase skeletons;
  for (const Graph& g : db.graphs()) skeletons.Add(g.Skeleton());
  GspanOptions mine;
  mine.min_support = 3;
  mine.max_edges = 4;
  auto patterns = MineFrequentSubgraphs(skeletons, mine);
  ASSERT_TRUE(patterns.ok());
  std::vector<Graph> features;
  for (const Pattern& p : patterns.value()) features.push_back(p.graph);
  FragmentIndexOptions iopt;
  iopt.max_fragment_edges = 4;
  auto index = FragmentIndex::Build(db, features, iopt);
  ASSERT_TRUE(index.ok());

  QuerySampler sampler(&db, {.seed = 7, .strip_vertex_labels = true});
  auto query = sampler.Sample(8);
  ASSERT_TRUE(query.ok());
  SearchResult naive = NaiveSearch(db, query.value(), iopt.spec, 2);
  PisOptions options;
  options.sigma = 2;
  options.verify_threads = 4;
  PisEngine engine(&db, &index.value(), options);
  auto result = engine.Search(query.value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().answers, naive.answers);
}

}  // namespace
}  // namespace pis
