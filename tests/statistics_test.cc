#include "graph/statistics.h"

#include <gtest/gtest.h>

#include "graph/generator.h"
#include "graph/label_map.h"

namespace pis {
namespace {

TEST(ScalarSummaryTest, TracksMinMaxMean) {
  ScalarSummary s;
  EXPECT_EQ(s.Mean(), 0);
  s.Add(2);
  s.Add(6);
  s.Add(4);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.Mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
}

TEST(StatisticsTest, SmallHandBuiltDatabase) {
  GraphDatabase db;
  Graph g;  // triangle, labels C=1 ring with bond 1
  for (int i = 0; i < 3; ++i) g.AddVertex(1);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(g.AddEdge(i, (i + 1) % 3, 7).ok());
  db.Add(g);
  Graph path;  // 2-vertex path, mixed labels
  path.AddVertex(1);
  path.AddVertex(2);
  ASSERT_TRUE(path.AddEdge(0, 1, 8).ok());
  db.Add(path);

  DatabaseStatistics stats = ComputeStatistics(db);
  EXPECT_EQ(stats.num_graphs, 2);
  EXPECT_DOUBLE_EQ(stats.vertices_per_graph.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.edges_per_graph.Mean(), 2.0);
  EXPECT_EQ(stats.vertex_label_counts.at(1), 4u);
  EXPECT_EQ(stats.vertex_label_counts.at(2), 1u);
  EXPECT_EQ(stats.edge_label_counts.at(7), 3u);
  EXPECT_DOUBLE_EQ(stats.VertexLabelFraction(1), 0.8);
  EXPECT_DOUBLE_EQ(stats.EdgeLabelFraction(8), 0.25);
  EXPECT_EQ(stats.cycle_rank_counts.at(1), 1u);  // triangle
  EXPECT_EQ(stats.cycle_rank_counts.at(0), 1u);  // tree
  EXPECT_NE(stats.ToString().find("graphs: 2"), std::string::npos);
}

TEST(StatisticsTest, EmptyDatabase) {
  DatabaseStatistics stats = ComputeStatistics(GraphDatabase{});
  EXPECT_EQ(stats.num_graphs, 0);
  EXPECT_DOUBLE_EQ(stats.VertexLabelFraction(1), 0.0);
  EXPECT_DOUBLE_EQ(stats.EdgeLabelFraction(1), 0.0);
}

TEST(StatisticsTest, GeneratorMatchesPaperWorkloadShape) {
  // The substitution claim of DESIGN.md §4: carbon-dominated labels,
  // single-bond-dominated edges, mean ~25 vertices / ~27 edges.
  MoleculeGenerator gen;
  GraphDatabase db = gen.Generate(800);
  DatabaseStatistics stats = ComputeStatistics(db);
  const ChemicalVocabulary& vocab = gen.vocabulary();
  Label carbon = vocab.atoms.Find("C").value();
  EXPECT_GT(stats.VertexLabelFraction(carbon), 0.60);
  Label single = vocab.bonds.Find("single").value();
  Label aromatic = vocab.bonds.Find("aromatic").value();
  EXPECT_GT(stats.EdgeLabelFraction(single) + stats.EdgeLabelFraction(aromatic),
            0.75);
  EXPECT_GT(stats.vertices_per_graph.Mean(), 18);
  EXPECT_LT(stats.vertices_per_graph.Mean(), 38);
  EXPECT_GT(stats.edges_per_graph.Mean(), stats.vertices_per_graph.Mean());
  EXPECT_LT(stats.degree.max, 7);  // chemically plausible valences
}

}  // namespace
}  // namespace pis
