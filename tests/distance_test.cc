#include "distance/superimposed.h"

#include <gtest/gtest.h>

#include "distance/distance_spec.h"
#include "distance/linear.h"
#include "distance/mutation.h"
#include "distance/score_matrix.h"
#include "graph/generator.h"
#include "util/random.h"

namespace pis {
namespace {

Graph Path(int edges, Label vlabel = 1, Label elabel = 1) {
  Graph g;
  g.AddVertex(vlabel);
  for (int i = 0; i < edges; ++i) {
    g.AddVertex(vlabel);
    EXPECT_TRUE(g.AddEdge(i, i + 1, elabel).ok());
  }
  return g;
}

Graph Cycle(int n, Label vlabel = 1, Label elabel = 1) {
  Graph g;
  for (int i = 0; i < n; ++i) g.AddVertex(vlabel);
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(g.AddEdge(i, (i + 1) % n, elabel).ok());
  }
  return g;
}

TEST(ScoreMatrixTest, UnitAndZero) {
  ScoreMatrix unit = ScoreMatrix::Unit();
  EXPECT_EQ(unit.Cost(1, 1), 0);
  EXPECT_EQ(unit.Cost(1, 2), 1);
  ScoreMatrix zero = ScoreMatrix::Zero();
  EXPECT_EQ(zero.Cost(1, 2), 0);
}

TEST(ScoreMatrixTest, OverridesAreSymmetric) {
  ScoreMatrix m = ScoreMatrix::Unit();
  ASSERT_TRUE(m.Set(1, 2, 0.25).ok());
  EXPECT_DOUBLE_EQ(m.Cost(1, 2), 0.25);
  EXPECT_DOUBLE_EQ(m.Cost(2, 1), 0.25);
  EXPECT_DOUBLE_EQ(m.Cost(1, 3), 1.0);  // default preserved
  EXPECT_FALSE(m.Set(1, 2, -1).ok());   // negative rejected
}

TEST(MutationDistanceTest, CountsEdgeMismatches) {
  Graph q = Cycle(6, 1, 1);
  Graph g = Cycle(6, 1, 1);
  g.SetEdgeLabel(0, 2);
  g.SetEdgeLabel(3, 2);
  MutationCostModel model = EdgeMutationModel();
  EXPECT_DOUBLE_EQ(IsomorphicDistance(q, g, model), 2.0);
}

TEST(MutationDistanceTest, MinimizesOverSuperpositions) {
  // Path a-b with edge labels [1,2]; target path with [2,1]. Reversal gives
  // distance 0.
  Graph q = Path(2);
  q.SetEdgeLabel(0, 1);
  q.SetEdgeLabel(1, 2);
  Graph g = Path(2);
  g.SetEdgeLabel(0, 2);
  g.SetEdgeLabel(1, 1);
  EXPECT_DOUBLE_EQ(IsomorphicDistance(q, g, EdgeMutationModel()), 0.0);
}

TEST(MutationDistanceTest, VertexLabelsWhenEnabled) {
  Graph q = Path(1, 1);
  Graph g = Path(1, 2);
  EXPECT_DOUBLE_EQ(IsomorphicDistance(q, g, EdgeMutationModel()), 0.0);
  EXPECT_DOUBLE_EQ(IsomorphicDistance(q, g, UnitMutationModel()), 2.0);
}

TEST(MutationDistanceTest, UnderMappingValidation) {
  Graph q = Path(1);
  Graph g = Cycle(3);
  MutationCostModel model = EdgeMutationModel();
  EXPECT_TRUE(MutationDistanceUnderMapping(q, g, {0, 1}, model).ok());
  EXPECT_FALSE(MutationDistanceUnderMapping(q, g, {0}, model).ok());
  EXPECT_FALSE(MutationDistanceUnderMapping(q, g, {0, 9}, model).ok());
}

TEST(LinearDistanceTest, SumsAbsoluteWeightDifferences) {
  Graph q = Path(2);
  q.SetEdgeWeight(0, 1.0);
  q.SetEdgeWeight(1, 2.0);
  Graph g = Path(2);
  g.SetEdgeWeight(0, 1.5);
  g.SetEdgeWeight(1, 2.25);
  LinearCostModel model = EdgeLinearModel();
  EXPECT_DOUBLE_EQ(IsomorphicDistance(q, g, model), 0.75);
}

TEST(LinearDistanceTest, VertexWeightsWhenEnabled) {
  Graph q = Path(1);
  q.SetVertexWeight(0, 1.0);
  Graph g = Path(1);
  g.SetVertexWeight(0, 3.0);
  EXPECT_DOUBLE_EQ(IsomorphicDistance(q, g, EdgeLinearModel()), 0.0);
  LinearCostModel full(true, true);
  EXPECT_DOUBLE_EQ(IsomorphicDistance(q, g, full), 2.0);
}

TEST(SuperimposedTest, PaperExample1) {
  // Figure 1/2 analogue: a 6-ring query; a target whose ring differs in one
  // edge label has distance 1.
  Graph query = Cycle(6, 1, 1);
  Graph target = Cycle(6, 1, 1);
  target.AddVertex(1);
  ASSERT_TRUE(target.AddEdge(0, 6, 2).ok());
  target.SetEdgeLabel(2, 2);  // one mutated ring bond
  MutationCostModel model = EdgeMutationModel();
  EXPECT_DOUBLE_EQ(MinSuperimposedDistance(query, target, model), 1.0);
  EXPECT_TRUE(WithinSuperimposedDistance(query, target, model, 1));
  EXPECT_FALSE(WithinSuperimposedDistance(query, target, model, 0.5));
}

TEST(SuperimposedTest, InfiniteWhenNotContained) {
  Graph query = Cycle(5);
  Graph target = Path(6);
  MutationCostModel model = EdgeMutationModel();
  EXPECT_EQ(MinSuperimposedDistance(query, target, model), kInfiniteDistance);
}

TEST(SuperimposedTest, BoundPrunesButKeepsEquality) {
  Graph query = Cycle(6, 1, 1);
  Graph target = Cycle(6, 1, 1);
  target.SetEdgeLabel(0, 2);
  target.SetEdgeLabel(1, 2);
  MutationCostModel model = EdgeMutationModel();
  // Exact distance 2; bound 2 must find it, bound 1.5 must not.
  EXPECT_DOUBLE_EQ(MinSuperimposedDistance(query, target, model, 2.0), 2.0);
  EXPECT_EQ(MinSuperimposedDistance(query, target, model, 1.5), kInfiniteDistance);
}

TEST(SuperimposedTest, EmptyQueryIsDistanceZero) {
  Graph empty;
  Graph target = Cycle(3);
  MutationCostModel model = EdgeMutationModel();
  EXPECT_DOUBLE_EQ(MinSuperimposedDistance(empty, target, model), 0.0);
}

TEST(DistanceSpecTest, FactoryConfigurations) {
  DistanceSpec em = DistanceSpec::EdgeMutation();
  EXPECT_EQ(em.type, DistanceType::kMutation);
  EXPECT_EQ(em.vertex_scores.Cost(1, 2), 0);
  EXPECT_EQ(em.edge_scores.Cost(1, 2), 1);
  DistanceSpec fm = DistanceSpec::FullMutation();
  EXPECT_EQ(fm.vertex_scores.Cost(1, 2), 1);
  DistanceSpec el = DistanceSpec::EdgeLinear();
  EXPECT_EQ(el.type, DistanceType::kLinear);
  EXPECT_NE(el.MakeCostModel(), nullptr);
}

// Property: the cost-bounded search equals the brute-force
// enumerate-and-score oracle on random pairs, for both distances.
class SuperimposedOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(SuperimposedOracleTest, MatchesBruteForce) {
  Rng rng(GetParam() * 31 + 1);
  RandomGraphOptions topt;
  topt.num_vertices = 9;
  topt.num_edges = 13;
  topt.vertex_alphabet = 3;
  topt.edge_alphabet = 3;
  topt.max_weight = 4.0;
  Graph target = GenerateRandomConnectedGraph(topt, &rng);
  RandomGraphOptions qopt;
  qopt.num_vertices = 4 + GetParam() % 3;
  qopt.num_edges = qopt.num_vertices + GetParam() % 2;
  qopt.vertex_alphabet = 3;
  qopt.edge_alphabet = 3;
  qopt.max_weight = 4.0;
  Graph query = GenerateRandomConnectedGraph(qopt, &rng);

  MutationCostModel mutation = UnitMutationModel();
  double exact = MinSuperimposedDistance(query, target, mutation);
  double brute = MinSuperimposedDistanceBruteForce(query, target, mutation);
  EXPECT_DOUBLE_EQ(exact, brute);

  LinearCostModel linear(true, true);
  double exact_lin = MinSuperimposedDistance(query, target, linear);
  double brute_lin = MinSuperimposedDistanceBruteForce(query, target, linear);
  if (exact_lin == kInfiniteDistance) {
    EXPECT_EQ(brute_lin, kInfiniteDistance);
  } else {
    EXPECT_NEAR(exact_lin, brute_lin, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SuperimposedOracleTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace pis
